package loki_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"loki"
	"loki/internal/experiments"
)

// TestEndToEndPlatform runs the whole system over real HTTP: the backend
// publishes the lecturer survey, a cohort of clients answers at mixed
// privacy levels with at-source obfuscation, and the requester-side
// aggregate recovers the true mean within noise tolerance.
func TestEndToEndPlatform(t *testing.T) {
	st := loki.NewMemStore()
	defer st.Close()
	backend, err := loki.NewServer(loki.ServerConfig{
		Store:          st,
		Schedule:       loki.DefaultSchedule(),
		RequesterToken: "tok",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(backend)
	defer ts.Close()

	sv := loki.LecturerSurvey([]string{"A"})
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const truth = 4.0
	levels := []loki.Level{loki.None, loki.Low, loki.Medium, loki.High}
	const perLevel = 40
	for i := 0; i < perLevel*len(levels); i++ {
		c, err := loki.NewClient(loki.ClientConfig{
			BaseURL:  ts.URL,
			Schedule: loki.DefaultSchedule(),
			Seed:     uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		fetched, err := c.GetSurvey(ctx, sv.ID)
		if err != nil {
			t.Fatal(err)
		}
		raw := []loki.Answer{loki.RatingAnswer("lecturer-00", truth)}
		if _, err := c.Take(ctx, fetched, fmt.Sprintf("worker-%03d", i), raw, levels[i%len(levels)]); err != nil {
			t.Fatal(err)
		}
	}

	if got := st.ResponseCount(sv.ID); got != perLevel*len(levels) {
		t.Fatalf("stored %d responses", got)
	}
	est, err := loki.NewEstimator(loki.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	responses, err := st.Responses(sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	qe, err := est.EstimateQuestion(sv, sv.Question("lecturer-00"), responses)
	if err != nil {
		t.Fatal(err)
	}
	if qe.OverallN != perLevel*len(levels) {
		t.Fatalf("aggregated %d answers", qe.OverallN)
	}
	if diff := qe.OverallMean - truth; diff > 0.35 || diff < -0.35 {
		t.Errorf("noisy aggregate %.3f too far from truth %.1f", qe.OverallMean, truth)
	}
	// Every bin is populated and the none bin is exact.
	for l := 0; l < loki.NumLevels; l++ {
		if qe.Bins[l].N != perLevel {
			t.Errorf("bin %d n = %d", l, qe.Bins[l].N)
		}
	}
	if qe.Bins[loki.None].Mean != truth {
		t.Errorf("none bin mean %.3f, want exact truth", qe.Bins[loki.None].Mean)
	}
}

// TestEndToEndDurableStore replays a file-backed store across a restart
// of the backend.
func TestEndToEndDurableStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")

	open := func() (loki.Store, *httptest.Server) {
		st, err := loki.OpenFileStore(path)
		if err != nil {
			t.Fatal(err)
		}
		backend, err := loki.NewServer(loki.ServerConfig{
			Store:          st,
			Schedule:       loki.DefaultSchedule(),
			RequesterToken: "tok",
		})
		if err != nil {
			t.Fatal(err)
		}
		return st, httptest.NewServer(backend)
	}

	st, ts := open()
	sv := loki.AwarenessSurvey()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	c, err := loki.NewClient(loki.ClientConfig{BaseURL: ts.URL, Schedule: loki.DefaultSchedule(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	raw := []loki.Answer{loki.ChoiceAnswer("aware", 1), loki.ChoiceAnswer("participate", 1)}
	if _, err := c.Take(context.Background(), sv, "w1", raw, loki.Low); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: everything is replayed from the log.
	st2, ts2 := open()
	defer ts2.Close()
	defer st2.Close()
	if st2.ResponseCount(sv.ID) != 1 {
		t.Fatalf("restart lost responses: %d", st2.ResponseCount(sv.ID))
	}
	c2, err := loki.NewClient(loki.ClientConfig{BaseURL: ts2.URL, Schedule: loki.DefaultSchedule(), Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	summaries, err := c2.ListSurveys(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 1 || summaries[0].Responses != 1 {
		t.Fatalf("restarted listing = %+v", summaries)
	}
}

// TestAttackVersusDefenseIntegration runs the paper's two halves against
// each other end to end: the §2 attack wins on raw uploads and loses on
// Loki uploads, with the same seeds.
func TestAttackVersusDefenseIntegration(t *testing.T) {
	cfg := loki.DefaultDefenseConfig()
	cfg.Deanon.Population.RegistrySize = 40_000
	cfg.Deanon.Platform.WorkerPoolSize = 400
	cfg.Deanon.Quotas = [5]int{80, 80, 80, 30, 50}
	res, err := loki.RunDefense(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw.Attack.HealthExposed == 0 {
		t.Fatal("raw attack exposed nobody — nothing to defend against")
	}
	if res.Loki.Attack.HealthExposed*2 > res.Raw.Attack.HealthExposed {
		t.Errorf("defense too weak: %d exposed vs %d raw",
			res.Loki.Attack.HealthExposed, res.Raw.Attack.HealthExposed)
	}
	// Survivors of the Loki run are exactly the users who chose level
	// none — check via the experiment's own ground-truth scoring.
	if res.Loki.Attack.ReidentifiedCorrect != res.Loki.Attack.Reidentified {
		t.Error("noisy quasi-identifiers produced wrong re-identifications marked correct")
	}
}

// TestTransformedPlatformLevels checks the platform app-layer hook tags
// responses with each worker's own privacy preference.
func TestTransformedPlatformLevels(t *testing.T) {
	cfg := experiments.DefaultDefenseConfig()
	cfg.Deanon.Population.RegistrySize = 20_000
	cfg.Deanon.Platform.WorkerPoolSize = 300
	cfg.Deanon.Quotas = [5]int{60, 60, 60, 30, 40}

	// Run only the Loki half by reusing RunDefense and inspecting stats.
	res, err := experiments.RunDefense(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The Loki run must have collected responses at multiple levels:
	// its attack found fewer victims than raw but more than zero workers
	// remained linkable (the none-level users).
	if res.Loki.Attack.Linkable == 0 {
		t.Error("no linkable workers at all — level none users should remain linkable")
	}
}
