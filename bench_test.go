// Benchmarks that regenerate every table and figure of the paper (one
// Benchmark per experiment id in DESIGN.md §4) plus micro-benchmarks of
// the core mechanism and substrates.
//
// Run them all with:
//
//	go test -bench=. -benchmem
package loki_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"loki"
	"loki/internal/attack"
	"loki/internal/core"
	"loki/internal/experiments"
	"loki/internal/population"
	"loki/internal/rng"
	"loki/internal/survey"
)

// benchDeanonConfig is the paper-scale §2 configuration with a reduced
// registry so each benchmark iteration stays around tens of
// milliseconds.
func benchDeanonConfig() experiments.DeanonConfig {
	cfg := experiments.DefaultDeanonConfig()
	cfg.Population.RegistrySize = 50_000
	return cfg
}

// BenchmarkE1Deanonymization regenerates the §2 pipeline numbers
// (400 unique → 72 linkable → 18 health-exposed).
func BenchmarkE1Deanonymization(b *testing.B) {
	cfg := benchDeanonConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDeanonymization(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Attack.Linkable == 0 {
			b.Fatal("no linkable workers")
		}
	}
}

// BenchmarkE2Awareness regenerates the awareness follow-up (100 workers,
// 73 unaware-refuse).
func BenchmarkE2Awareness(b *testing.B) {
	cfg := benchDeanonConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAwareness(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.AwarenessRespondents == 0 {
			b.Fatal("no awareness respondents")
		}
	}
}

// BenchmarkE3BinDeviation regenerates Fig. 2's deviation curves.
func BenchmarkE3BinDeviation(b *testing.B) {
	cfg := experiments.DefaultTrialConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLecturerTrial(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxAbsDeviation[core.High] == 0 {
			b.Fatal("no deviation measured")
		}
	}
}

// BenchmarkE4BinHistogram regenerates Fig. 2's per-bin histogram (same
// harness; the assertion touches the histogram side).
func BenchmarkE4BinHistogram(b *testing.B) {
	cfg := experiments.DefaultTrialConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLecturerTrial(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range res.Lecturers {
			if lr.Raters == 0 {
				b.Fatal("empty histogram column")
			}
		}
	}
}

// BenchmarkE5TrustedComparison regenerates the 4.72-vs-4.61 anecdote.
func BenchmarkE5TrustedComparison(b *testing.B) {
	cfg := experiments.DefaultTrialConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTrustedComparison(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6LevelTakeup regenerates the 18/32/51/30 take-up split.
func BenchmarkE6LevelTakeup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunLevelTakeup(uint64(i+1), 100, experiments.PaperTrialStudents); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Defense regenerates the extension experiment (attack vs
// at-source obfuscation).
func BenchmarkE7Defense(b *testing.B) {
	cfg := experiments.DefaultDefenseConfig()
	cfg.Deanon = benchDeanonConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDefense(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Loki.Attack.Linkable >= res.Raw.Attack.Linkable {
			b.Fatal("defense failed")
		}
	}
}

// BenchmarkA1AccuracySweep regenerates the accuracy–privacy grid.
func BenchmarkA1AccuracySweep(b *testing.B) {
	cfg := experiments.DefaultSweepConfig()
	cfg.Trials = 100
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAccuracySweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2IDPolicy regenerates the worker-ID policy ablation.
func BenchmarkA2IDPolicy(b *testing.B) {
	cfg := benchDeanonConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.RunIDPolicyAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3Filter regenerates the redundancy-filter ablation.
func BenchmarkA3Filter(b *testing.B) {
	cfg := benchDeanonConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.RunFilterAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA4Estimator regenerates the estimator ablation.
func BenchmarkA4Estimator(b *testing.B) {
	cfg := experiments.DefaultTrialConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEstimatorAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA5LedgerGrowth regenerates the composition comparison.
func BenchmarkA5LedgerGrowth(b *testing.B) {
	cfg := experiments.DefaultLedgerGrowthConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunLedgerGrowth(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA6LinkageGrowth regenerates the anonymity-collapse table.
func BenchmarkA6LinkageGrowth(b *testing.B) {
	cfg := population.DefaultConfig()
	cfg.RegistrySize = 50_000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLinkageGrowth(uint64(i+1), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Stages) != 3 {
			b.Fatal("missing stages")
		}
	}
}

// BenchmarkA7NoiseComparison regenerates the mechanism comparison.
func BenchmarkA7NoiseComparison(b *testing.B) {
	cfg := experiments.DefaultNoiseComparisonConfig()
	cfg.Trials = 100
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunNoiseComparison(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA8Balance regenerates the budget-balancing comparison.
func BenchmarkA8Balance(b *testing.B) {
	cfg := experiments.DefaultBalanceConfig()
	cfg.Trials = 50
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBalancedCollection(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: the core mechanism and hot substrate paths.

// BenchmarkObfuscateRating measures one at-source Gaussian release.
func BenchmarkObfuscateRating(b *testing.B) {
	obf, err := loki.NewObfuscator(loki.DefaultSchedule(), loki.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	q := &survey.Question{ID: "q", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5}
	a := survey.RatingAnswer("q", 4)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obf.ObfuscateAnswer(q, a, core.Medium, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObfuscateResponseWithLedger measures a full survey release
// including privacy accounting.
func BenchmarkObfuscateResponseWithLedger(b *testing.B) {
	obf, err := loki.NewObfuscator(loki.DefaultSchedule(), loki.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ledger, err := loki.NewLedger(1e-6)
	if err != nil {
		b.Fatal(err)
	}
	sv := survey.Lecturers([]string{"A", "B", "C", "D", "E"})
	answers := make([]survey.Answer, 5)
	for i := range answers {
		answers[i] = survey.RatingAnswer(survey.LecturerQuestionID(i), 4)
	}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obf.ObfuscateResponse(sv, answers, core.High, r, ledger); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedgerSpent measures a cumulative-loss query over a populated
// ledger.
func BenchmarkLedgerSpent(b *testing.B) {
	obf, _ := loki.NewObfuscator(loki.DefaultSchedule(), loki.DefaultOptions())
	ledger, _ := loki.NewLedger(1e-6)
	sv := survey.Lecturers([]string{"A", "B", "C"})
	for i := 0; i < 100; i++ {
		if err := ledger.RecordResponse(obf, sv, core.Medium); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ledger.Spent().Epsilon <= 0 {
			b.Fatal("empty ledger")
		}
	}
}

// BenchmarkRegistryLookup measures one re-identification probe against a
// metro-scale registry.
func BenchmarkRegistryLookup(b *testing.B) {
	pop, err := population.Generate(population.DefaultConfig(), rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	reg := population.NewRegistry(pop)
	qis := make([]population.QuasiID, 1024)
	for i := range qis {
		qis[i] = population.QuasiIDOf(&pop.Persons[i*97%len(pop.Persons)])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reg.KAnonymity(qis[i%len(qis)]) == 0 {
			b.Fatal("own quasi-identifier missing")
		}
	}
}

// BenchmarkAttackPipeline measures the linkage+re-identification pass
// over a realistic response set (excluding population generation).
func BenchmarkAttackPipeline(b *testing.B) {
	cfg := population.DefaultConfig()
	cfg.RegistrySize = 50_000
	pop, err := population.Generate(cfg, rng.New(4))
	if err != nil {
		b.Fatal(err)
	}
	reg := population.NewRegistry(pop)
	surveys := map[string]*survey.Survey{
		survey.AstrologyID: survey.Astrology(),
		survey.MatchmakeID: survey.Matchmaking(),
		survey.CoverageID:  survey.Coverage(),
		survey.HealthID:    survey.Health(),
	}
	r := rng.New(5)
	var responses []survey.Response
	for i := 0; i < 300; i++ {
		p := &pop.Persons[i]
		for _, sv := range surveys {
			answers, err := population.Answers(p, sv, r)
			if err != nil {
				b.Fatal(err)
			}
			responses = append(responses, survey.Response{
				SurveyID: sv.ID,
				WorkerID: fmt.Sprintf("w%04d", i),
				Answers:  answers,
			})
		}
	}
	pipe, err := attack.New(reg, attack.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipe.Run(surveys, responses, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Linkable == 0 {
			b.Fatal("no linkable workers")
		}
	}
}

// BenchmarkPopulationGenerate measures synthetic-region generation.
func BenchmarkPopulationGenerate(b *testing.B) {
	cfg := population.DefaultConfig()
	cfg.RegistrySize = 50_000
	for i := 0; i < b.N; i++ {
		if _, err := population.Generate(cfg, rng.New(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerSubmit measures the full HTTP submission path: JSON
// decode, validation, level tally and store append.
func BenchmarkServerSubmit(b *testing.B) {
	st := loki.NewMemStore()
	defer st.Close()
	sv := survey.Awareness()
	if err := st.PutSurvey(sv); err != nil {
		b.Fatal(err)
	}
	srv, err := loki.NewServer(loki.ServerConfig{
		Store:          st,
		Schedule:       loki.DefaultSchedule(),
		RequesterToken: "tok",
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	payload, err := json.Marshal(&survey.Response{
		SurveyID: sv.ID,
		WorkerID: "bench",
		Answers: []survey.Answer{
			survey.ChoiceAnswer("aware", 0),
			survey.ChoiceAnswer("participate", 1),
		},
		PrivacyLevel: "medium",
		Obfuscated:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/api/v1/surveys/" + sv.ID + "/responses"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
	}
}

// BenchmarkStoreConcurrentSubmit compares the store backends on the
// ingest hot path: many goroutines appending responses concurrently,
// spread over 16 surveys so the sharded store's hash partitioner has
// work to distribute. Durable backends (file, ingest) fsync before
// acknowledging; ingest amortizes the fsync across a group commit and
// parallelizes it across shards.
//
// Run with:
//
//	go test -bench=StoreConcurrentSubmit -cpu 8
func BenchmarkStoreConcurrentSubmit(b *testing.B) {
	const surveys = 16
	makeSurvey := func(i int) *survey.Survey {
		return &survey.Survey{
			ID:    fmt.Sprintf("bench-submit-%02d", i),
			Title: fmt.Sprintf("Submit bench %d", i),
			Questions: []survey.Question{
				{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
			},
			RewardCents: 10,
		}
	}
	backends := []struct {
		name string
		open func(b *testing.B) loki.Store
	}{
		{"mem", func(b *testing.B) loki.Store { return loki.NewMemStore() }},
		{"file-sync-always", func(b *testing.B) loki.Store {
			st, err := loki.OpenFileStore(b.TempDir() + "/bench.jsonl")
			if err != nil {
				b.Fatal(err)
			}
			return st
		}},
		{"ingest-1", func(b *testing.B) loki.Store {
			st, err := loki.OpenIngestStore(b.TempDir(), loki.IngestConfig{Shards: 1})
			if err != nil {
				b.Fatal(err)
			}
			return st
		}},
		{"ingest-8", func(b *testing.B) loki.Store {
			st, err := loki.OpenIngestStore(b.TempDir(), loki.IngestConfig{Shards: 8})
			if err != nil {
				b.Fatal(err)
			}
			return st
		}},
	}
	for _, backend := range backends {
		b.Run(backend.name, func(b *testing.B) {
			st := backend.open(b)
			defer st.Close()
			ids := make([]string, surveys)
			for i := 0; i < surveys; i++ {
				sv := makeSurvey(i)
				ids[i] = sv.ID
				if err := st.PutSurvey(sv); err != nil {
					b.Fatal(err)
				}
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					r := &survey.Response{
						SurveyID:     ids[int(i)%surveys],
						WorkerID:     fmt.Sprintf("w%08d", i),
						Answers:      []survey.Answer{survey.RatingAnswer("q0", 3)},
						PrivacyLevel: "medium",
						Obfuscated:   true,
					}
					if err := st.AppendResponse(r); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkEstimateQuestion measures requester-side aggregation over
// 2000 noisy responses.
func BenchmarkEstimateQuestion(b *testing.B) {
	est, err := loki.NewEstimator(loki.DefaultSchedule())
	if err != nil {
		b.Fatal(err)
	}
	obf, _ := loki.NewObfuscator(loki.DefaultSchedule(), loki.DefaultOptions())
	sv := survey.Lecturers([]string{"A"})
	q := sv.Question("lecturer-00")
	r := rng.New(6)
	responses := make([]survey.Response, 2000)
	for i := range responses {
		lvl := core.Level(i % core.NumLevels)
		noisy, err := obf.ObfuscateAnswer(q, survey.RatingAnswer(q.ID, 4), lvl, r)
		if err != nil {
			b.Fatal(err)
		}
		responses[i] = survey.Response{
			SurveyID:     sv.ID,
			WorkerID:     fmt.Sprintf("w%d", i),
			Answers:      []survey.Answer{noisy},
			PrivacyLevel: lvl.String(),
			Obfuscated:   lvl != core.None,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qe, err := est.EstimateQuestion(sv, q, responses)
		if err != nil {
			b.Fatal(err)
		}
		if qe.OverallN != 2000 {
			b.Fatal("lost responses")
		}
	}
}
