// Lecturer survey: the paper's §3.2 trial end to end — 131 students rate
// 13 lecturers through at-source obfuscation with the observed privacy
// take-up (18 none / 32 low / 51 medium / 30 high), and the requester
// recovers per-bin and overall means (the paper's Fig. 2).
package main

import (
	"fmt"
	"log"

	"loki"
)

func main() {
	cfg := loki.DefaultTrialConfig()
	cfg.Seed = 2024

	res, err := loki.RunLecturerTrial(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	fmt.Println("What to look for (the paper's Fig. 2 observations):")
	fmt.Printf("  • the high-privacy bin deviates most (mean |dev| %.2f vs %.2f for none)\n",
		res.MeanAbsDeviation[loki.High], res.MeanAbsDeviation[loki.None])
	fmt.Printf("  • yet the overall estimate stays usable: naive RMSE %.3f across %d lecturers\n",
		res.NaiveRMSE, len(res.Lecturers))
	fmt.Printf("  • noise-aware pooling tightens it further to %.3f\n", res.PooledRMSE)
}
