// Quickstart: build a ratings survey, answer it at every privacy level,
// and watch what the at-source obfuscator uploads and what it costs in
// privacy. This is the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"loki"
)

func main() {
	// A three-question ratings survey, like the paper's lecturer trial.
	sv := &loki.Survey{
		ID:    "coffee",
		Title: "Campus coffee quality",
		Questions: []loki.Question{
			{ID: "espresso", Text: "Rate the espresso.", Kind: loki.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "filter", Text: "Rate the filter coffee.", Kind: loki.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "queue", Text: "Rate the queueing experience.", Kind: loki.Rating, ScaleMin: 1, ScaleMax: 5},
		},
	}
	if err := sv.Validate(); err != nil {
		log.Fatal(err)
	}

	// The user's true answers — these never leave the device above level
	// none.
	raw := []loki.Answer{
		loki.RatingAnswer("espresso", 4),
		loki.RatingAnswer("filter", 3),
		loki.RatingAnswer("queue", 2),
	}

	obf, err := loki.NewObfuscator(loki.DefaultSchedule(), loki.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ledger, err := loki.NewLedger(1e-6)
	if err != nil {
		log.Fatal(err)
	}
	rng := loki.NewRNG(42)

	fmt.Println("true answers: 4, 3, 2")
	fmt.Println()
	for _, level := range []loki.Level{loki.None, loki.Low, loki.Medium, loki.High} {
		noisy, err := obf.ObfuscateResponse(sv, raw, level, rng, ledger)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("level %-6s uploads: %.2f, %.2f, %.2f",
			level, noisy[0].Rating, noisy[1].Rating, noisy[2].Rating)
		if cost, ok, _ := obf.CostOfResponse(sv, level); ok {
			fmt.Printf("   cost this response: %v", cost)
		} else {
			fmt.Printf("   cost this response: unbounded (no noise)")
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Printf("cumulative ledger after all four uploads: %v, plus %d unprotected answers\n",
		ledger.Spent(), ledger.Unprotected())
	fmt.Println("higher levels add more noise; the ledger composes every release with zCDP.")
}
