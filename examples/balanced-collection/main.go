// Balanced collection: the paper's claim that cumulative privacy loss
// "can be tracked and balanced across the user base, while ensuring
// sufficient accuracy of the aggregated response", as an executable.
//
// A cohort of users carries heterogeneous privacy histories; the
// requester asks for a target accuracy; the allocator assigns each user
// the most protective level compatible with the target, upgrading only
// users with budget headroom — and is compared against the naive
// "everyone answers at the same level" baselines.
package main

import (
	"fmt"
	"log"

	"loki"
	"loki/internal/core"
	"loki/internal/experiments"
	"loki/internal/survey"
)

func main() {
	// The A8 experiment end to end.
	cfg := experiments.DefaultBalanceConfig()
	cfg.Trials = 200
	res, err := loki.RunBalancedCollection(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	// The same machinery through the raw API, for three users.
	obf, err := loki.NewObfuscator(loki.DefaultSchedule(), loki.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	al, err := core.NewAllocator(obf, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	sv := survey.Lecturers([]string{"Dr. X"})
	users := []core.UserBudget{
		{ID: "fresh", SpentRho: 0, BudgetEpsilon: 800},
		{ID: "regular", SpentRho: 300, BudgetEpsilon: 800},
		{ID: "heavy-user", SpentRho: 3000, BudgetEpsilon: 800},
	}
	plan, err := al.Plan(sv, users, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-user assignments (target SE 0.5):")
	for _, a := range plan.Assignments {
		if a.Participate {
			fmt.Printf("  %-10s answers at %v\n", a.UserID, a.Level)
		} else {
			fmt.Printf("  %-10s sits this one out (budget exhausted)\n", a.UserID)
		}
	}
	fmt.Printf("predicted SE %.3f with %d participants\n", plan.PredictedSE, plan.Participants)
}
