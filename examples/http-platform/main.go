// HTTP platform: the full client–server system over real HTTP on
// localhost — the paper's Fig. 1 flow. The backend publishes a survey;
// three app users take it at different privacy levels; their clients
// obfuscate at source and upload only noisy answers; the requester pulls
// the noise-aware aggregate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"loki"
	"loki/internal/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Backend with an in-memory store and the default public schedule.
	st := loki.NewMemStore()
	defer st.Close()
	const token = "requester-secret"
	backend, err := loki.NewServer(loki.ServerConfig{
		Store:          st,
		Schedule:       loki.DefaultSchedule(),
		RequesterToken: token,
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(backend)
	defer ts.Close()
	fmt.Printf("backend listening at %s\n\n", ts.URL)

	// The requester publishes a survey over the API.
	sv := loki.LecturerSurvey([]string{"Dr. Hopper", "Dr. Knuth"})
	if err := publish(ts.URL, token, sv); err != nil {
		return err
	}

	// Three app users at three privacy levels.
	users := []struct {
		name    string
		level   loki.Level
		ratings [2]float64
	}{
		{"alice", loki.None, [2]float64{5, 4}},
		{"bob", loki.Medium, [2]float64{4, 4}},
		{"carol", loki.High, [2]float64{5, 3}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i, u := range users {
		c, err := loki.NewClient(loki.ClientConfig{
			BaseURL:  ts.URL,
			Schedule: loki.DefaultSchedule(),
			Seed:     uint64(1000 + i),
		})
		if err != nil {
			return err
		}
		fetched, err := c.GetSurvey(ctx, sv.ID)
		if err != nil {
			return err
		}
		raw := []loki.Answer{
			loki.RatingAnswer("lecturer-00", u.ratings[0]),
			loki.RatingAnswer("lecturer-01", u.ratings[1]),
		}
		res, err := c.Take(ctx, fetched, u.name, raw, u.level)
		if err != nil {
			return err
		}
		fmt.Printf("%s uploads at level %-6s raw (%.0f, %.0f) → noisy (%.2f, %.2f); ledger ε=%.1f\n",
			u.name, u.level, u.ratings[0], u.ratings[1],
			res.Uploaded[0].Rating, res.Uploaded[1].Rating, res.Spent.Epsilon)
	}

	// The requester pulls the aggregate (authenticated).
	agg, err := aggregateOf(ts.URL, token, sv.ID)
	if err != nil {
		return err
	}
	fmt.Println("\nrequester's noise-aware aggregate:")
	fmt.Print(agg)

	// And the Fig. 1(a) survey list, as any app user sees it.
	c, err := loki.NewClient(loki.ClientConfig{BaseURL: ts.URL, Schedule: loki.DefaultSchedule(), Seed: 1})
	if err != nil {
		return err
	}
	summaries, err := c.ListSurveys(ctx)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(client.RenderSurveyList(summaries))
	return nil
}

// publish POSTs a survey with the requester token.
func publish(baseURL, token string, sv *loki.Survey) error {
	body, err := json.Marshal(sv)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/api/v1/surveys", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("publish: HTTP %d", resp.StatusCode)
	}
	fmt.Printf("published %q\n", sv.ID)
	return nil
}

// aggregateOf GETs the requester aggregate and renders the per-question
// means.
func aggregateOf(baseURL, token, surveyID string) (string, error) {
	req, err := http.NewRequest(http.MethodGet, baseURL+"/api/v1/surveys/"+surveyID+"/aggregate", nil)
	if err != nil {
		return "", err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("aggregate: HTTP %d", resp.StatusCode)
	}
	var out struct {
		Questions []struct {
			QuestionID  string  `json:"question_id"`
			OverallMean float64 `json:"overall_mean"`
			OverallN    int     `json:"overall_n"`
			PooledMean  float64 `json:"pooled_mean"`
		} `json:"questions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	s := ""
	for _, q := range out.Questions {
		s += fmt.Sprintf("  %-12s n=%d  overall=%.2f  pooled=%.2f\n",
			q.QuestionID, q.OverallN, q.OverallMean, q.PooledMean)
	}
	return s, nil
}
