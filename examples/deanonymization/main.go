// De-anonymization: the paper's §2 attack as a library user would run it
// — generate a region, open an AMT-style platform, post the three
// profiling surveys plus the "anonymous" health survey, then link,
// re-identify and expose. Also shows the countermeasure: per-survey
// pseudonymous IDs drive the attack to zero.
package main

import (
	"fmt"
	"log"

	"loki"
	"loki/internal/platform"
	"loki/internal/survey"
)

func main() {
	cfg := loki.DefaultDeanonConfig()
	cfg.Seed = 99

	res, err := loki.RunDeanonymization(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	fmt.Println("three sample victims (identity recovered + sensitive answers linked):")
	for i, v := range res.Attack.Victims {
		if i == 3 {
			break
		}
		fmt.Printf("  person %6d  %v  smoking=%q  cough=%d days/week  risk=%.2f\n",
			v.PersonID, v.QuasiID, v.Smoking, v.CoughDays, v.Risk)
	}

	// What a platform-side linkage audit would have said about this
	// requester's portfolio before any of it happened.
	portfolio := append(survey.ProfilingSurveys(), survey.Health())
	audit := loki.AuditPortfolio(portfolio)
	fmt.Println("\nplatform linkage audit of the attacker's portfolio:")
	for _, f := range audit.Findings {
		fmt.Printf("  [%s] %s\n", f.Severity, f.Message)
	}

	// The countermeasure: fresh worker IDs per survey.
	cfg.Platform.IDPolicy = platform.PseudonymousIDs
	safe, err := loki.RunDeanonymization(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith per-survey pseudonyms the same attack links %d workers and exposes %d.\n",
		safe.Attack.Linkable, safe.Attack.HealthExposed)
}
