// Budget ledger: the paper's "mathematical framework … so that the
// cumulative privacy loss can be tracked and balanced". One user answers
// survey after survey; the ledger composes every noisy release and a
// budget policy picks the cheapest affordable level — until even the
// highest level no longer fits.
package main

import (
	"fmt"
	"log"

	"loki"
)

func main() {
	obf, err := loki.NewObfuscator(loki.DefaultSchedule(), loki.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ledger, err := loki.NewLedger(1e-6)
	if err != nil {
		log.Fatal(err)
	}
	rng := loki.NewRNG(7)

	sv := loki.LecturerSurvey([]string{"Dr. A", "Dr. B", "Dr. C"})
	raw := []loki.Answer{
		loki.RatingAnswer("lecturer-00", 4),
		loki.RatingAnswer("lecturer-01", 5),
		loki.RatingAnswer("lecturer-02", 3),
	}

	// A (generous) lifetime budget: zCDP-composed ε at δ=1e-6.
	const budget = 500.0
	fmt.Printf("lifetime budget: ε ≤ %.0f at δ=1e-6\n\n", budget)

	for k := 1; ; k++ {
		level, ok, err := ledger.MinAffordableLevel(obf, sv, budget)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Printf("survey %2d: even level high no longer fits the budget — stop answering.\n", k)
			break
		}
		if _, err := obf.ObfuscateResponse(sv, raw, level, rng, ledger); err != nil {
			log.Fatal(err)
		}
		spent := ledger.Spent()
		fmt.Printf("survey %2d: answered at %-6s  cumulative ε=%.1f (ρ=%.2f)\n",
			k, level, spent.Epsilon, ledger.Rho())
		if k > 200 {
			fmt.Println("…budget still not exhausted after 200 surveys")
			break
		}
	}

	fmt.Println("\nper-survey cost of this questionnaire at each level:")
	for _, level := range []loki.Level{loki.Low, loki.Medium, loki.High} {
		cost, _, err := obf.CostOfResponse(sv, level)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %v\n", level, cost)
	}
}
