// Package loki is the public API of the Loki reproduction — a
// crowdsourced survey platform with at-source obfuscation, after
// Kandappu, Sivaraman, Friedman and Boreli, "Exposing and Mitigating
// Privacy Loss in Crowdsourced Survey Platforms" (CoNEXT Student
// Workshop 2013).
//
// The package re-exports the pieces a downstream user composes:
//
//   - privacy levels, the noise schedule and the at-source Obfuscator
//     (the paper's contribution),
//   - the per-user privacy-loss Ledger backed by differential-privacy
//     accounting,
//   - the survey model and the paper's survey catalog,
//   - the backend Server and device Client,
//   - the simulation substrates (population, platform, attack) and the
//     experiment harnesses that regenerate every figure and table.
//
// Quick start:
//
//	obf, _ := loki.NewObfuscator(loki.DefaultSchedule(), loki.DefaultOptions())
//	ledger, _ := loki.NewLedger(1e-6)
//	noisy, _ := obf.ObfuscateResponse(sv, answers, loki.Medium, rng, ledger)
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package loki

import (
	"loki/internal/aggregate"
	"loki/internal/attack"
	"loki/internal/blockio"
	"loki/internal/budget"
	"loki/internal/checkpoint"
	"loki/internal/client"
	"loki/internal/core"
	"loki/internal/dp"
	"loki/internal/experiments"
	"loki/internal/ingest"
	"loki/internal/platform"
	"loki/internal/population"
	"loki/internal/rng"
	"loki/internal/server"
	"loki/internal/shardrpc"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// Privacy levels (core).
type (
	// Level is a user-facing privacy level (none/low/medium/high).
	Level = core.Level
	// Schedule maps levels to noise magnitudes.
	Schedule = core.Schedule
	// Options tune obfuscation (clamping, rounding, ledger δ).
	Options = core.Options
	// Obfuscator perturbs answers at source.
	Obfuscator = core.Obfuscator
	// Ledger tracks one user's cumulative privacy loss.
	Ledger = core.Ledger
)

// Re-exported privacy levels.
const (
	None   = core.None
	Low    = core.Low
	Medium = core.Medium
	High   = core.High
	// NumLevels is the number of privacy levels.
	NumLevels = core.NumLevels
)

// Core constructors.
var (
	// NewObfuscator validates a schedule and options and returns an
	// at-source obfuscator.
	NewObfuscator = core.NewObfuscator
	// NewLedger creates a per-user privacy-loss ledger reporting at δ.
	NewLedger = core.NewLedger
	// DefaultSchedule is the doubling σ schedule {0, 0.5, 1, 2}.
	DefaultSchedule = core.DefaultSchedule
	// LinearSchedule is the alternative linear schedule.
	LinearSchedule = core.LinearSchedule
	// DefaultOptions returns unclamped, unrounded obfuscation with
	// δ=1e-6.
	DefaultOptions = core.DefaultOptions
	// ParseLevel parses a level name.
	ParseLevel = core.ParseLevel
)

// Survey model.
type (
	// Survey is an ordered questionnaire.
	Survey = survey.Survey
	// Question is one survey question.
	Question = survey.Question
	// QuestionKind selects a question's answer type.
	QuestionKind = survey.QuestionKind
	// Answer is one answer to a question.
	Answer = survey.Answer
	// Response is one worker's completed survey.
	Response = survey.Response
)

// Question kinds.
const (
	// Rating is a bounded numeric scale question (1..5 stars).
	Rating = survey.Rating
	// MultipleChoice is a single-select categorical question.
	MultipleChoice = survey.MultipleChoice
	// Numeric is a bounded integer question.
	Numeric = survey.Numeric
	// FreeText is an unconstrained text question (not obfuscatable).
	FreeText = survey.FreeText
)

// AuditReport is the linkage-risk audit of a requester's survey
// portfolio.
type AuditReport = survey.AuditReport

// Survey constructors and catalog.
var (
	// AuditPortfolio reports how close a set of surveys comes to jointly
	// harvesting the {date of birth, gender, ZIP} quasi-identifier.
	AuditPortfolio = survey.AuditPortfolio
	// RatingAnswer, NumericAnswer, ChoiceAnswer and TextAnswer build
	// answers of each kind.
	RatingAnswer  = survey.RatingAnswer
	NumericAnswer = survey.NumericAnswer
	ChoiceAnswer  = survey.ChoiceAnswer
	TextAnswer    = survey.TextAnswer
	// The paper's surveys.
	AstrologySurvey   = survey.Astrology
	MatchmakingSurvey = survey.Matchmaking
	CoverageSurvey    = survey.Coverage
	HealthSurvey      = survey.Health
	AwarenessSurvey   = survey.Awareness
	LecturerSurvey    = survey.Lecturers
)

// Differential privacy.
type (
	// PrivacyParams is an (ε, δ) guarantee.
	PrivacyParams = dp.Params
	// Accountant tracks privacy events.
	Accountant = dp.Accountant
)

// Simulation substrates.
type (
	// Population is a synthetic region of persons.
	Population = population.Population
	// Registry is the public identified dataset used for
	// re-identification.
	Registry = population.Registry
	// Platform is the AMT-style crowdsourcing engine.
	Platform = platform.Platform
	// AttackPipeline is the §2 de-anonymization pipeline.
	AttackPipeline = attack.Pipeline
	// AttackResult is its outcome.
	AttackResult = attack.Result
)

// Substrate constructors.
var (
	// NewRNG returns a deterministic seeded generator.
	NewRNG = rng.New
	// GeneratePopulation builds a synthetic region.
	GeneratePopulation = population.Generate
	// DefaultPopulationConfig is the calibrated region config.
	DefaultPopulationConfig = population.DefaultConfig
	// NewRegistry indexes a population for re-identification.
	NewRegistry = population.NewRegistry
	// NewPlatform opens a crowdsourcing platform over a population.
	NewPlatform = platform.New
	// DefaultPlatformConfig is the calibrated platform config.
	DefaultPlatformConfig = platform.DefaultConfig
	// NewAttack builds the de-anonymization pipeline.
	NewAttack = attack.New
	// DefaultAttackConfig enables the redundancy filter.
	DefaultAttackConfig = attack.DefaultConfig
)

// Backend and app.
type (
	// Server is the Loki backend (http.Handler).
	Server = server.Server
	// ServerConfig configures it.
	ServerConfig = server.Config
	// Client is the Loki app for one user.
	Client = client.Client
	// ClientConfig configures it.
	ClientConfig = client.Config
	// Store persists surveys and responses.
	Store = store.Store
	// FileStoreOptions tune the file store's durability policy.
	FileStoreOptions = store.FileOptions
	// SyncPolicy selects when the file store fsyncs appends.
	SyncPolicy = store.SyncPolicy
	// IngestStore is the sharded, group-committed durable store for
	// high-throughput response ingestion.
	IngestStore = ingest.Sharded
	// IngestConfig tunes shard count, commit window, segment size and
	// compaction of an IngestStore.
	IngestConfig = ingest.Config
	// IngestStats reports cumulative ingest counters (appends, group
	// commits, rotations, snapshots).
	IngestStats = ingest.Stats
	// IngestShardStats is one ingest shard's observability snapshot
	// (segment counts, last compaction, counters).
	IngestShardStats = ingest.ShardStats
	// Estimator computes noise-aware aggregates from a full response
	// slice (the batch read path).
	Estimator = aggregate.Estimator
	// Accumulator folds responses one at a time into resumable
	// aggregate state; finalizing applies noise-debiasing at query time
	// in O(1) of the number of folded responses (the incremental read
	// path).
	Accumulator = aggregate.Accumulator
	// AccumulatorState is an Accumulator's serializable snapshot.
	AccumulatorState = aggregate.AccumulatorState
	// SurveyEstimate is a finalized survey-wide aggregate (questions,
	// choices, quality tally).
	SurveyEstimate = aggregate.SurveyEstimate
	// QualityTally counts responses passing the redundancy screen.
	QualityTally = aggregate.QualityTally
	// CheckpointLog is the durable log of live-aggregate checkpoints
	// (one file per survey, one record per shard): restore it into a
	// ServerConfig so restart catch-up scans only each shard's tail
	// beyond its own checkpoint cursor.
	CheckpointLog = checkpoint.Log
	// CheckpointRecord is one shard's durable checkpoint (partial
	// accumulator state + per-shard cursor + definition fingerprint +
	// shard layout).
	CheckpointRecord = checkpoint.Record
	// ShardRouter partitions the response stream across shards — one in
	// the classic standalone deployment, many on a cluster — behind the
	// interface ServerConfig.Router accepts. Implementations: LocalShards
	// (in-process stores) and RemoteShards (shardrpc clients).
	ShardRouter = shardset.ShardRouter
	// LocalShards is the in-process ShardRouter over per-shard stores.
	LocalShards = shardset.Local
	// LocalShardOptions tune a LocalShards (global shard IDs, journal).
	LocalShardOptions = shardset.LocalOptions
	// RemoteShards is the cluster-side ShardRouter: shard-addressed
	// calls forward to the owning nodes over shardrpc, submits are
	// group-batched per shard.
	RemoteShards = shardrpc.Remote
	// ShardRPCClient speaks the internal cluster transport to one node.
	ShardRPCClient = shardrpc.Client
	// ShardRPCHandler serves the cluster transport over a node backend.
	ShardRPCHandler = shardrpc.Handler
	// ClusterNode adapts a Server with a local router into the shardrpc
	// backend a frontend and its replicas talk to.
	ClusterNode = server.Node
	// Replica is a read-only follower fed by WAL-tail shipping.
	Replica = server.Replica
	// ReplicaConfig configures it.
	ReplicaConfig = server.ReplicaConfig
	// ShardPartial is one shard's partial-accumulator answer on the
	// cluster transport (full, delta, or not-modified — the frontend
	// cache's conditional fetch).
	ShardPartial = shardrpc.Partial
	// JournalShardStats reports one shard journal's retention state
	// (truncation base, retained entries/bytes, registered followers).
	JournalShardStats = shardset.JournalStats
	// FrontendCacheInfo is the frontend partial cache's admin report.
	FrontendCacheInfo = server.FrontendCacheInfo
	// BudgetConfig is the per-worker privacy-budget ceiling (cap ε at a
	// fixed δ) every budget shard enforces.
	BudgetConfig = budget.Config
	// BudgetCharge is one submit's debit request against a worker's
	// account.
	BudgetCharge = budget.Charge
	// BudgetOutcome reports one charge's decision: rejected or admitted,
	// with the spent and remaining ε after it.
	BudgetOutcome = budget.Outcome
	// BudgetAccount is a worker's folded privacy spend (zCDP rho,
	// unprotected disclosures, charge/refund counters).
	BudgetAccount = budget.Account
	// BudgetShardStats is one budget shard's admin snapshot.
	BudgetShardStats = budget.ShardStats
	// BudgetCharger is the accounting interface the submit path consults:
	// a BudgetSet in-process, or a RemoteBudgetCharger on frontends.
	BudgetCharger = budget.Charger
	// BudgetSet hosts budget shards with a shared durable charge journal
	// — the whole shard space standalone, the node's owned subset on
	// clusters.
	BudgetSet = budget.Set
	// BudgetSetOptions configure NewBudgetSet (shard space, hosted
	// subset, journal directory, cap).
	BudgetSetOptions = budget.SetOptions
	// CheckpointOptions select the checkpoint log's on-disk codec.
	CheckpointOptions = checkpoint.Options
	// BudgetError is the client-side typed form of a 429
	// budget_exhausted refusal: Retry-After plus remaining (ε, δ).
	BudgetError = client.BudgetError
	// ThrottleError is the client-side typed form of a 429
	// overloaded/rate_limited refusal: the short code plus the server's
	// Retry-After hint.
	ThrottleError = client.ThrottleError
	// Submitter is the client's batching async submit pipeline:
	// responses coalesce into batch uploads, settlement is per record,
	// acked-durable records are never re-sent, throttled records retry
	// with backoff honoring Retry-After.
	Submitter = client.Submitter
	// SubmitterConfig tunes batch size, linger, inflight bound and the
	// retry policy.
	SubmitterConfig = client.SubmitterConfig
	// SubmitOutcome is one record's final verdict from a Submitter.
	SubmitOutcome = client.SubmitOutcome
	// SubmitterStats are a Submitter's cumulative pipeline counters.
	SubmitterStats = client.SubmitterStats
	// AdmissionInfo is the server's overload-protection admin snapshot
	// (inflight/queue depth with high-water marks, admitted/shed/
	// throttled counters) — present only when admission knobs are set.
	AdmissionInfo = server.AdmissionInfo
	// BatchSubmitRequest and BatchSubmitResult are the batching submit
	// endpoint's wire shapes (POST /api/v1/responses); BatchSubmitItem
	// is one record's request-aligned verdict.
	BatchSubmitRequest = server.BatchSubmitRequest
	BatchSubmitResult  = server.BatchSubmitResult
	BatchSubmitItem    = server.BatchSubmitItem
)

// File store sync policies.
const (
	// SyncAlways fsyncs every append before acknowledging it.
	SyncAlways = store.SyncAlways
	// SyncInterval fsyncs on a timer (bounded loss on crash).
	SyncInterval = store.SyncInterval
	// SyncNever leaves write-back to the OS.
	SyncNever = store.SyncNever
)

// On-disk record codecs (see internal/blockio): every durable log
// accepts either; non-empty files dictate their own codec on open.
const (
	// CodecBinary is the chunked compressed block format with a
	// trailing block index on sealed files.
	CodecBinary = blockio.CodecBinary
	// CodecJSON is the readable JSON-lines fallback.
	CodecJSON = blockio.CodecJSON
)

// Backend constructors.
var (
	// NewServer builds the backend.
	NewServer = server.New
	// NewClient builds the app.
	NewClient = client.New
	// NewMemStore is the in-memory store.
	NewMemStore = store.NewMem
	// OpenFileStore is the durable JSON-lines store (fsync per append).
	OpenFileStore = store.OpenFile
	// OpenFileStoreWith opens the file store with an explicit sync
	// policy.
	OpenFileStoreWith = store.OpenFileWith
	// OpenIngestStore is the sharded segmented-WAL store built for
	// concurrent submission at scale.
	OpenIngestStore = ingest.Open
	// OpenCheckpointLog opens (replaying, with torn-tail repair) the
	// durable live-aggregate checkpoint log rooted at a directory;
	// OpenCheckpointLogWith selects the on-disk codec.
	OpenCheckpointLog     = checkpoint.Open
	OpenCheckpointLogWith = checkpoint.OpenWith
	// NewLocalShards builds the in-process shard router over per-shard
	// stores.
	NewLocalShards = shardset.NewLocal
	// NewShardRPCClient connects to one cluster node's shardrpc
	// surface.
	NewShardRPCClient = shardrpc.NewClient
	// NewShardRPCHandler serves shardrpc over a node backend.
	NewShardRPCHandler = shardrpc.NewHandler
	// NewRemoteShards builds the cluster router over node clients with
	// an explicit placement map; NewRemoteShardsRoundRobin uses the
	// canonical round-robin layout.
	NewRemoteShards           = shardrpc.NewRemote
	NewRemoteShardsRoundRobin = shardrpc.NewRemoteRoundRobin
	// NewClusterNode wraps a Server for shardrpc serving.
	NewClusterNode = server.NewNode
	// NewReplica starts a read-only follower tailing one node.
	NewReplica = server.NewReplica
	// NewEstimator builds the noise-aware aggregator.
	NewEstimator = aggregate.NewEstimator
	// NewAccumulator builds an empty incremental aggregator for one
	// survey.
	NewAccumulator = aggregate.NewAccumulator
	// RestoreAccumulator resumes an accumulator from a snapshot.
	RestoreAccumulator = aggregate.RestoreAccumulator
	// CollectResponses materializes a survey's responses through the
	// store's streaming scan.
	CollectResponses = store.CollectResponses
	// NewBudgetSet opens (replaying the charge journal) a set of hosted
	// privacy-budget shards.
	NewBudgetSet = budget.NewSet
	// NewRemoteBudgetCharger is the frontend-side Charger routing charges
	// to the owning nodes over shardrpc.
	NewRemoteBudgetCharger = shardrpc.NewRemoteCharger
	// BudgetRoute maps a worker ID to its global budget shard — the same
	// hash every frontend and node uses, which is what makes cross-
	// frontend double-spend impossible.
	BudgetRoute = budget.Route
)

// ErrBudgetExhausted marks a submit refused because the worker's
// cumulative privacy spend would exceed the configured cap; the HTTP
// surface maps it to 429 with code "budget_exhausted".
var ErrBudgetExhausted = budget.ErrExhausted

// ErrSubmitterClosed is returned by Submitter.Submit once Close has
// begun; already-enqueued records still flush.
var ErrSubmitterClosed = client.ErrSubmitterClosed

// Experiments: every figure and table of the paper.
var (
	// RunDeanonymization reproduces §2 (E1+E2).
	RunDeanonymization = experiments.RunDeanonymization
	// DefaultDeanonConfig is its paper-shaped config.
	DefaultDeanonConfig = experiments.DefaultDeanonConfig
	// RunLecturerTrial reproduces Fig. 2 (E3+E4).
	RunLecturerTrial = experiments.RunLecturerTrial
	// DefaultTrialConfig is its paper-shaped config.
	DefaultTrialConfig = experiments.DefaultTrialConfig
	// RunTrustedComparison reproduces the §3.2 anecdote (E5).
	RunTrustedComparison = experiments.RunTrustedComparison
	// RunLevelTakeup reproduces the take-up distribution (E6).
	RunLevelTakeup = experiments.RunLevelTakeup
	// RunAccuracySweep is ablation A1.
	RunAccuracySweep = experiments.RunAccuracySweep
	// RunIDPolicyAblation is ablation A2.
	RunIDPolicyAblation = experiments.RunIDPolicyAblation
	// RunFilterAblation is ablation A3.
	RunFilterAblation = experiments.RunFilterAblation
	// RunEstimatorAblation is ablation A4.
	RunEstimatorAblation = experiments.RunEstimatorAblation
	// RunLedgerGrowth is ablation A5.
	RunLedgerGrowth = experiments.RunLedgerGrowth
	// RunLinkageGrowth is ablation A6 (anonymity collapse per survey).
	RunLinkageGrowth = experiments.RunLinkageGrowth
	// RunNoiseComparison is ablation A7 (Gaussian vs Laplace noise).
	RunNoiseComparison = experiments.RunNoiseComparison
	// RunBalancedCollection is ablation A8 (budget balancing across the
	// user base).
	RunBalancedCollection = experiments.RunBalancedCollection
	// RunDefense is the E7 extension: the §2 attack against Loki
	// uploads.
	RunDefense = experiments.RunDefense
	// DefaultDefenseConfig is its paper-shaped config.
	DefaultDefenseConfig = experiments.DefaultDefenseConfig
)
