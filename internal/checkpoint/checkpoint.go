// Package checkpoint persists live aggregate state so a restarted server
// resumes folding from where it left off instead of rescanning every
// survey's whole response backlog.
//
// The log is a directory of JSON-lines files, one per survey
// (surveys/<hex(survey-id)>.jsonl), each holding Records: one line
// carries one shard's partial aggregate.AccumulatorState, the per-shard
// cursor (highest sequence number folded in), the shard layout it was
// taken under, and a fingerprint of the survey definition the state was
// folded under. Later lines supersede earlier ones for the same (survey,
// shard); a Record with a nil State is a whole-survey tombstone (the
// survey's checkpoints were invalidated, e.g. by a republish). Files are
// opened lazily on first write and replayed in parallel on Open — the
// per-survey split is what lets restore parallelize across surveys
// instead of grinding through one interleaved log.
//
// Migration: a single-file log from earlier versions
// (checkpoints.jsonl) is still replayed, before the per-survey files, so
// its records are superseded by anything newer and shadowed by
// tombstones. New writes only ever go to per-survey files; the legacy
// file is left untouched for rollback.
//
// Open replays every file with the same torn-tail truncation as every
// other JSON-lines log in the system, so a crash mid-append costs at
// most the last record — the reader falls back to that shard's previous
// checkpoint and scans a slightly longer tail.
//
// Checkpoints are an optimization, never the source of truth: the store
// is. A missing, stale, or invalidated checkpoint only means more
// catch-up scanning; it can never change an aggregate's value, because
// restore validates the definition fingerprint, the shard layout and
// the accumulator shape before trusting any state.
//
// Each per-survey file rewrites itself (tmp + rename + dir sync) once
// enough superseded lines accumulate, so its size tracks the survey's
// live shard count, not the number of checkpoints ever taken.
package checkpoint

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"loki/internal/aggregate"
	"loki/internal/blockio"
	"loki/internal/store"
)

const (
	legacyLogName = "checkpoints.jsonl"
	surveysDir    = "surveys"
	logSuffix     = ".jsonl"
	tmpSuffix     = ".tmp"
)

// Record is one shard's durable checkpoint for one survey: resumable
// partial fold state plus the coordinates needed to trust it.
type Record struct {
	SurveyID string `json:"survey_id"`
	// Shard is the GLOBAL shard index the partial covers, and
	// ShardCount the global (cluster-wide) shard count of the placement
	// when the checkpoint was taken — together the identity of the
	// stream slice the state folds, stable across a node being
	// redeployed onto a different shard subset. State from a different
	// layout slices the stream differently and must not be restored.
	// Records persisted before sharding carry neither field and read as
	// shard 0 of 1 (see NumShards).
	Shard      int `json:"shard,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	// Fingerprint is survey.Fingerprint() of the definition the state
	// was folded under. Restore must reject state whose fingerprint does
	// not match the current definition: its bins were laid out for a
	// different question set.
	Fingerprint string `json:"fingerprint"`
	// Cursor is the highest per-shard sequence number folded into
	// State; catch-up resumes the shard's scan strictly after it.
	Cursor uint64 `json:"cursor"`
	// State is the accumulator snapshot. Nil marks a whole-survey
	// tombstone.
	State *aggregate.AccumulatorState `json:"state,omitempty"`
	// SavedUnixNano is when the checkpoint was taken (for the admin
	// surface's checkpoint-age report).
	SavedUnixNano int64 `json:"saved_unix_nano"`
}

// SavedAt returns the checkpoint's capture time.
func (r *Record) SavedAt() time.Time { return time.Unix(0, r.SavedUnixNano) }

// NumShards returns the shard layout the record was taken under;
// records from pre-sharding logs read as a one-shard layout.
func (r *Record) NumShards() int {
	if r.ShardCount <= 0 {
		return 1
	}
	return r.ShardCount
}

// surveyFile is one survey's lazily opened append handle, in either
// codec (exactly one of w/bw is set — a file never mixes formats).
type surveyFile struct {
	f  *os.File
	w  *bufio.Writer   // JSON lines
	bw *blockio.Writer // blockio blocks, resumed unsealed
	// appended counts records written since the last rewrite; once it
	// sufficiently exceeds the survey's live shard-record count the
	// file compacts.
	appended int
}

// write buffers one marshaled record in the file's codec framing.
func (sf *surveyFile) write(b []byte) error {
	if sf.bw != nil {
		_, err := sf.bw.Append(b)
		return err
	}
	if _, err := sf.w.Write(b); err != nil {
		return err
	}
	return sf.w.WriteByte('\n')
}

// flush pushes buffered records to the OS.
func (sf *surveyFile) flush() error {
	if sf.bw != nil {
		return sf.bw.Flush()
	}
	return sf.w.Flush()
}

// Options tune a checkpoint log.
type Options struct {
	// Codec is the encoding for files created (or rewritten by
	// compaction) under this log: blockio.CodecJSON (default — readable
	// lines) or blockio.CodecBinary (compressed blockio blocks; what the
	// server configures). Existing files keep their own sniffed format
	// for appends until a compaction rewrites them, which is how a
	// directory migrates codecs in place.
	Codec string
}

// Log is a durable checkpoint log rooted in one directory. It is safe
// for concurrent use.
type Log struct {
	dir   string
	codec string

	mu sync.Mutex
	// recs maps survey -> shard -> record.
	recs map[string]map[int]*Record
	// legacy marks surveys whose records came (only) from the legacy
	// single-file log: dropping such a survey must leave a durable
	// tombstone in its per-survey file, or the legacy record would
	// resurrect on the next Open.
	legacy map[string]bool
	files  map[string]*surveyFile
	// err is the first I/O failure, sticky: after a failed write or
	// fsync the on-disk tail is unknowable, so further appends could
	// interleave with the buffered wreckage. Reads keep serving the
	// in-memory state; a restart re-replays whatever made it to disk.
	err error
	// corrupt counts unreadable records Open skipped.
	corrupt int
	closed  bool
}

// surveyFileName encodes a survey ID into a filesystem-safe name. Hex
// is clunky but collision-free for arbitrary IDs, and the records
// inside carry the real ID.
func surveyFileName(surveyID string) string {
	return hex.EncodeToString([]byte(surveyID)) + logSuffix
}

// Open replays (or creates) the checkpoint log in dir: the legacy
// single-file log first (if present), then every per-survey file, in
// parallel across surveys. A torn trailing line from a crashed append
// is truncated away; unreadable interior records are skipped and
// counted (CorruptRecords), never a refused open — the log is advisory
// and the store rebuilds anything it cannot provide.
func Open(dir string) (*Log, error) {
	return OpenWith(dir, Options{})
}

// OpenWith opens the checkpoint log with explicit options.
func OpenWith(dir string, opts Options) (*Log, error) {
	if opts.Codec == "" {
		opts.Codec = blockio.CodecJSON
	}
	if !blockio.ValidCodec(opts.Codec) {
		return nil, fmt.Errorf("checkpoint: unknown codec %q", opts.Codec)
	}
	if err := os.MkdirAll(filepath.Join(dir, surveysDir), 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: mkdir %s: %w", dir, err)
	}
	l := &Log{
		dir:    dir,
		codec:  opts.Codec,
		recs:   make(map[string]map[int]*Record),
		legacy: make(map[string]bool),
		files:  make(map[string]*surveyFile),
	}
	// Legacy single-file log: replayed first so per-survey files
	// supersede and tombstone it.
	err := store.ReplayLines(filepath.Join(dir, legacyLogName), true, func(line []byte) error {
		if rec, ok := l.decode(line); ok {
			l.applyLocked(rec)
			l.legacy[rec.SurveyID] = true
		}
		return nil
	})
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if err := l.replaySurveyFiles(); err != nil {
		return nil, err
	}
	return l, nil
}

// decode parses one record line, counting (not failing on) garbage.
func (l *Log) decode(line []byte) (*Record, bool) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil || rec.SurveyID == "" {
		// Checkpoints are advisory: an unreadable record costs the
		// affected shard a longer catch-up scan, never a refused
		// startup — the store can rebuild every accumulator. Skipped
		// records are counted (CorruptRecords) so the operator hears
		// about the damage, and the next compaction rewrites the file
		// clean.
		l.corrupt++
		return nil, false
	}
	return &rec, true
}

// applyLocked folds one replayed record into the in-memory state.
func (l *Log) applyLocked(rec *Record) {
	if rec.State == nil {
		delete(l.recs, rec.SurveyID) // whole-survey tombstone
		return
	}
	shards := l.recs[rec.SurveyID]
	if shards == nil {
		shards = make(map[int]*Record)
		l.recs[rec.SurveyID] = shards
	}
	shards[rec.Shard] = rec
}

// replaySurveyFiles loads every per-survey file, fanning the replay out
// across a small worker pool — the restore-parallelism the per-survey
// layout exists for. Each file touches only its own survey's keys, so
// workers only contend on the map mutex for an instant per record.
func (l *Log) replaySurveyFiles() error {
	entries, err := os.ReadDir(filepath.Join(l.dir, surveysDir))
	if err != nil {
		return fmt.Errorf("checkpoint: list %s: %w", filepath.Join(l.dir, surveysDir), err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, logSuffix) {
			if strings.HasSuffix(name, tmpSuffix) {
				// A crash mid-compaction left a temp file; it was never
				// visible, so it is garbage.
				_ = os.Remove(filepath.Join(l.dir, surveysDir, name))
			}
			continue
		}
		names = append(names, name)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(names) {
		workers = len(names)
	}
	if workers < 1 {
		return nil
	}
	type fileState struct {
		recs    []*Record
		corrupt int
	}
	work := make(chan int)
	states := make([]fileState, len(names))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				st := &states[i]
				path := filepath.Join(l.dir, surveysDir, names[i])
				apply := func(rec []byte) error {
					var r Record
					if jerr := json.Unmarshal(rec, &r); jerr != nil || r.SurveyID == "" {
						st.corrupt++
						return nil
					}
					st.recs = append(st.recs, &r)
					return nil
				}
				bin, err := blockio.Sniff(path)
				if err == nil && bin {
					_, err = blockio.Replay(path, true, func(_ uint64, payload []byte) error {
						return apply(payload)
					})
				} else if err == nil {
					err = store.ReplayLines(path, true, apply)
				}
				if err != nil && !errors.Is(err, os.ErrNotExist) && errs[w] == nil {
					errs[w] = err
				}
			}
		}(w)
	}
	for i := range names {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Apply sequentially: within a file, order matters (tombstones
	// shadow earlier records); across files it does not (distinct
	// surveys).
	for i := range states {
		l.corrupt += states[i].corrupt
		for _, rec := range states[i].recs {
			l.applyLocked(rec)
		}
	}
	return nil
}

// GetShard returns the survey's current checkpoint for one shard, or
// false if none. The caller must not mutate the record or its state
// (RestoreAccumulator copies out of it).
func (l *Log) GetShard(surveyID string, shard int) (*Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.recs[surveyID][shard]
	return rec, ok
}

// Get returns the survey's shard-0 checkpoint — the whole checkpoint in
// a single-shard deployment.
func (l *Log) Get(surveyID string) (*Record, bool) { return l.GetShard(surveyID, 0) }

// Records returns every live checkpoint record (no tombstones), in
// unspecified order. Callers must not mutate the records.
func (l *Log) Records() []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Record
	for _, shards := range l.recs {
		for _, rec := range shards {
			out = append(out, rec)
		}
	}
	return out
}

// Len returns the number of surveys holding at least one live
// checkpoint record.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// CorruptRecords returns how many unreadable records Open skipped —
// nonzero means a file was damaged and some shards may restart with a
// longer (or whole-backlog) catch-up scan.
func (l *Log) CorruptRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.corrupt
}

// ensureFileLocked lazily opens (creating if necessary) the survey's
// append handle. Caller holds mu.
func (l *Log) ensureFileLocked(surveyID string) (*surveyFile, error) {
	if sf, ok := l.files[surveyID]; ok {
		return sf, nil
	}
	path := filepath.Join(l.dir, surveysDir, surveyFileName(surveyID))
	// A non-empty file dictates its own codec (never mix formats within
	// one file); a fresh or empty one takes the log's configured codec.
	binary := l.codec == blockio.CodecBinary
	if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
		if binary, err = blockio.Sniff(path); err != nil {
			return nil, fmt.Errorf("checkpoint: sniff %s: %w", path, err)
		}
	}
	var nextSeq uint64 = 1
	if binary {
		// Re-walk the block log for the resume point (repairing any torn
		// tail); checkpoint files are compacted small, so this is cheap.
		if _, err := blockio.Replay(path, true, func(seq uint64, _ []byte) error {
			nextSeq = seq + 1
			return nil
		}); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("checkpoint: resume %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", path, err)
	}
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: seek %s: %w", path, err)
	}
	sf := &surveyFile{f: f}
	if binary {
		if sf.bw, err = blockio.NewWriterAt(f, off, nextSeq); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: resume %s: %w", path, err)
		}
	} else {
		sf.w = bufio.NewWriter(f)
	}
	l.files[surveyID] = sf
	return sf, nil
}

// Put durably appends a checkpoint record to its survey's file: by the
// time it returns nil, the record is written and fsynced. Superseded
// lines are rewritten away once they outnumber the live records enough.
func (l *Log) Put(rec *Record) error {
	if rec.SurveyID == "" || rec.State == nil {
		return errors.New("checkpoint: Put needs a survey ID and state")
	}
	if rec.Shard < 0 {
		return fmt.Errorf("checkpoint: Put with negative shard %d", rec.Shard)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendLocked(rec.SurveyID, rec); err != nil {
		return err
	}
	l.applyLocked(rec)
	return l.maybeCompactLocked(rec.SurveyID)
}

// Drop durably tombstones every shard checkpoint of a survey — the
// invalidation path a republish (or an admin accumulator clear) takes.
// Dropping an absent checkpoint is a no-op. For surveys whose records
// live only in the legacy single-file log, the tombstone written to the
// per-survey file is what keeps the legacy record shadowed on the next
// Open; otherwise the per-survey file is simply removed.
func (l *Log) Drop(surveyID string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.recs[surveyID]; !ok {
		return nil
	}
	delete(l.recs, surveyID)
	if !l.legacy[surveyID] {
		return l.removeFileLocked(surveyID)
	}
	if err := l.appendLocked(surveyID, &Record{SurveyID: surveyID, SavedUnixNano: time.Now().UnixNano()}); err != nil {
		return err
	}
	return l.maybeCompactLocked(surveyID)
}

// removeFileLocked closes and deletes a survey's file. Caller holds mu.
func (l *Log) removeFileLocked(surveyID string) error {
	if sf, ok := l.files[surveyID]; ok {
		delete(l.files, surveyID)
		_ = sf.flush()
		_ = sf.f.Close()
	}
	path := filepath.Join(l.dir, surveysDir, surveyFileName(surveyID))
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		l.err = fmt.Errorf("checkpoint: remove %s: %w", path, err)
		return l.err
	}
	return syncDir(filepath.Join(l.dir, surveysDir))
}

// appendLocked writes one line to the survey's file, flushes and
// fsyncs. Caller holds mu.
func (l *Log) appendLocked(surveyID string, rec *Record) error {
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return errors.New("checkpoint: use after close")
	}
	sf, err := l.ensureFileLocked(surveyID)
	if err != nil {
		l.err = err
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal: %w", err)
	}
	werr := func() error {
		if err := sf.write(b); err != nil {
			return fmt.Errorf("checkpoint: write %s: %w", surveyFileName(surveyID), err)
		}
		if err := sf.flush(); err != nil {
			return fmt.Errorf("checkpoint: flush %s: %w", surveyFileName(surveyID), err)
		}
		if err := sf.f.Sync(); err != nil {
			return fmt.Errorf("checkpoint: sync %s: %w", surveyFileName(surveyID), err)
		}
		return nil
	}()
	if werr != nil {
		l.err = werr
		return werr
	}
	sf.appended++
	return nil
}

// maybeCompactLocked rewrites a survey's file when superseded lines
// dominate. The threshold (a handful of lines per live shard record,
// floor 8) keeps the rewrite amortized against the appends that earned
// it.
func (l *Log) maybeCompactLocked(surveyID string) error {
	sf, ok := l.files[surveyID]
	if !ok {
		return nil
	}
	threshold := 4 * (len(l.recs[surveyID]) + 1)
	if threshold < 8 {
		threshold = 8
	}
	if sf.appended < threshold {
		return nil
	}
	return l.compactSurveyLocked(surveyID)
}

// Compact rewrites every open survey file to exactly its live records.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for id := range l.files {
		if err := l.compactSurveyLocked(id); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) compactSurveyLocked(surveyID string) error {
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return errors.New("checkpoint: use after close")
	}
	sf, ok := l.files[surveyID]
	if !ok {
		return nil
	}
	path := filepath.Join(l.dir, surveysDir, surveyFileName(surveyID))
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", tmp, err)
	}
	// The rewrite targets the log's CONFIGURED codec regardless of the
	// old file's format: compaction is the in-place migration step.
	nf := &surveyFile{f: f}
	if l.codec == blockio.CodecBinary {
		bw, err := blockio.NewWriter(f, 1)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			l.err = fmt.Errorf("checkpoint: rewrite %s: %w", tmp, err)
			return l.err
		}
		nf.bw = bw // left unsealed: the reopened handle keeps appending
	} else {
		nf.w = bufio.NewWriter(f)
	}
	werr := func() error {
		live := l.recs[surveyID]
		if len(live) == 0 && l.legacy[surveyID] {
			// The file exists to shadow a legacy record: keep exactly
			// one tombstone record.
			b, err := json.Marshal(&Record{SurveyID: surveyID, SavedUnixNano: time.Now().UnixNano()})
			if err != nil {
				return fmt.Errorf("checkpoint: marshal: %w", err)
			}
			if err := nf.write(b); err != nil {
				return fmt.Errorf("checkpoint: write %s: %w", tmp, err)
			}
		}
		for _, rec := range live {
			b, err := json.Marshal(rec)
			if err != nil {
				return fmt.Errorf("checkpoint: marshal: %w", err)
			}
			if err := nf.write(b); err != nil {
				return fmt.Errorf("checkpoint: write %s: %w", tmp, err)
			}
		}
		if err := nf.flush(); err != nil {
			return fmt.Errorf("checkpoint: flush %s: %w", tmp, err)
		}
		return f.Sync() // the rename must never publish torn content
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		l.err = werr
		return werr
	}
	// Swap the live writer to the compacted file: close the old handle,
	// publish the rewrite, reopen for appends.
	delete(l.files, surveyID)
	if cerr := sf.f.Close(); cerr != nil {
		l.err = fmt.Errorf("checkpoint: close %s: %w", path, cerr)
		return l.err
	}
	if err := os.Rename(tmp, path); err != nil {
		l.err = fmt.Errorf("checkpoint: publish %s: %w", path, err)
		return l.err
	}
	if err := syncDir(filepath.Join(l.dir, surveysDir)); err != nil {
		l.err = err
		return err
	}
	nsf, err := l.ensureFileLocked(surveyID)
	if err != nil {
		l.err = err
		return err
	}
	nsf.appended = 0
	return nil
}

// Close flushes and closes every open survey file. The log must not be
// used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	first := l.err
	for _, sf := range l.files {
		flushErr := sf.flush()
		if flushErr == nil {
			flushErr = sf.f.Sync()
		}
		closeErr := sf.f.Close()
		if first == nil {
			if flushErr != nil {
				first = flushErr
			} else if closeErr != nil {
				first = closeErr
			}
		}
	}
	l.files = make(map[string]*surveyFile)
	return first
}

// syncDir fsyncs a directory so a just-renamed file's entry survives a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync dir %s: %w", dir, err)
	}
	return nil
}
