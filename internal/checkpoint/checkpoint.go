// Package checkpoint persists live aggregate state so a restarted server
// resumes folding from where it left off instead of rescanning every
// survey's whole response backlog.
//
// The log is a single JSON-lines file (checkpoints.jsonl) of Records:
// each line carries one survey's aggregate.AccumulatorState, the store
// cursor (highest sequence number folded in), and a fingerprint of the
// survey definition the state was folded under. Later lines supersede
// earlier ones for the same survey; a Record with a nil State is a
// tombstone (the survey's checkpoint was invalidated, e.g. by a
// republish). Open replays the log with the same torn-tail truncation as
// every other JSON-lines log in the system, so a crash mid-append costs
// at most the last record — the reader falls back to that survey's
// previous checkpoint and scans a slightly longer tail.
//
// Checkpoints are an optimization, never the source of truth: the store
// is. A missing, stale, or invalidated checkpoint only means more
// catch-up scanning; it can never change an aggregate's value, because
// restore validates the definition fingerprint and the accumulator shape
// before trusting any state.
//
// The log rewrites itself (tmp + rename + dir sync) once enough
// superseded lines accumulate, so its size tracks the number of live
// surveys, not the number of checkpoints ever taken.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"loki/internal/aggregate"
	"loki/internal/store"
)

const (
	logName   = "checkpoints.jsonl"
	tmpSuffix = ".tmp"
)

// Record is one survey's durable checkpoint: resumable fold state plus
// the coordinates needed to trust it.
type Record struct {
	SurveyID string `json:"survey_id"`
	// Fingerprint is survey.Fingerprint() of the definition the state
	// was folded under. Restore must reject state whose fingerprint does
	// not match the current definition: its bins were laid out for a
	// different question set.
	Fingerprint string `json:"fingerprint"`
	// Cursor is the highest store sequence number folded into State;
	// catch-up resumes the scan strictly after it.
	Cursor uint64 `json:"cursor"`
	// State is the accumulator snapshot. Nil marks a tombstone.
	State *aggregate.AccumulatorState `json:"state,omitempty"`
	// SavedUnixNano is when the checkpoint was taken (for the admin
	// surface's checkpoint-age report).
	SavedUnixNano int64 `json:"saved_unix_nano"`
}

// SavedAt returns the checkpoint's capture time.
func (r *Record) SavedAt() time.Time { return time.Unix(0, r.SavedUnixNano) }

// Log is a durable checkpoint log rooted in one directory. It is safe
// for concurrent use.
type Log struct {
	dir  string
	path string

	mu   sync.Mutex
	recs map[string]*Record
	f    *os.File
	w    *bufio.Writer
	// appended counts lines written since the last rewrite; once it
	// sufficiently exceeds the live record count the log compacts.
	appended int
	// err is the first I/O failure, sticky: after a failed write or
	// fsync the on-disk tail is unknowable, so further appends could
	// interleave with the buffered wreckage. Reads keep serving the
	// in-memory state; a restart re-replays whatever made it to disk.
	err error
	// corrupt counts unreadable records Open skipped.
	corrupt int
}

// Open replays (or creates) the checkpoint log in dir. A torn trailing
// line from a crashed append is truncated away; unreadable interior
// records are skipped and counted (CorruptRecords), never a refused
// open — the log is advisory and the store rebuilds anything it cannot
// provide.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: mkdir %s: %w", dir, err)
	}
	l := &Log{dir: dir, path: filepath.Join(dir, logName), recs: make(map[string]*Record)}
	err := store.ReplayLines(l.path, true, func(line []byte) error {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.SurveyID == "" {
			// Checkpoints are advisory: an unreadable record costs the
			// affected survey a longer catch-up scan, never a refused
			// startup — the store can rebuild every accumulator. Skipped
			// records are counted (CorruptRecords) so the operator hears
			// about the damage, and the next compaction rewrites the log
			// clean.
			l.corrupt++
			return nil
		}
		if rec.State == nil {
			delete(l.recs, rec.SurveyID) // tombstone
		} else {
			l.recs[rec.SurveyID] = &rec
		}
		return nil
	})
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if err := l.openForAppend(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Log) openForAppend() error {
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: open %s: %w", l.path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: seek %s: %w", l.path, err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return nil
}

// Get returns the survey's current checkpoint, or false if none. The
// caller must not mutate the record or its state (RestoreAccumulator
// copies out of it).
func (l *Log) Get(surveyID string) (*Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.recs[surveyID]
	return rec, ok
}

// Records returns every live checkpoint record (no tombstones), in
// unspecified order. Callers must not mutate the records.
func (l *Log) Records() []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Record, 0, len(l.recs))
	for _, rec := range l.recs {
		out = append(out, rec)
	}
	return out
}

// Len returns the number of live checkpoint records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// CorruptRecords returns how many unreadable records Open skipped —
// nonzero means the log was damaged and some surveys may restart with a
// longer (or whole-backlog) catch-up scan.
func (l *Log) CorruptRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.corrupt
}

// Put durably appends a checkpoint record: by the time it returns nil,
// the record is written and fsynced. Superseded lines are rewritten away
// once they outnumber the live records enough.
func (l *Log) Put(rec *Record) error {
	if rec.SurveyID == "" || rec.State == nil {
		return errors.New("checkpoint: Put needs a survey ID and state")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendLocked(rec); err != nil {
		return err
	}
	l.recs[rec.SurveyID] = rec
	return l.maybeCompactLocked()
}

// Drop durably tombstones a survey's checkpoint — the invalidation path
// a republish takes. Dropping an absent checkpoint is a no-op.
func (l *Log) Drop(surveyID string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.recs[surveyID]; !ok {
		return nil
	}
	if err := l.appendLocked(&Record{SurveyID: surveyID, SavedUnixNano: time.Now().UnixNano()}); err != nil {
		return err
	}
	delete(l.recs, surveyID)
	return l.maybeCompactLocked()
}

// appendLocked writes one line, flushes and fsyncs. Caller holds mu.
func (l *Log) appendLocked(rec *Record) error {
	if l.err != nil {
		return l.err
	}
	if l.w == nil {
		return errors.New("checkpoint: use after close")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal: %w", err)
	}
	werr := func() error {
		if _, err := l.w.Write(append(b, '\n')); err != nil {
			return fmt.Errorf("checkpoint: write %s: %w", l.path, err)
		}
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("checkpoint: flush %s: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("checkpoint: sync %s: %w", l.path, err)
		}
		return nil
	}()
	if werr != nil {
		l.err = werr
		return werr
	}
	l.appended++
	return nil
}

// maybeCompactLocked rewrites the log when superseded lines dominate.
// The threshold (a handful of lines per live record, floor 16) keeps the
// rewrite amortized against the appends that earned it.
func (l *Log) maybeCompactLocked() error {
	threshold := 4 * (len(l.recs) + 1)
	if threshold < 16 {
		threshold = 16
	}
	if l.appended < threshold {
		return nil
	}
	return l.compactLocked()
}

// Compact rewrites the log to exactly the live records.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactLocked()
}

func (l *Log) compactLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.w == nil {
		return errors.New("checkpoint: use after close")
	}
	tmp := l.path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", tmp, err)
	}
	w := bufio.NewWriter(f)
	werr := func() error {
		for _, rec := range l.recs {
			b, err := json.Marshal(rec)
			if err != nil {
				return fmt.Errorf("checkpoint: marshal: %w", err)
			}
			if _, err := w.Write(append(b, '\n')); err != nil {
				return fmt.Errorf("checkpoint: write %s: %w", tmp, err)
			}
		}
		if err := w.Flush(); err != nil {
			return fmt.Errorf("checkpoint: flush %s: %w", tmp, err)
		}
		return f.Sync() // the rename must never publish torn content
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		l.err = werr
		return werr
	}
	// Swap the live writer to the compacted file: close the old handle,
	// publish the rewrite, reopen for appends.
	l.w = nil
	if cerr := l.f.Close(); cerr != nil {
		l.err = fmt.Errorf("checkpoint: close %s: %w", l.path, cerr)
		return l.err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		l.err = fmt.Errorf("checkpoint: publish %s: %w", l.path, err)
		return l.err
	}
	if err := syncDir(l.dir); err != nil {
		l.err = err
		return err
	}
	if err := l.openForAppend(); err != nil {
		l.err = err
		return err
	}
	l.appended = 0
	return nil
}

// Close flushes and closes the log file. The log must not be used
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	flushErr := l.err
	if flushErr == nil {
		flushErr = l.w.Flush()
	}
	if flushErr == nil {
		flushErr = l.f.Sync()
	}
	l.w = nil
	closeErr := l.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// syncDir fsyncs a directory so a just-renamed file's entry survives a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync dir %s: %w", dir, err)
	}
	return nil
}
