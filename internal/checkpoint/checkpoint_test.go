package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"loki/internal/aggregate"
	"loki/internal/core"
	"loki/internal/survey"
)

func testSurvey() *survey.Survey {
	return &survey.Survey{
		ID:    "ckpt-test",
		Title: "Checkpoint test survey",
		Questions: []survey.Question{
			{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "q1", Text: "pick", Kind: survey.MultipleChoice, Options: []string{"a", "b", "c"}},
		},
		RewardCents: 1,
	}
}

// filledState folds n responses and snapshots the accumulator.
func filledState(t *testing.T, sv *survey.Survey, n int) *aggregate.AccumulatorState {
	t.Helper()
	acc, err := aggregate.NewAccumulator(core.DefaultSchedule(), sv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r := &survey.Response{
			SurveyID:     sv.ID,
			WorkerID:     "w",
			PrivacyLevel: "medium",
			Obfuscated:   true,
			Answers: []survey.Answer{
				survey.RatingAnswer("q0", float64(1+i%5)),
				survey.ChoiceAnswer("q1", i%3),
			},
		}
		if err := acc.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return acc.Snapshot()
}

func record(t *testing.T, sv *survey.Survey, n int) *Record {
	t.Helper()
	return &Record{
		SurveyID:      sv.ID,
		Fingerprint:   sv.Fingerprint(),
		Cursor:        uint64(n),
		State:         filledState(t, sv, n),
		SavedUnixNano: time.Now().UnixNano(),
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sv := testSurvey()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put(record(t, sv, 7)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec, ok := l2.Get(sv.ID)
	if !ok {
		t.Fatal("checkpoint lost across reopen")
	}
	if rec.Cursor != 7 || rec.Fingerprint != sv.Fingerprint() {
		t.Fatalf("record = cursor %d fp %q", rec.Cursor, rec.Fingerprint)
	}
	// The restored state must rebuild a working accumulator holding the
	// folded responses.
	acc, err := aggregate.RestoreAccumulator(core.DefaultSchedule(), sv, rec.State)
	if err != nil {
		t.Fatal(err)
	}
	if acc.N() != 7 {
		t.Fatalf("restored N = %d, want 7", acc.N())
	}
}

func TestLaterRecordsSupersede(t *testing.T) {
	dir := t.TempDir()
	sv := testSurvey()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{3, 5, 9} {
		if err := l.Put(record(t, sv, n)); err != nil {
			t.Fatal(err)
		}
	}
	if rec, _ := l.Get(sv.ID); rec.Cursor != 9 {
		t.Fatalf("in-memory cursor = %d, want 9", rec.Cursor)
	}
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec, ok := l2.Get(sv.ID); !ok || rec.Cursor != 9 {
		t.Fatalf("replayed cursor = %v, want 9", rec)
	}
	if l2.Len() != 1 {
		t.Fatalf("len = %d, want 1", l2.Len())
	}
}

func TestDropTombstone(t *testing.T) {
	dir := t.TempDir()
	sv := testSurvey()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Drop("absent"); err != nil { // no-op
		t.Fatal(err)
	}
	if err := l.Put(record(t, sv, 4)); err != nil {
		t.Fatal(err)
	}
	if err := l.Drop(sv.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(sv.ID); ok {
		t.Fatal("dropped checkpoint still served")
	}
	l.Close()

	// The tombstone must survive replay: the checkpoint stays dead after
	// a restart (this is what makes republish invalidation durable).
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, ok := l2.Get(sv.ID); ok {
		t.Fatal("tombstoned checkpoint resurrected by replay")
	}
}

// TestTornTailTruncated: a crash mid-append leaves a partial last line;
// Open must drop it and serve the previous record for that survey.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	sv := testSurvey()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put(record(t, sv, 5)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	path := filepath.Join(dir, surveysDir, surveyFileName(sv.ID))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"survey_id":"ckpt-test","cursor":99,"state":{"survey`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail refused: %v", err)
	}
	defer l2.Close()
	rec, ok := l2.Get(sv.ID)
	if !ok || rec.Cursor != 5 {
		t.Fatalf("after torn tail: %+v, want cursor 5", rec)
	}
	// The truncation is durable: the torn bytes are gone from disk.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"cursor":99`) {
		t.Fatal("torn record still on disk")
	}
	// And the log still appends after the repair.
	if err := l2.Put(record(t, sv, 6)); err != nil {
		t.Fatal(err)
	}
}

// TestInteriorCorruptionSkipped: garbage in the middle of the log is
// skipped and counted, never a refused open — checkpoints are advisory,
// so damage costs catch-up scanning, not startup. A compaction then
// rewrites the log clean.
func TestInteriorCorruptionSkipped(t *testing.T) {
	dir := t.TempDir()
	sv := testSurvey()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put(record(t, sv, 5)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, surveysDir, surveyFileName(sv.ID))
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("not json\n")
	f.WriteString(`{"cursor":3}` + "\n") // parseable but no survey ID
	f.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("interior corruption refused the open: %v", err)
	}
	if got := l2.CorruptRecords(); got != 2 {
		t.Errorf("corrupt records = %d, want 2", got)
	}
	// The readable record is still served, and the log still works.
	if rec, ok := l2.Get(sv.ID); !ok || rec.Cursor != 5 {
		t.Fatalf("surviving record = %+v, want cursor 5", rec)
	}
	if err := l2.Put(record(t, sv, 6)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	l3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got := l3.CorruptRecords(); got != 0 {
		t.Errorf("corruption survived compaction: %d records", got)
	}
	if rec, ok := l3.Get(sv.ID); !ok || rec.Cursor != 6 {
		t.Fatalf("after compaction: %+v, want cursor 6", rec)
	}
}

// TestCompaction: superseded lines are rewritten away and the compacted
// log replays to the same state.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	sv := testSurvey()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Enough rewrites of one survey to cross the compaction threshold
	// several times over.
	for n := 1; n <= 100; n++ {
		if err := l.Put(record(t, sv, n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, surveysDir, surveyFileName(sv.ID)))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(b), "\n"); lines != 1 {
		t.Fatalf("compacted log has %d lines, want 1", lines)
	}
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec, ok := l2.Get(sv.ID); !ok || rec.Cursor != 100 {
		t.Fatalf("after compaction: %+v, want cursor 100", rec)
	}
}

func TestPutValidation(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Put(&Record{SurveyID: "x"}); err == nil {
		t.Error("stateless record accepted")
	}
	if err := l.Put(&Record{State: &aggregate.AccumulatorState{}}); err == nil {
		t.Error("record without survey ID accepted")
	}
}

// TestPerShardRecords: shard records of one survey live independently
// and round-trip with their layout coordinates.
func TestPerShardRecords(t *testing.T) {
	dir := t.TempDir()
	sv := testSurvey()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < 3; shard++ {
		rec := record(t, sv, 2+shard)
		rec.Shard = shard
		rec.ShardCount = 3
		if err := l.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d, want 1 survey", l.Len())
	}
	if len(l.Records()) != 3 {
		t.Fatalf("records = %d, want 3 shards", len(l.Records()))
	}
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for shard := 0; shard < 3; shard++ {
		rec, ok := l2.GetShard(sv.ID, shard)
		if !ok {
			t.Fatalf("shard %d lost", shard)
		}
		if rec.Cursor != uint64(2+shard) || rec.NumShards() != 3 {
			t.Fatalf("shard %d = cursor %d layout %d", shard, rec.Cursor, rec.NumShards())
		}
	}
	// Drop tombstones every shard at once.
	if err := l2.Drop(sv.ID); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 0 {
		t.Fatal("drop left shard records")
	}
}

// TestLegacyMigration: a pre-rotation single-file log is still read;
// per-survey files supersede it; a Drop shadows it durably across
// reopens even though the legacy file is never rewritten.
func TestLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	sv := testSurvey()
	legacy := record(t, sv, 11)
	other := record(t, testSurvey(), 7)
	other.SurveyID = "legacy-other"
	other.State.SurveyID = "legacy-other"
	b1, _ := json.Marshal(legacy)
	b2, _ := json.Marshal(other)
	if err := os.WriteFile(filepath.Join(dir, "checkpoints.jsonl"),
		append(append(b1, '\n'), append(b2, '\n')...), 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Legacy records read as shard 0 of a single-shard layout.
	rec, ok := l.Get(sv.ID)
	if !ok || rec.Cursor != 11 || rec.NumShards() != 1 {
		t.Fatalf("legacy record = %+v", rec)
	}
	if _, ok := l.Get("legacy-other"); !ok {
		t.Fatal("second legacy record lost")
	}
	// New writes supersede legacy without touching the legacy file.
	if err := l.Put(record(t, sv, 20)); err != nil {
		t.Fatal(err)
	}
	if rec, _ := l.Get(sv.ID); rec.Cursor != 20 {
		t.Fatalf("superseding record lost: %+v", rec)
	}
	// Dropping a legacy-only survey must shadow it durably.
	if err := l.Drop("legacy-other"); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec, _ := l2.Get(sv.ID); rec == nil || rec.Cursor != 20 {
		t.Fatalf("after reopen: %+v, want cursor 20", rec)
	}
	if _, ok := l2.Get("legacy-other"); ok {
		t.Fatal("dropped legacy record resurrected by replay")
	}
	// The legacy file itself is untouched (rollback safety).
	if _, err := os.Stat(filepath.Join(dir, "checkpoints.jsonl")); err != nil {
		t.Fatalf("legacy file gone: %v", err)
	}
}

// TestParallelRestoreManySurveys: many per-survey files replay to the
// same state they were written with (the restore fan-out is an
// implementation detail; correctness is what this pins).
func TestParallelRestoreManySurveys(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const surveys = 40
	for i := 0; i < surveys; i++ {
		sv := testSurvey()
		sv.ID = fmt.Sprintf("sv-%03d", i)
		rec := record(t, sv, i+1)
		rec.SurveyID = sv.ID
		rec.State.SurveyID = sv.ID
		rec.Fingerprint = sv.Fingerprint()
		if err := l.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != surveys {
		t.Fatalf("replayed %d surveys, want %d", l2.Len(), surveys)
	}
	for i := 0; i < surveys; i++ {
		id := fmt.Sprintf("sv-%03d", i)
		rec, ok := l2.Get(id)
		if !ok || rec.Cursor != uint64(i+1) {
			t.Fatalf("survey %s = %+v", id, rec)
		}
	}
}
