package checkpoint

import (
	"path/filepath"
	"testing"

	"loki/internal/blockio"
)

// TestBinaryCodecRoundTrip: a binary-codec checkpoint log persists,
// replays, appends across reopens and compacts — the full lifecycle the
// JSON tests cover, on blockio files.
func TestBinaryCodecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Codec: blockio.CodecBinary}
	sv := testSurvey()
	l, err := OpenWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 20; n++ {
		if err := l.Put(record(t, sv, n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, surveysDir, surveyFileName(sv.ID))
	if bin, err := blockio.Sniff(path); err != nil || !bin {
		t.Fatalf("binary-codec checkpoint did not sniff binary: %v %v", bin, err)
	}

	l2, err := OpenWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec, ok := l2.Get(sv.ID); !ok || rec.Cursor != 20 {
		t.Fatalf("after reopen: %+v, want cursor 20", rec)
	}
	// The reopened handle resumes the unsealed block log.
	if err := l2.Put(record(t, sv, 21)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := OpenWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if rec, ok := l3.Get(sv.ID); !ok || rec.Cursor != 21 {
		t.Fatalf("after compaction + reopen: %+v, want cursor 21", rec)
	}
	if got := l3.CorruptRecords(); got != 0 {
		t.Fatalf("clean binary log reports %d corrupt records", got)
	}
}

// TestCodecMigrationViaCompaction: a JSON-era checkpoint dir opened with
// the binary codec keeps appending JSON to the existing file (a file
// never mixes formats) until compaction rewrites it binary.
func TestCodecMigrationViaCompaction(t *testing.T) {
	dir := t.TempDir()
	sv := testSurvey()
	l, err := Open(dir) // JSON era
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put(record(t, sv, 5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, surveysDir, surveyFileName(sv.ID))
	l2, err := OpenWith(dir, Options{Codec: blockio.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Put(record(t, sv, 6)); err != nil {
		t.Fatal(err)
	}
	if bin, err := blockio.Sniff(path); err != nil || bin {
		t.Fatalf("append flipped an existing JSON file to binary: %v %v", bin, err)
	}
	if err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	if bin, err := blockio.Sniff(path); err != nil || !bin {
		t.Fatalf("compaction did not migrate to binary: %v %v", bin, err)
	}
	if err := l2.Put(record(t, sv, 7)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := OpenWith(dir, Options{Codec: blockio.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if rec, ok := l3.Get(sv.ID); !ok || rec.Cursor != 7 {
		t.Fatalf("after migration: %+v, want cursor 7", rec)
	}
}
