package attack

import (
	"testing"

	"loki/internal/population"
	"loki/internal/rng"
	"loki/internal/survey"
)

// fixtureRegion builds a small population and registry where person 0's
// quasi-identifier is unique and persons 1 and 2 share one.
func fixtureRegion(t *testing.T) (*population.Population, *population.Registry) {
	t.Helper()
	cfg := population.DefaultConfig()
	cfg.RegistrySize = 100
	cfg.NumZIPs = 5
	pop, err := population.Generate(cfg, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	// Force known structure.
	pop.Persons[0].BirthYear, pop.Persons[0].BirthMonth, pop.Persons[0].BirthDay = 1980, 3, 21
	pop.Persons[0].Gender, pop.Persons[0].ZIP = population.Male, 10001
	for i := 1; i <= 2; i++ {
		pop.Persons[i].BirthYear, pop.Persons[i].BirthMonth, pop.Persons[i].BirthDay = 1975, 7, 4
		pop.Persons[i].Gender, pop.Persons[i].ZIP = population.Female, 10002
	}
	// Make sure no one else collides with person 0.
	for i := 3; i < pop.Size(); i++ {
		if pop.Persons[i].BirthYear == 1980 && pop.Persons[i].MonthDay() == 321 {
			pop.Persons[i].BirthYear = 1981
		}
	}
	return pop, population.NewRegistry(pop)
}

// respond builds a full truthful response by the person to the survey.
func respond(t *testing.T, p *population.Person, sv *survey.Survey, worker string) survey.Response {
	t.Helper()
	answers, err := population.TruthfulAnswers(p, sv, rng.New(uint64(p.ID)+1000))
	if err != nil {
		t.Fatal(err)
	}
	return survey.Response{SurveyID: sv.ID, WorkerID: worker, Answers: answers}
}

func attackSurveys() map[string]*survey.Survey {
	return map[string]*survey.Survey{
		survey.AstrologyID: survey.Astrology(),
		survey.MatchmakeID: survey.Matchmaking(),
		survey.CoverageID:  survey.Coverage(),
		survey.HealthID:    survey.Health(),
	}
}

func TestNewValidation(t *testing.T) {
	_, reg := fixtureRegion(t)
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := New(reg, Config{ConsistencySlack: -1}); err == nil {
		t.Error("negative slack accepted")
	}
}

func TestBuildProfilesJoin(t *testing.T) {
	pop, reg := fixtureRegion(t)
	pipe, err := New(reg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p0 := &pop.Persons[0]
	responses := []survey.Response{
		respond(t, p0, survey.Astrology(), "w0"),
		respond(t, p0, survey.Matchmaking(), "w0"),
		respond(t, p0, survey.Coverage(), "w0"),
		respond(t, &pop.Persons[5], survey.Astrology(), "w5"),
	}
	profiles, err := pipe.BuildProfiles(attackSurveys(), responses)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d, want 2", len(profiles))
	}
	full := profiles[0]
	if full.WorkerID != "w0" || len(full.Surveys) != 3 {
		t.Fatalf("profile[0] = %+v", full)
	}
	if !full.HasQuasiID() {
		t.Fatal("complete worker lacks quasi-identifier")
	}
	qi := full.QuasiID()
	if qi.BirthYear != 1980 || qi.MonthDay != 321 || qi.Gender != population.Male || qi.ZIP != 10001 {
		t.Fatalf("assembled QI = %v", qi)
	}
	if full.HasHealthAnswers() {
		t.Fatal("health answers without health survey")
	}
	partial := profiles[1]
	if partial.HasQuasiID() {
		t.Fatal("single-survey worker has full quasi-identifier")
	}
}

func TestBuildProfilesUnknownSurvey(t *testing.T) {
	_, reg := fixtureRegion(t)
	pipe, _ := New(reg, DefaultConfig())
	_, err := pipe.BuildProfiles(attackSurveys(), []survey.Response{{SurveyID: "mystery", WorkerID: "w"}})
	if err == nil {
		t.Fatal("unknown survey accepted")
	}
}

func TestRunPipelineCounts(t *testing.T) {
	pop, reg := fixtureRegion(t)
	pipe, err := New(reg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := &pop.Persons[0], &pop.Persons[1]

	var responses []survey.Response
	// Worker w0 (person 0): all four surveys, unique QI → victim.
	for _, sv := range []*survey.Survey{survey.Astrology(), survey.Matchmaking(), survey.Coverage(), survey.Health()} {
		responses = append(responses, respond(t, p0, sv, "w0"))
	}
	// Worker w1 (person 1): all three profiling surveys but shares a QI
	// with person 2 → ambiguous.
	for _, sv := range []*survey.Survey{survey.Astrology(), survey.Matchmaking(), survey.Coverage()} {
		responses = append(responses, respond(t, p1, sv, "w1"))
	}
	// Worker w9: only one survey → not linkable.
	responses = append(responses, respond(t, &pop.Persons[9], survey.Astrology(), "w9"))

	truth := map[string]int{"w0": 0, "w1": 1, "w9": 9}
	res, err := pipe.Run(attackSurveys(), responses, func(w string) (int, bool) {
		id, ok := truth[w]
		return id, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueWorkers != 3 {
		t.Errorf("unique workers = %d", res.UniqueWorkers)
	}
	if res.Linkable != 2 {
		t.Errorf("linkable = %d", res.Linkable)
	}
	if res.Reidentified != 1 || res.ReidentifiedCorrect != 1 {
		t.Errorf("reidentified = %d (%d correct)", res.Reidentified, res.ReidentifiedCorrect)
	}
	if res.Ambiguous != 1 {
		t.Errorf("ambiguous = %d", res.Ambiguous)
	}
	if res.HealthExposed != 1 || len(res.Victims) != 1 {
		t.Fatalf("health exposed = %d, victims = %d", res.HealthExposed, len(res.Victims))
	}
	v := res.Victims[0]
	if v.PersonID != 0 || !v.Correct {
		t.Errorf("victim = %+v", v)
	}
	if v.Smoking != p0.Smoking || v.CoughDays != p0.CoughDays {
		t.Errorf("victim sensitive answers %v/%d, person %v/%d",
			v.Smoking, v.CoughDays, p0.Smoking, p0.CoughDays)
	}
	if v.Risk != population.RespiratoryRisk(p0.Smoking, p0.CoughDays) {
		t.Error("victim risk mismatch")
	}
	if res.Precision() != 1 {
		t.Errorf("precision = %g", res.Precision())
	}
	if res.KHistogram[1] != 1 || res.KHistogram[2] != 1 {
		t.Errorf("k histogram = %v", res.KHistogram)
	}
	if ks := res.KValues(); len(ks) != 2 || ks[0] != 1 || ks[1] != 2 {
		t.Errorf("k values = %v", ks)
	}
}

func TestFilterDropsInconsistent(t *testing.T) {
	pop, reg := fixtureRegion(t)
	p0 := &pop.Persons[0]

	// Build a full profile whose astrology response fails the zodiac
	// check.
	var responses []survey.Response
	astro := respond(t, p0, survey.Astrology(), "w0")
	badSign := (survey.ZodiacOf(p0.MonthDay()) + 6) % 12
	astro.Answer("star-sign").Choice = badSign
	responses = append(responses,
		astro,
		respond(t, p0, survey.Matchmaking(), "w0"),
		respond(t, p0, survey.Coverage(), "w0"),
	)

	filtered, _ := New(reg, Config{FilterInconsistent: true})
	res, err := filtered.Run(attackSurveys(), responses, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilteredInconsistent != 1 || res.Linkable != 0 {
		t.Errorf("filter on: %+v", res)
	}

	open, _ := New(reg, Config{FilterInconsistent: false})
	res, err = open.Run(attackSurveys(), responses, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilteredInconsistent != 0 || res.Linkable != 1 {
		t.Errorf("filter off: linkable = %d", res.Linkable)
	}
}

func TestUnmatchedQuasiID(t *testing.T) {
	pop, reg := fixtureRegion(t)
	p0 := &pop.Persons[0]
	var responses []survey.Response
	cov := respond(t, p0, survey.Coverage(), "w0")
	// A ZIP outside the region: no registry match.
	cov.Answer("zip").Rating = 99999
	cov.Answer("zip-confirm").Rating = 99999
	responses = append(responses,
		respond(t, p0, survey.Astrology(), "w0"),
		respond(t, p0, survey.Matchmaking(), "w0"),
		cov,
	)
	pipe, _ := New(reg, DefaultConfig())
	res, err := pipe.Run(attackSurveys(), responses, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linkable != 1 || res.Unmatched != 1 || res.Reidentified != 0 {
		t.Errorf("unmatched path: %+v", res)
	}
}

func TestVictimsSortedByRisk(t *testing.T) {
	pop, reg := fixtureRegion(t)
	// Give persons 0 and 3 distinct risks and unique QIs.
	pop.Persons[0].Smoking, pop.Persons[0].CoughDays = population.NeverSmoked, 0
	pop.Persons[3].Smoking, pop.Persons[3].CoughDays = population.DailySmoker, 7
	pop.Persons[3].BirthYear, pop.Persons[3].BirthMonth, pop.Persons[3].BirthDay = 1990, 11, 30
	pop.Persons[3].Gender, pop.Persons[3].ZIP = population.Male, 10003
	reg = population.NewRegistry(pop)

	var responses []survey.Response
	for _, w := range []struct {
		p    *population.Person
		name string
	}{{&pop.Persons[0], "wa"}, {&pop.Persons[3], "wb"}} {
		for _, sv := range []*survey.Survey{survey.Astrology(), survey.Matchmaking(), survey.Coverage(), survey.Health()} {
			responses = append(responses, respond(t, w.p, sv, w.name))
		}
	}
	pipe, _ := New(reg, DefaultConfig())
	res, err := pipe.Run(attackSurveys(), responses, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Victims) != 2 {
		t.Fatalf("victims = %d", len(res.Victims))
	}
	if res.Victims[0].Risk < res.Victims[1].Risk {
		t.Error("victims not sorted by descending risk")
	}
	if res.Victims[0].PersonID != 3 {
		t.Errorf("highest-risk victim = person %d, want 3", res.Victims[0].PersonID)
	}
}

func TestPrecisionNoReidentifications(t *testing.T) {
	var r Result
	if r.Precision() != 0 {
		t.Error("empty precision != 0")
	}
}

func TestConsistencySlackForObfuscatedResponses(t *testing.T) {
	// An honest Loki user's noisy opinion pair differs by more than the
	// raw tolerance; the adaptive attacker widens tolerances with slack
	// (the E7 setting) so honest responses survive the filter while raw
	// ones would not.
	pop, reg := fixtureRegion(t)
	p0 := &pop.Persons[0]
	astro := respond(t, p0, survey.Astrology(), "w0")
	astro.Obfuscated = true
	astro.PrivacyLevel = "medium"
	// Perturb the opinion pair beyond tolerance 1 but within slack 3.
	astro.Answer("astro-useful").Rating += 2.4
	responses := []survey.Response{
		astro,
		respond(t, p0, survey.Matchmaking(), "w0"),
		respond(t, p0, survey.Coverage(), "w0"),
	}

	strict, _ := New(reg, Config{FilterInconsistent: true})
	res, err := strict.Run(attackSurveys(), responses, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilteredInconsistent != 1 {
		t.Errorf("strict filter kept the noisy response: %+v", res)
	}

	slacked, _ := New(reg, Config{FilterInconsistent: true, ConsistencySlack: 3})
	res, err = slacked.Run(attackSurveys(), responses, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilteredInconsistent != 0 || res.Linkable != 1 {
		t.Errorf("slacked filter dropped the noisy response: %+v", res)
	}
}
