// Package attack implements the paper's §2 de-anonymization pipeline
// against a crowdsourcing platform: join responses across surveys by the
// platform-reported worker ID, filter out random responders using the
// surveys' built-in redundancy, assemble the {date of birth, gender, ZIP}
// quasi-identifier, re-identify workers against a public registry, and
// attach the sensitive health answers of the nominally anonymous fourth
// survey to the re-identified individuals.
//
// The attacker sees only what a real AMT requester sees: surveys it
// posted, responses with worker IDs, and a public identified dataset
// (census/voter-list analogue). Ground truth enters only through an
// optional scoring callback used to measure precision.
package attack

import (
	"fmt"
	"sort"

	"loki/internal/population"
	"loki/internal/survey"
)

// Config parameterizes the pipeline.
type Config struct {
	// FilterInconsistent drops workers who fail any redundancy check in
	// any survey they took — the paper's random-responder filter.
	FilterInconsistent bool
	// ConsistencySlack widens redundancy tolerances, needed only when
	// attacking obfuscated (Loki) responses.
	ConsistencySlack float64
}

// DefaultConfig enables filtering with no slack, matching the paper's
// raw-response setting.
func DefaultConfig() Config {
	return Config{FilterInconsistent: true}
}

// Profile is everything the attacker has linked for one worker ID.
type Profile struct {
	WorkerID string
	// Surveys taken, in the order encountered.
	Surveys []string
	// Attributes maps each harvested attribute to its numeric encoding
	// (choice answers store the option index). If a worker answered the
	// same attribute in several surveys, the first answer wins — a real
	// attacker would cross-check, which the consistency filter subsumes.
	Attributes map[survey.Attribute]float64
	// Consistent is false if any of the worker's responses failed its
	// survey's redundancy checks.
	Consistent bool
}

// HasQuasiID reports whether the profile contains the full
// quasi-identifier (needs all three profiling surveys).
func (p *Profile) HasQuasiID() bool {
	_, y := p.Attributes[survey.AttrBirthYear]
	_, md := p.Attributes[survey.AttrBirthDayMonth]
	_, g := p.Attributes[survey.AttrGender]
	_, z := p.Attributes[survey.AttrZIP]
	return y && md && g && z
}

// QuasiID assembles the quasi-identifier; call only if HasQuasiID.
func (p *Profile) QuasiID() population.QuasiID {
	return population.QuasiID{
		BirthYear: int(p.Attributes[survey.AttrBirthYear]),
		MonthDay:  int(p.Attributes[survey.AttrBirthDayMonth]),
		Gender:    population.Gender(int(p.Attributes[survey.AttrGender])),
		ZIP:       int(p.Attributes[survey.AttrZIP]),
	}
}

// HasHealthAnswers reports whether the profile includes the fourth
// survey's sensitive answers.
func (p *Profile) HasHealthAnswers() bool {
	_, s := p.Attributes[survey.AttrSmoking]
	_, c := p.Attributes[survey.AttrCough]
	return s && c
}

// Victim is a re-identified worker whose sensitive health answers the
// attacker linked — the paper's "serious breach of privacy".
type Victim struct {
	WorkerID string
	// PersonID is the registry identity the attacker recovered.
	PersonID  int
	QuasiID   population.QuasiID
	Smoking   population.Smoking
	CoughDays int
	// Risk is the derived respiratory-health score.
	Risk float64
	// Correct is whether the recovered identity matches ground truth
	// (set only when a scorer is provided; false otherwise).
	Correct bool
}

// Result is the pipeline outcome, mirroring the paper's §2 numbers.
type Result struct {
	// UniqueWorkers is the number of distinct worker IDs seen across all
	// surveys (the paper's 400).
	UniqueWorkers int
	// FilteredInconsistent is how many workers the redundancy filter
	// dropped.
	FilteredInconsistent int
	// Linkable is how many (surviving) workers took all three profiling
	// surveys and so have a complete quasi-identifier (the paper's 72).
	Linkable int
	// Reidentified is how many linkable workers matched exactly one
	// registry person.
	Reidentified int
	// ReidentifiedCorrect counts re-identifications confirmed by ground
	// truth (when a scorer is provided).
	ReidentifiedCorrect int
	// Ambiguous counts linkable workers whose quasi-identifier matched
	// more than one registry person (k >= 2).
	Ambiguous int
	// Unmatched counts linkable workers with no registry match (random
	// responders surviving the filter, typically).
	Unmatched int
	// HealthExposed is how many re-identified workers also took the
	// health survey (the paper's 18); Victims lists them.
	HealthExposed int
	Victims       []Victim
	// KHistogram maps anonymity-set size k to the number of linkable
	// workers whose quasi-identifier has that k in the registry.
	KHistogram map[int]int
}

// Pipeline runs the attack against one registry.
type Pipeline struct {
	cfg Config
	reg *population.Registry
}

// New returns a pipeline using the given public registry.
func New(reg *population.Registry, cfg Config) (*Pipeline, error) {
	if reg == nil {
		return nil, fmt.Errorf("attack: nil registry")
	}
	if cfg.ConsistencySlack < 0 {
		return nil, fmt.Errorf("attack: negative consistency slack %g", cfg.ConsistencySlack)
	}
	return &Pipeline{cfg: cfg, reg: reg}, nil
}

// BuildProfiles joins responses across surveys by worker ID. surveys maps
// survey ID to its definition; responses holds every response the
// requester collected, across all surveys.
func (pl *Pipeline) BuildProfiles(surveys map[string]*survey.Survey, responses []survey.Response) ([]*Profile, error) {
	byWorker := make(map[string]*Profile)
	var order []string
	for i := range responses {
		resp := &responses[i]
		s, ok := surveys[resp.SurveyID]
		if !ok {
			return nil, fmt.Errorf("attack: response references unknown survey %q", resp.SurveyID)
		}
		prof, ok := byWorker[resp.WorkerID]
		if !ok {
			prof = &Profile{
				WorkerID:   resp.WorkerID,
				Attributes: make(map[survey.Attribute]float64),
				Consistent: true,
			}
			byWorker[resp.WorkerID] = prof
			order = append(order, resp.WorkerID)
		}
		prof.Surveys = append(prof.Surveys, resp.SurveyID)
		if !resp.Consistent(s, pl.cfg.ConsistencySlack) {
			prof.Consistent = false
		}
		for j := range resp.Answers {
			a := &resp.Answers[j]
			q := s.Question(a.QuestionID)
			if q == nil || q.Attribute == survey.AttrNone || q.Attribute == survey.AttrOpinion {
				continue
			}
			if _, seen := prof.Attributes[q.Attribute]; seen {
				continue
			}
			v, err := a.Value()
			if err != nil {
				continue // free-text carries no joinable value
			}
			prof.Attributes[q.Attribute] = v
		}
	}
	out := make([]*Profile, 0, len(byWorker))
	for _, id := range order {
		out = append(out, byWorker[id])
	}
	return out, nil
}

// Run executes the full pipeline. scorer, if non-nil, resolves a worker
// ID to the true person for precision scoring (evaluation only).
func (pl *Pipeline) Run(surveys map[string]*survey.Survey, responses []survey.Response, scorer func(workerID string) (int, bool)) (*Result, error) {
	profiles, err := pl.BuildProfiles(surveys, responses)
	if err != nil {
		return nil, err
	}
	res := &Result{
		UniqueWorkers: len(profiles),
		KHistogram:    make(map[int]int),
	}
	for _, prof := range profiles {
		if pl.cfg.FilterInconsistent && !prof.Consistent {
			res.FilteredInconsistent++
			continue
		}
		if !prof.HasQuasiID() {
			continue
		}
		res.Linkable++
		qi := prof.QuasiID()
		k := pl.reg.KAnonymity(qi)
		res.KHistogram[k]++
		switch {
		case k == 0:
			res.Unmatched++
			continue
		case k > 1:
			res.Ambiguous++
			continue
		}
		personID, _ := pl.reg.Identify(qi)
		res.Reidentified++
		correct := false
		if scorer != nil {
			if truth, ok := scorer(prof.WorkerID); ok && truth == personID {
				correct = true
				res.ReidentifiedCorrect++
			}
		}
		if prof.HasHealthAnswers() {
			res.HealthExposed++
			smoking := population.Smoking(int(prof.Attributes[survey.AttrSmoking]))
			cough := int(prof.Attributes[survey.AttrCough])
			res.Victims = append(res.Victims, Victim{
				WorkerID:  prof.WorkerID,
				PersonID:  personID,
				QuasiID:   qi,
				Smoking:   smoking,
				CoughDays: cough,
				Risk:      population.RespiratoryRisk(smoking, cough),
				Correct:   correct,
			})
		}
	}
	sort.Slice(res.Victims, func(i, j int) bool { return res.Victims[i].Risk > res.Victims[j].Risk })
	return res, nil
}

// Precision returns the fraction of re-identifications confirmed correct.
// It is meaningful only for runs scored with a ground-truth resolver;
// unscored runs return 0.
func (r *Result) Precision() float64 {
	if r.Reidentified == 0 {
		return 0
	}
	return float64(r.ReidentifiedCorrect) / float64(r.Reidentified)
}

// KValues returns the sorted anonymity-set sizes present in KHistogram.
func (r *Result) KValues() []int {
	ks := make([]int, 0, len(r.KHistogram))
	for k := range r.KHistogram {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
