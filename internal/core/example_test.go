package core_test

import (
	"fmt"

	"loki/internal/core"
	"loki/internal/rng"
	"loki/internal/survey"
)

// ExampleObfuscator_ObfuscateResponse shows the at-source flow: the raw
// answers stay on the device, only the noisy ones are returned for
// upload, and the ledger is charged.
func ExampleObfuscator_ObfuscateResponse() {
	obf, _ := core.NewObfuscator(core.DefaultSchedule(), core.DefaultOptions())
	ledger, _ := core.NewLedger(1e-6)
	sv := survey.Lecturers([]string{"Dr. A", "Dr. B"})
	raw := []survey.Answer{
		survey.RatingAnswer("lecturer-00", 4),
		survey.RatingAnswer("lecturer-01", 5),
	}

	noisy, _ := obf.ObfuscateResponse(sv, raw, core.Medium, rng.New(42), ledger)

	fmt.Printf("raw:   %.2f, %.2f\n", raw[0].Rating, raw[1].Rating)
	fmt.Printf("noisy: %.2f, %.2f\n", noisy[0].Rating, noisy[1].Rating)
	fmt.Printf("events charged: %d\n", ledger.Events())
	// Output:
	// raw:   4.00, 5.00
	// noisy: 3.27, 4.79
	// events charged: 2
}

// ExampleLedger_MinAffordableLevel shows the budget policy picking the
// most accurate level that still fits a lifetime allowance.
func ExampleLedger_MinAffordableLevel() {
	obf, _ := core.NewObfuscator(core.DefaultSchedule(), core.DefaultOptions())
	ledger, _ := core.NewLedger(1e-6)
	sv := survey.Lecturers([]string{"Dr. A"})

	level, ok, _ := ledger.MinAffordableLevel(obf, sv, 100)
	fmt.Printf("fresh user answers at: %v (ok=%v)\n", level, ok)

	// Burn most of the budget, then only noisier levels fit.
	for i := 0; i < 10; i++ {
		_ = ledger.RecordResponse(obf, sv, core.High)
	}
	level, ok, _ = ledger.MinAffordableLevel(obf, sv, 100)
	fmt.Printf("heavy user answers at: %v (ok=%v)\n", level, ok)
	// Output:
	// fresh user answers at: low (ok=true)
	// heavy user answers at: medium (ok=true)
}

// ExampleParseLevel shows level parsing.
func ExampleParseLevel() {
	for _, s := range []string{"none", "MEDIUM", "high"} {
		l, _ := core.ParseLevel(s)
		fmt.Println(l)
	}
	// Output:
	// none
	// medium
	// high
}
