package core

import (
	"math"
	"testing"
	"testing/quick"

	"loki/internal/rng"
	"loki/internal/survey"
)

// TestQuickObfuscateNeverInvalid: for random scales, levels and values,
// obfuscation succeeds and produces a structurally valid answer with the
// same question ID and kind.
func TestQuickObfuscateNeverInvalid(t *testing.T) {
	obf := newObf(t, DefaultOptions())
	r := rng.New(77)
	err := quick.Check(func(seed uint64) bool {
		g := rng.New(seed)
		lvl := Level(g.Intn(NumLevels))
		hi := float64(2 + g.Intn(20))
		q := &survey.Question{ID: "q", Kind: survey.Rating, ScaleMin: 1, ScaleMax: hi}
		raw := survey.RatingAnswer("q", float64(g.IntRange(1, int(hi))))
		out, err := obf.ObfuscateAnswer(q, raw, lvl, r)
		if err != nil {
			return false
		}
		if out.QuestionID != "q" || out.Kind != raw.Kind {
			return false
		}
		return !math.IsNaN(out.Rating) && !math.IsInf(out.Rating, 0)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickLedgerMonotone: recording responses never decreases the
// cumulative loss, whatever the mix of surveys and levels.
func TestQuickLedgerMonotone(t *testing.T) {
	obf := newObf(t, DefaultOptions())
	err := quick.Check(func(seed uint64) bool {
		g := rng.New(seed)
		lg, err := NewLedger(1e-6)
		if err != nil {
			return false
		}
		prev := 0.0
		for i := 0; i < 5; i++ {
			n := 1 + g.Intn(4)
			names := make([]string, n)
			for j := range names {
				names[j] = string(rune('A' + j))
			}
			sv := survey.Lecturers(names)
			lvl := Level(g.Intn(NumLevels))
			if err := lg.RecordResponse(obf, sv, lvl); err != nil {
				return false
			}
			cur := lg.Rho()
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickCostMatchesLedger: the precomputed response cost equals what
// a fresh ledger actually records, across random survey shapes, levels
// and noise kinds.
func TestQuickCostMatchesLedger(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := rng.New(seed)
		opts := DefaultOptions()
		if g.Bernoulli(0.5) {
			opts.Noise = NoiseLaplace
		}
		obf, err := NewObfuscator(DefaultSchedule(), opts)
		if err != nil {
			return false
		}
		n := 1 + g.Intn(5)
		names := make([]string, n)
		for j := range names {
			names[j] = string(rune('A' + j))
		}
		sv := survey.Lecturers(names)
		lvl := Level(1 + g.Intn(3)) // low..high
		cost, ok, err := obf.CostOfResponse(sv, lvl)
		if err != nil || !ok {
			return false
		}
		lg, err := NewLedger(opts.Delta)
		if err != nil {
			return false
		}
		if err := lg.RecordResponse(obf, sv, lvl); err != nil {
			return false
		}
		return math.Abs(cost.Epsilon-lg.Spent().Epsilon) < 1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickScheduleSigmaScaling: SigmaFor scales linearly with the
// question's scale width for every level.
func TestQuickScheduleSigmaScaling(t *testing.T) {
	s := DefaultSchedule()
	err := quick.Check(func(seed uint64) bool {
		g := rng.New(seed)
		w := float64(1 + g.Intn(50))
		q := &survey.Question{ID: "q", Kind: survey.Numeric, ScaleMin: 0, ScaleMax: w}
		for l := Low; l <= High; l++ {
			want := s.Sigma[l] * w / ReferenceScaleWidth
			if math.Abs(s.SigmaFor(q, l)-want) > 1e-12 {
				return false
			}
		}
		return s.SigmaFor(q, None) == 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
