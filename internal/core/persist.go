package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"loki/internal/dp"
)

// ledgerSnapshot is the serialized form of a Ledger. The event list is
// kept verbatim so a restored ledger reports exactly the same totals
// under every composition rule.
type ledgerSnapshot struct {
	Version     int        `json:"version"`
	Delta       float64    `json:"delta"`
	Unprotected int        `json:"unprotected"`
	Surveys     []string   `json:"surveys"`
	Events      []dp.Event `json:"events"`
}

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// WriteTo serializes the ledger as JSON. It implements enough of the
// io.WriterTo convention for callers to persist a user's privacy history
// across app restarts — the history must survive, otherwise a reinstall
// would silently reset the user's cumulative loss to zero.
func (lg *Ledger) WriteTo(w io.Writer) (int64, error) {
	lg.mu.Lock()
	snap := ledgerSnapshot{
		Version:     snapshotVersion,
		Delta:       lg.delta,
		Unprotected: lg.unprotected,
		Surveys:     append([]string(nil), lg.surveys...),
		Events:      lg.acct.Events(),
	}
	lg.mu.Unlock()
	b, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("core: marshal ledger: %w", err)
	}
	n, err := w.Write(append(b, '\n'))
	return int64(n), err
}

// Snapshot serializes the ledger to JSON bytes — WriteTo without the
// writer plumbing, for callers (like a budget ledger embedding per-user
// histories) that want a value they can stash in their own log.
func (lg *Ledger) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := lg.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore replaces the ledger's state with a snapshot previously
// produced by Snapshot (or WriteTo). The accountant's events are
// replayed verbatim, so a restored ledger answers every total exactly
// like the one that was snapshotted.
func (lg *Ledger) Restore(data []byte) error {
	restored, err := ReadLedger(bytes.NewReader(data))
	if err != nil {
		return err
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.acct = restored.acct
	lg.delta = restored.delta
	lg.unprotected = restored.unprotected
	lg.surveys = restored.surveys
	return nil
}

// ReadLedger deserializes a ledger previously written with WriteTo.
func ReadLedger(r io.Reader) (*Ledger, error) {
	var snap ledgerSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode ledger: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported ledger snapshot version %d", snap.Version)
	}
	lg, err := NewLedger(snap.Delta)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	if snap.Unprotected < 0 {
		return nil, fmt.Errorf("core: snapshot has negative unprotected count %d", snap.Unprotected)
	}
	for _, e := range snap.Events {
		if err := lg.acct.Record(e); err != nil {
			return nil, fmt.Errorf("core: snapshot event: %w", err)
		}
	}
	lg.unprotected = snap.Unprotected
	lg.surveys = snap.Surveys
	return lg, nil
}

// SaveFile writes the ledger to path atomically (write to a temp file in
// the same directory, then rename).
func (lg *Ledger) SaveFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ledger-*")
	if err != nil {
		return fmt.Errorf("core: save ledger: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := lg.WriteTo(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: save ledger: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: save ledger: %w", err)
	}
	return nil
}

// LoadLedgerFile reads a ledger saved with SaveFile.
func LoadLedgerFile(path string) (*Ledger, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load ledger: %w", err)
	}
	defer f.Close()
	return ReadLedger(f)
}

// dirOf returns the directory portion of path ("." for bare names).
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}
