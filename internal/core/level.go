// Package core implements the paper's primary contribution: Loki's
// at-source obfuscation. Users choose a privacy level per survey (none,
// low, medium or high); the client perturbs every answer on the device —
// Gaussian noise for ratings and other numeric scales, randomized
// response for multiple-choice — and only the noisy answers ever leave
// the device. A per-user ledger quantifies the cumulative privacy loss of
// everything uploaded, using the differential-privacy machinery in
// internal/dp.
package core

import (
	"fmt"
	"strings"
)

// Level is a user-facing privacy level. The paper deliberately exposes
// exactly four easy-to-understand levels instead of raw DP parameters;
// participants "could easily see how the mechanism operated (the privacy
// level corresponds to the magnitude of Gaussian noise)".
type Level int

// The four privacy levels, in increasing order of protection.
const (
	None Level = iota
	Low
	Medium
	High
)

// NumLevels is the number of privacy levels.
const NumLevels = 4

// Levels lists all levels in increasing order of protection.
func Levels() [NumLevels]Level { return [NumLevels]Level{None, Low, Medium, High} }

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case None:
		return "none"
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Valid reports whether l is one of the four defined levels.
func (l Level) Valid() bool { return l >= None && l <= High }

// ParseLevel converts a level name (case-insensitive) to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none", "":
		return None, nil
	case "low":
		return Low, nil
	case "medium", "med":
		return Medium, nil
	case "high":
		return High, nil
	default:
		return None, fmt.Errorf("core: unknown privacy level %q", s)
	}
}
