package core

import (
	"fmt"
	"math"
	"sort"

	"loki/internal/survey"
)

// This file implements the "balanced across the user base" half of the
// paper's framework: "the cumulative privacy loss can be tracked and
// balanced across the user base, while ensuring sufficient accuracy of
// the aggregated response". Given a cohort of users with individual
// remaining budgets, the Allocator assigns each invited user a privacy
// level so that (a) nobody exceeds their lifetime budget and (b) the
// aggregate meets a target standard error, spending as little total
// privacy as possible.
//
// The trade-off it navigates: lower levels add less noise (better
// accuracy) but cost more privacy; users with little budget left can
// only afford high levels or must sit the survey out.

// UserBudget describes one user from the allocator's point of view.
type UserBudget struct {
	// ID identifies the user in the assignment.
	ID string
	// SpentRho is the user's cumulative zCDP loss so far (Ledger.Rho).
	SpentRho float64
	// BudgetEpsilon is the user's lifetime ε allowance at the
	// allocator's δ.
	BudgetEpsilon float64
}

// Assignment is the allocator's decision for one user.
type Assignment struct {
	UserID string
	// Level the user should answer at. Valid only if Participate.
	Level Level
	// Participate is false when even the highest level would breach the
	// user's budget.
	Participate bool
}

// AllocationResult is the full plan plus its predicted statistics.
type AllocationResult struct {
	Assignments []Assignment
	// Participants is the number of users invited to answer.
	Participants int
	// PredictedSE is the standard error of the aggregate mean the plan
	// achieves (per rating question, on the reference 1..5 scale).
	PredictedSE float64
	// TotalRho is the summed zCDP cost across all participants.
	TotalRho float64
	// MaxUserEpsilon is the largest post-survey cumulative ε any
	// participant reaches.
	MaxUserEpsilon float64
	// PerLevel counts assignments per level.
	PerLevel [NumLevels]int
}

// Allocator plans level assignments for a survey.
type Allocator struct {
	obf *Obfuscator
	// AnswerStd is the assumed population standard deviation of a raw
	// answer on the reference scale (used to predict accuracy).
	AnswerStd float64
}

// NewAllocator returns an allocator that plans with the obfuscator's
// schedule and δ.
func NewAllocator(obf *Obfuscator, answerStd float64) (*Allocator, error) {
	if obf == nil {
		return nil, fmt.Errorf("core: allocator needs an obfuscator")
	}
	if answerStd < 0 || math.IsNaN(answerStd) {
		return nil, fmt.Errorf("core: answer std %g must be non-negative", answerStd)
	}
	return &Allocator{obf: obf, AnswerStd: answerStd}, nil
}

// levelVariance returns the per-answer variance contribution at level l
// on the reference scale.
func (al *Allocator) levelVariance(l Level) float64 {
	sigma := al.obf.Schedule().Sigma[l]
	return al.AnswerStd*al.AnswerStd + sigma*sigma
}

// Plan assigns a privacy level to every user for the given survey so the
// estimated mean of a rating question reaches the target standard error
// if possible, never exceeding any user's budget. The strategy:
//
//  1. Start everyone at the most private level they can afford (High if
//     it fits, else sit out).
//  2. While the predicted standard error exceeds the target, upgrade the
//     user for whom one-step-lower noise costs the least extra privacy
//     relative to their remaining budget (largest headroom first).
//
// The returned plan is deterministic given the input order after the
// internal stable sort.
func (al *Allocator) Plan(s *survey.Survey, users []UserBudget, targetSE float64) (*AllocationResult, error) {
	if targetSE <= 0 || math.IsNaN(targetSE) {
		return nil, fmt.Errorf("core: target standard error %g must be positive", targetSE)
	}
	if len(users) == 0 {
		return nil, fmt.Errorf("core: no users to allocate")
	}
	// Per-response rho at each level (whole survey).
	var costRho [NumLevels]float64
	for l := Low; l <= High; l++ {
		rho, err := al.obf.responseRho(s, l)
		if err != nil {
			return nil, err
		}
		costRho[l] = rho
	}

	delta := al.obf.Options().Delta
	type state struct {
		user  UserBudget
		level Level
		in    bool
	}
	states := make([]state, len(users))
	for i, u := range users {
		if u.BudgetEpsilon <= 0 {
			return nil, fmt.Errorf("core: user %q has non-positive budget", u.ID)
		}
		if u.SpentRho < 0 {
			return nil, fmt.Errorf("core: user %q has negative spent rho", u.ID)
		}
		st := state{user: u, level: High}
		// Most private level first; sit out if even High breaches.
		if epsAfter(u.SpentRho+costRho[High], delta) > u.BudgetEpsilon {
			st.in = false
		} else {
			st.in = true
		}
		states[i] = st
	}

	se := func() float64 {
		// Variance of the mean over participants: (Σ v_i) / n².
		n, sum := 0, 0.0
		for _, st := range states {
			if !st.in {
				continue
			}
			n++
			sum += al.levelVariance(st.level)
		}
		if n == 0 {
			return math.Inf(1)
		}
		return math.Sqrt(sum) / float64(n)
	}

	// Upgrade loop: lower one participant's level per step.
	for se() > targetSE {
		best := -1
		bestHeadroom := math.Inf(-1)
		for i := range states {
			st := &states[i]
			if !st.in || st.level == Low {
				continue
			}
			next := st.level - 1
			afterRho := st.user.SpentRho + costRho[next]
			if epsAfter(afterRho, delta) > st.user.BudgetEpsilon {
				continue
			}
			headroom := st.user.BudgetEpsilon - epsAfter(afterRho, delta)
			if headroom > bestHeadroom {
				bestHeadroom = headroom
				best = i
			}
		}
		if best < 0 {
			break // nobody can afford to be upgraded further
		}
		states[best].level--
	}

	res := &AllocationResult{PredictedSE: se()}
	for _, st := range states {
		a := Assignment{UserID: st.user.ID, Participate: st.in}
		if st.in {
			a.Level = st.level
			res.Participants++
			res.PerLevel[st.level]++
			res.TotalRho += costRho[st.level]
			if eps := epsAfter(st.user.SpentRho+costRho[st.level], delta); eps > res.MaxUserEpsilon {
				res.MaxUserEpsilon = eps
			}
		}
		res.Assignments = append(res.Assignments, a)
	}
	sort.SliceStable(res.Assignments, func(i, j int) bool {
		return res.Assignments[i].UserID < res.Assignments[j].UserID
	})
	return res, nil
}

// epsAfter converts a cumulative rho to ε at δ.
func epsAfter(rho, delta float64) float64 {
	if rho <= 0 {
		return 0
	}
	return rho + 2*math.Sqrt(rho*math.Log(1/delta))
}

// UniformPlan is the baseline the paper's trial used implicitly: every
// affordable user answers at the same level; users who cannot afford it
// sit out. It is the comparator for the balancing ablation.
func (al *Allocator) UniformPlan(s *survey.Survey, users []UserBudget, level Level) (*AllocationResult, error) {
	if level == None || !level.Valid() {
		return nil, fmt.Errorf("core: uniform plan needs a noisy level, got %v", level)
	}
	rho, err := al.obf.responseRho(s, level)
	if err != nil {
		return nil, err
	}
	delta := al.obf.Options().Delta
	res := &AllocationResult{}
	sum := 0.0
	for _, u := range users {
		a := Assignment{UserID: u.ID}
		if epsAfter(u.SpentRho+rho, delta) <= u.BudgetEpsilon {
			a.Participate = true
			a.Level = level
			res.Participants++
			res.PerLevel[level]++
			res.TotalRho += rho
			sum += al.levelVariance(level)
			if eps := epsAfter(u.SpentRho+rho, delta); eps > res.MaxUserEpsilon {
				res.MaxUserEpsilon = eps
			}
		}
		res.Assignments = append(res.Assignments, a)
	}
	if res.Participants > 0 {
		res.PredictedSE = math.Sqrt(sum) / float64(res.Participants)
	} else {
		res.PredictedSE = math.Inf(1)
	}
	sort.SliceStable(res.Assignments, func(i, j int) bool {
		return res.Assignments[i].UserID < res.Assignments[j].UserID
	})
	return res, nil
}
