package core

import (
	"fmt"
	"math"
	"testing"

	"loki/internal/survey"
)

func newAllocator(t *testing.T) (*Allocator, *Obfuscator) {
	t.Helper()
	obf := newObf(t, DefaultOptions())
	al, err := NewAllocator(obf, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	return al, obf
}

func freshUsers(n int, budget float64) []UserBudget {
	users := make([]UserBudget, n)
	for i := range users {
		users[i] = UserBudget{ID: fmt.Sprintf("u%03d", i), BudgetEpsilon: budget}
	}
	return users
}

func TestNewAllocatorValidation(t *testing.T) {
	if _, err := NewAllocator(nil, 0.5); err == nil {
		t.Error("nil obfuscator accepted")
	}
	obf := newObf(t, DefaultOptions())
	if _, err := NewAllocator(obf, -1); err == nil {
		t.Error("negative answer std accepted")
	}
	if _, err := NewAllocator(obf, math.NaN()); err == nil {
		t.Error("NaN answer std accepted")
	}
}

func TestPlanValidation(t *testing.T) {
	al, _ := newAllocator(t)
	sv := survey.Lecturers([]string{"X"})
	if _, err := al.Plan(sv, freshUsers(3, 100), 0); err == nil {
		t.Error("target SE 0 accepted")
	}
	if _, err := al.Plan(sv, nil, 0.1); err == nil {
		t.Error("empty cohort accepted")
	}
	bad := freshUsers(2, 100)
	bad[1].BudgetEpsilon = 0
	if _, err := al.Plan(sv, bad, 0.1); err == nil {
		t.Error("zero budget accepted")
	}
	bad = freshUsers(2, 100)
	bad[0].SpentRho = -1
	if _, err := al.Plan(sv, bad, 0.1); err == nil {
		t.Error("negative spent accepted")
	}
	ft := &survey.Survey{ID: "f", Questions: []survey.Question{{ID: "t", Kind: survey.FreeText}}}
	if _, err := al.Plan(ft, freshUsers(2, 100), 0.1); err == nil {
		t.Error("free-text survey accepted")
	}
}

func TestPlanMeetsTarget(t *testing.T) {
	al, _ := newAllocator(t)
	sv := survey.Lecturers([]string{"X"})
	users := freshUsers(131, 1000)
	res, err := al.Plan(sv, users, 0.09)
	if err != nil {
		t.Fatal(err)
	}
	if res.Participants != 131 {
		t.Errorf("participants = %d", res.Participants)
	}
	if res.PredictedSE > 0.09 {
		t.Errorf("predicted SE %.3f misses the target", res.PredictedSE)
	}
	if len(res.Assignments) != 131 {
		t.Errorf("assignments = %d", len(res.Assignments))
	}
	total := 0
	for _, n := range res.PerLevel {
		total += n
	}
	if total != res.Participants {
		t.Error("per-level counts do not sum to participants")
	}
	if res.MaxUserEpsilon <= 0 || res.MaxUserEpsilon > 1000 {
		t.Errorf("max user ε = %g", res.MaxUserEpsilon)
	}
}

func TestPlanUpgradesMinimally(t *testing.T) {
	al, _ := newAllocator(t)
	sv := survey.Lecturers([]string{"X"})
	users := freshUsers(131, 1000)
	// A loose target should be met with everyone at High (most private).
	loose, err := al.Plan(sv, users, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if loose.PerLevel[High] != 131 {
		t.Errorf("loose target upgraded users: %v", loose.PerLevel)
	}
	// A tight target forces upgrades; a tighter one forces more.
	tight, err := al.Plan(sv, users, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	tighter, err := al.Plan(sv, users, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	if tight.TotalRho >= tighter.TotalRho {
		t.Errorf("tighter target did not cost more: %g vs %g", tight.TotalRho, tighter.TotalRho)
	}
	if tight.PredictedSE < tighter.PredictedSE {
		t.Error("tighter target has worse predicted SE")
	}
}

func TestPlanRespectsBudgets(t *testing.T) {
	al, obf := newAllocator(t)
	sv := survey.Lecturers([]string{"X"})
	costHigh, _, err := obf.CostOfResponse(sv, High)
	if err != nil {
		t.Fatal(err)
	}
	// One user cannot even afford High; one can afford exactly High.
	users := []UserBudget{
		{ID: "broke", BudgetEpsilon: costHigh.Epsilon * 0.5},
		{ID: "tight", BudgetEpsilon: costHigh.Epsilon * 1.05},
		{ID: "rich", BudgetEpsilon: 1e6},
	}
	res, err := al.Plan(sv, users, 0.0001) // unreachable target: upgrade maximally
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Assignment{}
	for _, a := range res.Assignments {
		byID[a.UserID] = a
	}
	if byID["broke"].Participate {
		t.Error("over-budget user was invited")
	}
	if !byID["tight"].Participate || byID["tight"].Level != High {
		t.Errorf("tight user assignment = %+v", byID["tight"])
	}
	if !byID["rich"].Participate || byID["rich"].Level != Low {
		t.Errorf("rich user should be upgraded to low, got %+v", byID["rich"])
	}
	if res.MaxUserEpsilon > 1e6 {
		t.Error("a user exceeded their budget")
	}
}

func TestPlanAllBroke(t *testing.T) {
	al, _ := newAllocator(t)
	sv := survey.Lecturers([]string{"X"})
	users := freshUsers(5, 0.5) // nobody can afford anything
	res, err := al.Plan(sv, users, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Participants != 0 {
		t.Errorf("participants = %d", res.Participants)
	}
	if !math.IsInf(res.PredictedSE, 1) {
		t.Errorf("predicted SE = %g, want +Inf", res.PredictedSE)
	}
}

func TestUniformPlan(t *testing.T) {
	al, _ := newAllocator(t)
	sv := survey.Lecturers([]string{"X"})
	users := freshUsers(50, 1000)
	if _, err := al.UniformPlan(sv, users, None); err == nil {
		t.Error("uniform plan at none accepted")
	}
	res, err := al.UniformPlan(sv, users, Medium)
	if err != nil {
		t.Fatal(err)
	}
	if res.Participants != 50 || res.PerLevel[Medium] != 50 {
		t.Errorf("uniform medium plan = %+v", res.PerLevel)
	}
	// Lower level → better SE, higher cost.
	low, err := al.UniformPlan(sv, users, Low)
	if err != nil {
		t.Fatal(err)
	}
	if low.PredictedSE >= res.PredictedSE {
		t.Error("uniform low SE not below medium")
	}
	if low.TotalRho <= res.TotalRho {
		t.Error("uniform low cost not above medium")
	}
}

func TestBalancedBeatsUniformTradeoff(t *testing.T) {
	al, _ := newAllocator(t)
	sv := survey.Lecturers([]string{"X"})
	users := freshUsers(131, 1000)
	uniformLow, err := al.UniformPlan(sv, users, Low)
	if err != nil {
		t.Fatal(err)
	}
	// Ask the allocator only for the accuracy uniform-medium cannot give
	// but uniform-low overshoots.
	target := uniformLow.PredictedSE * 1.2
	balanced, err := al.Plan(sv, users, target)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.PredictedSE > target {
		t.Errorf("balanced plan misses its own target: %.4f > %.4f", balanced.PredictedSE, target)
	}
	if balanced.TotalRho >= uniformLow.TotalRho {
		t.Errorf("balanced plan (%g) does not save privacy over uniform low (%g)",
			balanced.TotalRho, uniformLow.TotalRho)
	}
}
