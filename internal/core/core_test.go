package core

import (
	"math"
	"strings"
	"sync"
	"testing"

	"loki/internal/rng"
	"loki/internal/survey"
)

func TestLevelStringsAndParse(t *testing.T) {
	for _, l := range Levels() {
		parsed, err := ParseLevel(l.String())
		if err != nil || parsed != l {
			t.Errorf("round trip of %v failed: %v, %v", l, parsed, err)
		}
		if !l.Valid() {
			t.Errorf("%v not valid", l)
		}
	}
	for in, want := range map[string]Level{
		"NONE": None, " Medium ": Medium, "med": Medium, "": None, "HIGH": High,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("paranoid"); err == nil {
		t.Error("unknown level accepted")
	}
	if Level(9).Valid() {
		t.Error("Level(9) valid")
	}
	if !strings.Contains(Level(9).String(), "9") {
		t.Error("unknown level string")
	}
}

func TestScheduleValidate(t *testing.T) {
	def, lin := DefaultSchedule(), LinearSchedule()
	if err := def.Validate(); err != nil {
		t.Fatalf("default schedule invalid: %v", err)
	}
	if err := lin.Validate(); err != nil {
		t.Fatalf("linear schedule invalid: %v", err)
	}
	bad := DefaultSchedule()
	bad.Sigma[None] = 0.1
	if err := bad.Validate(); err == nil {
		t.Error("nonzero sigma at none accepted")
	}
	bad = DefaultSchedule()
	bad.Sigma[High] = 0.1 // below medium
	if err := bad.Validate(); err == nil {
		t.Error("non-monotone sigma accepted")
	}
	bad = DefaultSchedule()
	bad.Sigma[Low] = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sigma at low accepted")
	}
	bad = DefaultSchedule()
	bad.RREpsilon[High] = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero RR epsilon accepted")
	}
	bad = DefaultSchedule()
	bad.RREpsilon[High] = 10 // above medium: weaker privacy at higher level
	if err := bad.Validate(); err == nil {
		t.Error("increasing RR epsilon accepted")
	}
}

func TestSigmaForScaling(t *testing.T) {
	s := DefaultSchedule()
	rating := survey.Question{ID: "r", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5}
	wide := survey.Question{ID: "n", Kind: survey.Numeric, ScaleMin: 0, ScaleMax: 8}
	mc := survey.Question{ID: "m", Kind: survey.MultipleChoice, Options: []string{"a", "b"}}
	if got := s.SigmaFor(&rating, Medium); got != 1.0 {
		t.Errorf("rating medium sigma = %g", got)
	}
	// Scale width 8 is twice the reference 4 → twice the noise.
	if got := s.SigmaFor(&wide, Medium); got != 2.0 {
		t.Errorf("wide medium sigma = %g", got)
	}
	if got := s.SigmaFor(&rating, None); got != 0 {
		t.Errorf("none sigma = %g", got)
	}
	if got := s.SigmaFor(&mc, High); got != 0 {
		t.Errorf("choice sigma = %g", got)
	}
}

func TestNewObfuscatorValidation(t *testing.T) {
	bad := DefaultSchedule()
	bad.Sigma[None] = 1
	if _, err := NewObfuscator(bad, DefaultOptions()); err == nil {
		t.Error("bad schedule accepted")
	}
	opts := DefaultOptions()
	opts.Delta = 0
	if _, err := NewObfuscator(DefaultSchedule(), opts); err == nil {
		t.Error("delta 0 accepted")
	}
	opts.Delta = 1
	if _, err := NewObfuscator(DefaultSchedule(), opts); err == nil {
		t.Error("delta 1 accepted")
	}
}

func newObf(t *testing.T, opts Options) *Obfuscator {
	t.Helper()
	o, err := NewObfuscator(DefaultSchedule(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func ratingQ() *survey.Question {
	return &survey.Question{ID: "q", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5}
}

func TestObfuscateAnswerNonePassthrough(t *testing.T) {
	o := newObf(t, DefaultOptions())
	a := survey.RatingAnswer("q", 4)
	out, err := o.ObfuscateAnswer(ratingQ(), a, None, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Rating != 4 {
		t.Errorf("level none altered the answer: %g", out.Rating)
	}
}

func TestObfuscateAnswerAddsNoise(t *testing.T) {
	o := newObf(t, DefaultOptions())
	r := rng.New(2)
	a := survey.RatingAnswer("q", 4)
	changed := 0
	for i := 0; i < 100; i++ {
		out, err := o.ObfuscateAnswer(ratingQ(), a, Medium, r)
		if err != nil {
			t.Fatal(err)
		}
		if out.Rating != 4 {
			changed++
		}
	}
	if changed < 95 {
		t.Errorf("medium level left %d/100 answers untouched", 100-changed)
	}
	// Input must not be mutated.
	if a.Rating != 4 {
		t.Error("input answer mutated")
	}
}

func TestObfuscateAnswerErrors(t *testing.T) {
	o := newObf(t, DefaultOptions())
	r := rng.New(3)
	a := survey.RatingAnswer("q", 4)
	if _, err := o.ObfuscateAnswer(ratingQ(), a, Level(9), r); err == nil {
		t.Error("invalid level accepted")
	}
	if _, err := o.ObfuscateAnswer(nil, a, Medium, r); err == nil {
		t.Error("nil question accepted")
	}
	out := survey.RatingAnswer("q", 11) // out of scale
	if _, err := o.ObfuscateAnswer(ratingQ(), out, Medium, r); err == nil {
		t.Error("invalid raw answer accepted")
	}
	ft := &survey.Question{ID: "q", Kind: survey.FreeText}
	txt := survey.TextAnswer("q", "secret")
	if _, err := o.ObfuscateAnswer(ft, txt, Medium, r); err == nil {
		t.Error("free text obfuscation accepted")
	}
}

func TestObfuscateAnswerRoundClamp(t *testing.T) {
	opts := DefaultOptions()
	opts.Round = true
	opts.Clamp = true
	o := newObf(t, opts)
	r := rng.New(4)
	q := ratingQ()
	for i := 0; i < 500; i++ {
		out, err := o.ObfuscateAnswer(q, survey.RatingAnswer("q", 5), High, r)
		if err != nil {
			t.Fatal(err)
		}
		if out.Rating < 1 || out.Rating > 5 {
			t.Fatalf("clamped rating %g escaped scale", out.Rating)
		}
		if out.Rating != math.Round(out.Rating) {
			t.Fatalf("rounded rating %g not integral", out.Rating)
		}
	}
}

func TestObfuscateChoiceStaysInDomain(t *testing.T) {
	o := newObf(t, DefaultOptions())
	r := rng.New(5)
	q := &survey.Question{ID: "m", Kind: survey.MultipleChoice, Options: []string{"a", "b", "c"}}
	flipped := 0
	for i := 0; i < 1000; i++ {
		out, err := o.ObfuscateAnswer(q, survey.ChoiceAnswer("m", 1), High, r)
		if err != nil {
			t.Fatal(err)
		}
		if out.Choice < 0 || out.Choice > 2 {
			t.Fatalf("choice %d outside domain", out.Choice)
		}
		if out.Choice != 1 {
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("randomized response never flipped at high level")
	}
}

func TestObfuscateUnbiased(t *testing.T) {
	o := newObf(t, DefaultOptions())
	r := rng.New(6)
	q := ratingQ()
	const truth, n = 4.0, 40_000
	var sum float64
	for i := 0; i < n; i++ {
		out, err := o.ObfuscateAnswer(q, survey.RatingAnswer("q", truth), High, r)
		if err != nil {
			t.Fatal(err)
		}
		sum += out.Rating
	}
	if got := sum / n; math.Abs(got-truth) > 0.04 {
		t.Errorf("mean of noisy answers = %.4f, want %g", got, truth)
	}
}

func TestObfuscateNoiseScalesWithLevel(t *testing.T) {
	o := newObf(t, DefaultOptions())
	r := rng.New(7)
	q := ratingQ()
	const n = 20_000
	var prev float64
	for _, l := range []Level{Low, Medium, High} {
		var ss float64
		for i := 0; i < n; i++ {
			out, err := o.ObfuscateAnswer(q, survey.RatingAnswer("q", 3), l, r)
			if err != nil {
				t.Fatal(err)
			}
			d := out.Rating - 3
			ss += d * d
		}
		sd := math.Sqrt(ss / n)
		want := DefaultSchedule().Sigma[l]
		if math.Abs(sd-want) > 0.05 {
			t.Errorf("level %v empirical sigma %.3f, want %g", l, sd, want)
		}
		if sd <= prev {
			t.Errorf("noise did not grow at level %v", l)
		}
		prev = sd
	}
}

func lecturerSurvey() *survey.Survey {
	return survey.Lecturers([]string{"A", "B"})
}

func lecturerAnswers() []survey.Answer {
	return []survey.Answer{
		survey.RatingAnswer("lecturer-00", 4),
		survey.RatingAnswer("lecturer-01", 5),
	}
}

func TestObfuscateResponseWithLedger(t *testing.T) {
	o := newObf(t, DefaultOptions())
	lg, err := NewLedger(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	sv := lecturerSurvey()
	out, err := o.ObfuscateResponse(sv, lecturerAnswers(), Medium, rng.New(8), lg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d answers", len(out))
	}
	if lg.Events() != 2 || lg.Responses() != 1 {
		t.Errorf("ledger recorded %d events, %d responses", lg.Events(), lg.Responses())
	}
	if lg.Spent().Epsilon <= 0 {
		t.Error("ledger spent nothing")
	}
	if lg.Unprotected() != 0 {
		t.Error("noisy answers counted as unprotected")
	}
}

func TestObfuscateResponseNoneUnprotected(t *testing.T) {
	o := newObf(t, DefaultOptions())
	lg, _ := NewLedger(1e-6)
	sv := lecturerSurvey()
	out, err := o.ObfuscateResponse(sv, lecturerAnswers(), None, rng.New(9), lg)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Rating != 4 || out[1].Rating != 5 {
		t.Error("level none altered answers")
	}
	if lg.Unprotected() != 2 {
		t.Errorf("unprotected = %d, want 2", lg.Unprotected())
	}
	if lg.Rho() != 0 {
		t.Error("level none accrued rho")
	}
}

func TestObfuscateResponseUnknownQuestion(t *testing.T) {
	o := newObf(t, DefaultOptions())
	sv := lecturerSurvey()
	answers := []survey.Answer{survey.RatingAnswer("phantom-question", 3)}
	if _, err := o.ObfuscateResponse(sv, answers, Medium, rng.New(31), nil); err == nil {
		t.Fatal("answer to unknown question accepted")
	}
}

func TestObfuscateResponseFreeTextRejected(t *testing.T) {
	o := newObf(t, DefaultOptions())
	sv := &survey.Survey{ID: "s", Questions: []survey.Question{
		{ID: "r", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
		{ID: "t", Kind: survey.FreeText},
	}}
	answers := []survey.Answer{survey.RatingAnswer("r", 3), survey.TextAnswer("t", "x")}
	lg, _ := NewLedger(1e-6)
	if _, err := o.ObfuscateResponse(sv, answers, Medium, rng.New(10), lg); err == nil {
		t.Fatal("free-text survey accepted at level medium")
	}
	if lg.Events() != 0 {
		t.Error("failed obfuscation still charged the ledger")
	}
	// Level none passes through, free text included.
	if _, err := o.ObfuscateResponse(sv, answers, None, rng.New(10), nil); err != nil {
		t.Fatalf("level none rejected free text: %v", err)
	}
}

func TestCostOfResponse(t *testing.T) {
	o := newObf(t, DefaultOptions())
	sv := lecturerSurvey()
	if _, ok, err := o.CostOfResponse(sv, None); err != nil || ok {
		t.Errorf("none cost: ok=%v err=%v", ok, err)
	}
	var prev float64 = math.Inf(1)
	for _, l := range []Level{Low, Medium, High} {
		cost, ok, err := o.CostOfResponse(sv, l)
		if err != nil || !ok {
			t.Fatalf("cost at %v: %v", l, err)
		}
		if cost.Epsilon >= prev {
			t.Errorf("cost not decreasing with level: %v at %v", cost, l)
		}
		prev = cost.Epsilon
	}
	if _, _, err := o.CostOfResponse(sv, Level(11)); err == nil {
		t.Error("invalid level accepted")
	}
	ft := &survey.Survey{ID: "s", Questions: []survey.Question{{ID: "t", Kind: survey.FreeText}}}
	if _, _, err := o.CostOfResponse(ft, Medium); err == nil {
		t.Error("free-text survey cost accepted")
	}
}

func TestEpsilonPerRating(t *testing.T) {
	o := newObf(t, DefaultOptions())
	eps := o.EpsilonPerRating()
	if !math.IsInf(eps[None], 1) {
		t.Error("none epsilon not infinite")
	}
	for l := Low; l < High; l++ {
		if eps[l] <= eps[l+1] {
			t.Errorf("epsilon not decreasing: %v", eps)
		}
	}
}

func TestLedgerValidation(t *testing.T) {
	if _, err := NewLedger(0); err == nil {
		t.Error("delta 0 accepted")
	}
	if _, err := NewLedger(1); err == nil {
		t.Error("delta 1 accepted")
	}
	lg, err := NewLedger(1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Delta() != 1e-7 {
		t.Error("delta accessor")
	}
	o := newObf(t, DefaultOptions())
	if err := lg.RecordResponse(o, lecturerSurvey(), Level(42)); err == nil {
		t.Error("invalid level accepted by ledger")
	}
}

func TestLedgerAccumulation(t *testing.T) {
	lg, _ := NewLedger(1e-6)
	o := newObf(t, DefaultOptions())
	sv := lecturerSurvey()
	var prev float64
	for i := 1; i <= 5; i++ {
		if err := lg.RecordResponse(o, sv, High); err != nil {
			t.Fatal(err)
		}
		eps := lg.Spent().Epsilon
		if eps <= prev {
			t.Fatalf("spent ε not increasing: %g after %d responses", eps, i)
		}
		prev = eps
	}
	if lg.Responses() != 5 || lg.Events() != 10 {
		t.Errorf("responses=%d events=%d", lg.Responses(), lg.Events())
	}
	perSurvey := lg.PerSurvey()
	if len(perSurvey) != 1 || perSurvey[0].Events != 10 {
		t.Errorf("per-survey = %+v", perSurvey)
	}
	basic, err := lg.SpentBasic()
	if err != nil {
		t.Fatal(err)
	}
	if basic.Epsilon < lg.Spent().Epsilon {
		t.Errorf("basic %g below zCDP %g over 10 events", basic.Epsilon, lg.Spent().Epsilon)
	}
}

func TestLedgerBudget(t *testing.T) {
	lg, _ := NewLedger(1e-6)
	o := newObf(t, DefaultOptions())
	sv := lecturerSurvey()

	if _, err := lg.CanAfford(o, sv, High, 0); err == nil {
		t.Error("budget 0 accepted")
	}
	fits, err := lg.CanAfford(o, sv, None, 1000)
	if err != nil || fits {
		t.Error("level none fits a finite budget")
	}
	costHigh, _, err := o.CostOfResponse(sv, High)
	if err != nil {
		t.Fatal(err)
	}
	fits, err = lg.CanAfford(o, sv, High, costHigh.Epsilon*1.01)
	if err != nil || !fits {
		t.Errorf("fresh ledger cannot afford one high response: %v", err)
	}
	// Burn budget, then the same allowance no longer fits.
	for i := 0; i < 10; i++ {
		if err := lg.RecordResponse(o, sv, High); err != nil {
			t.Fatal(err)
		}
	}
	fits, err = lg.CanAfford(o, sv, High, costHigh.Epsilon*1.01)
	if err != nil || fits {
		t.Error("spent ledger still affords the original allowance")
	}

	// MinAffordableLevel prefers the most accurate affordable level.
	fresh, _ := NewLedger(1e-6)
	costLow, _, _ := o.CostOfResponse(sv, Low)
	l, ok, err := fresh.MinAffordableLevel(o, sv, costLow.Epsilon*1.01)
	if err != nil || !ok || l != Low {
		t.Errorf("min level = %v ok=%v err=%v, want low", l, ok, err)
	}
	costMed, _, _ := o.CostOfResponse(sv, Medium)
	l, ok, err = fresh.MinAffordableLevel(o, sv, costMed.Epsilon*1.01)
	if err != nil || !ok || l != Medium {
		t.Errorf("min level = %v, want medium", l)
	}
	_, ok, err = fresh.MinAffordableLevel(o, sv, 0.001)
	if err != nil || ok {
		t.Error("tiny budget affordable")
	}
}

func TestLedgerFreeTextRejected(t *testing.T) {
	lg, _ := NewLedger(1e-6)
	o := newObf(t, DefaultOptions())
	ft := &survey.Survey{ID: "s", Questions: []survey.Question{{ID: "t", Kind: survey.FreeText}}}
	if err := lg.RecordResponse(o, ft, Medium); err == nil {
		t.Error("free-text survey costed")
	}
	if _, err := lg.CanAfford(o, ft, Medium, 10); err == nil {
		t.Error("free-text survey affordable")
	}
}

func TestLedgerConcurrency(t *testing.T) {
	lg, _ := NewLedger(1e-6)
	o := newObf(t, DefaultOptions())
	sv := lecturerSurvey()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := lg.RecordResponse(o, sv, Medium); err != nil {
					t.Error(err)
					return
				}
				_ = lg.Spent()
			}
		}()
	}
	wg.Wait()
	if lg.Responses() != 200 || lg.Events() != 400 {
		t.Fatalf("responses=%d events=%d", lg.Responses(), lg.Events())
	}
}
