package core
