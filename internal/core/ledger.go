package core

import (
	"fmt"
	"sync"

	"loki/internal/dp"
	"loki/internal/survey"
)

// Ledger tracks one user's cumulative privacy loss across every survey
// they have answered through Loki — the "mathematical framework, relying
// on differential privacy, to quantify the privacy loss, so that the
// cumulative privacy loss can be tracked" the paper refers to.
//
// Noisy releases are accounted in zCDP (which composes additively and
// converts tightly to (ε, δ)); answers uploaded at level None are not
// differentially private at all, so the ledger counts them separately as
// unprotected disclosures rather than pretending they have a finite cost.
//
// A Ledger is safe for concurrent use.
type Ledger struct {
	mu          sync.Mutex
	acct        *dp.Accountant
	delta       float64
	unprotected int      // answers uploaded with no noise
	surveys     []string // survey IDs in upload order (duplicates allowed)
}

// NewLedger creates a ledger that reports (ε, δ)-DP totals at the given
// δ.
func NewLedger(delta float64) (*Ledger, error) {
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("core: ledger delta must be in (0, 1), got %g", delta)
	}
	return &Ledger{acct: dp.NewAccountant(), delta: delta}, nil
}

// Delta returns the δ the ledger reports totals at.
func (lg *Ledger) Delta() float64 { return lg.delta }

// RecordResponse records the privacy cost of one full survey response
// released at the given level: one Gaussian event per numeric answer, one
// randomized-response event per choice answer, or one unprotected
// disclosure per answer at level None.
func (lg *Ledger) RecordResponse(o *Obfuscator, s *survey.Survey, l Level) error {
	if !l.Valid() {
		return fmt.Errorf("core: invalid privacy level %d", int(l))
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if l == None {
		lg.unprotected += len(s.Questions)
		lg.surveys = append(lg.surveys, s.ID)
		return nil
	}
	for i := range s.Questions {
		q := &s.Questions[i]
		tag := fmt.Sprintf("survey:%s/question:%s", s.ID, q.ID)
		c, err := o.questionCost(q, l)
		if err != nil {
			return fmt.Errorf("core: ledger cannot cost question %q: %w", q.ID, err)
		}
		if c.mechanism == "gaussian" {
			if err := lg.acct.RecordGaussian(c.sigma, q.Sensitivity(), tag); err != nil {
				return err
			}
			continue
		}
		if err := lg.acct.RecordPure(c.mechanism, c.pureEps, tag); err != nil {
			return err
		}
	}
	lg.surveys = append(lg.surveys, s.ID)
	return nil
}

// Spent returns the cumulative (ε, δ) privacy loss of all noisy releases
// under zCDP composition.
func (lg *Ledger) Spent() dp.Params {
	p, err := lg.acct.TotalZCDP(lg.delta)
	if err != nil {
		// delta was validated at construction; TotalZCDP cannot fail.
		panic(fmt.Sprintf("core: ledger accounting failed: %v", err))
	}
	return p
}

// SpentBasic returns the cumulative loss under basic composition, for
// comparison with the zCDP total (ablation A5).
func (lg *Ledger) SpentBasic() (dp.Params, error) {
	return lg.acct.TotalBasic(lg.delta)
}

// Rho returns the raw cumulative zCDP cost.
func (lg *Ledger) Rho() float64 { return lg.acct.TotalRho() }

// Unprotected returns the number of answers uploaded with no noise
// (level None) — disclosures with unbounded privacy loss.
func (lg *Ledger) Unprotected() int {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.unprotected
}

// Responses returns how many survey responses the ledger has recorded.
func (lg *Ledger) Responses() int {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return len(lg.surveys)
}

// Events returns the number of costed (noisy) release events.
func (lg *Ledger) Events() int { return lg.acct.Len() }

// PerSurvey returns the cumulative ρ per survey, sorted by survey tag.
func (lg *Ledger) PerSurvey() []dp.TagCost { return lg.acct.ByTag() }

// CanAfford reports whether answering survey s at level l would keep the
// cumulative ε (at the ledger's δ) within budgetEpsilon. Level None never
// fits a finite budget: its loss is unbounded.
func (lg *Ledger) CanAfford(o *Obfuscator, s *survey.Survey, l Level, budgetEpsilon float64) (bool, error) {
	if budgetEpsilon <= 0 {
		return false, fmt.Errorf("core: budget epsilon must be positive, got %g", budgetEpsilon)
	}
	if l == None {
		return false, nil
	}
	addRho, err := o.responseRho(s, l)
	if err != nil {
		return false, err
	}
	total := lg.acct.TotalRho() + addRho
	return dp.EpsilonFromRho(total, lg.delta) <= budgetEpsilon, nil
}

// MinAffordableLevel returns the least-protective level whose cost still
// fits the budget, preferring lower levels (better accuracy) as the
// paper's accuracy/privacy balancing suggests. If even High does not fit,
// ok is false.
func (lg *Ledger) MinAffordableLevel(o *Obfuscator, s *survey.Survey, budgetEpsilon float64) (Level, bool, error) {
	for l := Low; l <= High; l++ {
		fits, err := lg.CanAfford(o, s, l, budgetEpsilon)
		if err != nil {
			return None, false, err
		}
		if fits {
			return l, true, nil
		}
	}
	return None, false, nil
}
