package core

import (
	"fmt"
	"math"

	"loki/internal/dp"
	"loki/internal/rng"
	"loki/internal/survey"
)

// ReferenceScaleWidth is the width of the 1..5 rating scale the paper's
// noise schedule is expressed on. Noise for other numeric scales is
// scaled proportionally so a privacy level means the same relative
// protection everywhere.
const ReferenceScaleWidth = 4.0

// Schedule maps each privacy level to the Gaussian noise standard
// deviation applied to a 1..5 rating, and to the randomized-response
// epsilon applied to multiple-choice answers.
type Schedule struct {
	// Sigma[l] is the noise standard deviation at level l on the
	// reference 1..5 scale. Sigma[None] must be 0.
	Sigma [NumLevels]float64
	// RREpsilon[l] is the randomized-response ε at level l for
	// multiple-choice questions. RREpsilon[None] is ignored (answers
	// pass through).
	RREpsilon [NumLevels]float64
}

// DefaultSchedule returns the doubling schedule used throughout the
// reproduction: σ = {0, 0.5, 1, 2} on the 1..5 scale ("standard
// deviation successively larger for higher privacy level"), and
// randomized-response ε = {∞, 2, 1, 0.5} for choice questions.
func DefaultSchedule() Schedule {
	return Schedule{
		Sigma:     [NumLevels]float64{0, 0.5, 1.0, 2.0},
		RREpsilon: [NumLevels]float64{math.Inf(1), 2.0, 1.0, 0.5},
	}
}

// LinearSchedule returns the alternative linear schedule σ = {0, 0.5, 1,
// 1.5} used by the schedule ablation.
func LinearSchedule() Schedule {
	return Schedule{
		Sigma:     [NumLevels]float64{0, 0.5, 1.0, 1.5},
		RREpsilon: [NumLevels]float64{math.Inf(1), 2.0, 1.0, 0.5},
	}
}

// Validate checks that the schedule is monotone: noise must not decrease
// as the level rises, and level None must add no noise.
func (s *Schedule) Validate() error {
	if s.Sigma[None] != 0 {
		return fmt.Errorf("core: schedule must have zero noise at level none, got %g", s.Sigma[None])
	}
	for l := 1; l < NumLevels; l++ {
		if s.Sigma[l] < s.Sigma[l-1] {
			return fmt.Errorf("core: sigma schedule not monotone at level %v (%g < %g)",
				Level(l), s.Sigma[l], s.Sigma[l-1])
		}
		if s.Sigma[l] <= 0 {
			return fmt.Errorf("core: sigma at level %v must be positive, got %g", Level(l), s.Sigma[l])
		}
	}
	for l := 1; l < NumLevels; l++ {
		if s.RREpsilon[l] <= 0 {
			return fmt.Errorf("core: randomized-response epsilon at level %v must be positive, got %g",
				Level(l), s.RREpsilon[l])
		}
		if s.RREpsilon[l] > s.RREpsilon[l-1] {
			return fmt.Errorf("core: randomized-response epsilons must not increase with level, got %g > %g at %v",
				s.RREpsilon[l], s.RREpsilon[l-1], Level(l))
		}
	}
	return nil
}

// SigmaFor returns the noise standard deviation applied to the question
// at the given level, scaled from the reference 1..5 schedule to the
// question's own scale width so the relative perturbation is constant.
func (s *Schedule) SigmaFor(q *survey.Question, l Level) float64 {
	base := s.Sigma[l]
	if base == 0 {
		return 0
	}
	switch q.Kind {
	case survey.Rating, survey.Numeric:
		return base * (q.ScaleMax - q.ScaleMin) / ReferenceScaleWidth
	default:
		return 0
	}
}

// NoiseKind selects the additive-noise distribution for numeric answers.
type NoiseKind int

const (
	// NoiseGaussian is the paper's mechanism.
	NoiseGaussian NoiseKind = iota
	// NoiseLaplace swaps in variance-matched Laplace noise (scale
	// b = σ/√2 has the same variance as N(0, σ²)) and gives a pure-ε
	// guarantee per release. Ablation A7 compares the two.
	NoiseLaplace
)

// String names the noise kind.
func (n NoiseKind) String() string {
	switch n {
	case NoiseGaussian:
		return "gaussian"
	case NoiseLaplace:
		return "laplace"
	default:
		return fmt.Sprintf("NoiseKind(%d)", int(n))
	}
}

// Options configure an Obfuscator beyond its schedule.
type Options struct {
	// Clamp forces noisy numeric answers back into the question's scale.
	// The paper does NOT clamp — Fig. 1(c) shows noisy ratings such as
	// 3.86 and values outside the scale keep the aggregate unbiased — so
	// the default is false; the A1 ablation measures the bias clamping
	// introduces.
	Clamp bool
	// Round rounds noisy numeric answers to the nearest integer.
	// Default false for the same unbiasedness reason.
	Round bool
	// Noise selects the numeric noise distribution (default Gaussian,
	// as in the paper).
	Noise NoiseKind
	// Delta is the δ used when converting Gaussian noise into an (ε, δ)
	// privacy cost for the ledger.
	Delta float64
}

// DefaultOptions returns the options used by the reproduction.
func DefaultOptions() Options {
	return Options{Clamp: false, Round: false, Noise: NoiseGaussian, Delta: 1e-6}
}

// Obfuscator perturbs answers at source according to a schedule. It is
// stateless apart from its configuration; privacy-loss bookkeeping is
// the ledger's job.
type Obfuscator struct {
	schedule Schedule
	opts     Options
}

// NewObfuscator validates the schedule and options and returns an
// obfuscator.
func NewObfuscator(schedule Schedule, opts Options) (*Obfuscator, error) {
	if err := schedule.Validate(); err != nil {
		return nil, err
	}
	if opts.Delta <= 0 || opts.Delta >= 1 {
		return nil, fmt.Errorf("core: options delta must be in (0, 1), got %g", opts.Delta)
	}
	return &Obfuscator{schedule: schedule, opts: opts}, nil
}

// Schedule returns the obfuscator's schedule.
func (o *Obfuscator) Schedule() Schedule { return o.schedule }

// Options returns the obfuscator's options.
func (o *Obfuscator) Options() Options { return o.opts }

// ObfuscateAnswer perturbs a single answer at the given level. Free-text
// answers are rejected: the paper restricts obfuscation to countable
// response sets. The returned answer is a new value; the input is not
// modified.
func (o *Obfuscator) ObfuscateAnswer(q *survey.Question, a survey.Answer, l Level, r *rng.RNG) (survey.Answer, error) {
	if !l.Valid() {
		return survey.Answer{}, fmt.Errorf("core: invalid privacy level %d", int(l))
	}
	if q == nil {
		return survey.Answer{}, fmt.Errorf("core: answer %q has no question", a.QuestionID)
	}
	if err := survey.ValidateAnswer(q, &a, false); err != nil {
		return survey.Answer{}, fmt.Errorf("core: refusing to obfuscate invalid answer: %w", err)
	}
	if l == None {
		return a, nil
	}
	switch q.Kind {
	case survey.Rating, survey.Numeric:
		sigma := o.schedule.SigmaFor(q, l)
		var noisy float64
		if o.opts.Noise == NoiseLaplace {
			// Variance-matched Laplace: Var(Laplace(b)) = 2b², so
			// b = σ/√2 reproduces the schedule's noise magnitude.
			noisy = r.Laplace(a.Rating, sigma/math.Sqrt2)
		} else {
			noisy = r.Normal(a.Rating, sigma)
		}
		if o.opts.Round {
			noisy = math.Round(noisy)
		}
		if o.opts.Clamp {
			noisy = math.Min(math.Max(noisy, q.ScaleMin), q.ScaleMax)
		}
		out := a
		out.Rating = noisy
		return out, nil
	case survey.MultipleChoice:
		rr, err := dp.NewRandomizedResponse(o.schedule.RREpsilon[l], len(q.Options))
		if err != nil {
			return survey.Answer{}, fmt.Errorf("core: question %q: %w", q.ID, err)
		}
		choice, err := rr.Release(a.Choice, r)
		if err != nil {
			return survey.Answer{}, fmt.Errorf("core: question %q: %w", q.ID, err)
		}
		out := a
		out.Choice = choice
		return out, nil
	default:
		return survey.Answer{}, fmt.Errorf("core: question %q is %v; free-text answers cannot be obfuscated",
			q.ID, q.Kind)
	}
}

// ObfuscateResponse perturbs every answer of a raw response at the given
// level and, if ledger is non-nil, records the privacy cost of each
// released answer. Questions whose kind cannot be obfuscated cause an
// error before anything is recorded, so a response is costed all-or-
// nothing.
func (o *Obfuscator) ObfuscateResponse(s *survey.Survey, answers []survey.Answer, l Level, r *rng.RNG, ledger *Ledger) ([]survey.Answer, error) {
	if !l.Valid() {
		return nil, fmt.Errorf("core: invalid privacy level %d", int(l))
	}
	// Pre-flight: every question must be obfuscatable at l > None.
	if l != None {
		for i := range s.Questions {
			if s.Questions[i].Kind == survey.FreeText {
				return nil, fmt.Errorf("core: survey %q contains free-text question %q; "+
					"obfuscation applies only to countable response sets", s.ID, s.Questions[i].ID)
			}
		}
	}
	out := make([]survey.Answer, len(answers))
	for i := range answers {
		q := s.Question(answers[i].QuestionID)
		noisy, err := o.ObfuscateAnswer(q, answers[i], l, r)
		if err != nil {
			return nil, err
		}
		out[i] = noisy
	}
	if ledger != nil {
		if err := ledger.RecordResponse(o, s, l); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// answerCost is the privacy accounting for one released answer. Exactly
// one of the two cost representations applies: Gaussian releases carry a
// σ (converted through zCDP), pure-DP releases (Laplace, randomized
// response) carry an ε.
type answerCost struct {
	mechanism string  // "gaussian" | "laplace" | "rr"
	sigma     float64 // > 0 for gaussian releases
	pureEps   float64 // > 0 for laplace/rr releases
	rho       float64 // zCDP cost, always set
}

// questionCost returns the accounting of releasing one answer to q at
// level l under the obfuscator's noise kind. l must be above None.
func (o *Obfuscator) questionCost(q *survey.Question, l Level) (answerCost, error) {
	switch q.Kind {
	case survey.Rating, survey.Numeric:
		sigma := o.schedule.SigmaFor(q, l)
		if o.opts.Noise == NoiseLaplace {
			// Laplace(b = σ/√2) with L1-sensitivity Δ is (Δ/b)-DP.
			eps := q.Sensitivity() * math.Sqrt2 / sigma
			return answerCost{mechanism: "laplace", pureEps: eps, rho: eps * eps / 2}, nil
		}
		return answerCost{
			mechanism: "gaussian",
			sigma:     sigma,
			rho:       dp.RhoFromSigma(sigma, q.Sensitivity()),
		}, nil
	case survey.MultipleChoice:
		eps := o.schedule.RREpsilon[l]
		return answerCost{mechanism: "rr", pureEps: eps, rho: eps * eps / 2}, nil
	default:
		return answerCost{}, fmt.Errorf("core: question %q is %v; it has no finite privacy cost", q.ID, q.Kind)
	}
}

// responseRho sums the zCDP cost of answering every question of s once
// at level l.
func (o *Obfuscator) responseRho(s *survey.Survey, l Level) (float64, error) {
	total := 0.0
	for i := range s.Questions {
		c, err := o.questionCost(&s.Questions[i], l)
		if err != nil {
			return 0, fmt.Errorf("core: survey %q: %w", s.ID, err)
		}
		total += c.rho
	}
	return total, nil
}

// ResponseRho is the budget layer's costing entry point: the total zCDP
// cost ρ of releasing one response to s at level l, plus the number of
// answers that release with no noise at all. Level None costs ρ=0 and
// counts every question as unprotected; above None, free-text questions
// (which the obfuscator cannot protect) are excluded from ρ and counted
// as unprotected instead — charging them a fake finite ε would
// understate the disclosure, so the ledger tallies them separately.
func (o *Obfuscator) ResponseRho(s *survey.Survey, l Level) (rho float64, unprotected int, err error) {
	if !l.Valid() {
		return 0, 0, fmt.Errorf("core: invalid privacy level %d", int(l))
	}
	if l == None {
		return 0, len(s.Questions), nil
	}
	for i := range s.Questions {
		q := &s.Questions[i]
		if q.Kind == survey.FreeText {
			unprotected++
			continue
		}
		c, err := o.questionCost(q, l)
		if err != nil {
			return 0, 0, fmt.Errorf("core: survey %q: %w", s.ID, err)
		}
		rho += c.rho
	}
	return rho, unprotected, nil
}

// CostOfResponse returns the (ε, δ) privacy cost of answering the whole
// survey once at the given level, composed across questions with zCDP
// (the ledger's accounting), without releasing anything. Level None
// returns ok=false: an unprotected disclosure has no finite DP cost.
func (o *Obfuscator) CostOfResponse(s *survey.Survey, l Level) (cost dp.Params, ok bool, err error) {
	if !l.Valid() {
		return dp.Params{}, false, fmt.Errorf("core: invalid privacy level %d", int(l))
	}
	if l == None {
		return dp.Params{}, false, nil
	}
	totalRho, err := o.responseRho(s, l)
	if err != nil {
		return dp.Params{}, false, err
	}
	return dp.Params{Epsilon: dp.EpsilonFromRho(totalRho, o.opts.Delta), Delta: o.opts.Delta}, true, nil
}

// EpsilonPerRating returns the (ε, δ=opts.Delta) cost of releasing one
// 1..5 rating at each level — the numbers a Loki deployment would print
// next to the level picker. Level None reports +Inf.
func (o *Obfuscator) EpsilonPerRating() [NumLevels]float64 {
	var out [NumLevels]float64
	out[None] = math.Inf(1)
	for l := Low; l <= High; l++ {
		rho := dp.RhoFromSigma(o.schedule.Sigma[l], ReferenceScaleWidth)
		out[l] = dp.EpsilonFromRho(rho, o.opts.Delta)
	}
	return out
}
