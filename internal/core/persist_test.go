package core

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"loki/internal/dp"
	"loki/internal/rng"
	"loki/internal/survey"
)

func populatedLedger(t *testing.T) *Ledger {
	t.Helper()
	lg, err := NewLedger(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	o := newObf(t, DefaultOptions())
	sv := survey.Lecturers([]string{"A", "B", "C"})
	for i := 0; i < 4; i++ {
		if err := lg.RecordResponse(o, sv, Medium); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.RecordResponse(o, sv, None); err != nil {
		t.Fatal(err)
	}
	// A choice question adds a pure-ε event too.
	mc := &survey.Survey{ID: "mc", Questions: []survey.Question{
		{ID: "q", Kind: survey.MultipleChoice, Options: []string{"a", "b"}},
	}}
	if err := lg.RecordResponse(o, mc, High); err != nil {
		t.Fatal(err)
	}
	return lg
}

func TestLedgerRoundTrip(t *testing.T) {
	lg := populatedLedger(t)
	var buf bytes.Buffer
	if _, err := lg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Delta() != lg.Delta() {
		t.Error("delta lost")
	}
	if back.Responses() != lg.Responses() {
		t.Errorf("responses %d vs %d", back.Responses(), lg.Responses())
	}
	if back.Events() != lg.Events() {
		t.Errorf("events %d vs %d", back.Events(), lg.Events())
	}
	if back.Unprotected() != lg.Unprotected() {
		t.Errorf("unprotected %d vs %d", back.Unprotected(), lg.Unprotected())
	}
	if math.Abs(back.Rho()-lg.Rho()) > 1e-12 {
		t.Errorf("rho %g vs %g", back.Rho(), lg.Rho())
	}
	if math.Abs(back.Spent().Epsilon-lg.Spent().Epsilon) > 1e-9 {
		t.Errorf("spent %v vs %v", back.Spent(), lg.Spent())
	}
	// Per-survey attribution survives too.
	if len(back.PerSurvey()) != len(lg.PerSurvey()) {
		t.Error("per-survey tags lost")
	}
}

func TestLedgerFileRoundTrip(t *testing.T) {
	lg := populatedLedger(t)
	path := filepath.Join(t.TempDir(), "ledger.json")
	if err := lg.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Events() != lg.Events() || back.Unprotected() != lg.Unprotected() {
		t.Error("file round trip lost state")
	}
	// Restored ledgers keep accumulating.
	o := newObf(t, DefaultOptions())
	before := back.Spent().Epsilon
	if err := back.RecordResponse(o, survey.Lecturers([]string{"X"}), Low); err != nil {
		t.Fatal(err)
	}
	if back.Spent().Epsilon <= before {
		t.Error("restored ledger does not accumulate")
	}
}

func TestLoadLedgerErrors(t *testing.T) {
	if _, err := LoadLedgerFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ReadLedger(strings.NewReader("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadLedger(strings.NewReader(`{"version":99,"delta":1e-6}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := ReadLedger(strings.NewReader(`{"version":1,"delta":2}`)); err == nil {
		t.Error("invalid delta accepted")
	}
	if _, err := ReadLedger(strings.NewReader(`{"version":1,"delta":1e-6,"unprotected":-3}`)); err == nil {
		t.Error("negative unprotected accepted")
	}
	if _, err := ReadLedger(strings.NewReader(
		`{"version":1,"delta":1e-6,"events":[{"Mechanism":"gaussian","Rho":-1}]}`)); err == nil {
		t.Error("negative-cost event accepted")
	}
}

func TestSaveFileBadPath(t *testing.T) {
	lg := populatedLedger(t)
	if err := lg.SaveFile(filepath.Join(t.TempDir(), "no-such-dir", "ledger.json")); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestLaplaceNoiseOption(t *testing.T) {
	opts := DefaultOptions()
	opts.Noise = NoiseLaplace
	o := newObf(t, opts)
	r := rng.New(99)
	q := ratingQ()
	const n = 40_000
	var sum, ss float64
	for i := 0; i < n; i++ {
		out, err := o.ObfuscateAnswer(q, survey.RatingAnswer("q", 3), Medium, r)
		if err != nil {
			t.Fatal(err)
		}
		d := out.Rating - 3
		sum += d
		ss += d * d
	}
	if math.Abs(sum/n) > 0.03 {
		t.Errorf("laplace noise biased: %g", sum/n)
	}
	// Variance-matched: empirical stddev ≈ schedule σ (1.0 at medium).
	if sd := math.Sqrt(ss / n); math.Abs(sd-1.0) > 0.05 {
		t.Errorf("laplace empirical sigma %.3f, want 1.0", sd)
	}
}

func TestLaplaceCostIsPure(t *testing.T) {
	opts := DefaultOptions()
	opts.Noise = NoiseLaplace
	o := newObf(t, opts)
	lg, _ := NewLedger(1e-6)
	sv := lecturerSurvey()
	if err := lg.RecordResponse(o, sv, Medium); err != nil {
		t.Fatal(err)
	}
	// Laplace(b = σ/√2 = 1/√2) with Δ=4 → ε = 4√2 per answer.
	wantEps := 4 * math.Sqrt2
	for _, tc := range lg.PerSurvey() {
		// pure events contribute ρ = ε²/2 each; 2 answers.
		wantRho := 2 * wantEps * wantEps / 2
		if math.Abs(tc.Rho-wantRho) > 1e-9 {
			t.Errorf("rho = %g, want %g", tc.Rho, wantRho)
		}
	}
	// CostOfResponse agrees with the ledger's accounting.
	cost, ok, err := o.CostOfResponse(sv, Medium)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if math.Abs(cost.Epsilon-lg.Spent().Epsilon) > 1e-9 {
		t.Errorf("precomputed cost %g != ledger %g", cost.Epsilon, lg.Spent().Epsilon)
	}
}

func TestNoiseKindString(t *testing.T) {
	if NoiseGaussian.String() != "gaussian" || NoiseLaplace.String() != "laplace" {
		t.Error("noise kind strings")
	}
	if NoiseKind(9).String() == "" {
		t.Error("unknown noise kind string empty")
	}
}

func TestLedgerSnapshotRestore(t *testing.T) {
	lg := populatedLedger(t)
	snap, err := lg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh ledger (different delta, some state of its
	// own): every total must come back exactly.
	fresh, err := NewLedger(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	o := newObf(t, DefaultOptions())
	sv := survey.Lecturers([]string{"X"})
	if err := fresh.RecordResponse(o, sv, Low); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.Delta() != lg.Delta() {
		t.Errorf("delta %g vs %g", fresh.Delta(), lg.Delta())
	}
	if fresh.Rho() != lg.Rho() {
		t.Errorf("rho %g vs %g", fresh.Rho(), lg.Rho())
	}
	if fresh.Spent() != lg.Spent() {
		t.Errorf("spent %v vs %v", fresh.Spent(), lg.Spent())
	}
	if fresh.Unprotected() != lg.Unprotected() {
		t.Errorf("unprotected %d vs %d", fresh.Unprotected(), lg.Unprotected())
	}
	if fresh.Responses() != lg.Responses() {
		t.Errorf("responses %d vs %d", fresh.Responses(), lg.Responses())
	}
	if fresh.Events() != lg.Events() {
		t.Errorf("events %d vs %d", fresh.Events(), lg.Events())
	}

	// And the round trip is lossless through a second snapshot.
	again, err := fresh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, again) {
		t.Error("second snapshot differs from first")
	}

	if err := fresh.Restore([]byte("{nope")); err == nil {
		t.Error("corrupt snapshot restored")
	}
}

func TestResponseRho(t *testing.T) {
	o := newObf(t, DefaultOptions())
	sv := survey.Lecturers([]string{"A", "B"})

	// None: free of finite cost, every answer unprotected.
	rho, unprot, err := o.ResponseRho(sv, None)
	if err != nil {
		t.Fatal(err)
	}
	if rho != 0 || unprot != len(sv.Questions) {
		t.Fatalf("None: rho=%g unprot=%d, want 0/%d", rho, unprot, len(sv.Questions))
	}

	// Above None the rho must agree with CostOfResponse's composition.
	rho, unprot, err = o.ResponseRho(sv, Medium)
	if err != nil {
		t.Fatal(err)
	}
	if rho <= 0 || unprot != 0 {
		t.Fatalf("Medium: rho=%g unprot=%d", rho, unprot)
	}
	cost, ok, err := o.CostOfResponse(sv, Medium)
	if err != nil || !ok {
		t.Fatalf("CostOfResponse: %v ok=%v", err, ok)
	}
	if got := dp.EpsilonFromRho(rho, DefaultOptions().Delta); math.Abs(got-cost.Epsilon) > 1e-12 {
		t.Fatalf("rho→ε %g disagrees with CostOfResponse ε %g", got, cost.Epsilon)
	}

	// Free-text questions are excluded from rho, counted unprotected.
	ft := &survey.Survey{ID: "ft", Questions: []survey.Question{
		{ID: "r", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
		{ID: "t", Kind: survey.FreeText},
	}}
	rho2, unprot, err := o.ResponseRho(ft, Medium)
	if err != nil {
		t.Fatal(err)
	}
	if rho2 <= 0 || unprot != 1 {
		t.Fatalf("free-text survey: rho=%g unprot=%d, want >0/1", rho2, unprot)
	}

	if _, _, err := o.ResponseRho(sv, Level(99)); err == nil {
		t.Fatal("invalid level accepted")
	}
}
