package shardset

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/store"
	"loki/internal/survey"
)

// epochCounter disambiguates journals created within one clock tick:
// an epoch must never repeat across router rebuilds, or a follower
// would keep applying offsets into a reordered journal.
var epochCounter atomic.Uint64

func nextEpoch() uint64 {
	return uint64(time.Now().UnixNano()) + epochCounter.Add(1)
}

// Local is the in-process ShardRouter: N store.Store instances, one per
// shard. Each shard keeps its own durability (a store.Mem for tests and
// replicas, an ingest store per shard directory for durable nodes), its
// own per-shard sequence numbers, and — when journaling is enabled — an
// in-memory append journal that WAL-tail shipping to read replicas is
// served from.
//
// Wrapping a single store in a one-shard Local is exactly the
// pre-cluster deployment: Route always answers 0 and every call passes
// straight through, which is how the standalone server adopts the
// router interface without changing behavior.
type Local struct {
	stores []store.Store
	// ids are the global shard indices the local shards correspond to
	// (identity for a standalone deployment; a node owning a subset of
	// the cluster's shard space maps global->local through them).
	ids []int

	// journal, when non-nil, records every append in arrival order per
	// shard for tail shipping; see journal.go.
	journals []*journal

	closed bool
	mu     sync.Mutex // guards closed and Close vs mutations
}

// LocalOptions tune NewLocal.
type LocalOptions struct {
	// GlobalIDs maps each local shard to its global shard index. Nil
	// means identity (shard i is global shard i).
	GlobalIDs []int
	// Journal enables the per-shard append journal that serves WAL-tail
	// shipping (Tail). Nodes that feed replicas need it; standalone
	// servers and replicas themselves do not. On open the journal is
	// rebuilt from the stores (survey by survey, in ID order) under a
	// fresh epoch, so a restarted node's replicas detect the epoch
	// change and resync.
	Journal bool
	// JournalRetain, when positive, bounds each shard journal's
	// retained entry count: entries beyond it are truncated even past
	// follower acks (a follower that falls behind the bound rebuilds
	// through the Truncated resync path). Zero keeps entries until
	// every registered follower acks past them — and forever when no
	// follower ever registers.
	JournalRetain int
	// FollowerAckTTL, when positive, expires a follower's ack after it
	// has been silent that long, so a departed replica stops pinning
	// journal retention. Zero keeps acks forever (the pre-TTL behavior).
	FollowerAckTTL time.Duration
}

// NewLocal builds a router over the given per-shard stores. The stores
// are owned by the router from here on: Close closes them.
func NewLocal(stores []store.Store, opts LocalOptions) (*Local, error) {
	if len(stores) == 0 {
		return nil, errors.New("shardset: local router needs at least one shard store")
	}
	ids := opts.GlobalIDs
	if ids == nil {
		ids = make([]int, len(stores))
		for i := range ids {
			ids[i] = i
		}
	}
	if len(ids) != len(stores) {
		return nil, fmt.Errorf("shardset: %d global ids for %d shards", len(ids), len(stores))
	}
	l := &Local{stores: stores, ids: ids}
	if opts.Journal {
		epoch := nextEpoch()
		l.journals = make([]*journal, len(stores))
		for i, st := range stores {
			j, err := rebuildJournal(st, epoch, opts.JournalRetain, opts.FollowerAckTTL)
			if err != nil {
				return nil, fmt.Errorf("shardset: rebuild journal for shard %d: %w", ids[i], err)
			}
			l.journals[i] = j
		}
	}
	return l, nil
}

// NewLocalSingle wraps one store as a one-shard router — the standalone
// server's adapter.
func NewLocalSingle(st store.Store) *Local {
	l, err := NewLocal([]store.Store{st}, LocalOptions{})
	if err != nil {
		// Unreachable: one store, no options to validate.
		panic(err)
	}
	return l
}

// Shards implements ShardRouter.
func (l *Local) Shards() int { return len(l.stores) }

// GlobalID implements ShardRouter.
func (l *Local) GlobalID(i int) int { return l.ids[i] }

// Store exposes the underlying store of local shard i (the server's
// admin surface reports per-backend stats through it).
func (l *Local) Store(i int) store.Store { return l.stores[i] }

// Route implements ShardRouter with the canonical placement hash.
func (l *Local) Route(surveyID, workerID string) int {
	if len(l.stores) == 1 {
		return 0
	}
	return Route(surveyID, workerID, len(l.stores))
}

// PutSurvey implements ShardRouter: broadcast to every shard. A shard
// that already holds the definition (a retried broadcast, or a replica
// healing one reset shard) is skipped but the broadcast continues, so a
// partial broadcast always converges; ErrExists is reported only after
// every shard has the definition, preserving the duplicate-publish
// contract.
func (l *Local) PutSurvey(sv *survey.Survey) error {
	var exists error
	for _, st := range l.stores {
		if err := st.PutSurvey(sv); err != nil {
			if errors.Is(err, store.ErrExists) {
				exists = err
				continue
			}
			return err
		}
	}
	return exists
}

// ReplaceSurvey implements ShardRouter: broadcast to every shard.
func (l *Local) ReplaceSurvey(sv *survey.Survey) error {
	for _, st := range l.stores {
		if err := st.ReplaceSurvey(sv); err != nil {
			return err
		}
	}
	return nil
}

// Survey implements ShardRouter. Definitions are replicated, so any
// shard can answer; shard 0 is the convention.
func (l *Local) Survey(id string) (*survey.Survey, error) { return l.stores[0].Survey(id) }

// Surveys implements ShardRouter.
func (l *Local) Surveys() ([]*survey.Survey, error) { return l.stores[0].Surveys() }

// Append implements ShardRouter.
func (l *Local) Append(r *survey.Response) (int, error) {
	return l.AppendShard(l.Route(r.SurveyID, r.WorkerID), r)
}

// AppendShard implements ShardRouter. With journaling on, the store
// append and the journal entry are made atomic with respect to other
// appends to the same shard by the journal's lock — the journal offset
// order must match per-shard seq order or replicas would apply records
// out of order.
func (l *Local) AppendShard(shard int, r *survey.Response) (int, error) {
	if shard < 0 || shard >= len(l.stores) {
		return 0, fmt.Errorf("shardset: shard %d outside [0, %d)", shard, len(l.stores))
	}
	if l.journals == nil {
		if err := l.stores[shard].AppendResponse(r); err != nil {
			return 0, err
		}
		return l.stores[shard].ResponseCount(r.SurveyID), nil
	}
	return l.journals[shard].append(l.stores[shard], r)
}

// AppendShardBatch appends several routed responses to one shard in a
// single durability round: with a BatchAppender store the whole batch
// costs one fsync, and the journal entries are recorded under one lock
// acquisition. It returns per-response stored counts (the responses'
// per-shard seqs); on error the returned prefix covers what was durably
// appended.
func (l *Local) AppendShardBatch(shard int, rs []survey.Response) ([]int, error) {
	if shard < 0 || shard >= len(l.stores) {
		return nil, fmt.Errorf("shardset: shard %d outside [0, %d)", shard, len(l.stores))
	}
	if len(rs) == 0 {
		return nil, nil
	}
	if l.journals == nil {
		return appendBatch(l.stores[shard], rs)
	}
	return l.journals[shard].appendBatch(l.stores[shard], rs)
}

// appendBatch is the storage half of AppendShardBatch: one call for
// batch-capable stores, a sequential fallback otherwise.
func appendBatch(st store.Store, rs []survey.Response) ([]int, error) {
	if ba, ok := st.(store.BatchAppender); ok {
		return ba.AppendResponses(rs)
	}
	counts := make([]int, 0, len(rs))
	for i := range rs {
		if err := st.AppendResponse(&rs[i]); err != nil {
			return counts, err
		}
		counts = append(counts, st.ResponseCount(rs[i].SurveyID))
	}
	return counts, nil
}

// ScanShard implements ShardRouter.
func (l *Local) ScanShard(shard int, surveyID string, fromSeq uint64, fn func(seq uint64, r *survey.Response) error) error {
	if shard < 0 || shard >= len(l.stores) {
		return fmt.Errorf("shardset: shard %d outside [0, %d)", shard, len(l.stores))
	}
	return l.stores[shard].ScanResponses(surveyID, fromSeq, fn)
}

// CountShard implements ShardRouter.
func (l *Local) CountShard(shard int, surveyID string) int {
	if shard < 0 || shard >= len(l.stores) {
		return 0
	}
	return l.stores[shard].ResponseCount(surveyID)
}

// Tail serves WAL-tail shipping for one local shard: journal entries
// from offset under the given epoch. See journal.tail for the epoch,
// truncation, and follower-ack contracts. It errors when journaling is
// disabled.
func (l *Local) Tail(shard int, epoch uint64, offset uint64, max int, follower string) (*TailBatch, error) {
	if l.journals == nil {
		return nil, errors.New("shardset: tail shipping needs a journaling router")
	}
	if shard < 0 || shard >= len(l.stores) {
		return nil, fmt.Errorf("shardset: shard %d outside [0, %d)", shard, len(l.stores))
	}
	return l.journals[shard].tail(l.stores[shard], epoch, offset, max, follower)
}

// BumpEpoch installs a fresh epoch on one local shard's journal and
// returns it — the promotion primitive. The entries stay: the promoted
// shard's history is intact and a new follower tails it from offset
// zero, but any follower still holding the pre-promotion epoch resyncs,
// which is exactly the fencing semantic promotion needs in the
// WAL-shipping protocol. Errors when journaling is disabled.
func (l *Local) BumpEpoch(shard int) (uint64, error) {
	if l.journals == nil {
		return 0, errors.New("shardset: epoch bump needs a journaling router")
	}
	if shard < 0 || shard >= len(l.stores) {
		return 0, fmt.Errorf("shardset: shard %d outside [0, %d)", shard, len(l.stores))
	}
	e := nextEpoch()
	l.journals[shard].setEpoch(e)
	return e, nil
}

// JournalEpoch reports one local shard journal's current epoch; zero
// when journaling is disabled.
func (l *Local) JournalEpoch(shard int) uint64 {
	if l.journals == nil || shard < 0 || shard >= len(l.stores) {
		return 0
	}
	return l.journals[shard].currentEpoch()
}

// ResetJournal empties one local shard's journal under a fresh epoch.
// It must accompany any out-of-band wipe of the shard's store (a
// replica resyncing from its upstream), keeping the journal served to
// downstream followers coherent with the records actually present.
// No-op without journaling.
func (l *Local) ResetJournal(shard int) error {
	if l.journals == nil {
		return nil
	}
	if shard < 0 || shard >= len(l.stores) {
		return fmt.Errorf("shardset: shard %d outside [0, %d)", shard, len(l.stores))
	}
	l.journals[shard].reset(nextEpoch())
	return nil
}

// JournalStats reports every shard journal's retention state for the
// admin surface (shards keyed by global index); nil when journaling is
// disabled.
func (l *Local) JournalStats() []JournalStats {
	if l.journals == nil {
		return nil
	}
	out := make([]JournalStats, len(l.journals))
	for i, j := range l.journals {
		out[i] = j.stats()
		out[i].Shard = l.ids[i]
	}
	return out
}

// Close implements ShardRouter, closing every shard store.
func (l *Local) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	for _, st := range l.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ ShardRouter = (*Local)(nil)
