package shardset

import (
	"fmt"
	"testing"
	"time"

	"loki/internal/store"
	"loki/internal/survey"
)

func testSurvey(id string) *survey.Survey {
	return &survey.Survey{
		ID:    id,
		Title: "Shardset test survey",
		Questions: []survey.Question{
			{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "q1", Text: "pick", Kind: survey.MultipleChoice, Options: []string{"a", "b", "c"}},
		},
		RewardCents: 1,
	}
}

func testResponse(surveyID string, i int) *survey.Response {
	return &survey.Response{
		SurveyID:     surveyID,
		WorkerID:     fmt.Sprintf("w%05d", i),
		PrivacyLevel: "none",
		Answers: []survey.Answer{
			survey.RatingAnswer("q0", float64(1+i%5)),
			survey.ChoiceAnswer("q1", i%3),
		},
	}
}

func newMemLocal(t *testing.T, shards int, opts LocalOptions) *Local {
	t.Helper()
	stores := make([]store.Store, shards)
	for i := range stores {
		stores[i] = store.NewMem()
	}
	l, err := NewLocal(stores, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestRouteDeterministicAndSpread: placement depends only on the
// (survey, worker) pair and actually uses every shard.
func TestRouteDeterministicAndSpread(t *testing.T) {
	const shards = 8
	used := make(map[int]int)
	for i := 0; i < 1000; i++ {
		w := fmt.Sprintf("w%05d", i)
		a := Route("sv", w, shards)
		if b := Route("sv", w, shards); a != b {
			t.Fatalf("route not deterministic: %d vs %d", a, b)
		}
		if a < 0 || a >= shards {
			t.Fatalf("route %d outside [0, %d)", a, shards)
		}
		used[a]++
	}
	if len(used) != shards {
		t.Fatalf("1000 workers hit only %d of %d shards", len(used), shards)
	}
}

// TestLocalAppendScanMerged: responses spread across shards, per-shard
// seqs are gap-free, and ScanMerged delivers every record exactly once
// in a deterministic order.
func TestLocalAppendScanMerged(t *testing.T) {
	const shards, n = 4, 200
	l := newMemLocal(t, shards, LocalOptions{})
	sv := testSurvey("sv")
	if err := l.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := l.Append(testResponse(sv.ID, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := Count(l, sv.ID); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
	// Per-shard seqs are 1..count with no gaps.
	for s := 0; s < shards; s++ {
		want := uint64(1)
		err := l.ScanShard(s, sv.ID, 0, func(seq uint64, _ *survey.Response) error {
			if seq != want {
				return fmt.Errorf("shard %d: seq %d, want %d", s, seq, want)
			}
			want++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if int(want-1) != l.CountShard(s, sv.ID) {
			t.Fatalf("shard %d scan delivered %d of %d", s, want-1, l.CountShard(s, sv.ID))
		}
	}
	// The merged scan sees every worker exactly once, and two merges
	// agree record for record.
	var order1, order2 []string
	seen := make(map[string]bool)
	cur, err := ScanMerged(l, sv.ID, nil, func(_ int, _ uint64, r *survey.Response) error {
		if seen[r.WorkerID] {
			return fmt.Errorf("worker %s delivered twice", r.WorkerID)
		}
		seen[r.WorkerID] = true
		order1 = append(order1, r.WorkerID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order1) != n {
		t.Fatalf("merged scan delivered %d of %d", len(order1), n)
	}
	if cur.Total() != n {
		t.Fatalf("cursor total = %d, want %d", cur.Total(), n)
	}
	if _, err := ScanMerged(l, sv.ID, nil, func(_ int, _ uint64, r *survey.Response) error {
		order2 = append(order2, r.WorkerID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatalf("merge order differs at %d: %s vs %s", i, order1[i], order2[i])
		}
	}
	// Resuming from a mid-stream cursor delivers exactly the tail.
	half := NewCursor(shards)
	count := 0
	if _, err := ScanMerged(l, sv.ID, nil, func(shard int, seq uint64, _ *survey.Response) error {
		count++
		if count <= n/2 {
			half[shard] = seq
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tail := 0
	if _, err := ScanMerged(l, sv.ID, half, func(int, uint64, *survey.Response) error {
		tail++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tail != n-n/2 {
		t.Fatalf("resumed merge delivered %d, want %d", tail, n-n/2)
	}
}

// TestLocalSingleIsPassthrough: the one-shard wrapper routes everything
// to shard 0 with the store's own seqs — the standalone adapter.
func TestLocalSingleIsPassthrough(t *testing.T) {
	st := store.NewMem()
	l := NewLocalSingle(st)
	defer l.Close()
	sv := testSurvey("sv")
	if err := l.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if l.Route(sv.ID, fmt.Sprintf("w%d", i)) != 0 {
			t.Fatal("single-shard route != 0")
		}
		stored, err := l.Append(testResponse(sv.ID, i))
		if err != nil {
			t.Fatal(err)
		}
		if stored != i+1 {
			t.Fatalf("stored = %d, want %d", stored, i+1)
		}
	}
	if st.ResponseCount(sv.ID) != 10 {
		t.Fatalf("store count = %d", st.ResponseCount(sv.ID))
	}
}

// TestAppendShardBatch: batch appends assign the same seqs a loop
// would, on both batch-capable and plain stores.
func TestAppendShardBatch(t *testing.T) {
	l := newMemLocal(t, 2, LocalOptions{Journal: true})
	sv := testSurvey("sv")
	if err := l.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	batch := make([]survey.Response, 5)
	for i := range batch {
		batch[i] = *testResponse(sv.ID, i)
	}
	counts, err := l.AppendShardBatch(1, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != i+1 {
			t.Fatalf("counts = %v", counts)
		}
	}
	if l.CountShard(1, sv.ID) != 5 || l.CountShard(0, sv.ID) != 0 {
		t.Fatal("batch landed on the wrong shard")
	}
	// The journal saw all five in order.
	tb, err := l.Tail(1, 0, 0, 100, "")
	if err != nil {
		t.Fatal(err)
	}
	tb, err = l.Tail(1, tb.Epoch, 0, 100, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Entries) != 5 {
		t.Fatalf("journal holds %d entries, want 5", len(tb.Entries))
	}
	for i, e := range tb.Entries {
		if e.Seq != uint64(i+1) || e.Response.WorkerID != batch[i].WorkerID {
			t.Fatalf("entry %d = (%d, %s)", i, e.Seq, e.Response.WorkerID)
		}
	}
}

// TestJournalTail: paging, lag reporting, and the epoch-mismatch resync
// signal.
func TestJournalTail(t *testing.T) {
	l := newMemLocal(t, 1, LocalOptions{Journal: true})
	sv := testSurvey("sv")
	if err := l.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := l.Append(testResponse(sv.ID, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 0 never matches a live journal: the first poll returns the
	// real epoch and nothing else.
	first, err := l.Tail(0, 0, 7, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	if first.Epoch == 0 || len(first.Entries) != 0 || first.NextOffset != 0 {
		t.Fatalf("bootstrap batch = %+v", first)
	}
	// Page through the whole journal.
	offset, got := uint64(0), 0
	for {
		b, err := l.Tail(0, first.Epoch, offset, 10, "")
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range b.Entries {
			if e.Seq != offset+uint64(i)+1 {
				t.Fatalf("entry seq %d at offset %d", e.Seq, offset)
			}
		}
		got += len(b.Entries)
		offset = b.NextOffset
		if b.NextOffset >= b.End {
			break
		}
	}
	if got != n {
		t.Fatalf("tailed %d of %d", got, n)
	}
	// Offsets beyond the journal under a matching epoch are a protocol
	// error.
	if _, err := l.Tail(0, first.Epoch, uint64(n+1), 10, ""); err == nil {
		t.Fatal("offset beyond journal accepted")
	}
}

// TestJournalRebuildChangesEpoch: reopening the stores under a new
// router rebuilds the journal with a fresh epoch, forcing followers to
// resync.
func TestJournalRebuildChangesEpoch(t *testing.T) {
	st := store.NewMem()
	l1, err := NewLocal([]store.Store{st}, LocalOptions{Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	sv := testSurvey("sv")
	if err := l1.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l1.Append(testResponse(sv.ID, i)); err != nil {
			t.Fatal(err)
		}
	}
	b1, err := l1.Tail(0, 0, 0, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	// "Restart": a new router over the same store.
	l2, err := NewLocal([]store.Store{st}, LocalOptions{Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := l2.Tail(0, b1.Epoch, 3, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	if b2.Epoch == b1.Epoch {
		t.Fatal("rebuilt journal kept its epoch")
	}
	if b2.NextOffset != 0 || len(b2.Entries) != 0 {
		t.Fatalf("epoch mismatch should reset, got %+v", b2)
	}
	// The rebuilt journal still serves the full history from zero.
	b3, err := l2.Tail(0, b2.Epoch, 0, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(b3.Entries) != 5 {
		t.Fatalf("rebuilt journal holds %d entries, want 5", len(b3.Entries))
	}
}

// TestSurveyBroadcast: definitions land on every shard, so any shard
// can validate appends on its own.
func TestSurveyBroadcast(t *testing.T) {
	l := newMemLocal(t, 3, LocalOptions{})
	sv := testSurvey("sv")
	if err := l.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	if err := l.PutSurvey(sv); err == nil {
		t.Fatal("duplicate publish accepted")
	}
	for s := 0; s < 3; s++ {
		if _, err := l.Store(s).Survey(sv.ID); err != nil {
			t.Fatalf("shard %d missing the definition: %v", s, err)
		}
	}
	sv2 := testSurvey("sv")
	sv2.Title = "Republished"
	if err := l.ReplaceSurvey(sv2); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		got, err := l.Store(s).Survey(sv.ID)
		if err != nil || got.Title != "Republished" {
			t.Fatalf("shard %d: %v %v", s, got, err)
		}
	}
}

// TestJournalTruncationByAcks: entries below every registered
// follower's ack are dropped; unregistered callers never constrain or
// trigger truncation; a follower asking below the truncation base gets
// the Truncated resync signal with the base to resume from.
func TestJournalTruncationByAcks(t *testing.T) {
	l := newMemLocal(t, 1, LocalOptions{Journal: true})
	sv := testSurvey("sv")
	if err := l.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append(testResponse(sv.ID, i)); err != nil {
			t.Fatal(err)
		}
	}
	boot, err := l.Tail(0, 0, 0, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	epoch := boot.Epoch

	// An anonymous reader pages the whole journal without registering:
	// nothing truncates.
	if _, err := l.Tail(0, epoch, 30, 10, ""); err != nil {
		t.Fatal(err)
	}
	if st := l.JournalStats()[0]; st.Base != 0 || st.Entries != n || st.Followers != 0 {
		t.Fatalf("anonymous tailing changed retention: %+v", st)
	}

	// Two registered followers: the journal truncates to the slower
	// one's ack, no further. (The slow one registers first — a lone
	// follower's ack would truncate to itself immediately.)
	if _, err := l.Tail(0, epoch, 10, 10, "slow"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Tail(0, epoch, 25, 10, "fast"); err != nil {
		t.Fatal(err)
	}
	st := l.JournalStats()[0]
	if st.Base != 10 || st.Entries != n-10 || st.Followers != 2 || st.TruncatedEntries != 10 {
		t.Fatalf("after acks 25/10: %+v", st)
	}
	if st.RetainedBytes <= 0 {
		t.Fatalf("retained bytes = %d", st.RetainedBytes)
	}

	// The slow follower catches up; the floor moves with it.
	if _, err := l.Tail(0, epoch, 25, 10, "slow"); err != nil {
		t.Fatal(err)
	}
	if st := l.JournalStats()[0]; st.Base != 25 || st.Entries != n-25 {
		t.Fatalf("after slow ack 25: %+v", st)
	}

	// Entries above the base still serve exactly.
	b, err := l.Tail(0, epoch, 30, 5, "fast")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 5 || b.Entries[0].Seq != 31 {
		t.Fatalf("post-truncation page = %+v", b)
	}

	// A newcomer below the base gets the Truncated signal pointing at
	// the base — and its registration pins the floor from here on.
	nb, err := l.Tail(0, epoch, 0, 10, "newcomer")
	if err != nil {
		t.Fatal(err)
	}
	if !nb.Truncated || nb.NextOffset != 25 || len(nb.Entries) != 0 {
		t.Fatalf("below-base tail = %+v", nb)
	}
	if _, err := l.Tail(0, epoch, 25, 10, "newcomer"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Tail(0, epoch, uint64(n), 10, "fast"); err != nil {
		t.Fatal(err)
	}
	if st := l.JournalStats()[0]; st.Base != 25 {
		t.Fatalf("newcomer ack did not pin the floor: %+v", st)
	}
}

// TestJournalRetainBound: a retain bound truncates even without
// followers (the no-replica node whose journal would otherwise grow
// with its whole history) and even past a registered follower's ack.
func TestJournalRetainBound(t *testing.T) {
	l := newMemLocal(t, 1, LocalOptions{Journal: true, JournalRetain: 8})
	sv := testSurvey("sv")
	if err := l.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := l.Append(testResponse(sv.ID, i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.JournalStats()[0]
	if st.Entries != 8 || st.Base != 22 || st.TruncatedEntries != 22 {
		t.Fatalf("retain bound not enforced: %+v", st)
	}
	// A follower acks low; the bound still wins and the follower is
	// told to resync from the base.
	boot, err := l.Tail(0, 0, 0, 10, "lagger")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Tail(0, boot.Epoch, 2, 10, "lagger")
	if err != nil {
		t.Fatal(err)
	}
	if !b.Truncated || b.NextOffset != 22 {
		t.Fatalf("lagging follower reply = %+v", b)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(testResponse(sv.ID, 100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.JournalStats()[0]; st.Entries != 8 || st.Base != 32 {
		t.Fatalf("retain bound ignored the lagging ack: %+v", st)
	}

	// The rebuilt journal honors the bound from the start.
	l2, err := NewLocal([]store.Store{l.Store(0)}, LocalOptions{Journal: true, JournalRetain: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st := l2.JournalStats()[0]; st.Entries != 8 || st.Base != 32 {
		t.Fatalf("rebuilt journal retention: %+v", st)
	}
}

// TestFollowerAckTTL: a follower that goes silent past the ack TTL
// stops pinning journal retention — the live follower's ack becomes the
// truncation floor — and re-registers (through the Truncated resync
// path if needed) when it returns.
func TestFollowerAckTTL(t *testing.T) {
	l := newMemLocal(t, 1, LocalOptions{Journal: true, FollowerAckTTL: 10 * time.Minute})
	sv := testSurvey("sv")
	if err := l.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append(testResponse(sv.ID, i)); err != nil {
			t.Fatal(err)
		}
	}

	// Inject a fake clock so the test controls the TTL.
	now := time.Unix(1_700_000_000, 0)
	j := l.journals[0]
	j.mu.Lock()
	j.now = func() time.Time { return now }
	j.mu.Unlock()

	boot, err := l.Tail(0, 0, 0, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	epoch := boot.Epoch

	// Two followers register; "dead" acks 5, "live" acks 20. The floor
	// is the dead one's ack.
	if _, err := l.Tail(0, epoch, 5, 5, "dead"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Tail(0, epoch, 20, 5, "live"); err != nil {
		t.Fatal(err)
	}
	if st := l.JournalStats()[0]; st.Base != 5 || st.Followers != 2 {
		t.Fatalf("with both followers live: %+v", st)
	}

	// "dead" goes silent past the TTL while "live" keeps tailing:
	// truncation proceeds to the live ack instead of staying pinned.
	now = now.Add(11 * time.Minute)
	if _, err := l.Tail(0, epoch, 30, 5, "live"); err != nil {
		t.Fatal(err)
	}
	st := l.JournalStats()[0]
	if st.Base != 30 || st.Followers != 1 || st.ExpiredFollowers != 1 {
		t.Fatalf("after TTL expiry: %+v", st)
	}

	// The departed follower returns below the base: it gets the
	// Truncated signal, rebuilds, and its fresh registration pins the
	// floor again.
	back, err := l.Tail(0, epoch, 10, 5, "dead")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Truncated || back.NextOffset != 30 {
		t.Fatalf("returned follower batch = %+v", back)
	}
	if _, err := l.Tail(0, epoch, 30, 5, "dead"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Tail(0, epoch, uint64(n), 5, "live"); err != nil {
		t.Fatal(err)
	}
	if st := l.JournalStats()[0]; st.Base != 30 || st.Followers != 2 {
		t.Fatalf("returned follower does not pin retention: %+v", st)
	}
}
