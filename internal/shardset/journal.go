package shardset

import (
	"errors"
	"fmt"
	"sync"

	"loki/internal/store"
	"loki/internal/survey"
)

// TailEntry is one shipped append: the coordinates a replica needs to
// apply it ((survey, per-shard seq)) plus the record itself.
type TailEntry struct {
	SurveyID string          `json:"survey_id"`
	Seq      uint64          `json:"seq"`
	Response survey.Response `json:"response"`
}

// TailBatch is one page of WAL-tail shipping. The epoch identifies a
// particular journal ordering: it changes whenever the node rebuilds
// its journal (every restart), because the rebuild interleaves surveys
// in a different order than the original arrivals. A replica holding a
// different epoch than the batch reports must discard its copy of the
// shard and resync from offset zero — offsets from one epoch mean
// nothing in another.
type TailBatch struct {
	Epoch uint64 `json:"epoch"`
	// NextOffset is where the follower resumes: offset + len(Entries),
	// or 0 after an epoch mismatch.
	NextOffset uint64 `json:"next_offset"`
	// End is the journal length when the batch was cut; End−NextOffset
	// is the follower's remaining lag in records.
	End     uint64      `json:"end"`
	Entries []TailEntry `json:"entries,omitempty"`
}

// journalEntry records one append's coordinates. The response payload
// stays in the shard store's index; tail serving fetches it by (survey,
// seq) — a constant-time slice index under the store's read lock — so
// the journal itself stays two words per record.
type journalEntry struct {
	surveyID string
	seq      uint64
}

// journal is one shard's append journal: arrival order across surveys,
// which per-survey sequence numbers alone cannot reconstruct.
type journal struct {
	epoch uint64

	mu      sync.Mutex
	entries []journalEntry
}

// rebuildJournal reconstructs a journal from a shard store after a
// restart: every survey's stream in survey-ID order. The order differs
// from the original arrival interleaving, which is exactly why the
// journal gets a fresh epoch — followers resync rather than trust stale
// offsets.
func rebuildJournal(st store.Store, epoch uint64) (*journal, error) {
	j := &journal{epoch: epoch}
	surveys, err := st.Surveys()
	if err != nil {
		return nil, err
	}
	for _, sv := range surveys {
		err := st.ScanResponses(sv.ID, 0, func(seq uint64, _ *survey.Response) error {
			j.entries = append(j.entries, journalEntry{surveyID: sv.ID, seq: seq})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return j, nil
}

// append durably appends to the shard store and journals the entry.
// Holding the journal lock across the store append serializes appends
// to this shard: the journal's offset order must equal per-shard seq
// order per survey, or a replica would apply records out of order. The
// cost is bounded — cross-shard appends still run in parallel, which is
// where cluster scaling comes from.
func (j *journal) append(st store.Store, r *survey.Response) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := st.AppendResponse(r); err != nil {
		return 0, err
	}
	// The append is serialized by j.mu, so the store's count is exactly
	// the seq it just assigned.
	n := st.ResponseCount(r.SurveyID)
	j.entries = append(j.entries, journalEntry{surveyID: r.SurveyID, seq: uint64(n)})
	return n, nil
}

// appendBatch is append's batch twin: one journal lock acquisition and
// — with a BatchAppender store — one fsync for the whole batch. The
// store computes each record's per-shard seq under its own lock; the
// journal lock keeps other appenders out, so those seqs are exact.
func (j *journal) appendBatch(st store.Store, rs []survey.Response) ([]int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var counts []int
	var err error
	if ba, ok := st.(store.BatchAppender); ok {
		counts, err = ba.AppendResponses(rs)
	} else {
		counts = make([]int, 0, len(rs))
		for i := range rs {
			if aerr := st.AppendResponse(&rs[i]); aerr != nil {
				err = aerr
				break
			}
			counts = append(counts, st.ResponseCount(rs[i].SurveyID))
		}
	}
	// Journal exactly the durable prefix, error or not.
	for i, c := range counts {
		j.entries = append(j.entries, journalEntry{surveyID: rs[i].SurveyID, seq: uint64(c)})
	}
	return counts, err
}

// errStopScan aborts a scan after the one record tail fetching wants.
var errStopScan = errors.New("shardset: stop scan")

// tail cuts one shipping batch: entries [offset, offset+max) under the
// caller's epoch. An epoch mismatch returns the current epoch with
// NextOffset 0 and no entries — the follower's signal to resync. An
// offset beyond the journal under a matching epoch is a protocol error
// (offsets only grow within an epoch).
func (j *journal) tail(st store.Store, epoch, offset uint64, max int) (*TailBatch, error) {
	j.mu.Lock()
	entries := j.entries // append-only: the header is a consistent snapshot
	cur := j.epoch
	j.mu.Unlock()

	if epoch != cur {
		return &TailBatch{Epoch: cur, NextOffset: 0, End: uint64(len(entries))}, nil
	}
	if offset > uint64(len(entries)) {
		return nil, fmt.Errorf("shardset: tail offset %d beyond journal end %d in epoch %d", offset, len(entries), cur)
	}
	if max <= 0 {
		max = 1024
	}
	end := offset + uint64(max)
	if end > uint64(len(entries)) {
		end = uint64(len(entries))
	}
	batch := &TailBatch{Epoch: cur, NextOffset: end, End: uint64(len(entries))}
	for _, e := range entries[offset:end] {
		te := TailEntry{SurveyID: e.surveyID, Seq: e.seq}
		found := false
		err := st.ScanResponses(e.surveyID, e.seq-1, func(seq uint64, r *survey.Response) error {
			if seq != e.seq {
				return fmt.Errorf("shardset: journal entry (%s, %d) resolved to seq %d", e.surveyID, e.seq, seq)
			}
			te.Response = *r
			found = true
			return errStopScan
		})
		if err != nil && !errors.Is(err, errStopScan) {
			return nil, err
		}
		if !found {
			return nil, fmt.Errorf("shardset: journal entry (%s, %d) missing from store", e.surveyID, e.seq)
		}
		batch.Entries = append(batch.Entries, te)
	}
	return batch, nil
}
