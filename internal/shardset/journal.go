package shardset

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"loki/internal/store"
	"loki/internal/survey"
)

// TailEntry is one shipped append: the coordinates a replica needs to
// apply it ((survey, per-shard seq)) plus the record itself.
type TailEntry struct {
	SurveyID string          `json:"survey_id"`
	Seq      uint64          `json:"seq"`
	Response survey.Response `json:"response"`
}

// TailBatch is one page of WAL-tail shipping. The epoch identifies a
// particular journal ordering: it changes whenever the node rebuilds
// its journal (every restart), because the rebuild interleaves surveys
// in a different order than the original arrivals. A replica holding a
// different epoch than the batch reports must discard its copy of the
// shard and resync from offset zero — offsets from one epoch mean
// nothing in another.
type TailBatch struct {
	Epoch uint64 `json:"epoch"`
	// NextOffset is where the follower resumes: offset + len(Entries),
	// 0 after an epoch mismatch, or the truncation base after a
	// Truncated reply.
	NextOffset uint64 `json:"next_offset"`
	// End is the journal length when the batch was cut; End−NextOffset
	// is the follower's remaining lag in records.
	End     uint64      `json:"end"`
	Entries []TailEntry `json:"entries,omitempty"`
	// Truncated reports the requested offset fell below the journal's
	// truncation base: the entries are gone from the journal (though
	// their records are still in the store). The follower must rebuild
	// its copy of the shard from paged store scans, then resume tailing
	// from NextOffset — journal entries covering records the scans
	// already delivered carry per-survey seqs at or below the scanned
	// counts and are skipped on apply.
	Truncated bool `json:"truncated,omitempty"`
}

// journalEntry records one append's coordinates. The response payload
// stays in the shard store's index; tail serving fetches it by (survey,
// seq) — a constant-time slice index under the store's read lock — so
// the journal itself stays two words per record.
type journalEntry struct {
	surveyID string
	seq      uint64
}

// journalEntrySize approximates one entry's retained heap bytes: the
// two struct words plus string header and payload. Exact accounting is
// not the point — the admin counter exists so an operator can see the
// journal's footprint shrink when truncation runs.
func journalEntrySize(e *journalEntry) int64 { return int64(len(e.surveyID)) + 32 }

// journal is one shard's append journal: arrival order across surveys,
// which per-survey sequence numbers alone cannot reconstruct.
//
// The journal is truncatable: entries below base have been dropped
// (their records live on in the shard store; only the arrival-order
// index is gone). Truncation advances base to the lowest offset any
// registered follower still needs — a follower's tail request offset is
// its ack of everything before it — and, when a retain bound is set,
// past acks too so the journal's memory stays bounded even with a
// wedged follower (which then recovers through the Truncated resync
// path). With no registered followers and no retain bound the journal
// keeps everything, the pre-truncation behavior.
type journal struct {
	epoch uint64
	// retain, when positive, bounds the retained entry count.
	retain int
	// ackTTL, when positive, expires followers that have not tailed for
	// that long: a dead replica's last ack must not pin retention
	// forever. An expired follower that returns re-registers on its next
	// tail and, if the journal truncated past it meanwhile, rebuilds
	// through the ordinary Truncated resync path.
	ackTTL time.Duration
	// now is the clock, injectable by tests.
	now func() time.Time

	mu      sync.Mutex
	base    uint64 // offset of entries[0]
	entries []journalEntry
	// followers maps follower id → its last ack (the offset of its last
	// tail request: everything before it is applied on the follower) and
	// when it was heard from.
	followers map[string]followerAck
	// retainedBytes approximates the entries' heap footprint;
	// truncatedEntries counts entries dropped over the journal's life;
	// expiredFollowers counts acks dropped by the TTL.
	retainedBytes    int64
	truncatedEntries uint64
	expiredFollowers uint64
}

// followerAck is one follower's registration: the offset it has applied
// through, and when it last tailed.
type followerAck struct {
	offset uint64
	seen   time.Time
}

// rebuildJournal reconstructs a journal from a shard store after a
// restart: every survey's stream in survey-ID order. The order differs
// from the original arrival interleaving, which is exactly why the
// journal gets a fresh epoch — followers resync rather than trust stale
// offsets.
func rebuildJournal(st store.Store, epoch uint64, retain int, ackTTL time.Duration) (*journal, error) {
	j := &journal{epoch: epoch, retain: retain, ackTTL: ackTTL, now: time.Now, followers: make(map[string]followerAck)}
	surveys, err := st.Surveys()
	if err != nil {
		return nil, err
	}
	for _, sv := range surveys {
		err := st.ScanResponses(sv.ID, 0, func(seq uint64, _ *survey.Response) error {
			e := journalEntry{surveyID: sv.ID, seq: seq}
			j.entries = append(j.entries, e)
			j.retainedBytes += journalEntrySize(&e)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	j.mu.Lock()
	j.maybeTruncateLocked()
	j.mu.Unlock()
	return j, nil
}

// maybeTruncateLocked drops the journal prefix nobody needs: entries
// below every registered follower's ack, and — under a retain bound —
// entries beyond the bound regardless of acks. Caller holds j.mu.
func (j *journal) maybeTruncateLocked() {
	// Expire followers not heard from within the TTL before taking the
	// ack floor: a departed replica's last ack must not pin retention.
	if j.ackTTL > 0 && len(j.followers) > 0 {
		cutoff := j.now().Add(-j.ackTTL)
		for id, ack := range j.followers {
			if ack.seen.Before(cutoff) {
				delete(j.followers, id)
				j.expiredFollowers++
			}
		}
	}
	end := j.base + uint64(len(j.entries))
	floor := j.base
	if len(j.followers) > 0 {
		minAck := end
		for _, ack := range j.followers {
			if ack.offset < minAck {
				minAck = ack.offset
			}
		}
		if minAck > floor {
			floor = minAck
		}
	}
	if j.retain > 0 && end > uint64(j.retain) && end-uint64(j.retain) > floor {
		floor = end - uint64(j.retain)
	}
	if floor <= j.base {
		return
	}
	drop := int(floor - j.base)
	for i := 0; i < drop; i++ {
		j.retainedBytes -= journalEntrySize(&j.entries[i])
	}
	// Copy the survivors into a fresh slice so the dropped prefix's
	// backing array (and its survey-ID strings) actually becomes
	// collectable — re-slicing would pin it forever.
	j.entries = append([]journalEntry(nil), j.entries[drop:]...)
	j.base = floor
	j.truncatedEntries += uint64(drop)
}

// JournalStats describes one shard journal on the admin surface.
type JournalStats struct {
	// Shard is the global shard index.
	Shard int    `json:"shard"`
	Epoch uint64 `json:"epoch"`
	// Base is the truncation base: the lowest offset still served.
	Base uint64 `json:"base"`
	// Entries is the retained entry count (End − Base).
	Entries int `json:"entries"`
	// RetainedBytes approximates the retained entries' heap footprint.
	RetainedBytes int64 `json:"retained_bytes"`
	// TruncatedEntries counts entries dropped since the journal was
	// built.
	TruncatedEntries uint64 `json:"truncated_entries,omitempty"`
	// Followers is the number of registered followers (tail callers
	// that sent a follower id).
	Followers int `json:"followers,omitempty"`
	// ExpiredFollowers counts follower acks dropped by the ack TTL since
	// the journal was built.
	ExpiredFollowers uint64 `json:"expired_followers,omitempty"`
}

// setEpoch installs a fresh epoch without touching the entries: a
// promoted replica's history is intact, but followers that tailed the
// shard under the old ownership must resync from zero before trusting
// offsets again.
func (j *journal) setEpoch(epoch uint64) {
	j.mu.Lock()
	j.epoch = epoch
	j.mu.Unlock()
}

// currentEpoch reads the journal's epoch.
func (j *journal) currentEpoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// reset empties the journal under a fresh epoch — the pairing operation
// for a store reset. A replica that wipes a shard store (epoch change or
// truncation resync from its own upstream) must also wipe the journal it
// serves to downstream followers, or tail would hand out entries whose
// records no longer exist.
func (j *journal) reset(epoch uint64) {
	j.mu.Lock()
	j.epoch = epoch
	j.base = 0
	j.entries = nil
	j.retainedBytes = 0
	j.followers = make(map[string]followerAck)
	j.mu.Unlock()
}

// stats snapshots the journal for the admin surface.
func (j *journal) stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{
		Epoch:            j.epoch,
		Base:             j.base,
		Entries:          len(j.entries),
		RetainedBytes:    j.retainedBytes,
		TruncatedEntries: j.truncatedEntries,
		Followers:        len(j.followers),
		ExpiredFollowers: j.expiredFollowers,
	}
}

// append durably appends to the shard store and journals the entry.
// Holding the journal lock across the store append serializes appends
// to this shard: the journal's offset order must equal per-shard seq
// order per survey, or a replica would apply records out of order. The
// cost is bounded — cross-shard appends still run in parallel, which is
// where cluster scaling comes from.
func (j *journal) append(st store.Store, r *survey.Response) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := st.AppendResponse(r); err != nil {
		return 0, err
	}
	// The append is serialized by j.mu, so the store's count is exactly
	// the seq it just assigned.
	n := st.ResponseCount(r.SurveyID)
	e := journalEntry{surveyID: r.SurveyID, seq: uint64(n)}
	j.entries = append(j.entries, e)
	j.retainedBytes += journalEntrySize(&e)
	j.maybeTruncateLocked()
	return n, nil
}

// appendBatch is append's batch twin: one journal lock acquisition and
// — with a BatchAppender store — one fsync for the whole batch. The
// store computes each record's per-shard seq under its own lock; the
// journal lock keeps other appenders out, so those seqs are exact.
func (j *journal) appendBatch(st store.Store, rs []survey.Response) ([]int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var counts []int
	var err error
	if ba, ok := st.(store.BatchAppender); ok {
		counts, err = ba.AppendResponses(rs)
	} else {
		counts = make([]int, 0, len(rs))
		for i := range rs {
			if aerr := st.AppendResponse(&rs[i]); aerr != nil {
				err = aerr
				break
			}
			counts = append(counts, st.ResponseCount(rs[i].SurveyID))
		}
	}
	// Journal exactly the durable prefix, error or not.
	for i, c := range counts {
		e := journalEntry{surveyID: rs[i].SurveyID, seq: uint64(c)}
		j.entries = append(j.entries, e)
		j.retainedBytes += journalEntrySize(&e)
	}
	j.maybeTruncateLocked()
	return counts, err
}

// errStopScan aborts a scan after the one record tail fetching wants.
var errStopScan = errors.New("shardset: stop scan")

// tail cuts one shipping batch: entries [offset, offset+max) under the
// caller's epoch. An epoch mismatch returns the current epoch with
// NextOffset 0 and no entries — the follower's signal to resync. An
// offset below the truncation base returns Truncated with NextOffset
// at the base — the follower's signal to rebuild from store scans and
// resume there. An offset beyond the journal under a matching epoch is
// a protocol error (offsets only grow within an epoch).
//
// A non-empty follower id registers the caller for truncation
// accounting: its request offset is its ack (everything before it is
// applied), so the journal can drop what every registered follower has
// passed. A mismatched epoch resets the ack to zero — the follower is
// about to resync from scratch.
func (j *journal) tail(st store.Store, epoch, offset uint64, max int, follower string) (*TailBatch, error) {
	j.mu.Lock()
	cur := j.epoch
	if follower != "" {
		ack := followerAck{seen: j.now()}
		if epoch == cur {
			ack.offset = offset
		}
		j.followers[follower] = ack
		j.maybeTruncateLocked()
	}
	// Entry slices are immutable once cut (truncation swaps in a fresh
	// slice rather than mutating), so base+entries is a consistent
	// snapshot to serve from outside the lock.
	base := j.base
	entries := j.entries
	j.mu.Unlock()

	end64 := base + uint64(len(entries))
	if epoch != cur {
		return &TailBatch{Epoch: cur, NextOffset: 0, End: end64}, nil
	}
	if offset < base {
		return &TailBatch{Epoch: cur, NextOffset: base, End: end64, Truncated: true}, nil
	}
	if offset > end64 {
		return nil, fmt.Errorf("shardset: tail offset %d beyond journal end %d in epoch %d", offset, end64, cur)
	}
	if max <= 0 {
		max = 1024
	}
	end := offset + uint64(max)
	if end > end64 {
		end = end64
	}
	batch := &TailBatch{Epoch: cur, NextOffset: end, End: end64}
	for _, e := range entries[offset-base : end-base] {
		te := TailEntry{SurveyID: e.surveyID, Seq: e.seq}
		found := false
		err := st.ScanResponses(e.surveyID, e.seq-1, func(seq uint64, r *survey.Response) error {
			if seq != e.seq {
				return fmt.Errorf("shardset: journal entry (%s, %d) resolved to seq %d", e.surveyID, e.seq, seq)
			}
			te.Response = *r
			found = true
			return errStopScan
		})
		if err != nil && !errors.Is(err, errStopScan) {
			return nil, err
		}
		if !found {
			return nil, fmt.Errorf("shardset: journal entry (%s, %d) missing from store", e.surveyID, e.seq)
		}
		batch.Entries = append(batch.Entries, te)
	}
	return batch, nil
}
