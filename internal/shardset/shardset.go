// Package shardset is the cluster-ready shard routing layer of the Loki
// backend: it partitions the response stream of every survey across N
// shards and fans reads back in, behind one interface with two
// implementations — Local (in-process store.Store instances, the
// single-machine deployment) and Remote (shardrpc clients talking to
// cluster nodes, the multi-machine deployment). The server's aggregate
// layer folds one partial accumulator per shard and merges the partials
// at query time, so neither implementation ever needs a cross-shard
// lock or a globally ordered stream.
//
// Placement is by hash of (survey ID, worker ID): one survey's
// responses spread across every shard, which is what lets a single hot
// survey scale past one WAL, one fsync device, one accumulator lock —
// and, with the Remote implementation, past one machine. (Contrast the
// ingest store's internal sharding, which places whole surveys and
// scales only across surveys.) Each shard assigns its own gap-free
// per-shard sequence numbers; a cursor into a survey is therefore a
// vector of per-shard seqs, and a full scan is a deterministic seq-merge
// of the per-shard streams.
package shardset

import (
	"fmt"
	"hash/fnv"
	"io"

	"loki/internal/survey"
)

// ShardRouter partitions survey responses across a fixed set of shards.
// Implementations must be safe for concurrent use.
//
// Survey definitions are metadata replicated to every shard (each shard
// must validate appends against the current definition on its own), so
// the Put/Replace calls broadcast.
type ShardRouter interface {
	// Shards returns the number of shards. Fixed for the router's
	// lifetime; responses are placed by hash modulo this count.
	Shards() int
	// GlobalID maps a router-local shard index to its global shard
	// index: the identity for a standalone router or a frontend (whose
	// shard space IS the global one), the node's ownership mapping for
	// a Local owning a cluster subset. Durable per-shard state
	// (checkpoints) must be keyed by global IDs, or a node redeployed
	// onto a different subset would restore another shard's state.
	GlobalID(shard int) int
	// Route returns the shard index owning a response of the given
	// survey by the given worker (Placement, below).
	Route(surveyID, workerID string) int
	// PutSurvey broadcasts a new survey definition to every shard.
	PutSurvey(sv *survey.Survey) error
	// ReplaceSurvey broadcasts a republished definition to every shard.
	ReplaceSurvey(sv *survey.Survey) error
	// Survey returns the survey definition (a caller-owned copy).
	Survey(id string) (*survey.Survey, error)
	// Surveys returns all survey definitions sorted by ID.
	Surveys() ([]*survey.Survey, error)
	// Append validates and durably appends a response to the shard
	// Route places it on, returning the shard's response count for the
	// survey after the append (the submit ack's "stored" figure, free
	// at append time — a separate count would cost a second RPC on the
	// remote path).
	Append(r *survey.Response) (int, error)
	// AppendShard appends to an explicit shard — the path a cluster
	// node takes for submissions the frontend already routed.
	AppendShard(shard int, r *survey.Response) (int, error)
	// ScanShard streams one shard's slice of a survey with per-shard
	// sequence numbers strictly greater than fromSeq, in ascending seq
	// order. Semantics per shard match store.Store.ScanResponses.
	ScanShard(shard int, surveyID string, fromSeq uint64, fn func(seq uint64, r *survey.Response) error) error
	// CountShard returns one shard's response count for the survey
	// (its highest assigned per-shard seq).
	CountShard(shard int, surveyID string) int
	// Close releases resources. The router must not be used afterwards.
	Close() error
}

// Route is the canonical placement hash: FNV-1a over survey ID, a NUL
// separator, and worker ID, modulo the shard count. Local and Remote
// must agree on it — a frontend routes with the same function a
// standalone server does — so it lives here as a free function.
func Route(surveyID, workerID string, shards int) int {
	h := fnv.New32a()
	io.WriteString(h, surveyID)
	h.Write([]byte{0})
	io.WriteString(h, workerID)
	return int(h.Sum32() % uint32(shards))
}

// Count sums a survey's response count across every shard.
func Count(r ShardRouter, surveyID string) int {
	total := 0
	for i := 0; i < r.Shards(); i++ {
		total += r.CountShard(i, surveyID)
	}
	return total
}

// Cursor is a resumption point into a survey's sharded stream: one
// per-shard sequence number per shard, in shard order.
type Cursor []uint64

// NewCursor returns the zero cursor (scan everything) for n shards.
func NewCursor(n int) Cursor { return make(Cursor, n) }

// Clone returns an independent copy.
func (c Cursor) Clone() Cursor { return append(Cursor(nil), c...) }

// Total is the number of responses the cursor covers (per-shard seqs
// are gap-free from 1, so they sum).
func (c Cursor) Total() uint64 {
	var t uint64
	for _, s := range c {
		t += s
	}
	return t
}

// ScanMerged fans a scan out over every shard and interleaves the
// per-shard streams into one deterministic order: at every step the
// undelivered record with the lowest per-shard seq is delivered next,
// ties broken by shard index. The order depends only on the shard
// contents, never on scan timing, so two scans over the same data agree
// record for record — the property the cross-shard merge-equivalence
// test leans on. fn receives the owning shard and the record's
// per-shard seq; a non-nil error aborts the merge and is returned.
//
// The merge materializes each shard's tail beyond the cursor before
// interleaving. That is a convenience for tests, replicas and
// equivalence checks — the server's aggregate path never needs a merged
// stream, it folds per-shard partials and Merges state instead.
func ScanMerged(r ShardRouter, surveyID string, from Cursor, fn func(shard int, seq uint64, resp *survey.Response) error) (Cursor, error) {
	n := r.Shards()
	if len(from) == 0 {
		from = NewCursor(n)
	}
	if len(from) != n {
		return nil, fmt.Errorf("shardset: cursor has %d shards, router has %d", len(from), n)
	}
	next := from.Clone()
	type rec struct {
		seq  uint64
		resp survey.Response
	}
	tails := make([][]rec, n)
	for i := 0; i < n; i++ {
		err := r.ScanShard(i, surveyID, from[i], func(seq uint64, resp *survey.Response) error {
			tails[i] = append(tails[i], rec{seq: seq, resp: *resp})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	heads := make([]int, n)
	for {
		best := -1
		for i := 0; i < n; i++ {
			if heads[i] >= len(tails[i]) {
				continue
			}
			if best < 0 || tails[i][heads[i]].seq < tails[best][heads[best]].seq {
				best = i
			}
		}
		if best < 0 {
			return next, nil
		}
		rc := &tails[best][heads[best]]
		if err := fn(best, rc.seq, &rc.resp); err != nil {
			return nil, err
		}
		next[best] = rc.seq
		heads[best]++
	}
}
