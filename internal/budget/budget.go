// Package budget is Loki's distributed privacy-budget ledger: per-worker
// epsilon accounts, sharded by worker hash, debited transactionally on
// the submit path. It is the production enforcement of the paper's core
// claim — per-worker privacy loss accumulates across surveys and must be
// tracked and capped — lifted out of the single-process ledger
// (core.Ledger) and into a service the whole cluster charges through.
//
// Accounting is zCDP, exactly like dp.Accountant: every noisy release
// carries a ρ cost, ρ composes additively, and the cap is checked as
// ε(ρ, δ) = ρ + 2·sqrt(ρ·ln(1/δ)) against a configured (ε, δ) ceiling.
// Level-None submissions carry no finite DP cost; they are counted as
// unprotected disclosures per answer and never rejected — the cap bounds
// differential-privacy loss, and pretending an unprotected upload has a
// finite ε would be exactly the accounting lie the ledger exists to
// avoid.
//
// The shard space hashes by worker ID ONLY (contrast response placement,
// which hashes (survey, worker) so one survey spreads over every shard):
// a worker's whole account must live on one shard, or two frontends
// could debit the same worker on different shards and compose nothing.
// One shard is therefore the single point of truth for a worker, which
// is what makes cross-frontend double-spend impossible: every frontend
// routes a worker's charge to the same shard, and the shard evaluates
// the cap under one lock.
//
// Durability follows the repo's JSON-lines WAL idiom (internal/
// checkpoint): one file per hosted shard, one fsync per charge batch,
// torn-tail truncation on open, periodic snapshot compaction. Replaying
// the WAL reproduces balances exactly — records are applied in WAL
// order with the same float operations the live path committed, so a
// kill-9 restart answers the same ε to the last bit.
package budget

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"loki/internal/dp"
)

// ErrExhausted is the sentinel for a rejected charge: admitting the
// submit would push the worker's cumulative (ε, δ) past the cap. Its
// text is the wire error code the public API returns with HTTP 429.
var ErrExhausted = errors.New("budget_exhausted")

// ErrNotHosted marks a charge routed to a budget shard this Set does
// not host (a node owns a subset of the cluster's shard space; the
// frontier routes around it).
var ErrNotHosted = errors.New("budget: shard not hosted")

// ErrUndecided marks a charge the owning shard could not decide (a
// budget WAL failure, say) on a path where the caller must distinguish
// "refused" from "unknown" — enforce mode fails such a submit closed.
var ErrUndecided = errors.New("budget: charge undecided")

// Config is the budget ceiling every shard enforces.
type Config struct {
	// CapEpsilon is the per-worker cumulative ε ceiling at Delta.
	CapEpsilon float64 `json:"cap_epsilon"`
	// Delta is the δ the zCDP total is converted at.
	Delta float64 `json:"delta"`
}

// Validate checks the ceiling is meaningful.
func (c Config) Validate() error {
	if c.CapEpsilon <= 0 || math.IsNaN(c.CapEpsilon) {
		return fmt.Errorf("budget: cap epsilon must be positive, got %g", c.CapEpsilon)
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return fmt.Errorf("budget: delta must be in (0, 1), got %g", c.Delta)
	}
	return nil
}

// Epsilon converts a cumulative ρ to the (ε, δ)-DP ε at the config's δ.
func (c Config) Epsilon(rho float64) float64 { return dp.EpsilonFromRho(rho, c.Delta) }

// Remaining is the ε headroom under the cap (never negative).
func (c Config) Remaining(rho float64) float64 {
	r := c.CapEpsilon - c.Epsilon(rho)
	if r < 0 {
		return 0
	}
	return r
}

// Charge is one submit's debit against a worker's account.
type Charge struct {
	WorkerID string `json:"worker_id"`
	// SurveyID is carried for the WAL's audit trail only; it does not
	// affect accounting.
	SurveyID string `json:"survey_id,omitempty"`
	// Rho is the zCDP cost of the release (0 for level-None submits).
	Rho float64 `json:"rho,omitempty"`
	// Unprotected counts answers released with no noise in this submit.
	Unprotected int `json:"unprotected,omitempty"`
	// Enforce selects rejection when the charge would exceed the cap;
	// false (the log mode) records the debit regardless and merely
	// reports OverCap. The flag travels per charge because enforcement
	// is the frontier's policy while the balance is the shard's truth.
	Enforce bool `json:"enforce,omitempty"`
}

func (c *Charge) validate() error {
	if c.WorkerID == "" {
		return errors.New("budget: charge needs a worker id")
	}
	if c.Rho < 0 || math.IsNaN(c.Rho) || math.IsInf(c.Rho, 0) {
		return fmt.Errorf("budget: charge rho must be finite and non-negative, got %g", c.Rho)
	}
	if c.Unprotected < 0 {
		return fmt.Errorf("budget: charge unprotected count must be non-negative, got %d", c.Unprotected)
	}
	return nil
}

// Outcome is the shard's answer to one charge.
type Outcome struct {
	WorkerID string `json:"worker_id"`
	// Rejected reports the charge was refused (Enforce was set and the
	// debit would exceed the cap). Nothing was recorded.
	Rejected bool `json:"rejected,omitempty"`
	// OverCap reports the account is past the cap after (or, when
	// Rejected, would have been past it with) this charge.
	OverCap bool `json:"over_cap,omitempty"`
	// SpentEpsilon is the account's cumulative ε after the charge (for
	// a rejected charge: the unchanged balance).
	SpentEpsilon float64 `json:"spent_epsilon"`
	// RemainingEpsilon is the headroom under the cap (0 at or past it).
	RemainingEpsilon float64 `json:"remaining_epsilon"`
}

// Account is one worker's balance as a shard holds it.
type Account struct {
	WorkerID string `json:"worker_id"`
	// Rho is the cumulative zCDP cost of every accepted charge minus
	// refunds.
	Rho float64 `json:"rho"`
	// Unprotected counts answers the worker released with no noise —
	// disclosures with unbounded privacy loss, tallied separately from
	// the finite budget exactly like core.Ledger does.
	Unprotected int `json:"unprotected,omitempty"`
	// Charges and Refunds count accepted debits and credits.
	Charges uint64 `json:"charges,omitempty"`
	Refunds uint64 `json:"refunds,omitempty"`
}

// ShardStats is one budget shard's observability snapshot.
type ShardStats struct {
	// Shard is the global budget shard index.
	Shard int `json:"shard"`
	// Workers is the number of accounts the shard holds.
	Workers int `json:"workers"`
	// Charges/Refunds sum the accounts' accepted debit/credit counts.
	Charges uint64 `json:"charges,omitempty"`
	Refunds uint64 `json:"refunds,omitempty"`
	// Rejected counts enforced charges refused since this process
	// opened the shard (rejections write nothing, so the counter is
	// in-memory only and resets on restart).
	Rejected uint64 `json:"rejected,omitempty"`
	// Unprotected sums the accounts' unprotected disclosure counts.
	Unprotected int `json:"unprotected,omitempty"`
	// WALRecords is the ledger lines appended since the last
	// compaction; Compactions counts snapshot rewrites.
	WALRecords  int    `json:"wal_records,omitempty"`
	Compactions uint64 `json:"compactions,omitempty"`
	// Durable reports whether the shard writes a WAL (false for the
	// in-memory test/bench configuration).
	Durable bool `json:"durable"`
}

// Route is the canonical budget placement hash: FNV-1a over the worker
// ID alone, modulo the shard count. Deliberately NOT shardset.Route —
// response placement spreads one survey across shards by hashing
// (survey, worker), while a budget account must concentrate everything
// one worker does onto one shard.
func Route(workerID string, shards int) int {
	h := fnv.New32a()
	io.WriteString(h, workerID)
	return int(h.Sum32() % uint32(shards))
}

// Charger is the submit path's view of the budget service: the
// in-process Set (standalone servers, nodes) and the shardrpc remote
// charger (frontends) both implement it. Implementations must be safe
// for concurrent use.
type Charger interface {
	// Config returns the ceiling this charger was configured with. The
	// owning shard's config is authoritative for the accept/reject
	// decision; this one feeds the admin surface.
	Config() Config
	// Shards returns the global budget shard count workers hash into.
	Shards() int
	// Charge debits one worker's account, deciding against the cap
	// transactionally on the owning shard. A rejected charge is not an
	// error — it comes back in the Outcome; errors mean the debit could
	// not be decided (shard down, WAL failure).
	Charge(c Charge) (Outcome, error)
	// Refund credits a charge back — the compensation the submit path
	// issues when the response append fails after the debit succeeded.
	Refund(c Charge) error
	// Peek returns a worker's account without charging (zero-valued for
	// workers never charged).
	Peek(workerID string) (Account, error)
	// Stats reports every reachable shard's ledger stats, sorted by
	// global shard index.
	Stats() ([]ShardStats, error)
	// Close releases resources.
	Close() error
}
