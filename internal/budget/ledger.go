package budget

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"loki/internal/store"
)

// ledgerFile is the Set's journal file name inside -budget-dir.
const ledgerFile = "budget-ledger.jsonl"

// WAL record kinds. A record with an empty kind is a charge — the hot
// path writes the common case with no discriminator bytes.
const (
	walRefund   = "refund"
	walSnapshot = "snapshot"
)

// walRecord is one line of the budget ledger. Charges and refunds are
// deltas routed to their shard by worker hash; a snapshot record
// (written by compaction) resets every hosted shard to the embedded
// accounts, so a compacted file replays to exactly the same state as
// the original.
type walRecord struct {
	T        string    `json:"t,omitempty"`
	Worker   string    `json:"worker,omitempty"`
	Survey   string    `json:"survey,omitempty"`
	Rho      float64   `json:"rho,omitempty"`
	Unprot   int       `json:"unprot,omitempty"`
	Snapshot []Account `json:"snapshot,omitempty"`
}

// shardState is one hosted budget shard's accounts and counters. It has
// no lock and no file of its own: every shard in a Set is guarded by
// the shared ledger's commit lock and journaled in the shared WAL. The
// shard remains the unit of routing (worker hash), placement (which
// node answers for a worker), and admin stats — but durability is
// per-Set, because on a journaled filesystem every distinct file
// fsynced is a full serialized journal commit, and a submit batch's
// charges scatter across most of the hosted shards. One shared WAL
// turns that scatter back into a single group-committed fsync, which
// is what keeps enforcement inside the bench's overhead gate.
type shardState struct {
	global   int
	accounts map[string]*Account
	rejected uint64
	// records counts WAL lines applied to this shard since the last
	// compaction (observability only).
	records int
}

// ledger is the Set's durable journal: a JSON-lines WAL in the style of
// internal/checkpoint (torn-tail truncation on open, snapshot
// compaction), with group-committed fsyncs. With an empty path the
// ledger is memory-only — the bench baseline and the zero-config
// default — and still provides the commit lock.
//
// Restart equivalence is the core invariant: the in-memory commit path
// and the replay path are the same function (Set.applyLocked) fed the
// same records in the same order, so balances after a kill-9 replay
// are float-identical to the balances the live process held.
//
// Durability is group-committed: a batch decides, writes-and-flushes
// its records and applies them under the commit lock, but its outcomes
// are not released until an fsync covers its flushed bytes — and one
// fsync covers every batch flushed before it, so concurrent batches
// share a single disk round instead of queueing one fsync each. Memory
// may therefore run ahead of disk between flush and fsync, but nothing
// observable does: a crash in that window forgets only charges whose
// outcomes were never released (their submits were never admitted, so
// no privacy was spent), or persists charges that were never
// acknowledged — an over-count. A crash can cost a worker headroom,
// never privacy.
type ledger struct {
	path string // "" = memory-only

	// mu is the Set-wide commit lock: it guards the file, the writer,
	// and every shard's accounts.
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
	// flushed counts write batches handed to the OS (mutated under mu,
	// read atomically by the sync cohort).
	flushed atomic.Uint64
	// appended counts WAL lines since the last compaction; compactions
	// is a process-lifetime observability counter.
	appended    int
	compactions uint64
	// err is sticky: after a write or flush failure the file position
	// is unknown, so every later mutation refuses rather than risk
	// diverging memory from the log.
	err    error
	closed bool

	// The sync cohort. Lock order is mu → syncMu (compaction swaps the
	// file while holding both); syncMu holders must never take mu.
	// synced is the highest flushed batch an fsync (or a compaction's
	// snapshot fsync) has covered; syncErr is the fsync twin of err.
	syncMu  sync.Mutex
	synced  uint64
	syncErr error
}

// open replays the journal through the Set's apply function and leaves
// the file positioned for appending. dir == "" stays memory-only.
func (l *ledger) open(dir string, apply func(*walRecord) error) error {
	if dir == "" {
		return nil
	}
	l.path = filepath.Join(dir, ledgerFile)
	err := store.ReplayLines(l.path, true, func(line []byte) error {
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Interior corruption in a budget ledger is not skippable the
			// way an advisory checkpoint is: dropping a charge would
			// under-count a worker's spend.
			return fmt.Errorf("budget: bad ledger record: %w", err)
		}
		if err := apply(&rec); err != nil {
			return err
		}
		l.appended++
		return nil
	})
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("budget: open ledger %s: %w", l.path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("budget: seek ledger %s: %w", l.path, err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return nil
}

// flushLocked appends records to the WAL and flushes them to the OS as
// one write batch — durability comes later, from the sync cohort.
// Memory-only ledgers skip it. Any failure is sticky.
func (l *ledger) flushLocked(recs []walRecord) error {
	if l.path == "" {
		return nil
	}
	fail := func(err error) error {
		l.err = err
		return err
	}
	for i := range recs {
		b, err := json.Marshal(&recs[i])
		if err != nil {
			return fail(fmt.Errorf("budget: encode ledger record: %w", err))
		}
		if _, err := l.w.Write(append(b, '\n')); err != nil {
			return fail(fmt.Errorf("budget: append ledger %s: %w", l.path, err))
		}
	}
	if err := l.w.Flush(); err != nil {
		return fail(fmt.Errorf("budget: flush ledger %s: %w", l.path, err))
	}
	l.flushed.Add(1)
	return nil
}

// syncCohort blocks until an fsync covers the caller's write batch seq.
// Callers arriving while another batch's fsync is in flight queue on
// syncMu; whoever acquires it next fsyncs once for every batch flushed
// so far, and the rest find themselves already covered and return
// without touching the disk. Compaction counts as covering everything:
// its snapshot is fsynced before it is published.
func (l *ledger) syncCohort(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.synced >= seq {
		return nil
	}
	// Batches flushed after this load ride the fsync too, but only
	// provably-covered ones are claimed.
	covered := l.flushed.Load()
	if err := l.f.Sync(); err != nil {
		l.syncErr = fmt.Errorf("budget: fsync ledger %s: %w", l.path, err)
		return l.syncErr
	}
	if covered > l.synced {
		l.synced = covered
	}
	return nil
}

// checkLocked is the common entry gate for mutations.
func (l *ledger) checkLocked() error {
	if l.closed {
		return errors.New("budget: set used after close")
	}
	return l.err
}

// commitLocked finishes a mutation that already flushed and applied its
// records: it bumps the line count, maybe compacts, releases the commit
// lock, and joins the sync cohort. It must be called with mu held and
// always unlocks it.
func (l *ledger) commitLocked(lines int, compact func()) error {
	l.appended += lines
	compact()
	durable := l.path != ""
	seq := l.flushed.Load()
	l.mu.Unlock()
	if durable {
		return l.syncCohort(seq)
	}
	return nil
}

// publishCompactionLocked swaps the freshly written snapshot file into
// place: drop the old handle, rename, fsync the directory so the
// rename itself is durable, reopen for appending. Called with mu held.
// The sync cohort reads l.f without mu, so the handle may only change —
// and publish failures must wedge the cohort too — while syncMu is
// also held (lock order mu → syncMu).
func (l *ledger) publishCompactionLocked(tmp string) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	fail := func(err error) error {
		os.Remove(tmp)
		l.err = err
		l.syncErr = err
		return err
	}
	l.f.Close()
	if err := os.Rename(tmp, l.path); err != nil {
		return fail(fmt.Errorf("budget: publish compacted ledger: %w", err))
	}
	if err := syncDir(filepath.Dir(l.path)); err != nil {
		return fail(err)
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("budget: reopen compacted ledger: %w", err))
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.appended = 1 // the snapshot line itself
	l.compactions++
	// The snapshot covers every record applied so far, including write
	// batches still waiting on the cohort — release them.
	l.synced = l.flushed.Load()
	return nil
}

// close flushes and closes the journal.
func (l *ledger) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.path == "" || l.f == nil {
		return l.err
	}
	// Let any in-flight cohort fsync finish before closing its file.
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	first := l.err
	if first == nil {
		first = l.syncErr
	}
	if err := l.w.Flush(); err != nil && first == nil {
		first = err
	}
	if err := l.f.Sync(); err != nil && first == nil {
		first = err
	}
	if err := l.f.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// syncDir fsyncs a directory so a just-renamed file is reachable after
// a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("budget: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("budget: fsync dir %s: %w", dir, err)
	}
	return nil
}

// sortedAccounts flattens account maps into a deterministic snapshot
// slice, sorted by worker so compaction output is reproducible.
func sortedAccounts(shards map[int]*shardState) []Account {
	var n int
	for _, sh := range shards {
		n += len(sh.accounts)
	}
	snap := make([]Account, 0, n)
	for _, sh := range shards {
		for _, a := range sh.accounts {
			snap = append(snap, *a)
		}
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i].WorkerID < snap[j].WorkerID })
	return snap
}
