package budget

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testConfig() Config { return Config{CapEpsilon: 2, Delta: 1e-6} }

func mustSet(t *testing.T, opts SetOptions) *Set {
	t.Helper()
	s, err := NewSet(opts)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return s
}

func TestRouteConcentratesWorker(t *testing.T) {
	// The same worker must land on the same shard no matter what survey
	// the charge is for — Route takes no survey at all, but pin the
	// stability and range anyway.
	for _, w := range []string{"w1", "w2", "alice", ""} {
		got := Route(w, 8)
		if got != Route(w, 8) {
			t.Fatalf("Route(%q) unstable", w)
		}
		if got < 0 || got >= 8 {
			t.Fatalf("Route(%q) = %d outside [0, 8)", w, got)
		}
	}
}

func TestChargeEnforcement(t *testing.T) {
	s := mustSet(t, SetOptions{Shards: 4, Config: testConfig()})
	defer s.Close()

	// Each charge costs rho = 0.01. At δ=1e-6, ε(ρ) ≈ ρ + 2√(ρ·13.8),
	// so the cap ε=2 admits a handful of charges before rejecting.
	var accepted int
	var rejected bool
	for i := 0; i < 100; i++ {
		out, err := s.Charge(Charge{WorkerID: "w1", SurveyID: "s", Rho: 0.01, Enforce: true})
		if err != nil {
			t.Fatalf("charge %d: %v", i, err)
		}
		if out.Rejected {
			rejected = true
			break
		}
		accepted++
		if out.SpentEpsilon > s.Config().CapEpsilon {
			t.Fatalf("accepted charge %d left spent ε %.4f over cap", i, out.SpentEpsilon)
		}
	}
	if !rejected {
		t.Fatal("never rejected despite 100 charges at rho=0.1 against cap ε=2")
	}
	if accepted == 0 {
		t.Fatal("first charge already rejected; cap too tight for the test to mean anything")
	}

	// The balance is unchanged by the rejection, and stays capped.
	a, err := s.Peek("w1")
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	if a.Charges != uint64(accepted) {
		t.Fatalf("account recorded %d charges, accepted %d", a.Charges, accepted)
	}
	if eps := s.Config().Epsilon(a.Rho); eps > s.Config().CapEpsilon {
		t.Fatalf("final spent ε %.4f exceeds cap", eps)
	}

	// Log mode (Enforce=false) admits the same over-cap charge but
	// reports OverCap.
	out, err := s.Charge(Charge{WorkerID: "w1", Rho: 0.01})
	if err != nil {
		t.Fatalf("log-mode charge: %v", err)
	}
	if out.Rejected {
		t.Fatal("log-mode charge rejected")
	}
	if !out.OverCap {
		t.Fatal("log-mode over-cap charge did not report OverCap")
	}

	// Zero-rho (level-None) charges are never rejected, even enforced
	// and over cap; they tally unprotected disclosures.
	out, err = s.Charge(Charge{WorkerID: "w1", Unprotected: 3, Enforce: true})
	if err != nil {
		t.Fatalf("none-level charge: %v", err)
	}
	if out.Rejected {
		t.Fatal("zero-rho charge rejected")
	}
	a, _ = s.Peek("w1")
	if a.Unprotected != 3 {
		t.Fatalf("unprotected = %d, want 3", a.Unprotected)
	}
}

func TestChargeBatchComposesWithinBatch(t *testing.T) {
	s := mustSet(t, SetOptions{Shards: 1, Config: Config{CapEpsilon: 1, Delta: 1e-6}})
	defer s.Close()

	// Two charges for the same worker in one batch: the second must see
	// the first's staged debit. rho=0.012 → ε≈0.83 alone, ≈1.18 combined
	// at δ=1e-6, against the cap ε=1.
	outs, err := s.ChargeShard(0, []Charge{
		{WorkerID: "w", Rho: 0.012, Enforce: true},
		{WorkerID: "w", Rho: 0.012, Enforce: true},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if outs[0].Rejected {
		t.Fatal("first charge rejected")
	}
	if !outs[1].Rejected {
		t.Fatal("second charge in the same batch did not compose with the first")
	}
}

func TestRefund(t *testing.T) {
	s := mustSet(t, SetOptions{Shards: 2, Config: testConfig()})
	defer s.Close()
	ch := Charge{WorkerID: "w", SurveyID: "s", Rho: 0.3, Unprotected: 1}
	if _, err := s.Charge(ch); err != nil {
		t.Fatal(err)
	}
	if err := s.Refund(ch); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Peek("w")
	if a.Rho != 0 || a.Unprotected != 0 {
		t.Fatalf("after refund rho=%g unprotected=%d, want zeros", a.Rho, a.Unprotected)
	}
	if a.Charges != 1 || a.Refunds != 1 {
		t.Fatalf("charges=%d refunds=%d, want 1/1", a.Charges, a.Refunds)
	}
}

// TestRestartEquivalence is the kill-9 contract: concurrent charges and
// refunds land on a durable set, the process "dies" (the files are
// reopened without a clean close), and every balance replays to the
// exact same float64.
func TestRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{CapEpsilon: 50, Delta: 1e-6}
	s := mustSet(t, SetOptions{Shards: 4, Dir: dir, Config: cfg})

	const workers = 16
	const perG = 40
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w := fmt.Sprintf("w%02d", (g*perG+i)%workers)
				rho := 0.001 * float64(i%7+1)
				if _, err := s.Charge(Charge{WorkerID: w, SurveyID: "s", Rho: rho, Enforce: true}); err != nil {
					t.Errorf("charge: %v", err)
					return
				}
				if i%9 == 0 {
					if err := s.Refund(Charge{WorkerID: w, Rho: rho}); err != nil {
						t.Errorf("refund: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	want := make(map[string]Account, workers)
	for i := 0; i < workers; i++ {
		w := fmt.Sprintf("w%02d", i)
		a, err := s.Peek(w)
		if err != nil {
			t.Fatal(err)
		}
		want[w] = a
	}
	// Kill-9: no Close. The OS keeps the fsynced bytes; the dropped
	// handles are the crashed process's.
	s = nil

	re := mustSet(t, SetOptions{Shards: 4, Dir: dir, Config: cfg})
	defer re.Close()
	for w, exp := range want {
		got, err := re.Peek(w)
		if err != nil {
			t.Fatal(err)
		}
		if got != exp {
			t.Fatalf("worker %s: replayed %+v, lived %+v", w, got, exp)
		}
	}
}

// TestRestartTornTail crashes mid-append: a half-written last line must
// be truncated away on reopen, restoring the state before the torn
// charge.
func TestRestartTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s := mustSet(t, SetOptions{Shards: 1, Dir: dir, Config: cfg})
	if _, err := s.Charge(Charge{WorkerID: "w", Rho: 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, ledgerFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"worker":"w","rho":9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := mustSet(t, SetOptions{Shards: 1, Dir: dir, Config: cfg})
	defer re.Close()
	a, err := re.Peek("w")
	if err != nil {
		t.Fatal(err)
	}
	if a.Rho != 0.2 || a.Charges != 1 {
		t.Fatalf("after torn tail: rho=%g charges=%d, want 0.2/1", a.Rho, a.Charges)
	}
}

func TestCompactionPreservesBalances(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{CapEpsilon: 1000, Delta: 1e-6}
	s := mustSet(t, SetOptions{Shards: 1, Dir: dir, Config: cfg})

	// One worker, hundreds of small charges: threshold is 64-ish, so
	// several compactions run.
	for i := 0; i < 300; i++ {
		if _, err := s.Charge(Charge{WorkerID: "w", Rho: 0.001}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Compactions == 0 {
		t.Fatal("300 charges never triggered compaction")
	}
	if stats[0].WALRecords >= 300 {
		t.Fatalf("compaction did not shrink the WAL: %d records", stats[0].WALRecords)
	}
	before, _ := s.Peek("w")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustSet(t, SetOptions{Shards: 1, Dir: dir, Config: cfg})
	defer re.Close()
	after, err := re.Peek("w")
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("compacted replay %+v differs from live %+v", after, before)
	}
	if after.Charges != 300 {
		t.Fatalf("charges = %d, want 300", after.Charges)
	}
}

func TestHostedSubset(t *testing.T) {
	s := mustSet(t, SetOptions{Shards: 8, GlobalIDs: []int{1, 5}, Config: testConfig()})
	defer s.Close()
	if s.Shards() != 8 {
		t.Fatalf("Shards() = %d, want global count 8", s.Shards())
	}
	if _, err := s.ChargeShard(2, []Charge{{WorkerID: "w5", Rho: 0.1}}); err == nil {
		t.Fatal("charging an unhosted shard succeeded")
	} else if !errors.Is(err, ErrNotHosted) {
		t.Fatalf("unhosted charge error %v does not wrap ErrNotHosted", err)
	}
	// "w5" routes to shard 1 of 8 — hosted, so the charge lands.
	if _, err := s.ChargeShard(1, []Charge{{WorkerID: "w5", Rho: 0.1}}); err != nil {
		t.Fatalf("charging hosted shard 1: %v", err)
	}
	// A charge addressed to a hosted shard but for a worker whose hash
	// routes elsewhere must not half-commit onto the wrong shard.
	if _, err := s.ChargeShard(1, []Charge{{WorkerID: "w", Rho: 0.1}}); !errors.Is(err, ErrNotHosted) {
		t.Fatalf("misrouted charge error %v does not wrap ErrNotHosted", err)
	}
}

func TestChargeValidation(t *testing.T) {
	s := mustSet(t, SetOptions{Shards: 1, Config: testConfig()})
	defer s.Close()
	for _, c := range []Charge{
		{WorkerID: "", Rho: 0.1},
		{WorkerID: "w", Rho: -1},
		{WorkerID: "w", Rho: math.Inf(1)},
		{WorkerID: "w", Rho: math.NaN()},
		{WorkerID: "w", Unprotected: -1},
	} {
		if _, err := s.Charge(c); err == nil {
			t.Fatalf("charge %+v accepted", c)
		}
	}
	if _, err := NewSet(SetOptions{Shards: 1, Config: Config{CapEpsilon: 0, Delta: 1e-6}}); err == nil {
		t.Fatal("zero cap accepted")
	}
	if _, err := NewSet(SetOptions{Shards: 1, Config: Config{CapEpsilon: 1, Delta: 1}}); err == nil {
		t.Fatal("delta=1 accepted")
	}
}
