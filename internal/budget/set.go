package budget

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SetOptions tune NewSet.
type SetOptions struct {
	// Shards is the global budget shard count workers hash into. It must
	// match across every node and frontend of a cluster, or two servers
	// would route the same worker to different accounts; by convention it
	// equals the cluster's response shard count.
	Shards int
	// GlobalIDs selects the subset of the shard space this Set hosts
	// (the node's owned shards under the cluster placement). Nil hosts
	// all of them — the standalone deployment.
	GlobalIDs []int
	// Dir, when non-empty, is the directory the Set's shared charge
	// journal lives in (created if missing). Empty keeps every shard in
	// memory.
	Dir string
	// Config is the ceiling every hosted shard enforces.
	Config Config
}

// Set is a collection of hosted budget shards behind the Charger
// interface: the whole shard space for a standalone server, the node's
// owned subset on cluster nodes (where frontends reach the rest over
// shardrpc). The shards share one durable journal and one commit lock —
// see the ledger type for why durability is per-Set while routing,
// placement and stats stay per-shard.
type Set struct {
	total  int
	cfg    Config
	led    ledger
	shards map[int]*shardState
	ids    []int
}

// NewSet opens the hosted shards, replaying the Set's charge journal.
func NewSet(opts SetOptions) (*Set, error) {
	if opts.Shards <= 0 {
		return nil, fmt.Errorf("budget: shard count must be positive, got %d", opts.Shards)
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	ids := opts.GlobalIDs
	if ids == nil {
		ids = make([]int, opts.Shards)
		for i := range ids {
			ids[i] = i
		}
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("budget: create dir %s: %w", opts.Dir, err)
		}
	}
	s := &Set{total: opts.Shards, cfg: opts.Config, shards: make(map[int]*shardState, len(ids))}
	for _, id := range ids {
		if id < 0 || id >= opts.Shards {
			return nil, fmt.Errorf("budget: global shard %d outside [0, %d)", id, opts.Shards)
		}
		if _, dup := s.shards[id]; dup {
			return nil, fmt.Errorf("budget: global shard %d hosted twice", id)
		}
		s.shards[id] = &shardState{global: id, accounts: make(map[string]*Account)}
		s.ids = append(s.ids, id)
	}
	sort.Ints(s.ids)
	if err := s.led.open(opts.Dir, s.applyLocked); err != nil {
		return nil, err
	}
	return s, nil
}

// Config implements Charger.
func (s *Set) Config() Config { return s.cfg }

// Shards implements Charger: the global shard count, not the hosted
// count.
func (s *Set) Shards() int { return s.total }

// Hosted returns the sorted global shard indices this Set holds.
func (s *Set) Hosted() []int { return append([]int(nil), s.ids...) }

// Hosts reports whether one global budget shard lives in this Set —
// the pre-flight check for callers that must not half-commit a batch
// spanning hosted and unhosted shards.
func (s *Set) Hosts(global int) bool { return s.shards[global] != nil }

// routedLocked returns the hosted shard a worker's records belong to.
func (s *Set) routedLocked(worker string) (*shardState, error) {
	g := Route(worker, s.total)
	sh := s.shards[g]
	if sh == nil {
		return nil, fmt.Errorf("%w: shard %d", ErrNotHosted, g)
	}
	return sh, nil
}

// applyLocked folds one WAL record into the in-memory accounts. It is
// the single state-transition function — the live commit path and
// crash-recovery replay both go through it, which is what makes restart
// balances bit-exact. A record that routes to an unhosted shard is an
// error: the journal belongs to a different shard placement.
func (s *Set) applyLocked(rec *walRecord) error {
	switch rec.T {
	case walSnapshot:
		for _, sh := range s.shards {
			sh.accounts = make(map[string]*Account)
			sh.records = 0
		}
		for i := range rec.Snapshot {
			a := rec.Snapshot[i]
			sh, err := s.routedLocked(a.WorkerID)
			if err != nil {
				return err
			}
			sh.accounts[a.WorkerID] = &a
		}
	case walRefund:
		sh, err := s.routedLocked(rec.Worker)
		if err != nil {
			return err
		}
		a := sh.accountLocked(rec.Worker)
		a.Rho -= rec.Rho
		a.Unprotected -= rec.Unprot
		a.Refunds++
		sh.records++
	default:
		sh, err := s.routedLocked(rec.Worker)
		if err != nil {
			return err
		}
		a := sh.accountLocked(rec.Worker)
		a.Rho += rec.Rho
		a.Unprotected += rec.Unprot
		a.Charges++
		sh.records++
	}
	return nil
}

// accountLocked returns (creating if needed) a worker's account.
func (sh *shardState) accountLocked(worker string) *Account {
	a := sh.accounts[worker]
	if a == nil {
		a = &Account{WorkerID: worker}
		sh.accounts[worker] = a
	}
	return a
}

// Charge implements Charger, routing by worker hash.
func (s *Set) Charge(c Charge) (Outcome, error) {
	outs, err := s.ChargeShard(Route(c.WorkerID, s.total), []Charge{c})
	if err != nil {
		return Outcome{}, err
	}
	return outs[0], nil
}

// ChargeShard debits a batch against one hosted shard — the node-side
// entry point shardrpc charge batches land on. The shard is the
// caller's addressing claim; every charge still lands on its worker's
// routed shard (the hash the replay path uses), and a worker routed to
// an unhosted shard fails the whole batch before anything commits.
func (s *Set) ChargeShard(global int, charges []Charge) ([]Outcome, error) {
	res, err := s.ChargeShards(map[int][]Charge{global: charges})
	if err != nil {
		return nil, err
	}
	return res[global], nil
}

// ChargeShards decides and commits several routed charge groups
// transactionally under the Set's commit lock — the fused submit path's
// entry point, where one request batch's charges scatter across most of
// the hosted shards. The whole call is one WAL flush and one
// group-committed fsync, no matter how many shards it touches.
//
// Each charge is evaluated in order against the account's committed
// balance plus what earlier charges in the same call staged — one
// worker charged twice in a batch composes. A charge whose new total ε
// would exceed the cap and that asks for enforcement is rejected with
// nothing staged and nothing written; everything else is written and
// committed, and the outcomes (keyed by the caller's group) are
// withheld until the sync cohort reports the batch durable.
//
// If the process dies between the fsync and the submit path acting on
// the outcomes, replay restores charges no response was stored for —
// the account over-counts its spend. That direction is deliberate: a
// crash can cost a worker headroom, never privacy.
func (s *Set) ChargeShards(groups map[int][]Charge) (map[int][]Outcome, error) {
	s.led.mu.Lock()
	if err := s.led.checkLocked(); err != nil {
		s.led.mu.Unlock()
		return nil, err
	}
	// Pre-flight every group before staging anything: a batch that spans
	// hosted and unhosted shards, or holds a malformed charge, must not
	// half-commit.
	order := make([]int, 0, len(groups))
	for g, charges := range groups {
		order = append(order, g)
		if s.shards[g] == nil {
			s.led.mu.Unlock()
			return nil, fmt.Errorf("%w: shard %d", ErrNotHosted, g)
		}
		for i := range charges {
			if err := charges[i].validate(); err != nil {
				s.led.mu.Unlock()
				return nil, err
			}
			if _, err := s.routedLocked(charges[i].WorkerID); err != nil {
				s.led.mu.Unlock()
				return nil, err
			}
		}
	}
	sort.Ints(order) // deterministic WAL order within a call
	outs := make(map[int][]Outcome, len(groups))
	// staged accumulates accepted-but-uncommitted rho per worker so
	// in-batch composition sees it.
	staged := make(map[string]float64)
	var recs []walRecord
	for _, g := range order {
		charges := groups[g]
		res := make([]Outcome, len(charges))
		for i := range charges {
			c := &charges[i]
			sh, _ := s.routedLocked(c.WorkerID)
			var base float64
			if a := sh.accounts[c.WorkerID]; a != nil {
				base = a.Rho
			}
			cur := base + staged[c.WorkerID]
			newRho := cur + c.Rho
			eps := s.cfg.Epsilon(newRho)
			over := eps > s.cfg.CapEpsilon
			out := Outcome{WorkerID: c.WorkerID, OverCap: over}
			if over && c.Enforce && c.Rho > 0 {
				// Refused: report the unchanged balance. Zero-rho charges
				// (level-None submits) are never refused — the cap bounds DP
				// loss, and they spend none.
				out.Rejected = true
				out.SpentEpsilon = s.cfg.Epsilon(cur)
				out.RemainingEpsilon = s.cfg.Remaining(cur)
				res[i] = out
				sh.rejected++
				continue
			}
			staged[c.WorkerID] += c.Rho
			out.SpentEpsilon = eps
			out.RemainingEpsilon = s.cfg.Remaining(newRho)
			res[i] = out
			recs = append(recs, walRecord{Worker: c.WorkerID, Survey: c.SurveyID, Rho: c.Rho, Unprot: c.Unprotected})
		}
		outs[g] = res
	}
	if len(recs) == 0 {
		s.led.mu.Unlock()
		return outs, nil
	}
	if err := s.flushApplyLocked(recs); err != nil {
		s.led.mu.Unlock()
		return nil, err
	}
	if err := s.led.commitLocked(len(recs), s.maybeCompactLocked); err != nil {
		return nil, err
	}
	return outs, nil
}

// flushApplyLocked writes records to the journal and folds them into
// memory, in that order — apply order is WAL order, the replay
// contract. An apply failure after the flush leaves memory behind the
// log, so it is sticky.
func (s *Set) flushApplyLocked(recs []walRecord) error {
	if err := s.led.flushLocked(recs); err != nil {
		return err
	}
	for i := range recs {
		if err := s.applyLocked(&recs[i]); err != nil {
			s.led.err = err
			return err
		}
	}
	return nil
}

// Refund implements Charger.
func (s *Set) Refund(c Charge) error {
	return s.RefundShard(Route(c.WorkerID, s.total), c)
}

// RefundShard credits one hosted shard — the submit path's compensation
// when the response append fails after the debit. The credit is durable
// before it is visible, like every other mutation.
func (s *Set) RefundShard(global int, c Charge) error {
	s.led.mu.Lock()
	if err := s.led.checkLocked(); err != nil {
		s.led.mu.Unlock()
		return err
	}
	if s.shards[global] == nil {
		s.led.mu.Unlock()
		return fmt.Errorf("%w: shard %d", ErrNotHosted, global)
	}
	if err := c.validate(); err != nil {
		s.led.mu.Unlock()
		return err
	}
	if _, err := s.routedLocked(c.WorkerID); err != nil {
		s.led.mu.Unlock()
		return err
	}
	rec := walRecord{T: walRefund, Worker: c.WorkerID, Survey: c.SurveyID, Rho: c.Rho, Unprot: c.Unprotected}
	if err := s.flushApplyLocked([]walRecord{rec}); err != nil {
		s.led.mu.Unlock()
		return err
	}
	return s.led.commitLocked(1, s.maybeCompactLocked)
}

// Peek implements Charger.
func (s *Set) Peek(workerID string) (Account, error) {
	return s.PeekShard(Route(workerID, s.total), workerID)
}

// PeekShard reads a worker's account off one hosted shard.
func (s *Set) PeekShard(global int, workerID string) (Account, error) {
	sh := s.shards[global]
	if sh == nil {
		return Account{}, fmt.Errorf("%w: shard %d", ErrNotHosted, global)
	}
	s.led.mu.Lock()
	defer s.led.mu.Unlock()
	if a := sh.accounts[workerID]; a != nil {
		return *a, nil
	}
	return Account{WorkerID: workerID}, nil
}

// Stats implements Charger over the hosted shards. WALRecords counts
// the journal lines attributable to each shard since the last
// compaction; Compactions and Durable describe the shared journal and
// repeat on every row.
func (s *Set) Stats() ([]ShardStats, error) {
	s.led.mu.Lock()
	defer s.led.mu.Unlock()
	out := make([]ShardStats, 0, len(s.ids))
	for _, id := range s.ids {
		sh := s.shards[id]
		st := ShardStats{
			Shard:       id,
			Workers:     len(sh.accounts),
			Rejected:    sh.rejected,
			WALRecords:  sh.records,
			Compactions: s.led.compactions,
			Durable:     s.led.path != "",
		}
		for _, a := range sh.accounts {
			st.Charges += a.Charges
			st.Refunds += a.Refunds
			st.Unprotected += a.Unprotected
		}
		out = append(out, st)
	}
	return out, nil
}

// maybeCompactLocked rewrites the journal as one snapshot record once
// the appended lines outnumber the live accounts enough that the
// rewrite pays for itself. Same 4x-with-floor policy as checkpoint
// compaction, with a higher floor because charge lines accumulate per
// submit, not per survey.
func (s *Set) maybeCompactLocked() {
	if s.led.path == "" {
		return
	}
	var accounts int
	for _, sh := range s.shards {
		accounts += len(sh.accounts)
	}
	threshold := 4 * (accounts + 1)
	if threshold < 64 {
		threshold = 64
	}
	if s.led.appended < threshold {
		return
	}
	s.compactLocked()
}

// compactLocked writes a snapshot of every hosted account to a temp
// file, fsyncs it, and renames it over the journal — the rename must
// never publish torn content. Failures are sticky; the original file
// is untouched until publish.
func (s *Set) compactLocked() {
	b, err := json.Marshal(&walRecord{T: walSnapshot, Snapshot: sortedAccounts(s.shards)})
	if err != nil {
		s.led.err = fmt.Errorf("budget: encode ledger snapshot: %w", err)
		return
	}
	tmp := s.led.path + ".tmp"
	fail := func(err error) {
		os.Remove(tmp)
		s.led.err = err
	}
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		fail(fmt.Errorf("budget: create %s: %w", tmp, err))
		return
	}
	if _, err := tf.Write(append(b, '\n')); err != nil {
		tf.Close()
		fail(fmt.Errorf("budget: write %s: %w", tmp, err))
		return
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		fail(fmt.Errorf("budget: fsync %s: %w", tmp, err))
		return
	}
	if err := tf.Close(); err != nil {
		fail(fmt.Errorf("budget: close %s: %w", tmp, err))
		return
	}
	if s.led.publishCompactionLocked(tmp) != nil {
		return
	}
	for _, sh := range s.shards {
		sh.records = 0
	}
}

// Close implements Charger, closing the shared journal.
func (s *Set) Close() error {
	return s.led.close()
}

var _ Charger = (*Set)(nil)
