// Package rng provides deterministic, seedable random number generation for
// the Loki simulation substrates.
//
// Every experiment in this repository must be exactly reproducible from a
// seed, across platforms and Go releases. The standard library's global
// rand functions are convenient but their stream is not guaranteed stable
// across releases, so this package implements its own small, well-known
// generators: SplitMix64 for seeding and xoshiro256** for the main stream.
// On top of the raw stream it offers the distributions the simulations
// need: uniform, normal (Gaussian), Bernoulli, categorical, Zipf, Poisson
// and permutations.
//
// The zero value of RNG is not usable; construct one with New. RNG is not
// safe for concurrent use; give each goroutine its own RNG, typically via
// Split.
package rng

import (
	"errors"
	"fmt"
	"math"
)

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256**. It is intentionally small: 4 words of state.
type RNG struct {
	s [4]uint64
	// cached spare normal variate for the polar method
	haveSpare bool
	spare     float64
}

// New returns an RNG seeded from the given seed. Two RNGs constructed with
// the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from a single 64-bit seed using
// SplitMix64, which guarantees the four state words are well mixed even
// for adjacent seeds.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.haveSpare = false
}

// splitMix64 advances the SplitMix64 state and returns the new state and
// the output word.
func splitMix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)

	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Split derives an independent generator from this one. The child stream
// is decorrelated from the parent by reseeding through SplitMix64, so a
// parent and its children may be used in different goroutines.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	return int(r.boundedUint64(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// multiply-shift rejection method, which avoids modulo bias.
func (r *RNG) boundedUint64(bound uint64) uint64 {
	if bound == 0 {
		panic("rng: bounded draw with bound 0")
	}
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("rng: IntRange with hi=%d < lo=%d", hi, lo))
	}
	return lo + r.Intn(hi-lo+1)
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, using the Marsaglia polar method. sigma must be
// non-negative; sigma == 0 returns mean exactly.
func (r *RNG) Normal(mean, sigma float64) float64 {
	if sigma < 0 {
		panic(fmt.Sprintf("rng: Normal called with sigma=%g < 0", sigma))
	}
	if sigma == 0 {
		return mean
	}
	return mean + sigma*r.StdNormal()
}

// StdNormal returns a standard normal variate (mean 0, stddev 1).
func (r *RNG) StdNormal() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// Laplace returns a Laplace-distributed variate with location mu and
// scale b > 0, via inverse transform sampling.
func (r *RNG) Laplace(mu, b float64) float64 {
	if b <= 0 {
		panic(fmt.Sprintf("rng: Laplace called with scale b=%g <= 0", b))
	}
	u := r.Float64() - 0.5
	return mu - b*sign(u)*math.Log(1-2*math.Abs(u))
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// Bernoulli returns true with probability p. p is clamped to [0, 1].
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exponential returns an exponentially distributed variate with the given
// rate lambda > 0.
func (r *RNG) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic(fmt.Sprintf("rng: Exponential called with lambda=%g <= 0", lambda))
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// Poisson returns a Poisson-distributed variate with mean lambda >= 0.
// For small lambda it uses Knuth's product method; for large lambda a
// normal approximation with continuity correction, which is adequate for
// the workload generators in this repository.
func (r *RNG) Poisson(lambda float64) int {
	switch {
	case lambda < 0:
		panic(fmt.Sprintf("rng: Poisson called with lambda=%g < 0", lambda))
	case lambda == 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		v := r.Normal(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place.
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function, like
// math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or either is negative.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("rng: Sample(n=%d, k=%d) out of range", n, k))
	}
	// Partial Fisher–Yates: only the first k slots are needed.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

// Categorical draws an index from the (unnormalized, non-negative) weight
// vector w. It returns an error if w is empty, contains a negative or
// non-finite weight, or sums to zero.
func (r *RNG) Categorical(w []float64) (int, error) {
	if len(w) == 0 {
		return 0, errors.New("rng: Categorical with empty weights")
	}
	total := 0.0
	for i, wi := range w {
		if wi < 0 || math.IsNaN(wi) || math.IsInf(wi, 0) {
			return 0, fmt.Errorf("rng: Categorical weight %d is invalid (%g)", i, wi)
		}
		total += wi
	}
	if total <= 0 {
		return 0, errors.New("rng: Categorical weights sum to zero")
	}
	x := r.Float64() * total
	acc := 0.0
	for i, wi := range w {
		acc += wi
		if x < acc {
			return i, nil
		}
	}
	return len(w) - 1, nil // floating point edge: return last bucket
}

// MustCategorical is Categorical for weight vectors known to be valid; it
// panics on error. Use it only with hard-coded weights.
func (r *RNG) MustCategorical(w []float64) int {
	i, err := r.Categorical(w)
	if err != nil {
		panic(err)
	}
	return i
}

// Zipf draws from a Zipf distribution over {0, 1, ..., n-1} with exponent
// s > 0: P(k) proportional to 1/(k+1)^s. The sampler precomputes nothing,
// so for tight loops prefer NewZipf.
func (r *RNG) Zipf(n int, s float64) int {
	z := NewZipf(n, s)
	return z.Draw(r)
}

// Zipfian is a precomputed Zipf sampler over {0..n-1} using the inverse
// CDF method on a cumulative table. Construction is O(n), draws are
// O(log n).
type Zipfian struct {
	cum []float64
}

// NewZipf builds a Zipf sampler with n ranks and exponent s. It panics if
// n <= 0 or s <= 0.
func NewZipf(n int, s float64) *Zipfian {
	if n <= 0 || s <= 0 {
		panic(fmt.Sprintf("rng: NewZipf(n=%d, s=%g) out of range", n, s))
	}
	cum := make([]float64, n)
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += 1 / math.Pow(float64(k+1), s)
		cum[k] = acc
	}
	// Normalize so cum[n-1] == 1 exactly.
	for k := range cum {
		cum[k] /= acc
	}
	cum[n-1] = 1
	return &Zipfian{cum: cum}
}

// Draw samples a rank in [0, n).
func (z *Zipfian) Draw(r *RNG) int {
	x := r.Float64()
	// Binary search for the first index with cum[i] > x.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// N returns the number of ranks the sampler was built with.
func (z *Zipfian) N() int { return len(z.cum) }
