package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent seeds produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	saw := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		saw[r.Uint64()] = true
	}
	if len(saw) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(saw))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := New(4)
	for n := 1; n <= 10; n++ {
		for i := 0; i < 1000; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, draws = 7, 70_000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(6)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d", v)
		}
	}
	if v := r.IntRange(5, 5); v != 5 {
		t.Fatalf("IntRange(5,5) = %d", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inverted IntRange did not panic")
		}
	}()
	r.IntRange(2, 1)
}

func TestNormalMoments(t *testing.T) {
	r := New(7)
	const mean, sigma, n = 2.5, 1.5, 200_000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sigma)
		sum += v
		ss += v * v
	}
	m := sum / n
	sd := math.Sqrt(ss/n - m*m)
	if math.Abs(m-mean) > 0.02 {
		t.Errorf("mean = %.4f, want %.1f", m, mean)
	}
	if math.Abs(sd-sigma) > 0.02 {
		t.Errorf("stddev = %.4f, want %.1f", sd, sigma)
	}
}

func TestNormalZeroSigma(t *testing.T) {
	r := New(8)
	if v := r.Normal(3.14, 0); v != 3.14 {
		t.Fatalf("Normal(3.14, 0) = %g", v)
	}
}

func TestNormalNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative sigma did not panic")
		}
	}()
	New(9).Normal(0, -1)
}

func TestLaplaceMoments(t *testing.T) {
	r := New(10)
	const mu, b, n = 1.0, 2.0, 200_000
	var sum, absDev float64
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		v := r.Laplace(mu, b)
		vals[i] = v
		sum += v
	}
	m := sum / n
	for _, v := range vals {
		absDev += math.Abs(v - mu)
	}
	if math.Abs(m-mu) > 0.03 {
		t.Errorf("mean = %.4f, want %.1f", m, mu)
	}
	// E|X−μ| = b for Laplace.
	if got := absDev / n; math.Abs(got-b) > 0.05 {
		t.Errorf("mean abs deviation = %.4f, want %.1f", got, b)
	}
}

func TestLaplacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Laplace scale 0 did not panic")
		}
	}()
	New(11).Laplace(0, 0)
}

func TestBernoulli(t *testing.T) {
	r := New(12)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	const p, n = 0.3, 100_000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-p) > 0.01 {
		t.Errorf("Bernoulli(%g) rate = %.4f", p, got)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(13)
	const lambda, n = 2.0, 200_000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(lambda)
		if v < 0 {
			t.Fatalf("negative exponential draw %g", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-1/lambda) > 0.01 {
		t.Errorf("mean = %.4f, want %.2f", got, 1/lambda)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(14)
	for _, lambda := range []float64{0, 0.5, 3, 12, 50, 200} {
		const n = 50_000
		var sum float64
		for i := 0; i < n; i++ {
			v := r.Poisson(lambda)
			if v < 0 {
				t.Fatalf("negative Poisson draw %d", v)
			}
			sum += float64(v)
		}
		got := sum / n
		tol := 4 * math.Sqrt(math.Max(lambda, 1)/n) * 3
		if math.Abs(got-lambda) > math.Max(tol, 0.05) {
			t.Errorf("Poisson(%g) mean = %.3f", lambda, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(15)
	err := quick.Check(func(seed uint64) bool {
		n := int(seed%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(16)
	s := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.ShuffleInts(s)
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed content: sum %d vs %d", got, sum)
	}
}

func TestSample(t *testing.T) {
	r := New(17)
	got := r.Sample(10, 4)
	if len(got) != 4 {
		t.Fatalf("Sample returned %d elements", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Sample invalid element %d in %v", v, got)
		}
		seen[v] = true
	}
	if got := r.Sample(5, 5); len(got) != 5 {
		t.Fatalf("Sample(5,5) returned %d", len(got))
	}
	if got := r.Sample(5, 0); len(got) != 0 {
		t.Fatalf("Sample(5,0) returned %d", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) did not panic")
		}
	}()
	r.Sample(2, 3)
}

func TestCategoricalErrors(t *testing.T) {
	r := New(18)
	cases := [][]float64{
		nil,
		{},
		{-1, 2},
		{0, 0},
		{math.NaN(), 1},
		{math.Inf(1), 1},
	}
	for _, w := range cases {
		if _, err := r.Categorical(w); err == nil {
			t.Errorf("Categorical(%v) accepted invalid weights", w)
		}
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(19)
	w := []float64{1, 2, 7}
	const n = 100_000
	counts := make([]float64, 3)
	for i := 0; i < n; i++ {
		idx, err := r.Categorical(w)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		if got := counts[i] / n; math.Abs(got-want) > 0.01 {
			t.Errorf("bucket %d: %.4f, want %.1f", i, got, want)
		}
	}
}

func TestMustCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCategorical with empty weights did not panic")
		}
	}()
	New(20).MustCategorical(nil)
}

func TestZipfShape(t *testing.T) {
	r := New(21)
	z := NewZipf(10, 1.0)
	if z.N() != 10 {
		t.Fatalf("N = %d", z.N())
	}
	const n = 200_000
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		k := z.Draw(r)
		if k < 0 || k >= 10 {
			t.Fatalf("Zipf draw out of range: %d", k)
		}
		counts[k]++
	}
	// Frequencies should decrease in rank (with slack for sampling noise
	// between adjacent ranks near the tail).
	if counts[0] <= counts[4] || counts[1] <= counts[7] {
		t.Errorf("Zipf not head-heavy: %v", counts)
	}
	// P(rank 0) with s=1, n=10: 1/H(10) ≈ 0.3414.
	if got := float64(counts[0]) / n; math.Abs(got-0.3414) > 0.01 {
		t.Errorf("rank-0 mass = %.4f, want ~0.3414", got)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, c := range []struct {
		n int
		s float64
	}{{0, 1}, {5, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %g) did not panic", c.n, c.s)
				}
			}()
			NewZipf(c.n, c.s)
		}()
	}
}

func TestZipfConvenience(t *testing.T) {
	r := New(22)
	for i := 0; i < 100; i++ {
		if k := r.Zipf(5, 1.2); k < 0 || k >= 5 {
			t.Fatalf("Zipf convenience out of range: %d", k)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and child streams overlap: %d/100", same)
	}
}

func TestMul64MatchesStdlib(t *testing.T) {
	err := quick.Check(func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		wantHi, wantLo := bits.Mul64(x, y)
		return hi == wantHi && lo == wantLo
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoundedDrawProperty(t *testing.T) {
	r := New(24)
	err := quick.Check(func(bound uint64) bool {
		b := bound%1_000_000 + 1
		v := r.boundedUint64(b)
		return v < b
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStdNormalSpareConsistency(t *testing.T) {
	// Re-seeding must clear the cached spare variate.
	r := New(25)
	_ = r.StdNormal()
	r.Seed(25)
	a := r.StdNormal()
	r2 := New(25)
	b := r2.StdNormal()
	if a != b {
		t.Fatalf("Seed did not reset spare state: %g vs %g", a, b)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(0, 1)
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	r := New(1)
	z := NewZipf(1000, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw(r)
	}
}
