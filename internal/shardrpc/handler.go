package shardrpc

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"loki/internal/blockio"
	"loki/internal/store"
	"loki/internal/survey"
)

// maxScanPage bounds one scan/tail page so a cold replica syncing a
// large shard cannot make the node materialize an unbounded response.
const maxScanPage = 4096

// Handler serves the shardrpc surface over a Backend. Mount it on the
// node's mux next to (or instead of) the public API; every route is
// guarded by the cluster token.
type Handler struct {
	backend Backend
	token   string
	mux     *http.ServeMux
}

// NewHandler builds the shardrpc handler. The token guards every route
// — cluster-internal traffic carries "Authorization: Bearer <token>"
// exactly like the public API's requester endpoints.
func NewHandler(backend Backend, token string) (*Handler, error) {
	if backend == nil {
		return nil, errors.New("shardrpc: handler needs a backend")
	}
	if token == "" {
		return nil, errors.New("shardrpc: handler needs a cluster token")
	}
	h := &Handler{backend: backend, token: token, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /shardrpc/v1/meta", h.guard(h.handleMeta))
	h.mux.HandleFunc("POST /shardrpc/v1/submit", h.guard(h.handleSubmit))
	h.mux.HandleFunc("GET /shardrpc/v1/shards/{shard}/scan", h.guard(h.handleScan))
	h.mux.HandleFunc("GET /shardrpc/v1/shards/{shard}/count", h.guard(h.handleCount))
	h.mux.HandleFunc("GET /shardrpc/v1/shards/{shard}/partial", h.guard(h.handlePartial))
	h.mux.HandleFunc("GET /shardrpc/v1/shards/{shard}/tail", h.guard(h.handleTail))
	h.mux.HandleFunc("GET /shardrpc/v1/surveys", h.guard(h.handleSurveys))
	h.mux.HandleFunc("GET /shardrpc/v1/surveys/{id}", h.guard(h.handleSurvey))
	h.mux.HandleFunc("POST /shardrpc/v1/surveys", h.guard(h.handlePublish))
	// The budget surface is optional: nodes that host budget shards
	// implement BudgetBackend and get its routes; plain backends do not.
	if bb, ok := backend.(BudgetBackend); ok {
		h.registerBudget(bb)
	}
	return h, nil
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) guard(fn http.HandlerFunc) http.HandlerFunc {
	want := "Bearer " + h.token
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != want {
			writeErr(w, http.StatusUnauthorized, "missing or invalid cluster token")
			return
		}
		fn(w, r)
	}
}

// writeBackendErr maps backend errors to transport statuses: unknown
// survey → 404, duplicate publish → 409, unowned shard → 421 (the
// caller's placement map is wrong), anything else → 400 (validation)
// so the sender does not blindly retry a rejected record.
func writeBackendErr(w http.ResponseWriter, err error) {
	var notOwned *ErrNotOwned
	var overloaded *OverloadedError
	switch {
	case errors.As(err, &notOwned):
		writeErr(w, http.StatusMisdirectedRequest, err.Error())
	case errors.Is(err, ErrFenced):
		// An epoch fence: the sender's placement view is stale. Nothing
		// was appended; the sender refreshes its manifest, not the batch.
		writeErr(w, http.StatusPreconditionFailed, err.Error())
	case errors.As(err, &overloaded):
		// The node shed the batch at admission: nothing was appended,
		// the sender retries the whole batch after the hint.
		w.Header().Set("Retry-After", strconv.Itoa(overloaded.RetryAfterSeconds))
		writeErr(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, store.ErrNotFound):
		writeErr(w, http.StatusNotFound, err.Error())
	case errors.Is(err, store.ErrExists):
		writeErr(w, http.StatusConflict, err.Error())
	default:
		writeErr(w, http.StatusBadRequest, err.Error())
	}
}

func (h *Handler) handleMeta(w http.ResponseWriter, _ *http.Request) {
	writeOK(w, h.backend.Meta())
}

func (h *Handler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Responses) == 0 {
		writeErr(w, http.StatusBadRequest, "submit batch is empty")
		return
	}
	if len(req.Charges) > 0 && len(req.Charges) != len(req.Responses) {
		writeErr(w, http.StatusBadRequest, "charges are not aligned with responses")
		return
	}
	// The epoch fence runs before admission, charging, or appending: a
	// batch routed under stale shard ownership must not change any state
	// on a node that knows better.
	if fb, ok := h.backend.(FencedBackend); ok {
		if err := fb.CheckFence(req.Shard, req.Epoch); err != nil {
			writeBackendErr(w, err)
			return
		}
	}
	// An overload-aware backend runs the batch through its admission
	// and rate-limit gates and answers per record; with both gates off
	// its reply is byte-identical to the plain paths below.
	if ab, ok := h.backend.(AdmittedBackend); ok {
		res, err := ab.AppendShardBatchAdmitted(req.Shard, req.Responses, req.Charges)
		if err != nil {
			var pe *PartialAppendError
			if errors.As(err, &pe) {
				w.Header().Set(AppendedHeader, strconv.Itoa(pe.Appended))
				writeBackendErr(w, pe.Err)
				return
			}
			writeBackendErr(w, err)
			return
		}
		writeOK(w, res)
		return
	}
	if len(req.Charges) > 0 {
		if len(req.Charges) != len(req.Responses) {
			writeErr(w, http.StatusBadRequest, "charges are not aligned with responses")
			return
		}
		cb, ok := h.backend.(ChargedBackend)
		if !ok {
			writeErr(w, http.StatusBadRequest, "this node does not accept piggybacked budget charges")
			return
		}
		res, err := cb.AppendShardBatchCharged(req.Shard, req.Responses, req.Charges)
		if err != nil {
			writeBackendErr(w, err)
			return
		}
		writeOK(w, res)
		return
	}
	counts, err := h.backend.AppendShardBatch(req.Shard, req.Responses)
	if err != nil {
		// Report the partial progress with the error: the counted
		// prefix is durable, the sender must not resubmit it.
		w.Header().Set(AppendedHeader, strconv.Itoa(len(counts)))
		writeBackendErr(w, err)
		return
	}
	writeOK(w, SubmitResult{Appended: len(counts), Stored: counts})
}

func (h *Handler) handleScan(w http.ResponseWriter, r *http.Request) {
	shard, ok := pathShard(w, r)
	if !ok {
		return
	}
	surveyID := r.URL.Query().Get("survey")
	from, err := strconv.ParseUint(qDefault(r, "from", "0"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad from cursor")
		return
	}
	max, err := strconv.Atoi(qDefault(r, "max", "1024"))
	if err != nil || max <= 0 {
		writeErr(w, http.StatusBadRequest, "bad max")
		return
	}
	if max > maxScanPage {
		max = maxScanPage
	}
	batch := ScanBatch{NextSeq: from}
	scanErr := h.backend.ScanShard(shard, surveyID, from, func(seq uint64, resp *survey.Response) error {
		batch.Records = append(batch.Records, ScanRecord{Seq: seq, Response: *resp})
		batch.NextSeq = seq
		if len(batch.Records) >= max {
			return errPageFull
		}
		return nil
	})
	if scanErr != nil && !errors.Is(scanErr, errPageFull) {
		writeBackendErr(w, scanErr)
		return
	}
	batch.More = errors.Is(scanErr, errPageFull)
	writeMaybeFramed(w, r, batch)
}

// errPageFull aborts a scan once a page is full.
var errPageFull = errors.New("shardrpc: page full")

func (h *Handler) handleCount(w http.ResponseWriter, r *http.Request) {
	shard, ok := pathShard(w, r)
	if !ok {
		return
	}
	writeOK(w, CountResult{Count: h.backend.CountShard(shard, r.URL.Query().Get("survey"))})
}

func (h *Handler) handlePartial(w http.ResponseWriter, r *http.Request) {
	shard, ok := pathShard(w, r)
	if !ok {
		return
	}
	have, err := strconv.ParseUint(qDefault(r, "have", "0"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad have cursor")
		return
	}
	p, err := h.backend.PartialState(shard, r.URL.Query().Get("survey"), have)
	if err != nil {
		writeBackendErr(w, err)
		return
	}
	writeOK(w, p)
}

func (h *Handler) handleTail(w http.ResponseWriter, r *http.Request) {
	shard, ok := pathShard(w, r)
	if !ok {
		return
	}
	epoch, err := strconv.ParseUint(qDefault(r, "epoch", "0"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad epoch")
		return
	}
	offset, err := strconv.ParseUint(qDefault(r, "offset", "0"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad offset")
		return
	}
	max, err := strconv.Atoi(qDefault(r, "max", "1024"))
	if err != nil || max <= 0 {
		writeErr(w, http.StatusBadRequest, "bad max")
		return
	}
	if max > maxScanPage {
		max = maxScanPage
	}
	batch, err := h.backend.Tail(shard, epoch, offset, max, r.URL.Query().Get("follower"))
	if err != nil {
		writeBackendErr(w, err)
		return
	}
	writeMaybeFramed(w, r, batch)
}

func (h *Handler) handleSurveys(w http.ResponseWriter, _ *http.Request) {
	svs, err := h.backend.Surveys()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeOK(w, svs)
}

func (h *Handler) handleSurvey(w http.ResponseWriter, r *http.Request) {
	sv, err := h.backend.Survey(r.PathValue("id"))
	if err != nil {
		writeBackendErr(w, err)
		return
	}
	writeOK(w, sv)
}

func (h *Handler) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req PublishRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Survey == nil {
		writeErr(w, http.StatusBadRequest, "publish request without a survey")
		return
	}
	var err error
	if req.Replace {
		err = h.backend.ReplaceSurvey(req.Survey)
	} else {
		err = h.backend.PutSurvey(req.Survey)
	}
	if err != nil {
		writeBackendErr(w, err)
		return
	}
	writeOK(w, map[string]string{"id": req.Survey.ID})
}

// ---------------------------------------------------------------------------
// Small HTTP helpers (the transport is internal; bodies are bounded by
// the node's front proxy or the in-process client, so no MaxBytesReader
// ceremony beyond a sane cap).

const maxBodyBytes = 32 << 20 // submit batches dominate; 32 MiB is generous

func pathShard(w http.ResponseWriter, r *http.Request) (int, bool) {
	shard, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || shard < 0 {
		writeErr(w, http.StatusBadRequest, "bad shard index")
		return 0, false
	}
	return shard, true
}

func qDefault(r *http.Request, key, def string) string {
	if v := r.URL.Query().Get(key); v != "" {
		return v
	}
	return def
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return false
	}
	_, _ = io.Copy(io.Discard, body)
	return true
}

// writeOK encodes through a pooled buffer: response bodies are the
// node's half of the shardrpc hot paths (snapshot and submit replies),
// and encoding straight into the ResponseWriter would allocate the
// encoder's scratch per request instead of reusing it.
func writeOK(w http.ResponseWriter, v any) {
	buf, err := encodeJSON(v)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
	putBuf(buf)
}

// writeMaybeFramed answers the bulk read paths (tail shipping, replica
// bootstrap scans): callers that negotiated codec=binary get the JSON
// body compressed into one blockio wire frame, marked by its content
// type; everyone else (and every older peer) gets plain JSON. The
// negotiation is per request, so mixed-version clusters keep working.
func writeMaybeFramed(w http.ResponseWriter, r *http.Request, v any) {
	if r.URL.Query().Get("codec") != blockio.CodecBinary {
		writeOK(w, v)
		return
	}
	buf, err := encodeJSON(v)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	frame, err := blockio.EncodeFrame(buf.Bytes())
	putBuf(buf)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "frame response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", blockio.FrameContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(frame)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
