// Package shardrpc is Loki's compact internal HTTP transport between
// cluster roles: the frontend routes submissions to the nodes owning
// each shard and merges per-shard partial aggregates at query time;
// read replicas tail a node's append journal (WAL shipping with a shard
// epoch + offset) and serve read-only scans and aggregates.
//
// The wire is JSON over HTTP — the same operational surface as the
// public API (curl-able, proxy-friendly), but a distinct, token-guarded
// namespace with its own stability contract:
//
//	POST /shardrpc/v1/submit                    batch append to one shard
//	GET  /shardrpc/v1/shards/{shard}/scan       cursor scan (paged)
//	GET  /shardrpc/v1/shards/{shard}/count      per-shard response count
//	GET  /shardrpc/v1/shards/{shard}/partial    partial accumulator state
//	                                            (conditional: ?have=cursor
//	                                            answers not-modified/delta)
//	GET  /shardrpc/v1/shards/{shard}/tail       WAL-tail shipping
//	                                            (?follower=id registers a
//	                                            truncation ack)
//	GET  /shardrpc/v1/meta                      shard ownership map
//	GET  /shardrpc/v1/surveys                   survey definitions
//	GET  /shardrpc/v1/surveys/{id}              one survey definition
//	POST /shardrpc/v1/surveys                   publish/republish broadcast
//
// Shard indices on this surface are always global (the cluster's shard
// space); a node translates to its local subset and rejects shards it
// does not own with 421 (misdirected request), which a frontend treats
// as a placement-map bug, never retries.
package shardrpc

import (
	"errors"
	"fmt"

	"loki/internal/aggregate"
	"loki/internal/budget"
	"loki/internal/shardset"
	"loki/internal/survey"
)

// Meta describes a node's place in the cluster: the size of the global
// shard space and the slice of it this node owns.
type Meta struct {
	TotalShards int   `json:"total_shards"`
	OwnedShards []int `json:"owned_shards"`
}

// SubmitRequest is a batch append to one global shard. Responses must
// already be validated by the sender against the survey definition; the
// node re-validates against its replicated copy before appending, so a
// frontend/node definition skew surfaces as a 400, not silent
// corruption.
type SubmitRequest struct {
	Shard     int               `json:"shard"`
	Responses []survey.Response `json:"responses"`
	// Epoch is the placement epoch the sender routed under — the
	// fencing token from the shared placement manifest. A node that has
	// applied a newer manifest refuses the batch with FencedError (412)
	// before any state changes: after a promotion, a frontend still
	// routing to the demoted primary (or stamping the old epoch at the
	// new one) cannot land writes. Zero means the sender is not
	// manifest-routed (legacy positional -peers); such writes pass the
	// epoch comparison but are still refused wholesale by a demoted
	// node.
	Epoch uint64 `json:"epoch,omitempty"`
	// Charges, when present, piggybacks privacy-budget debits on the
	// submit round-trip: aligned 1:1 with Responses (an empty WorkerID
	// carries no charge), each debit is decided against the worker's
	// budget shard ON THE RECEIVING NODE before the append, so the
	// enforce-mode hot path stays one RPC instead of charge + submit.
	// The sender must route: every non-empty charge's worker hashes to
	// a budget shard the addressed node hosts (else 421). The receiving
	// backend must implement ChargedBackend.
	Charges []budget.Charge `json:"charges,omitempty"`
}

// SubmitResult acknowledges a durable batch.
//
// Two shapes share it. A plain batch (no Charges) keeps the original
// contract: Stored holds one count per durably appended response — a
// strict prefix of the request on error. A charged batch answers per
// request entry: Stored, Outcomes, ChargeErrs and AppendErrs are all
// aligned with the request's Responses, because a budget rejection in
// the middle of the batch means the durable set is no longer a prefix.
type SubmitResult struct {
	Appended int `json:"appended"`
	// Stored holds, per appended response, the shard's response count
	// for that response's survey right after its append — the submit
	// ack figure, free at append time. On a charged batch the slice is
	// request-aligned and zero where nothing was appended.
	Stored []int `json:"stored"`
	// Outcomes (charged batches only) carries each entry's budget
	// decision; a rejected entry was not appended. Zero-valued for
	// entries whose charge errored or that carried no charge.
	Outcomes []budget.Outcome `json:"outcomes,omitempty"`
	// ChargeErrs (charged batches only) reports entries whose debit
	// could not be decided. Enforce-mode entries with a charge error
	// were not appended (fail closed); log-mode entries were (fail
	// open, the miss is reported for the sender's logs).
	ChargeErrs []string `json:"charge_errs,omitempty"`
	// AppendErrs (charged batches only) reports entries admitted by the
	// ledger whose append then failed; their charges were refunded on
	// the node before the reply.
	AppendErrs []string `json:"append_errs,omitempty"`
	// Throttled, when present, is aligned with the request's Responses
	// and marks entries the node's per-requester rate limit refused —
	// they were not appended and should be retried after
	// RetryAfterSeconds. A reply with Throttled set is request-aligned
	// throughout (Stored, and AppendErrs when appends failed), because
	// a throttled entry in the middle of the batch means the durable
	// set is no longer a prefix. Absent on nodes without rate limiting.
	Throttled []bool `json:"throttled,omitempty"`
	// RetryAfterSeconds is the back-off hint for the Throttled entries.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// AppendedHeader is the response header a failed submit carries: how
// many leading records of the batch were durably appended before the
// failure. Senders must not resubmit that prefix.
const AppendedHeader = "X-Shardrpc-Appended"

// ScanRecord is one response with its per-shard sequence number.
type ScanRecord struct {
	Seq      uint64          `json:"seq"`
	Response survey.Response `json:"response"`
}

// ScanBatch is one page of a cursor scan.
type ScanBatch struct {
	Records []ScanRecord `json:"records,omitempty"`
	// NextSeq resumes the scan (the last delivered seq, or the request
	// cursor when the page is empty).
	NextSeq uint64 `json:"next_seq"`
	// More reports whether the shard may hold records beyond this page.
	More bool `json:"more"`
}

// CountResult carries a per-shard response count.
type CountResult struct {
	Count int `json:"count"`
}

// Partial is one shard's partial accumulator for a survey: the fold
// state the frontend Merges at query time, plus the coordinates needed
// to trust it (the per-shard cursor it covers and the definition
// fingerprint it was folded under).
//
// The fetch is conditional: the request carries the cursor the caller
// already holds (`have`), and the node answers with the cheapest
// response that brings the caller current —
//
//   - NotModified (no state): the shard cursor equals have; the
//     caller's cached copy is already exact.
//   - Delta (From == have): State is the fold of only the responses
//     with seq in (From, Cursor] — the caller Merges it into its cached
//     accumulator instead of replacing it. O(new responses) to build,
//     O(questions × levels) on the wire like any snapshot.
//   - Full (neither flag): State covers seq [1, Cursor]; the caller
//     replaces its cached copy. This is the have=0 cold fetch and the
//     resync path when the caller's cursor is ahead of the shard (the
//     shard store was rebuilt).
type Partial struct {
	SurveyID    string                      `json:"survey_id"`
	Shard       int                         `json:"shard"`
	Fingerprint string                      `json:"fingerprint"`
	Cursor      uint64                      `json:"cursor"`
	State       *aggregate.AccumulatorState `json:"state,omitempty"`
	// NotModified reports the shard cursor equals the request's have
	// cursor; no state is shipped.
	NotModified bool `json:"not_modified,omitempty"`
	// Delta reports State covers only (From, Cursor]; the caller merges
	// it over a cached copy whose cursor is exactly From.
	Delta bool   `json:"delta,omitempty"`
	From  uint64 `json:"from,omitempty"`
	// Stale marks state served by a replica that has not been promoted:
	// it may lag the failed primary's last durable appends. Frontends
	// propagate the mark to their admin surface so degraded reads are
	// labeled, never guessed.
	Stale bool `json:"stale,omitempty"`
}

// PublishRequest broadcasts a survey definition. Replace selects the
// republish path (overwrite an existing definition).
type PublishRequest struct {
	Survey  *survey.Survey `json:"survey"`
	Replace bool           `json:"replace,omitempty"`
}

// Backend is what a cluster node exposes through a Handler. The server
// package's Node implements it over a journaling shardset.Local plus
// the node's live partial accumulators.
type Backend interface {
	// Meta reports the node's shard ownership.
	Meta() Meta
	// AppendShardBatch durably appends a routed batch to a global
	// shard in one durability round, returning per-response stored
	// counts. On error the returned prefix covers the responses that
	// were durably appended before the failure.
	AppendShardBatch(shard int, rs []survey.Response) ([]int, error)
	// ScanShard streams one global shard's slice of a survey beyond a
	// per-shard cursor.
	ScanShard(shard int, surveyID string, fromSeq uint64, fn func(seq uint64, r *survey.Response) error) error
	// CountShard returns one global shard's response count.
	CountShard(shard int, surveyID string) int
	// PartialState returns the shard's current partial accumulator for
	// the survey, caught up to the shard's latest append. have is the
	// per-shard cursor the caller already holds (0 = none): the node
	// answers not-modified, a delta past have, or a full snapshot —
	// see Partial.
	PartialState(shard int, surveyID string, have uint64) (*Partial, error)
	// Tail serves WAL-tail shipping for one global shard. A non-empty
	// follower id registers the caller for journal-truncation
	// accounting: the offset it sends is its ack (everything before it
	// is applied), and the journal retains entries every registered
	// follower still needs.
	Tail(shard int, epoch, offset uint64, max int, follower string) (*shardset.TailBatch, error)
	// PutSurvey / ReplaceSurvey / Survey / Surveys mirror the survey
	// metadata surface (replicated to every shard by the backend).
	PutSurvey(sv *survey.Survey) error
	ReplaceSurvey(sv *survey.Survey) error
	Survey(id string) (*survey.Survey, error)
	Surveys() ([]*survey.Survey, error)
}

// ChargedBackend is the optional submit-with-charges surface: a node
// that hosts budget shards next to its response shards can decide a
// batch's debits and append its admitted responses in one handler call
// — the transport-level fusion that keeps the frontend's enforce-mode
// hot path at one round-trip. Contract per request entry i:
//
//   - charge i (when its WorkerID is non-empty) routes to a budget
//     shard this node hosts, or the whole call fails with ErrNotOwned
//     before any state changes;
//   - a rejected or (enforce-mode) undecided charge excludes entry i
//     from the append;
//   - an entry whose append fails after an accepted charge is refunded
//     before the reply.
//
// The result is request-aligned (see SubmitResult); append failures
// travel per entry inside a successful reply, not as a transport error,
// because the durable set of a charged batch is not a request prefix.
type ChargedBackend interface {
	AppendShardBatchCharged(shard int, rs []survey.Response, charges []budget.Charge) (*SubmitResult, error)
}

// AdmittedBackend is the optional overload-aware submit surface: a
// node with admission control or per-requester rate limiting runs the
// whole batch through its gates and answers with per-record verdicts
// (see SubmitResult.Throttled). A shed batch fails with
// OverloadedError before any state changes; a partially appended plain
// batch fails with PartialAppendError so the Handler can keep the
// AppendedHeader wire contract. With both controls off the result is
// identical to the plain AppendShardBatch / AppendShardBatchCharged
// paths.
type AdmittedBackend interface {
	AppendShardBatchAdmitted(shard int, rs []survey.Response, charges []budget.Charge) (*SubmitResult, error)
}

// OverloadedError reports a node that shed the whole batch at
// admission (queue full): nothing was appended, the sender should
// retry the entire batch after RetryAfterSeconds. The Handler maps it
// to 429 with a Retry-After header; the Client maps the 429 back.
type OverloadedError struct{ RetryAfterSeconds int }

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("shardrpc: node overloaded, retry after %ds", e.RetryAfterSeconds)
}

// ThrottledError reports one record refused by a node's per-requester
// rate limit (it was not appended). The batcher settles throttled
// entries with it so the caller's Retry-After-aware backoff engages.
type ThrottledError struct{ RetryAfterSeconds int }

// Error implements error.
func (e *ThrottledError) Error() string {
	return fmt.Sprintf("shardrpc: rate limited, retry after %ds", e.RetryAfterSeconds)
}

// PartialAppendError wraps a plain batch's append failure with its
// durable prefix length, so an AdmittedBackend can report partial
// progress through the same AppendedHeader contract the plain path
// uses.
type PartialAppendError struct {
	Appended int
	Err      error
}

// Error implements error.
func (e *PartialAppendError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying append failure.
func (e *PartialAppendError) Unwrap() error { return e.Err }

// ErrNotOwned is the sentinel a Backend returns from shard-addressed
// calls for global shards outside its owned subset; the Handler maps it
// to 421.
type ErrNotOwned struct{ Shard int }

// Error implements error.
func (e *ErrNotOwned) Error() string {
	return fmt.Sprintf("shardrpc: shard %d not owned by this node", e.Shard)
}

// ErrFenced is the sentinel inside every epoch-fencing refusal, local
// or remote: errors.Is(err, ErrFenced) answers "was this write refused
// because the sender's view of shard ownership is stale?" uniformly on
// both sides of the wire.
var ErrFenced = errors.New("shardrpc: write fenced by shard placement epoch")

// FencedError refuses a write whose placement epoch is stale, or any
// write addressed to a shard the receiver no longer (or does not yet)
// own the writes for: a demoted primary fences everything, an
// unpromoted replica fences everything, a current primary fences
// epochs older than the manifest it has applied. Nothing was appended.
// The Handler maps it to 412 (precondition failed); the Client maps
// the 412 back. The sender's correct move is to refresh its placement
// manifest and re-route — the frontend surfaces it to workers as a 503
// with Retry-After while the failover completes.
type FencedError struct {
	Shard int
	// Epoch is the stale epoch the write carried (0 = unstamped).
	Epoch uint64
	// Current is the receiver's epoch for the shard, when it has one.
	Current uint64
}

// Error implements error.
func (e *FencedError) Error() string {
	return fmt.Sprintf("shardrpc: shard %d write fenced (sender epoch %d, current %d)", e.Shard, e.Epoch, e.Current)
}

// Unwrap ties every fencing refusal to the ErrFenced sentinel.
func (e *FencedError) Unwrap() error { return ErrFenced }

// FencedBackend is the optional epoch-fencing surface: a backend that
// tracks per-shard placement epochs (a node applying manifest updates,
// a replica with promoted shards) checks every submit's epoch stamp
// before the batch is dispatched. The Handler consults it first, so a
// fenced batch is refused before admission, charging, or appending.
type FencedBackend interface {
	// CheckFence returns nil when the shard accepts writes under the
	// given epoch stamp, a *FencedError when it does not, and may
	// return *ErrNotOwned for shards outside the backend's subset.
	CheckFence(shard int, epoch uint64) error
}

// FailoverError reports a shard whose primary the frontend currently
// believes dead and whose replica has not been promoted: writes have
// nowhere safe to land. Nothing was sent. The server maps it to a 503
// with Retry-After — the worker retries once promotion (seconds, not
// minutes) swaps the manifest.
type FailoverError struct{ Shard int }

// Error implements error.
func (e *FailoverError) Error() string {
	return fmt.Sprintf("shardrpc: shard %d failed over, writes fenced until promotion", e.Shard)
}

// IsTransportError reports whether a Client call failed before an HTTP
// status came back — connection refused/reset, timeout, DNS: the
// signature of a dead or unreachable peer, as opposed to a peer that
// answered with an error. The failover detector treats it as evidence
// the node is down; every status-carrying failure unwraps through
// remoteError instead.
func IsTransportError(err error) bool {
	if err == nil {
		return false
	}
	var re *remoteError
	return !errors.As(err, &re)
}
