package shardrpc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"loki/internal/budget"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// Remote is the cluster-side shardset.ShardRouter: every shard-addressed
// call is forwarded to the node owning that global shard, survey
// metadata broadcasts to every node. It is what a frontend hands the
// server instead of a local store.
//
// Survey definitions are read-heavy (every submit resolves one), so
// Remote keeps a short-TTL read-through cache; publishes and
// republishes invalidate it. The TTL bounds frontend/node skew for
// definitions changed behind the frontend's back (an operator
// publishing directly to a node), which nodes tolerate anyway — they
// re-validate every append.
type Remote struct {
	clients   []*Client
	placement []int // placement[globalShard] = index into clients
	// batchers group-batch the submit path per shard (see batcher.go).
	batchers []*shardBatcher
	// budgetPlacement, when non-nil, maps budget shards to client
	// indices (EnablePiggybackCharges): the colocation test for riding
	// a charge on the submit RPC instead of a separate charge RPC.
	budgetPlacement []int

	metaMu    sync.Mutex
	metaTTL   time.Duration
	metaAt    time.Time
	metaList  []*survey.Survey
	metaIndex map[string]*survey.Survey
}

// RoundRobinPlacement spreads a global shard space across n nodes:
// shard i lives on node i mod n. It is the canonical cluster layout
// cmd/loki-server and the cluster bench use; anything fancier (weighted
// placement, shard moves) changes only this function's caller.
func RoundRobinPlacement(totalShards, nodes int) [][]int {
	owned := make([][]int, nodes)
	for s := 0; s < totalShards; s++ {
		owned[s%nodes] = append(owned[s%nodes], s)
	}
	return owned
}

// NewRemote builds a remote router over one client per node, with
// placement[globalShard] naming the owning node's client index.
func NewRemote(clients []*Client, placement []int) (*Remote, error) {
	if len(clients) == 0 {
		return nil, errors.New("shardrpc: remote router needs at least one node client")
	}
	if len(placement) == 0 {
		return nil, errors.New("shardrpc: remote router needs a placement map")
	}
	for s, n := range placement {
		if n < 0 || n >= len(clients) {
			return nil, fmt.Errorf("shardrpc: placement maps shard %d to node %d of %d", s, n, len(clients))
		}
	}
	r := &Remote{clients: clients, placement: placement, metaTTL: time.Second}
	r.batchers = make([]*shardBatcher, len(placement))
	for s := range r.batchers {
		r.batchers[s] = newShardBatcher(s, clients[placement[s]])
	}
	return r, nil
}

// NewRemoteRoundRobin wires the canonical layout: totalShards spread
// round-robin across the given node clients. The placement is derived
// from RoundRobinPlacement — the same function nodes compute their
// ownership with — so routing and ownership cannot drift apart.
func NewRemoteRoundRobin(clients []*Client, totalShards int) (*Remote, error) {
	if len(clients) == 0 {
		return nil, errors.New("shardrpc: remote router needs at least one node client")
	}
	placement := make([]int, totalShards)
	for node, owned := range RoundRobinPlacement(totalShards, len(clients)) {
		for _, s := range owned {
			placement[s] = node
		}
	}
	return NewRemote(clients, placement)
}

// Shards implements shardset.ShardRouter.
func (r *Remote) Shards() int { return len(r.placement) }

// GlobalID implements shardset.ShardRouter: a frontend's shard space
// is the global one.
func (r *Remote) GlobalID(shard int) int { return shard }

// Route implements shardset.ShardRouter with the canonical hash.
func (r *Remote) Route(surveyID, workerID string) int {
	return shardset.Route(surveyID, workerID, len(r.placement))
}

func (r *Remote) clientFor(shard int) (*Client, error) {
	if shard < 0 || shard >= len(r.placement) {
		return nil, fmt.Errorf("shardrpc: shard %d outside [0, %d)", shard, len(r.placement))
	}
	return r.clients[r.placement[shard]], nil
}

// invalidateMeta drops the survey cache (after any publish).
func (r *Remote) invalidateMeta() {
	r.metaMu.Lock()
	r.metaAt = time.Time{}
	r.metaList = nil
	r.metaIndex = nil
	r.metaMu.Unlock()
}

// refreshMetaLocked refetches the survey list when the cache is stale.
// Caller holds metaMu.
func (r *Remote) refreshMetaLocked() error {
	if r.metaIndex != nil && time.Since(r.metaAt) < r.metaTTL {
		return nil
	}
	svs, err := r.clients[0].Surveys()
	if err != nil {
		return err
	}
	idx := make(map[string]*survey.Survey, len(svs))
	for _, sv := range svs {
		idx[sv.ID] = sv
	}
	r.metaList, r.metaIndex, r.metaAt = svs, idx, time.Now()
	return nil
}

// PutSurvey implements shardset.ShardRouter: broadcast to every node.
// A node that already holds the definition (a retried broadcast after
// a partial failure) is skipped but the broadcast continues, so a
// partial broadcast always converges; ErrExists surfaces only after
// every node has the definition, preserving the duplicate-publish
// contract.
func (r *Remote) PutSurvey(sv *survey.Survey) error {
	defer r.invalidateMeta()
	var exists error
	for _, c := range r.clients {
		if err := c.Publish(sv, false); err != nil {
			if errors.Is(err, store.ErrExists) {
				exists = err
				continue
			}
			return err
		}
	}
	return exists
}

// ReplaceSurvey implements shardset.ShardRouter: broadcast to every node.
func (r *Remote) ReplaceSurvey(sv *survey.Survey) error {
	defer r.invalidateMeta()
	for _, c := range r.clients {
		if err := c.Publish(sv, true); err != nil {
			return err
		}
	}
	return nil
}

// Survey implements shardset.ShardRouter through the metadata cache.
func (r *Remote) Survey(id string) (*survey.Survey, error) {
	r.metaMu.Lock()
	defer r.metaMu.Unlock()
	if err := r.refreshMetaLocked(); err != nil {
		return nil, err
	}
	sv, ok := r.metaIndex[id]
	if !ok {
		return nil, fmt.Errorf("shardrpc: survey %q: %w", id, store.ErrNotFound)
	}
	return sv.Clone(), nil
}

// Surveys implements shardset.ShardRouter through the metadata cache.
func (r *Remote) Surveys() ([]*survey.Survey, error) {
	r.metaMu.Lock()
	defer r.metaMu.Unlock()
	if err := r.refreshMetaLocked(); err != nil {
		return nil, err
	}
	out := make([]*survey.Survey, len(r.metaList))
	for i, sv := range r.metaList {
		out[i] = sv.Clone()
	}
	return out, nil
}

// Append implements shardset.ShardRouter.
func (r *Remote) Append(resp *survey.Response) (int, error) {
	return r.AppendShard(r.Route(resp.SurveyID, resp.WorkerID), resp)
}

// AppendShard implements shardset.ShardRouter through the shard's
// group batcher: concurrent appends to one shard coalesce into batch
// RPCs, one round-trip amortized across every waiter.
func (r *Remote) AppendShard(shard int, resp *survey.Response) (int, error) {
	if shard < 0 || shard >= len(r.placement) {
		return 0, fmt.Errorf("shardrpc: shard %d outside [0, %d)", shard, len(r.placement))
	}
	return r.batchers[shard].append(resp)
}

// EnablePiggybackCharges tells the router the cluster's budget shard
// count so it can fuse a worker's budget debit into the submit RPC
// whenever the worker's budget shard lives on the same node as the
// response's shard (always, on a one-node cluster; 1/nodes of the
// time under round-robin placement otherwise). The derived placement
// is the canonical round-robin layout — the same one RemoteCharger and
// the nodes compute — so the colocation test cannot drift from where
// charges actually land.
func (r *Remote) EnablePiggybackCharges(budgetShards int) error {
	if budgetShards <= 0 {
		return fmt.Errorf("shardrpc: piggyback charges need a positive budget shard count, got %d", budgetShards)
	}
	bp := make([]int, budgetShards)
	for node, owned := range RoundRobinPlacement(budgetShards, len(r.clients)) {
		for _, s := range owned {
			bp[s] = node
		}
	}
	r.budgetPlacement = bp
	return nil
}

// CanPiggybackCharge reports whether a submit routed to the given
// response shard can carry workerID's budget charge in the same RPC:
// piggybacking is enabled and the worker's budget shard is owned by
// the node that owns the response shard.
func (r *Remote) CanPiggybackCharge(shard int, workerID string) bool {
	if r.budgetPlacement == nil || shard < 0 || shard >= len(r.placement) {
		return false
	}
	return r.budgetPlacement[budget.Route(workerID, len(r.budgetPlacement))] == r.placement[shard]
}

// AppendCharged submits one response with its budget charge fused into
// the same group-batched RPC — the owning node decides the debit and
// appends in one handler call, so the enforce-mode hot path costs the
// same single round-trip as an uncharged submit. Callers must check
// CanPiggybackCharge first. Error vocabulary: budget.ErrExhausted (the
// charge was refused; nothing stored), budget.ErrUndecided (enforce
// charge undecidable; nothing stored), anything else an append failure
// whose charge the node already refunded.
func (r *Remote) AppendCharged(shard int, resp *survey.Response, ch budget.Charge) (int, budget.Outcome, error) {
	if shard < 0 || shard >= len(r.placement) {
		return 0, budget.Outcome{}, fmt.Errorf("shardrpc: shard %d outside [0, %d)", shard, len(r.placement))
	}
	d := r.batchers[shard].appendCharged(resp, ch)
	return d.stored, d.out, d.err
}

// ScanShard implements shardset.ShardRouter by paging through the
// owning node's scan endpoint.
func (r *Remote) ScanShard(shard int, surveyID string, fromSeq uint64, fn func(seq uint64, resp *survey.Response) error) error {
	c, err := r.clientFor(shard)
	if err != nil {
		return err
	}
	cursor := fromSeq
	for {
		batch, err := c.Scan(shard, surveyID, cursor, maxScanPage)
		if err != nil {
			return err
		}
		for i := range batch.Records {
			rec := &batch.Records[i]
			if err := fn(rec.Seq, &rec.Response); err != nil {
				return err
			}
		}
		if !batch.More {
			return nil
		}
		cursor = batch.NextSeq
	}
}

// CountShard implements shardset.ShardRouter. The interface cannot
// carry an error; an unreachable node reads as zero, matching how a
// local router reports an unknown survey.
func (r *Remote) CountShard(shard int, surveyID string) int {
	c, err := r.clientFor(shard)
	if err != nil {
		return 0
	}
	n, err := c.Count(shard, surveyID)
	if err != nil {
		return 0
	}
	return n
}

// Partial fetches one shard's full partial accumulator from its owning
// node — the frontend's merge-at-query-time read path.
func (r *Remote) Partial(shard int, surveyID string) (*Partial, error) {
	return r.PartialSince(shard, surveyID, 0)
}

// PartialSince is the conditional fetch behind the frontend's partial
// cache: the owning node answers not-modified, a delta past have, or a
// full snapshot.
func (r *Remote) PartialSince(shard int, surveyID string, have uint64) (*Partial, error) {
	c, err := r.clientFor(shard)
	if err != nil {
		return nil, err
	}
	return c.PartialSince(shard, surveyID, have)
}

// Close implements shardset.ShardRouter. The HTTP clients hold no
// resources worth tearing down.
func (r *Remote) Close() error { return nil }

var _ shardset.ShardRouter = (*Remote)(nil)
