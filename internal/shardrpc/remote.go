package shardrpc

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/budget"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// Remote is the cluster-side shardset.ShardRouter: every shard-addressed
// call is forwarded to the node owning that global shard, survey
// metadata broadcasts to every node. It is what a frontend hands the
// server instead of a local store.
//
// Survey definitions are read-heavy (every submit resolves one), so
// Remote keeps a short-TTL read-through cache; publishes and
// republishes invalidate it. The TTL bounds frontend/node skew for
// definitions changed behind the frontend's back (an operator
// publishing directly to a node), which nodes tolerate anyway — they
// re-validate every append.
type Remote struct {
	// clients and placement are guarded by routeMu: manifest application
	// can grow the client list (new replicas/primaries) and repoint
	// placement, both hot-swapped under the lock. A positional router
	// never mutates them, so the RLock on the hot paths is uncontended.
	clients   []*Client
	placement []int // placement[globalShard] = index into clients
	// batchers group-batch the submit path per shard (see batcher.go).
	batchers []*shardBatcher
	// budgetPlacement, when non-nil, maps budget shards to client
	// indices (EnablePiggybackCharges): the colocation test for riding
	// a charge on the submit RPC instead of a separate charge RPC.
	budgetPlacement []int

	metaMu    sync.Mutex
	metaTTL   time.Duration
	metaAt    time.Time
	metaList  []*survey.Survey
	metaIndex map[string]*survey.Survey

	// Failover state (see failover.go). token and httpc let manifest
	// application dial nodes the router has no client for yet; routes is
	// the manifest-derived routing table (nil = positional routing).
	token string
	httpc *http.Client

	routeMu         sync.RWMutex
	routes          []shardRoute
	manifestVersion int64
	clientsByURL    map[string]*Client

	healthMu    sync.Mutex
	healthByURL map[string]*nodeHealth

	staleReads   atomic.Uint64
	fencedWrites atomic.Uint64
	onFenced     atomic.Value // func()

	probeOnce sync.Once
	probeStop chan struct{}
	probeDone chan struct{}
}

// RoundRobinPlacement spreads a global shard space across n nodes:
// shard i lives on node i mod n. It is the canonical cluster layout
// cmd/loki-server and the cluster bench use; anything fancier (weighted
// placement, shard moves) changes only this function's caller.
func RoundRobinPlacement(totalShards, nodes int) [][]int {
	owned := make([][]int, nodes)
	for s := 0; s < totalShards; s++ {
		owned[s%nodes] = append(owned[s%nodes], s)
	}
	return owned
}

// NewRemote builds a remote router over one client per node, with
// placement[globalShard] naming the owning node's client index.
func NewRemote(clients []*Client, placement []int) (*Remote, error) {
	if len(clients) == 0 {
		return nil, errors.New("shardrpc: remote router needs at least one node client")
	}
	if len(placement) == 0 {
		return nil, errors.New("shardrpc: remote router needs a placement map")
	}
	for s, n := range placement {
		if n < 0 || n >= len(clients) {
			return nil, fmt.Errorf("shardrpc: placement maps shard %d to node %d of %d", s, n, len(clients))
		}
	}
	r := &Remote{clients: clients, placement: placement, metaTTL: time.Second}
	r.batchers = make([]*shardBatcher, len(placement))
	for s := range r.batchers {
		r.batchers[s] = newShardBatcher(s, r)
	}
	return r, nil
}

// NewRemoteRoundRobin wires the canonical layout: totalShards spread
// round-robin across the given node clients. The placement is derived
// from RoundRobinPlacement — the same function nodes compute their
// ownership with — so routing and ownership cannot drift apart.
func NewRemoteRoundRobin(clients []*Client, totalShards int) (*Remote, error) {
	if len(clients) == 0 {
		return nil, errors.New("shardrpc: remote router needs at least one node client")
	}
	placement := make([]int, totalShards)
	for node, owned := range RoundRobinPlacement(totalShards, len(clients)) {
		for _, s := range owned {
			placement[s] = node
		}
	}
	return NewRemote(clients, placement)
}

// Shards implements shardset.ShardRouter.
func (r *Remote) Shards() int { return len(r.placement) }

// GlobalID implements shardset.ShardRouter: a frontend's shard space
// is the global one.
func (r *Remote) GlobalID(shard int) int { return shard }

// Route implements shardset.ShardRouter with the canonical hash.
func (r *Remote) Route(surveyID, workerID string) int {
	return shardset.Route(surveyID, workerID, len(r.placement))
}

func (r *Remote) clientFor(shard int) (*Client, error) {
	if shard < 0 || shard >= len(r.placement) {
		return nil, fmt.Errorf("shardrpc: shard %d outside [0, %d)", shard, len(r.placement))
	}
	r.routeMu.RLock()
	defer r.routeMu.RUnlock()
	return r.clients[r.placement[shard]], nil
}

// readTargets orders one shard's read candidates: the primary first
// unless the detector believes it down, then the replicas. stale[i]
// marks candidates whose answers must carry the stale-read label
// (anything that is not the shard's primary). Positional routers get
// the single fixed client.
func (r *Remote) readTargets(shard int) (clients []*Client, stale []bool, err error) {
	rt, ok := r.routeFor(shard)
	if !ok {
		c, err := r.clientFor(shard)
		if err != nil {
			return nil, nil, err
		}
		return []*Client{c}, []bool{false}, nil
	}
	if !r.nodeDown(rt.primary.BaseURL()) {
		clients = append(clients, rt.primary)
		stale = append(stale, false)
	}
	for _, rep := range rt.replicas {
		clients = append(clients, rep)
		stale = append(stale, true)
	}
	if len(clients) == 0 {
		// Primary down and no replicas placed: reads have nowhere to go.
		clients = append(clients, rt.primary)
		stale = append(stale, false)
	}
	return clients, stale, nil
}

// invalidateMeta drops the survey cache (after any publish).
func (r *Remote) invalidateMeta() {
	r.metaMu.Lock()
	r.metaAt = time.Time{}
	r.metaList = nil
	r.metaIndex = nil
	r.metaMu.Unlock()
}

// refreshMetaLocked refetches the survey list when the cache is stale.
// Definitions are replicated to every node, so any reachable one can
// answer: believed-up nodes are tried first, every node as a last
// resort, so a dead first peer does not take survey resolution (and
// with it the whole submit path) down. Caller holds metaMu.
func (r *Remote) refreshMetaLocked() error {
	if r.metaIndex != nil && time.Since(r.metaAt) < r.metaTTL {
		return nil
	}
	clients := r.allClients()
	ordered := make([]*Client, 0, len(clients))
	for _, c := range clients {
		if !r.nodeDown(c.BaseURL()) {
			ordered = append(ordered, c)
		}
	}
	for _, c := range clients {
		if r.nodeDown(c.BaseURL()) {
			ordered = append(ordered, c)
		}
	}
	var lastErr error
	for _, c := range ordered {
		svs, err := c.Surveys()
		r.noteResult(c, err)
		if err != nil {
			lastErr = err
			if IsTransportError(err) {
				continue
			}
			return err
		}
		idx := make(map[string]*survey.Survey, len(svs))
		for _, sv := range svs {
			idx[sv.ID] = sv
		}
		r.metaList, r.metaIndex, r.metaAt = svs, idx, time.Now()
		return nil
	}
	return lastErr
}

// PutSurvey implements shardset.ShardRouter: broadcast to every node.
// A node that already holds the definition (a retried broadcast after
// a partial failure) is skipped but the broadcast continues, so a
// partial broadcast always converges; ErrExists surfaces only after
// every node has the definition, preserving the duplicate-publish
// contract.
func (r *Remote) PutSurvey(sv *survey.Survey) error {
	defer r.invalidateMeta()
	var exists error
	for _, c := range r.allClients() {
		if err := c.Publish(sv, false); err != nil {
			if errors.Is(err, store.ErrExists) {
				exists = err
				continue
			}
			return err
		}
	}
	return exists
}

// ReplaceSurvey implements shardset.ShardRouter: broadcast to every node.
func (r *Remote) ReplaceSurvey(sv *survey.Survey) error {
	defer r.invalidateMeta()
	for _, c := range r.allClients() {
		if err := c.Publish(sv, true); err != nil {
			return err
		}
	}
	return nil
}

// Survey implements shardset.ShardRouter through the metadata cache.
func (r *Remote) Survey(id string) (*survey.Survey, error) {
	r.metaMu.Lock()
	defer r.metaMu.Unlock()
	if err := r.refreshMetaLocked(); err != nil {
		return nil, err
	}
	sv, ok := r.metaIndex[id]
	if !ok {
		return nil, fmt.Errorf("shardrpc: survey %q: %w", id, store.ErrNotFound)
	}
	return sv.Clone(), nil
}

// Surveys implements shardset.ShardRouter through the metadata cache.
func (r *Remote) Surveys() ([]*survey.Survey, error) {
	r.metaMu.Lock()
	defer r.metaMu.Unlock()
	if err := r.refreshMetaLocked(); err != nil {
		return nil, err
	}
	out := make([]*survey.Survey, len(r.metaList))
	for i, sv := range r.metaList {
		out[i] = sv.Clone()
	}
	return out, nil
}

// Append implements shardset.ShardRouter.
func (r *Remote) Append(resp *survey.Response) (int, error) {
	return r.AppendShard(r.Route(resp.SurveyID, resp.WorkerID), resp)
}

// AppendShard implements shardset.ShardRouter through the shard's
// group batcher: concurrent appends to one shard coalesce into batch
// RPCs, one round-trip amortized across every waiter.
func (r *Remote) AppendShard(shard int, resp *survey.Response) (int, error) {
	if shard < 0 || shard >= len(r.placement) {
		return 0, fmt.Errorf("shardrpc: shard %d outside [0, %d)", shard, len(r.placement))
	}
	return r.batchers[shard].append(resp)
}

// EnablePiggybackCharges tells the router the cluster's budget shard
// count so it can fuse a worker's budget debit into the submit RPC
// whenever the worker's budget shard lives on the same node as the
// response's shard (always, on a one-node cluster; 1/nodes of the
// time under round-robin placement otherwise). The derived placement
// is the canonical round-robin layout — the same one RemoteCharger and
// the nodes compute — so the colocation test cannot drift from where
// charges actually land.
func (r *Remote) EnablePiggybackCharges(budgetShards int) error {
	if budgetShards <= 0 {
		return fmt.Errorf("shardrpc: piggyback charges need a positive budget shard count, got %d", budgetShards)
	}
	r.routeMu.RLock()
	nodes := len(r.clients)
	r.routeMu.RUnlock()
	bp := make([]int, budgetShards)
	for node, owned := range RoundRobinPlacement(budgetShards, nodes) {
		for _, s := range owned {
			bp[s] = node
		}
	}
	r.budgetPlacement = bp
	return nil
}

// CanPiggybackCharge reports whether a submit routed to the given
// response shard can carry workerID's budget charge in the same RPC:
// piggybacking is enabled and the worker's budget shard is owned by
// the node that owns the response shard.
func (r *Remote) CanPiggybackCharge(shard int, workerID string) bool {
	if r.budgetPlacement == nil || shard < 0 || shard >= len(r.placement) {
		return false
	}
	r.routeMu.RLock()
	owner := r.placement[shard]
	r.routeMu.RUnlock()
	return r.budgetPlacement[budget.Route(workerID, len(r.budgetPlacement))] == owner
}

// AppendCharged submits one response with its budget charge fused into
// the same group-batched RPC — the owning node decides the debit and
// appends in one handler call, so the enforce-mode hot path costs the
// same single round-trip as an uncharged submit. Callers must check
// CanPiggybackCharge first. Error vocabulary: budget.ErrExhausted (the
// charge was refused; nothing stored), budget.ErrUndecided (enforce
// charge undecidable; nothing stored), anything else an append failure
// whose charge the node already refunded.
func (r *Remote) AppendCharged(shard int, resp *survey.Response, ch budget.Charge) (int, budget.Outcome, error) {
	if shard < 0 || shard >= len(r.placement) {
		return 0, budget.Outcome{}, fmt.Errorf("shardrpc: shard %d outside [0, %d)", shard, len(r.placement))
	}
	d := r.batchers[shard].appendCharged(resp, ch)
	return d.stored, d.out, d.err
}

// ScanShard implements shardset.ShardRouter by paging through the
// owning node's scan endpoint. Under manifest routing a down primary
// fails over to the shard's replicas; the target is fixed at scan start
// (switching providers mid-scan could re-deliver records to a
// non-idempotent callback, so a primary dying mid-scan fails the scan
// and the caller retries onto the replica).
func (r *Remote) ScanShard(shard int, surveyID string, fromSeq uint64, fn func(seq uint64, resp *survey.Response) error) error {
	clients, _, err := r.readTargets(shard)
	if err != nil {
		return err
	}
	var lastErr error
	for _, c := range clients {
		cursor := fromSeq
		delivered := false
		for {
			batch, err := c.Scan(shard, surveyID, cursor, maxScanPage)
			r.noteResult(c, err)
			if err != nil {
				// Fail over only before anything was delivered: a fresh
				// start on the replica re-delivers nothing.
				if IsTransportError(err) && !delivered {
					lastErr = err
					break
				}
				return err
			}
			for i := range batch.Records {
				rec := &batch.Records[i]
				if err := fn(rec.Seq, &rec.Response); err != nil {
					return err
				}
				delivered = true
			}
			if !batch.More {
				return nil
			}
			cursor = batch.NextSeq
		}
	}
	return lastErr
}

// CountShard implements shardset.ShardRouter. The interface cannot
// carry an error; an unreachable shard (primary and replicas) reads as
// zero, matching how a local router reports an unknown survey.
func (r *Remote) CountShard(shard int, surveyID string) int {
	clients, _, err := r.readTargets(shard)
	if err != nil {
		return 0
	}
	for _, c := range clients {
		n, err := c.Count(shard, surveyID)
		r.noteResult(c, err)
		if err == nil {
			return n
		}
		if !IsTransportError(err) {
			return 0
		}
	}
	return 0
}

// Partial fetches one shard's full partial accumulator from its owning
// node — the frontend's merge-at-query-time read path.
func (r *Remote) Partial(shard int, surveyID string) (*Partial, error) {
	return r.PartialSince(shard, surveyID, 0)
}

// PartialSince is the conditional fetch behind the frontend's partial
// cache: the owning node answers not-modified, a delta past have, or a
// full snapshot. Under manifest routing a down (or just-died) primary
// fails over to the shard's replicas; a replica-served answer carries
// the Stale mark and bumps the stale-read counter — degraded reads are
// labeled, never guessed.
func (r *Remote) PartialSince(shard int, surveyID string, have uint64) (*Partial, error) {
	clients, stale, err := r.readTargets(shard)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i, c := range clients {
		p, err := c.PartialSince(shard, surveyID, have)
		r.noteResult(c, err)
		if err == nil {
			if stale[i] {
				p.Stale = true
				r.staleReads.Add(1)
			}
			return p, nil
		}
		lastErr = err
		if !IsTransportError(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// Close implements shardset.ShardRouter: stops the failover prober when
// one was started. The HTTP clients hold no resources worth tearing
// down.
func (r *Remote) Close() error {
	if r.probeStop != nil {
		select {
		case <-r.probeStop:
		default:
			close(r.probeStop)
		}
		<-r.probeDone
	}
	return nil
}

var _ shardset.ShardRouter = (*Remote)(nil)
