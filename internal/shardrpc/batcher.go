package shardrpc

import (
	"errors"
	"fmt"
	"sync"

	"loki/internal/budget"
	"loki/internal/survey"
)

// The remote router's submit path group-batches: while one submit RPC
// to a shard is in flight, concurrent appends for the same shard queue
// up and ship as the next batch — the transport-layer twin of the
// ingest store's WAL group commit. One HTTP round-trip then amortizes
// across every caller waiting in the same window, which is what lets a
// frontend saturate its nodes instead of paying a full round-trip per
// response. A lone append still ships immediately (the batcher never
// waits on a timer), so uncontended submit latency is one round-trip.
//
// Entries may carry a piggybacked budget charge (see AppendCharged on
// Remote): the batch then ships as a charged submit, and the node
// decides every debit before appending — the enforce-mode hot path at
// the same one round-trip as the plain one.

// maxSubmitBatch bounds one shipped batch; deeper queues ship as
// consecutive batches.
const maxSubmitBatch = 256

// pendingSubmit is one caller's routed response waiting for the next
// batch. charge, when non-nil, rides the same RPC. done receives
// exactly one result.
type pendingSubmit struct {
	resp   *survey.Response
	charge *budget.Charge
	done   chan submitDone
}

type submitDone struct {
	stored int
	out    budget.Outcome
	err    error
}

// shardBatcher owns one shard's submit queue and its single shipping
// goroutine (started lazily on the first append). The target node is
// resolved through the router at every ship, not bound at construction:
// a manifest swap (failover promotion) redirects the very next batch,
// and a shard whose primary is down fails its batches fast with
// FailoverError instead of burning a connection timeout per batch.
type shardBatcher struct {
	shard  int
	remote *Remote

	mu      sync.Mutex
	queue   []*pendingSubmit
	running bool
}

func newShardBatcher(shard int, remote *Remote) *shardBatcher {
	return &shardBatcher{shard: shard, remote: remote}
}

// append enqueues one response and blocks until its batch is durable on
// the node (or failed).
func (b *shardBatcher) append(resp *survey.Response) (int, error) {
	d := b.enqueue(&pendingSubmit{resp: resp, done: make(chan submitDone, 1)})
	return d.stored, d.err
}

// appendCharged enqueues one response with its budget charge and blocks
// until the node has decided the debit and appended (or refused) it.
func (b *shardBatcher) appendCharged(resp *survey.Response, ch budget.Charge) submitDone {
	return b.enqueue(&pendingSubmit{resp: resp, charge: &ch, done: make(chan submitDone, 1)})
}

func (b *shardBatcher) enqueue(p *pendingSubmit) submitDone {
	b.mu.Lock()
	b.queue = append(b.queue, p)
	if !b.running {
		b.running = true
		go b.run()
	}
	b.mu.Unlock()
	return <-p.done
}

// run ships batches until the queue drains, then exits (the next append
// restarts it). Batching needs no window timer: while a ship's
// round-trip runs, latecomers pile into the queue and form the next
// batch naturally.
func (b *shardBatcher) run() {
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.running = false
			b.mu.Unlock()
			return
		}
		n := len(b.queue)
		if n > maxSubmitBatch {
			n = maxSubmitBatch
		}
		batch := b.queue[:n:n]
		b.queue = append([]*pendingSubmit(nil), b.queue[n:]...)
		b.mu.Unlock()
		b.ship(batch)
	}
}

// ship sends one batch and distributes per-record results. A batch with
// any charged entry ships as a charged submit and is settled entry by
// entry from the request-aligned reply. A plain batch keeps the
// durable-prefix contract: on an error the node reports how many
// leading records it durably appended before failing (AppendedHeader) —
// that prefix succeeds without a per-record count, the rest fail.
func (b *shardBatcher) ship(batch []*pendingSubmit) {
	client, epoch, terr := b.remote.submitTarget(b.shard)
	if terr != nil {
		// The shard is failed over (primary down, replica unpromoted):
		// nothing to send to — settle fast with the retryable vocabulary.
		for _, p := range batch {
			p.done <- submitDone{err: terr}
		}
		return
	}
	responses := make([]survey.Response, len(batch))
	charged := false
	for i, p := range batch {
		responses[i] = *p.resp
		charged = charged || p.charge != nil
	}
	if charged {
		charges := make([]budget.Charge, len(batch))
		for i, p := range batch {
			if p.charge != nil {
				charges[i] = *p.charge
			}
		}
		res, err := client.SubmitFenced(b.shard, epoch, responses, charges)
		b.noteShip(client, err)
		if err != nil {
			// A charged submit reports append failures inside a 200
			// reply; a transport-level error means the node refused the
			// whole batch before touching any state (or the reply was
			// lost — the same exposure the plain path has).
			for _, p := range batch {
				p.done <- submitDone{err: err}
			}
			return
		}
		for i, p := range batch {
			p.done <- settleCharged(res, i, p)
		}
		return
	}
	res, err := client.SubmitFenced(b.shard, epoch, responses, nil)
	b.noteShip(client, err)
	if err != nil {
		appended := 0
		var re *remoteError
		if errors.As(err, &re) {
			appended = re.Appended
		}
		if appended > len(batch) {
			appended = len(batch)
		}
		for i, p := range batch {
			if i < appended {
				// Durable, but the count was lost with the error reply.
				p.done <- submitDone{stored: 0}
			} else {
				p.done <- submitDone{err: err}
			}
		}
		return
	}
	if len(res.Throttled) == len(batch) {
		// A node with rate limiting answered per record: throttled
		// entries were not appended and settle with the retryable
		// vocabulary; the rest are request-aligned (see SubmitResult).
		for i, p := range batch {
			switch {
			case res.Throttled[i]:
				p.done <- submitDone{err: &ThrottledError{RetryAfterSeconds: res.RetryAfterSeconds}}
			case i < len(res.AppendErrs) && res.AppendErrs[i] != "":
				p.done <- submitDone{err: errors.New(res.AppendErrs[i])}
			default:
				stored := 0
				if i < len(res.Stored) {
					stored = res.Stored[i]
				}
				p.done <- submitDone{stored: stored}
			}
		}
		return
	}
	for i, p := range batch {
		stored := 0
		if i < len(res.Stored) {
			stored = res.Stored[i]
		}
		p.done <- submitDone{stored: stored}
	}
}

// noteShip feeds the router's failure detector and fence accounting
// from a shipped batch's outcome: a transport error marks the node
// down (the next ship fails fast and reads fail over), a fenced reply
// nudges a manifest refresh.
func (b *shardBatcher) noteShip(client *Client, err error) {
	b.remote.noteResult(client, err)
	if errors.Is(err, ErrFenced) {
		b.remote.noteFenced()
	}
}

// settleCharged maps one request entry of a charged reply to its
// caller's result: append failure (the charge was refunded node-side),
// enforce-mode undecided charge (fail closed), budget rejection, or a
// stored response with its outcome. A log-mode entry whose charge
// errored was still appended — it settles as stored with a zero
// outcome, and the caller can tell from the empty outcome worker id.
func settleCharged(res *SubmitResult, i int, p *pendingSubmit) submitDone {
	if i < len(res.Throttled) && res.Throttled[i] {
		return submitDone{err: &ThrottledError{RetryAfterSeconds: res.RetryAfterSeconds}}
	}
	if i < len(res.AppendErrs) && res.AppendErrs[i] != "" {
		return submitDone{err: errors.New(res.AppendErrs[i])}
	}
	var out budget.Outcome
	if i < len(res.Outcomes) {
		out = res.Outcomes[i]
	}
	if i < len(res.ChargeErrs) && res.ChargeErrs[i] != "" && p.charge != nil && p.charge.Enforce {
		return submitDone{err: fmt.Errorf("%w: %s", budget.ErrUndecided, res.ChargeErrs[i])}
	}
	if out.Rejected {
		return submitDone{out: out, err: fmt.Errorf("worker %q: %w", out.WorkerID, budget.ErrExhausted)}
	}
	stored := 0
	if i < len(res.Stored) {
		stored = res.Stored[i]
	}
	return submitDone{stored: stored, out: out}
}
