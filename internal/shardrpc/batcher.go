package shardrpc

import (
	"errors"
	"sync"

	"loki/internal/survey"
)

// The remote router's submit path group-batches: while one submit RPC
// to a shard is in flight, concurrent appends for the same shard queue
// up and ship as the next batch — the transport-layer twin of the
// ingest store's WAL group commit. One HTTP round-trip then amortizes
// across every caller waiting in the same window, which is what lets a
// frontend saturate its nodes instead of paying a full round-trip per
// response. A lone append still ships immediately (the batcher never
// waits on a timer), so uncontended submit latency is one round-trip.

// maxSubmitBatch bounds one shipped batch; deeper queues ship as
// consecutive batches.
const maxSubmitBatch = 256

// pendingSubmit is one caller's routed response waiting for the next
// batch. done receives exactly one result.
type pendingSubmit struct {
	resp *survey.Response
	done chan submitDone
}

type submitDone struct {
	stored int
	err    error
}

// shardBatcher owns one shard's submit queue and its single shipping
// goroutine (started lazily on the first append).
type shardBatcher struct {
	shard  int
	client *Client

	mu      sync.Mutex
	queue   []*pendingSubmit
	running bool
}

func newShardBatcher(shard int, client *Client) *shardBatcher {
	return &shardBatcher{shard: shard, client: client}
}

// append enqueues one response and blocks until its batch is durable on
// the node (or failed).
func (b *shardBatcher) append(resp *survey.Response) (int, error) {
	p := &pendingSubmit{resp: resp, done: make(chan submitDone, 1)}
	b.mu.Lock()
	b.queue = append(b.queue, p)
	if !b.running {
		b.running = true
		go b.run()
	}
	b.mu.Unlock()
	d := <-p.done
	return d.stored, d.err
}

// run ships batches until the queue drains, then exits (the next append
// restarts it). Batching needs no window timer: while a ship's
// round-trip runs, latecomers pile into the queue and form the next
// batch naturally.
func (b *shardBatcher) run() {
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.running = false
			b.mu.Unlock()
			return
		}
		n := len(b.queue)
		if n > maxSubmitBatch {
			n = maxSubmitBatch
		}
		batch := b.queue[:n:n]
		b.queue = append([]*pendingSubmit(nil), b.queue[n:]...)
		b.mu.Unlock()
		b.ship(batch)
	}
}

// ship sends one batch and distributes per-record results. On an error
// the node reports how many leading records it durably appended before
// failing (AppendedHeader): that prefix succeeds without a per-record
// count, the rest fail — nobody is left guessing whether to resubmit.
func (b *shardBatcher) ship(batch []*pendingSubmit) {
	responses := make([]survey.Response, len(batch))
	for i, p := range batch {
		responses[i] = *p.resp
	}
	res, err := b.client.Submit(b.shard, responses)
	if err != nil {
		appended := 0
		var re *remoteError
		if errors.As(err, &re) {
			appended = re.Appended
		}
		if appended > len(batch) {
			appended = len(batch)
		}
		for i, p := range batch {
			if i < appended {
				// Durable, but the count was lost with the error reply.
				p.done <- submitDone{stored: 0}
			} else {
				p.done <- submitDone{err: err}
			}
		}
		return
	}
	for i, p := range batch {
		stored := 0
		if i < len(res.Stored) {
			stored = res.Stored[i]
		}
		p.done <- submitDone{stored: stored}
	}
}
