package shardrpc

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"loki/internal/placement"
)

// This file is the frontend half of shard failover: manifest-driven
// routing (placement.Manifest applied without restart), per-node health
// from transport errors plus an active prober, read fallback to a
// shard's replicas with stale-read accounting, and client-side write
// fencing while a shard's primary is down and its replica not yet
// promoted. The node half (epoch checks, promotion) lives in the server
// package.

// shardRoute is one shard's resolved routing row: clients instead of
// URLs, plus the manifest epoch every write is stamped with.
type shardRoute struct {
	primary *Client
	// primaryIdx is primary's index in Remote.clients — kept so the
	// budget-colocation test keeps working under manifest routing.
	primaryIdx int
	replicas   []*Client
	epoch      uint64
}

// nodeHealth is the failure detector's per-node belief: down nodes are
// skipped on reads and fence writes. It flips down on any transport
// error or failed probe, and back up on any successful call or probe.
type nodeHealth struct {
	mu      sync.Mutex
	down    bool
	lastErr string
	since   time.Time
}

// FailoverOptions tune EnableFailover.
type FailoverOptions struct {
	// ProbeInterval is how often every known node is probed; it bounds
	// both failure detection latency and how quickly a recovered node
	// is trusted again. Default 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request. Default 1s.
	ProbeTimeout time.Duration
	// ProbePath is fetched from each node's base URL; any 2xx answer
	// counts as alive. Default the admin health endpoint, which every
	// role serves unauthenticated.
	ProbePath string
}

// NewRemoteFromManifest builds the manifest-routed Remote: one client
// per distinct primary (in first-appearance order over ascending shard
// index, so derived placements agree with positional layouts), replica
// clients for read failover, and epoch stamps on every submit. Later
// manifests hot-swap the routing through ApplyManifest.
func NewRemoteFromManifest(m *placement.Manifest, token string, httpClient *http.Client) (*Remote, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	nodes := m.Nodes()
	clients := make([]*Client, len(nodes))
	nodeIdx := make(map[string]int, len(nodes))
	for i, u := range nodes {
		clients[i] = NewClient(u, token, httpClient)
		nodeIdx[u] = i
	}
	pl := make([]int, len(m.Shards))
	for i := range m.Shards {
		sp := &m.Shards[i]
		pl[sp.Shard] = nodeIdx[sp.Primary]
	}
	r, err := NewRemote(clients, pl)
	if err != nil {
		return nil, err
	}
	r.token = token
	r.httpc = httpClient
	if err := r.ApplyManifest(m); err != nil {
		return nil, err
	}
	return r, nil
}

// ApplyManifest swaps the routing to a newer manifest without touching
// in-flight work: shard → primary/replica clients and the per-shard
// epoch stamp change atomically under the route lock, and the next
// batch each shard's batcher ships resolves the new target. Manifests
// at or below the applied version are ignored (watcher redelivery,
// stale files). Unknown node URLs get clients lazily; that needs the
// token NewRemoteFromManifest recorded — a positional NewRemote router
// cannot apply manifests naming nodes it has no client for.
func (r *Remote) ApplyManifest(m *placement.Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	r.routeMu.Lock()
	defer r.routeMu.Unlock()
	if m.Version <= r.manifestVersion {
		return nil
	}
	if len(m.Shards) != len(r.placement) {
		return fmt.Errorf("shardrpc: manifest has %d shards, router has %d", len(m.Shards), len(r.placement))
	}
	routes := make([]shardRoute, len(r.placement))
	for i := range m.Shards {
		sp := &m.Shards[i]
		pc, pidx, err := r.clientForURLLocked(sp.Primary)
		if err != nil {
			return err
		}
		rt := shardRoute{primary: pc, primaryIdx: pidx, epoch: sp.Epoch}
		for _, ru := range sp.Replicas {
			rc, _, err := r.clientForURLLocked(ru)
			if err != nil {
				return err
			}
			rt.replicas = append(rt.replicas, rc)
		}
		routes[sp.Shard] = rt
	}
	for s := range routes {
		r.placement[s] = routes[s].primaryIdx
	}
	r.routes = routes
	r.manifestVersion = m.Version
	return nil
}

// clientForURLLocked returns (creating if needed) the client for a node
// base URL. Caller holds routeMu.
func (r *Remote) clientForURLLocked(url string) (*Client, int, error) {
	if r.clientsByURL == nil {
		r.clientsByURL = make(map[string]*Client, len(r.clients))
		for i, c := range r.clients {
			r.clientsByURL[c.BaseURL()] = c
			_ = i
		}
	}
	if c, ok := r.clientsByURL[url]; ok {
		for i, rc := range r.clients {
			if rc == c {
				return c, i, nil
			}
		}
	}
	if r.token == "" {
		return nil, 0, fmt.Errorf("shardrpc: manifest names unknown node %q and the router has no cluster token to dial it", url)
	}
	c := NewClient(url, r.token, r.httpc)
	r.clients = append(r.clients, c)
	r.clientsByURL[url] = c
	return c, len(r.clients) - 1, nil
}

// ManifestVersion reports the applied manifest version (0 = positional
// routing, no manifest).
func (r *Remote) ManifestVersion() int64 {
	r.routeMu.RLock()
	defer r.routeMu.RUnlock()
	return r.manifestVersion
}

// routeFor snapshots one shard's route; ok is false under positional
// routing (no manifest applied).
func (r *Remote) routeFor(shard int) (shardRoute, bool) {
	r.routeMu.RLock()
	defer r.routeMu.RUnlock()
	if r.routes == nil || shard < 0 || shard >= len(r.routes) {
		return shardRoute{}, false
	}
	return r.routes[shard], true
}

// allClients snapshots the client list for broadcasts and meta
// refreshes; manifest application may grow it concurrently.
func (r *Remote) allClients() []*Client {
	r.routeMu.RLock()
	defer r.routeMu.RUnlock()
	return append([]*Client(nil), r.clients...)
}

// healthFor returns (creating if needed) a node's health entry.
func (r *Remote) healthFor(url string) *nodeHealth {
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	if r.healthByURL == nil {
		r.healthByURL = make(map[string]*nodeHealth)
	}
	h := r.healthByURL[url]
	if h == nil {
		h = &nodeHealth{}
		r.healthByURL[url] = h
	}
	return h
}

// nodeDown reports the detector's current belief about a node.
func (r *Remote) nodeDown(url string) bool {
	h := r.healthFor(url)
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}

func (r *Remote) markDown(url string, err error) {
	h := r.healthFor(url)
	h.mu.Lock()
	if !h.down {
		h.down = true
		h.since = time.Now()
	}
	if err != nil {
		h.lastErr = err.Error()
	}
	h.mu.Unlock()
}

func (r *Remote) markUp(url string) {
	h := r.healthFor(url)
	h.mu.Lock()
	if h.down {
		h.down = false
		h.since = time.Now()
	}
	h.mu.Unlock()
}

// noteResult feeds the failure detector from ordinary RPC traffic: a
// transport error is evidence the node is down, any answered request
// (success or status error) is evidence it is up. Passive detection
// means the common case needs no probe round-trips at all; the prober
// exists to notice recovery and to catch nodes that fail while idle.
func (r *Remote) noteResult(c *Client, err error) {
	if err == nil || !IsTransportError(err) {
		r.markUp(c.BaseURL())
		return
	}
	r.markDown(c.BaseURL(), err)
}

// submitTarget resolves where one shard's next write batch goes: the
// manifest primary with its epoch stamp, refused with FailoverError
// while the primary is believed down (promotion will swap the manifest
// and the next resolution lands on the new primary). Positional routers
// keep the original fixed binding with an unstamped epoch.
func (r *Remote) submitTarget(shard int) (*Client, uint64, error) {
	rt, ok := r.routeFor(shard)
	if !ok {
		r.routeMu.RLock()
		c := r.clients[r.placement[shard]]
		r.routeMu.RUnlock()
		return c, 0, nil
	}
	if r.nodeDown(rt.primary.BaseURL()) {
		return nil, 0, &FailoverError{Shard: shard}
	}
	return rt.primary, rt.epoch, nil
}

// noteFenced counts a fenced write and nudges the manifest refresh
// callback (a watcher Poll) so routing catches up faster than the next
// poll tick. The callback runs on its own goroutine — settlement of the
// fenced batch must not wait on a manifest re-read.
func (r *Remote) noteFenced() {
	r.fencedWrites.Add(1)
	if fn, ok := r.onFenced.Load().(func()); ok && fn != nil {
		go fn()
	}
}

// OnFenced registers a callback invoked (asynchronously) whenever a
// write is refused by a node's epoch fence — the router's signal that
// its manifest is stale. Wire it to the placement watcher's Poll.
func (r *Remote) OnFenced(fn func()) { r.onFenced.Store(fn) }

// EnableFailover starts the active prober: every known node's admin
// health endpoint is fetched on an interval, feeding the same up/down
// belief passive detection uses. Without it, a dead node is only
// noticed when traffic hits it and only trusted again when the manifest
// changes — the prober adds bounded-latency detection and recovery.
func (r *Remote) EnableFailover(opts FailoverOptions) {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 500 * time.Millisecond
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.ProbePath == "" {
		opts.ProbePath = "/api/v1/admin/health"
	}
	r.probeOnce.Do(func() {
		r.probeStop = make(chan struct{})
		r.probeDone = make(chan struct{})
		go r.probeLoop(opts)
	})
}

func (r *Remote) probeLoop(opts FailoverOptions) {
	defer close(r.probeDone)
	hc := &http.Client{Timeout: opts.ProbeTimeout}
	t := time.NewTicker(opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			for _, c := range r.allClients() {
				url := c.BaseURL()
				resp, err := hc.Get(url + opts.ProbePath)
				if err != nil {
					r.markDown(url, err)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode >= 200 && resp.StatusCode < 500 {
					// Any answer at all proves liveness; the probe is a
					// failure detector, not a health grader.
					r.markUp(url)
				} else {
					r.markDown(url, fmt.Errorf("probe returned %s", resp.Status))
				}
			}
		case <-r.probeStop:
			return
		}
	}
}

// ShardRouteInfo is one shard's routing row on the admin surface.
type ShardRouteInfo struct {
	Shard       int      `json:"shard"`
	Epoch       uint64   `json:"epoch,omitempty"`
	Primary     string   `json:"primary"`
	PrimaryDown bool     `json:"primary_down,omitempty"`
	Replicas    []string `json:"replicas,omitempty"`
	// LastError is the primary's most recent transport failure, kept
	// after recovery for the operator's timeline.
	LastError string `json:"last_error,omitempty"`
}

// FailoverInfo is the frontend's failover state for the admin/health
// surfaces: the applied manifest version, stale-read and fenced-write
// counters, and every shard's current routing with the detector's
// belief about its primary.
type FailoverInfo struct {
	ManifestVersion int64            `json:"manifest_version"`
	StaleReads      uint64           `json:"stale_reads,omitempty"`
	FencedWrites    uint64           `json:"fenced_writes,omitempty"`
	Shards          []ShardRouteInfo `json:"shards,omitempty"`
}

// FailoverInfo snapshots the failover state; nil under positional
// routing (no manifest applied).
func (r *Remote) FailoverInfo() *FailoverInfo {
	r.routeMu.RLock()
	routes := r.routes
	version := r.manifestVersion
	r.routeMu.RUnlock()
	if routes == nil {
		return nil
	}
	info := &FailoverInfo{
		ManifestVersion: version,
		StaleReads:      r.staleReads.Load(),
		FencedWrites:    r.fencedWrites.Load(),
		Shards:          make([]ShardRouteInfo, len(routes)),
	}
	for s, rt := range routes {
		row := ShardRouteInfo{Shard: s, Epoch: rt.epoch, Primary: rt.primary.BaseURL()}
		h := r.healthFor(row.Primary)
		h.mu.Lock()
		row.PrimaryDown = h.down
		row.LastError = h.lastErr
		h.mu.Unlock()
		for _, rep := range rt.replicas {
			row.Replicas = append(row.Replicas, rep.BaseURL())
		}
		info.Shards[s] = row
	}
	return info
}

// StaleReads reports how many reads were served by a replica instead of
// the shard's primary since the router was built.
func (r *Remote) StaleReads() uint64 { return r.staleReads.Load() }
