package shardrpc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"loki/internal/blockio"
	"loki/internal/budget"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// Client speaks shardrpc to one node.
type Client struct {
	base  string // e.g. "http://10.0.0.7:8080"
	token string
	http  *http.Client
}

// NewClient builds a client for the node at baseURL. A nil httpClient
// uses a dedicated client with a conservative timeout (cluster links
// are LAN-fast; a hung peer should fail the request, not the caller's
// goroutine budget).
func NewClient(baseURL, token string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: baseURL, token: token, http: httpClient}
}

// BaseURL returns the node address the client targets.
func (c *Client) BaseURL() string { return c.base }

// remoteError carries a peer's error payload with its HTTP status, and
// re-wraps the store sentinels so errors.Is works across the wire.
type remoteError struct {
	Status int
	Msg    string
	// Appended is the durable prefix of a failed submit batch (from
	// AppendedHeader); 0 for every other call.
	Appended int
	// RetryAfter is the peer's Retry-After header in seconds (a shed
	// batch from an overloaded node); 0 when absent.
	RetryAfter int
}

// Error implements error.
func (e *remoteError) Error() string {
	return fmt.Sprintf("shardrpc: peer returned %d: %s", e.Status, e.Msg)
}

// Unwrap maps transport statuses back to the sentinels the local path
// returns, so callers handle local and remote stores identically. A
// 429 is a peer's admission shed — it unwraps to OverloadedError so
// the frontend's submit path keeps the retryable vocabulary.
func (e *remoteError) Unwrap() error {
	switch e.Status {
	case http.StatusNotFound:
		return store.ErrNotFound
	case http.StatusConflict:
		return store.ErrExists
	case http.StatusTooManyRequests:
		return &OverloadedError{RetryAfterSeconds: e.RetryAfter}
	case http.StatusPreconditionFailed:
		// A peer's epoch fence; the structured fields stay behind on the
		// node, but errors.Is(err, ErrFenced) works across the wire.
		return ErrFenced
	default:
		return nil
	}
}

func (c *Client) do(method, path string, query url.Values, in, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var body *pooledBody
	var bodyReader io.Reader // a typed-nil *pooledBody must not reach NewRequest
	var bodyLen int
	if in != nil {
		// Marshal through the shared buffer pool: submit batches are
		// the client's hot path, and a per-request []byte would make
		// encoder growth the dominant allocation. The buffer is
		// recycled by pooledBody.Close when the Transport is done with
		// it — recycling any earlier races a background body write.
		buf, err := encodeJSON(in)
		if err != nil {
			return fmt.Errorf("shardrpc: marshal request: %w", err)
		}
		body = newPooledBody(buf)
		bodyReader = body
		bodyLen = buf.Len()
	}
	req, err := http.NewRequest(method, u, bodyReader)
	if err != nil {
		if body != nil {
			body.Close()
		}
		return fmt.Errorf("shardrpc: build request: %w", err)
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
		// NewRequest cannot size an opaque reader; set the length so
		// the wire keeps Content-Length framing. GetBody stays nil on
		// purpose: a replay would read a possibly recycled buffer.
		req.ContentLength = int64(bodyLen)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("shardrpc: %s %s: %w", method, path, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var payload struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&payload)
		if payload.Error == "" {
			payload.Error = resp.Status
		}
		appended, _ := strconv.Atoi(resp.Header.Get(AppendedHeader))
		retryAfter, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return &remoteError{Status: resp.StatusCode, Msg: payload.Error, Appended: appended, RetryAfter: retryAfter}
	}
	if out == nil {
		return nil
	}
	// The bulk read paths request codec=binary; a peer that granted it
	// marks the body with the frame content type. A plain JSON answer
	// means an older peer that ignored the parameter — fall through.
	if resp.Header.Get("Content-Type") == blockio.FrameContentType {
		frame, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		if err != nil {
			return fmt.Errorf("shardrpc: read %s response: %w", path, err)
		}
		raw, err := blockio.DecodeFrame(frame)
		if err != nil {
			return fmt.Errorf("shardrpc: decode %s frame: %w", path, err)
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("shardrpc: decode %s response: %w", path, err)
		}
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("shardrpc: decode %s response: %w", path, err)
	}
	return nil
}

// Meta fetches the node's shard ownership map.
func (c *Client) Meta() (*Meta, error) {
	var m Meta
	if err := c.do(http.MethodGet, "/shardrpc/v1/meta", nil, nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Submit appends a routed batch to one global shard.
func (c *Client) Submit(shard int, responses []survey.Response) (*SubmitResult, error) {
	return c.SubmitCharged(shard, responses, nil)
}

// SubmitCharged appends a routed batch with piggybacked budget charges
// (aligned 1:1 with responses; an empty worker id carries no charge) —
// see ChargedBackend for the node-side contract.
func (c *Client) SubmitCharged(shard int, responses []survey.Response, charges []budget.Charge) (*SubmitResult, error) {
	return c.SubmitFenced(shard, 0, responses, charges)
}

// SubmitFenced is SubmitCharged with a placement-epoch stamp: the
// fencing token a manifest-routed frontend sends so a node that has
// applied a newer manifest refuses the batch (412 → ErrFenced) instead
// of appending under stale ownership. Epoch 0 sends an unstamped batch.
func (c *Client) SubmitFenced(shard int, epoch uint64, responses []survey.Response, charges []budget.Charge) (*SubmitResult, error) {
	var res SubmitResult
	err := c.do(http.MethodPost, "/shardrpc/v1/submit", nil,
		&SubmitRequest{Shard: shard, Epoch: epoch, Responses: responses, Charges: charges}, &res)
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// Scan fetches one page of a cursor scan.
func (c *Client) Scan(shard int, surveyID string, from uint64, max int) (*ScanBatch, error) {
	q := url.Values{
		"survey": {surveyID},
		"from":   {strconv.FormatUint(from, 10)},
		"max":    {strconv.Itoa(max)},
		"codec":  {blockio.CodecBinary},
	}
	var batch ScanBatch
	if err := c.do(http.MethodGet, "/shardrpc/v1/shards/"+strconv.Itoa(shard)+"/scan", q, nil, &batch); err != nil {
		return nil, err
	}
	return &batch, nil
}

// Count fetches one shard's response count for a survey.
func (c *Client) Count(shard int, surveyID string) (int, error) {
	var res CountResult
	q := url.Values{"survey": {surveyID}}
	if err := c.do(http.MethodGet, "/shardrpc/v1/shards/"+strconv.Itoa(shard)+"/count", q, nil, &res); err != nil {
		return 0, err
	}
	return res.Count, nil
}

// Partial fetches one shard's full partial accumulator state for a
// survey (the unconditional fetch: have = 0).
func (c *Client) Partial(shard int, surveyID string) (*Partial, error) {
	return c.PartialSince(shard, surveyID, 0)
}

// PartialSince is the conditional fetch: have is the per-shard cursor
// the caller already holds. The node replies not-modified, a delta
// covering (have, cursor], or a full snapshot — see Partial.
func (c *Client) PartialSince(shard int, surveyID string, have uint64) (*Partial, error) {
	var p Partial
	q := url.Values{"survey": {surveyID}}
	if have > 0 {
		q.Set("have", strconv.FormatUint(have, 10))
	}
	if err := c.do(http.MethodGet, "/shardrpc/v1/shards/"+strconv.Itoa(shard)+"/partial", q, nil, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// Tail fetches one page of WAL-tail shipping. A non-empty follower id
// registers the caller with the node's journal-truncation accounting
// (the offset doubles as the ack of everything before it).
func (c *Client) Tail(shard int, epoch, offset uint64, max int, follower string) (*shardset.TailBatch, error) {
	q := url.Values{
		"epoch":  {strconv.FormatUint(epoch, 10)},
		"offset": {strconv.FormatUint(offset, 10)},
		"max":    {strconv.Itoa(max)},
		"codec":  {blockio.CodecBinary},
	}
	if follower != "" {
		q.Set("follower", follower)
	}
	var batch shardset.TailBatch
	if err := c.do(http.MethodGet, "/shardrpc/v1/shards/"+strconv.Itoa(shard)+"/tail", q, nil, &batch); err != nil {
		return nil, err
	}
	return &batch, nil
}

// Survey fetches one survey definition.
func (c *Client) Survey(id string) (*survey.Survey, error) {
	var sv survey.Survey
	if err := c.do(http.MethodGet, "/shardrpc/v1/surveys/"+url.PathEscape(id), nil, nil, &sv); err != nil {
		return nil, err
	}
	return &sv, nil
}

// Surveys fetches every survey definition.
func (c *Client) Surveys() ([]*survey.Survey, error) {
	var svs []*survey.Survey
	if err := c.do(http.MethodGet, "/shardrpc/v1/surveys", nil, nil, &svs); err != nil {
		return nil, err
	}
	return svs, nil
}

// Publish broadcasts a definition (replace selects the republish path).
func (c *Client) Publish(sv *survey.Survey, replace bool) error {
	return c.do(http.MethodPost, "/shardrpc/v1/surveys", nil,
		&PublishRequest{Survey: sv, Replace: replace}, nil)
}
