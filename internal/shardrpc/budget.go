package shardrpc

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"

	"loki/internal/budget"
)

// The budget surface rides the shardrpc transport: token-guarded JSON
// endpoints a frontend debits worker accounts through before forwarding
// submits. Routes (token-guarded like everything else):
//
//	POST /shardrpc/v1/budget/charge  body BudgetChargeRequest  → BudgetChargeResult
//	POST /shardrpc/v1/budget/refund  body BudgetRefundRequest  → {}
//	GET  /shardrpc/v1/budget/{shard}/peek?worker=W             → budget.Account
//	GET  /shardrpc/v1/budget/stats                             → BudgetStatsResult
//
// A rejected charge is NOT a transport error: it travels inside the
// outcome with HTTP 200. Transport errors mean the debit was not
// decided, and the submit path fails closed (enforce) or open (log)
// accordingly.

// BudgetBackend is the optional budget surface a node exposes next to
// Backend. NewHandler registers the budget routes only when its backend
// implements it.
type BudgetBackend interface {
	// BudgetCharge debits a batch of charges against one hosted budget
	// shard, transactionally. Shards the node does not host must error
	// with ErrNotOwned.
	BudgetCharge(shard int, charges []budget.Charge) ([]budget.Outcome, error)
	// BudgetRefund credits one charge back on a hosted shard.
	BudgetRefund(shard int, c budget.Charge) error
	// BudgetPeek reads one worker's account off a hosted shard.
	BudgetPeek(shard int, workerID string) (budget.Account, error)
	// BudgetStats reports the node's hosted budget shards.
	BudgetStats() ([]budget.ShardStats, error)
}

// BudgetChargeRequest is a routed charge batch: every charge's worker
// hashes to Shard under budget.Route.
type BudgetChargeRequest struct {
	Shard   int             `json:"shard"`
	Charges []budget.Charge `json:"charges"`
}

// BudgetChargeResult carries one outcome per request charge, in order.
type BudgetChargeResult struct {
	Outcomes []budget.Outcome `json:"outcomes"`
}

// BudgetRefundRequest credits one charge back.
type BudgetRefundRequest struct {
	Shard  int           `json:"shard"`
	Charge budget.Charge `json:"charge"`
}

// BudgetStatsResult lists one node's hosted budget shards.
type BudgetStatsResult struct {
	Shards []budget.ShardStats `json:"shards"`
}

func (h *Handler) registerBudget(bb BudgetBackend) {
	h.mux.HandleFunc("POST /shardrpc/v1/budget/charge", h.guard(func(w http.ResponseWriter, r *http.Request) {
		var req BudgetChargeRequest
		if !readJSON(w, r, &req) {
			return
		}
		if len(req.Charges) == 0 {
			writeErr(w, http.StatusBadRequest, "charge batch is empty")
			return
		}
		outs, err := bb.BudgetCharge(req.Shard, req.Charges)
		if err != nil {
			writeBackendErr(w, err)
			return
		}
		writeOK(w, BudgetChargeResult{Outcomes: outs})
	}))
	h.mux.HandleFunc("POST /shardrpc/v1/budget/refund", h.guard(func(w http.ResponseWriter, r *http.Request) {
		var req BudgetRefundRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := bb.BudgetRefund(req.Shard, req.Charge); err != nil {
			writeBackendErr(w, err)
			return
		}
		writeOK(w, struct{}{})
	}))
	h.mux.HandleFunc("GET /shardrpc/v1/budget/{shard}/peek", h.guard(func(w http.ResponseWriter, r *http.Request) {
		shard, ok := pathShard(w, r)
		if !ok {
			return
		}
		worker := r.URL.Query().Get("worker")
		if worker == "" {
			writeErr(w, http.StatusBadRequest, "peek needs a worker")
			return
		}
		a, err := bb.BudgetPeek(shard, worker)
		if err != nil {
			writeBackendErr(w, err)
			return
		}
		writeOK(w, a)
	}))
	h.mux.HandleFunc("GET /shardrpc/v1/budget/stats", h.guard(func(w http.ResponseWriter, _ *http.Request) {
		stats, err := bb.BudgetStats()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeOK(w, BudgetStatsResult{Shards: stats})
	}))
}

// BudgetCharge debits a routed batch against one budget shard.
func (c *Client) BudgetCharge(shard int, charges []budget.Charge) ([]budget.Outcome, error) {
	var res BudgetChargeResult
	err := c.do(http.MethodPost, "/shardrpc/v1/budget/charge", nil,
		&BudgetChargeRequest{Shard: shard, Charges: charges}, &res)
	if err != nil {
		return nil, err
	}
	return res.Outcomes, nil
}

// BudgetRefund credits one charge back on its budget shard.
func (c *Client) BudgetRefund(shard int, ch budget.Charge) error {
	return c.do(http.MethodPost, "/shardrpc/v1/budget/refund", nil,
		&BudgetRefundRequest{Shard: shard, Charge: ch}, nil)
}

// BudgetPeek reads one worker's account.
func (c *Client) BudgetPeek(shard int, workerID string) (budget.Account, error) {
	var a budget.Account
	q := url.Values{"worker": {workerID}}
	err := c.do(http.MethodGet, "/shardrpc/v1/budget/"+strconv.Itoa(shard)+"/peek", q, nil, &a)
	return a, err
}

// BudgetStats fetches one node's hosted budget shard stats.
func (c *Client) BudgetStats() ([]budget.ShardStats, error) {
	var res BudgetStatsResult
	if err := c.do(http.MethodGet, "/shardrpc/v1/budget/stats", nil, nil, &res); err != nil {
		return nil, err
	}
	return res.Shards, nil
}

// RemoteCharger is the frontend's budget.Charger: it routes every
// charge to the node hosting the worker's budget shard, group-batching
// per shard exactly like the submit path (see batcher.go), so a busy
// frontend amortizes one charge RPC across every submit waiting in the
// same window and the hot path stays one extra round-trip, not N.
//
// The Config it reports is the frontend's flag-derived copy for the
// admin surface; the owning shard's own config decides accept/reject.
type RemoteCharger struct {
	cfg       budget.Config
	clients   []*Client
	placement []int // placement[budgetShard] = index into clients
	batchers  []*budgetBatcher
}

// NewRemoteCharger builds a remote charger over one client per node
// with the canonical round-robin placement — the same layout nodes
// compute their budget shard ownership with.
func NewRemoteCharger(clients []*Client, totalShards int, cfg budget.Config) (*RemoteCharger, error) {
	if len(clients) == 0 {
		return nil, errors.New("shardrpc: remote charger needs at least one node client")
	}
	if totalShards <= 0 {
		return nil, fmt.Errorf("shardrpc: remote charger needs a positive shard count, got %d", totalShards)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	placement := make([]int, totalShards)
	for node, owned := range RoundRobinPlacement(totalShards, len(clients)) {
		for _, s := range owned {
			placement[s] = node
		}
	}
	r := &RemoteCharger{cfg: cfg, clients: clients, placement: placement}
	r.batchers = make([]*budgetBatcher, totalShards)
	for s := range r.batchers {
		r.batchers[s] = &budgetBatcher{shard: s, client: clients[placement[s]]}
	}
	return r, nil
}

// Config implements budget.Charger.
func (r *RemoteCharger) Config() budget.Config { return r.cfg }

// Shards implements budget.Charger.
func (r *RemoteCharger) Shards() int { return len(r.placement) }

// Charge implements budget.Charger through the shard's group batcher.
func (r *RemoteCharger) Charge(c budget.Charge) (budget.Outcome, error) {
	return r.batchers[budget.Route(c.WorkerID, len(r.placement))].charge(c)
}

// Refund implements budget.Charger. Refunds are rare (they compensate
// failed appends), so they ship directly rather than batching.
func (r *RemoteCharger) Refund(c budget.Charge) error {
	shard := budget.Route(c.WorkerID, len(r.placement))
	return r.clients[r.placement[shard]].BudgetRefund(shard, c)
}

// Peek implements budget.Charger.
func (r *RemoteCharger) Peek(workerID string) (budget.Account, error) {
	shard := budget.Route(workerID, len(r.placement))
	return r.clients[r.placement[shard]].BudgetPeek(shard, workerID)
}

// Stats implements budget.Charger: every node's hosted shards,
// concatenated and sorted by global shard index.
func (r *RemoteCharger) Stats() ([]budget.ShardStats, error) {
	var out []budget.ShardStats
	for _, c := range r.clients {
		stats, err := c.BudgetStats()
		if err != nil {
			return nil, err
		}
		out = append(out, stats...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out, nil
}

// Close implements budget.Charger; the HTTP clients hold nothing worth
// tearing down.
func (r *RemoteCharger) Close() error { return nil }

var _ budget.Charger = (*RemoteCharger)(nil)

// budgetBatcher group-batches one budget shard's charges, the exact
// discipline of shardBatcher: while one charge RPC is in flight,
// concurrent charges for the same shard queue and ship as the next
// batch; a lone charge still ships immediately.
type budgetBatcher struct {
	shard  int
	client *Client

	mu      sync.Mutex
	queue   []*pendingCharge
	running bool
}

type pendingCharge struct {
	c    budget.Charge
	done chan chargeDone
}

type chargeDone struct {
	out budget.Outcome
	err error
}

// charge enqueues one debit and blocks until its batch is decided.
func (b *budgetBatcher) charge(c budget.Charge) (budget.Outcome, error) {
	p := &pendingCharge{c: c, done: make(chan chargeDone, 1)}
	b.mu.Lock()
	b.queue = append(b.queue, p)
	if !b.running {
		b.running = true
		go b.run()
	}
	b.mu.Unlock()
	d := <-p.done
	return d.out, d.err
}

func (b *budgetBatcher) run() {
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.running = false
			b.mu.Unlock()
			return
		}
		n := len(b.queue)
		if n > maxSubmitBatch {
			n = maxSubmitBatch
		}
		batch := b.queue[:n:n]
		b.queue = append([]*pendingCharge(nil), b.queue[n:]...)
		b.mu.Unlock()
		b.ship(batch)
	}
}

// ship sends one charge batch and distributes per-charge outcomes. The
// shard decides the whole batch transactionally, so an error fails
// every waiter — there is no durable-prefix subtlety like the submit
// path's: a failed batch recorded nothing the caller may act on.
func (b *budgetBatcher) ship(batch []*pendingCharge) {
	charges := make([]budget.Charge, len(batch))
	for i, p := range batch {
		charges[i] = p.c
	}
	outs, err := b.client.BudgetCharge(b.shard, charges)
	if err != nil || len(outs) != len(batch) {
		if err == nil {
			err = fmt.Errorf("shardrpc: %d outcomes for %d charges", len(outs), len(batch))
		}
		for _, p := range batch {
			p.done <- chargeDone{err: err}
		}
		return
	}
	for i, p := range batch {
		p.done <- chargeDone{out: outs[i]}
	}
}
