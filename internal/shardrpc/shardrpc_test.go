package shardrpc

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"loki/internal/aggregate"
	"loki/internal/core"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// testBackend adapts a journaling shardset.Local into a Backend with a
// trivial partial provider: partials are folded on demand from the
// shard's scan (the real node keeps them warm; the transport does not
// care).
type testBackend struct {
	local *shardset.Local
	total int
}

func (b *testBackend) Meta() Meta {
	owned := make([]int, b.local.Shards())
	for i := range owned {
		owned[i] = b.local.GlobalID(i)
	}
	return Meta{TotalShards: b.total, OwnedShards: owned}
}

func (b *testBackend) shard(global int) (int, error) {
	for i := 0; i < b.local.Shards(); i++ {
		if b.local.GlobalID(i) == global {
			return i, nil
		}
	}
	return 0, &ErrNotOwned{Shard: global}
}

func (b *testBackend) AppendShardBatch(global int, rs []survey.Response) ([]int, error) {
	i, err := b.shard(global)
	if err != nil {
		return nil, err
	}
	return b.local.AppendShardBatch(i, rs)
}

func (b *testBackend) ScanShard(global int, surveyID string, fromSeq uint64, fn func(seq uint64, r *survey.Response) error) error {
	i, err := b.shard(global)
	if err != nil {
		return err
	}
	return b.local.ScanShard(i, surveyID, fromSeq, fn)
}

func (b *testBackend) CountShard(global int, surveyID string) int {
	i, err := b.shard(global)
	if err != nil {
		return 0
	}
	return b.local.CountShard(i, surveyID)
}

func (b *testBackend) PartialState(global int, surveyID string, have uint64) (*Partial, error) {
	i, err := b.shard(global)
	if err != nil {
		return nil, err
	}
	sv, err := b.local.Survey(surveyID)
	if err != nil {
		return nil, err
	}
	cursor := uint64(b.local.CountShard(i, surveyID))
	out := &Partial{SurveyID: surveyID, Shard: global, Fingerprint: sv.Fingerprint(), Cursor: cursor}
	if have == cursor && have > 0 {
		out.NotModified = true
		return out, nil
	}
	from := uint64(0)
	if have > 0 && have < cursor {
		from = have
		out.Delta = true
		out.From = have
	}
	acc, err := aggregate.NewAccumulator(core.DefaultSchedule(), sv)
	if err != nil {
		return nil, err
	}
	err = b.local.ScanShard(i, surveyID, from, func(_ uint64, r *survey.Response) error {
		return acc.Add(r)
	})
	if err != nil {
		return nil, err
	}
	out.State = acc.Snapshot()
	return out, nil
}

func (b *testBackend) Tail(global int, epoch, offset uint64, max int, follower string) (*shardset.TailBatch, error) {
	i, err := b.shard(global)
	if err != nil {
		return nil, err
	}
	return b.local.Tail(i, epoch, offset, max, follower)
}

func (b *testBackend) PutSurvey(sv *survey.Survey) error     { return b.local.PutSurvey(sv) }
func (b *testBackend) ReplaceSurvey(sv *survey.Survey) error { return b.local.ReplaceSurvey(sv) }
func (b *testBackend) Survey(id string) (*survey.Survey, error) {
	return b.local.Survey(id)
}
func (b *testBackend) Surveys() ([]*survey.Survey, error) { return b.local.Surveys() }

func rpcSurvey(id string) *survey.Survey {
	return &survey.Survey{
		ID:    id,
		Title: "Shardrpc test survey",
		Questions: []survey.Question{
			{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
		},
		RewardCents: 1,
	}
}

func rpcResponse(surveyID string, i int) survey.Response {
	return survey.Response{
		SurveyID:     surveyID,
		WorkerID:     fmt.Sprintf("w%05d", i),
		PrivacyLevel: "none",
		Answers:      []survey.Answer{survey.RatingAnswer("q0", float64(1+i%5))},
	}
}

// newTestNode spins one in-process node over HTTP: shards [0..shards)
// of a same-sized cluster.
func newTestNode(t *testing.T, shards int) (*Client, *shardset.Local) {
	t.Helper()
	stores := make([]store.Store, shards)
	for i := range stores {
		stores[i] = store.NewMem()
	}
	local, err := shardset.NewLocal(stores, shardset.LocalOptions{Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { local.Close() })
	h, err := NewHandler(&testBackend{local: local, total: shards}, "cluster-token")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, "cluster-token", nil), local
}

// TestRoundTrip drives every verb over the wire.
func TestRoundTrip(t *testing.T) {
	c, local := newTestNode(t, 2)

	meta, err := c.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if meta.TotalShards != 2 || len(meta.OwnedShards) != 2 {
		t.Fatalf("meta = %+v", meta)
	}

	sv := rpcSurvey("sv")
	if err := c.Publish(sv, false); err != nil {
		t.Fatal(err)
	}
	// Duplicate publish maps to the same sentinel a local store returns.
	if err := c.Publish(sv, false); !errors.Is(err, store.ErrExists) {
		t.Fatalf("duplicate publish error = %v, want ErrExists", err)
	}

	batch := []survey.Response{rpcResponse("sv", 0), rpcResponse("sv", 1), rpcResponse("sv", 2)}
	res, err := c.Submit(1, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 3 || len(res.Stored) != 3 || res.Stored[2] != 3 {
		t.Fatalf("submit result = %+v", res)
	}

	n, err := c.Count(1, "sv")
	if err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}

	// Paged scan: page size 2 over 3 records.
	sb, err := c.Scan(1, "sv", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.Records) != 2 || !sb.More || sb.NextSeq != 2 {
		t.Fatalf("page 1 = %+v", sb)
	}
	sb, err = c.Scan(1, "sv", sb.NextSeq, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.Records) != 1 || sb.More {
		t.Fatalf("page 2 = %+v", sb)
	}

	p, err := c.Partial(1, "sv")
	if err != nil {
		t.Fatal(err)
	}
	if p.Cursor != 3 || p.State == nil || p.State.N != 3 || p.Fingerprint != sv.Fingerprint() {
		t.Fatalf("partial = %+v", p)
	}

	// Tail: bootstrap then drain.
	tb, err := c.Tail(1, 0, 0, 10, "t")
	if err != nil {
		t.Fatal(err)
	}
	tb, err = c.Tail(1, tb.Epoch, 0, 10, "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Entries) != 3 || tb.Entries[0].Response.WorkerID != "w00000" {
		t.Fatalf("tail = %+v", tb)
	}

	got, err := c.Survey("sv")
	if err != nil || got.ID != "sv" {
		t.Fatalf("survey fetch: %v %v", got, err)
	}
	if _, err := c.Survey("ghost"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("unknown survey error = %v, want ErrNotFound", err)
	}
	svs, err := c.Surveys()
	if err != nil || len(svs) != 1 {
		t.Fatalf("surveys = %v, %v", svs, err)
	}
	_ = local
}

// TestAuthRequired: every route refuses a missing or wrong token.
func TestAuthRequired(t *testing.T) {
	c, _ := newTestNode(t, 1)
	bad := NewClient(c.BaseURL(), "wrong-token", nil)
	if _, err := bad.Meta(); err == nil {
		t.Fatal("wrong token accepted")
	}
	var re *remoteError
	if _, err := bad.Count(0, "sv"); !errors.As(err, &re) || re.Status != http.StatusUnauthorized {
		t.Fatalf("count with wrong token: %v", re)
	}
}

// TestNotOwnedShard maps to 421, which a Remote treats as a placement
// bug (no retry).
func TestNotOwnedShard(t *testing.T) {
	c, _ := newTestNode(t, 1)
	sv := rpcSurvey("sv")
	if err := c.Publish(sv, false); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(5, []survey.Response{rpcResponse("sv", 0)})
	var re *remoteError
	if !errors.As(err, &re) || re.Status != http.StatusMisdirectedRequest {
		t.Fatalf("unowned shard error = %v", err)
	}
}

// TestSubmitPartialFailure: a batch that fails mid-way reports the
// durable prefix so the sender does not resubmit it.
func TestSubmitPartialFailure(t *testing.T) {
	c, _ := newTestNode(t, 1)
	sv := rpcSurvey("sv")
	if err := c.Publish(sv, false); err != nil {
		t.Fatal(err)
	}
	batch := []survey.Response{
		rpcResponse("sv", 0),
		rpcResponse("sv", 1),
		{SurveyID: "ghost", WorkerID: "w", PrivacyLevel: "none"},
	}
	// Mem's batch appender validates up front (all-or-nothing), so this
	// exercises the zero-prefix path; the per-record fallback would
	// report prefix 2. Either way the header and error must agree.
	_, err := c.Submit(0, batch)
	var re *remoteError
	if !errors.As(err, &re) {
		t.Fatalf("batch with bad record: %v", err)
	}
	n, err := c.Count(0, "sv")
	if err != nil {
		t.Fatal(err)
	}
	if n != re.Appended {
		t.Fatalf("node stored %d records, error reported %d", n, re.Appended)
	}
}

// TestRemoteRouterEquivalence: the Remote router over the wire behaves
// like a Local router over the same data — same placement, counts and
// scans — and the submit batcher keeps per-record acks straight under
// concurrency.
func TestRemoteRouterEquivalence(t *testing.T) {
	const shards, n = 2, 60
	c, local := newTestNode(t, shards)
	remote, err := NewRemoteRoundRobin([]*Client{c}, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	sv := rpcSurvey("sv")
	if err := remote.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	// Concurrent appends through the batcher.
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := remote.Append(&survey.Response{
				SurveyID:     "sv",
				WorkerID:     fmt.Sprintf("w%05d", i),
				PrivacyLevel: "none",
				Answers:      []survey.Answer{survey.RatingAnswer("q0", float64(1+i%5))},
			})
			errCh <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if got := shardset.Count(remote, "sv"); got != n {
		t.Fatalf("remote count = %d, want %d", got, n)
	}
	for s := 0; s < shards; s++ {
		if remote.CountShard(s, "sv") != local.CountShard(s, "sv") {
			t.Fatalf("shard %d: remote %d vs local %d", s, remote.CountShard(s, "sv"), local.CountShard(s, "sv"))
		}
		var viaRemote, viaLocal []string
		if err := remote.ScanShard(s, "sv", 0, func(_ uint64, r *survey.Response) error {
			viaRemote = append(viaRemote, r.WorkerID)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := local.ScanShard(s, "sv", 0, func(_ uint64, r *survey.Response) error {
			viaLocal = append(viaLocal, r.WorkerID)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(viaRemote) != len(viaLocal) {
			t.Fatalf("shard %d scan lengths differ", s)
		}
		for i := range viaRemote {
			if viaRemote[i] != viaLocal[i] {
				t.Fatalf("shard %d scan order differs at %d", s, i)
			}
		}
	}
	// The survey cache serves reads and a republish invalidates it.
	sv2 := rpcSurvey("sv")
	sv2.Title = "Republished"
	if err := remote.ReplaceSurvey(sv2); err != nil {
		t.Fatal(err)
	}
	got, err := remote.Survey("sv")
	if err != nil || got.Title != "Republished" {
		t.Fatalf("after republish: %v %v", got, err)
	}
}

// TestConditionalPartial drives the conditional fetch over the wire:
// cold full fetch, not-modified revalidation, delta past a held
// cursor, and the full-resync answer for a cursor ahead of the shard.
func TestConditionalPartial(t *testing.T) {
	c, _ := newTestNode(t, 1)
	sv := rpcSurvey("sv")
	if err := c.Publish(sv, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(0, []survey.Response{rpcResponse("sv", 0), rpcResponse("sv", 1), rpcResponse("sv", 2)}); err != nil {
		t.Fatal(err)
	}

	// Cold fetch: full snapshot.
	full, err := c.PartialSince(0, "sv", 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Delta || full.NotModified || full.Cursor != 3 || full.State == nil || full.State.N != 3 {
		t.Fatalf("cold fetch = %+v", full)
	}

	// Revalidation at the current cursor: not-modified, no state.
	nm, err := c.PartialSince(0, "sv", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !nm.NotModified || nm.State != nil || nm.Cursor != 3 {
		t.Fatalf("revalidation = %+v", nm)
	}

	// Two more responses: a delta covering exactly (3, 5].
	if _, err := c.Submit(0, []survey.Response{rpcResponse("sv", 3), rpcResponse("sv", 4)}); err != nil {
		t.Fatal(err)
	}
	d, err := c.PartialSince(0, "sv", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Delta || d.From != 3 || d.Cursor != 5 || d.State == nil || d.State.N != 2 {
		t.Fatalf("delta = %+v", d)
	}

	// A cursor ahead of the shard (the caller cached a stream this
	// store never produced): full resync, not a delta.
	re, err := c.PartialSince(0, "sv", 99)
	if err != nil {
		t.Fatal(err)
	}
	if re.Delta || re.NotModified || re.Cursor != 5 || re.State == nil || re.State.N != 5 {
		t.Fatalf("ahead-of-shard fetch = %+v", re)
	}
}
