package shardrpc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"loki/internal/blockio"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// newFrameTestNode is newTestNode plus the raw base URL, for asserting
// on the wire representation itself.
func newFrameTestNode(t *testing.T) (*Client, string) {
	t.Helper()
	local, err := shardset.NewLocal([]store.Store{store.NewMem()}, shardset.LocalOptions{Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { local.Close() })
	h, err := NewHandler(&testBackend{local: local, total: 1}, "cluster-token")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, "cluster-token", nil), ts.URL
}

// rawGet issues a shardrpc GET without the Client, so the test can see
// the wire headers and body exactly as a peer would.
func rawGet(t *testing.T, base, path string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer cluster-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestTailWireFrameNegotiation: codec=binary compresses the tail-ship
// and scan bodies into blockio wire frames; without the parameter the
// node answers plain JSON, which is what keeps old peers working.
func TestTailWireFrameNegotiation(t *testing.T) {
	c, base := newFrameTestNode(t)
	sv := rpcSurvey("sv")
	if err := c.Publish(sv, false); err != nil {
		t.Fatal(err)
	}
	batch := make([]survey.Response, 64)
	for i := range batch {
		batch[i] = rpcResponse("sv", i)
	}
	if _, err := c.Submit(0, batch); err != nil {
		t.Fatal(err)
	}

	// Bootstrap a follower cursor so the framed drain below has entries.
	tb, err := c.Tail(0, 0, 0, 100, "t")
	if err != nil {
		t.Fatal(err)
	}

	framedResp, framed := rawGet(t, base,
		fmt.Sprintf("/shardrpc/v1/shards/0/tail?epoch=%d&offset=0&max=100&follower=t&codec=binary", tb.Epoch))
	if ct := framedResp.Header.Get("Content-Type"); ct != blockio.FrameContentType {
		t.Fatalf("framed tail content type = %q", ct)
	}
	raw, err := blockio.DecodeFrame(framed)
	if err != nil {
		t.Fatal(err)
	}
	var framedBatch shardset.TailBatch
	if err := json.Unmarshal(raw, &framedBatch); err != nil {
		t.Fatal(err)
	}
	if len(framedBatch.Entries) != len(batch) {
		t.Fatalf("framed tail carried %d entries, want %d", len(framedBatch.Entries), len(batch))
	}

	jsonResp, plain := rawGet(t, base,
		fmt.Sprintf("/shardrpc/v1/shards/0/tail?epoch=%d&offset=0&max=100&follower=t", tb.Epoch))
	if ct := jsonResp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("plain tail content type = %q", ct)
	}
	var plainBatch shardset.TailBatch
	if err := json.Unmarshal(plain, &plainBatch); err != nil {
		t.Fatal(err)
	}
	if len(plainBatch.Entries) != len(batch) {
		t.Fatalf("plain tail carried %d entries, want %d", len(plainBatch.Entries), len(batch))
	}
	if len(framed) >= len(plain) {
		t.Fatalf("framed body (%d bytes) did not compress the JSON one (%d bytes)", len(framed), len(plain))
	}

	// The high-level client negotiates frames transparently.
	tb2, err := c.Tail(0, tb.Epoch, 0, 100, "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb2.Entries) != len(batch) {
		t.Fatalf("client tail carried %d entries, want %d", len(tb2.Entries), len(batch))
	}
	sb, err := c.Scan(0, "sv", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.Records) != len(batch) {
		t.Fatalf("client scan carried %d records, want %d", len(sb.Records), len(batch))
	}
}
