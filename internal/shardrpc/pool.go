package shardrpc

import (
	"bytes"
	"encoding/json"
	"sync"
)

// The shardrpc hot paths — batch submits from the frontend's batchers
// and partial/scan/tail responses on the node — encode one JSON body
// per request. Marshalling into a fresh []byte every time makes the
// encoder's growth reallocations the dominant allocation on those
// paths, so both sides rent a bytes.Buffer from a shared pool instead:
// the buffer grows to the working set once and is reused across
// requests. See BenchmarkEncodePooled/BenchmarkEncodeUnpooled for the
// allocs/op delta.

// maxPooledBuf caps what goes back into the pool: a rare giant body
// (a cold replica's 4096-record tail page) must not pin megabytes of
// buffer for the common small requests.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// getBuf rents an empty buffer.
func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

// putBuf returns a buffer to the pool (oversized ones are dropped for
// the GC).
func putBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuf {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// encodeJSON encodes v into a pooled buffer. The caller owns the
// returned buffer and must putBuf it when the bytes are no longer
// referenced (after the HTTP write / after the request is sent).
func encodeJSON(v any) (*bytes.Buffer, error) {
	buf := getBuf()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		putBuf(buf)
		return nil, err
	}
	return buf, nil
}

// pooledBody serves a pooled buffer's bytes as a request body and
// recycles the buffer when the Transport closes it. Close is the ONLY
// safe recycle point on the client side: RoundTrip may keep writing
// the body from a background goroutine after Do returns (e.g. when
// the peer answers early without draining), so recycling on return
// would hand the backing array to a concurrent request mid-read. The
// Transport is documented to always close the body, on every path.
type pooledBody struct {
	r    *bytes.Reader
	buf  *bytes.Buffer
	once sync.Once
}

func newPooledBody(buf *bytes.Buffer) *pooledBody {
	return &pooledBody{r: bytes.NewReader(buf.Bytes()), buf: buf}
}

// Read implements io.Reader.
func (p *pooledBody) Read(b []byte) (int, error) { return p.r.Read(b) }

// Close implements io.Closer, returning the buffer to the pool once.
func (p *pooledBody) Close() error {
	p.once.Do(func() { putBuf(p.buf) })
	return nil
}
