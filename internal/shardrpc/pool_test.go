package shardrpc

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"loki/internal/survey"
)

// discardResponseWriter is an http.ResponseWriter that throws the body
// away — the benchmarks measure encoding, not a recorder's buffering.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}

// benchSubmitRequest is a representative hot-path body: a 64-response
// submit batch, the shape the frontend's batchers ship under load.
func benchSubmitRequest() *SubmitRequest {
	req := &SubmitRequest{Shard: 3}
	for i := 0; i < 64; i++ {
		req.Responses = append(req.Responses, rpcResponse("bench-survey", i))
	}
	return req
}

// BenchmarkEncodePooled measures the pooled encode path (what writeOK
// and the client's request marshal use); compare its allocs/op against
// BenchmarkEncodeUnpooled to see what the sync.Pool buys.
func BenchmarkEncodePooled(b *testing.B) {
	req := benchSubmitRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := encodeJSON(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Discard.Write(buf.Bytes()); err != nil {
			b.Fatal(err)
		}
		putBuf(buf)
	}
}

// BenchmarkEncodeUnpooled is the pre-pool baseline: one fresh []byte
// per request via json.Marshal.
func BenchmarkEncodeUnpooled(b *testing.B) {
	req := benchSubmitRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bs, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Discard.Write(bs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteOK measures the handler's full response-write path
// (pooled) end to end.
func BenchmarkWriteOK(b *testing.B) {
	res := &SubmitResult{Appended: 64, Stored: make([]int, 64)}
	w := &discardResponseWriter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		writeOK(w, res)
	}
}

// TestPoolRoundTrip: a recycled buffer starts empty, and oversized
// buffers are not retained.
func TestPoolRoundTrip(t *testing.T) {
	buf, err := encodeJSON(map[string]string{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("encode produced no bytes")
	}
	putBuf(buf)
	again := getBuf()
	if again.Len() != 0 {
		t.Fatalf("pooled buffer not reset: %d bytes", again.Len())
	}
	putBuf(again)

	big, err := encodeJSON(make([]survey.Response, 0))
	if err != nil {
		t.Fatal(err)
	}
	big.Grow(2 * maxPooledBuf)
	putBuf(big) // must not panic, must not pool; nothing observable beyond that
}
