package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"loki/internal/budget"
	"loki/internal/core"
	"loki/internal/shardrpc"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// budgetTestConfig derives a cap admitting exactly three medium-level
// responses to clusterTestSurvey: ε is monotone in the folded rho, so a
// ceiling at ε(3.5ρ) accepts the third charge and rejects the fourth.
func budgetTestConfig(t *testing.T) budget.Config {
	t.Helper()
	cfg := budget.Config{CapEpsilon: 1, Delta: 1e-6}
	rho := responseRho(t, clusterTestSurvey(), "medium")
	cfg.CapEpsilon = cfg.Epsilon(3.5 * rho)
	return cfg
}

// budgetResponse builds a fixed-shape response at the given privacy
// level so every submit costs the same rho.
func budgetResponse(sv *survey.Survey, worker, level string) *survey.Response {
	return &survey.Response{
		SurveyID:     sv.ID,
		WorkerID:     worker,
		PrivacyLevel: level,
		Obfuscated:   level != "none",
		Answers: []survey.Answer{
			survey.RatingAnswer("q0", 3),
			survey.RatingAnswer("q1", 3),
			survey.ChoiceAnswer("q2", 1),
		},
	}
}

// responseRho computes the zCDP cost one budgetResponse charges — the
// reference the double-spend invariant is checked against.
func responseRho(t *testing.T, sv *survey.Survey, level string) float64 {
	t.Helper()
	obf, err := core.NewObfuscator(core.DefaultSchedule(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := core.ParseLevel(level)
	if err != nil {
		t.Fatal(err)
	}
	rho, _, err := obf.ResponseRho(sv, lvl)
	if err != nil {
		t.Fatal(err)
	}
	return rho
}

// newBudgetCluster spins nodes that host both response shards and
// budget shards, then `frontends` frontend servers over them, each with
// its own RemoteCharger in the given enforcement mode. All frontends
// share the nodes, so a worker's account is one ledger no matter which
// frontend charges it.
func newBudgetCluster(t *testing.T, nodes, totalShards, frontends int, mode string) []*httptest.Server {
	t.Helper()
	owned := shardrpc.RoundRobinPlacement(totalShards, nodes)
	clients := make([]*shardrpc.Client, nodes)
	for nd := 0; nd < nodes; nd++ {
		stores := make([]store.Store, len(owned[nd]))
		for i := range stores {
			stores[i] = store.NewMem()
		}
		local, err := shardset.NewLocal(stores, shardset.LocalOptions{GlobalIDs: owned[nd], Journal: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { local.Close() })
		nsrv, err := New(Config{Router: local, Schedule: core.DefaultSchedule(), RequesterToken: testToken, Role: "node"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nsrv.Close() })
		node, err := NewNode(nsrv, totalShards)
		if err != nil {
			t.Fatal(err)
		}
		set, err := budget.NewSet(budget.SetOptions{
			Shards: totalShards, GlobalIDs: owned[nd], Dir: t.TempDir(), Config: budgetTestConfig(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { set.Close() })
		node.HostBudget(set)
		h, err := shardrpc.NewHandler(node, testToken)
		if err != nil {
			t.Fatal(err)
		}
		nts := httptest.NewServer(h)
		t.Cleanup(nts.Close)
		clients[nd] = shardrpc.NewClient(nts.URL, testToken, nil)
	}
	fts := make([]*httptest.Server, frontends)
	for f := 0; f < frontends; f++ {
		remote, err := shardrpc.NewRemoteRoundRobin(clients, totalShards)
		if err != nil {
			t.Fatal(err)
		}
		charger, err := shardrpc.NewRemoteCharger(clients, totalShards, budgetTestConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		// Production wiring: colocated charges ride the submit RPC, the
		// charger covers cross-node workers plus refunds/peeks/stats.
		if err := remote.EnablePiggybackCharges(totalShards); err != nil {
			t.Fatal(err)
		}
		frontend, err := New(Config{
			Router: remote, Schedule: core.DefaultSchedule(), RequesterToken: testToken, Role: "frontend",
			Budget: charger, BudgetEnforce: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { frontend.Close() })
		ts := httptest.NewServer(frontend)
		t.Cleanup(ts.Close)
		fts[f] = ts
	}
	return fts
}

// submitCode submits and returns the HTTP status.
func submitCode(t *testing.T, ts *httptest.Server, r *survey.Response) (int, []byte) {
	t.Helper()
	resp, body := doReq(t, http.MethodPost, submitURL(ts, r.SurveyID), r, "")
	return resp.StatusCode, body
}

// checkExhausted429 asserts the enriched budget_exhausted contract: a
// Retry-After header matching the body's hint, and the remaining (ε, δ)
// headroom — ε zero-or-tiny for an exhausted worker, δ the deployment's
// configured conversion δ.
func checkExhausted429(t *testing.T, ts *httptest.Server, r *survey.Response) {
	t.Helper()
	resp, body := doReq(t, http.MethodPost, submitURL(ts, r.SurveyID), r, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != strconv.Itoa(BudgetRetryAfterSeconds) {
		t.Fatalf("Retry-After header = %q, want %d", got, BudgetRetryAfterSeconds)
	}
	var e BudgetExhaustedError
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("429 body %s: %v", body, err)
	}
	cfg := budgetTestConfig(t)
	if e.Error != budget.ErrExhausted.Error() ||
		e.RetryAfterSeconds != BudgetRetryAfterSeconds ||
		e.RemainingEpsilon < 0 || e.RemainingEpsilon >= cfg.CapEpsilon ||
		e.RemainingDelta != cfg.Delta {
		t.Fatalf("429 body = %+v (cap %+v)", e, cfg)
	}
}

// TestClusterBudgetEnforcement is the tentpole acceptance path: a
// worker who exhausts the (ε, δ) cap submitting through one frontend is
// rejected with 429 budget_exhausted through a *different* frontend —
// the account lives on its routed node shard, not in any frontend.
func TestClusterBudgetEnforcement(t *testing.T) {
	fts := newBudgetCluster(t, 2, 4, 2, "enforce")
	sv := clusterTestSurvey()
	if resp, body := doReq(t, http.MethodPost, fts[0].URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}

	const worker = "worker-exhaust"
	accepted, rejected := 0, 0
	for i := 0; i < 64; i++ {
		code, body := submitCode(t, fts[0], budgetResponse(sv, worker, "medium"))
		switch code {
		case http.StatusCreated:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error != budget.ErrExhausted.Error() {
				t.Fatalf("429 body = %s", body)
			}
		default:
			t.Fatalf("submit = %d: %s", code, body)
		}
		if rejected > 0 {
			break
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("accepted=%d rejected=%d; want both nonzero", accepted, rejected)
	}

	// The other frontend must reject immediately: same account. The 429
	// carries the enriched contract — Retry-After plus (ε, δ) headroom.
	checkExhausted429(t, fts[1], budgetResponse(sv, worker, "medium"))

	// A fresh worker through either frontend is admitted.
	if code, body := submitCode(t, fts[1], budgetResponse(sv, "worker-fresh", "medium")); code != http.StatusCreated {
		t.Fatalf("fresh worker submit = %d: %s", code, body)
	}

	// Level none spends no rho and is never rejected, even for the
	// exhausted worker: the cap bounds DP loss, and unprotected
	// disclosures are tallied separately.
	if code, body := submitCode(t, fts[1], budgetResponse(sv, worker, "none")); code != http.StatusCreated {
		t.Fatalf("none-level submit = %d: %s", code, body)
	}

	// The admin surface answers the worker's balance from any frontend.
	for i, ts := range fts {
		resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/admin/budget/"+worker, nil, testToken)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("frontend %d admin budget = %d: %s", i, resp.StatusCode, body)
		}
		var info WorkerBudgetInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Charges != uint64(accepted)+1 || info.Unprotected != 3 {
			t.Fatalf("frontend %d reports %+v; want %d charges (incl. none-level), 3 unprotected", i, info, accepted+1)
		}
		cfg := budgetTestConfig(t)
		if info.SpentEpsilon <= 0 || info.SpentEpsilon > cfg.CapEpsilon {
			t.Fatalf("spent ε = %g outside (0, %g]", info.SpentEpsilon, cfg.CapEpsilon)
		}
	}

	// And the store admin surface reports the ledger fleet.
	var info AdminStoreInfo
	resp, body := doReq(t, http.MethodGet, fts[0].URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin store = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Budget == nil || info.Budget.Mode != "enforce" || info.Budget.Shards != 4 || len(info.Budget.Ledgers) != 4 {
		t.Fatalf("admin budget info = %+v", info.Budget)
	}
	if info.Budget.Rejected == 0 {
		t.Fatal("frontend counted no rejections")
	}
}

// TestClusterBudgetDoubleSpend hammers one worker's account from many
// goroutines through two frontends concurrently; the accepted total
// must respect the cap exactly — the account's single owning shard is
// the serialization point no matter how many frontends race.
func TestClusterBudgetDoubleSpend(t *testing.T) {
	fts := newBudgetCluster(t, 2, 4, 2, "enforce")
	sv := clusterTestSurvey()
	if resp, body := doReq(t, http.MethodPost, fts[0].URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}

	const (
		worker     = "worker-race"
		goroutines = 8
		perG       = 8
	)
	var accepted, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ts := fts[g%len(fts)]
			for i := 0; i < perG; i++ {
				code, body := submitCode(t, ts, budgetResponse(sv, worker, "medium"))
				switch code {
				case http.StatusCreated:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					t.Errorf("submit = %d: %s", code, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	cfg := budgetTestConfig(t)
	rho := responseRho(t, sv, "medium")
	if spent := cfg.Epsilon(float64(accepted.Load()) * rho); spent > cfg.CapEpsilon {
		t.Fatalf("%d accepted submits spend ε %g > cap %g: double spend", accepted.Load(), spent, cfg.CapEpsilon)
	}
	if rejected.Load() == 0 {
		t.Fatalf("no rejections across %d submits", goroutines*perG)
	}
	// The cap was actually approached, not starved by spurious errors:
	// one more charge would cross it.
	if under := cfg.Epsilon(float64(accepted.Load()+1) * rho); under <= cfg.CapEpsilon {
		t.Fatalf("%d accepted but %d would still fit the cap", accepted.Load(), accepted.Load()+1)
	}
}

// failAppendRouter wraps a ShardRouter and fails Append on demand — the
// induced crack between a committed budget charge and its response
// append that the refund path compensates.
type failAppendRouter struct {
	shardset.ShardRouter
	fail atomic.Bool
}

func (f *failAppendRouter) Append(r *survey.Response) (int, error) {
	if f.fail.Load() {
		return 0, errors.New("induced append failure")
	}
	return f.ShardRouter.Append(r)
}

// TestBudgetRefundOnFailedAppend: when the append fails after the
// charge committed, the server refunds the charge so the worker is not
// billed for a response that was never stored.
func TestBudgetRefundOnFailedAppend(t *testing.T) {
	router := &failAppendRouter{ShardRouter: shardset.NewLocalSingle(store.NewMem())}
	set, err := budget.NewSet(budget.SetOptions{Shards: 1, Config: budgetTestConfig(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	srv, err := New(Config{
		Router: router, Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		Budget: set, BudgetEnforce: "enforce",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	sv := clusterTestSurvey()
	if resp, body := doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}
	const worker = "worker-refund"

	router.fail.Store(true)
	if code, body := submitCode(t, ts, budgetResponse(sv, worker, "medium")); code != http.StatusBadRequest {
		t.Fatalf("failed-append submit = %d: %s", code, body)
	}
	a, err := set.Peek(worker)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rho != 0 || a.Charges != 1 || a.Refunds != 1 {
		t.Fatalf("after refund account = %+v; want rho 0, 1 charge, 1 refund", a)
	}

	// With the router healed the same worker's full budget is available.
	router.fail.Store(false)
	if code, body := submitCode(t, ts, budgetResponse(sv, worker, "medium")); code != http.StatusCreated {
		t.Fatalf("healed submit = %d: %s", code, body)
	}
}

// TestBudgetLogMode: over-cap workers are admitted (and only logged)
// when enforcement is advisory.
func TestBudgetLogMode(t *testing.T) {
	set, err := budget.NewSet(budget.SetOptions{Shards: 1, Config: budgetTestConfig(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	srv, err := New(Config{
		Store: store.NewMem(), Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		Budget: set, BudgetEnforce: "log",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	sv := clusterTestSurvey()
	if resp, body := doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}
	const worker = "worker-log"
	for i := 0; i < 40; i++ {
		if code, body := submitCode(t, ts, budgetResponse(sv, worker, "medium")); code != http.StatusCreated {
			t.Fatalf("log-mode submit %d = %d: %s", i, code, body)
		}
	}
	a, err := set.Peek(worker)
	if err != nil {
		t.Fatal(err)
	}
	cfg := budgetTestConfig(t)
	if cfg.Epsilon(a.Rho) <= cfg.CapEpsilon {
		t.Fatalf("worker spent ε %g; the test meant to blow past cap %g", cfg.Epsilon(a.Rho), cfg.CapEpsilon)
	}
}

// TestBudgetConfigValidation covers the mode plumbing in New.
func TestBudgetConfigValidation(t *testing.T) {
	if _, err := New(Config{
		Store: store.NewMem(), Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		BudgetEnforce: "enforce",
	}); err == nil {
		t.Fatal("enforce mode without a charger must fail")
	}
	set, err := budget.NewSet(budget.SetOptions{Shards: 1, Config: budgetTestConfig(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	if _, err := New(Config{
		Store: store.NewMem(), Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		Budget: set, BudgetEnforce: "sometimes",
	}); err == nil {
		t.Fatal("unknown enforce mode must fail")
	}
	// Admin budget endpoint 404s when accounting is off.
	srv, err := New(Config{Store: store.NewMem(), Schedule: core.DefaultSchedule(), RequesterToken: testToken})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/api/v1/admin/budget/w", nil, testToken); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("admin budget without accounting = %d", resp.StatusCode)
	}
	_ = fmt.Sprintf // keep fmt for future debugging aids
}
