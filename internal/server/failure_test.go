package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"loki/internal/core"
	"loki/internal/store"
	"loki/internal/survey"
)

// faultyStore wraps a Mem store and fails (or panics) on demand.
type faultyStore struct {
	*store.Mem
	failSurveys   bool
	failResponses bool
	panicSurveys  bool
}

func (f *faultyStore) Surveys() ([]*survey.Survey, error) {
	if f.panicSurveys {
		panic("storage corrupted")
	}
	if f.failSurveys {
		return nil, errors.New("disk on fire")
	}
	return f.Mem.Surveys()
}

func (f *faultyStore) Responses(id string) ([]survey.Response, error) {
	if f.failResponses {
		return nil, errors.New("disk on fire")
	}
	return f.Mem.Responses(id)
}

// ScanResponses is the read path /aggregate and /quality actually use.
func (f *faultyStore) ScanResponses(id string, fromSeq uint64, fn func(uint64, *survey.Response) error) error {
	if f.failResponses {
		return errors.New("disk on fire")
	}
	return f.Mem.ScanResponses(id, fromSeq, fn)
}

func newFaultyServer(t *testing.T, fs *faultyStore) *httptest.Server {
	t.Helper()
	srv, err := New(Config{
		Store:          fs,
		Schedule:       core.DefaultSchedule(),
		RequesterToken: testToken,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestListSurveysStoreFailure(t *testing.T) {
	fs := &faultyStore{Mem: store.NewMem(), failSurveys: true}
	ts := newFaultyServer(t, fs)
	resp, _ := doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys", nil, "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing store list = %d", resp.StatusCode)
	}
}

func TestAggregateStoreFailure(t *testing.T) {
	fs := &faultyStore{Mem: store.NewMem()}
	if err := fs.Mem.PutSurvey(survey.Awareness()); err != nil {
		t.Fatal(err)
	}
	fs.failResponses = true
	ts := newFaultyServer(t, fs)
	resp, _ := doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys/"+survey.AwarenessID+"/aggregate", nil, testToken)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing store aggregate = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys/"+survey.AwarenessID+"/quality", nil, testToken)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing store quality = %d", resp.StatusCode)
	}
}

func TestPublishAuditStoreFailure(t *testing.T) {
	// The audit listing fails after the survey was stored: the handler
	// must surface a 500 rather than panic.
	fs := &faultyStore{Mem: store.NewMem(), failSurveys: true}
	ts := newFaultyServer(t, fs)
	resp, _ := doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", survey.Awareness(), testToken)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing audit publish = %d", resp.StatusCode)
	}
}

func TestPanicRecovery(t *testing.T) {
	fs := &faultyStore{Mem: store.NewMem(), panicSurveys: true}
	ts := newFaultyServer(t, fs)
	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys", nil, "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d (%s)", resp.StatusCode, body)
	}
	// The server survives and keeps serving after the panic.
	fs.panicSurveys = false
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive panic: %d", resp.StatusCode)
	}
}
