// Package server implements the Loki backend: the HTTP/JSON API the
// paper's Django prototype exposed to its iOS/Android apps. It serves
// survey definitions, accepts already-obfuscated responses (the server
// never sees raw answers — that is the entire point of at-source
// obfuscation), and computes noise-aware aggregates for requesters.
//
// Routes (v1):
//
//	GET  /api/v1/healthz                      liveness probe
//	GET  /api/v1/surveys                      survey list (worker view)
//	GET  /api/v1/surveys/{id}                 full survey definition
//	POST /api/v1/surveys                      publish a survey   [requester]
//	POST /api/v1/surveys/{id}/responses       submit a response
//	GET  /api/v1/surveys/{id}/aggregate       noise-aware stats  [requester]
//	GET  /api/v1/surveys/{id}/quality         consistency screen [requester]
//	GET  /api/v1/schedule                     the public noise schedule
//	GET  /api/v1/admin/store                  store/read-path stats [requester]
//	POST /api/v1/admin/accumulator/{id}/clear drop a poisoned accumulator [requester]
//
// Requester endpoints require "Authorization: Bearer <token>".
//
// The persistence layer behind the handlers is a shardset.ShardRouter:
// responses partition across shards (one shard in the classic
// standalone deployment, many in a cluster), and each shard has its own
// live partial aggregate.Accumulator folded independently and Merged at
// query time — so /aggregate and /quality cost O(1) in the number of
// stored responses with no cross-shard lock anywhere. The same Server
// type serves every cluster role: standalone (local single-shard
// router), node (local multi-shard router + the shardrpc surface),
// frontend (remote router merging node partials), and read replica
// (local router fed by WAL-tail shipping, mutating routes refused).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/aggregate"
	"loki/internal/budget"
	"loki/internal/checkpoint"
	"loki/internal/core"
	"loki/internal/ingest"
	"loki/internal/shardrpc"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// Config configures a Server.
type Config struct {
	// Store is the persistence backend for the classic single-shard
	// deployment. Exactly one of Store and Router must be set; a Store
	// is wrapped in a one-shard local router.
	Store store.Store
	// Router is the sharded persistence backend: a shardset.Local over
	// per-shard stores (node, replica) or a shardrpc remote router
	// (frontend).
	Router shardset.ShardRouter
	// Schedule is the published noise schedule; workers obfuscate with
	// it and aggregation attributes per-bin noise from it.
	Schedule core.Schedule
	// RequesterToken guards publish/aggregate endpoints. Required.
	RequesterToken string
	// Logger receives request logs; nil disables logging.
	Logger *log.Logger
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Checkpoints, when non-nil, is the durable checkpoint log for live
	// aggregate state: restored from on the first read of each survey
	// (so restart catch-up scans only each shard's tail beyond its own
	// checkpoint cursor) and written to by a background checkpointer.
	// The caller owns the log and closes it after the server.
	Checkpoints *checkpoint.Log
	// CheckpointInterval is the background checkpointer's flush period
	// (default 15s).
	CheckpointInterval time.Duration
	// CheckpointDirty is the minimum number of newly folded responses
	// that makes a shard partial's checkpoint stale enough to rewrite
	// on a flush (default 1).
	CheckpointDirty int
	// ClusterShards is the global shard count of the placement this
	// server participates in (a node's router owns a subset of it).
	// Defaults to the router's own shard count, which is correct for
	// standalone and frontend deployments; cluster nodes must set it so
	// durable per-shard state carries the true layout identity.
	ClusterShards int
	// FrontendCacheTTL bounds how long a frontend serves a cached
	// merged aggregate without revalidating against the nodes: within
	// the TTL a read is a pure cache hit (no RPCs) unless a submit
	// through this frontend bumped the expected cursor for some shard.
	// Zero means the 250ms default; negative disables caching entirely
	// (every read fans out full snapshot RPCs, the pre-cache behavior).
	// Only frontends (routers that serve partials) consult it. In a
	// multi-frontend deployment the TTL is the staleness bound for
	// submits routed through *other* frontends.
	FrontendCacheTTL time.Duration
	// FrontendRefresh, when positive, starts a background refresher
	// that revalidates recently read surveys' cache entries on this
	// interval, so steady-state reads of hot surveys never block on
	// node RPCs. Zero disables (reads refresh inline on expiry).
	FrontendRefresh time.Duration
	// Role names the deployment role on the admin surface ("standalone"
	// when empty; cmd/loki-server sets node/frontend/replica).
	Role string
	// ReadOnly refuses every mutating route (publish, submit, admin
	// clear) with 403 — the read-replica mode.
	ReadOnly bool
	// ReplicationInfo, when non-nil, is polled by the admin surface for
	// the replica's staleness cursors.
	ReplicationInfo func() *ReplicationInfo
	// Promote, when non-nil, handles POST /api/v1/admin/promote/{shard}:
	// the operator's failover signal. A replica wires its promotion here;
	// every other role answers 404.
	Promote func(shard int) (uint64, error)
	// Budget, when non-nil, is the privacy-budget charger the submit
	// path debits per-worker epsilon accounts through before appending:
	// an in-process budget.Set (standalone, node) or a shardrpc remote
	// charger (frontend). The caller owns it and closes it after the
	// server.
	Budget budget.Charger
	// BudgetEnforce selects what a charge decides: "off" never consults
	// the charger, "log" records every debit but admits over-cap
	// submits (reporting them), "enforce" rejects an over-cap submit
	// with 429 budget_exhausted. Empty defaults to "enforce" when
	// Budget is set, "off" otherwise.
	BudgetEnforce string
	// SubmitInflight, when positive, bounds how many submit requests
	// execute the submit path concurrently (admission control). Further
	// requests wait for a slot in a bounded queue of SubmitQueue; any
	// request beyond inflight+queue is shed immediately with 429 +
	// Retry-After — overload sheds instead of piling up goroutines.
	// Zero disables admission control (the pre-admission behavior).
	SubmitInflight int
	// SubmitQueue is the admission queue bound (how many submits may
	// wait for an inflight slot). Zero with SubmitInflight set means
	// shed as soon as every slot is busy. Setting SubmitQueue without
	// SubmitInflight enables admission with a default inflight bound of
	// 4x GOMAXPROCS.
	SubmitQueue int
	// RateLimitRPS, when positive, enforces a per-requester token
	// bucket on the submit path: each worker accrues RateLimitRPS
	// tokens/second up to RateLimitBurst and a submit spends one; an
	// empty bucket answers 429 rate_limited with a Retry-After hint.
	// Zero disables (the default).
	RateLimitRPS float64
	// RateLimitBurst caps a worker's token bucket (default
	// ceil(RateLimitRPS), at least 1).
	RateLimitBurst int
}

// Budget enforcement modes (parsed from Config.BudgetEnforce).
const (
	budgetOff = iota
	budgetLog
	budgetEnforcing
)

// Server is the Loki backend. It implements http.Handler.
type Server struct {
	cfg        Config
	router     shardset.ShardRouter
	est        *aggregate.Estimator
	mux        *http.ServeMux
	served     atomic.Int64 // responses accepted, for metrics
	levelTally [core.NumLevels]atomic.Int64

	// obf costs submits for budget charging (rho per response); only
	// built when a budget charger is configured. budgetMode is the
	// parsed BudgetEnforce; budgetRejected counts 429s served.
	obf            *core.Obfuscator
	budgetMode     int
	budgetRejected atomic.Int64

	// adm is the bounded submit admission gate and limiter the
	// per-requester rate limit; both nil (no gate, no branch on the
	// hot path) unless the corresponding Config knobs are set.
	adm     *admission
	limiter *rateLimiter

	// live holds per-survey live aggregate state (one partial per
	// shard) so reads are O(1) in stored responses; see liveSet.
	liveMu sync.Mutex
	live   map[string]*liveSet
	// poisoned counts stored records the live read path has rejected
	// (see PoisonError), for the admin surface.
	poisoned atomic.Int64

	// shardHealth holds the node's per-shard health rows ([]ShardHealth,
	// set by Node.ApplyManifest) for the unauthenticated health probe.
	shardHealth atomic.Value

	// partials, when non-nil, is the remote-merge read path: the router
	// can hand over already-folded per-shard partials (a frontend
	// asking its nodes), so reads Merge fetched state instead of
	// folding locally.
	partials partialFetcher
	// cache, when non-nil, is the frontend partial cache over partials:
	// reads serve a cached merge keyed by (survey, cursor vector) and
	// revalidate with conditional delta RPCs instead of re-shipping
	// full snapshots. See frontcache.go.
	cache *frontCache

	// ckptStop/ckptDone bracket the background checkpointer's lifetime;
	// refStop/refDone the frontend cache refresher's. Nil when the
	// respective loop is disabled.
	ckptStop  chan struct{}
	ckptDone  chan struct{}
	refStop   chan struct{}
	refDone   chan struct{}
	closeOnce sync.Once
}

// partialFetcher is the optional router capability behind the frontend
// read path: fetch one shard's partial accumulator, already folded by
// whoever owns the shard — conditionally, against the cursor the
// caller already holds.
type partialFetcher interface {
	PartialSince(shard int, surveyID string, have uint64) (*shardrpc.Partial, error)
}

// New validates the configuration and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil && cfg.Router == nil {
		return nil, errors.New("server: config needs a store or a shard router")
	}
	if cfg.Store != nil && cfg.Router != nil {
		return nil, errors.New("server: config needs a store or a shard router, not both")
	}
	if cfg.RequesterToken == "" {
		return nil, errors.New("server: config needs a requester token")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 15 * time.Second
	}
	if cfg.CheckpointDirty <= 0 {
		cfg.CheckpointDirty = 1
	}
	if cfg.Role == "" {
		cfg.Role = "standalone"
	}
	if cfg.BudgetEnforce == "" {
		if cfg.Budget != nil {
			cfg.BudgetEnforce = "enforce"
		} else {
			cfg.BudgetEnforce = "off"
		}
	}
	var budgetMode int
	switch cfg.BudgetEnforce {
	case "off":
		budgetMode = budgetOff
	case "log":
		budgetMode = budgetLog
	case "enforce":
		budgetMode = budgetEnforcing
	default:
		return nil, fmt.Errorf("server: budget enforce mode %q (want off, log, or enforce)", cfg.BudgetEnforce)
	}
	if budgetMode != budgetOff && cfg.Budget == nil {
		return nil, fmt.Errorf("server: budget mode %q needs a budget charger", cfg.BudgetEnforce)
	}
	est, err := aggregate.NewEstimator(cfg.Schedule)
	if err != nil {
		return nil, err
	}
	var obf *core.Obfuscator
	if cfg.Budget != nil {
		// The submit path costs each response with the published
		// schedule; δ lives in the charger's config, so the default
		// options are fine here — rho is δ-free.
		obf, err = core.NewObfuscator(cfg.Schedule, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
	}
	router := cfg.Router
	if router == nil {
		router = shardset.NewLocalSingle(cfg.Store)
	}
	if cfg.ClusterShards <= 0 {
		cfg.ClusterShards = router.Shards()
	}
	if cfg.SubmitQueue > 0 && cfg.SubmitInflight <= 0 {
		cfg.SubmitInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.SubmitQueue < 0 || cfg.SubmitInflight < 0 {
		return nil, errors.New("server: submit queue/inflight bounds must be non-negative")
	}
	if cfg.RateLimitRPS < 0 {
		return nil, errors.New("server: rate limit rps must be non-negative")
	}
	s := &Server{cfg: cfg, router: router, est: est, obf: obf, budgetMode: budgetMode, mux: http.NewServeMux(), live: make(map[string]*liveSet)}
	if cfg.SubmitInflight > 0 {
		s.adm = newAdmission(cfg.SubmitInflight, cfg.SubmitQueue)
	}
	if cfg.RateLimitRPS > 0 {
		s.limiter = newRateLimiter(cfg.RateLimitRPS, cfg.RateLimitBurst)
	}
	if pf, ok := router.(partialFetcher); ok {
		s.partials = pf
		if cfg.FrontendCacheTTL >= 0 {
			ttl := cfg.FrontendCacheTTL
			if ttl == 0 {
				ttl = DefaultFrontendCacheTTL
			}
			s.cache = newFrontCache(ttl)
		}
	}
	s.routes()
	if cfg.Checkpoints != nil {
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop()
	}
	if s.cache != nil && cfg.FrontendRefresh > 0 {
		s.refStop = make(chan struct{})
		s.refDone = make(chan struct{})
		go s.refreshLoop(cfg.FrontendRefresh)
	}
	return s, nil
}

// Router returns the server's shard router (the node glue wires it into
// the shardrpc surface).
func (s *Server) Router() shardset.ShardRouter { return s.router }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /api/v1/surveys", s.handleListSurveys)
	s.mux.HandleFunc("GET /api/v1/surveys/{id}", s.handleGetSurvey)
	s.mux.HandleFunc("POST /api/v1/surveys", s.requireToken(s.mutating(s.handlePublishSurvey)))
	s.mux.HandleFunc("POST /api/v1/surveys/{id}/responses", s.mutating(s.admit(s.handleSubmitResponse)))
	s.mux.HandleFunc("POST /api/v1/responses", s.mutating(s.admit(s.handleSubmitBatch)))
	s.mux.HandleFunc("GET /api/v1/surveys/{id}/aggregate", s.requireToken(s.handleAggregate))
	s.mux.HandleFunc("GET /api/v1/surveys/{id}/quality", s.requireToken(s.handleQuality))
	s.mux.HandleFunc("GET /api/v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("GET /api/v1/admin/store", s.requireToken(s.handleAdminStore))
	s.mux.HandleFunc("GET /api/v1/admin/budget/{worker}", s.requireToken(s.handleAdminBudget))
	s.mux.HandleFunc("POST /api/v1/admin/accumulator/{id}/clear", s.requireToken(s.mutating(s.handleAccumulatorClear)))
	// Health is deliberately unauthenticated (like healthz): it is the
	// probe target of failover detectors and load balancers.
	s.mux.HandleFunc("GET /api/v1/admin/health", s.handleAdminHealth)
	// Promote is NOT wrapped in mutating: the whole point is flipping a
	// read-only replica writable.
	s.mux.HandleFunc("POST /api/v1/admin/promote/{shard}", s.requireToken(s.handlePromote))
}

// ServeHTTP implements http.Handler with panic recovery and logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.logf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			writeError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	s.logf("%s %s", r.Method, r.URL.Path)
	s.mux.ServeHTTP(w, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// requireToken wraps requester-only handlers with bearer-token auth.
func (s *Server) requireToken(h http.HandlerFunc) http.HandlerFunc {
	want := "Bearer " + s.cfg.RequesterToken
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != want {
			writeError(w, http.StatusUnauthorized, "missing or invalid requester token")
			return
		}
		h(w, r)
	}
}

// mutating refuses writes on a read-only replica.
func (s *Server) mutating(h http.HandlerFunc) http.HandlerFunc {
	if !s.cfg.ReadOnly {
		return h
	}
	return func(w http.ResponseWriter, _ *http.Request) {
		writeError(w, http.StatusForbidden, "read-only replica: submit and publish go to the primary")
	}
}

// ---------------------------------------------------------------------------
// Wire types

// SurveySummary is the worker-facing listing entry, mirroring the app's
// survey list screen (Fig. 1a): title, size, reward and the privacy
// levels on offer.
type SurveySummary struct {
	ID          string   `json:"id"`
	Title       string   `json:"title"`
	Description string   `json:"description,omitempty"`
	Questions   int      `json:"questions"`
	RewardCents int      `json:"reward_cents"`
	Levels      []string `json:"levels"`
	Responses   int      `json:"responses"`
}

// ScheduleInfo is the public noise schedule with the per-rating ε each
// level implies. Unbounded values (level none adds no noise, so its ε is
// infinite) are encoded as -1 because JSON cannot carry +Inf.
type ScheduleInfo struct {
	Sigma            []float64 `json:"sigma"`
	RREpsilon        []float64 `json:"rr_epsilon"`
	EpsilonPerRating []float64 `json:"epsilon_per_rating"`
	Delta            float64   `json:"delta"`
}

// jsonSafe maps +Inf (unbounded privacy loss) to the -1 wire sentinel.
func jsonSafe(v float64) float64 {
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

// SubmitResult acknowledges a stored response.
type SubmitResult struct {
	SurveyID string `json:"survey_id"`
	Accepted bool   `json:"accepted"`
	// Stored is the number of responses the accepting shard now holds
	// for the survey — the survey's total in a single-shard deployment.
	Stored int `json:"stored"`
}

// AggregateResult carries per-question estimates for requesters: mean
// estimates for rating/numeric questions, debiased distributions for
// multiple-choice questions.
type AggregateResult struct {
	SurveyID  string                       `json:"survey_id"`
	Questions []aggregate.QuestionEstimate `json:"questions"`
	Choices   []aggregate.ChoiceEstimate   `json:"choices,omitempty"`
	// DegradedShards lists shards whose owner (and every replica) was
	// unreachable when this aggregate was merged: their responses are
	// missing from the estimates. Empty on a complete read. The marker
	// is how a frontend keeps answering through a node outage instead
	// of failing the whole merged read.
	DegradedShards []int `json:"degraded_shards,omitempty"`
}

// QualityResult reports how many stored responses pass the survey's
// redundancy (consistency) checks — the server-side view of the paper's
// random-responder filtering. Obfuscated responses are checked with a
// noise-proportional slack (3σ at the response's level), since honest
// noisy answers legitimately perturb both halves of a pair.
type QualityResult struct {
	SurveyID     string `json:"survey_id"`
	Total        int    `json:"total"`
	Consistent   int    `json:"consistent"`
	Inconsistent int    `json:"inconsistent"`
	// PerLevel counts inconsistent responses per privacy level.
	PerLevelInconsistent []int `json:"per_level_inconsistent"`
}

// Stats reports simple liveness counters.
type Stats struct {
	Status            string  `json:"status"`
	ResponsesAccepted int64   `json:"responses_accepted"`
	LevelTally        []int64 `json:"level_tally"`
}

// ---------------------------------------------------------------------------
// Handlers

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	tally := make([]int64, core.NumLevels)
	for i := range tally {
		tally[i] = s.levelTally[i].Load()
	}
	writeJSON(w, http.StatusOK, Stats{
		Status:            "ok",
		ResponsesAccepted: s.served.Load(),
		LevelTally:        tally,
	})
}

func (s *Server) handleSchedule(w http.ResponseWriter, _ *http.Request) {
	obf, err := core.NewObfuscator(s.cfg.Schedule, core.DefaultOptions())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	eps := obf.EpsilonPerRating()
	info := ScheduleInfo{Delta: obf.Options().Delta}
	for l := 0; l < core.NumLevels; l++ {
		info.Sigma = append(info.Sigma, s.cfg.Schedule.Sigma[l])
		info.RREpsilon = append(info.RREpsilon, jsonSafe(s.cfg.Schedule.RREpsilon[l]))
		info.EpsilonPerRating = append(info.EpsilonPerRating, jsonSafe(eps[l]))
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListSurveys(w http.ResponseWriter, _ *http.Request) {
	surveys, err := s.router.Surveys()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	levels := make([]string, 0, core.NumLevels)
	for _, l := range core.Levels() {
		levels = append(levels, l.String())
	}
	out := make([]SurveySummary, 0, len(surveys))
	for _, sv := range surveys {
		out = append(out, SurveySummary{
			ID:          sv.ID,
			Title:       sv.Title,
			Description: sv.Description,
			Questions:   len(sv.Questions),
			RewardCents: sv.RewardCents,
			Levels:      levels,
			Responses:   shardset.Count(s.router, sv.ID),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSurvey(w http.ResponseWriter, r *http.Request) {
	sv, err := s.router.Survey(r.PathValue("id"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, sv)
}

// PublishResult acknowledges a published survey and carries the linkage
// audit of the requester's whole portfolio — the platform-level warning
// the §2 attack shows is missing from AMT. Publication is not blocked
// (the requester may have legitimate reasons), but critical findings are
// logged.
type PublishResult struct {
	ID    string              `json:"id"`
	Audit *survey.AuditReport `json:"audit,omitempty"`
}

func (s *Server) handlePublishSurvey(w http.ResponseWriter, r *http.Request) {
	var sv survey.Survey
	if !s.readJSON(w, r, &sv) {
		return
	}
	status := http.StatusCreated
	if err := s.router.PutSurvey(&sv); err != nil {
		if !errors.Is(err, store.ErrExists) {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		// Republish. An identical definition is idempotent; a changed
		// one replaces the stored definition and must invalidate every
		// piece of fold state built under the old one — the live
		// partials and the durable checkpoints — or /aggregate and
		// /quality keep answering from bins laid out for the old
		// question set.
		prev, gerr := s.router.Survey(sv.ID)
		if gerr != nil {
			writeError(w, http.StatusInternalServerError, gerr.Error())
			return
		}
		status = http.StatusOK
		if prev.Fingerprint() != sv.Fingerprint() {
			if rerr := s.router.ReplaceSurvey(&sv); rerr != nil {
				writeError(w, http.StatusBadRequest, rerr.Error())
				return
			}
			s.invalidateLive(sv.ID)
			s.logf("republished survey %q with a changed definition; live aggregate state reset", sv.ID)
		}
	}
	portfolio, err := s.router.Surveys()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	audit := survey.AuditPortfolio(portfolio)
	if audit.MaxSeverity() == survey.Critical {
		s.logf("CRITICAL linkage audit after publishing %q: portfolio completes a quasi-identifier", sv.ID)
	}
	writeJSON(w, status, PublishResult{ID: sv.ID, Audit: audit})
}

func (s *Server) handleSubmitResponse(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sv, err := s.router.Survey(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	var resp survey.Response
	if !s.readJSON(w, r, &resp) {
		return
	}
	if resp.SurveyID == "" {
		resp.SurveyID = id
	}
	if resp.SurveyID != id {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("response survey_id %q does not match URL %q", resp.SurveyID, id))
		return
	}
	stored, ref := s.submitOne(sv, &resp)
	if ref != nil {
		s.writeRefusal(w, ref)
		return
	}
	writeJSON(w, http.StatusCreated, SubmitResult{
		SurveyID: id,
		Accepted: true,
		Stored:   stored,
	})
}

// submitRefusal is a refused submit before it is written to the wire:
// the HTTP status, the short wire code (when one exists — batch items
// report it instead of the long message), the human message, the
// Retry-After hint for retryable refusals, and the budget outcome when
// the refusal is the enriched budget_exhausted shape.
type submitRefusal struct {
	status     int
	code       string
	msg        string
	retryAfter int
	budget     *budget.Outcome
}

// wireError is what a batch item reports for this refusal.
func (ref *submitRefusal) wireError() string {
	if ref.code != "" {
		return ref.code
	}
	return ref.msg
}

// writeRefusal renders a refusal as the single-submit error response,
// preserving the exact pre-batch wire shapes: budget refusals keep the
// enriched BudgetExhaustedError body, retryable shed/throttle refusals
// carry Retry-After on header and body, everything else is the plain
// {"error": msg} envelope.
func (s *Server) writeRefusal(w http.ResponseWriter, ref *submitRefusal) {
	if ref.budget != nil {
		s.writeBudgetExhausted(w, *ref.budget)
		return
	}
	if ref.retryAfter > 0 && ref.status == http.StatusTooManyRequests {
		writeOverload(w, ref.wireError(), ref.retryAfter)
		return
	}
	if ref.retryAfter > 0 && ref.status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(ref.retryAfter))
		writeJSON(w, http.StatusServiceUnavailable, OverloadError{
			Error:             ref.wireError(),
			RetryAfterSeconds: ref.retryAfter,
		})
		return
	}
	writeError(w, ref.status, ref.msg)
}

// submitOne runs the whole submit pipeline for one response whose
// survey is already resolved: per-requester rate limit, privacy-level
// contract, validation, budget admission, durable append, and live
// bookkeeping. A nil refusal means the response is durably stored and
// counted.
func (s *Server) submitOne(sv *survey.Survey, resp *survey.Response) (int, *submitRefusal) {
	if ref := s.throttle(resp.WorkerID); ref != nil {
		return 0, ref
	}
	lvl, err := core.ParseLevel(resp.PrivacyLevel)
	if err != nil {
		return 0, &submitRefusal{status: http.StatusBadRequest, msg: err.Error()}
	}
	// The server cannot verify noise was added (by design it never sees
	// the raw answers), but it enforces the declared contract: a level
	// above none must be marked obfuscated.
	if lvl != core.None && !resp.Obfuscated {
		return 0, &submitRefusal{status: http.StatusBadRequest,
			msg: "responses at privacy levels above none must be obfuscated at source"}
	}
	if err := resp.Validate(sv); err != nil {
		return 0, &submitRefusal{status: http.StatusBadRequest, msg: err.Error()}
	}
	// Charge the worker's privacy budget and append — fused into one
	// node RPC when the router can piggyback the charge, two steps
	// (charge, then append, refunding on failure) otherwise.
	stored, ref := s.admitAndAppend(sv, resp, lvl)
	if ref != nil {
		return 0, ref
	}
	s.served.Add(1)
	s.levelTally[lvl].Add(1)
	// Keep the routed shard's partial hot: fold everything newly stored
	// on that shard (this response included) so the next read pays
	// nothing. Best-effort — the response is already durably accepted,
	// and reads catch up from the cursor themselves. A frontend skips
	// this — its nodes fold their own partials — but tells its partial
	// cache the shard's cursor floor moved, so the next read through
	// this frontend revalidates that shard instead of serving a cached
	// merge that predates this submit (read-your-writes).
	if s.partials == nil {
		if ls, err := s.liveFor(sv); err == nil {
			p := ls.parts[s.router.Route(sv.ID, resp.WorkerID)]
			if err := p.advance(s.router); err != nil {
				s.logf("live aggregate catch-up for %q shard %d: %v", sv.ID, p.shard, err)
			}
		}
	} else if s.cache != nil && stored > 0 {
		s.cache.noteSubmit(sv.ID, s.router.Route(sv.ID, resp.WorkerID), uint64(stored))
	}
	return stored, nil
}

// maxBatchSubmit bounds a batch submit request; the 1 MiB body bound
// keeps realistic batches far below it, this is a defense in depth.
const maxBatchSubmit = 1024

// batchSubmitFanout bounds the per-request goroutines a batch fans out
// across so its appends coalesce in the store's group commit (or the
// remote router's shard batcher) without unbounded concurrency.
const batchSubmitFanout = 32

// BatchSubmitRequest is the batching client's submit body: a set of
// already-obfuscated responses, each carrying its own survey_id.
type BatchSubmitRequest struct {
	Responses []survey.Response `json:"responses"`
}

// BatchSubmitItem is one record's verdict in a batch submit reply,
// aligned with the request's Responses. Accepted records are durable;
// refused records carry the single-submit error vocabulary (the short
// code for shed/throttle/budget refusals, the message otherwise), the
// HTTP status the record would have received as a single submit, and
// the Retry-After hint when the refusal is retryable.
type BatchSubmitItem struct {
	SurveyID          string `json:"survey_id"`
	Accepted          bool   `json:"accepted"`
	Stored            int    `json:"stored,omitempty"`
	Status            int    `json:"status,omitempty"`
	Error             string `json:"error,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// BatchSubmitResult is a batch submit reply. The HTTP status is 200
// whenever the batch itself was processed — per-record failures travel
// in Results, because a mixed batch has no single status.
type BatchSubmitResult struct {
	Accepted int               `json:"accepted"`
	Results  []BatchSubmitItem `json:"results"`
}

// handleSubmitBatch is the batching submit endpoint
// (POST /api/v1/responses): every record runs the same pipeline as a
// single submit, fanned out over a bounded pool so concurrent appends
// coalesce downstream, and each record answers for itself in a
// request-aligned result. Admission control gates the whole request
// (one queue slot per batch); the per-requester rate limit is spent
// per record.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSubmitRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Responses) == 0 {
		writeError(w, http.StatusBadRequest, "batch must contain at least one response")
		return
	}
	if len(req.Responses) > maxBatchSubmit {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d responses exceeds the %d-record bound", len(req.Responses), maxBatchSubmit))
		return
	}
	// Resolve each distinct survey once; a missing survey refuses its
	// records without failing the batch.
	svs := make(map[string]*survey.Survey)
	svRefs := make(map[string]*submitRefusal)
	for i := range req.Responses {
		id := req.Responses[i].SurveyID
		if id == "" {
			continue
		}
		if _, seen := svs[id]; seen {
			continue
		}
		if _, seen := svRefs[id]; seen {
			continue
		}
		sv, err := s.router.Survey(id)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, store.ErrNotFound) {
				status = http.StatusNotFound
			}
			svRefs[id] = &submitRefusal{status: status, msg: err.Error()}
			continue
		}
		svs[id] = sv
	}
	type slot struct {
		stored int
		ref    *submitRefusal
	}
	out := make([]slot, len(req.Responses))
	sem := make(chan struct{}, batchSubmitFanout)
	var wg sync.WaitGroup
	for i := range req.Responses {
		resp := &req.Responses[i]
		if resp.SurveyID == "" {
			out[i].ref = &submitRefusal{status: http.StatusBadRequest, msg: "response missing survey_id"}
			continue
		}
		sv := svs[resp.SurveyID]
		if sv == nil {
			out[i].ref = svRefs[resp.SurveyID]
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, sv *survey.Survey, resp *survey.Response) {
			defer func() {
				<-sem
				wg.Done()
			}()
			out[i].stored, out[i].ref = s.submitOne(sv, resp)
		}(i, sv, resp)
	}
	wg.Wait()
	res := BatchSubmitResult{Results: make([]BatchSubmitItem, len(out))}
	for i := range out {
		item := BatchSubmitItem{SurveyID: req.Responses[i].SurveyID}
		if ref := out[i].ref; ref != nil {
			item.Status = ref.status
			item.Error = ref.wireError()
			item.RetryAfterSeconds = ref.retryAfter
			if ref.budget != nil && item.RetryAfterSeconds == 0 {
				item.RetryAfterSeconds = BudgetRetryAfterSeconds
			}
		} else {
			item.Accepted = true
			item.Stored = out[i].stored
			res.Accepted++
		}
		res.Results[i] = item
	}
	writeJSON(w, http.StatusOK, &res)
}

// piggybackRouter is the optional router surface that fuses a budget
// charge into the submit RPC itself (shardrpc.Remote implements it):
// the owning node decides the debit and appends in one handler call,
// keeping the enforce-mode hot path at a single round-trip.
type piggybackRouter interface {
	CanPiggybackCharge(shard int, workerID string) bool
	AppendCharged(shard int, resp *survey.Response, ch budget.Charge) (int, budget.Outcome, error)
}

// admitAndAppend is the submit path's admission + durability step:
// charge the worker's privacy budget (when accounting is on) and
// durably append the response. When the router can carry the charge on
// the submit RPC — the worker's budget shard lives on the response
// shard's node — the two fuse into one round-trip; otherwise the
// charge ships first and a failed append is compensated by a refund.
// Returns the stored count, or the refusal to answer with.
func (s *Server) admitAndAppend(sv *survey.Survey, resp *survey.Response, lvl core.Level) (int, *submitRefusal) {
	if s.budgetMode != budgetOff {
		shard := s.router.Route(resp.SurveyID, resp.WorkerID)
		if pr, ok := s.router.(piggybackRouter); ok && pr.CanPiggybackCharge(shard, resp.WorkerID) {
			return s.appendCharged(pr, shard, sv, resp, lvl)
		}
	}
	charged, ref := s.chargeBudget(sv, resp, lvl)
	if ref != nil {
		return 0, ref
	}
	stored, err := s.router.Append(resp)
	if err != nil {
		if charged != nil {
			if rerr := s.cfg.Budget.Refund(*charged); rerr != nil {
				s.logf("budget refund for worker %q after failed append: %v", resp.WorkerID, rerr)
			}
		}
		return 0, appendRefusal(err)
	}
	return stored, nil
}

// FailoverRetryAfterSeconds is the Retry-After on 503s for writes to a
// failed-over shard: short, because promotion typically lands within a
// probe interval or two and the client should retry promptly.
const FailoverRetryAfterSeconds = 1

// Failover wire codes on 503 refusals.
const (
	// FailedOverCode: the shard's primary is down and its replica has
	// not been promoted yet — writes are fenced until promotion.
	FailedOverCode = "shard_failed_over"
	// FencedCode: the write carried a placement epoch older than the
	// one the owning node has applied (a promotion is propagating).
	FencedCode = "write_fenced"
	// NodeUnreachableCode: the RPC to the owning node never completed.
	NodeUnreachableCode = "node_unreachable"
)

// appendRefusal maps an append failure to a refusal. A downstream
// node's shed or throttle verdict (an overloaded cluster node behind
// this frontend) keeps its retryable 429 vocabulary so the client's
// backoff engages. Failover refusals — a shard whose primary is down,
// a write fenced by a newer placement epoch, a node that never answered
// — are 503 + Retry-After: the condition is the cluster's, not the
// request's, and clears once promotion lands. Anything else is the
// pre-admission 400.
func appendRefusal(err error) *submitRefusal {
	var oe *shardrpc.OverloadedError
	if errors.As(err, &oe) {
		ra := oe.RetryAfterSeconds
		if ra <= 0 {
			ra = OverloadRetryAfterSeconds
		}
		return &submitRefusal{status: http.StatusTooManyRequests, code: OverloadedCode,
			msg: err.Error(), retryAfter: ra}
	}
	var te *shardrpc.ThrottledError
	if errors.As(err, &te) {
		ra := te.RetryAfterSeconds
		if ra <= 0 {
			ra = OverloadRetryAfterSeconds
		}
		return &submitRefusal{status: http.StatusTooManyRequests, code: RateLimitedCode,
			msg: err.Error(), retryAfter: ra}
	}
	var fo *shardrpc.FailoverError
	if errors.As(err, &fo) {
		return &submitRefusal{status: http.StatusServiceUnavailable, code: FailedOverCode,
			msg: err.Error(), retryAfter: FailoverRetryAfterSeconds}
	}
	if errors.Is(err, shardrpc.ErrFenced) {
		return &submitRefusal{status: http.StatusServiceUnavailable, code: FencedCode,
			msg: err.Error(), retryAfter: FailoverRetryAfterSeconds}
	}
	// A *url.Error is specifically an RPC that never completed (only the
	// shardrpc client produces one here); local append failures keep the
	// 400 below.
	var ue *url.Error
	if errors.As(err, &ue) {
		return &submitRefusal{status: http.StatusServiceUnavailable, code: NodeUnreachableCode,
			msg: err.Error(), retryAfter: FailoverRetryAfterSeconds}
	}
	return &submitRefusal{status: http.StatusBadRequest, msg: err.Error()}
}

// appendCharged is the fused path: one RPC decides the debit and
// appends. The error vocabulary mirrors chargeBudget's status mapping;
// a failed append's charge was already refunded on the node.
func (s *Server) appendCharged(pr piggybackRouter, shard int, sv *survey.Survey, resp *survey.Response, lvl core.Level) (int, *submitRefusal) {
	ch, ref := s.buildCharge(sv, resp, lvl)
	if ref != nil {
		return 0, ref
	}
	stored, out, err := pr.AppendCharged(shard, resp, *ch)
	switch {
	case errors.Is(err, budget.ErrExhausted):
		s.budgetRejected.Add(1)
		return 0, s.budgetRefusal(out)
	case errors.Is(err, budget.ErrUndecided):
		return 0, &submitRefusal{status: http.StatusServiceUnavailable,
			msg: "privacy-budget charge failed: " + err.Error()}
	case err != nil:
		return 0, appendRefusal(err)
	}
	// A zero outcome on a stored response is the log-mode fail-open
	// signature: the node could not decide the charge but appended
	// anyway (enforce-mode charge failures surface as ErrUndecided).
	if out.WorkerID == "" {
		s.logf("budget charge for worker %q failed (log mode, submit admitted)", resp.WorkerID)
	} else if out.OverCap {
		s.logOverCap(resp.WorkerID, out, lvl)
	}
	return stored, nil
}

// BudgetRetryAfterSeconds is the advisory Retry-After on 429
// budget_exhausted answers. A privacy budget is cumulative — it does
// not replenish on a clock — so the hint is a coarse back-off until an
// operator raises the cap or the worker drops to a cheaper privacy
// level, not a lease expiry.
const BudgetRetryAfterSeconds = 3600

// BudgetExhaustedError is the 429 budget_exhausted body: the error
// code plus the worker's remaining (ε, δ) headroom and the Retry-After
// hint, so a client can tell whether a cheaper level would still fit
// without a follow-up balance query.
type BudgetExhaustedError struct {
	Error             string  `json:"error"`
	RetryAfterSeconds int     `json:"retry_after_seconds"`
	RemainingEpsilon  float64 `json:"remaining_epsilon"`
	// RemainingDelta is the δ the ε headroom is measured at (the
	// ledger's configured conversion δ, constant per deployment).
	RemainingDelta float64 `json:"remaining_delta"`
}

// writeBudgetExhausted answers a rejected charge with the enriched 429.
func (s *Server) writeBudgetExhausted(w http.ResponseWriter, out budget.Outcome) {
	w.Header().Set("Retry-After", strconv.Itoa(BudgetRetryAfterSeconds))
	writeJSON(w, http.StatusTooManyRequests, BudgetExhaustedError{
		Error:             budget.ErrExhausted.Error(),
		RetryAfterSeconds: BudgetRetryAfterSeconds,
		RemainingEpsilon:  out.RemainingEpsilon,
		RemainingDelta:    s.cfg.Budget.Config().Delta,
	})
}

// budgetRefusal is the enriched budget_exhausted refusal: the short
// wire code, the standing Retry-After hint, and the outcome carrying
// the worker's remaining headroom for the single-submit body.
func (s *Server) budgetRefusal(out budget.Outcome) *submitRefusal {
	return &submitRefusal{
		status:     http.StatusTooManyRequests,
		code:       budget.ErrExhausted.Error(),
		msg:        budget.ErrExhausted.Error(),
		retryAfter: BudgetRetryAfterSeconds,
		budget:     &out,
	}
}

// buildCharge prices one submit for the ledger.
func (s *Server) buildCharge(sv *survey.Survey, resp *survey.Response, lvl core.Level) (*budget.Charge, *submitRefusal) {
	rho, unprotected, err := s.obf.ResponseRho(sv, lvl)
	if err != nil {
		return nil, &submitRefusal{status: http.StatusBadRequest, msg: err.Error()}
	}
	return &budget.Charge{
		WorkerID:    resp.WorkerID,
		SurveyID:    sv.ID,
		Rho:         rho,
		Unprotected: unprotected,
		Enforce:     s.budgetMode == budgetEnforcing,
	}, nil
}

func (s *Server) logOverCap(workerID string, out budget.Outcome, lvl core.Level) {
	s.logf("worker %q over budget cap (spent ε %.4g of %.4g) at level %s; %s mode admits",
		workerID, out.SpentEpsilon, s.cfg.Budget.Config().CapEpsilon, lvl, s.cfg.BudgetEnforce)
}

// chargeBudget debits the submitting worker's privacy budget over the
// separate charge RPC. It returns the charge to refund on a later
// append failure (nil when nothing was charged) and the refusal to
// answer with when the submit may not proceed.
//
// Failure policy: in enforce mode an undecidable charge (shard down,
// WAL failure) fails the submit closed with 503 — admitting unmetered
// spend would defeat the cap. In log mode it fails open: accounting is
// advisory there, so the submit proceeds and the miss is logged. A
// charge routed to a budget shard this server's charger does not host
// (a direct-to-node submit whose worker lives on another node's shard)
// is skipped: enforcement for that worker happens at the frontier.
func (s *Server) chargeBudget(sv *survey.Survey, resp *survey.Response, lvl core.Level) (*budget.Charge, *submitRefusal) {
	if s.budgetMode == budgetOff {
		return nil, nil
	}
	ch, ref := s.buildCharge(sv, resp, lvl)
	if ref != nil {
		return nil, ref
	}
	out, err := s.cfg.Budget.Charge(*ch)
	switch {
	case errors.Is(err, budget.ErrNotHosted):
		return nil, nil
	case err != nil && s.budgetMode == budgetEnforcing:
		return nil, &submitRefusal{status: http.StatusServiceUnavailable,
			msg: "privacy-budget charge failed: " + err.Error()}
	case err != nil:
		s.logf("budget charge for worker %q failed (log mode, submit admitted): %v", resp.WorkerID, err)
		return nil, nil
	case out.Rejected:
		s.budgetRejected.Add(1)
		return nil, s.budgetRefusal(out)
	}
	if out.OverCap {
		s.logOverCap(resp.WorkerID, out, lvl)
	}
	return ch, nil
}

// surveyEstimate is the shared read path of /aggregate and /quality:
// resolve the survey, then refresh its per-shard partials (scan only
// the responses each shard appended since the last read — usually none
// — fold, Merge, finalize). On a frontend the partials come from the
// owning nodes instead of local folds. Cost is independent of how many
// responses the store holds.
func (s *Server) surveyEstimate(w http.ResponseWriter, id string) (*survey.Survey, *aggregate.SurveyEstimate, []int, bool) {
	sv, err := s.router.Survey(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return nil, nil, nil, false
	}
	var fin *aggregate.SurveyEstimate
	var degraded []int
	switch {
	case s.cache != nil:
		fin, degraded, err = s.cachedRemoteEstimate(sv)
	case s.partials != nil:
		fin, degraded, err = s.mergedRemoteEstimate(sv)
	default:
		var ls *liveSet
		if ls, err = s.liveFor(sv); err == nil {
			fin, err = s.refresh(ls)
		}
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return nil, nil, nil, false
	}
	return sv, fin, degraded, true
}

// mergedRemoteEstimate is the uncached frontend read path: fetch every
// shard's full partial accumulator from the node that owns and folds
// it, Merge the partials, finalize. The state shipped per shard is
// O(questions × levels) — independent of response count — so a merged
// read costs one small RPC per shard regardless of how much data the
// cluster holds. It is what a frontend runs with caching disabled, and
// what a cold cache's first fill is equivalent to.
//
// A shard whose RPC failed in transport (node down, every replica with
// it) degrades instead of failing the whole read: the merge proceeds
// without it and the shard lands in the returned degraded list. Errors
// the owner itself answered (fingerprint skew, unknown survey) still
// fail whole — the node is alive and disagreeing, which no marker can
// paper over. A read where every shard degrades fails: there is
// nothing left to serve.
func (s *Server) mergedRemoteEstimate(sv *survey.Survey) (*aggregate.SurveyEstimate, []int, error) {
	n := s.router.Shards()
	parts := make([]*shardrpc.Partial, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], errs[i] = s.partials.PartialSince(i, sv.ID, 0)
		}(i)
	}
	wg.Wait()
	var degraded []int
	for i, err := range errs {
		if err != nil {
			if shardrpc.IsTransportError(err) {
				degraded = append(degraded, i)
				continue
			}
			return nil, nil, fmt.Errorf("shard %d partial: %w", i, err)
		}
	}
	if len(degraded) == n {
		return nil, nil, fmt.Errorf("every shard unreachable (first: shard %d: %w)", degraded[0], errs[degraded[0]])
	}
	if len(degraded) > 0 {
		s.logf("merged read of %q degraded: shards %v unreachable", sv.ID, degraded)
	}
	fp := sv.Fingerprint()
	merged, err := aggregate.NewAccumulator(s.cfg.Schedule, sv)
	if err != nil {
		return nil, nil, err
	}
	for i, p := range parts {
		if p == nil {
			continue // degraded
		}
		if p.Fingerprint != fp {
			// A republish is still propagating: the node folded under a
			// different definition than the frontend resolved. Refusing
			// beats merging bins from two question sets.
			return nil, nil, fmt.Errorf("shard %d partial folded under definition %s, frontend has %s (republish in flight?)",
				i, p.Fingerprint, fp)
		}
		part, err := aggregate.RestoreAccumulator(s.cfg.Schedule, sv, p.State)
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d partial: %w", i, err)
		}
		if err := merged.Merge(part); err != nil {
			return nil, nil, fmt.Errorf("shard %d partial: %w", i, err)
		}
	}
	fin, err := merged.Finalize()
	if err != nil {
		return nil, nil, err
	}
	return fin, degraded, nil
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	sv, fin, degraded, ok := s.surveyEstimate(w, r.PathValue("id"))
	if !ok {
		return
	}
	out := AggregateResult{SurveyID: sv.ID, DegradedShards: degraded}
	for i := range sv.Questions {
		if qe, ok := fin.Questions[sv.Questions[i].ID]; ok {
			out.Questions = append(out.Questions, *qe)
		}
		if ce, ok := fin.Choices[sv.Questions[i].ID]; ok {
			out.Choices = append(out.Choices, *ce)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	sv, fin, _, ok := s.surveyEstimate(w, r.PathValue("id"))
	if !ok {
		return
	}
	out := QualityResult{
		SurveyID:             sv.ID,
		Total:                fin.Quality.Total,
		Consistent:           fin.Quality.Consistent,
		Inconsistent:         fin.Quality.Inconsistent,
		PerLevelInconsistent: append([]int(nil), fin.Quality.PerLevelInconsistent[:]...),
	}
	writeJSON(w, http.StatusOK, out)
}

// errDeltaDone aborts a delta fold once it reaches the partial's
// cursor (later records belong to the next delta).
var errDeltaDone = errors.New("server: delta complete")

// PartialState serves a shard's partial accumulator to the shardrpc
// surface: catch the shard's partial up with its store, then answer
// conditionally against the cursor the caller already holds —
// not-modified when nothing changed, a delta fold of only the
// responses in (have, cursor] when the caller is merely behind, a full
// snapshot when the caller is cold (have 0) or ahead of the shard (its
// cached state indexes a stream this store never produced). shard is a
// local shard index.
func (s *Server) PartialState(shard int, surveyID string, have uint64) (*shardrpc.Partial, error) {
	if shard < 0 || shard >= s.router.Shards() {
		return nil, fmt.Errorf("server: shard %d outside [0, %d)", shard, s.router.Shards())
	}
	sv, err := s.router.Survey(surveyID)
	if err != nil {
		return nil, err
	}
	ls, err := s.liveFor(sv)
	if err != nil {
		return nil, err
	}
	p := ls.parts[shard]
	p.mu.Lock()
	if err := p.catchUp(s.router); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	cursor := p.cursor.Load()
	out := &shardrpc.Partial{
		SurveyID:    surveyID,
		Shard:       shard,
		Fingerprint: ls.fp,
		Cursor:      cursor,
	}
	if have == cursor && have > 0 {
		p.mu.Unlock()
		out.NotModified = true
		return out, nil
	}
	if have == 0 || have > cursor {
		out.State = p.acc.Snapshot()
		p.mu.Unlock()
		return out, nil
	}
	p.mu.Unlock()
	// Delta: fold only (have, cursor] from the store into a fresh
	// accumulator. The records are already durable and immutable, so no
	// lock is held across the scan; the partial itself folded every one
	// of them without error during catch-up, so Add cannot reject here
	// short of store corruption.
	delta, err := aggregate.NewAccumulator(s.cfg.Schedule, sv)
	if err != nil {
		return nil, err
	}
	err = s.router.ScanShard(shard, surveyID, have, func(seq uint64, r *survey.Response) error {
		if seq > cursor {
			return errDeltaDone
		}
		return delta.Add(r)
	})
	if err != nil && !errors.Is(err, errDeltaDone) {
		return nil, err
	}
	out.Delta = true
	out.From = have
	out.State = delta.Snapshot()
	return out, nil
}

// ---------------------------------------------------------------------------
// Admin surface

// SurveyVersionInfo is one definition version in a survey's republish
// history.
type SurveyVersionInfo struct {
	Fingerprint string `json:"fingerprint"`
	// PublishedAt is when the definition was published; zero for
	// records persisted before publish timestamps existed.
	PublishedAt time.Time `json:"published_at,omitzero"`
}

// SurveyHistoryInfo is one survey's republish history on the admin
// surface: every definition fingerprint the store has held, oldest
// first. A single entry means the survey was never republished.
type SurveyHistoryInfo struct {
	SurveyID string              `json:"survey_id"`
	Versions []SurveyVersionInfo `json:"versions"`
}

// ReplicaShardInfo is one followed shard's staleness cursor on a
// replica's admin surface.
type ReplicaShardInfo struct {
	// Shard is the global shard index being followed.
	Shard int `json:"shard"`
	// Role is "replica" while the shard follows its primary, "primary"
	// once this replica has been promoted for it.
	Role string `json:"role,omitempty"`
	// Epoch is the source journal epoch the replica is applying.
	Epoch uint64 `json:"epoch"`
	// AppliedOffset is how far into the source journal the replica has
	// applied; SourceEnd is the journal length at the last poll, so
	// SourceEnd − AppliedOffset is the lag in records.
	AppliedOffset uint64 `json:"applied_offset"`
	SourceEnd     uint64 `json:"source_end"`
	LagRecords    uint64 `json:"lag_records"`
	// Resets counts epoch mismatches that forced a full resync.
	Resets int `json:"resets,omitempty"`
	// Bootstraps counts journal truncations that forced a rebuild from
	// store scans.
	Bootstraps int `json:"bootstraps,omitempty"`
	// LastSyncAt is when the shard last completed a poll; LastError is
	// the most recent poll failure (empty when healthy).
	LastSyncAt time.Time `json:"last_sync_at,omitzero"`
	LastError  string    `json:"last_error,omitempty"`
}

// ReplicationInfo is the replica's staleness report.
type ReplicationInfo struct {
	// Source is the node address the replica follows.
	Source string `json:"source"`
	// Shards holds per-followed-shard cursors.
	Shards []ReplicaShardInfo `json:"shards"`
}

// AdminStoreInfo is the requester-facing observability view of the
// persistence layer and the live read path: per-shard WAL shape for the
// ingest store, every live partial's catch-up cursor, republish
// history, and — on a replica — the replication staleness cursors.
type AdminStoreInfo struct {
	// Backend names the store implementation ("mem", "file", "ingest",
	// "remote" for a frontend, or the concrete Go type for custom
	// stores).
	Backend string `json:"backend"`
	// Role is the deployment role (standalone, node, frontend,
	// replica).
	Role string `json:"role"`
	// RouterShards is the shard count responses partition across (1 in
	// the classic standalone deployment).
	RouterShards int `json:"router_shards"`
	// Ingest carries cumulative ingest counters; only for ingest
	// backends.
	Ingest *ingest.Stats `json:"ingest,omitempty"`
	// Shards holds per-shard segment/compaction state; only for ingest
	// backends.
	Shards []ingest.ShardStats `json:"shards,omitempty"`
	// Accumulators lists the live partials' cursors, sorted by survey
	// then shard.
	Accumulators []LiveAccumulator `json:"accumulators"`
	// PoisonedRecords counts stored records the live read path has
	// rejected since startup (each one wedges its shard's reads for
	// that survey until the accumulator is rebuilt; see PoisonError).
	PoisonedRecords int64 `json:"poisoned_records"`
	// Checkpoints reports the durable checkpoint log's per-shard
	// cursors and ages; nil when checkpointing is disabled.
	Checkpoints *CheckpointInfo `json:"checkpoints,omitempty"`
	// Journals reports per-shard append-journal retention (entries,
	// truncation base, retained bytes, registered followers); only on
	// journaling nodes.
	Journals []shardset.JournalStats `json:"journals,omitempty"`
	// FrontendCache reports the frontend partial cache's per-survey
	// hit/miss/delta/not-modified counters and cursor vectors; only on
	// caching frontends.
	FrontendCache *FrontendCacheInfo `json:"frontend_cache,omitempty"`
	// Surveys is the per-survey republish history (definition
	// fingerprints with publish timestamps); only for stores that
	// record it.
	Surveys []SurveyHistoryInfo `json:"surveys,omitempty"`
	// Replication is the replica's staleness report; only on replicas.
	Replication *ReplicationInfo `json:"replication,omitempty"`
	// Budget reports the privacy-budget ledger (mode, cap, per-shard
	// stats); only when a budget charger is configured.
	Budget *BudgetInfo `json:"budget,omitempty"`
	// Admission reports the submit admission gate and the
	// per-requester rate limit (queue depth, inflight, shed and
	// throttle counters); only when either control is configured.
	Admission *AdmissionInfo `json:"admission,omitempty"`
}

// BudgetInfo is the admin surface's view of the budget service.
type BudgetInfo struct {
	// Mode is the enforcement mode (off, log, enforce).
	Mode string `json:"mode"`
	// CapEpsilon and Delta are the configured per-worker (ε, δ) ceiling.
	CapEpsilon float64 `json:"cap_epsilon"`
	Delta      float64 `json:"delta"`
	// Shards is the global budget shard count workers hash into.
	Shards int `json:"shards"`
	// Rejected counts submits this server refused with 429.
	Rejected int64 `json:"rejected,omitempty"`
	// Ledgers holds per-shard ledger stats: the hosted shards for an
	// in-process set, every node's for a frontend. Nil (with Error set)
	// when the stats fetch failed.
	Ledgers []budget.ShardStats `json:"ledgers,omitempty"`
	// Error reports a failed stats fetch (an unreachable node).
	Error string `json:"error,omitempty"`
}

// WorkerBudgetInfo is one worker's remaining budget on the admin
// surface.
type WorkerBudgetInfo struct {
	WorkerID string `json:"worker_id"`
	// SpentEpsilon is the cumulative ε at the configured δ;
	// RemainingEpsilon the headroom under the cap.
	SpentEpsilon     float64 `json:"spent_epsilon"`
	RemainingEpsilon float64 `json:"remaining_epsilon"`
	CapEpsilon       float64 `json:"cap_epsilon"`
	Delta            float64 `json:"delta"`
	// Rho is the raw zCDP total behind SpentEpsilon.
	Rho float64 `json:"rho"`
	// Unprotected counts answers released with no noise (unbounded
	// loss, outside the finite budget).
	Unprotected int `json:"unprotected,omitempty"`
	// Charges and Refunds count accepted debits and credits.
	Charges uint64 `json:"charges,omitempty"`
	Refunds uint64 `json:"refunds,omitempty"`
}

// ingestStatser is the optional interface a store implements to report
// shard-level stats on the admin surface. Asserted structurally so
// custom Store implementations can report themselves without the server
// enumerating concrete types.
type ingestStatser interface {
	Stats() ingest.Stats
	ShardStats() []ingest.ShardStats
}

// adminStores returns the concrete stores behind the router: the single
// configured store, or a local router's per-shard stores. Empty for a
// remote router (a frontend inspects its nodes' admin surfaces
// instead).
func (s *Server) adminStores() []store.Store {
	if s.cfg.Store != nil {
		return []store.Store{s.cfg.Store}
	}
	if l, ok := s.router.(*shardset.Local); ok {
		out := make([]store.Store, l.Shards())
		for i := range out {
			out[i] = l.Store(i)
		}
		return out
	}
	return nil
}

func (s *Server) handleAdminStore(w http.ResponseWriter, _ *http.Request) {
	info := AdminStoreInfo{
		Role:            s.cfg.Role,
		RouterShards:    s.router.Shards(),
		Accumulators:    s.liveAccumulators(),
		PoisonedRecords: s.poisoned.Load(),
		Checkpoints:     s.checkpointInfo(),
		FrontendCache:   s.frontendCacheInfo(),
		Admission:       s.admissionInfo(),
	}
	if l, ok := s.router.(*shardset.Local); ok {
		info.Journals = l.JournalStats()
	}
	stores := s.adminStores()
	if len(stores) == 0 {
		info.Backend = "remote"
	} else {
		switch stores[0].(type) {
		case *store.Mem:
			info.Backend = "mem"
		case *store.File:
			info.Backend = "file"
		case *ingest.Sharded:
			info.Backend = "ingest"
		default:
			info.Backend = fmt.Sprintf("%T", stores[0])
		}
		// Sum ingest counters across the router's stores (a node runs
		// one ingest store per owned shard); per-WAL-shard stats are
		// concatenated in store order.
		var agg ingest.Stats
		var shardStats []ingest.ShardStats
		haveIngest := false
		for _, st := range stores {
			if ist, ok := st.(ingestStatser); ok {
				haveIngest = true
				is := ist.Stats()
				agg.Appends += is.Appends
				agg.Commits += is.Commits
				agg.Rotations += is.Rotations
				agg.Snapshots += is.Snapshots
				shardStats = append(shardStats, ist.ShardStats()...)
			}
		}
		if haveIngest {
			info.Ingest = &agg
			info.Shards = shardStats
		}
	}
	info.Surveys = s.surveyHistories(stores)
	if s.cfg.ReplicationInfo != nil {
		info.Replication = s.cfg.ReplicationInfo()
	}
	if s.cfg.Budget != nil {
		bcfg := s.cfg.Budget.Config()
		bi := &BudgetInfo{
			Mode:       s.cfg.BudgetEnforce,
			CapEpsilon: bcfg.CapEpsilon,
			Delta:      bcfg.Delta,
			Shards:     s.cfg.Budget.Shards(),
			Rejected:   s.budgetRejected.Load(),
		}
		if ledgers, err := s.cfg.Budget.Stats(); err != nil {
			bi.Error = err.Error()
		} else {
			bi.Ledgers = ledgers
		}
		info.Budget = bi
	}
	writeJSON(w, http.StatusOK, info)
}

// handleAdminBudget answers one worker's remaining budget, routed to
// the shard owning the account (so any frontend or the standalone
// server answers for any worker).
func (s *Server) handleAdminBudget(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Budget == nil {
		writeError(w, http.StatusNotFound, "budget accounting is not configured on this server")
		return
	}
	worker := r.PathValue("worker")
	a, err := s.cfg.Budget.Peek(worker)
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, budget.ErrNotHosted) {
			status = http.StatusMisdirectedRequest
		}
		writeError(w, status, err.Error())
		return
	}
	bcfg := s.cfg.Budget.Config()
	writeJSON(w, http.StatusOK, WorkerBudgetInfo{
		WorkerID:         worker,
		SpentEpsilon:     bcfg.Epsilon(a.Rho),
		RemainingEpsilon: bcfg.Remaining(a.Rho),
		CapEpsilon:       bcfg.CapEpsilon,
		Delta:            bcfg.Delta,
		Rho:              a.Rho,
		Unprotected:      a.Unprotected,
		Charges:          a.Charges,
		Refunds:          a.Refunds,
	})
}

// surveyHistories collects republish history from the first store that
// records it (definitions are replicated to every shard, so any one
// store's history covers the deployment).
func (s *Server) surveyHistories(stores []store.Store) []SurveyHistoryInfo {
	for _, st := range stores {
		h, ok := st.(store.Historian)
		if !ok {
			continue
		}
		svs, err := st.Surveys()
		if err != nil {
			continue
		}
		out := make([]SurveyHistoryInfo, 0, len(svs))
		for _, sv := range svs {
			versions := h.SurveyHistory(sv.ID)
			info := SurveyHistoryInfo{SurveyID: sv.ID}
			for _, v := range versions {
				vi := SurveyVersionInfo{Fingerprint: v.Fingerprint}
				if v.PublishedUnixNano != 0 {
					vi.PublishedAt = time.Unix(0, v.PublishedUnixNano)
				}
				info.Versions = append(info.Versions, vi)
			}
			out = append(out, info)
		}
		return out
	}
	return nil
}

// ShardHealth is one shard's row on the health surface: the role this
// server plays for it, the placement epoch it is at, its replication
// lag (replica rows only), and the last error touching it.
type ShardHealth struct {
	Shard int    `json:"shard"`
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch,omitempty"`
	// LagRecords is the replication lag in records (replica rows).
	LagRecords uint64 `json:"lag_records,omitempty"`
	// PrimaryDown marks a frontend row whose routed primary the failure
	// detector currently considers dead.
	PrimaryDown bool   `json:"primary_down,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

// HealthInfo is the GET /api/v1/admin/health body — the probe target
// for failover detectors, load balancers, and the bench harness. It is
// served without auth (like healthz) and assembled per role: a node
// reports its owned shards' fence state, a replica its staleness
// cursors and promotions, a frontend its routing table with the
// failure detector's verdicts.
type HealthInfo struct {
	Status string        `json:"status"`
	Role   string        `json:"role"`
	Shards []ShardHealth `json:"shards,omitempty"`
	// ManifestVersion is the placement manifest version a frontend has
	// applied; 0 off-frontend or pre-manifest.
	ManifestVersion int64 `json:"manifest_version,omitempty"`
	// StaleReads / FencedWrites count replica-served partial fetches
	// and epoch-fenced submits on a frontend.
	StaleReads   uint64 `json:"stale_reads,omitempty"`
	FencedWrites uint64 `json:"fenced_writes,omitempty"`
}

// setShardHealth publishes a node's per-shard health rows (called by
// the cluster glue when a placement manifest is applied).
func (s *Server) setShardHealth(hs []ShardHealth) { s.shardHealth.Store(hs) }

// failoverReporter is the optional router capability behind the
// frontend health view (shardrpc.Remote implements it once a manifest
// is applied).
type failoverReporter interface {
	FailoverInfo() *shardrpc.FailoverInfo
}

func (s *Server) handleAdminHealth(w http.ResponseWriter, _ *http.Request) {
	info := HealthInfo{Status: "ok", Role: s.cfg.Role}
	switch {
	case s.cfg.ReplicationInfo != nil:
		// Replica: staleness cursors, with promoted shards as primaries.
		if ri := s.cfg.ReplicationInfo(); ri != nil {
			for _, sh := range ri.Shards {
				info.Shards = append(info.Shards, ShardHealth{
					Shard:      sh.Shard,
					Role:       sh.Role,
					Epoch:      sh.Epoch,
					LagRecords: sh.LagRecords,
					LastError:  sh.LastError,
				})
			}
		}
	default:
		if fr, ok := s.router.(failoverReporter); ok {
			if fi := fr.FailoverInfo(); fi != nil {
				// Frontend: the routing table as the failure detector sees
				// it.
				info.ManifestVersion = fi.ManifestVersion
				info.StaleReads = fi.StaleReads
				info.FencedWrites = fi.FencedWrites
				for _, sh := range fi.Shards {
					role := "primary"
					if sh.PrimaryDown {
						role = "failed-over"
					}
					info.Shards = append(info.Shards, ShardHealth{
						Shard:       sh.Shard,
						Role:        role,
						Epoch:       sh.Epoch,
						PrimaryDown: sh.PrimaryDown,
						LastError:   sh.LastError,
					})
				}
				break
			}
		}
		if hs, ok := s.shardHealth.Load().([]ShardHealth); ok {
			// Node with a manifest applied: fence state per owned shard.
			info.Shards = append(info.Shards, hs...)
			break
		}
		if l, ok := s.router.(*shardset.Local); ok {
			// Manifest-less node or standalone: every owned shard is an
			// unfenced primary.
			for i := 0; i < l.Shards(); i++ {
				info.Shards = append(info.Shards, ShardHealth{Shard: l.GlobalID(i), Role: "primary"})
			}
		}
	}
	writeJSON(w, http.StatusOK, info)
}

// PromoteResult acknowledges an operator promotion.
type PromoteResult struct {
	Shard int `json:"shard"`
	// Epoch is the shard's placement epoch after promotion (0 when the
	// replica manages no manifest).
	Epoch uint64 `json:"epoch"`
}

// handlePromote is the operator failover signal: flip one followed
// shard writable on this replica (bumping its placement epoch through
// the shared manifest when one is configured). Idempotent.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Promote == nil {
		writeError(w, http.StatusNotFound, "promotion is not available on this server (not a replica)")
		return
	}
	shard, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || shard < 0 {
		writeError(w, http.StatusBadRequest, "shard must be a non-negative integer")
		return
	}
	epoch, err := s.cfg.Promote(shard)
	if err != nil {
		status := http.StatusInternalServerError
		var no *shardrpc.ErrNotOwned
		if errors.As(err, &no) {
			status = http.StatusMisdirectedRequest
		}
		writeError(w, status, err.Error())
		return
	}
	s.logf("shard %d promoted via admin surface (placement epoch %d)", shard, epoch)
	writeJSON(w, http.StatusOK, PromoteResult{Shard: shard, Epoch: epoch})
}

// AccumulatorClearResult acknowledges an admin accumulator clear.
type AccumulatorClearResult struct {
	SurveyID string `json:"survey_id"`
	// Cleared reports whether live fold state existed and was dropped.
	Cleared bool `json:"cleared"`
	// CheckpointDropped reports whether a durable checkpoint was
	// tombstoned alongside.
	CheckpointDropped bool `json:"checkpoint_dropped"`
}

// handleAccumulatorClear lets an operator drop a poisoned (or merely
// suspect) survey accumulator — live partials and durable checkpoints —
// without republishing the survey. The next read rebuilds from the
// store; if the poisoned record is still there the poison returns,
// which is the honest outcome (the record, not the accumulator, is the
// problem — but after an offline store repair this endpoint is how the
// server notices).
func (s *Server) handleAccumulatorClear(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.router.Survey(id); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	hadCkpt := false
	if s.cfg.Checkpoints != nil {
		_, hadCkpt = s.cfg.Checkpoints.GetShard(id, 0)
		if !hadCkpt {
			// Any shard's record counts; shard 0 just covers the common
			// single-shard case cheaply.
			for _, rec := range s.cfg.Checkpoints.Records() {
				if rec.SurveyID == id {
					hadCkpt = true
					break
				}
			}
		}
	}
	cleared := s.invalidateLive(id)
	s.logf("admin cleared accumulator for %q (live=%v checkpoint=%v)", id, cleared, hadCkpt)
	writeJSON(w, http.StatusOK, AccumulatorClearResult{
		SurveyID:          id,
		Cleared:           cleared,
		CheckpointDropped: hadCkpt,
	})
}

// ---------------------------------------------------------------------------
// JSON helpers

func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "request body must contain a single JSON value")
		return false
	}
	_, _ = io.Copy(io.Discard, body)
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing more to do than drop the connection.
		return
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
