// Package server implements the Loki backend: the HTTP/JSON API the
// paper's Django prototype exposed to its iOS/Android apps. It serves
// survey definitions, accepts already-obfuscated responses (the server
// never sees raw answers — that is the entire point of at-source
// obfuscation), and computes noise-aware aggregates for requesters.
//
// Routes (v1):
//
//	GET  /api/v1/healthz                      liveness probe
//	GET  /api/v1/surveys                      survey list (worker view)
//	GET  /api/v1/surveys/{id}                 full survey definition
//	POST /api/v1/surveys                      publish a survey   [requester]
//	POST /api/v1/surveys/{id}/responses       submit a response
//	GET  /api/v1/surveys/{id}/aggregate       noise-aware stats  [requester]
//	GET  /api/v1/schedule                     the public noise schedule
//
// Requester endpoints require "Authorization: Bearer <token>".
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sync/atomic"

	"loki/internal/aggregate"
	"loki/internal/core"
	"loki/internal/store"
	"loki/internal/survey"
)

// Config configures a Server.
type Config struct {
	// Store is the persistence backend. Required.
	Store store.Store
	// Schedule is the published noise schedule; workers obfuscate with
	// it and aggregation attributes per-bin noise from it.
	Schedule core.Schedule
	// RequesterToken guards publish/aggregate endpoints. Required.
	RequesterToken string
	// Logger receives request logs; nil disables logging.
	Logger *log.Logger
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
}

// Server is the Loki backend. It implements http.Handler.
type Server struct {
	cfg        Config
	est        *aggregate.Estimator
	mux        *http.ServeMux
	served     atomic.Int64 // responses accepted, for metrics
	levelTally [core.NumLevels]atomic.Int64
}

// New validates the configuration and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: config needs a store")
	}
	if cfg.RequesterToken == "" {
		return nil, errors.New("server: config needs a requester token")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	est, err := aggregate.NewEstimator(cfg.Schedule)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, est: est, mux: http.NewServeMux()}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /api/v1/surveys", s.handleListSurveys)
	s.mux.HandleFunc("GET /api/v1/surveys/{id}", s.handleGetSurvey)
	s.mux.HandleFunc("POST /api/v1/surveys", s.requireToken(s.handlePublishSurvey))
	s.mux.HandleFunc("POST /api/v1/surveys/{id}/responses", s.handleSubmitResponse)
	s.mux.HandleFunc("GET /api/v1/surveys/{id}/aggregate", s.requireToken(s.handleAggregate))
	s.mux.HandleFunc("GET /api/v1/surveys/{id}/quality", s.requireToken(s.handleQuality))
	s.mux.HandleFunc("GET /api/v1/schedule", s.handleSchedule)
}

// ServeHTTP implements http.Handler with panic recovery and logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.logf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			writeError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	s.logf("%s %s", r.Method, r.URL.Path)
	s.mux.ServeHTTP(w, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// requireToken wraps requester-only handlers with bearer-token auth.
func (s *Server) requireToken(h http.HandlerFunc) http.HandlerFunc {
	want := "Bearer " + s.cfg.RequesterToken
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != want {
			writeError(w, http.StatusUnauthorized, "missing or invalid requester token")
			return
		}
		h(w, r)
	}
}

// ---------------------------------------------------------------------------
// Wire types

// SurveySummary is the worker-facing listing entry, mirroring the app's
// survey list screen (Fig. 1a): title, size, reward and the privacy
// levels on offer.
type SurveySummary struct {
	ID          string   `json:"id"`
	Title       string   `json:"title"`
	Description string   `json:"description,omitempty"`
	Questions   int      `json:"questions"`
	RewardCents int      `json:"reward_cents"`
	Levels      []string `json:"levels"`
	Responses   int      `json:"responses"`
}

// ScheduleInfo is the public noise schedule with the per-rating ε each
// level implies. Unbounded values (level none adds no noise, so its ε is
// infinite) are encoded as -1 because JSON cannot carry +Inf.
type ScheduleInfo struct {
	Sigma            []float64 `json:"sigma"`
	RREpsilon        []float64 `json:"rr_epsilon"`
	EpsilonPerRating []float64 `json:"epsilon_per_rating"`
	Delta            float64   `json:"delta"`
}

// jsonSafe maps +Inf (unbounded privacy loss) to the -1 wire sentinel.
func jsonSafe(v float64) float64 {
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

// SubmitResult acknowledges a stored response.
type SubmitResult struct {
	SurveyID string `json:"survey_id"`
	Accepted bool   `json:"accepted"`
	// Stored is the number of responses the survey now has.
	Stored int `json:"stored"`
}

// AggregateResult carries per-question estimates for requesters: mean
// estimates for rating/numeric questions, debiased distributions for
// multiple-choice questions.
type AggregateResult struct {
	SurveyID  string                       `json:"survey_id"`
	Questions []aggregate.QuestionEstimate `json:"questions"`
	Choices   []aggregate.ChoiceEstimate   `json:"choices,omitempty"`
}

// QualityResult reports how many stored responses pass the survey's
// redundancy (consistency) checks — the server-side view of the paper's
// random-responder filtering. Obfuscated responses are checked with a
// noise-proportional slack (3σ at the response's level), since honest
// noisy answers legitimately perturb both halves of a pair.
type QualityResult struct {
	SurveyID     string `json:"survey_id"`
	Total        int    `json:"total"`
	Consistent   int    `json:"consistent"`
	Inconsistent int    `json:"inconsistent"`
	// PerLevel counts inconsistent responses per privacy level.
	PerLevelInconsistent []int `json:"per_level_inconsistent"`
}

// Stats reports simple liveness counters.
type Stats struct {
	Status            string  `json:"status"`
	ResponsesAccepted int64   `json:"responses_accepted"`
	LevelTally        []int64 `json:"level_tally"`
}

// ---------------------------------------------------------------------------
// Handlers

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	tally := make([]int64, core.NumLevels)
	for i := range tally {
		tally[i] = s.levelTally[i].Load()
	}
	writeJSON(w, http.StatusOK, Stats{
		Status:            "ok",
		ResponsesAccepted: s.served.Load(),
		LevelTally:        tally,
	})
}

func (s *Server) handleSchedule(w http.ResponseWriter, _ *http.Request) {
	obf, err := core.NewObfuscator(s.cfg.Schedule, core.DefaultOptions())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	eps := obf.EpsilonPerRating()
	info := ScheduleInfo{Delta: obf.Options().Delta}
	for l := 0; l < core.NumLevels; l++ {
		info.Sigma = append(info.Sigma, s.cfg.Schedule.Sigma[l])
		info.RREpsilon = append(info.RREpsilon, jsonSafe(s.cfg.Schedule.RREpsilon[l]))
		info.EpsilonPerRating = append(info.EpsilonPerRating, jsonSafe(eps[l]))
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListSurveys(w http.ResponseWriter, _ *http.Request) {
	surveys, err := s.cfg.Store.Surveys()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	levels := make([]string, 0, core.NumLevels)
	for _, l := range core.Levels() {
		levels = append(levels, l.String())
	}
	out := make([]SurveySummary, 0, len(surveys))
	for _, sv := range surveys {
		out = append(out, SurveySummary{
			ID:          sv.ID,
			Title:       sv.Title,
			Description: sv.Description,
			Questions:   len(sv.Questions),
			RewardCents: sv.RewardCents,
			Levels:      levels,
			Responses:   s.cfg.Store.ResponseCount(sv.ID),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSurvey(w http.ResponseWriter, r *http.Request) {
	sv, err := s.cfg.Store.Survey(r.PathValue("id"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, sv)
}

// PublishResult acknowledges a published survey and carries the linkage
// audit of the requester's whole portfolio — the platform-level warning
// the §2 attack shows is missing from AMT. Publication is not blocked
// (the requester may have legitimate reasons), but critical findings are
// logged.
type PublishResult struct {
	ID    string              `json:"id"`
	Audit *survey.AuditReport `json:"audit,omitempty"`
}

func (s *Server) handlePublishSurvey(w http.ResponseWriter, r *http.Request) {
	var sv survey.Survey
	if !s.readJSON(w, r, &sv) {
		return
	}
	if err := s.cfg.Store.PutSurvey(&sv); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	portfolio, err := s.cfg.Store.Surveys()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	audit := survey.AuditPortfolio(portfolio)
	if audit.MaxSeverity() == survey.Critical {
		s.logf("CRITICAL linkage audit after publishing %q: portfolio completes a quasi-identifier", sv.ID)
	}
	writeJSON(w, http.StatusCreated, PublishResult{ID: sv.ID, Audit: audit})
}

func (s *Server) handleSubmitResponse(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sv, err := s.cfg.Store.Survey(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	var resp survey.Response
	if !s.readJSON(w, r, &resp) {
		return
	}
	if resp.SurveyID == "" {
		resp.SurveyID = id
	}
	if resp.SurveyID != id {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("response survey_id %q does not match URL %q", resp.SurveyID, id))
		return
	}
	lvl, err := core.ParseLevel(resp.PrivacyLevel)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The server cannot verify noise was added (by design it never sees
	// the raw answers), but it enforces the declared contract: a level
	// above none must be marked obfuscated.
	if lvl != core.None && !resp.Obfuscated {
		writeError(w, http.StatusBadRequest,
			"responses at privacy levels above none must be obfuscated at source")
		return
	}
	if err := resp.Validate(sv); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.cfg.Store.AppendResponse(&resp); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.served.Add(1)
	s.levelTally[lvl].Add(1)
	writeJSON(w, http.StatusCreated, SubmitResult{
		SurveyID: id,
		Accepted: true,
		Stored:   s.cfg.Store.ResponseCount(id),
	})
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sv, err := s.cfg.Store.Survey(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	responses, err := s.cfg.Store.Responses(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	ests, err := s.est.EstimateSurvey(sv, responses)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	choices, err := s.est.EstimateSurveyChoices(sv, responses)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := AggregateResult{SurveyID: id}
	for i := range sv.Questions {
		if qe, ok := ests[sv.Questions[i].ID]; ok {
			out.Questions = append(out.Questions, *qe)
		}
		if ce, ok := choices[sv.Questions[i].ID]; ok {
			out.Choices = append(out.Choices, *ce)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sv, err := s.cfg.Store.Survey(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	responses, err := s.cfg.Store.Responses(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := QualityResult{SurveyID: id, PerLevelInconsistent: make([]int, core.NumLevels)}
	for i := range responses {
		resp := &responses[i]
		lvl, err := core.ParseLevel(resp.PrivacyLevel)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		slack := 0.0
		if resp.Obfuscated {
			slack = 3 * s.cfg.Schedule.Sigma[lvl]
		}
		out.Total++
		if resp.Consistent(sv, slack) {
			out.Consistent++
		} else {
			out.Inconsistent++
			out.PerLevelInconsistent[lvl]++
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// ---------------------------------------------------------------------------
// JSON helpers

func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "request body must contain a single JSON value")
		return false
	}
	_, _ = io.Copy(io.Discard, body)
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing more to do than drop the connection.
		return
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
