// Package server implements the Loki backend: the HTTP/JSON API the
// paper's Django prototype exposed to its iOS/Android apps. It serves
// survey definitions, accepts already-obfuscated responses (the server
// never sees raw answers — that is the entire point of at-source
// obfuscation), and computes noise-aware aggregates for requesters.
//
// Routes (v1):
//
//	GET  /api/v1/healthz                      liveness probe
//	GET  /api/v1/surveys                      survey list (worker view)
//	GET  /api/v1/surveys/{id}                 full survey definition
//	POST /api/v1/surveys                      publish a survey   [requester]
//	POST /api/v1/surveys/{id}/responses       submit a response
//	GET  /api/v1/surveys/{id}/aggregate       noise-aware stats  [requester]
//	GET  /api/v1/surveys/{id}/quality         consistency screen [requester]
//	GET  /api/v1/schedule                     the public noise schedule
//	GET  /api/v1/admin/store                  store/read-path stats [requester]
//
// Requester endpoints require "Authorization: Bearer <token>".
//
// Reads are incremental: each survey has a live aggregate.Accumulator
// that folds responses as they are stored (updated on submit, lazily
// caught up from the store's scan cursor on first read and after a
// restart), so /aggregate and /quality cost O(1) in the number of
// stored responses.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/aggregate"
	"loki/internal/checkpoint"
	"loki/internal/core"
	"loki/internal/ingest"
	"loki/internal/store"
	"loki/internal/survey"
)

// Config configures a Server.
type Config struct {
	// Store is the persistence backend. Required.
	Store store.Store
	// Schedule is the published noise schedule; workers obfuscate with
	// it and aggregation attributes per-bin noise from it.
	Schedule core.Schedule
	// RequesterToken guards publish/aggregate endpoints. Required.
	RequesterToken string
	// Logger receives request logs; nil disables logging.
	Logger *log.Logger
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Checkpoints, when non-nil, is the durable checkpoint log for live
	// aggregate state: restored from on the first read of each survey
	// (so restart catch-up scans only the store tail beyond the
	// checkpoint cursor) and written to by a background checkpointer.
	// The caller owns the log and closes it after the server.
	Checkpoints *checkpoint.Log
	// CheckpointInterval is the background checkpointer's flush period
	// (default 15s).
	CheckpointInterval time.Duration
	// CheckpointDirty is the minimum number of newly folded responses
	// that makes a survey's checkpoint stale enough to rewrite on a
	// flush (default 1).
	CheckpointDirty int
}

// Server is the Loki backend. It implements http.Handler.
type Server struct {
	cfg        Config
	est        *aggregate.Estimator
	mux        *http.ServeMux
	served     atomic.Int64 // responses accepted, for metrics
	levelTally [core.NumLevels]atomic.Int64

	// live holds per-survey incremental aggregate state so reads are
	// O(1) in stored responses; see liveAgg.
	liveMu sync.Mutex
	live   map[string]*liveAgg
	// poisoned counts stored records the live read path has rejected
	// (see PoisonError), for the admin surface.
	poisoned atomic.Int64

	// ckptStop/ckptDone bracket the background checkpointer's lifetime;
	// nil when checkpointing is disabled.
	ckptStop  chan struct{}
	ckptDone  chan struct{}
	closeOnce sync.Once
}

// New validates the configuration and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: config needs a store")
	}
	if cfg.RequesterToken == "" {
		return nil, errors.New("server: config needs a requester token")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 15 * time.Second
	}
	if cfg.CheckpointDirty <= 0 {
		cfg.CheckpointDirty = 1
	}
	est, err := aggregate.NewEstimator(cfg.Schedule)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, est: est, mux: http.NewServeMux(), live: make(map[string]*liveAgg)}
	s.routes()
	if cfg.Checkpoints != nil {
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop()
	}
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /api/v1/surveys", s.handleListSurveys)
	s.mux.HandleFunc("GET /api/v1/surveys/{id}", s.handleGetSurvey)
	s.mux.HandleFunc("POST /api/v1/surveys", s.requireToken(s.handlePublishSurvey))
	s.mux.HandleFunc("POST /api/v1/surveys/{id}/responses", s.handleSubmitResponse)
	s.mux.HandleFunc("GET /api/v1/surveys/{id}/aggregate", s.requireToken(s.handleAggregate))
	s.mux.HandleFunc("GET /api/v1/surveys/{id}/quality", s.requireToken(s.handleQuality))
	s.mux.HandleFunc("GET /api/v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("GET /api/v1/admin/store", s.requireToken(s.handleAdminStore))
}

// ServeHTTP implements http.Handler with panic recovery and logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.logf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			writeError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	s.logf("%s %s", r.Method, r.URL.Path)
	s.mux.ServeHTTP(w, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// requireToken wraps requester-only handlers with bearer-token auth.
func (s *Server) requireToken(h http.HandlerFunc) http.HandlerFunc {
	want := "Bearer " + s.cfg.RequesterToken
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != want {
			writeError(w, http.StatusUnauthorized, "missing or invalid requester token")
			return
		}
		h(w, r)
	}
}

// ---------------------------------------------------------------------------
// Wire types

// SurveySummary is the worker-facing listing entry, mirroring the app's
// survey list screen (Fig. 1a): title, size, reward and the privacy
// levels on offer.
type SurveySummary struct {
	ID          string   `json:"id"`
	Title       string   `json:"title"`
	Description string   `json:"description,omitempty"`
	Questions   int      `json:"questions"`
	RewardCents int      `json:"reward_cents"`
	Levels      []string `json:"levels"`
	Responses   int      `json:"responses"`
}

// ScheduleInfo is the public noise schedule with the per-rating ε each
// level implies. Unbounded values (level none adds no noise, so its ε is
// infinite) are encoded as -1 because JSON cannot carry +Inf.
type ScheduleInfo struct {
	Sigma            []float64 `json:"sigma"`
	RREpsilon        []float64 `json:"rr_epsilon"`
	EpsilonPerRating []float64 `json:"epsilon_per_rating"`
	Delta            float64   `json:"delta"`
}

// jsonSafe maps +Inf (unbounded privacy loss) to the -1 wire sentinel.
func jsonSafe(v float64) float64 {
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

// SubmitResult acknowledges a stored response.
type SubmitResult struct {
	SurveyID string `json:"survey_id"`
	Accepted bool   `json:"accepted"`
	// Stored is the number of responses the survey now has.
	Stored int `json:"stored"`
}

// AggregateResult carries per-question estimates for requesters: mean
// estimates for rating/numeric questions, debiased distributions for
// multiple-choice questions.
type AggregateResult struct {
	SurveyID  string                       `json:"survey_id"`
	Questions []aggregate.QuestionEstimate `json:"questions"`
	Choices   []aggregate.ChoiceEstimate   `json:"choices,omitempty"`
}

// QualityResult reports how many stored responses pass the survey's
// redundancy (consistency) checks — the server-side view of the paper's
// random-responder filtering. Obfuscated responses are checked with a
// noise-proportional slack (3σ at the response's level), since honest
// noisy answers legitimately perturb both halves of a pair.
type QualityResult struct {
	SurveyID     string `json:"survey_id"`
	Total        int    `json:"total"`
	Consistent   int    `json:"consistent"`
	Inconsistent int    `json:"inconsistent"`
	// PerLevel counts inconsistent responses per privacy level.
	PerLevelInconsistent []int `json:"per_level_inconsistent"`
}

// Stats reports simple liveness counters.
type Stats struct {
	Status            string  `json:"status"`
	ResponsesAccepted int64   `json:"responses_accepted"`
	LevelTally        []int64 `json:"level_tally"`
}

// ---------------------------------------------------------------------------
// Handlers

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	tally := make([]int64, core.NumLevels)
	for i := range tally {
		tally[i] = s.levelTally[i].Load()
	}
	writeJSON(w, http.StatusOK, Stats{
		Status:            "ok",
		ResponsesAccepted: s.served.Load(),
		LevelTally:        tally,
	})
}

func (s *Server) handleSchedule(w http.ResponseWriter, _ *http.Request) {
	obf, err := core.NewObfuscator(s.cfg.Schedule, core.DefaultOptions())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	eps := obf.EpsilonPerRating()
	info := ScheduleInfo{Delta: obf.Options().Delta}
	for l := 0; l < core.NumLevels; l++ {
		info.Sigma = append(info.Sigma, s.cfg.Schedule.Sigma[l])
		info.RREpsilon = append(info.RREpsilon, jsonSafe(s.cfg.Schedule.RREpsilon[l]))
		info.EpsilonPerRating = append(info.EpsilonPerRating, jsonSafe(eps[l]))
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListSurveys(w http.ResponseWriter, _ *http.Request) {
	surveys, err := s.cfg.Store.Surveys()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	levels := make([]string, 0, core.NumLevels)
	for _, l := range core.Levels() {
		levels = append(levels, l.String())
	}
	out := make([]SurveySummary, 0, len(surveys))
	for _, sv := range surveys {
		out = append(out, SurveySummary{
			ID:          sv.ID,
			Title:       sv.Title,
			Description: sv.Description,
			Questions:   len(sv.Questions),
			RewardCents: sv.RewardCents,
			Levels:      levels,
			Responses:   s.cfg.Store.ResponseCount(sv.ID),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSurvey(w http.ResponseWriter, r *http.Request) {
	sv, err := s.cfg.Store.Survey(r.PathValue("id"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, sv)
}

// PublishResult acknowledges a published survey and carries the linkage
// audit of the requester's whole portfolio — the platform-level warning
// the §2 attack shows is missing from AMT. Publication is not blocked
// (the requester may have legitimate reasons), but critical findings are
// logged.
type PublishResult struct {
	ID    string              `json:"id"`
	Audit *survey.AuditReport `json:"audit,omitempty"`
}

func (s *Server) handlePublishSurvey(w http.ResponseWriter, r *http.Request) {
	var sv survey.Survey
	if !s.readJSON(w, r, &sv) {
		return
	}
	status := http.StatusCreated
	if err := s.cfg.Store.PutSurvey(&sv); err != nil {
		if !errors.Is(err, store.ErrExists) {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		// Republish. An identical definition is idempotent; a changed
		// one replaces the stored definition and must invalidate every
		// piece of fold state built under the old one — the live
		// accumulator and the durable checkpoint — or /aggregate and
		// /quality keep answering from bins laid out for the old
		// question set.
		prev, gerr := s.cfg.Store.Survey(sv.ID)
		if gerr != nil {
			writeError(w, http.StatusInternalServerError, gerr.Error())
			return
		}
		status = http.StatusOK
		if prev.Fingerprint() != sv.Fingerprint() {
			if rerr := s.cfg.Store.ReplaceSurvey(&sv); rerr != nil {
				writeError(w, http.StatusBadRequest, rerr.Error())
				return
			}
			s.invalidateLive(sv.ID)
			s.logf("republished survey %q with a changed definition; live aggregate state reset", sv.ID)
		}
	}
	portfolio, err := s.cfg.Store.Surveys()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	audit := survey.AuditPortfolio(portfolio)
	if audit.MaxSeverity() == survey.Critical {
		s.logf("CRITICAL linkage audit after publishing %q: portfolio completes a quasi-identifier", sv.ID)
	}
	writeJSON(w, status, PublishResult{ID: sv.ID, Audit: audit})
}

func (s *Server) handleSubmitResponse(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sv, err := s.cfg.Store.Survey(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	var resp survey.Response
	if !s.readJSON(w, r, &resp) {
		return
	}
	if resp.SurveyID == "" {
		resp.SurveyID = id
	}
	if resp.SurveyID != id {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("response survey_id %q does not match URL %q", resp.SurveyID, id))
		return
	}
	lvl, err := core.ParseLevel(resp.PrivacyLevel)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The server cannot verify noise was added (by design it never sees
	// the raw answers), but it enforces the declared contract: a level
	// above none must be marked obfuscated.
	if lvl != core.None && !resp.Obfuscated {
		writeError(w, http.StatusBadRequest,
			"responses at privacy levels above none must be obfuscated at source")
		return
	}
	if err := resp.Validate(sv); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.cfg.Store.AppendResponse(&resp); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.served.Add(1)
	s.levelTally[lvl].Add(1)
	// Keep the live aggregate hot: fold everything newly stored (this
	// response included) so the next read pays nothing. Best-effort —
	// the response is already durably accepted, and reads catch up from
	// the store cursor themselves.
	if la, err := s.liveFor(sv); err == nil {
		if err := la.advance(s.cfg.Store); err != nil {
			s.logf("live aggregate catch-up for %q: %v", id, err)
		}
	}
	writeJSON(w, http.StatusCreated, SubmitResult{
		SurveyID: id,
		Accepted: true,
		Stored:   s.cfg.Store.ResponseCount(id),
	})
}

// surveyEstimate is the shared read path of /aggregate and /quality:
// resolve the survey, then refresh its live accumulator (scan only the
// responses appended since the last read — usually none — and finalize).
// Cost is independent of how many responses the store holds.
func (s *Server) surveyEstimate(w http.ResponseWriter, id string) (*survey.Survey, *aggregate.SurveyEstimate, bool) {
	sv, err := s.cfg.Store.Survey(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return nil, nil, false
	}
	la, err := s.liveFor(sv)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return nil, nil, false
	}
	fin, err := la.refresh(s.cfg.Store)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return nil, nil, false
	}
	return sv, fin, true
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	sv, fin, ok := s.surveyEstimate(w, r.PathValue("id"))
	if !ok {
		return
	}
	out := AggregateResult{SurveyID: sv.ID}
	for i := range sv.Questions {
		if qe, ok := fin.Questions[sv.Questions[i].ID]; ok {
			out.Questions = append(out.Questions, *qe)
		}
		if ce, ok := fin.Choices[sv.Questions[i].ID]; ok {
			out.Choices = append(out.Choices, *ce)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	sv, fin, ok := s.surveyEstimate(w, r.PathValue("id"))
	if !ok {
		return
	}
	out := QualityResult{
		SurveyID:             sv.ID,
		Total:                fin.Quality.Total,
		Consistent:           fin.Quality.Consistent,
		Inconsistent:         fin.Quality.Inconsistent,
		PerLevelInconsistent: append([]int(nil), fin.Quality.PerLevelInconsistent[:]...),
	}
	writeJSON(w, http.StatusOK, out)
}

// AdminStoreInfo is the requester-facing observability view of the
// persistence layer and the live read path: per-shard WAL shape for the
// ingest store, plus every live accumulator's catch-up cursor.
type AdminStoreInfo struct {
	// Backend names the store implementation ("mem", "file", "ingest",
	// or the concrete Go type for custom stores).
	Backend string `json:"backend"`
	// Ingest carries cumulative ingest counters; only for the ingest
	// backend.
	Ingest *ingest.Stats `json:"ingest,omitempty"`
	// Shards holds per-shard segment/compaction state; only for the
	// ingest backend.
	Shards []ingest.ShardStats `json:"shards,omitempty"`
	// Accumulators lists the live aggregate cursors, sorted by survey.
	Accumulators []LiveAccumulator `json:"accumulators"`
	// PoisonedRecords counts stored records the live read path has
	// rejected since startup (each one wedges its survey's reads until
	// the accumulator is rebuilt; see PoisonError).
	PoisonedRecords int64 `json:"poisoned_records"`
	// Checkpoints reports the durable checkpoint log's per-survey
	// cursor and age; nil when checkpointing is disabled.
	Checkpoints *CheckpointInfo `json:"checkpoints,omitempty"`
}

// ingestStatser is the optional interface a store implements to report
// shard-level stats on the admin surface. Asserted structurally so
// custom Store implementations can report themselves without the server
// enumerating concrete types.
type ingestStatser interface {
	Stats() ingest.Stats
	ShardStats() []ingest.ShardStats
}

func (s *Server) handleAdminStore(w http.ResponseWriter, _ *http.Request) {
	info := AdminStoreInfo{
		Accumulators:    s.liveAccumulators(),
		PoisonedRecords: s.poisoned.Load(),
		Checkpoints:     s.checkpointInfo(),
	}
	switch s.cfg.Store.(type) {
	case *store.Mem:
		info.Backend = "mem"
	case *store.File:
		info.Backend = "file"
	case *ingest.Sharded:
		info.Backend = "ingest"
	default:
		info.Backend = fmt.Sprintf("%T", s.cfg.Store)
	}
	if st, ok := s.cfg.Store.(ingestStatser); ok {
		stats := st.Stats()
		info.Ingest = &stats
		info.Shards = st.ShardStats()
	}
	writeJSON(w, http.StatusOK, info)
}

// ---------------------------------------------------------------------------
// JSON helpers

func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "request body must contain a single JSON value")
		return false
	}
	_, _ = io.Copy(io.Discard, body)
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing more to do than drop the connection.
		return
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
