package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"loki/internal/aggregate"
	"loki/internal/checkpoint"
	"loki/internal/core"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// raceSurvey returns the mixed-kind survey the read-path tests fold.
func ckptSurvey() *survey.Survey {
	return &survey.Survey{
		ID:    "ckpt",
		Title: "Checkpoint test survey",
		Questions: []survey.Question{
			{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "q1", Text: "pick", Kind: survey.MultipleChoice, Options: []string{"a", "b"}},
		},
		RewardCents: 1,
	}
}

func ckptResponse(sv *survey.Survey, i int) *survey.Response {
	levels := []string{"none", "low", "medium", "high"}
	return &survey.Response{
		SurveyID:     sv.ID,
		WorkerID:     fmt.Sprintf("w%04d", i),
		PrivacyLevel: levels[i%4],
		Obfuscated:   i%4 != 0,
		Answers: []survey.Answer{
			survey.RatingAnswer("q0", float64(1+i%5)),
			survey.ChoiceAnswer("q1", i%2),
		},
	}
}

func submitOK(t *testing.T, ts *httptest.Server, r *survey.Response) {
	t.Helper()
	resp, body := doReq(t, http.MethodPost, submitURL(ts, r.SurveyID), r, "")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
}

func adminInfo(t *testing.T, ts *httptest.Server) *AdminStoreInfo {
	t.Helper()
	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin = %d: %s", resp.StatusCode, body)
	}
	var info AdminStoreInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return &info
}

// TestRepublishInvalidatesLiveAggregate is the regression test for the
// stale-aggregate bug: republishing a survey with changed questions must
// drop the live accumulator, so /aggregate answers under the new
// definition instead of bins laid out for the old question set.
func TestRepublishInvalidatesLiveAggregate(t *testing.T) {
	ts, st := newTestServer(t)
	v1 := ckptSurvey()
	resp, _ := doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", v1, testToken)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d", resp.StatusCode)
	}
	for i := 0; i < 20; i++ {
		submitOK(t, ts, ckptResponse(v1, i))
	}
	// Warm the live accumulator under v1.
	getAggregate(t, ts, v1.ID)

	// Republish with a changed question set: q1 grows an option and a
	// new rating question appears. Old responses stay foldable (their
	// choices remain in range; the new question is simply unanswered).
	v2 := ckptSurvey()
	v2.Questions[1].Options = []string{"a", "b", "c"}
	v2.Questions = append(v2.Questions, survey.Question{
		ID: "q2", Text: "rate again", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 10,
	})
	resp, body := doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", v2, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("republish = %d: %s", resp.StatusCode, body)
	}

	// New submissions answer the v2 question set.
	for i := 20; i < 30; i++ {
		r := ckptResponse(v2, i)
		r.Answers[1] = survey.ChoiceAnswer("q1", i%3)
		r.Answers = append(r.Answers, survey.RatingAnswer("q2", float64(1+i%10)))
		submitOK(t, ts, r)
	}

	// The live read path must now agree with a from-scratch recompute
	// under v2 — including the new question and the widened choice
	// domain. Without invalidation the accumulator still has v1's
	// two-option bins and no q2 at all.
	live := getAggregate(t, ts, v2.ID)
	if len(live.Questions) != 2 || len(live.Choices) != 1 {
		t.Fatalf("live aggregate shape %d/%d, want v2's 2/1", len(live.Questions), len(live.Choices))
	}
	if got := len(live.Choices[0].Estimated); got != 3 {
		t.Fatalf("choice domain = %d options, want v2's 3", got)
	}
	compareAggregate(t, live, recomputeAggregate(t, st, v2))

	// The admin surface reports the new fingerprint.
	info := adminInfo(t, ts)
	if len(info.Accumulators) != 1 || info.Accumulators[0].Fingerprint != v2.Fingerprint() {
		t.Errorf("accumulator fingerprint not rebuilt under v2: %+v", info.Accumulators)
	}
}

// TestRepublishIdenticalKeepsLiveState: republishing the same definition
// must not throw away fold state.
func TestRepublishIdenticalKeepsLiveState(t *testing.T) {
	ts, _ := newTestServer(t)
	sv := ckptSurvey()
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
		t.Fatal("publish failed")
	}
	for i := 0; i < 5; i++ {
		submitOK(t, ts, ckptResponse(sv, i))
	}
	getAggregate(t, ts, sv.ID)
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", ckptSurvey(), testToken); resp.StatusCode != http.StatusOK {
		t.Fatal("idempotent republish failed")
	}
	info := adminInfo(t, ts)
	if len(info.Accumulators) != 1 || info.Accumulators[0].Cursor != 5 {
		t.Errorf("identical republish dropped live state: %+v", info.Accumulators)
	}
}

// poisonStore wraps a Mem store and rewrites one scanned record so the
// accumulator rejects it — the stand-in for a record that validated
// under an old definition or a corrupted replay.
type poisonStore struct {
	*store.Mem
	poisonSeq uint64       // 0 disables
	scans     atomic.Int64 // ScanResponses calls, to prove reads stop rescanning
}

func (p *poisonStore) ScanResponses(id string, fromSeq uint64, fn func(uint64, *survey.Response) error) error {
	p.scans.Add(1)
	return p.Mem.ScanResponses(id, fromSeq, func(seq uint64, r *survey.Response) error {
		if seq == p.poisonSeq {
			bad := *r
			bad.Answers = append([]survey.Answer(nil), r.Answers...)
			bad.Answers[1] = survey.ChoiceAnswer("q1", 99) // out of range
			return fn(seq, &bad)
		}
		return fn(seq, r)
	})
}

// TestPoisonedRecordFailsOnce is the regression test for the wedged
// catch-up bug: a record the accumulator rejects must fail reads with a
// 500 that names the survey and seq, must not be rescanned on every
// read, must not be retried by every submit, and must be counted on the
// admin surface.
func TestPoisonedRecordFailsOnce(t *testing.T) {
	ps := &poisonStore{Mem: store.NewMem()}
	srv, err := New(Config{Store: ps, Schedule: core.DefaultSchedule(), RequesterToken: testToken})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	sv := ckptSurvey()
	if err := ps.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		submitOK(t, ts, ckptResponse(sv, i))
	}
	ps.poisonSeq = 3

	// Force a rebuild that has to traverse the poisoned record: a fresh
	// server (the submits above already folded seqs 1..6 live).
	srv2, err := New(Config{Store: ps, Schedule: core.DefaultSchedule(), RequesterToken: testToken})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)

	resp, body := doReq(t, http.MethodGet, aggregateURL(ts2, sv.ID), nil, testToken)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned read = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), sv.ID) || !strings.Contains(string(body), "seq 3") {
		t.Fatalf("poison error lacks coordinates: %s", body)
	}

	// Subsequent reads fail fast: same 500, no new scan of the store.
	scansAfterFirst := ps.scans.Load()
	for i := 0; i < 3; i++ {
		resp, _ = doReq(t, http.MethodGet, aggregateURL(ts2, sv.ID), nil, testToken)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("sticky poisoned read = %d", resp.StatusCode)
		}
	}
	resp, _ = doReq(t, http.MethodGet, ts2.URL+"/api/v1/surveys/"+sv.ID+"/quality", nil, testToken)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("sticky poisoned quality = %d", resp.StatusCode)
	}
	if got := ps.scans.Load(); got != scansAfterFirst {
		t.Fatalf("poisoned reads rescanned the store: %d scans, want %d", got, scansAfterFirst)
	}

	// Submits still land, and the write path does not retry the fold.
	preSubmitScans := ps.scans.Load()
	r := ckptResponse(sv, 6)
	resp, body = doReq(t, http.MethodPost, submitURL(ts2, sv.ID), r, "")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit while poisoned = %d: %s", resp.StatusCode, body)
	}
	if got := ps.scans.Load(); got != preSubmitScans {
		t.Fatalf("submit retried the poisoned fold: %d scans, want %d", got, preSubmitScans)
	}

	// Admin surface: one poisoned record, with coordinates.
	resp, body = doReq(t, http.MethodGet, ts2.URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin = %d", resp.StatusCode)
	}
	var info AdminStoreInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.PoisonedRecords != 1 {
		t.Errorf("poisoned_records = %d, want 1", info.PoisonedRecords)
	}
	if len(info.Accumulators) != 1 || info.Accumulators[0].PoisonedSeq != 3 || info.Accumulators[0].PoisonedError == "" {
		t.Errorf("accumulator poison info = %+v", info.Accumulators)
	}

	// Recovery: once the underlying record reads clean again, a
	// republish with a changed definition rebuilds the accumulator and
	// reads come back.
	ps.poisonSeq = 0
	v2 := ckptSurvey()
	v2.Title = "Checkpoint test survey (fixed)"
	if resp, _ := doReq(t, http.MethodPost, ts2.URL+"/api/v1/surveys", v2, testToken); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery republish = %d", resp.StatusCode)
	}
	got := getAggregate(t, ts2, sv.ID)
	compareAggregate(t, got, recomputeAggregate(t, ps, v2))
}

// scanTrackingStore records the fromSeq of every response scan, to prove
// restart catch-up starts at the checkpoint cursor instead of 0.
type scanTrackingStore struct {
	store.Store
	fromSeqs []uint64 // not concurrency-safe; the test reads it single-threaded
}

func (s *scanTrackingStore) ScanResponses(id string, fromSeq uint64, fn func(uint64, *survey.Response) error) error {
	s.fromSeqs = append(s.fromSeqs, fromSeq)
	return s.Store.ScanResponses(id, fromSeq, fn)
}

// TestCheckpointRestartEquivalence is the restart-equivalence test:
// restore-from-checkpoint + tail catch-up must equal a from-scratch
// recompute, and the catch-up scan must start at the checkpoint cursor.
func TestCheckpointRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "loki.jsonl")
	ckptDir := filepath.Join(dir, "ckpt")

	// First life: fold 30 responses, checkpoint on shutdown.
	st, err := store.OpenFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := checkpoint.Open(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store: st, Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		Checkpoints: ck,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	sv := ckptSurvey()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		submitOK(t, ts, ckptResponse(sv, i))
	}
	getAggregate(t, ts, sv.ID)
	ts.Close()
	if err := srv.Close(); err != nil { // final checkpoint flush
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: replay the store and the checkpoint log, append a
	// tail of 5 more responses, then read.
	st2, err := store.OpenFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	tracking := &scanTrackingStore{Store: st2}
	ck2, err := checkpoint.Open(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ck2.Close() })
	if rec, ok := ck2.Get(sv.ID); !ok || rec.Cursor != n {
		t.Fatalf("checkpoint after first life = %+v, want cursor %d", rec, n)
	}
	srv2, err := New(Config{
		Store: tracking, Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		Checkpoints: ck2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)
	for i := n; i < n+5; i++ {
		submitOK(t, ts2, ckptResponse(sv, i))
	}
	got := getAggregate(t, ts2, sv.ID)
	if got.Choices[0].N != n+5 {
		t.Fatalf("restored aggregate folded %d, want %d", got.Choices[0].N, n+5)
	}
	compareAggregate(t, got, recomputeAggregate(t, tracking, sv))

	// Every catch-up scan in the second life resumed from the
	// checkpoint cursor or beyond — never a whole-backlog rescan.
	if len(tracking.fromSeqs) == 0 {
		t.Fatal("no scans observed")
	}
	for _, from := range tracking.fromSeqs {
		if from < n {
			t.Fatalf("restart catch-up scanned from %d, want >= %d (checkpoint cursor)", from, n)
		}
	}
}

// TestCheckpointFingerprintMismatch: a checkpoint taken under an old
// definition must be ignored after a republish — the rebuild scans from
// 0 and answers under the new definition.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "loki.jsonl")
	ckptDir := filepath.Join(dir, "ckpt")

	st, err := store.OpenFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := checkpoint.Open(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store: st, Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		Checkpoints: ck,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	sv := ckptSurvey()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		submitOK(t, ts, ckptResponse(sv, i))
	}
	getAggregate(t, ts, sv.ID)
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// The definition changes out-of-band between lives (e.g. another
	// replica handled the republish), so the checkpoint log was never
	// tombstoned — the fingerprint is the only guard.
	v2 := ckptSurvey()
	v2.Questions[1].Options = []string{"a", "b", "c"}
	if err := st.ReplaceSurvey(v2); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := store.OpenFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	tracking := &scanTrackingStore{Store: st2}
	ck2, err := checkpoint.Open(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ck2.Close() })
	srv2, err := New(Config{
		Store: tracking, Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		Checkpoints: ck2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)

	got := getAggregate(t, ts2, sv.ID)
	if len(got.Choices) != 1 || len(got.Choices[0].Estimated) != 3 {
		t.Fatalf("aggregate not under v2: %+v", got.Choices)
	}
	compareAggregate(t, got, recomputeAggregate(t, tracking, v2))
	if len(tracking.fromSeqs) == 0 || tracking.fromSeqs[0] != 0 {
		t.Fatalf("stale checkpoint was trusted: first scan from %v, want 0", tracking.fromSeqs)
	}
}

// TestCheckpointAheadOfStore: a checkpoint whose cursor exceeds the
// store's history (a wiped or swapped store, a foreign checkpoint dir)
// must be distrusted — the server rebuilds from the store instead of
// serving phantom responses forever.
func TestCheckpointAheadOfStore(t *testing.T) {
	ckptDir := t.TempDir()
	sv := ckptSurvey()

	// Build a checkpoint claiming 50 responses...
	bigStore := store.NewMem()
	if err := bigStore.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := bigStore.AppendResponse(ckptResponse(sv, i)); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := checkpoint.Open(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: bigStore, Schedule: core.DefaultSchedule(), RequesterToken: testToken, Checkpoints: ck})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	getAggregate(t, ts, sv.ID)
	ts.Close()
	srv.Close()
	ck.Close()
	bigStore.Close()

	// ...then pair it with a store holding only 4.
	smallStore := store.NewMem()
	t.Cleanup(func() { smallStore.Close() })
	if err := smallStore.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := smallStore.AppendResponse(ckptResponse(sv, i)); err != nil {
			t.Fatal(err)
		}
	}
	ck2, err := checkpoint.Open(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ck2.Close() })
	srv2, err := New(Config{Store: smallStore, Schedule: core.DefaultSchedule(), RequesterToken: testToken, Checkpoints: ck2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)

	got := getAggregate(t, ts2, sv.ID)
	if got.Choices[0].N != 4 {
		t.Fatalf("aggregate folded %d responses, want the store's 4 (phantom checkpoint trusted)", got.Choices[0].N)
	}
	compareAggregate(t, got, recomputeAggregate(t, smallStore, sv))
	// And the submit path keeps folding normally.
	submitOK(t, ts2, ckptResponse(sv, 4))
	if got := getAggregate(t, ts2, sv.ID); got.Choices[0].N != 5 {
		t.Fatalf("after submit folded %d, want 5", got.Choices[0].N)
	}
}

// TestAdvanceBacklogGuard covers the cold-backlog fix: the submit path
// must skip the inline fold whenever the *unfolded backlog* is large —
// whether the accumulator is cold from seq 0 or checkpoint-restored to a
// stale cursor — and fold when the backlog is small, even from a
// nonzero restored cursor.
func TestAdvanceBacklogGuard(t *testing.T) {
	st := store.NewMem()
	t.Cleanup(func() { st.Close() })
	sv := ckptSurvey()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	const total = coldBacklog + 200
	for i := 0; i < total; i++ {
		if err := st.AppendResponse(ckptResponse(sv, i)); err != nil {
			t.Fatal(err)
		}
	}
	router := shardset.NewLocalSingle(st)
	newLA := func() *livePart {
		acc, err := aggregate.NewAccumulator(core.DefaultSchedule(), sv)
		if err != nil {
			t.Fatal(err)
		}
		return &livePart{surveyID: sv.ID, acc: acc}
	}

	// Cold from 0 with a big backlog: skip.
	la := newLA()
	if err := la.advance(router); err != nil {
		t.Fatal(err)
	}
	if got := la.cursor.Load(); got != 0 {
		t.Fatalf("cold big-backlog advance folded to %d, want 0", got)
	}

	// Restored to a stale cursor with a big remaining backlog: skip too.
	// (The old cursor==0 guard folded the whole tail inline here.)
	la = newLA()
	la.cursor.Store(100)
	if err := la.advance(router); err != nil {
		t.Fatal(err)
	}
	if got := la.cursor.Load(); got != 100 {
		t.Fatalf("restored big-backlog advance folded to %d, want 100", got)
	}

	// Restored with a small tail: fold it.
	la = newLA()
	la.cursor.Store(total - 10)
	if err := la.advance(router); err != nil {
		t.Fatal(err)
	}
	if got := la.cursor.Load(); got != total {
		t.Fatalf("small-tail advance folded to %d, want %d", got, total)
	}
}
