package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/aggregate"
	"loki/internal/checkpoint"
	"loki/internal/core"
	"loki/internal/store"
	"loki/internal/survey"
)

// PoisonError reports a stored record the live accumulator rejects. One
// such record wedges the survey's incremental read path: the aggregate
// cannot be served while skipping seq (it would silently undercount),
// and it cannot be folded. The error is sticky — recorded once on the
// liveAgg, returned to every subsequent read without rescanning from the
// cursor, and skipped by the submit path — until the accumulator is
// rebuilt (e.g. the survey is republished with a definition the record
// validates under).
type PoisonError struct {
	SurveyID string
	// Seq is the store sequence number of the rejected record.
	Seq uint64
	// Err is the accumulator's rejection.
	Err error
}

// Error implements error with the survey and sequence coordinates an
// operator needs to find the record.
func (e *PoisonError) Error() string {
	return fmt.Sprintf("poisoned record: survey %q seq %d: %v", e.SurveyID, e.Seq, e.Err)
}

// Unwrap exposes the underlying rejection.
func (e *PoisonError) Unwrap() error { return e.Err }

// liveAgg is one survey's live aggregate state: a resumable accumulator
// plus the store sequence number it has consumed up to. The invariant —
// the accumulator holds exactly the responses with seq <= cursor — is
// maintained by folding only from the store's ordered scan, never from
// in-flight request payloads, so concurrent submissions cannot
// double-count or skip: whatever a scan misses, the next scan delivers.
//
// The map of liveAggs starts empty and entries are created on first use.
// After a process restart the first read of each survey seeds the
// accumulator from its durable checkpoint when one matches the current
// definition fingerprint, then scans only the store tail beyond the
// checkpoint cursor; without a usable checkpoint it rebuilds from seq 0.
type liveAgg struct {
	// mu serializes folds and finalizes (acc is not concurrency-safe).
	mu  sync.Mutex
	acc *aggregate.Accumulator
	// fp is the fingerprint of the survey definition acc folds under.
	// A read that resolves the survey to a different fingerprint must
	// not use this accumulator: its bins were laid out for a different
	// question set (the republish staleness bug).
	fp string
	// cursor is the last store seq folded, readable without mu (the
	// admin surface reports it even mid-catch-up). Because sequence
	// numbers are gap-free from 1, it also equals acc.N().
	cursor atomic.Uint64
	// ckptCursor is the cursor covered by the survey's last durable
	// checkpoint (0 when never checkpointed); the checkpointer uses it
	// as its dirty marker.
	ckptCursor atomic.Uint64

	// poison, once set, wedges the accumulator (guarded by mu); the
	// atomics mirror it for lock-free admin reads. poisonCount points at
	// the server's cumulative counter and is bumped once per poisoning.
	poison      *PoisonError
	poisonSeq   atomic.Uint64
	poisonMsg   atomic.Value // string
	poisonCount *atomic.Int64
}

// liveFor returns the survey's live accumulator, creating it on first
// use — or re-creating it when the stored definition no longer matches
// the fingerprint the existing accumulator was folded under (the survey
// was republished).
func (s *Server) liveFor(sv *survey.Survey) (*liveAgg, error) {
	fp := sv.Fingerprint()
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	if la, ok := s.live[sv.ID]; ok {
		if la.fp == fp {
			return la, nil
		}
		// Stale: the definition changed under the accumulator (a read
		// raced the republish handler's invalidation). Rebuild below.
		delete(s.live, sv.ID)
	}
	la := &liveAgg{fp: fp, poisonCount: &s.poisoned}
	// Seed from the durable checkpoint when one matches the definition:
	// catch-up then scans only the tail beyond the checkpoint cursor. A
	// fingerprint mismatch or unusable state just means a full rebuild —
	// checkpoints are an optimization, the store is the source of truth.
	if s.cfg.Checkpoints != nil {
		if rec, ok := s.cfg.Checkpoints.Get(sv.ID); ok {
			stored := uint64(s.cfg.Store.ResponseCount(sv.ID))
			switch {
			case rec.Fingerprint != fp:
				s.logf("checkpoint for %q predates a republish; rebuilding from the store", sv.ID)
			case rec.Cursor > stored:
				// A cursor beyond the store's history means the log
				// belongs to a different (or rebuilt) store. Trusting it
				// would serve phantom responses forever: the catch-up
				// scan past a too-high cursor finds nothing and never
				// corrects the state.
				s.logf("checkpoint for %q is ahead of the store (cursor %d > %d responses); rebuilding from the store",
					sv.ID, rec.Cursor, stored)
			default:
				if acc, err := aggregate.RestoreAccumulator(s.cfg.Schedule, sv, rec.State); err != nil {
					s.logf("checkpoint for %q unusable (%v); rebuilding from the store", sv.ID, err)
				} else {
					la.acc = acc
					la.cursor.Store(rec.Cursor)
					la.ckptCursor.Store(rec.Cursor)
				}
			}
		}
	}
	if la.acc == nil {
		acc, err := aggregate.NewAccumulator(s.cfg.Schedule, sv)
		if err != nil {
			return nil, err
		}
		la.acc = acc
	}
	s.live[sv.ID] = la
	return la, nil
}

// invalidateLive drops a survey's live accumulator and durable
// checkpoint: fold state laid out under the old definition must never
// answer a read under the new one.
func (s *Server) invalidateLive(id string) {
	s.liveMu.Lock()
	delete(s.live, id)
	s.liveMu.Unlock()
	if s.cfg.Checkpoints != nil {
		if err := s.cfg.Checkpoints.Drop(id); err != nil {
			s.logf("dropping checkpoint for %q: %v", id, err)
		}
	}
}

// catchUp folds every response the store holds beyond the cursor. A
// record the accumulator rejects poisons the liveAgg: the error (with
// survey ID and seq) is recorded once and returned to every subsequent
// call without rescanning. The caller must hold la's lock.
func (la *liveAgg) catchUp(st store.Store) error {
	if la.poison != nil {
		return la.poison
	}
	err := st.ScanResponses(la.acc.SurveyID(), la.cursor.Load(), func(seq uint64, r *survey.Response) error {
		if err := la.acc.Add(r); err != nil {
			return &PoisonError{SurveyID: la.acc.SurveyID(), Seq: seq, Err: err}
		}
		la.cursor.Store(seq)
		return nil
	})
	var pe *PoisonError
	if errors.As(err, &pe) {
		la.poison = pe
		la.poisonSeq.Store(pe.Seq)
		la.poisonMsg.Store(pe.Err.Error())
		if la.poisonCount != nil {
			la.poisonCount.Add(1)
		}
	}
	return err
}

// refresh catches the accumulator up with the store and finalizes: the
// full incremental read path. The scan is O(responses appended since
// the last refresh) — usually zero or one — and the finalize step is
// O(questions × levels), independent of stored-response count.
func (la *liveAgg) refresh(st store.Store) (*aggregate.SurveyEstimate, error) {
	la.mu.Lock()
	defer la.mu.Unlock()
	if err := la.catchUp(st); err != nil {
		return nil, err
	}
	return la.acc.Finalize()
}

// coldBacklog is the backlog size above which a submit declines to warm
// up a cold accumulator: folding a handful of responses inline keeps the
// read path hot for cheap, but rebuilding a large backlog belongs to the
// first read, not to a write request's latency.
const coldBacklog = 1024

// advance is the submit-path half of refresh: fold newly stored
// responses without finalizing, so the next read starts hot. It is
// strictly best-effort — the response is already durably stored and
// reads catch up from the cursor themselves — so it must never add
// latency to a write request: TryLock skips when another fold (e.g. a
// reader's whole-backlog catch-up after a restart) holds the lock, a
// poisoned accumulator is left alone (retrying would re-fail on the same
// record forever), and a large unfolded backlog — whether the
// accumulator is cold from seq 0 or checkpoint-restored to a stale
// cursor — is left for the read path rather than rebuilt inline.
func (la *liveAgg) advance(st store.Store) error {
	if !la.mu.TryLock() {
		return nil
	}
	defer la.mu.Unlock()
	if la.poison != nil {
		return nil
	}
	// Additive comparison, not subtraction: a cursor ahead of the store
	// (possible only with a foreign checkpoint log) must read as "no
	// backlog", not underflow to a huge one.
	if uint64(st.ResponseCount(la.acc.SurveyID())) > la.cursor.Load()+coldBacklog {
		return nil
	}
	return la.catchUp(st)
}

// BatchEstimator returns a batch (full-recompute) estimator for the
// schedule: the pre-incremental read path, kept as the reference
// implementation that the live-accumulator path is verified and
// benchmarked against.
func BatchEstimator(schedule core.Schedule) (*aggregate.Estimator, error) {
	return aggregate.NewEstimator(schedule)
}

// BatchAggregate recomputes the /aggregate payload from scratch over a
// full response slice — O(n) per call, unlike the live read path.
func BatchAggregate(est *aggregate.Estimator, sv *survey.Survey, responses []survey.Response) (*AggregateResult, error) {
	ests, err := est.EstimateSurvey(sv, responses)
	if err != nil {
		return nil, err
	}
	choices, err := est.EstimateSurveyChoices(sv, responses)
	if err != nil {
		return nil, err
	}
	out := &AggregateResult{SurveyID: sv.ID}
	for i := range sv.Questions {
		if qe, ok := ests[sv.Questions[i].ID]; ok {
			out.Questions = append(out.Questions, *qe)
		}
		if ce, ok := choices[sv.Questions[i].ID]; ok {
			out.Choices = append(out.Choices, *ce)
		}
	}
	return out, nil
}

// LiveAccumulator describes one survey's live aggregate state on the
// admin surface.
type LiveAccumulator struct {
	SurveyID string `json:"survey_id"`
	// Cursor is the highest store sequence number folded in.
	Cursor uint64 `json:"cursor"`
	// Responses is the number of responses the accumulator holds.
	Responses int `json:"responses"`
	// Fingerprint identifies the survey definition the state is folded
	// under.
	Fingerprint string `json:"fingerprint"`
	// CheckpointCursor is the store cursor covered by the survey's last
	// durable checkpoint (0 when never checkpointed).
	CheckpointCursor uint64 `json:"checkpoint_cursor,omitempty"`
	// PoisonedSeq and PoisonedError report the stored record wedging this
	// accumulator (seq 0 = healthy).
	PoisonedSeq   uint64 `json:"poisoned_seq,omitempty"`
	PoisonedError string `json:"poisoned_error,omitempty"`
}

// liveAccumulators reports every live accumulator's cursor, sorted by
// survey ID. It reads the atomic cursors rather than taking each la.mu,
// so the admin surface stays responsive even while a whole-backlog
// catch-up is folding (Responses == Cursor by the gap-free seq
// invariant).
func (s *Server) liveAccumulators() []LiveAccumulator {
	s.liveMu.Lock()
	out := make([]LiveAccumulator, 0, len(s.live))
	for id, la := range s.live {
		cursor := la.cursor.Load()
		acc := LiveAccumulator{
			SurveyID:         id,
			Cursor:           cursor,
			Responses:        int(cursor),
			Fingerprint:      la.fp,
			CheckpointCursor: la.ckptCursor.Load(),
			PoisonedSeq:      la.poisonSeq.Load(),
		}
		if msg, ok := la.poisonMsg.Load().(string); ok {
			acc.PoisonedError = msg
		}
		out = append(out, acc)
	}
	s.liveMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].SurveyID < out[j].SurveyID })
	return out
}

// CheckpointRecordInfo is one survey's checkpoint on the admin surface.
type CheckpointRecordInfo struct {
	SurveyID string `json:"survey_id"`
	// Cursor is the store sequence number the checkpoint covers: a
	// restart's first read scans only beyond it.
	Cursor      uint64 `json:"cursor"`
	Fingerprint string `json:"fingerprint"`
	// AgeSeconds is how long ago the checkpoint was taken; it bounds the
	// tail a restart would rescan.
	AgeSeconds float64 `json:"age_seconds"`
}

// CheckpointInfo describes the durable checkpoint log on the admin
// surface.
type CheckpointInfo struct {
	// Surveys is the number of checkpointed surveys.
	Surveys int `json:"surveys"`
	// Records lists every checkpoint, sorted by survey ID.
	Records []CheckpointRecordInfo `json:"records,omitempty"`
}

// checkpointInfo snapshots the checkpoint log for the admin surface;
// nil when checkpointing is disabled.
func (s *Server) checkpointInfo() *CheckpointInfo {
	if s.cfg.Checkpoints == nil {
		return nil
	}
	recs := s.cfg.Checkpoints.Records()
	info := &CheckpointInfo{Surveys: len(recs)}
	now := time.Now()
	for _, rec := range recs {
		info.Records = append(info.Records, CheckpointRecordInfo{
			SurveyID:    rec.SurveyID,
			Cursor:      rec.Cursor,
			Fingerprint: rec.Fingerprint,
			AgeSeconds:  now.Sub(rec.SavedAt()).Seconds(),
		})
	}
	sort.Slice(info.Records, func(i, j int) bool { return info.Records[i].SurveyID < info.Records[j].SurveyID })
	return info
}

// FlushCheckpoints durably checkpoints every live accumulator that has
// folded at least CheckpointDirty responses since its last checkpoint.
// It is what the background checkpointer runs on its interval; tests and
// benchmarks call it directly for a deterministic flush. Poisoned
// accumulators checkpoint too — their state is exactly the responses
// before the poisoned record, which is the right resume point.
func (s *Server) FlushCheckpoints() error {
	if s.cfg.Checkpoints == nil {
		return nil
	}
	s.liveMu.Lock()
	las := make([]*liveAgg, 0, len(s.live))
	for _, la := range s.live {
		las = append(las, la)
	}
	s.liveMu.Unlock()
	var first error
	for _, la := range las {
		la.mu.Lock()
		cursor := la.cursor.Load()
		if cursor < la.ckptCursor.Load()+uint64(s.cfg.CheckpointDirty) {
			la.mu.Unlock()
			continue
		}
		rec := &checkpoint.Record{
			SurveyID:      la.acc.SurveyID(),
			Fingerprint:   la.fp,
			Cursor:        cursor,
			State:         la.acc.Snapshot(),
			SavedUnixNano: time.Now().UnixNano(),
		}
		la.mu.Unlock()
		// The durable write happens outside la.mu: a slow fsync must not
		// stall the read path. Snapshot is a deep copy, so concurrent
		// folds cannot tear the record.
		if err := s.cfg.Checkpoints.Put(rec); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		la.ckptCursor.Store(rec.Cursor)
	}
	return first
}

// checkpointLoop is the background checkpointer: a FlushCheckpoints
// every interval until Close.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.FlushCheckpoints(); err != nil {
				s.logf("checkpoint flush: %v", err)
			}
		case <-s.ckptStop:
			return
		}
	}
}

// Close stops the background checkpointer after one final flush so a
// clean shutdown leaves checkpoints covering everything folded. It does
// not close the store or the checkpoint log — the caller owns both. A
// server without checkpointing has nothing to stop; Close is a no-op.
func (s *Server) Close() error {
	if s.ckptStop == nil {
		return nil
	}
	s.closeOnce.Do(func() { close(s.ckptStop) })
	<-s.ckptDone
	return s.FlushCheckpoints()
}
