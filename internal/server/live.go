package server

import (
	"sort"
	"sync"
	"sync/atomic"

	"loki/internal/aggregate"
	"loki/internal/core"
	"loki/internal/store"
	"loki/internal/survey"
)

// liveAgg is one survey's live aggregate state: a resumable accumulator
// plus the store sequence number it has consumed up to. The invariant —
// the accumulator holds exactly the responses with seq <= cursor — is
// maintained by folding only from the store's ordered scan, never from
// in-flight request payloads, so concurrent submissions cannot
// double-count or skip: whatever a scan misses, the next scan delivers.
//
// The map of liveAggs starts empty and entries are created on first
// use, which is also the restart story: after a process restart the
// first read of each survey scans the (durable) store from seq 0 and
// rebuilds the accumulator before answering.
type liveAgg struct {
	// mu serializes folds and finalizes (acc is not concurrency-safe).
	mu  sync.Mutex
	acc *aggregate.Accumulator
	// cursor is the last store seq folded, readable without mu (the
	// admin surface reports it even mid-catch-up). Because sequence
	// numbers are gap-free from 1, it also equals acc.N().
	cursor atomic.Uint64
}

// liveFor returns the survey's live accumulator, creating it on first
// use.
func (s *Server) liveFor(sv *survey.Survey) (*liveAgg, error) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	if la, ok := s.live[sv.ID]; ok {
		return la, nil
	}
	acc, err := aggregate.NewAccumulator(s.cfg.Schedule, sv)
	if err != nil {
		return nil, err
	}
	la := &liveAgg{acc: acc}
	s.live[sv.ID] = la
	return la, nil
}

// catchUp folds every response the store holds beyond the cursor. The
// caller must hold la's lock.
func (la *liveAgg) catchUp(st store.Store) error {
	return st.ScanResponses(la.acc.SurveyID(), la.cursor.Load(), func(seq uint64, r *survey.Response) error {
		if err := la.acc.Add(r); err != nil {
			return err
		}
		la.cursor.Store(seq)
		return nil
	})
}

// refresh catches the accumulator up with the store and finalizes: the
// full incremental read path. The scan is O(responses appended since
// the last refresh) — usually zero or one — and the finalize step is
// O(questions × levels), independent of stored-response count.
func (la *liveAgg) refresh(st store.Store) (*aggregate.SurveyEstimate, error) {
	la.mu.Lock()
	defer la.mu.Unlock()
	if err := la.catchUp(st); err != nil {
		return nil, err
	}
	return la.acc.Finalize()
}

// coldBacklog is the backlog size above which a submit declines to warm
// up a cold accumulator: folding a handful of responses inline keeps the
// read path hot for cheap, but rebuilding a large backlog belongs to the
// first read, not to a write request's latency.
const coldBacklog = 1024

// advance is the submit-path half of refresh: fold newly stored
// responses without finalizing, so the next read starts hot. It is
// strictly best-effort — the response is already durably stored and
// reads catch up from the cursor themselves — so it must never add
// latency to a write request: TryLock skips when another fold (e.g. a
// reader's whole-backlog catch-up after a restart) holds the lock, and
// a cold accumulator facing a large backlog is left for the read path
// rather than rebuilt inline.
func (la *liveAgg) advance(st store.Store) error {
	if !la.mu.TryLock() {
		return nil
	}
	defer la.mu.Unlock()
	if la.cursor.Load() == 0 && st.ResponseCount(la.acc.SurveyID()) > coldBacklog {
		return nil
	}
	return la.catchUp(st)
}

// BatchEstimator returns a batch (full-recompute) estimator for the
// schedule: the pre-incremental read path, kept as the reference
// implementation that the live-accumulator path is verified and
// benchmarked against.
func BatchEstimator(schedule core.Schedule) (*aggregate.Estimator, error) {
	return aggregate.NewEstimator(schedule)
}

// BatchAggregate recomputes the /aggregate payload from scratch over a
// full response slice — O(n) per call, unlike the live read path.
func BatchAggregate(est *aggregate.Estimator, sv *survey.Survey, responses []survey.Response) (*AggregateResult, error) {
	ests, err := est.EstimateSurvey(sv, responses)
	if err != nil {
		return nil, err
	}
	choices, err := est.EstimateSurveyChoices(sv, responses)
	if err != nil {
		return nil, err
	}
	out := &AggregateResult{SurveyID: sv.ID}
	for i := range sv.Questions {
		if qe, ok := ests[sv.Questions[i].ID]; ok {
			out.Questions = append(out.Questions, *qe)
		}
		if ce, ok := choices[sv.Questions[i].ID]; ok {
			out.Choices = append(out.Choices, *ce)
		}
	}
	return out, nil
}

// LiveAccumulator describes one survey's live aggregate state on the
// admin surface.
type LiveAccumulator struct {
	SurveyID string `json:"survey_id"`
	// Cursor is the highest store sequence number folded in.
	Cursor uint64 `json:"cursor"`
	// Responses is the number of responses the accumulator holds.
	Responses int `json:"responses"`
}

// liveAccumulators reports every live accumulator's cursor, sorted by
// survey ID. It reads the atomic cursors rather than taking each la.mu,
// so the admin surface stays responsive even while a whole-backlog
// catch-up is folding (Responses == Cursor by the gap-free seq
// invariant).
func (s *Server) liveAccumulators() []LiveAccumulator {
	s.liveMu.Lock()
	out := make([]LiveAccumulator, 0, len(s.live))
	for id, la := range s.live {
		cursor := la.cursor.Load()
		out = append(out, LiveAccumulator{SurveyID: id, Cursor: cursor, Responses: int(cursor)})
	}
	s.liveMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].SurveyID < out[j].SurveyID })
	return out
}
