package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/aggregate"
	"loki/internal/checkpoint"
	"loki/internal/core"
	"loki/internal/shardset"
	"loki/internal/survey"
)

// PoisonError reports a stored record the live accumulator rejects. One
// such record wedges its shard's incremental read path: the aggregate
// cannot be served while skipping seq (it would silently undercount),
// and it cannot be folded. The error is sticky — recorded once on the
// shard's partial, returned to every subsequent read without rescanning
// from the cursor, and skipped by the submit path — until the
// accumulator is rebuilt (the survey is republished with a definition
// the record validates under, or an operator clears it through the
// admin surface).
type PoisonError struct {
	SurveyID string
	// Shard is the shard whose partial rejected the record.
	Shard int
	// Seq is the per-shard sequence number of the rejected record.
	Seq uint64
	// Err is the accumulator's rejection.
	Err error
}

// Error implements error with the coordinates an operator needs to find
// the record.
func (e *PoisonError) Error() string {
	return fmt.Sprintf("poisoned record: survey %q shard %d seq %d: %v", e.SurveyID, e.Shard, e.Seq, e.Err)
}

// Unwrap exposes the underlying rejection.
func (e *PoisonError) Unwrap() error { return e.Err }

// livePart is one shard's partial aggregate for one survey: a resumable
// accumulator plus the per-shard sequence number it has consumed up to.
// The invariant — the accumulator holds exactly the shard's responses
// with seq <= cursor — is maintained by folding only from the shard's
// ordered scan, never from in-flight request payloads, so concurrent
// submissions cannot double-count or skip: whatever a scan misses, the
// next scan delivers.
//
// Partials are folded independently — each has its own lock, so catch-up
// on one shard never blocks folds or reads on another — and Merged at
// query time, which is the whole point of the per-shard layout: no
// cross-shard lock exists anywhere on the write or fold path.
type livePart struct {
	surveyID string
	shard    int

	// mu serializes folds and snapshots (acc is not concurrency-safe).
	mu  sync.Mutex
	acc *aggregate.Accumulator
	// cursor is the last per-shard seq folded, readable without mu (the
	// admin surface reports it even mid-catch-up). Per-shard seqs are
	// gap-free from 1, so it also equals acc.N().
	cursor atomic.Uint64
	// ckptCursor is the cursor covered by this shard's last durable
	// checkpoint (0 when never checkpointed); the checkpointer uses it
	// as its dirty marker.
	ckptCursor atomic.Uint64

	// poison, once set, wedges the partial (guarded by mu); the atomics
	// mirror it for lock-free admin reads. poisonCount points at the
	// server's cumulative counter and is bumped once per poisoning.
	poison      *PoisonError
	poisonSeq   atomic.Uint64
	poisonMsg   atomic.Value // string
	poisonCount *atomic.Int64
}

// liveSet is one survey's full live aggregate state: one partial per
// shard, all folded under the same definition fingerprint.
type liveSet struct {
	surveyID string
	// fp is the fingerprint of the survey definition the partials fold
	// under. A read that resolves the survey to a different fingerprint
	// must not use this set: its bins were laid out for a different
	// question set (the republish staleness bug).
	fp    string
	parts []*livePart
}

// liveFor returns the survey's live set, creating it on first use — or
// re-creating it when the stored definition no longer matches the
// fingerprint the existing set was folded under (the survey was
// republished).
func (s *Server) liveFor(sv *survey.Survey) (*liveSet, error) {
	fp := sv.Fingerprint()
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	if ls, ok := s.live[sv.ID]; ok {
		if ls.fp == fp {
			return ls, nil
		}
		// Stale: the definition changed under the set (a read raced the
		// republish handler's invalidation). Rebuild below.
		delete(s.live, sv.ID)
	}
	shards := s.router.Shards()
	ls := &liveSet{surveyID: sv.ID, fp: fp, parts: make([]*livePart, shards)}
	for i := range ls.parts {
		part := &livePart{surveyID: sv.ID, shard: i, poisonCount: &s.poisoned}
		// Seed from the shard's durable checkpoint when one matches the
		// definition and the current shard layout: catch-up then scans
		// only the tail beyond the checkpoint cursor. Any mismatch just
		// means a full rebuild — checkpoints are an optimization, the
		// store is the source of truth. Checkpoints are keyed by GLOBAL
		// shard and validated against the global layout: a node
		// redeployed onto a different shard subset (new -node-index)
		// must never restore another shard's fold state.
		if s.cfg.Checkpoints != nil {
			gid := s.router.GlobalID(i)
			if rec, ok := s.cfg.Checkpoints.GetShard(sv.ID, gid); ok {
				stored := uint64(s.router.CountShard(i, sv.ID))
				switch {
				case rec.Fingerprint != fp:
					s.logf("checkpoint for %q shard %d predates a republish; rebuilding from the store", sv.ID, gid)
				case rec.NumShards() != s.cfg.ClusterShards:
					// A checkpoint taken under a different global shard
					// count covers a differently sliced stream; its
					// cursor and state mean nothing in this layout.
					s.logf("checkpoint for %q shard %d was taken under %d shards, cluster has %d; rebuilding",
						sv.ID, gid, rec.NumShards(), s.cfg.ClusterShards)
				case rec.Cursor > stored:
					// A cursor beyond the shard's history means the log
					// belongs to a different (or rebuilt) store. Trusting
					// it would serve phantom responses forever: the
					// catch-up scan past a too-high cursor finds nothing
					// and never corrects the state.
					s.logf("checkpoint for %q shard %d is ahead of the store (cursor %d > %d responses); rebuilding",
						sv.ID, gid, rec.Cursor, stored)
				default:
					if acc, err := aggregate.RestoreAccumulator(s.cfg.Schedule, sv, rec.State); err != nil {
						s.logf("checkpoint for %q shard %d unusable (%v); rebuilding from the store", sv.ID, gid, err)
					} else {
						part.acc = acc
						part.cursor.Store(rec.Cursor)
						part.ckptCursor.Store(rec.Cursor)
					}
				}
			}
		}
		if part.acc == nil {
			acc, err := aggregate.NewAccumulator(s.cfg.Schedule, sv)
			if err != nil {
				return nil, err
			}
			part.acc = acc
		}
		ls.parts[i] = part
	}
	s.live[sv.ID] = ls
	return ls, nil
}

// invalidateLive drops a survey's live set and durable checkpoints:
// fold state laid out under the old definition must never answer a read
// under the new one. It returns whether a live set existed.
func (s *Server) invalidateLive(id string) bool {
	s.liveMu.Lock()
	_, had := s.live[id]
	delete(s.live, id)
	s.liveMu.Unlock()
	if s.cache != nil {
		// A frontend's partial cache is fold state under the old
		// definition too: drop it with the live set.
		s.cache.drop(id)
	}
	if s.cfg.Checkpoints != nil {
		if err := s.cfg.Checkpoints.Drop(id); err != nil {
			s.logf("dropping checkpoint for %q: %v", id, err)
		}
	}
	return had
}

// ResetLive drops every survey's live aggregate state. A replica calls
// it after an epoch reset wiped its local stores: cursors into the old
// stream must not survive into the new one.
func (s *Server) ResetLive() {
	s.liveMu.Lock()
	s.live = make(map[string]*liveSet)
	s.liveMu.Unlock()
}

// catchUp folds everything the shard holds beyond the cursor. A record
// the accumulator rejects poisons the partial: the error (with survey,
// shard and seq) is recorded once and returned to every subsequent call
// without rescanning. The caller must hold the part's lock.
func (p *livePart) catchUp(r shardset.ShardRouter) error {
	if p.poison != nil {
		return p.poison
	}
	err := r.ScanShard(p.shard, p.surveyID, p.cursor.Load(), func(seq uint64, resp *survey.Response) error {
		if err := p.acc.Add(resp); err != nil {
			return &PoisonError{SurveyID: p.surveyID, Shard: p.shard, Seq: seq, Err: err}
		}
		p.cursor.Store(seq)
		return nil
	})
	var pe *PoisonError
	if errors.As(err, &pe) {
		p.poison = pe
		p.poisonSeq.Store(pe.Seq)
		p.poisonMsg.Store(pe.Err.Error())
		if p.poisonCount != nil {
			p.poisonCount.Add(1)
		}
	}
	return err
}

// refresh catches every partial up with its shard and merges them into
// one finalized estimate: the full incremental read path. Each shard's
// scan is O(responses appended to that shard since the last refresh) —
// usually zero or one — and the merge + finalize step is O(questions ×
// levels × shards), independent of stored-response count.
//
// The single-shard case skips the merge entirely and finalizes the one
// partial in place, which keeps the standalone deployment's read path
// byte-identical to the pre-cluster implementation.
func (s *Server) refresh(ls *liveSet) (*aggregate.SurveyEstimate, error) {
	if len(ls.parts) == 1 {
		p := ls.parts[0]
		p.mu.Lock()
		defer p.mu.Unlock()
		if err := p.catchUp(s.router); err != nil {
			return nil, err
		}
		return p.acc.Finalize()
	}
	// Catch every shard up in parallel: partials are independent by
	// construction, and on a remote router each catch-up is network
	// round-trips the others should not wait behind.
	errs := make([]error, len(ls.parts))
	var wg sync.WaitGroup
	for i, p := range ls.parts {
		wg.Add(1)
		go func(i int, p *livePart) {
			defer wg.Done()
			p.mu.Lock()
			defer p.mu.Unlock()
			errs[i] = p.catchUp(s.router)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Merge under each part's lock in shard order. Merging into a fresh
	// accumulator leaves every partial untouched and needs no global
	// lock: the worst a concurrent fold can do is land in the next
	// read's merge instead of this one.
	sv, err := s.router.Survey(ls.surveyID)
	if err != nil {
		return nil, err
	}
	merged, err := aggregate.NewAccumulator(s.cfg.Schedule, sv)
	if err != nil {
		return nil, err
	}
	for _, p := range ls.parts {
		p.mu.Lock()
		err := merged.Merge(p.acc)
		p.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return merged.Finalize()
}

// coldBacklog is the backlog size above which a submit declines to warm
// up a cold partial: folding a handful of responses inline keeps the
// read path hot for cheap, but rebuilding a large backlog belongs to
// the first read, not to a write request's latency.
const coldBacklog = 1024

// advance is the submit-path half of refresh: fold the routed shard's
// newly stored responses without finalizing, so the next read starts
// hot. It is strictly best-effort — the response is already durably
// stored and reads catch up from the cursor themselves — so it must
// never add latency to a write request: TryLock skips when another fold
// (e.g. a reader's whole-backlog catch-up after a restart) holds the
// shard's lock, a poisoned partial is left alone (retrying would
// re-fail on the same record forever), and a large unfolded backlog —
// whether the partial is cold from seq 0 or checkpoint-restored to a
// stale cursor — is left for the read path rather than rebuilt inline.
// Only the shard that stored the response is touched: a submit never
// contends with folds on other shards.
func (p *livePart) advance(r shardset.ShardRouter) error {
	if !p.mu.TryLock() {
		return nil
	}
	defer p.mu.Unlock()
	if p.poison != nil {
		return nil
	}
	// Additive comparison, not subtraction: a cursor ahead of the store
	// (possible only with a foreign checkpoint log) must read as "no
	// backlog", not underflow to a huge one.
	if uint64(r.CountShard(p.shard, p.surveyID)) > p.cursor.Load()+coldBacklog {
		return nil
	}
	return p.catchUp(r)
}

// BatchEstimator returns a batch (full-recompute) estimator for the
// schedule: the pre-incremental read path, kept as the reference
// implementation that the live-accumulator path is verified and
// benchmarked against.
func BatchEstimator(schedule core.Schedule) (*aggregate.Estimator, error) {
	return aggregate.NewEstimator(schedule)
}

// BatchAggregate recomputes the /aggregate payload from scratch over a
// full response slice — O(n) per call, unlike the live read path.
func BatchAggregate(est *aggregate.Estimator, sv *survey.Survey, responses []survey.Response) (*AggregateResult, error) {
	ests, err := est.EstimateSurvey(sv, responses)
	if err != nil {
		return nil, err
	}
	choices, err := est.EstimateSurveyChoices(sv, responses)
	if err != nil {
		return nil, err
	}
	out := &AggregateResult{SurveyID: sv.ID}
	for i := range sv.Questions {
		if qe, ok := ests[sv.Questions[i].ID]; ok {
			out.Questions = append(out.Questions, *qe)
		}
		if ce, ok := choices[sv.Questions[i].ID]; ok {
			out.Choices = append(out.Choices, *ce)
		}
	}
	return out, nil
}

// LiveAccumulator describes one shard partial's live aggregate state on
// the admin surface. A single-shard deployment reports exactly one
// entry per survey, the pre-cluster shape.
type LiveAccumulator struct {
	SurveyID string `json:"survey_id"`
	// Shard is the shard this partial folds.
	Shard int `json:"shard"`
	// Cursor is the highest per-shard sequence number folded in.
	Cursor uint64 `json:"cursor"`
	// Responses is the number of responses the partial holds.
	Responses int `json:"responses"`
	// Fingerprint identifies the survey definition the state is folded
	// under.
	Fingerprint string `json:"fingerprint"`
	// CheckpointCursor is the per-shard cursor covered by this shard's
	// last durable checkpoint (0 when never checkpointed).
	CheckpointCursor uint64 `json:"checkpoint_cursor,omitempty"`
	// PoisonedSeq and PoisonedError report the stored record wedging
	// this partial (seq 0 = healthy).
	PoisonedSeq   uint64 `json:"poisoned_seq,omitempty"`
	PoisonedError string `json:"poisoned_error,omitempty"`
}

// liveAccumulators reports every live partial's cursor, sorted by
// survey ID then shard. It reads the atomic cursors rather than taking
// each part's mu, so the admin surface stays responsive even while a
// whole-backlog catch-up is folding (Responses == Cursor by the
// gap-free seq invariant).
func (s *Server) liveAccumulators() []LiveAccumulator {
	s.liveMu.Lock()
	out := make([]LiveAccumulator, 0, len(s.live))
	for id, ls := range s.live {
		for _, p := range ls.parts {
			cursor := p.cursor.Load()
			acc := LiveAccumulator{
				SurveyID:         id,
				Shard:            p.shard,
				Cursor:           cursor,
				Responses:        int(cursor),
				Fingerprint:      ls.fp,
				CheckpointCursor: p.ckptCursor.Load(),
				PoisonedSeq:      p.poisonSeq.Load(),
			}
			if msg, ok := p.poisonMsg.Load().(string); ok {
				acc.PoisonedError = msg
			}
			out = append(out, acc)
		}
	}
	s.liveMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].SurveyID != out[j].SurveyID {
			return out[i].SurveyID < out[j].SurveyID
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// CheckpointRecordInfo is one (survey, shard) checkpoint on the admin
// surface.
type CheckpointRecordInfo struct {
	SurveyID string `json:"survey_id"`
	// Shard is the shard the checkpoint covers.
	Shard int `json:"shard"`
	// Cursor is the per-shard sequence number the checkpoint covers: a
	// restart's first read scans only beyond it.
	Cursor      uint64 `json:"cursor"`
	Fingerprint string `json:"fingerprint"`
	// AgeSeconds is how long ago the checkpoint was taken; it bounds the
	// tail a restart would rescan.
	AgeSeconds float64 `json:"age_seconds"`
}

// CheckpointInfo describes the durable checkpoint log on the admin
// surface.
type CheckpointInfo struct {
	// Surveys is the number of checkpointed surveys.
	Surveys int `json:"surveys"`
	// Records lists every checkpoint, sorted by survey ID then shard.
	Records []CheckpointRecordInfo `json:"records,omitempty"`
}

// checkpointInfo snapshots the checkpoint log for the admin surface;
// nil when checkpointing is disabled.
func (s *Server) checkpointInfo() *CheckpointInfo {
	if s.cfg.Checkpoints == nil {
		return nil
	}
	recs := s.cfg.Checkpoints.Records()
	info := &CheckpointInfo{Surveys: s.cfg.Checkpoints.Len()}
	now := time.Now()
	for _, rec := range recs {
		info.Records = append(info.Records, CheckpointRecordInfo{
			SurveyID:    rec.SurveyID,
			Shard:       rec.Shard,
			Cursor:      rec.Cursor,
			Fingerprint: rec.Fingerprint,
			AgeSeconds:  now.Sub(rec.SavedAt()).Seconds(),
		})
	}
	sort.Slice(info.Records, func(i, j int) bool {
		if info.Records[i].SurveyID != info.Records[j].SurveyID {
			return info.Records[i].SurveyID < info.Records[j].SurveyID
		}
		return info.Records[i].Shard < info.Records[j].Shard
	})
	return info
}

// FlushCheckpoints durably checkpoints every shard partial that has
// folded at least CheckpointDirty responses since its last checkpoint.
// It is what the background checkpointer runs on its interval; tests
// and benchmarks call it directly for a deterministic flush. Poisoned
// partials checkpoint too — their state is exactly the responses before
// the poisoned record, which is the right resume point. Because
// checkpoints are per shard, restart catch-up is per-shard-tail: each
// partial scans only its own shard beyond its own cursor.
func (s *Server) FlushCheckpoints() error {
	if s.cfg.Checkpoints == nil {
		return nil
	}
	s.liveMu.Lock()
	sets := make([]*liveSet, 0, len(s.live))
	for _, ls := range s.live {
		sets = append(sets, ls)
	}
	s.liveMu.Unlock()
	var first error
	for _, ls := range sets {
		for _, p := range ls.parts {
			p.mu.Lock()
			cursor := p.cursor.Load()
			if cursor < p.ckptCursor.Load()+uint64(s.cfg.CheckpointDirty) {
				p.mu.Unlock()
				continue
			}
			// Records carry GLOBAL shard coordinates: the layout
			// identity of the stream slice, stable across node
			// redeployments onto different shard subsets.
			rec := &checkpoint.Record{
				SurveyID:      ls.surveyID,
				Shard:         s.router.GlobalID(p.shard),
				ShardCount:    s.cfg.ClusterShards,
				Fingerprint:   ls.fp,
				Cursor:        cursor,
				State:         p.acc.Snapshot(),
				SavedUnixNano: time.Now().UnixNano(),
			}
			p.mu.Unlock()
			// The durable write happens outside the part's mu: a slow
			// fsync must not stall the read path. Snapshot is a deep
			// copy, so concurrent folds cannot tear the record.
			if err := s.cfg.Checkpoints.Put(rec); err != nil {
				if first == nil {
					first = err
				}
				continue
			}
			p.ckptCursor.Store(rec.Cursor)
		}
	}
	return first
}

// checkpointLoop is the background checkpointer: a FlushCheckpoints
// every interval until Close.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.FlushCheckpoints(); err != nil {
				s.logf("checkpoint flush: %v", err)
			}
		case <-s.ckptStop:
			return
		}
	}
}

// Close stops the background loops — the frontend cache refresher, and
// the checkpointer after one final flush so a clean shutdown leaves
// checkpoints covering everything folded. It does not close the store
// or the checkpoint log — the caller owns both. A server without
// background loops has nothing to stop; Close is a no-op.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.refStop != nil {
			close(s.refStop)
		}
		if s.ckptStop != nil {
			close(s.ckptStop)
		}
	})
	if s.refDone != nil {
		<-s.refDone
	}
	if s.ckptDone == nil {
		return nil
	}
	<-s.ckptDone
	return s.FlushCheckpoints()
}
