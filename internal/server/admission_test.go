package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loki/internal/core"
	"loki/internal/store"
	"loki/internal/survey"
)

// blockingStore wraps a store so every append parks until released —
// the stand-in for a storage layer that has stopped keeping up.
type blockingStore struct {
	store.Store
	release chan struct{}
}

func (b *blockingStore) AppendResponse(r *survey.Response) error {
	<-b.release
	return b.Store.AppendResponse(r)
}

func newAdmissionServer(t *testing.T, st store.Store, cfg Config) *httptest.Server {
	t.Helper()
	cfg.Store = st
	cfg.Schedule = core.DefaultSchedule()
	cfg.RequesterToken = testToken
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if err := st.PutSurvey(survey.Awareness()); err != nil {
		t.Fatal(err)
	}
	return ts
}

// admissionSnapshot polls the admin surface for the admission counters.
func admissionSnapshot(t *testing.T, ts *httptest.Server) *AdmissionInfo {
	t.Helper()
	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin store = %d: %s", resp.StatusCode, body)
	}
	var info AdminStoreInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info.Admission
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestOverloadShedsWithoutBlocking is the core admission contract: with
// the inflight slot held and the queue full, the next submit gets an
// immediate 429 with Retry-After — it must never block behind the
// stuck store.
func TestOverloadShedsWithoutBlocking(t *testing.T) {
	bs := &blockingStore{Store: store.NewMem(), release: make(chan struct{})}
	defer bs.Close()
	ts := newAdmissionServer(t, bs, Config{SubmitInflight: 1, SubmitQueue: 1})

	type result struct {
		code int
		body []byte
	}
	results := make(chan result, 2)
	submit := func(worker string) {
		r := validResponse("none", false)
		r.WorkerID = worker
		resp, body := doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), r, "")
		results <- result{resp.StatusCode, body}
	}
	// First submit takes the inflight slot and parks in the store;
	// second waits in the queue.
	go submit("held")
	waitFor(t, "inflight slot taken", func() bool { return admissionSnapshot(t, ts).Inflight == 1 })
	go submit("queued")
	waitFor(t, "queue occupied", func() bool { return admissionSnapshot(t, ts).QueueDepth >= 1 })

	// Third submit: shed now, not enqueued behind the stuck store.
	start := time.Now()
	r := validResponse("none", false)
	r.WorkerID = "shed"
	resp, body := doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), r, "")
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("shed submit took %v; it must not block", took)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue submit = %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed reply has no Retry-After header")
	}
	var oe OverloadError
	if err := json.Unmarshal(body, &oe); err != nil {
		t.Fatal(err)
	}
	if oe.Error != OverloadedCode || oe.RetryAfterSeconds < 1 {
		t.Fatalf("shed body = %+v", oe)
	}

	// Releasing the store lets the held and queued submits finish.
	close(bs.release)
	for i := 0; i < 2; i++ {
		res := <-results
		if res.code != http.StatusCreated {
			t.Fatalf("blocked submit finished with %d: %s", res.code, res.body)
		}
	}
	info := admissionSnapshot(t, ts)
	if info.Admitted != 2 || info.Shed < 1 {
		t.Fatalf("admission counters = %+v", info)
	}
}

// TestOverloadGoroutinesBounded fires two orders of magnitude more
// arrivals than the admission bounds allow against a wedged store and
// checks goroutine residency: once the shed replies have drained, the
// process is back near baseline with only the admitted handful parked.
// Without shed-on-full every arrival would park in a handler goroutine
// behind the stuck store.
func TestOverloadGoroutinesBounded(t *testing.T) {
	const (
		inflight = 2
		queue    = 4
		arrivals = 600 // 100x the inflight+queue capacity
	)
	bs := &blockingStore{Store: store.NewMem(), release: make(chan struct{})}
	defer bs.Close()
	ts := newAdmissionServer(t, bs, Config{SubmitInflight: inflight, SubmitQueue: queue})

	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	var served, shed, failed atomic.Int64
	hc := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < arrivals; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := validResponse("none", false)
			r.WorkerID = fmt.Sprintf("w%04d", i)
			b, _ := json.Marshal(r)
			req, _ := http.NewRequest(http.MethodPost, submitURL(ts, survey.AwarenessID), bytes.NewReader(b))
			req.Header.Set("Content-Type", "application/json")
			resp, err := hc.Do(req)
			if err != nil {
				failed.Add(1)
				return
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusCreated:
				served.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
			default:
				failed.Add(1)
			}
		}(i)
	}

	// The store never makes progress, so exactly inflight+queue arrivals
	// park and everything else must come back 429.
	const parked = inflight + queue
	waitFor(t, "shed replies to drain", func() bool { return shed.Load() == arrivals-parked })
	hc.CloseIdleConnections()
	// Residency check: the shed majority left nothing behind. Allow
	// slack for the parked requests' connection goroutines and runtime
	// internals winding down.
	waitFor(t, "goroutines to return to baseline", func() bool {
		return runtime.NumGoroutine()-baseline < parked*4+32
	})

	// Unwedge the store; the parked requests complete and accounting
	// closes exactly.
	close(bs.release)
	wg.Wait()
	if served.Load() != parked || shed.Load() != arrivals-parked || failed.Load() != 0 {
		t.Fatalf("accounting: served %d shed %d failed %d of %d arrivals (want %d/%d/0)",
			served.Load(), shed.Load(), failed.Load(), arrivals, parked, arrivals-parked)
	}
}

// TestRateLimiterIsolatesWorkers: one worker hammering past its
// per-worker rate gets 429 rate_limited; a quiet worker on the same
// server is untouched.
func TestRateLimiterIsolatesWorkers(t *testing.T) {
	st := store.NewMem()
	defer st.Close()
	ts := newAdmissionServer(t, st, Config{RateLimitRPS: 1, RateLimitBurst: 2})

	var throttled int
	for i := 0; i < 10; i++ {
		r := validResponse("none", false)
		r.WorkerID = "noisy"
		resp, body := doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), r, "")
		switch resp.StatusCode {
		case http.StatusCreated:
		case http.StatusTooManyRequests:
			throttled++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("throttle reply has no Retry-After header")
			}
			var oe OverloadError
			if err := json.Unmarshal(body, &oe); err != nil {
				t.Fatal(err)
			}
			if oe.Error != RateLimitedCode {
				t.Fatalf("throttle body = %+v", oe)
			}
		default:
			t.Fatalf("noisy submit %d = %d: %s", i, resp.StatusCode, body)
		}
	}
	if throttled == 0 {
		t.Fatal("noisy worker burst was never rate limited")
	}

	// The quiet worker's bucket is its own: still full.
	r := validResponse("none", false)
	r.WorkerID = "quiet"
	resp, body := doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), r, "")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("quiet worker = %d: %s (noisy neighbor leaked into its bucket)", resp.StatusCode, body)
	}
	info := admissionSnapshot(t, ts)
	if info == nil || info.Throttled == 0 || info.RateLimitedWorkers == 0 {
		t.Fatalf("admission info = %+v", info)
	}
}

// TestAdmissionDefaultOff: with no admission knobs set, the admin
// surface omits the admission block entirely — the default-off path
// stays byte-identical to a server that has never heard of it.
func TestAdmissionDefaultOff(t *testing.T) {
	ts, st := newTestServer(t)
	if err := st.PutSurvey(survey.Awareness()); err != nil {
		t.Fatal(err)
	}
	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin store = %d", resp.StatusCode)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["admission"]; ok {
		t.Fatal("default-off server reports an admission block")
	}
	resp, _ = doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), validResponse("none", false), "")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("default-off submit = %d", resp.StatusCode)
	}
}
