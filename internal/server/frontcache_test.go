package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// cacheInfo fetches the frontend cache's admin report.
func cacheInfo(t *testing.T, ts *httptest.Server) *FrontendCacheInfo {
	t.Helper()
	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin = %d: %s", resp.StatusCode, body)
	}
	var info AdminStoreInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.FrontendCache == nil {
		t.Fatal("caching frontend reports no frontend_cache")
	}
	return info.FrontendCache
}

func surveyCacheStats(t *testing.T, ts *httptest.Server, id string) FrontendCacheSurveyInfo {
	t.Helper()
	for _, si := range cacheInfo(t, ts).Surveys {
		if si.SurveyID == id {
			return si
		}
	}
	t.Fatalf("no cache entry for %q", id)
	return FrontendCacheSurveyInfo{}
}

// TestFrontendCacheReadYourWrites: with an effectively infinite TTL, a
// submit routed through the caching frontend must still be visible to
// the very next read — the expected-cursor floor forces revalidation —
// while reads with no intervening submit are pure cache hits.
func TestFrontendCacheReadYourWrites(t *testing.T) {
	const totalShards = 4
	clients := newTestNodes(t, 2, totalShards, 0)
	fts, remote, _ := newTestFrontend(t, clients, totalShards, time.Hour, 0)
	sv := clusterTestSurvey()
	if resp, body := doReq(t, http.MethodPost, fts.URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 40; i++ {
		submitOK(t, fts, randomResponse(sv, rng, i))
	}
	// Every read interleaved with submits must already include them —
	// the TTL alone would serve day-old state.
	for i := 0; i < 10; i++ {
		compareAggregate(t, getAggregate(t, fts, sv.ID), referenceAggregate(t, remote, sv))
		submitOK(t, fts, randomResponse(sv, rng, 100+i))
	}
	compareAggregate(t, getAggregate(t, fts, sv.ID), referenceAggregate(t, remote, sv))

	// Quiescent rereads are hits: no submits between them, infinite
	// TTL, so the cursor floors are satisfied.
	before := surveyCacheStats(t, fts, sv.ID)
	for i := 0; i < 5; i++ {
		getAggregate(t, fts, sv.ID)
	}
	after := surveyCacheStats(t, fts, sv.ID)
	if after.Hits < before.Hits+5 {
		t.Fatalf("quiescent rereads were not cache hits: %d -> %d", before.Hits, after.Hits)
	}
	if after.Misses != before.Misses {
		t.Fatalf("quiescent rereads revalidated: misses %d -> %d", before.Misses, after.Misses)
	}
	// The interleaved reads revalidated with conditional fetches, so
	// the nodes answered with deltas and not-modifieds — full snapshots
	// only for the cold fill.
	if after.Delta == 0 || after.NotModified == 0 {
		t.Fatalf("conditional revalidation never produced deltas/not-modifieds: %+v", after)
	}
	if after.Full > int64(totalShards) {
		t.Fatalf("%d full snapshot fetches, want at most one cold fill per shard (%d)", after.Full, totalShards)
	}
}

// TestFrontendCacheBoundedStaleness: submits through frontend A are
// invisible to frontend B's cache at most for the TTL; within it B may
// serve stale state, beyond it B must have revalidated. Concurrent
// cross-frontend submits must not break the bound or the equivalence.
func TestFrontendCacheBoundedStaleness(t *testing.T) {
	const totalShards = 4
	const ttl = 50 * time.Millisecond
	clients := newTestNodes(t, 2, totalShards, 0)
	ftsA, remote, _ := newTestFrontend(t, clients, totalShards, ttl, 0)
	ftsB, _, _ := newTestFrontend(t, clients, totalShards, ttl, 0)
	sv := clusterTestSurvey()
	if resp, body := doReq(t, http.MethodPost, ftsA.URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 30; i++ {
		submitOK(t, ftsA, randomResponse(sv, rng, i))
	}
	// Prime both caches.
	getAggregate(t, ftsA, sv.ID)
	getAggregate(t, ftsB, sv.ID)

	// Concurrent cross-frontend submits with readers on both sides: no
	// read may error, and every read must be a valid aggregate (the
	// race detector guards the cache's internals).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ts := ftsA
			if w%2 == 1 {
				ts = ftsB
			}
			for i := 0; i < 15; i++ {
				submitOK(t, ts, randomResponse(sv, rand.New(rand.NewSource(int64(100+w*100+i))), 1000+w*100+i))
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ts := ftsA
			if r == 1 {
				ts = ftsB
			}
			for i := 0; i < 20; i++ {
				getAggregate(t, ts, sv.ID)
			}
		}(r)
	}
	wg.Wait()

	// After the TTL both frontends must converge on the reference: the
	// staleness bound, not eventual luck.
	time.Sleep(ttl + 20*time.Millisecond)
	want := referenceAggregate(t, remote, sv)
	compareAggregate(t, getAggregate(t, ftsA, sv.ID), want)
	compareAggregate(t, getAggregate(t, ftsB, sv.ID), want)
}

// TestFrontendCacheDeltaEquivalence extends the PR 4 merge-equivalence
// property to the cached path: across rounds of randomized submits,
// every cached read must equal the single-accumulator fold of the
// seq-merged stream, and the revalidations must actually exercise the
// delta protocol (not fall back to full snapshots).
func TestFrontendCacheDeltaEquivalence(t *testing.T) {
	for _, nodes := range []int{1, 3} {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("nodes=%d/seed=%d", nodes, seed), func(t *testing.T) {
				const totalShards = 5
				clients := newTestNodes(t, nodes, totalShards, 0)
				// TTL 0 means the default (250ms); use 1h so only
				// read-your-writes floors trigger revalidation and the
				// test is deterministic.
				fts, remote, _ := newTestFrontend(t, clients, totalShards, time.Hour, 0)
				sv := clusterTestSurvey()
				if resp, body := doReq(t, http.MethodPost, fts.URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
					t.Fatalf("publish = %d: %s", resp.StatusCode, body)
				}
				rng := rand.New(rand.NewSource(seed))
				n := 0
				for round := 0; round < 6; round++ {
					batch := 10 + rng.Intn(30)
					for i := 0; i < batch; i++ {
						submitOK(t, fts, randomResponse(sv, rng, n))
						n++
					}
					compareAggregate(t, getAggregate(t, fts, sv.ID), referenceAggregate(t, remote, sv))
				}
				stats := surveyCacheStats(t, fts, sv.ID)
				if stats.Delta == 0 {
					t.Fatalf("cached reads never used the delta protocol: %+v", stats)
				}
				if got := stats.Cursors; len(got) != totalShards {
					t.Fatalf("cursor vector has %d shards, want %d", len(got), totalShards)
				}
				var total uint64
				for _, c := range stats.Cursors {
					total += c
				}
				if total != uint64(n) {
					t.Fatalf("cached cursor vector covers %d responses, want %d", total, n)
				}
			})
		}
	}
}

// TestFrontendCacheColdAndDisabled: a cold cache's first read degrades
// to the full fan-out (one full snapshot per shard) and matches a
// cache-disabled frontend over the same nodes.
func TestFrontendCacheColdAndDisabled(t *testing.T) {
	const totalShards = 4
	clients := newTestNodes(t, 2, totalShards, 0)
	uncached, remote, _ := newTestFrontend(t, clients, totalShards, -1, 0)
	sv := clusterTestSurvey()
	if resp, body := doReq(t, http.MethodPost, uncached.URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		submitOK(t, uncached, randomResponse(sv, rng, i))
	}
	// A brand-new caching frontend: its first read is the cold path.
	cached, _, _ := newTestFrontend(t, clients, totalShards, time.Hour, 0)
	want := referenceAggregate(t, remote, sv)
	compareAggregate(t, getAggregate(t, cached, sv.ID), want)
	compareAggregate(t, getAggregate(t, uncached, sv.ID), want)
	stats := surveyCacheStats(t, cached, sv.ID)
	if stats.Full != int64(totalShards) {
		t.Fatalf("cold fill fetched %d full snapshots, want %d", stats.Full, totalShards)
	}
	// The disabled frontend reports no cache on the admin surface.
	resp, body := doReq(t, http.MethodGet, uncached.URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin = %d: %s", resp.StatusCode, body)
	}
	var info AdminStoreInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.FrontendCache != nil {
		t.Fatal("cache-disabled frontend still reports frontend_cache")
	}
}

// TestFrontendCacheBackgroundRefresh: with the refresher on, data
// submitted behind the frontend's back (straight to the nodes) shows
// up in cached reads without any read ever paying the revalidation —
// the steady-state hot-survey path.
func TestFrontendCacheBackgroundRefresh(t *testing.T) {
	const totalShards = 4
	const ttl = 40 * time.Millisecond
	clients := newTestNodes(t, 2, totalShards, 0)
	fts, remote, _ := newTestFrontend(t, clients, totalShards, ttl, 10*time.Millisecond)
	sv := clusterTestSurvey()
	if resp, body := doReq(t, http.MethodPost, fts.URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		submitOK(t, fts, randomResponse(sv, rng, i))
	}
	getAggregate(t, fts, sv.ID) // mark hot + prime

	// Submit around the frontend: directly through the remote router.
	for i := 0; i < 10; i++ {
		if _, err := remote.Append(randomResponse(sv, rng, 500+i)); err != nil {
			t.Fatal(err)
		}
	}
	// The refresher must pick the new data up within a few ticks even
	// though no read forces it.
	deadline := time.Now().Add(2 * time.Second)
	want := referenceAggregate(t, remote, sv)
	for {
		got := getAggregate(t, fts, sv.ID)
		if got.Choices[0].N == want.Choices[0].N {
			compareAggregate(t, got, want)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background refresh never surfaced node-side submits (have n=%d, want %d)", got.Choices[0].N, want.Choices[0].N)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
