// Admission control for the submit path: a bounded inflight/queue gate
// that sheds with 429 + Retry-After instead of letting overload pile up
// goroutines, and an optional per-requester token-bucket rate limit.
//
// Both controls default off (Config.SubmitInflight / RateLimitRPS
// unset), in which case the submit path is exactly the pre-admission
// code: the middleware returns the handler unchanged and no gate state
// exists. This keeps the default-off behavior byte-identical.
package server

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// OverloadRetryAfterSeconds is the advisory Retry-After on a shed
// submit. Shedding is a transient queueing condition — unlike a budget
// rejection it clears as soon as inflight work drains — so the hint is
// short.
const OverloadRetryAfterSeconds = 1

// OverloadError is the 429 body for submits refused by admission
// control (code "overloaded") or the per-requester rate limit (code
// "rate_limited"). It mirrors BudgetExhaustedError's shape: the error
// code doubles as the discriminator and Retry-After rides both the
// header and the body.
type OverloadError struct {
	Error             string `json:"error"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

// Overload error codes.
const (
	OverloadedCode  = "overloaded"
	RateLimitedCode = "rate_limited"
)

// admission is the bounded submit gate: at most maxInflight requests
// execute the submit path concurrently, at most maxQueue more wait for
// a slot, and everything beyond that is shed immediately — the caller
// never blocks behind an unbounded line.
type admission struct {
	inflight chan struct{}
	maxQueue int64

	queued     atomic.Int64
	admitted   atomic.Int64
	shed       atomic.Int64
	queueHW    atomic.Int64 // high-watermark of queued
	inflightHW atomic.Int64 // high-watermark of inflight
}

func newAdmission(maxInflight, maxQueue int) *admission {
	return &admission{
		inflight: make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
	}
}

// acquire takes an inflight slot, waiting in the bounded queue if none
// is free. It returns false — immediately, never after blocking — when
// the queue is already full (the shed path), and false on context
// cancellation while queued.
func (a *admission) acquire(ctx context.Context) bool {
	select {
	case a.inflight <- struct{}{}:
		a.admitted.Add(1)
		raiseHW(&a.inflightHW, int64(len(a.inflight)))
		return true
	default:
	}
	q := a.queued.Add(1)
	if q > a.maxQueue {
		a.queued.Add(-1)
		a.shed.Add(1)
		return false
	}
	raiseHW(&a.queueHW, q)
	defer a.queued.Add(-1)
	select {
	case a.inflight <- struct{}{}:
		a.admitted.Add(1)
		raiseHW(&a.inflightHW, int64(len(a.inflight)))
		return true
	case <-ctx.Done():
		a.shed.Add(1)
		return false
	}
}

func (a *admission) release() { <-a.inflight }

func raiseHW(hw *atomic.Int64, v int64) {
	for {
		cur := hw.Load()
		if v <= cur || hw.CompareAndSwap(cur, v) {
			return
		}
	}
}

// rateLimiter is a per-requester token bucket: each worker refills at
// rps tokens/second up to burst, and a submit spends one token. The
// bucket map is bounded by sweeping fully refilled buckets once it
// grows past sweepAbove — a full bucket is indistinguishable from a
// fresh one, so dropping it loses nothing.
type rateLimiter struct {
	rps   float64
	burst float64

	mu        sync.Mutex
	buckets   map[string]*tokenBucket
	throttled atomic.Int64
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

const limiterSweepAbove = 1 << 14

func newRateLimiter(rps float64, burst int) *rateLimiter {
	if burst <= 0 {
		burst = int(math.Ceil(rps))
		if burst < 1 {
			burst = 1
		}
	}
	return &rateLimiter{rps: rps, burst: float64(burst), buckets: make(map[string]*tokenBucket)}
}

// allow spends one token from the worker's bucket. When the bucket is
// empty it reports the whole seconds until a token accrues (at least
// 1, the Retry-After hint) and false.
func (l *rateLimiter) allow(workerID string) (retryAfter int, ok bool) {
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[workerID]
	if b == nil {
		if len(l.buckets) >= limiterSweepAbove {
			l.sweepLocked(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[workerID] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rps)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	l.throttled.Add(1)
	wait := (1 - b.tokens) / l.rps
	retryAfter = int(math.Ceil(wait))
	if retryAfter < 1 {
		retryAfter = 1
	}
	return retryAfter, false
}

// sweepLocked drops buckets that have refilled to burst — they carry no
// state a fresh bucket would not.
func (l *rateLimiter) sweepLocked(now time.Time) {
	for id, b := range l.buckets {
		if math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rps) >= l.burst {
			delete(l.buckets, id)
		}
	}
}

func (l *rateLimiter) workers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// admit wraps a submit handler with the admission gate. With the gate
// off it returns the handler unchanged — the default-off path adds no
// wrapper, no allocation, no branch.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	if s.adm == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.adm.acquire(r.Context()) {
			writeOverload(w, OverloadedCode, OverloadRetryAfterSeconds)
			return
		}
		defer s.adm.release()
		h(w, r)
	}
}

// throttle consults the per-requester rate limit for one record. It
// returns a refusal when the worker is out of tokens, nil otherwise
// (including when rate limiting is off).
func (s *Server) throttle(workerID string) *submitRefusal {
	if s.limiter == nil {
		return nil
	}
	retryAfter, ok := s.limiter.allow(workerID)
	if ok {
		return nil
	}
	return &submitRefusal{
		status:     http.StatusTooManyRequests,
		code:       RateLimitedCode,
		msg:        "rate limit exceeded for worker " + workerID,
		retryAfter: retryAfter,
	}
}

func writeOverload(w http.ResponseWriter, code string, retryAfter int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, http.StatusTooManyRequests, OverloadError{
		Error:             code,
		RetryAfterSeconds: retryAfter,
	})
}

// AdmissionInfo is the admin surface's view of the submit gate and the
// per-requester rate limit.
type AdmissionInfo struct {
	// MaxInflight / MaxQueue are the configured bounds.
	MaxInflight int `json:"max_inflight"`
	MaxQueue    int `json:"max_queue"`
	// Inflight / QueueDepth are instantaneous gauges; the HighWater
	// variants are since-start maxima.
	Inflight          int   `json:"inflight"`
	QueueDepth        int   `json:"queue_depth"`
	InflightHighWater int   `json:"inflight_high_water"`
	QueueHighWater    int   `json:"queue_high_water"`
	Admitted          int64 `json:"admitted"`
	Shed              int64 `json:"shed"`
	// RateLimitRPS / RateLimitBurst describe the per-requester limit
	// (zero when off); Throttled counts records it refused and
	// RateLimitedWorkers the buckets currently tracked.
	RateLimitRPS       float64 `json:"rate_limit_rps,omitempty"`
	RateLimitBurst     int     `json:"rate_limit_burst,omitempty"`
	Throttled          int64   `json:"throttled,omitempty"`
	RateLimitedWorkers int     `json:"rate_limited_workers,omitempty"`
}

// admissionInfo builds the admin view; nil when both controls are off
// (so the admin JSON is unchanged for existing deployments).
func (s *Server) admissionInfo() *AdmissionInfo {
	if s.adm == nil && s.limiter == nil {
		return nil
	}
	info := &AdmissionInfo{}
	if a := s.adm; a != nil {
		info.MaxInflight = cap(a.inflight)
		info.MaxQueue = int(a.maxQueue)
		info.Inflight = len(a.inflight)
		info.QueueDepth = int(a.queued.Load())
		info.InflightHighWater = int(a.inflightHW.Load())
		info.QueueHighWater = int(a.queueHW.Load())
		info.Admitted = a.admitted.Load()
		info.Shed = a.shed.Load()
	}
	if l := s.limiter; l != nil {
		info.RateLimitRPS = l.rps
		info.RateLimitBurst = int(l.burst)
		info.Throttled = l.throttled.Load()
		info.RateLimitedWorkers = l.workers()
	}
	return info
}
