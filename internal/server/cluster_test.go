package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"loki/internal/checkpoint"
	"loki/internal/core"
	"loki/internal/shardrpc"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// clusterTestSurvey exercises every accumulator cell kind: Welford
// bins, choice counts, and the consistency screen.
func clusterTestSurvey() *survey.Survey {
	return &survey.Survey{
		ID:    "cluster",
		Title: "Cluster test survey",
		Questions: []survey.Question{
			{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "q1", Text: "rate again", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "q2", Text: "pick", Kind: survey.MultipleChoice, Options: []string{"a", "b", "c"}},
		},
		Consistency: []survey.ConsistencyPair{{QuestionA: "q0", QuestionB: "q1", Tolerance: 1}},
		RewardCents: 1,
	}
}

// randomResponse builds a response with a mixed privacy level, an
// occasional inconsistent pair and a choice answer — randomized but
// deterministic per rng.
func randomResponse(sv *survey.Survey, rng *rand.Rand, i int) *survey.Response {
	levels := []string{"none", "low", "medium", "high"}
	lvl := levels[rng.Intn(len(levels))]
	rating := float64(1 + rng.Intn(5))
	q1 := rating
	if rng.Intn(10) == 0 {
		if rating >= 3 {
			q1 = rating - 2
		} else {
			q1 = rating + 2
		}
	}
	return &survey.Response{
		SurveyID:     sv.ID,
		WorkerID:     fmt.Sprintf("w%06d", i),
		PrivacyLevel: lvl,
		Obfuscated:   lvl != "none",
		Answers: []survey.Answer{
			survey.RatingAnswer("q0", rating),
			survey.RatingAnswer("q1", q1),
			survey.ChoiceAnswer("q2", rng.Intn(3)),
		},
	}
}

// collectMerged materializes the seq-merged response stream of a
// sharded router — the reference data the merged read path is checked
// against.
func collectMerged(t *testing.T, r shardset.ShardRouter, surveyID string) []survey.Response {
	t.Helper()
	var out []survey.Response
	if _, err := shardset.ScanMerged(r, surveyID, nil, func(_ int, _ uint64, resp *survey.Response) error {
		out = append(out, *resp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// referenceAggregate folds the seq-merged stream through one
// accumulator — the single-accumulator path the tentpole's acceptance
// criterion names.
func referenceAggregate(t *testing.T, r shardset.ShardRouter, sv *survey.Survey) *AggregateResult {
	t.Helper()
	est, err := BatchEstimator(core.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	out, err := BatchAggregate(est, sv, collectMerged(t, r, sv.ID))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterMergeEquivalence is the cross-shard merge equivalence
// property test: for several seeds and shard counts, the per-shard
// partial accumulators Merged at query time must equal a single
// accumulator folded over the seq-merged stream — on a live server,
// and again after a restart that restores every shard partial from its
// per-shard checkpoint and catches up only the shard tails.
//
// Integer state (counts, bins, observed choices, quality tallies) must
// match exactly; float fields to within accumulation-order noise, since
// Welford merges reorder IEEE-754 operations (compareAggregate's 1e-9
// relative tolerance, orders of magnitude below any statistical meaning
// the estimates carry).
func TestClusterMergeEquivalence(t *testing.T) {
	for _, shards := range []int{2, 5} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				stores := make([]store.Store, shards)
				for i := range stores {
					stores[i] = store.NewMem()
				}
				router, err := shardset.NewLocal(stores, shardset.LocalOptions{})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { router.Close() })
				sv := clusterTestSurvey()
				if err := router.PutSurvey(sv); err != nil {
					t.Fatal(err)
				}
				ckpt, err := checkpoint.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { ckpt.Close() })
				srv, err := New(Config{
					Router: router, Schedule: core.DefaultSchedule(), RequesterToken: testToken,
					Checkpoints: ckpt, CheckpointInterval: time.Hour,
				})
				if err != nil {
					t.Fatal(err)
				}
				ts := httptest.NewServer(srv)
				t.Cleanup(ts.Close)

				n := 100 + rng.Intn(100)
				for i := 0; i < n; i++ {
					submitOK(t, ts, randomResponse(sv, rng, i))
				}

				want := referenceAggregate(t, router, sv)
				compareAggregate(t, getAggregate(t, ts, sv.ID), want)

				// Checkpoint every shard partial, then restart: the new
				// server restores per shard and must answer identically.
				if err := srv.FlushCheckpoints(); err != nil {
					t.Fatal(err)
				}
				for s := 0; s < shards; s++ {
					rec, ok := ckpt.GetShard(sv.ID, s)
					if !ok {
						t.Fatalf("no checkpoint for shard %d", s)
					}
					if rec.Cursor != uint64(router.CountShard(s, sv.ID)) {
						t.Fatalf("shard %d checkpoint cursor %d, store holds %d", s, rec.Cursor, router.CountShard(s, sv.ID))
					}
					if rec.NumShards() != shards {
						t.Fatalf("shard %d checkpoint layout %d, want %d", s, rec.NumShards(), shards)
					}
				}
				srv.Close()

				// A few post-checkpoint submits so restart catch-up has
				// real per-shard tails to scan.
				srv2, err := New(Config{
					Router: router, Schedule: core.DefaultSchedule(), RequesterToken: testToken,
					Checkpoints: ckpt, CheckpointInterval: time.Hour,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { srv2.Close() })
				ts2 := httptest.NewServer(srv2)
				t.Cleanup(ts2.Close)
				for i := 0; i < 20; i++ {
					submitOK(t, ts2, randomResponse(sv, rng, n+i))
				}
				compareAggregate(t, getAggregate(t, ts2, sv.ID), referenceAggregate(t, router, sv))
			})
		}
	}
}

// newTestNodes spins nodes (shardrpc over real HTTP) and returns one
// client per node.
func newTestNodes(t *testing.T, nodes, totalShards, journalRetain int) []*shardrpc.Client {
	t.Helper()
	owned := shardrpc.RoundRobinPlacement(totalShards, nodes)
	clients := make([]*shardrpc.Client, nodes)
	for nd := 0; nd < nodes; nd++ {
		stores := make([]store.Store, len(owned[nd]))
		for i := range stores {
			stores[i] = store.NewMem()
		}
		local, err := shardset.NewLocal(stores, shardset.LocalOptions{
			GlobalIDs: owned[nd], Journal: true, JournalRetain: journalRetain,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { local.Close() })
		nsrv, err := New(Config{Router: local, Schedule: core.DefaultSchedule(), RequesterToken: testToken, Role: "node"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nsrv.Close() })
		node, err := NewNode(nsrv, totalShards)
		if err != nil {
			t.Fatal(err)
		}
		h, err := shardrpc.NewHandler(node, testToken)
		if err != nil {
			t.Fatal(err)
		}
		nts := httptest.NewServer(h)
		t.Cleanup(nts.Close)
		clients[nd] = shardrpc.NewClient(nts.URL, testToken, nil)
	}
	return clients
}

// newTestFrontend builds one frontend server over the given node
// clients with explicit cache settings (ttl < 0 disables the cache,
// matching Config semantics).
func newTestFrontend(t *testing.T, clients []*shardrpc.Client, totalShards int, cacheTTL, refresh time.Duration) (*httptest.Server, *shardrpc.Remote, *Server) {
	t.Helper()
	remote, err := shardrpc.NewRemoteRoundRobin(clients, totalShards)
	if err != nil {
		t.Fatal(err)
	}
	frontend, err := New(Config{
		Router: remote, Schedule: core.DefaultSchedule(), RequesterToken: testToken, Role: "frontend",
		FrontendCacheTTL: cacheTTL, FrontendRefresh: refresh,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { frontend.Close() })
	fts := httptest.NewServer(frontend)
	t.Cleanup(fts.Close)
	return fts, remote, frontend
}

// newTestCluster spins nodes (shardrpc over real HTTP) and a frontend
// server with default caching; returns the frontend's test server and
// the remote router.
func newTestCluster(t *testing.T, nodes, totalShards int) (*httptest.Server, *shardrpc.Remote) {
	t.Helper()
	clients := newTestNodes(t, nodes, totalShards, 0)
	fts, remote, _ := newTestFrontend(t, clients, totalShards, 0, 0)
	return fts, remote
}

// TestClusterEndToEnd: publish and submit through the frontend, read
// merged aggregates, and check the admin surface reports the role.
func TestClusterEndToEnd(t *testing.T) {
	const totalShards = 4
	fts, remote := newTestCluster(t, 2, totalShards)
	sv := clusterTestSurvey()

	resp, body := doReq(t, http.MethodPost, fts.URL+"/api/v1/surveys", sv, testToken)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 150
	for i := 0; i < n; i++ {
		submitOK(t, fts, randomResponse(sv, rng, i))
	}
	if got := shardset.Count(remote, sv.ID); got != n {
		t.Fatalf("cluster holds %d responses, want %d", got, n)
	}
	// Responses actually spread across shards.
	spread := 0
	for s := 0; s < totalShards; s++ {
		if remote.CountShard(s, sv.ID) > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("placement used %d shards", spread)
	}

	// Merged reads equal the single-accumulator fold of the seq-merged
	// stream, live and after more submits.
	compareAggregate(t, getAggregate(t, fts, sv.ID), referenceAggregate(t, remote, sv))
	for i := 0; i < 30; i++ {
		submitOK(t, fts, randomResponse(sv, rng, n+i))
	}
	compareAggregate(t, getAggregate(t, fts, sv.ID), referenceAggregate(t, remote, sv))

	// Admin surface: frontend role, remote backend, global shard count.
	resp, body = doReq(t, http.MethodGet, fts.URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin = %d: %s", resp.StatusCode, body)
	}
	var info AdminStoreInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Role != "frontend" || info.Backend != "remote" || info.RouterShards != totalShards {
		t.Fatalf("admin info = role %q backend %q shards %d", info.Role, info.Backend, info.RouterShards)
	}

	// Republish through the frontend: nodes invalidate and reads fold
	// under the new definition.
	sv2 := clusterTestSurvey()
	sv2.Questions = sv2.Questions[:2]
	sv2.Consistency = nil
	resp, body = doReq(t, http.MethodPost, fts.URL+"/api/v1/surveys", sv2, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("republish = %d: %s", resp.StatusCode, body)
	}
	got := getAggregate(t, fts, sv.ID)
	if len(got.Choices) != 0 {
		t.Fatalf("republished aggregate still has %d choice questions", len(got.Choices))
	}
}

// switchableHandler lets a test "restart" a node behind a stable URL.
type switchableHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *switchableHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *switchableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

// TestReplicaFollowsNode: WAL-tail shipping end to end — catch-up,
// read-only serving, staleness reporting, and the epoch reset after a
// node restart.
func TestReplicaFollowsNode(t *testing.T) {
	const shards = 2
	stores := make([]store.Store, shards)
	for i := range stores {
		stores[i] = store.NewMem()
	}
	newNode := func() (*shardset.Local, http.Handler) {
		local, err := shardset.NewLocal(stores, shardset.LocalOptions{Journal: true})
		if err != nil {
			t.Fatal(err)
		}
		nsrv, err := New(Config{Router: local, Schedule: core.DefaultSchedule(), RequesterToken: testToken, Role: "node"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nsrv.Close() })
		node, err := NewNode(nsrv, shards)
		if err != nil {
			t.Fatal(err)
		}
		h, err := shardrpc.NewHandler(node, testToken)
		if err != nil {
			t.Fatal(err)
		}
		return local, h
	}
	local, h := newNode()
	sw := &switchableHandler{h: h}
	nts := httptest.NewServer(sw)
	t.Cleanup(nts.Close)

	sv := clusterTestSurvey()
	if err := local.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 80
	for i := 0; i < n; i++ {
		if _, err := local.Append(randomResponse(sv, rng, i)); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := NewReplica(ReplicaConfig{
		Client:         shardrpc.NewClient(nts.URL, testToken, nil),
		Schedule:       core.DefaultSchedule(),
		RequesterToken: testToken,
		PollInterval:   time.Hour, // tests drive SyncOnce directly
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	rep.SyncOnce()

	rts := httptest.NewServer(rep)
	t.Cleanup(rts.Close)

	// The replica serves the same merged aggregates the node data
	// implies.
	compareAggregate(t, getAggregate(t, rts, sv.ID), referenceAggregate(t, local, sv))

	// Read-only: submits and publishes are refused.
	resp, body := doReq(t, http.MethodPost, rts.URL+"/api/v1/surveys/"+sv.ID+"/responses", randomResponse(sv, rng, 999), "")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica submit = %d: %s", resp.StatusCode, body)
	}
	resp, body = doReq(t, http.MethodPost, rts.URL+"/api/v1/surveys", sv, testToken)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica publish = %d: %s", resp.StatusCode, body)
	}

	// Staleness cursors: fully caught up after the sync.
	resp, body = doReq(t, http.MethodGet, rts.URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica admin = %d: %s", resp.StatusCode, body)
	}
	var info AdminStoreInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Role != "replica" || info.Replication == nil {
		t.Fatalf("replica admin info = %+v", info)
	}
	for _, sh := range info.Replication.Shards {
		if sh.LagRecords != 0 || sh.Epoch == 0 || sh.LastError != "" {
			t.Fatalf("shard %d staleness = %+v", sh.Shard, sh)
		}
	}

	// New appends show up after the next cycle; lag is visible before
	// it.
	for i := 0; i < 20; i++ {
		if _, err := local.Append(randomResponse(sv, rng, n+i)); err != nil {
			t.Fatal(err)
		}
	}
	rep.SyncOnce()
	compareAggregate(t, getAggregate(t, rts, sv.ID), referenceAggregate(t, local, sv))

	// "Restart" the node: same stores, new journal epoch behind the
	// same URL. The replica must detect the epoch change, resync from
	// scratch, and converge again.
	local2, h2 := newNode()
	sw.swap(h2)
	for i := 0; i < 10; i++ {
		if _, err := local2.Append(randomResponse(sv, rng, n+100+i)); err != nil {
			t.Fatal(err)
		}
	}
	rep.SyncOnce()
	compareAggregate(t, getAggregate(t, rts, sv.ID), referenceAggregate(t, local2, sv))
	ri := rep.replicationInfo()
	resets := 0
	for _, sh := range ri.Shards {
		resets += sh.Resets
	}
	if resets == 0 {
		t.Fatal("node restart did not trigger an epoch reset")
	}
}

// TestAdminAccumulatorClear: an operator can drop a poisoned
// accumulator without republishing; the next read rebuilds from the
// store.
func TestAdminAccumulatorClear(t *testing.T) {
	ps := &poisonStore{Mem: store.NewMem()}
	sv := ckptSurvey()
	if err := ps.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: ps, Schedule: core.DefaultSchedule(), RequesterToken: testToken})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	for i := 0; i < 6; i++ {
		submitOK(t, ts, ckptResponse(sv, i))
	}

	// Poison, then force a rebuild that traverses the bad record.
	ps.poisonSeq = 3
	srv2, err := New(Config{Store: ps, Schedule: core.DefaultSchedule(), RequesterToken: testToken})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)
	if resp, _ := doReq(t, http.MethodGet, aggregateURL(ts2, sv.ID), nil, testToken); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned read = %d, want 500", resp.StatusCode)
	}

	// Clearing an unknown survey is a 404; clearing without the token a
	// 401.
	if resp, _ := doReq(t, http.MethodPost, ts2.URL+"/api/v1/admin/accumulator/ghost/clear", nil, testToken); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("clear unknown = %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodPost, ts2.URL+"/api/v1/admin/accumulator/"+sv.ID+"/clear", nil, ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated clear = %d", resp.StatusCode)
	}

	// The store is "repaired" (poison off) but the wedged accumulator
	// still serves the sticky error — exactly the situation the clear
	// endpoint exists for.
	ps.poisonSeq = 0
	if resp, _ := doReq(t, http.MethodGet, aggregateURL(ts2, sv.ID), nil, testToken); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("sticky poisoned read = %d, want 500", resp.StatusCode)
	}
	resp, body := doReq(t, http.MethodPost, ts2.URL+"/api/v1/admin/accumulator/"+sv.ID+"/clear", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clear = %d: %s", resp.StatusCode, body)
	}
	var res AccumulatorClearResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Cleared {
		t.Fatalf("clear result = %+v", res)
	}
	compareAggregate(t, getAggregate(t, ts2, sv.ID), recomputeAggregate(t, ps, sv))
}

// TestAdminRepublishHistory: the admin surface lists every definition
// fingerprint with publish timestamps, surviving a durable-store
// reopen.
func TestAdminRepublishHistory(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenFile(dir + "/loki.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	sv := ckptSurvey()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	sv2 := ckptSurvey()
	sv2.Title = "Republished title"
	if err := st.ReplaceSurvey(sv2); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := store.OpenFile(dir + "/loki.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	srv, err := New(Config{Store: st2, Schedule: core.DefaultSchedule(), RequesterToken: testToken})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin = %d: %s", resp.StatusCode, body)
	}
	var info AdminStoreInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Surveys) != 1 {
		t.Fatalf("history for %d surveys, want 1", len(info.Surveys))
	}
	h := info.Surveys[0]
	if h.SurveyID != sv.ID || len(h.Versions) != 2 {
		t.Fatalf("history = %+v", h)
	}
	if h.Versions[0].Fingerprint != sv.Fingerprint() || h.Versions[1].Fingerprint != sv2.Fingerprint() {
		t.Fatalf("fingerprints = %+v", h.Versions)
	}
	for i, v := range h.Versions {
		if v.PublishedAt.IsZero() {
			t.Fatalf("version %d lost its publish timestamp across reopen", i)
		}
	}
}

// TestCheckpointGlobalShardIdentity: checkpoints are keyed by GLOBAL
// shard and validated against the global layout, so a node redeployed
// onto a different shard subset (or into a resized cluster) never
// restores another shard's fold state.
func TestCheckpointGlobalShardIdentity(t *testing.T) {
	sv := clusterTestSurvey()
	rng := rand.New(rand.NewSource(3))
	ckpt, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ckpt.Close() })

	// A "node" owning global shard 1 of a 2-shard cluster.
	stA := store.NewMem()
	routerA, err := shardset.NewLocal([]store.Store{stA}, shardset.LocalOptions{GlobalIDs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { routerA.Close() })
	if err := routerA.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := routerA.AppendShard(0, randomResponse(sv, rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	srvA, err := New(Config{
		Router: routerA, Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		Checkpoints: ckpt, CheckpointInterval: time.Hour, ClusterShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA)
	t.Cleanup(tsA.Close)
	getAggregate(t, tsA, sv.ID) // fold
	if err := srvA.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	srvA.Close()
	// The record is keyed by global shard 1, not local index 0.
	if _, ok := ckpt.GetShard(sv.ID, 0); ok {
		t.Fatal("checkpoint keyed by local shard index")
	}
	rec, ok := ckpt.GetShard(sv.ID, 1)
	if !ok || rec.NumShards() != 2 {
		t.Fatalf("global-shard record = %+v", rec)
	}

	// Same checkpoint dir, but the node now owns global shard 0 with a
	// different (smaller) store: the shard-1 state must not restore
	// onto shard 0.
	stB := store.NewMem()
	routerB, err := shardset.NewLocal([]store.Store{stB}, shardset.LocalOptions{GlobalIDs: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { routerB.Close() })
	if err := routerB.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ { // more records than shard 1 held
		if _, err := routerB.AppendShard(0, randomResponse(sv, rng, 100+i)); err != nil {
			t.Fatal(err)
		}
	}
	srvB, err := New(Config{
		Router: routerB, Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		Checkpoints: ckpt, CheckpointInterval: time.Hour, ClusterShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvB.Close() })
	tsB := httptest.NewServer(srvB)
	t.Cleanup(tsB.Close)
	got := getAggregate(t, tsB, sv.ID)
	if got.Choices[0].N != 40 {
		t.Fatalf("redeployed node folded %d responses, want a clean 40 (foreign checkpoint restored?)", got.Choices[0].N)
	}

	// And a cluster resize (same global shard, different total) also
	// refuses the restore.
	srvC, err := New(Config{
		Router: routerA, Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		Checkpoints: ckpt, CheckpointInterval: time.Hour, ClusterShards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvC.Close() })
	tsC := httptest.NewServer(srvC)
	t.Cleanup(tsC.Close)
	if got := getAggregate(t, tsC, sv.ID); got.Choices[0].N != 30 {
		t.Fatalf("resized cluster folded %d, want 30 from a clean rescan", got.Choices[0].N)
	}
}

// TestReplicaTruncationBootstrap: a replica that needs journal entries
// the node has truncated (retain bound) rebuilds the shard from paged
// store scans and converges — and keeps converging when the bound
// truncates past it again.
func TestReplicaTruncationBootstrap(t *testing.T) {
	const shards = 2
	stores := make([]store.Store, shards)
	for i := range stores {
		stores[i] = store.NewMem()
	}
	local, err := shardset.NewLocal(stores, shardset.LocalOptions{Journal: true, JournalRetain: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { local.Close() })
	nsrv, err := New(Config{Router: local, Schedule: core.DefaultSchedule(), RequesterToken: testToken, Role: "node"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nsrv.Close() })
	node, err := NewNode(nsrv, shards)
	if err != nil {
		t.Fatal(err)
	}
	h, err := shardrpc.NewHandler(node, testToken)
	if err != nil {
		t.Fatal(err)
	}
	nts := httptest.NewServer(h)
	t.Cleanup(nts.Close)

	sv := clusterTestSurvey()
	if err := local.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	const n = 60 // far beyond the journal's 5 retained entries
	for i := 0; i < n; i++ {
		if _, err := local.Append(randomResponse(sv, rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := local.JournalStats()[0]; st.Base == 0 {
		t.Fatalf("retain bound never truncated: %+v", st)
	}

	rep, err := NewReplica(ReplicaConfig{
		Client:         shardrpc.NewClient(nts.URL, testToken, nil),
		Schedule:       core.DefaultSchedule(),
		RequesterToken: testToken,
		PollInterval:   time.Hour, // tests drive SyncOnce directly
		TailPage:       7,         // force paging through both paths
		FollowerID:     "bootstrap-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	rep.SyncOnce()
	rts := httptest.NewServer(rep)
	t.Cleanup(rts.Close)

	compareAggregate(t, getAggregate(t, rts, sv.ID), referenceAggregate(t, local, sv))
	ri := rep.replicationInfo()
	boots := 0
	for _, sh := range ri.Shards {
		boots += sh.Bootstraps
		if sh.LagRecords != 0 || sh.LastError != "" {
			t.Fatalf("shard %d staleness after bootstrap = %+v", sh.Shard, sh)
		}
	}
	if boots == 0 {
		t.Fatal("truncated journal never forced a bootstrap")
	}

	// Another burst past the retain bound: the replica (now registered,
	// but outrun by the bound) must bootstrap again and still converge.
	for i := 0; i < 30; i++ {
		if _, err := local.Append(randomResponse(sv, rng, n+i)); err != nil {
			t.Fatal(err)
		}
	}
	rep.SyncOnce()
	compareAggregate(t, getAggregate(t, rts, sv.ID), referenceAggregate(t, local, sv))

	// A steady trickle within the bound flows through plain tailing (no
	// further bootstraps).
	rep.SyncOnce() // ack the current end first
	before := 0
	for _, sh := range rep.replicationInfo().Shards {
		before += sh.Bootstraps
	}
	for i := 0; i < 3; i++ {
		if _, err := local.Append(randomResponse(sv, rng, 500+i)); err != nil {
			t.Fatal(err)
		}
		rep.SyncOnce()
	}
	compareAggregate(t, getAggregate(t, rts, sv.ID), referenceAggregate(t, local, sv))
	after := 0
	for _, sh := range rep.replicationInfo().Shards {
		after += sh.Bootstraps
	}
	if after != before {
		t.Fatalf("in-bound tailing still bootstrapped (%d -> %d)", before, after)
	}
}
