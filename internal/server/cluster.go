// Cluster roles: the glue that turns the one Server implementation into
// a node (owns a shard subset, serves shardrpc), a frontend (routes
// submits, merges node partials — no types here, just a Server over a
// shardrpc.Remote router), and a read replica (tails a node's append
// journal and serves read-only traffic with a staleness cursor).
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"loki/internal/budget"
	"loki/internal/core"
	"loki/internal/placement"
	"loki/internal/shardrpc"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// ---------------------------------------------------------------------------
// Node

// Node adapts a Server whose router is a journaling shardset.Local into
// the shardrpc.Backend a cluster frontend and its replicas talk to. It
// translates the cluster's global shard indices to the node's local
// subset and keeps the node's live partials hot on routed appends.
type Node struct {
	srv   *Server
	local *shardset.Local
	total int
	g2l   map[int]int

	// budget, when set via HostBudget, is the node's hosted budget shard
	// subset; it makes the node a shardrpc.BudgetBackend.
	budget *budget.Set

	// fences is the node's view of the placement manifest for its owned
	// shards, keyed by global index: the epoch every incoming write's
	// stamp is checked against, and the demotion bit that fences a shard
	// wholesale once the manifest names someone else primary. Empty
	// until ApplyManifest — a manifest-less node fences nothing, the
	// pre-manifest behavior.
	fenceMu sync.RWMutex
	fences  map[int]shardFence
}

// shardFence is one owned shard's fencing state from the manifest.
type shardFence struct {
	epoch   uint64
	demoted bool
}

// NewNode wraps a Server for shardrpc serving. The server's router must
// be a shardset.Local (a node owns real storage); totalShards is the
// cluster's global shard count.
func NewNode(srv *Server, totalShards int) (*Node, error) {
	local, ok := srv.Router().(*shardset.Local)
	if !ok {
		return nil, errors.New("server: a cluster node needs a local shard router")
	}
	if totalShards < local.Shards() {
		return nil, fmt.Errorf("server: node owns %d shards of a %d-shard cluster", local.Shards(), totalShards)
	}
	n := &Node{srv: srv, local: local, total: totalShards, g2l: make(map[int]int, local.Shards())}
	for i := 0; i < local.Shards(); i++ {
		n.g2l[local.GlobalID(i)] = i
	}
	return n, nil
}

func (n *Node) localShard(global int) (int, error) {
	i, ok := n.g2l[global]
	if !ok {
		return 0, &shardrpc.ErrNotOwned{Shard: global}
	}
	return i, nil
}

// Meta implements shardrpc.Backend.
func (n *Node) Meta() shardrpc.Meta {
	owned := make([]int, n.local.Shards())
	for i := range owned {
		owned[i] = n.local.GlobalID(i)
	}
	return shardrpc.Meta{TotalShards: n.total, OwnedShards: owned}
}

// AppendShardBatch implements shardrpc.Backend: durably append a
// routed batch (one fsync with a batch-capable store), then
// best-effort fold each touched survey's shard partial so the next
// partial fetch pays nothing.
func (n *Node) AppendShardBatch(global int, rs []survey.Response) ([]int, error) {
	i, err := n.localShard(global)
	if err != nil {
		return nil, err
	}
	counts, err := n.local.AppendShardBatch(i, rs)
	for _, id := range uniqueSurveyIDs(rs[:len(counts)]) {
		n.srv.advanceShard(id, i)
	}
	return counts, err
}

// uniqueSurveyIDs returns the distinct survey IDs of a batch, in first-
// appearance order (batches are usually one survey; the map only pays
// off when they are not).
func uniqueSurveyIDs(rs []survey.Response) []string {
	if len(rs) == 0 {
		return nil
	}
	out := []string{rs[0].SurveyID}
	if len(rs) == 1 {
		return out
	}
	seen := map[string]bool{rs[0].SurveyID: true}
	for i := 1; i < len(rs); i++ {
		if !seen[rs[i].SurveyID] {
			seen[rs[i].SurveyID] = true
			out = append(out, rs[i].SurveyID)
		}
	}
	return out
}

// ScanShard implements shardrpc.Backend.
func (n *Node) ScanShard(global int, surveyID string, fromSeq uint64, fn func(seq uint64, r *survey.Response) error) error {
	i, err := n.localShard(global)
	if err != nil {
		return err
	}
	return n.local.ScanShard(i, surveyID, fromSeq, fn)
}

// CountShard implements shardrpc.Backend.
func (n *Node) CountShard(global int, surveyID string) int {
	i, err := n.localShard(global)
	if err != nil {
		return 0
	}
	return n.local.CountShard(i, surveyID)
}

// PartialState implements shardrpc.Backend: the node's shard partial,
// caught up and answered conditionally against the caller's cursor
// (not-modified / delta / full — see shardrpc.Partial), re-addressed
// under its global shard index.
func (n *Node) PartialState(global int, surveyID string, have uint64) (*shardrpc.Partial, error) {
	i, err := n.localShard(global)
	if err != nil {
		return nil, err
	}
	p, err := n.srv.PartialState(i, surveyID, have)
	if err != nil {
		return nil, err
	}
	p.Shard = global
	return p, nil
}

// Tail implements shardrpc.Backend.
func (n *Node) Tail(global int, epoch, offset uint64, max int, follower string) (*shardset.TailBatch, error) {
	i, err := n.localShard(global)
	if err != nil {
		return nil, err
	}
	return n.local.Tail(i, epoch, offset, max, follower)
}

// PutSurvey implements shardrpc.Backend.
func (n *Node) PutSurvey(sv *survey.Survey) error {
	if err := sv.Validate(); err != nil {
		return err
	}
	return n.local.PutSurvey(sv)
}

// ReplaceSurvey implements shardrpc.Backend: the republish broadcast.
// Fold state built under the old definition is invalidated exactly like
// a republish through the public API.
func (n *Node) ReplaceSurvey(sv *survey.Survey) error {
	if err := sv.Validate(); err != nil {
		return err
	}
	if err := n.local.ReplaceSurvey(sv); err != nil {
		return err
	}
	n.srv.invalidateLive(sv.ID)
	return nil
}

// Survey implements shardrpc.Backend.
func (n *Node) Survey(id string) (*survey.Survey, error) { return n.local.Survey(id) }

// Surveys implements shardrpc.Backend.
func (n *Node) Surveys() ([]*survey.Survey, error) { return n.local.Surveys() }

var _ shardrpc.Backend = (*Node)(nil)

// ApplyManifest updates the node's fencing state from a placement
// manifest: for every owned shard it records the manifest epoch, and —
// when the manifest names another node primary — demotes the shard,
// fencing all writes to it. Demotion is the clean half of failover for
// a returned old primary: its data stays readable, its writes bounce
// with 412, and the operator restarts it as a replica of the new
// primary to rejoin (the promoted replica serves Tail, so re-bootstrap
// is the ordinary follower path). self is this node's base URL as it
// appears in the manifest.
func (n *Node) ApplyManifest(m *placement.Manifest, self string) {
	fences := make(map[int]shardFence, n.local.Shards())
	hs := make([]ShardHealth, 0, n.local.Shards())
	for i := 0; i < n.local.Shards(); i++ {
		g := n.local.GlobalID(i)
		sp := m.Placement(g)
		if sp == nil {
			continue
		}
		f := shardFence{epoch: sp.Epoch, demoted: sp.Primary != self}
		fences[g] = f
		role := "primary"
		if f.demoted {
			role = "fenced"
		}
		hs = append(hs, ShardHealth{Shard: g, Role: role, Epoch: sp.Epoch})
	}
	n.fenceMu.Lock()
	for g, f := range fences {
		if f.demoted && !n.fences[g].demoted {
			n.srv.logf("shard %d demoted by manifest v%d (primary now %s): writes fenced, rejoin as a replica",
				g, m.Version, m.Placement(g).Primary)
		}
	}
	n.fences = fences
	n.fenceMu.Unlock()
	n.srv.setShardHealth(hs)
}

// Demoted reports whether the manifest has fenced an owned shard's
// writes away from this node.
func (n *Node) Demoted(global int) bool {
	n.fenceMu.RLock()
	defer n.fenceMu.RUnlock()
	return n.fences[global].demoted
}

// CheckFence implements shardrpc.FencedBackend: the epoch gate every
// submit passes before admission, charging, or appending. A demoted
// shard fences everything (stamped or not); a primary shard fences
// stamps older than the manifest the node has applied; an unstamped
// write to a primary shard passes (legacy positional senders). Stamps
// NEWER than the node's manifest pass too — the sender read a manifest
// the node has not seen yet, under which the node is still primary (or
// the frontend would not have routed here).
func (n *Node) CheckFence(global int, epoch uint64) error {
	if _, err := n.localShard(global); err != nil {
		return err
	}
	n.fenceMu.RLock()
	f, ok := n.fences[global]
	n.fenceMu.RUnlock()
	if !ok {
		return nil
	}
	if f.demoted {
		return &shardrpc.FencedError{Shard: global, Epoch: epoch, Current: f.epoch}
	}
	if epoch != 0 && epoch < f.epoch {
		return &shardrpc.FencedError{Shard: global, Epoch: epoch, Current: f.epoch}
	}
	return nil
}

var _ shardrpc.FencedBackend = (*Node)(nil)

// ---------------------------------------------------------------------------
// Node budget hosting

// HostBudget attaches a budget shard set to the node: frontends debit
// worker accounts through it before forwarding submits. A Node always
// satisfies shardrpc.BudgetBackend (so the handler always mounts the
// budget routes); without a hosted set every budget call errors. Call
// it before serving — the field is not synchronized against traffic.
func (n *Node) HostBudget(set *budget.Set) { n.budget = set }

// budgetSet guards the budget surface of a node that hosts none.
func (n *Node) budgetSet() (*budget.Set, error) {
	if n.budget == nil {
		return nil, errors.New("server: node hosts no budget shards")
	}
	return n.budget, nil
}

// BudgetCharge implements shardrpc.BudgetBackend.
func (n *Node) BudgetCharge(shard int, charges []budget.Charge) ([]budget.Outcome, error) {
	set, err := n.budgetSet()
	if err != nil {
		return nil, err
	}
	outs, err := set.ChargeShard(shard, charges)
	if errors.Is(err, budget.ErrNotHosted) {
		return nil, &shardrpc.ErrNotOwned{Shard: shard}
	}
	return outs, err
}

// BudgetRefund implements shardrpc.BudgetBackend.
func (n *Node) BudgetRefund(shard int, c budget.Charge) error {
	set, err := n.budgetSet()
	if err != nil {
		return err
	}
	err = set.RefundShard(shard, c)
	if errors.Is(err, budget.ErrNotHosted) {
		return &shardrpc.ErrNotOwned{Shard: shard}
	}
	return err
}

// BudgetPeek implements shardrpc.BudgetBackend.
func (n *Node) BudgetPeek(shard int, workerID string) (budget.Account, error) {
	set, err := n.budgetSet()
	if err != nil {
		return budget.Account{}, err
	}
	a, err := set.PeekShard(shard, workerID)
	if errors.Is(err, budget.ErrNotHosted) {
		return budget.Account{}, &shardrpc.ErrNotOwned{Shard: shard}
	}
	return a, err
}

// BudgetStats implements shardrpc.BudgetBackend.
func (n *Node) BudgetStats() ([]budget.ShardStats, error) {
	if n.budget == nil {
		return nil, nil
	}
	return n.budget.Stats()
}

var _ shardrpc.BudgetBackend = (*Node)(nil)

// AppendShardBatchCharged implements shardrpc.ChargedBackend: decide a
// batch's piggybacked budget debits and append the admitted responses
// in one call — the node half of the frontend's fused submit RPC.
//
// Ordering is charge-then-append, the same privacy-safe direction the
// frontend's two-RPC path uses: a crash between the two over-counts
// spend (a refund that never happened), never under-counts it. Entries
// whose append fails after an accepted charge are refunded before the
// reply; every HTTP-level error this method returns happens before any
// state changes, so a transport error leaves nothing half-committed.
func (n *Node) AppendShardBatchCharged(global int, rs []survey.Response, charges []budget.Charge) (*shardrpc.SubmitResult, error) {
	if len(charges) != len(rs) {
		return nil, fmt.Errorf("server: %d charges for %d responses", len(charges), len(rs))
	}
	i, err := n.localShard(global)
	if err != nil {
		return nil, err
	}
	set, err := n.budgetSet()
	if err != nil {
		return nil, err
	}
	// Pre-flight every charge's routing before touching any ledger: a
	// batch spanning hosted and unhosted budget shards must fail whole
	// (the sender's colocation test is wrong), not half-commit.
	total := set.Shards()
	groups := make(map[int][]int)
	batches := make(map[int][]budget.Charge)
	for k := range charges {
		if charges[k].WorkerID == "" {
			continue
		}
		b := budget.Route(charges[k].WorkerID, total)
		if !set.Hosts(b) {
			return nil, &shardrpc.ErrNotOwned{Shard: b}
		}
		groups[b] = append(groups[b], k)
		batches[b] = append(batches[b], charges[k])
	}
	res := &shardrpc.SubmitResult{
		Stored:   make([]int, len(rs)),
		Outcomes: make([]budget.Outcome, len(rs)),
	}
	// Charge every shard group in one ledger commit: a submit batch
	// scatters across most of the hosted budget shards, and the shared
	// journal turns that scatter into a single group-committed fsync
	// instead of one per shard.
	if len(groups) > 0 {
		outs, err := set.ChargeShards(batches)
		if err != nil {
			res.ChargeErrs = make([]string, len(rs))
			for _, idx := range groups {
				for _, k := range idx {
					res.ChargeErrs[k] = err.Error()
				}
			}
		} else {
			for b, idx := range groups {
				for j, k := range idx {
					res.Outcomes[k] = outs[b][j]
				}
			}
		}
	}
	// Admit everything the ledger did not block: uncharged entries,
	// accepted charges, and log-mode (non-enforce) entries whose charge
	// errored — those fail open, exactly like the two-RPC path.
	admitted := make([]int, 0, len(rs))
	for k := range rs {
		switch {
		case charges[k].WorkerID == "":
		case res.ChargeErrs != nil && res.ChargeErrs[k] != "":
			if charges[k].Enforce {
				continue
			}
		case res.Outcomes[k].Rejected:
			continue
		}
		admitted = append(admitted, k)
	}
	toAppend := make([]survey.Response, len(admitted))
	for j, k := range admitted {
		toAppend[j] = rs[k]
	}
	var counts []int
	var aerr error
	if len(toAppend) > 0 {
		counts, aerr = n.local.AppendShardBatch(i, toAppend)
	}
	for j, k := range admitted {
		if j < len(counts) {
			res.Stored[k] = counts[j]
			res.Appended++
			continue
		}
		// Not durable: compensate the accepted charge so the ledger
		// never counts spend for a response the store refused.
		if res.AppendErrs == nil {
			res.AppendErrs = make([]string, len(rs))
		}
		msg := "append did not report this record durable"
		if aerr != nil {
			msg = aerr.Error()
		}
		res.AppendErrs[k] = msg
		if charges[k].WorkerID != "" && (res.ChargeErrs == nil || res.ChargeErrs[k] == "") {
			if rerr := set.RefundShard(budget.Route(charges[k].WorkerID, total), charges[k]); rerr != nil {
				n.srv.logf("budget refund for worker %q after failed charged append: %v", charges[k].WorkerID, rerr)
			}
			res.Outcomes[k] = budget.Outcome{}
		}
	}
	for _, id := range uniqueSurveyIDs(toAppend[:len(counts)]) {
		n.srv.advanceShard(id, i)
	}
	return res, nil
}

var _ shardrpc.ChargedBackend = (*Node)(nil)

// AppendShardBatchAdmitted implements shardrpc.AdmittedBackend: run a
// routed batch through the node's admission gate and per-requester
// rate limit, then hand the admitted records to the plain or charged
// append path. With both controls off (the default) the reply is
// exactly what AppendShardBatch / AppendShardBatchCharged produce —
// the wire does not change until an operator turns a knob on.
//
// A shed batch fails whole with OverloadedError before any state
// changes. Throttled records answer per entry: the reply is then
// request-aligned throughout (Throttled, Stored, AppendErrs), because
// a refused record mid-batch breaks the durable-prefix contract.
func (n *Node) AppendShardBatchAdmitted(global int, rs []survey.Response, charges []budget.Charge) (*shardrpc.SubmitResult, error) {
	if len(charges) > 0 && len(charges) != len(rs) {
		return nil, fmt.Errorf("server: %d charges for %d responses", len(charges), len(rs))
	}
	if a := n.srv.adm; a != nil {
		if !a.acquire(context.Background()) {
			return nil, &shardrpc.OverloadedError{RetryAfterSeconds: OverloadRetryAfterSeconds}
		}
		defer a.release()
	}
	var throttled []bool
	retryAfter := 0
	anyThrottled := false
	if l := n.srv.limiter; l != nil {
		throttled = make([]bool, len(rs))
		for k := range rs {
			if ra, ok := l.allow(rs[k].WorkerID); !ok {
				throttled[k] = true
				anyThrottled = true
				if ra > retryAfter {
					retryAfter = ra
				}
			}
		}
	}
	if !anyThrottled {
		if len(charges) > 0 {
			return n.AppendShardBatchCharged(global, rs, charges)
		}
		counts, err := n.AppendShardBatch(global, rs)
		if err != nil {
			return nil, &shardrpc.PartialAppendError{Appended: len(counts), Err: err}
		}
		return &shardrpc.SubmitResult{Appended: len(counts), Stored: counts}, nil
	}
	// Some records were throttled: append only the admitted subset and
	// map its results back onto request positions. Ownership is checked
	// up front so a misrouted batch still answers 421 whole, not an
	// in-band error sprinkled over admitted entries.
	if _, err := n.localShard(global); err != nil {
		return nil, err
	}
	idx := make([]int, 0, len(rs))
	sub := make([]survey.Response, 0, len(rs))
	var subCharges []budget.Charge
	for k := range rs {
		if throttled[k] {
			continue
		}
		idx = append(idx, k)
		sub = append(sub, rs[k])
		if len(charges) > 0 {
			subCharges = append(subCharges, charges[k])
		}
	}
	res := &shardrpc.SubmitResult{
		Stored:            make([]int, len(rs)),
		Throttled:         throttled,
		RetryAfterSeconds: retryAfter,
	}
	if len(sub) == 0 {
		return res, nil
	}
	if len(subCharges) > 0 {
		sr, err := n.AppendShardBatchCharged(global, sub, subCharges)
		if err != nil {
			// Charged-path errors happen before any state changes, so
			// failing the whole call (throttle verdicts included) is
			// safe: nothing was appended or charged.
			return nil, err
		}
		res.Appended = sr.Appended
		res.Outcomes = make([]budget.Outcome, len(rs))
		for j, k := range idx {
			res.Stored[k] = sr.Stored[j]
			res.Outcomes[k] = sr.Outcomes[j]
			if j < len(sr.ChargeErrs) && sr.ChargeErrs[j] != "" {
				if res.ChargeErrs == nil {
					res.ChargeErrs = make([]string, len(rs))
				}
				res.ChargeErrs[k] = sr.ChargeErrs[j]
			}
			if j < len(sr.AppendErrs) && sr.AppendErrs[j] != "" {
				if res.AppendErrs == nil {
					res.AppendErrs = make([]string, len(rs))
				}
				res.AppendErrs[k] = sr.AppendErrs[j]
			}
		}
		return res, nil
	}
	counts, err := n.AppendShardBatch(global, sub)
	for j, k := range idx {
		if j < len(counts) {
			res.Stored[k] = counts[j]
			res.Appended++
			continue
		}
		if err != nil {
			if res.AppendErrs == nil {
				res.AppendErrs = make([]string, len(rs))
			}
			res.AppendErrs[k] = err.Error()
		}
	}
	return res, nil
}

var _ shardrpc.AdmittedBackend = (*Node)(nil)

// advanceShard best-effort folds one shard's partial after a routed
// append (the shardrpc twin of the public submit handler's warm-up).
func (s *Server) advanceShard(surveyID string, shard int) {
	sv, err := s.router.Survey(surveyID)
	if err != nil {
		return
	}
	ls, err := s.liveFor(sv)
	if err != nil {
		return
	}
	if err := ls.parts[shard].advance(s.router); err != nil {
		s.logf("live aggregate catch-up for %q shard %d: %v", surveyID, shard, err)
	}
}

// ---------------------------------------------------------------------------
// Replica

// resettableStore is a store.Store whose contents can be atomically
// replaced with an empty store — the epoch-reset path of a replica: a
// followed node restarted, its journal order changed, and every applied
// record must go.
type resettableStore struct {
	mu    sync.RWMutex
	inner *store.Mem
}

func newResettableStore() *resettableStore { return &resettableStore{inner: store.NewMem()} }

func (r *resettableStore) get() *store.Mem {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.inner
}

// Reset discards everything. In-flight reads against the old store
// finish against its (immutable from here on) contents.
func (r *resettableStore) Reset() {
	r.mu.Lock()
	r.inner = store.NewMem()
	r.mu.Unlock()
}

func (r *resettableStore) PutSurvey(s *survey.Survey) error     { return r.get().PutSurvey(s) }
func (r *resettableStore) ReplaceSurvey(s *survey.Survey) error { return r.get().ReplaceSurvey(s) }
func (r *resettableStore) Survey(id string) (*survey.Survey, error) {
	return r.get().Survey(id)
}
func (r *resettableStore) Surveys() ([]*survey.Survey, error) { return r.get().Surveys() }
func (r *resettableStore) AppendResponse(s *survey.Response) error {
	return r.get().AppendResponse(s)
}
func (r *resettableStore) ScanResponses(surveyID string, fromSeq uint64, fn func(seq uint64, resp *survey.Response) error) error {
	return r.get().ScanResponses(surveyID, fromSeq, fn)
}
func (r *resettableStore) Responses(surveyID string) ([]survey.Response, error) {
	return r.get().Responses(surveyID)
}
func (r *resettableStore) ResponseCount(surveyID string) int { return r.get().ResponseCount(surveyID) }
func (r *resettableStore) Close() error                      { return r.get().Close() }

var _ store.Store = (*resettableStore)(nil)

// ReplicaConfig configures a read replica.
type ReplicaConfig struct {
	// Client speaks shardrpc to the followed node. Required.
	Client *shardrpc.Client
	// Schedule and RequesterToken mirror the primary's Server config.
	Schedule       core.Schedule
	RequesterToken string
	// Logger receives replication logs; nil disables logging.
	Logger *log.Logger
	// PollInterval is how often the replica polls the node's journal
	// tails (default 500ms). Staleness is bounded by it plus one
	// round-trip.
	PollInterval time.Duration
	// TailPage bounds one tail fetch (default 1024 records).
	TailPage int
	// FollowerID identifies this replica to the node's journal
	// truncation accounting: the node retains journal entries until
	// every registered follower acks past them. Defaults to a
	// process-scoped id; give long-lived replicas a stable one so a
	// replica restart re-registers as the same follower instead of
	// leaking a stale ack.
	FollowerID string
	// JournalRetain bounds the replica's own per-shard journal (the one
	// it serves to downstream followers and to the demoted primary after
	// a promotion). Default 65536 entries.
	JournalRetain int
	// ManifestPath, when set with SelfURL, lets promotion rewrite the
	// shared placement manifest: the shard's epoch bumps, this replica
	// becomes the primary, and every watcher re-routes. Without it,
	// promotion only flips the local shard writable (tests, ad-hoc ops).
	ManifestPath string
	// SelfURL is this replica's base URL as the manifest should name it.
	SelfURL string
	// PromoteAfter, when positive, is the failover lease: a shard whose
	// tail has been failing with transport errors (node unreachable) for
	// longer than this is promoted automatically, exactly as if the
	// operator had posted the promote signal. Zero (the default) leaves
	// promotion to the operator.
	PromoteAfter time.Duration
}

// Replica is a read-only follower of one node: it tails every shard the
// node owns via WAL shipping, applies the records to local in-memory
// stores, and serves the read half of the public API — scans and merged
// aggregates included — from its own per-shard partials. Submits and
// publishes are refused with 403. The admin surface reports per-shard
// staleness cursors (journal epoch, applied offset, lag).
type Replica struct {
	cfg    ReplicaConfig
	srv    *Server
	local  *shardset.Local
	stores []*resettableStore
	total  int
	g2l    map[int]int

	mu    sync.Mutex
	state []ReplicaShardInfo
	// promoted marks local shards this replica now owns the writes for
	// (see Promote); fences holds each promoted shard's manifest epoch
	// (0 = no manifest, accept any stamp). failSince tracks when each
	// shard's tail started failing with transport errors, for the
	// PromoteAfter lease.
	promoted  []bool
	fences    []uint64
	failSince []time.Time

	// syncMu serializes whole replication cycles: an overlapping cycle
	// would read the same journal offset twice and double-apply.
	syncMu sync.Mutex

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewReplica connects to the followed node, mirrors its shard layout
// with empty local stores, and starts the tail loop.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Client == nil {
		return nil, errors.New("server: replica needs a shardrpc client")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.TailPage <= 0 {
		cfg.TailPage = 1024
	}
	if cfg.FollowerID == "" {
		cfg.FollowerID = fmt.Sprintf("replica-%d", os.Getpid())
	}
	if cfg.JournalRetain <= 0 {
		cfg.JournalRetain = 65536
	}
	meta, err := cfg.Client.Meta()
	if err != nil {
		return nil, fmt.Errorf("server: replica meta fetch: %w", err)
	}
	if len(meta.OwnedShards) == 0 {
		return nil, errors.New("server: followed node owns no shards")
	}
	r := &Replica{
		cfg:       cfg,
		stores:    make([]*resettableStore, len(meta.OwnedShards)),
		total:     meta.TotalShards,
		g2l:       make(map[int]int, len(meta.OwnedShards)),
		state:     make([]ReplicaShardInfo, len(meta.OwnedShards)),
		promoted:  make([]bool, len(meta.OwnedShards)),
		fences:    make([]uint64, len(meta.OwnedShards)),
		failSince: make([]time.Time, len(meta.OwnedShards)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	stores := make([]store.Store, len(meta.OwnedShards))
	for i := range r.stores {
		r.stores[i] = newResettableStore()
		stores[i] = r.stores[i]
		r.state[i] = ReplicaShardInfo{Shard: meta.OwnedShards[i]}
		r.g2l[meta.OwnedShards[i]] = i
	}
	// The replica journals its own applied stream: downstream followers
	// (and, after a promotion, the demoted old primary rejoining as a
	// replica) tail it exactly like they would a node's.
	local, err := shardset.NewLocal(stores, shardset.LocalOptions{
		GlobalIDs:     meta.OwnedShards,
		Journal:       true,
		JournalRetain: cfg.JournalRetain,
	})
	if err != nil {
		return nil, err
	}
	r.local = local
	srv, err := New(Config{
		Router:          local,
		Schedule:        cfg.Schedule,
		RequesterToken:  cfg.RequesterToken,
		Logger:          cfg.Logger,
		Role:            "replica",
		ReadOnly:        true,
		ReplicationInfo: r.replicationInfo,
		Promote:         r.Promote,
	})
	if err != nil {
		return nil, err
	}
	r.srv = srv
	go r.loop()
	return r, nil
}

// ServeHTTP implements http.Handler: the read-only public API.
func (r *Replica) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.srv.ServeHTTP(w, req) }

// Server exposes the underlying read-only server (tests poke at it).
func (r *Replica) Server() *Server { return r.srv }

// Close stops the tail loop and releases the local stores.
func (r *Replica) Close() error {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	if err := r.srv.Close(); err != nil {
		return err
	}
	return r.local.Close()
}

// replicationInfo snapshots the staleness cursors for the admin
// surface. Roles are derived at snapshot time: a shard this replica has
// been promoted on reports "primary", the rest "replica".
func (r *Replica) replicationInfo() *ReplicationInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := &ReplicationInfo{Source: r.cfg.Client.BaseURL()}
	info.Shards = append([]ReplicaShardInfo(nil), r.state...)
	for i := range info.Shards {
		if r.promoted[i] {
			info.Shards[i].Role = "primary"
			info.Shards[i].Epoch = r.fences[i]
			info.Shards[i].LagRecords = 0
			info.Shards[i].LastError = ""
		} else {
			info.Shards[i].Role = "replica"
		}
	}
	return info
}

// loop polls every followed shard on the interval until Close.
func (r *Replica) loop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.PollInterval)
	defer t.Stop()
	// Sync immediately on start so tests (and operators) see data
	// without waiting out the first tick.
	r.SyncOnce()
	for {
		select {
		case <-t.C:
			r.SyncOnce()
		case <-r.stop:
			return
		}
	}
}

// SyncOnce runs one replication cycle: refresh survey definitions, then
// drain every shard's journal tail. Exported so tests can drive the
// replica deterministically.
func (r *Replica) SyncOnce() {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	surveys, err := r.cfg.Client.Surveys()
	if err != nil {
		// Keep going: an unreachable node must still drive the per-shard
		// tail cycle, because that is where transport failures feed the
		// failover lease — returning here would make a dead node immune
		// to automatic promotion.
		r.logf("replica survey sync: %v", err)
	} else {
		r.syncSurveys(surveys)
	}
	for i := range r.stores {
		r.syncShard(i)
	}
}

// syncSurveys replicates definitions into the local stores, handling
// republishes (fingerprint change) like the public API would.
func (r *Replica) syncSurveys(surveys []*survey.Survey) {
	for _, sv := range surveys {
		cur, err := r.local.Survey(sv.ID)
		switch {
		case err == nil && cur.Fingerprint() == sv.Fingerprint():
			continue
		case err == nil:
			if err := r.local.ReplaceSurvey(sv); err != nil {
				r.logf("replica republish %q: %v", sv.ID, err)
				continue
			}
			r.srv.invalidateLive(sv.ID)
		default:
			if err := r.local.PutSurvey(sv); err != nil && !errors.Is(err, store.ErrExists) {
				r.logf("replica publish %q: %v", sv.ID, err)
			}
		}
	}
}

// syncShard drains one shard's journal tail, resyncing from scratch on
// an epoch change (the node restarted; its journal order is new). A
// promoted shard is skipped: this replica is its primary now, and the
// old stream has nothing more to say. Transport errors (the node is
// unreachable) start the failover lease clock; once a shard's tail has
// been failing that way for PromoteAfter, the shard self-promotes.
func (r *Replica) syncShard(i int) {
	if r.isPromoted(i) {
		return
	}
	r.mu.Lock()
	st := r.state[i] // copy; written back under the lock below
	r.mu.Unlock()
	global := st.Shard
	for {
		batch, err := r.cfg.Client.Tail(global, st.Epoch, st.AppliedOffset, r.cfg.TailPage, r.cfg.FollowerID)
		if err != nil {
			st.LastError = err.Error()
			if r.leaseExpired(i, err) {
				if _, perr := r.promoteLocked(i); perr != nil {
					r.logf("replica shard %d: lease promotion: %v", global, perr)
				} else {
					// promoteLocked owns the shard's state from here; the
					// stale tail cursor must not be written back over it.
					return
				}
			}
			break
		}
		r.clearFail(i)
		if batch.Epoch != st.Epoch {
			// Epoch reset: discard the local copy of this shard and
			// resync from offset zero. Live partials go too — their
			// cursors index the old stream.
			r.logf("replica shard %d: journal epoch %d -> %d, resyncing", global, st.Epoch, batch.Epoch)
			r.stores[i].Reset()
			r.resetOwnJournal(i)
			r.srv.ResetLive()
			if st.Epoch != 0 {
				st.Resets++
			}
			st.Epoch = batch.Epoch
			st.AppliedOffset = 0
			st.SourceEnd = batch.End
			// The reset wiped this shard's replicated definitions;
			// restore them before applying records.
			if svs, err := r.cfg.Client.Surveys(); err == nil {
				r.syncSurveys(svs)
			}
			continue
		}
		if batch.Truncated {
			// The journal no longer holds our resume offset — we
			// registered after truncation, or fell behind a retain
			// bound. The records themselves are still in the node's
			// store: rebuild this shard from paged scans, then resume
			// tailing at the truncation base. Journal entries the scans
			// already covered carry seqs at or below the rebuilt counts
			// and are skipped by applyBatch.
			r.logf("replica shard %d: journal truncated below offset %d, rebuilding from store scans (resume at %d)",
				global, st.AppliedOffset, batch.NextOffset)
			r.stores[i].Reset()
			r.resetOwnJournal(i)
			r.srv.ResetLive()
			// Unlike the epoch path above — which resumes at offset 0 and
			// self-heals a failed definition sync record by record — this
			// path jumps the offset past the truncated prefix, so
			// bootstrapping from an incomplete survey list would silently
			// drop that prefix forever. A failed fetch must leave the
			// offset untouched and retry the whole bootstrap next poll.
			svs, err := r.cfg.Client.Surveys()
			if err != nil {
				st.LastError = err.Error()
				break
			}
			r.syncSurveys(svs)
			if err := r.bootstrapShard(i, global); err != nil {
				st.LastError = err.Error()
				break
			}
			st.Bootstraps++
			st.AppliedOffset = batch.NextOffset
			st.SourceEnd = batch.End
			continue
		}
		if err := r.applyBatch(i, batch); err != nil {
			st.LastError = err.Error()
			break
		}
		st.AppliedOffset = batch.NextOffset
		st.SourceEnd = batch.End
		st.LastError = ""
		if batch.NextOffset >= batch.End {
			break
		}
	}
	st.LagRecords = 0
	if st.SourceEnd > st.AppliedOffset {
		st.LagRecords = st.SourceEnd - st.AppliedOffset
	}
	st.LastSyncAt = time.Now()
	r.mu.Lock()
	r.state[i] = st
	r.mu.Unlock()
}

// bootstrapScanAttempts bounds the per-page retry of a bootstrap scan
// whose transport flaked: a rebuild is expensive to restart from
// scratch (the whole shard resets again next cycle), so a blip
// mid-rebuild gets a few jittered-backoff retries before the cycle
// gives up. Non-transport errors (the node answered, and said no)
// fail immediately — retrying a 4xx is noise.
const bootstrapScanAttempts = 4

// bootstrapScan fetches one scan page with bounded retry: attempts
// spaced 50ms, 100ms, 200ms apart, each with up to its own length of
// random jitter so a fleet of recovering replicas does not stampede a
// node that just came back.
func (r *Replica) bootstrapScan(global int, surveyID string, cursor uint64) (*shardrpc.ScanBatch, error) {
	var lastErr error
	for attempt := 0; attempt < bootstrapScanAttempts; attempt++ {
		if attempt > 0 {
			d := 50 * time.Millisecond << (attempt - 1)
			d += time.Duration(rand.Int63n(int64(d) + 1))
			select {
			case <-time.After(d):
			case <-r.stop:
				return nil, lastErr
			}
		}
		batch, err := r.cfg.Client.Scan(global, surveyID, cursor, r.cfg.TailPage)
		if err == nil {
			return batch, nil
		}
		lastErr = err
		if !shardrpc.IsTransportError(err) {
			break
		}
		r.logf("replica shard %d: bootstrap scan %q from %d (attempt %d/%d): %v",
			global, surveyID, cursor, attempt+1, bootstrapScanAttempts, err)
	}
	return nil, lastErr
}

// bootstrapShard rebuilds one (freshly reset) local shard from the
// source's paged store scans: every replicated survey's shard slice,
// in per-shard seq order, verified to land on identical local seqs.
// It is how a replica recovers when the node's journal has been
// truncated below the offset it needs.
func (r *Replica) bootstrapShard(i, global int) error {
	svs, err := r.local.Surveys()
	if err != nil {
		return err
	}
	for _, sv := range svs {
		var cursor uint64
		for {
			batch, err := r.bootstrapScan(global, sv.ID, cursor)
			if err != nil {
				return fmt.Errorf("bootstrap scan %q from %d: %w", sv.ID, cursor, err)
			}
			for k := range batch.Records {
				rec := &batch.Records[k]
				stored, err := r.local.AppendShard(i, &rec.Response)
				if errors.Is(err, store.ErrNotFound) {
					// The reset wiped this shard's replicated copy of the
					// definition and the survey-level sync only checks
					// shard 0; heal like applyBatch does — re-put the
					// definition and retry once.
					if perr := r.healSurvey(rec.Response.SurveyID); perr != nil {
						return perr
					}
					stored, err = r.local.AppendShard(i, &rec.Response)
				}
				if err != nil {
					return fmt.Errorf("bootstrap apply (%s, %d): %w", sv.ID, rec.Seq, err)
				}
				if uint64(stored) != rec.Seq {
					return fmt.Errorf("bootstrap apply (%s, %d): local seq diverged to %d", sv.ID, rec.Seq, stored)
				}
			}
			if !batch.More {
				break
			}
			cursor = batch.NextSeq
		}
	}
	return nil
}

// healSurvey re-fetches one survey definition from the followed node
// and broadcasts it to the local stores (shards that already hold it
// are skipped). It is the repair for a reset shard whose definitions
// the survey-level sync — which only inspects shard 0 — skipped.
func (r *Replica) healSurvey(surveyID string) error {
	sv, err := r.cfg.Client.Survey(surveyID)
	if err != nil {
		return fmt.Errorf("heal survey %q: %w", surveyID, err)
	}
	if err := r.local.PutSurvey(sv); err != nil && !errors.Is(err, store.ErrExists) {
		return err
	}
	return nil
}

// applyBatch applies one tail page to the local shard store, verifying
// that local per-shard seqs come out identical to the source's — the
// property merged reads on the replica depend on.
func (r *Replica) applyBatch(i int, batch *shardset.TailBatch) error {
	for k := range batch.Entries {
		e := &batch.Entries[k]
		// A seq at or below the local count was already applied — by a
		// truncation bootstrap whose store scans overlap the journal
		// tail, where skipping is what makes the two paths compose.
		if e.Seq <= uint64(r.local.CountShard(i, e.SurveyID)) {
			continue
		}
		stored, err := r.local.AppendShard(i, &e.Response)
		if errors.Is(err, store.ErrNotFound) {
			// The survey was published after this cycle's definition
			// sync (or a reset wiped this shard's copy); fetch it
			// directly and retry once.
			if perr := r.healSurvey(e.SurveyID); perr != nil {
				return fmt.Errorf("apply (%s, %d): %w", e.SurveyID, e.Seq, err)
			}
			stored, err = r.local.AppendShard(i, &e.Response)
		}
		if err != nil {
			return fmt.Errorf("apply (%s, %d): %w", e.SurveyID, e.Seq, err)
		}
		if uint64(stored) != e.Seq {
			return fmt.Errorf("apply (%s, %d): local seq diverged to %d", e.SurveyID, e.Seq, stored)
		}
	}
	return nil
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Printf(format, args...)
	}
}

// ---------------------------------------------------------------------------
// Replica promotion and fencing

func (r *Replica) isPromoted(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted[i]
}

// clearFail resets a shard's failover lease clock after a successful
// tail.
func (r *Replica) clearFail(i int) {
	r.mu.Lock()
	if !r.failSince[i].IsZero() {
		r.failSince[i] = time.Time{}
	}
	r.mu.Unlock()
}

// leaseExpired feeds one tail error into the failover lease: transport
// errors (node unreachable) start or continue the clock and report
// whether it has run past PromoteAfter; anything the node itself
// answered resets it — a node healthy enough to refuse is healthy
// enough to keep its shards.
func (r *Replica) leaseExpired(i int, err error) bool {
	if !shardrpc.IsTransportError(err) {
		r.clearFail(i)
		return false
	}
	now := time.Now()
	r.mu.Lock()
	if r.failSince[i].IsZero() {
		r.failSince[i] = now
	}
	since := r.failSince[i]
	r.mu.Unlock()
	return r.cfg.PromoteAfter > 0 && now.Sub(since) >= r.cfg.PromoteAfter
}

// resetOwnJournal clears the replica's own journal for a shard whose
// local store was just reset: downstream followers of this replica must
// resync exactly like this replica resyncs from its node.
func (r *Replica) resetOwnJournal(i int) {
	if err := r.local.ResetJournal(i); err != nil {
		r.logf("replica shard %d: own-journal reset: %v", r.local.GlobalID(i), err)
	}
}

// Promote makes this replica the writable primary for one global shard:
// the operator signal half of failover (the lease in syncShard is the
// automatic half; both land in promoteLocked). The shard's journal
// epoch bumps so downstream followers resync onto the new stream, and —
// when the replica knows the shared manifest — the manifest is
// rewritten with the shard's placement epoch incremented, which is what
// fences the old primary's writes everywhere and re-routes every
// watching frontend. Idempotent: promoting a promoted shard returns its
// fence epoch.
func (r *Replica) Promote(global int) (uint64, error) {
	if _, err := r.localShard(global); err != nil {
		return 0, err
	}
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	return r.promoteLocked(r.g2l[global])
}

// promoteLocked is Promote's body; the caller holds syncMu (so no sync
// cycle is mid-flight while ownership flips).
func (r *Replica) promoteLocked(i int) (uint64, error) {
	global := r.local.GlobalID(i)
	r.mu.Lock()
	already := r.promoted[i]
	fence := r.fences[i]
	r.mu.Unlock()
	if already {
		return fence, nil
	}
	// Promotion proceeds from whatever offset this replica has applied:
	// records the dead primary accepted but never shipped are its to
	// re-offer when it rejoins — asynchronous replication's standard
	// failover contract, and why the bench measures equivalence against
	// the cluster's actual post-failover contents.
	if _, err := r.local.BumpEpoch(i); err != nil {
		return 0, fmt.Errorf("promote shard %d: journal epoch: %w", global, err)
	}
	if r.cfg.ManifestPath != "" && r.cfg.SelfURL != "" {
		m, err := placement.Load(r.cfg.ManifestPath)
		if err != nil {
			return 0, fmt.Errorf("promote shard %d: manifest: %w", global, err)
		}
		fence, err = m.Promote(global, r.cfg.SelfURL)
		if err != nil {
			return 0, fmt.Errorf("promote shard %d: %w", global, err)
		}
		if err := m.Save(r.cfg.ManifestPath); err != nil {
			return 0, fmt.Errorf("promote shard %d: manifest save: %w", global, err)
		}
	}
	r.mu.Lock()
	r.promoted[i] = true
	r.fences[i] = fence
	r.failSince[i] = time.Time{}
	r.mu.Unlock()
	r.logf("replica shard %d: promoted to primary (placement epoch %d)", global, fence)
	return fence, nil
}

// ApplyManifest lets a manifest watcher drive promotion from the
// outside: when a (re)loaded manifest names this replica primary for a
// shard it follows, the shard promotes exactly as if the operator had
// posted the promote signal — the file is the signal. Manifests naming
// someone else change nothing here; a replica holds no writes to fence.
func (r *Replica) ApplyManifest(m *placement.Manifest) {
	if r.cfg.SelfURL == "" {
		return
	}
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	for i := 0; i < r.local.Shards(); i++ {
		g := r.local.GlobalID(i)
		sp := m.Placement(g)
		if sp == nil || sp.Primary != r.cfg.SelfURL {
			continue
		}
		if r.isPromoted(i) {
			r.mu.Lock()
			if sp.Epoch > r.fences[i] {
				r.fences[i] = sp.Epoch
			}
			r.mu.Unlock()
			continue
		}
		if _, err := r.promoteLocked(i); err != nil {
			r.logf("replica shard %d: manifest promotion: %v", g, err)
		}
	}
}

// ---------------------------------------------------------------------------
// Replica shardrpc backend
//
// A replica serves the same internal transport a node does, which is
// what lets frontends fail reads over to it when the node dies: scans,
// partials (marked stale until promotion), survey meta, and journal
// tails for its own downstream followers. Writes are fenced until the
// shard is promoted.

func (r *Replica) localShard(global int) (int, error) {
	i, ok := r.g2l[global]
	if !ok {
		return 0, &shardrpc.ErrNotOwned{Shard: global}
	}
	return i, nil
}

// Meta implements shardrpc.Backend.
func (r *Replica) Meta() shardrpc.Meta {
	owned := make([]int, r.local.Shards())
	for i := range owned {
		owned[i] = r.local.GlobalID(i)
	}
	return shardrpc.Meta{TotalShards: r.total, OwnedShards: owned}
}

// AppendShardBatch implements shardrpc.Backend. An unpromoted shard
// fences every write (a replica is read-only until failover makes it
// primary); a promoted one appends exactly like a node.
func (r *Replica) AppendShardBatch(global int, rs []survey.Response) ([]int, error) {
	i, err := r.localShard(global)
	if err != nil {
		return nil, err
	}
	if !r.isPromoted(i) {
		r.mu.Lock()
		fence := r.fences[i]
		r.mu.Unlock()
		return nil, &shardrpc.FencedError{Shard: global, Epoch: 0, Current: fence}
	}
	counts, err := r.local.AppendShardBatch(i, rs)
	for _, id := range uniqueSurveyIDs(rs[:len(counts)]) {
		r.srv.advanceShard(id, i)
	}
	return counts, err
}

// ScanShard implements shardrpc.Backend.
func (r *Replica) ScanShard(global int, surveyID string, fromSeq uint64, fn func(seq uint64, rec *survey.Response) error) error {
	i, err := r.localShard(global)
	if err != nil {
		return err
	}
	return r.local.ScanShard(i, surveyID, fromSeq, fn)
}

// CountShard implements shardrpc.Backend.
func (r *Replica) CountShard(global int, surveyID string) int {
	i, err := r.localShard(global)
	if err != nil {
		return 0
	}
	return r.local.CountShard(i, surveyID)
}

// PartialState implements shardrpc.Backend: the replica's shard
// partial, marked stale while the shard still follows (the replica's
// copy trails the primary by at most one poll plus a round-trip).
func (r *Replica) PartialState(global int, surveyID string, have uint64) (*shardrpc.Partial, error) {
	i, err := r.localShard(global)
	if err != nil {
		return nil, err
	}
	p, err := r.srv.PartialState(i, surveyID, have)
	if err != nil {
		return nil, err
	}
	p.Shard = global
	if !r.isPromoted(i) {
		p.Stale = true
	}
	return p, nil
}

// Tail implements shardrpc.Backend: the replica's own journal, serving
// downstream followers — including a demoted old primary rejoining as a
// replica of the shard's new home.
func (r *Replica) Tail(global int, epoch, offset uint64, max int, follower string) (*shardset.TailBatch, error) {
	i, err := r.localShard(global)
	if err != nil {
		return nil, err
	}
	return r.local.Tail(i, epoch, offset, max, follower)
}

// PutSurvey implements shardrpc.Backend. Publish broadcasts race the
// replica's own definition sync, so a same-fingerprint duplicate is
// success, not 409.
func (r *Replica) PutSurvey(sv *survey.Survey) error {
	if err := sv.Validate(); err != nil {
		return err
	}
	err := r.local.PutSurvey(sv)
	if errors.Is(err, store.ErrExists) {
		if cur, gerr := r.local.Survey(sv.ID); gerr == nil && cur.Fingerprint() == sv.Fingerprint() {
			return nil
		}
	}
	return err
}

// ReplaceSurvey implements shardrpc.Backend.
func (r *Replica) ReplaceSurvey(sv *survey.Survey) error {
	if err := sv.Validate(); err != nil {
		return err
	}
	if err := r.local.ReplaceSurvey(sv); err != nil {
		return err
	}
	r.srv.invalidateLive(sv.ID)
	return nil
}

// Survey implements shardrpc.Backend.
func (r *Replica) Survey(id string) (*survey.Survey, error) { return r.local.Survey(id) }

// Surveys implements shardrpc.Backend.
func (r *Replica) Surveys() ([]*survey.Survey, error) { return r.local.Surveys() }

var _ shardrpc.Backend = (*Replica)(nil)

// CheckFence implements shardrpc.FencedBackend: every write bounces
// until promotion; after it, stamps older than the promotion epoch
// bounce (a frontend still routing by the pre-failover manifest), and
// unstamped or newer stamps pass.
func (r *Replica) CheckFence(global int, epoch uint64) error {
	i, err := r.localShard(global)
	if err != nil {
		return err
	}
	r.mu.Lock()
	promoted := r.promoted[i]
	fence := r.fences[i]
	r.mu.Unlock()
	if !promoted {
		return &shardrpc.FencedError{Shard: global, Epoch: epoch, Current: fence}
	}
	if epoch != 0 && epoch < fence {
		return &shardrpc.FencedError{Shard: global, Epoch: epoch, Current: fence}
	}
	return nil
}

var _ shardrpc.FencedBackend = (*Replica)(nil)
