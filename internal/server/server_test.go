package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"loki/internal/core"
	"loki/internal/store"
	"loki/internal/survey"
)

const testToken = "sekrit"

func newTestServer(t *testing.T) (*httptest.Server, store.Store) {
	t.Helper()
	st := store.NewMem()
	srv, err := New(Config{
		Store:          st,
		Schedule:       core.DefaultSchedule(),
		RequesterToken: testToken,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { st.Close() })
	return ts, st
}

func doReq(t *testing.T, method, url string, body any, token string) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{RequesterToken: "x"}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := New(Config{Store: store.NewMem()}); err == nil {
		t.Error("empty token accepted")
	}
	bad := core.DefaultSchedule()
	bad.Sigma[core.None] = 1
	if _, err := New(Config{Store: store.NewMem(), RequesterToken: "x", Schedule: bad}); err == nil {
		t.Error("invalid schedule accepted")
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/healthz", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var s Stats
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatal(err)
	}
	if s.Status != "ok" || len(s.LevelTally) != core.NumLevels {
		t.Errorf("stats = %+v", s)
	}
}

func TestScheduleEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/schedule", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule = %d", resp.StatusCode)
	}
	var info ScheduleInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Sigma) != core.NumLevels || info.Sigma[2] != 1.0 {
		t.Errorf("schedule info = %+v", info)
	}
}

func TestPublishRequiresToken(t *testing.T) {
	ts, _ := newTestServer(t)
	sv := survey.Awareness()
	resp, _ := doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", sv, "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", sv, "wrong")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", sv, testToken)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d", resp.StatusCode)
	}
	// Republishing the identical definition is idempotent: 200, not a
	// second 201.
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", sv, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dup publish = %d", resp.StatusCode)
	}
}

func TestPublishLinkageAudit(t *testing.T) {
	ts, _ := newTestServer(t)
	// Publish the paper's three profiling surveys one by one; the third
	// must come back with a critical audit.
	var last PublishResult
	for _, sv := range survey.ProfilingSurveys() {
		resp, body := doReq(t, http.MethodPost, ts.URL+"/api/v1/surveys", sv, testToken)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("publish %q = %d", sv.ID, resp.StatusCode)
		}
		if err := json.Unmarshal(body, &last); err != nil {
			t.Fatal(err)
		}
	}
	if last.Audit == nil {
		t.Fatal("publish response missing audit")
	}
	if !last.Audit.CompletesQuasiID {
		t.Errorf("portfolio audit did not flag the quasi-identifier: %+v", last.Audit)
	}
	if last.Audit.MaxSeverity() != survey.Critical {
		t.Errorf("audit severity = %v", last.Audit.MaxSeverity())
	}
}

func TestListAndGet(t *testing.T) {
	ts, st := newTestServer(t)
	if err := st.PutSurvey(survey.Awareness()); err != nil {
		t.Fatal(err)
	}
	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d", resp.StatusCode)
	}
	var list []SurveySummary
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != survey.AwarenessID || list[0].Questions != 2 {
		t.Errorf("list = %+v", list)
	}
	if len(list[0].Levels) != core.NumLevels {
		t.Error("levels missing from summary")
	}

	resp, body = doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys/"+survey.AwarenessID, nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get = %d", resp.StatusCode)
	}
	var sv survey.Survey
	if err := json.Unmarshal(body, &sv); err != nil {
		t.Fatal(err)
	}
	if err := sv.Validate(); err != nil {
		t.Fatalf("served survey invalid: %v", err)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys/ghost", nil, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing survey = %d", resp.StatusCode)
	}
}

func submitURL(ts *httptest.Server, id string) string {
	return fmt.Sprintf("%s/api/v1/surveys/%s/responses", ts.URL, id)
}

func validResponse(level string, obfuscated bool) *survey.Response {
	return &survey.Response{
		SurveyID: survey.AwarenessID,
		WorkerID: "w1",
		Answers: []survey.Answer{
			survey.ChoiceAnswer("aware", 0),
			survey.ChoiceAnswer("participate", 1),
		},
		PrivacyLevel: level,
		Obfuscated:   obfuscated,
	}
}

func TestSubmitResponse(t *testing.T) {
	ts, st := newTestServer(t)
	if err := st.PutSurvey(survey.Awareness()); err != nil {
		t.Fatal(err)
	}
	resp, body := doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), validResponse("medium", true), "")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var ack SubmitResult
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Accepted || ack.Stored != 1 {
		t.Errorf("ack = %+v", ack)
	}

	// Unknown survey.
	resp, _ = doReq(t, http.MethodPost, submitURL(ts, "ghost"), validResponse("none", false), "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown survey submit = %d", resp.StatusCode)
	}
	// Bad privacy level.
	resp, _ = doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), validResponse("bogus", true), "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus level = %d", resp.StatusCode)
	}
	// Level above none must be obfuscated.
	resp, _ = doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), validResponse("high", false), "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unobfuscated high = %d", resp.StatusCode)
	}
	// Mismatched survey id.
	mismatch := validResponse("none", false)
	mismatch.SurveyID = "other"
	resp, _ = doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), mismatch, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched id = %d", resp.StatusCode)
	}
	// Incomplete answers.
	short := validResponse("none", false)
	short.Answers = short.Answers[:1]
	resp, _ = doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), short, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short answers = %d", resp.StatusCode)
	}
	// Malformed JSON.
	req, _ := http.NewRequest(http.MethodPost, submitURL(ts, survey.AwarenessID), strings.NewReader("{nope"))
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON = %d", raw.StatusCode)
	}
	// Unknown fields rejected.
	req, _ = http.NewRequest(http.MethodPost, submitURL(ts, survey.AwarenessID),
		strings.NewReader(`{"survey_id":"awareness","worker_id":"w","answers":[],"hacker":true}`))
	raw, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d", raw.StatusCode)
	}

	// The empty-survey-id convenience: the URL fills it in.
	blank := validResponse("none", false)
	blank.SurveyID = ""
	blank.WorkerID = "w2"
	resp, _ = doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), blank, "")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("blank survey id = %d", resp.StatusCode)
	}
}

func TestSubmitBodyTooLarge(t *testing.T) {
	st := store.NewMem()
	defer st.Close()
	if err := st.PutSurvey(survey.Awareness()); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:          st,
		Schedule:       core.DefaultSchedule(),
		RequesterToken: testToken,
		MaxBodyBytes:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, _ := doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), validResponse("none", false), "")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body = %d", resp.StatusCode)
	}
}

func TestAggregateEndpoint(t *testing.T) {
	ts, st := newTestServer(t)
	sv := survey.Lecturers([]string{"A"})
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r := &survey.Response{
			SurveyID: sv.ID,
			WorkerID: fmt.Sprintf("w%d", i),
			Answers:  []survey.Answer{survey.RatingAnswer("lecturer-00", 4)},
		}
		if err := st.AppendResponse(r); err != nil {
			t.Fatal(err)
		}
	}
	url := ts.URL + "/api/v1/surveys/" + sv.ID + "/aggregate"
	resp, _ := doReq(t, http.MethodGet, url, nil, "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("aggregate without token = %d", resp.StatusCode)
	}
	resp, body := doReq(t, http.MethodGet, url, nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate = %d", resp.StatusCode)
	}
	var out AggregateResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Questions) != 1 || out.Questions[0].OverallN != 10 {
		t.Errorf("aggregate = %+v", out)
	}
	if out.Questions[0].OverallMean != 4 {
		t.Errorf("overall mean = %g", out.Questions[0].OverallMean)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys/ghost/aggregate", nil, testToken)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost aggregate = %d", resp.StatusCode)
	}
}

func TestLevelTally(t *testing.T) {
	ts, st := newTestServer(t)
	if err := st.PutSurvey(survey.Awareness()); err != nil {
		t.Fatal(err)
	}
	for i, level := range []string{"none", "medium", "medium", "high"} {
		r := validResponse(level, level != "none")
		r.WorkerID = fmt.Sprintf("w%d", i)
		resp, body := doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), r, "")
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d = %d: %s", i, resp.StatusCode, body)
		}
	}
	_, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/healthz", nil, "")
	var s Stats
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatal(err)
	}
	if s.ResponsesAccepted != 4 {
		t.Errorf("accepted = %d", s.ResponsesAccepted)
	}
	want := []int64{1, 0, 2, 1}
	for i, w := range want {
		if s.LevelTally[i] != w {
			t.Errorf("tally[%d] = %d, want %d", i, s.LevelTally[i], w)
		}
	}
}

func TestAggregateIncludesChoices(t *testing.T) {
	ts, st := newTestServer(t)
	if err := st.PutSurvey(survey.Awareness()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		r := validResponse("none", false)
		r.WorkerID = fmt.Sprintf("w%d", i)
		if err := st.AppendResponse(r); err != nil {
			t.Fatal(err)
		}
	}
	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys/"+survey.AwarenessID+"/aggregate", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate = %d", resp.StatusCode)
	}
	var out AggregateResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Choices) != 2 {
		t.Fatalf("choice estimates = %d", len(out.Choices))
	}
	// Every validResponse answers aware=Yes (0): the exact bin carries
	// the full count.
	for _, ce := range out.Choices {
		if ce.QuestionID == "aware" && ce.Estimated[0] != 6 {
			t.Errorf("aware estimates = %v", ce.Estimated)
		}
	}
}

func TestQualityEndpoint(t *testing.T) {
	ts, st := newTestServer(t)
	sv := survey.Health() // has a cough-days consistency pair
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	good := &survey.Response{
		SurveyID: sv.ID, WorkerID: "w1", PrivacyLevel: "none",
		Answers: []survey.Answer{
			survey.ChoiceAnswer("smoking", 0),
			survey.NumericAnswer("cough-days", 2),
			survey.NumericAnswer("cough-days-2", 2),
		},
	}
	badResp := &survey.Response{
		SurveyID: sv.ID, WorkerID: "w2", PrivacyLevel: "none",
		Answers: []survey.Answer{
			survey.ChoiceAnswer("smoking", 0),
			survey.NumericAnswer("cough-days", 0),
			survey.NumericAnswer("cough-days-2", 7),
		},
	}
	if err := st.AppendResponse(good); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResponse(badResp); err != nil {
		t.Fatal(err)
	}

	url := ts.URL + "/api/v1/surveys/" + sv.ID + "/quality"
	resp, _ := doReq(t, http.MethodGet, url, nil, "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("quality without token = %d", resp.StatusCode)
	}
	resp, body := doReq(t, http.MethodGet, url, nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quality = %d", resp.StatusCode)
	}
	var out QualityResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 2 || out.Consistent != 1 || out.Inconsistent != 1 {
		t.Errorf("quality = %+v", out)
	}
	if out.PerLevelInconsistent[0] != 1 {
		t.Errorf("per-level = %v", out.PerLevelInconsistent)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys/ghost/quality", nil, testToken)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost quality = %d", resp.StatusCode)
	}
}

func TestQualitySlackForObfuscated(t *testing.T) {
	ts, st := newTestServer(t)
	sv := survey.Health()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	// An obfuscated response whose pair differs by 4 — would fail raw
	// (tolerance 1) but passes with 3σ slack at high (σ=2·(7/4)=3.5
	// scaled; slack uses the reference σ 2 → 6).
	noisy := &survey.Response{
		SurveyID: sv.ID, WorkerID: "w1", PrivacyLevel: "high", Obfuscated: true,
		Answers: []survey.Answer{
			survey.ChoiceAnswer("smoking", 1),
			survey.NumericAnswer("cough-days", 1.5),
			survey.NumericAnswer("cough-days-2", 5.5),
		},
	}
	if err := st.AppendResponse(noisy); err != nil {
		t.Fatal(err)
	}
	_, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys/"+sv.ID+"/quality", nil, testToken)
	var out QualityResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Consistent != 1 {
		t.Errorf("noisy-but-honest response flagged: %+v", out)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := doReq(t, http.MethodDelete, ts.URL+"/api/v1/surveys", nil, "")
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("DELETE succeeded: %d", resp.StatusCode)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	ts, st := newTestServer(t)
	if err := st.PutSurvey(survey.Awareness()); err != nil {
		t.Fatal(err)
	}
	const workers, each = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers*each)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r := validResponse("medium", true)
				r.WorkerID = fmt.Sprintf("w%d-%d", g, i)
				resp, _ := doReq(t, http.MethodPost, submitURL(ts, survey.AwarenessID), r, "")
				if resp.StatusCode != http.StatusCreated {
					errs <- fmt.Errorf("worker %d submit %d: HTTP %d", g, i, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := st.ResponseCount(survey.AwarenessID); got != workers*each {
		t.Fatalf("stored %d responses, want %d", got, workers*each)
	}
}
