package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"loki/internal/core"
	"loki/internal/ingest"
	"loki/internal/store"
	"loki/internal/survey"
)

func aggregateURL(ts *httptest.Server, id string) string {
	return ts.URL + "/api/v1/surveys/" + id + "/aggregate"
}

// recomputeAggregate is the from-scratch reference the live read path
// is checked against.
func recomputeAggregate(t *testing.T, st store.Store, sv *survey.Survey) *AggregateResult {
	t.Helper()
	est, err := BatchEstimator(core.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	responses, err := st.Responses(sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	out, err := BatchAggregate(est, sv, responses)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// compareAggregate checks the live result against the batch recompute.
func compareAggregate(t *testing.T, got, want *AggregateResult) {
	t.Helper()
	const tol = 1e-9
	near := func(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }
	if len(got.Questions) != len(want.Questions) || len(got.Choices) != len(want.Choices) {
		t.Fatalf("shape: %d/%d questions, want %d/%d",
			len(got.Questions), len(got.Choices), len(want.Questions), len(want.Choices))
	}
	for i := range want.Questions {
		g, w := got.Questions[i], want.Questions[i]
		if g.QuestionID != w.QuestionID || g.OverallN != w.OverallN {
			t.Fatalf("question %d: %s n=%d, want %s n=%d", i, g.QuestionID, g.OverallN, w.QuestionID, w.OverallN)
		}
		if !near(g.OverallMean, w.OverallMean) || !near(g.PooledMean, w.PooledMean) {
			t.Errorf("question %s: means %g/%g, want %g/%g", g.QuestionID, g.OverallMean, g.PooledMean, w.OverallMean, w.PooledMean)
		}
		for l := range g.Bins {
			if g.Bins[l].N != w.Bins[l].N || !near(g.Bins[l].Mean, w.Bins[l].Mean) || !near(g.Bins[l].Variance, w.Bins[l].Variance) {
				t.Errorf("question %s bin %d: %+v, want %+v", g.QuestionID, l, g.Bins[l], w.Bins[l])
			}
		}
	}
	for i := range want.Choices {
		g, w := got.Choices[i], want.Choices[i]
		if g.QuestionID != w.QuestionID || g.N != w.N || g.BinN != w.BinN {
			t.Fatalf("choice %s: n=%d bins=%v, want n=%d bins=%v", g.QuestionID, g.N, g.BinN, w.N, w.BinN)
		}
		for c := range w.Estimated {
			if g.Observed[c] != w.Observed[c] || !near(g.Estimated[c], w.Estimated[c]) {
				t.Errorf("choice %s option %d: %d/%g, want %d/%g", g.QuestionID, c, g.Observed[c], g.Estimated[c], w.Observed[c], w.Estimated[c])
			}
		}
	}
}

func getAggregate(t *testing.T, ts *httptest.Server, id string) *AggregateResult {
	t.Helper()
	resp, body := doReq(t, http.MethodGet, aggregateURL(ts, id), nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate = %d: %s", resp.StatusCode, body)
	}
	var out AggregateResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestAggregateLiveMatchesBatch: the incremental read path must agree
// with a from-scratch recompute, on the first read (bulk catch-up), on
// a hot re-read, and after more submissions.
func TestAggregateLiveMatchesBatch(t *testing.T) {
	ts, st := newTestServer(t)
	sv := survey.Awareness()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	submit := func(i int, level string, obf bool) {
		t.Helper()
		r := validResponse(level, obf)
		r.WorkerID = fmt.Sprintf("w%04d", i)
		r.Answers = []survey.Answer{
			survey.ChoiceAnswer("aware", i%2),
			survey.ChoiceAnswer("participate", i%3%2),
		}
		resp, body := doReq(t, http.MethodPost, submitURL(ts, sv.ID), r, "")
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit = %d: %s", resp.StatusCode, body)
		}
	}
	levels := []string{"none", "low", "medium", "high"}
	for i := 0; i < 40; i++ {
		submit(i, levels[i%4], i%4 != 0)
	}

	compareAggregate(t, getAggregate(t, ts, sv.ID), recomputeAggregate(t, st, sv))
	// Hot path: nothing new to fold.
	compareAggregate(t, getAggregate(t, ts, sv.ID), recomputeAggregate(t, st, sv))
	// Fold more after a read.
	for i := 40; i < 55; i++ {
		submit(i, levels[i%4], i%4 != 0)
	}
	compareAggregate(t, getAggregate(t, ts, sv.ID), recomputeAggregate(t, st, sv))
}

// TestConcurrentSubmitWhileAggregate is the read-path race test: N
// goroutines POST responses while M goroutines poll /aggregate; every
// intermediate read must be internally consistent, and the final
// aggregate must equal a from-scratch recompute.
func TestConcurrentSubmitWhileAggregate(t *testing.T) {
	ts, st := newTestServer(t)
	// A mixed survey so in-flight reads can be checked for coherence
	// across question kinds.
	sv := &survey.Survey{
		ID:    "race",
		Title: "Race test survey",
		Questions: []survey.Question{
			{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "q1", Text: "pick", Kind: survey.MultipleChoice, Options: []string{"a", "b"}},
		},
		RewardCents: 1,
	}
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	const submitters, each, pollers, polls = 8, 25, 4, 30
	errs := make(chan error, submitters+pollers)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			levels := []string{"none", "low", "medium", "high"}
			for i := 0; i < each; i++ {
				r := &survey.Response{
					SurveyID:     sv.ID,
					WorkerID:     fmt.Sprintf("w%d-%d", g, i),
					PrivacyLevel: levels[i%4],
					Obfuscated:   i%4 != 0,
					Answers: []survey.Answer{
						survey.RatingAnswer("q0", float64(1+(g+i)%5)),
						survey.ChoiceAnswer("q1", i%2),
					},
				}
				resp, body := doReq(t, http.MethodPost, submitURL(ts, sv.ID), r, "")
				if resp.StatusCode != http.StatusCreated {
					errs <- fmt.Errorf("submitter %d: HTTP %d: %s", g, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	for g := 0; g < pollers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < polls; i++ {
				resp, body := doReq(t, http.MethodGet, aggregateURL(ts, sv.ID), nil, testToken)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("poller %d: HTTP %d: %s", g, resp.StatusCode, body)
					return
				}
				var out AggregateResult
				if err := json.Unmarshal(body, &out); err != nil {
					errs <- fmt.Errorf("poller %d: %v", g, err)
					return
				}
				// Internal consistency of an in-flight read: every
				// question sees the same number of responses.
				for _, q := range out.Questions {
					if q.OverallN != out.Choices[0].N {
						errs <- fmt.Errorf("poller %d: question %s sees %d responses, choices see %d",
							g, q.QuestionID, q.OverallN, out.Choices[0].N)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := st.ResponseCount(sv.ID); got != submitters*each {
		t.Fatalf("stored %d responses, want %d", got, submitters*each)
	}
	final := getAggregate(t, ts, sv.ID)
	if final.Choices[0].N != submitters*each {
		t.Fatalf("final aggregate folded %d responses, want %d", final.Choices[0].N, submitters*each)
	}
	compareAggregate(t, final, recomputeAggregate(t, st, sv))

	// Quality saw every response too.
	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/surveys/"+sv.ID+"/quality", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quality = %d: %s", resp.StatusCode, body)
	}
	var q QualityResult
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.Total != submitters*each || q.Consistent+q.Inconsistent != q.Total {
		t.Fatalf("quality tally = %+v, want total %d", q, submitters*each)
	}
}

// TestRestartCatchUp: a fresh server over a replayed durable store must
// rebuild its live aggregate lazily on the first read.
func TestRestartCatchUp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	st, err := store.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: st, Schedule: core.DefaultSchedule(), RequesterToken: testToken})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	sv := survey.Awareness()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		r := validResponse("medium", true)
		r.WorkerID = fmt.Sprintf("w%02d", i)
		resp, body := doReq(t, http.MethodPost, submitURL(ts, sv.ID), r, "")
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit = %d: %s", resp.StatusCode, body)
		}
	}
	want := getAggregate(t, ts, sv.ID)
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the log, build a new server with empty live
	// state, and read immediately.
	st2, err := store.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	srv2, err := New(Config{Store: st2, Schedule: core.DefaultSchedule(), RequesterToken: testToken})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)
	got := getAggregate(t, ts2, sv.ID)
	if got.Choices[0].N != n {
		t.Fatalf("aggregate after restart folded %d responses, want %d", got.Choices[0].N, n)
	}
	compareAggregate(t, got, want)
}

// TestAdminStore covers the observability endpoint: auth, the mem
// backend's accumulator cursors, and the ingest backend's shard stats.
func TestAdminStore(t *testing.T) {
	ts, st := newTestServer(t)
	sv := survey.Awareness()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	resp, _ := doReq(t, http.MethodGet, ts.URL+"/api/v1/admin/store", nil, "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated admin = %d", resp.StatusCode)
	}

	const n = 7
	for i := 0; i < n; i++ {
		r := validResponse("medium", true)
		r.WorkerID = fmt.Sprintf("w%02d", i)
		if code, body := doReq(t, http.MethodPost, submitURL(ts, sv.ID), r, ""); code.StatusCode != http.StatusCreated {
			t.Fatalf("submit = %d: %s", code.StatusCode, body)
		}
	}
	getAggregate(t, ts, sv.ID)

	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin = %d: %s", resp.StatusCode, body)
	}
	var info AdminStoreInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Backend != "mem" {
		t.Errorf("backend = %q, want mem", info.Backend)
	}
	if len(info.Accumulators) != 1 {
		t.Fatalf("accumulators = %+v, want one", info.Accumulators)
	}
	acc := info.Accumulators[0]
	if acc.SurveyID != sv.ID || acc.Cursor != n || acc.Responses != n {
		t.Errorf("accumulator = %+v, want cursor/responses %d for %s", acc, n, sv.ID)
	}
}

func TestAdminStoreIngestBackend(t *testing.T) {
	ing, err := ingest.Open(t.TempDir(), ingest.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	srv, err := New(Config{Store: ing, Schedule: core.DefaultSchedule(), RequesterToken: testToken})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	sv := survey.Awareness()
	if err := ing.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	r := validResponse("medium", true)
	if resp, body := doReq(t, http.MethodPost, submitURL(ts, sv.ID), r, ""); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}

	resp, body := doReq(t, http.MethodGet, ts.URL+"/api/v1/admin/store", nil, testToken)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin = %d: %s", resp.StatusCode, body)
	}
	var info AdminStoreInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Backend != "ingest" {
		t.Errorf("backend = %q, want ingest", info.Backend)
	}
	if len(info.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(info.Shards))
	}
	if info.Ingest == nil || info.Ingest.Appends != 1 {
		t.Errorf("ingest stats = %+v, want 1 append", info.Ingest)
	}
	if len(info.Accumulators) != 1 || info.Accumulators[0].Responses != 1 {
		t.Errorf("accumulators = %+v", info.Accumulators)
	}
}
