package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loki/internal/core"
	"loki/internal/placement"
	"loki/internal/shardrpc"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// deadHandler simulates a crashed node: every connection is torn down
// before a byte of response is written, so clients observe transport
// errors (exactly what a dead process looks like), not HTTP statuses.
type deadHandler struct{}

func (deadHandler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("test server does not support hijacking")
	}
	conn, _, err := hj.Hijack()
	if err == nil {
		conn.Close()
	}
}

// haNode is one killable cluster node for failover tests: journaled
// local stores behind a stable URL whose handler can be swapped for a
// connection-killing one and back.
type haNode struct {
	url    string
	client *shardrpc.Client
	local  *shardset.Local
	node   *Node
	sw     *switchableHandler
	live   http.Handler
}

func (n *haNode) kill()   { n.sw.swap(deadHandler{}) }
func (n *haNode) revive() { n.sw.swap(n.live) }

// newHANodes spins killable nodes over the round-robin placement.
func newHANodes(t *testing.T, nodes, totalShards int) []*haNode {
	t.Helper()
	owned := shardrpc.RoundRobinPlacement(totalShards, nodes)
	out := make([]*haNode, nodes)
	for nd := 0; nd < nodes; nd++ {
		stores := make([]store.Store, len(owned[nd]))
		for i := range stores {
			stores[i] = store.NewMem()
		}
		local, err := shardset.NewLocal(stores, shardset.LocalOptions{
			GlobalIDs: owned[nd], Journal: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { local.Close() })
		nsrv, err := New(Config{Router: local, Schedule: core.DefaultSchedule(), RequesterToken: testToken, Role: "node"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nsrv.Close() })
		node, err := NewNode(nsrv, totalShards)
		if err != nil {
			t.Fatal(err)
		}
		h, err := shardrpc.NewHandler(node, testToken)
		if err != nil {
			t.Fatal(err)
		}
		// The production node mount: shardrpc and the public API (health
		// included) share one listener.
		mux := http.NewServeMux()
		mux.Handle("/shardrpc/", h)
		mux.Handle("/", nsrv)
		sw := &switchableHandler{h: mux}
		nts := httptest.NewServer(sw)
		t.Cleanup(nts.Close)
		out[nd] = &haNode{
			url: nts.URL, client: shardrpc.NewClient(nts.URL, testToken, nil),
			local: local, node: node, sw: sw, live: mux,
		}
	}
	return out
}

// getHealth fetches the unauthenticated admin health surface.
func getHealth(t *testing.T, baseURL string) *HealthInfo {
	t.Helper()
	resp, err := http.Get(baseURL + "/api/v1/admin/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health = %d", resp.StatusCode)
	}
	var info HealthInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return &info
}

// TestFrontendDegradedReads: a frontend fanning a merged read over a
// cluster with a dead node degrades — it merges the shards that
// answered and labels the rest in degraded_shards — instead of failing
// the whole aggregate with a 500. Submits routed to the dead node's
// shards refuse with 503 + Retry-After, and everything heals when the
// node returns.
func TestFrontendDegradedReads(t *testing.T) {
	const totalShards = 4
	nodes := newHANodes(t, 2, totalShards)
	clients := []*shardrpc.Client{nodes[0].client, nodes[1].client}
	fts, remote, _ := newTestFrontend(t, clients, totalShards, -1, 0) // cache off: direct merge path

	sv := clusterTestSurvey()
	resp, body := doReq(t, http.MethodPost, fts.URL+"/api/v1/surveys", sv, testToken)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}
	rng := rand.New(rand.NewSource(23))
	const n = 120
	for i := 0; i < n; i++ {
		submitOK(t, fts, randomResponse(sv, rng, i))
	}

	// Round-robin: node 1 owns shards 1 and 3.
	liveN := remote.CountShard(0, sv.ID) + remote.CountShard(2, sv.ID)
	deadN := remote.CountShard(1, sv.ID) + remote.CountShard(3, sv.ID)
	if liveN == 0 || deadN == 0 {
		t.Fatalf("placement too lopsided: live %d dead %d", liveN, deadN)
	}

	full := getAggregate(t, fts, sv.ID)
	if len(full.DegradedShards) != 0 {
		t.Fatalf("healthy read degraded: %v", full.DegradedShards)
	}

	nodes[1].kill()
	got := getAggregate(t, fts, sv.ID)
	sort.Ints(got.DegradedShards)
	if fmt.Sprint(got.DegradedShards) != "[1 3]" {
		t.Fatalf("degraded shards = %v, want [1 3]", got.DegradedShards)
	}
	if got.Choices[0].N != liveN {
		t.Fatalf("degraded aggregate folded %d responses, want %d from live shards", got.Choices[0].N, liveN)
	}

	// A submit that routes to a dead shard is a retryable 503, not a 400.
	var refused bool
	for i := 0; i < 200 && !refused; i++ {
		r := randomResponse(sv, rng, 1000+i)
		if s := shardset.Route(sv.ID, r.WorkerID, totalShards); s != 1 && s != 3 {
			continue
		}
		resp, body := doReq(t, http.MethodPost, submitURL(fts, sv.ID), r, "")
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("submit to dead shard = %d: %s", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("503 without Retry-After")
		}
		var oe OverloadError
		if err := json.Unmarshal(body, &oe); err != nil {
			t.Fatal(err)
		}
		if oe.Error != NodeUnreachableCode {
			t.Fatalf("refusal code = %q, want %q", oe.Error, NodeUnreachableCode)
		}
		refused = true
	}
	if !refused {
		t.Fatal("no worker routed to the dead node's shards")
	}

	// The node returns: reads are whole again.
	nodes[1].revive()
	healed := getAggregate(t, fts, sv.ID)
	if len(healed.DegradedShards) != 0 {
		t.Fatalf("healed read still degraded: %v", healed.DegradedShards)
	}
	compareAggregate(t, healed, full)
}

// TestFrontendDegradedReadsCached: the cached read path keeps a warm
// part serving for a shard that went dark — the revalidated aggregate
// degrades around it instead of failing.
func TestFrontendDegradedReadsCached(t *testing.T) {
	const totalShards = 4
	nodes := newHANodes(t, 2, totalShards)
	clients := []*shardrpc.Client{nodes[0].client, nodes[1].client}
	fts, _, _ := newTestFrontend(t, clients, totalShards, time.Nanosecond, 0) // cache on, instant staleness

	sv := clusterTestSurvey()
	if resp, body := doReq(t, http.MethodPost, fts.URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}
	rng := rand.New(rand.NewSource(29))
	const n = 80
	for i := 0; i < n; i++ {
		submitOK(t, fts, randomResponse(sv, rng, i))
	}
	warm := getAggregate(t, fts, sv.ID) // populates every shard part
	if len(warm.DegradedShards) != 0 {
		t.Fatalf("warm read degraded: %v", warm.DegradedShards)
	}

	nodes[1].kill()
	got := getAggregate(t, fts, sv.ID)
	sort.Ints(got.DegradedShards)
	if fmt.Sprint(got.DegradedShards) != "[1 3]" {
		t.Fatalf("degraded shards = %v, want [1 3]", got.DegradedShards)
	}
	// Warm parts stand in for the dark shards: the merged result still
	// covers all n responses.
	if got.Choices[0].N != n {
		t.Fatalf("cached degraded aggregate folded %d, want the warm %d", got.Choices[0].N, n)
	}
}

// newHAReplica builds a replica of node serving BOTH the public API and
// shardrpc on one mux (the production replica mount), with promotion
// wired to the shared manifest at manifestPath.
func newHAReplica(t *testing.T, node *haNode, manifestPath string, promoteAfter time.Duration) (*Replica, string) {
	t.Helper()
	sw := &switchableHandler{h: http.NotFoundHandler()}
	rts := httptest.NewServer(sw)
	t.Cleanup(rts.Close)
	rep, err := NewReplica(ReplicaConfig{
		Client:         shardrpc.NewClient(node.url, testToken, nil),
		Schedule:       core.DefaultSchedule(),
		RequesterToken: testToken,
		PollInterval:   time.Hour, // tests drive SyncOnce directly
		FollowerID:     "ha-test",
		ManifestPath:   manifestPath,
		SelfURL:        rts.URL,
		PromoteAfter:   promoteAfter,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	rpc, err := shardrpc.NewHandler(rep, testToken)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/shardrpc/", rpc)
	mux.Handle("/", rep)
	sw.swap(mux)
	return rep, rts.URL
}

// haManifest writes the initial manifest: every shard primary on the
// node, the replica attached, epoch 1.
func haManifest(t *testing.T, path string, totalShards int, nodeURL, repURL string) *placement.Manifest {
	t.Helper()
	m, err := placement.RoundRobin(totalShards, []string{nodeURL})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Shards {
		m.Shards[i].Replicas = []string{repURL}
	}
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestReplicaReadFailoverAndPromotion is the tentpole end to end from
// the frontend's seat: reads fail over to the replica (labeled
// degraded-stale) when the primary dies, writes to the failed-over
// shard refuse with the retryable 503 vocabulary, the operator promote
// signal rewrites the manifest, and after the frontend applies it
// submits and clean reads resume against the promoted replica.
func TestReplicaReadFailoverAndPromotion(t *testing.T) {
	const totalShards = 2
	nodes := newHANodes(t, 1, totalShards)
	manifestPath := filepath.Join(t.TempDir(), "manifest.json")
	rep, repURL := newHAReplica(t, nodes[0], manifestPath, 0)
	m := haManifest(t, manifestPath, totalShards, nodes[0].url, repURL)
	nodes[0].node.ApplyManifest(m, nodes[0].url)

	remote, err := shardrpc.NewRemoteFromManifest(m, testToken, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	frontend, err := New(Config{
		Router: remote, Schedule: core.DefaultSchedule(), RequesterToken: testToken, Role: "frontend",
		FrontendCacheTTL: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { frontend.Close() })
	fts := httptest.NewServer(frontend)
	t.Cleanup(fts.Close)

	sv := clusterTestSurvey()
	if resp, body := doReq(t, http.MethodPost, fts.URL+"/api/v1/surveys", sv, testToken); resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}
	rng := rand.New(rand.NewSource(31))
	const n = 90
	for i := 0; i < n; i++ {
		submitOK(t, fts, randomResponse(sv, rng, i))
	}
	rep.SyncOnce() // replica caught up before the failure
	before := getAggregate(t, fts, sv.ID)

	// Primary dies. Reads keep answering — served by the replica, with
	// the stale-read counter ticking and the health surface reporting
	// the failed-over route.
	nodes[0].kill()
	during := getAggregate(t, fts, sv.ID)
	compareAggregate(t, during, before)
	if remote.StaleReads() == 0 {
		t.Fatal("failover read did not tick the stale-read counter")
	}
	fh := getHealth(t, fts.URL)
	if fh.Role != "frontend" || fh.ManifestVersion != 1 || fh.StaleReads == 0 {
		t.Fatalf("frontend health = %+v", fh)
	}
	downSeen := false
	for _, sh := range fh.Shards {
		downSeen = downSeen || sh.PrimaryDown
	}
	if !downSeen {
		t.Fatal("frontend health reports no primary down")
	}

	// Writes to a failed-over shard bounce with the retryable 503.
	r := randomResponse(sv, rng, 5000)
	resp, body := doReq(t, http.MethodPost, submitURL(fts, sv.ID), r, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failed-over submit = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var oe OverloadError
	if err := json.Unmarshal(body, &oe); err != nil {
		t.Fatal(err)
	}
	if oe.Error != FailedOverCode && oe.Error != NodeUnreachableCode {
		t.Fatalf("refusal code = %q", oe.Error)
	}

	// Operator promotion: one POST per shard on the replica's admin
	// surface. The shared manifest gains the new primary and epochs.
	for s := 0; s < totalShards; s++ {
		resp, body := doReq(t, http.MethodPost, fmt.Sprintf("%s/api/v1/admin/promote/%d", repURL, s), nil, testToken)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("promote shard %d = %d: %s", s, resp.StatusCode, body)
		}
		var pr PromoteResult
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Shard != s || pr.Epoch != 2 {
			t.Fatalf("promote result = %+v", pr)
		}
	}
	m2, err := placement.Load(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version <= m.Version {
		t.Fatalf("manifest version did not grow: %d", m2.Version)
	}
	for s := 0; s < totalShards; s++ {
		sp := m2.Placement(s)
		if sp.Primary != repURL || sp.Epoch != 2 {
			t.Fatalf("post-promotion placement %d = %+v", s, sp)
		}
	}
	rh := getHealth(t, repURL)
	for _, sh := range rh.Shards {
		if sh.Role != "primary" || sh.Epoch != 2 {
			t.Fatalf("replica health after promotion = %+v", sh)
		}
	}

	// The frontend applies the new manifest (what the watcher does) and
	// submits resume, routed to the promoted replica.
	if err := remote.ApplyManifest(m2); err != nil {
		t.Fatal(err)
	}
	const extra = 25
	for i := 0; i < extra; i++ {
		submitOK(t, fts, randomResponse(sv, rng, n+i))
	}
	if got := shardset.Count(remote, sv.ID); got != n+extra {
		t.Fatalf("post-promotion count = %d, want %d", got, n+extra)
	}
	// Clean primary reads again — and equivalent to one accumulator over
	// the cluster's merged stream.
	stale := remote.StaleReads()
	compareAggregate(t, getAggregate(t, fts, sv.ID), referenceAggregate(t, remote, sv))
	if remote.StaleReads() != stale {
		t.Fatal("post-promotion read still served stale")
	}
}

// TestPromotionRaceOldPrimaryFenced is the promotion race: the primary
// dies, the replica's failover lease expires and it self-promotes while
// writers hammer it concurrently, and then the old primary RETURNS —
// loads the rewritten manifest, demotes, and every write against it
// (stale stamp, no stamp, even the new epoch) is refused by the fence
// while its data stays readable. Run with -race: the writers overlap
// the promotion flip on purpose.
func TestPromotionRaceOldPrimaryFenced(t *testing.T) {
	const totalShards = 2
	nodes := newHANodes(t, 1, totalShards)
	manifestPath := filepath.Join(t.TempDir(), "manifest.json")
	rep, repURL := newHAReplica(t, nodes[0], manifestPath, 30*time.Millisecond)
	m := haManifest(t, manifestPath, totalShards, nodes[0].url, repURL)
	nodes[0].node.ApplyManifest(m, nodes[0].url)

	sv := clusterTestSurvey()
	if err := nodes[0].local.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := nodes[0].local.Append(randomResponse(sv, rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	rep.SyncOnce()

	// The primary dies; the first failing cycle starts the lease clock.
	nodes[0].kill()
	rep.SyncOnce()
	if got := getHealth(t, repURL); got.Shards[0].Role != "replica" {
		t.Fatalf("promoted before the lease expired: %+v", got.Shards)
	}

	// Writers race the promotion: fenced until the flip, accepted after.
	repClient := shardrpc.NewClient(repURL, testToken, nil)
	var fenced, accepted atomic.Int64
	stopWriters := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopWriters:
					return
				default:
				}
				r := randomResponse(sv, rand.New(rand.NewSource(int64(100+w))), w*100000+i)
				_, err := repClient.SubmitFenced(shardset.Route(sv.ID, r.WorkerID, totalShards), 0, []survey.Response{*r}, nil)
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, shardrpc.ErrFenced):
					fenced.Add(1)
				default:
					// transport noise under -race scheduling; ignore
				}
			}
		}(w)
	}

	// Lease expiry: the next failing cycle promotes both shards.
	time.Sleep(50 * time.Millisecond)
	rep.SyncOnce()
	for s := 0; s < totalShards; s++ {
		if _, err := repClient.SubmitFenced(s, 2, []survey.Response{*randomResponse(sv, rng, 9000+s)}, nil); err != nil {
			t.Fatalf("post-promotion write to shard %d: %v", s, err)
		}
	}
	close(stopWriters)
	wg.Wait()
	if fenced.Load() == 0 {
		t.Fatal("no writer was fenced before promotion")
	}

	m2, err := placement.Load(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < totalShards; s++ {
		if sp := m2.Placement(s); sp.Primary != repURL || sp.Epoch != 2 {
			t.Fatalf("lease promotion left placement %d = %+v", s, sp)
		}
	}

	// The old primary returns, loads the current manifest (what its
	// watcher does before it serves), and demotes cleanly: every write
	// bounces off the fence — the stale epoch-1 stamp a pre-failover
	// frontend would send, the unstamped legacy form, and even a fresh
	// epoch-2 stamp, because a demoted shard holds no writes at all.
	nodes[0].revive()
	nodes[0].node.ApplyManifest(m2, nodes[0].url)
	for s := 0; s < totalShards; s++ {
		if !nodes[0].node.Demoted(s) {
			t.Fatalf("shard %d not demoted by the new manifest", s)
		}
	}
	for _, epoch := range []uint64{1, 0, 2} {
		_, err := nodes[0].client.SubmitFenced(0, epoch, []survey.Response{*randomResponse(sv, rng, 9500)}, nil)
		if !errors.Is(err, shardrpc.ErrFenced) {
			t.Fatalf("old primary accepted a write (epoch %d): %v", epoch, err)
		}
	}
	// Demoted ≠ dead: its shards stay readable for rejoin and audit, and
	// its health surface reports the fenced role.
	if got, err := nodes[0].client.Count(0, sv.ID); err != nil || got == 0 {
		t.Fatalf("demoted node count = %d, %v", got, err)
	}
	nh := getHealth(t, nodes[0].url)
	for _, sh := range nh.Shards {
		if sh.Role != "fenced" {
			t.Fatalf("demoted node health row = %+v", sh)
		}
	}
}

// TestBootstrapRetry: a replica whose bootstrap scan hits transient
// transport failures retries with backoff instead of giving up with a
// sticky per-shard error.
func TestBootstrapRetry(t *testing.T) {
	const shards = 2
	stores := make([]store.Store, shards)
	for i := range stores {
		stores[i] = store.NewMem()
	}
	// JournalRetain 5 guarantees the replica must bootstrap from scans.
	local, err := shardset.NewLocal(stores, shardset.LocalOptions{Journal: true, JournalRetain: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { local.Close() })
	nsrv, err := New(Config{Router: local, Schedule: core.DefaultSchedule(), RequesterToken: testToken, Role: "node"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nsrv.Close() })
	node, err := NewNode(nsrv, shards)
	if err != nil {
		t.Fatal(err)
	}
	h, err := shardrpc.NewHandler(node, testToken)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first two scan requests at the transport level; pass
	// everything else through.
	var scanFails atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/scan") && scanFails.Add(1) <= 2 {
			deadHandler{}.ServeHTTP(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
	nts := httptest.NewServer(flaky)
	t.Cleanup(nts.Close)

	sv := clusterTestSurvey()
	if err := local.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	const n = 50 // far past the retain bound
	for i := 0; i < n; i++ {
		if _, err := local.Append(randomResponse(sv, rng, i)); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := NewReplica(ReplicaConfig{
		Client:         shardrpc.NewClient(nts.URL, testToken, nil),
		Schedule:       core.DefaultSchedule(),
		RequesterToken: testToken,
		PollInterval:   time.Hour,
		FollowerID:     "retry-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	rep.SyncOnce()

	if scanFails.Load() < 2 {
		t.Fatalf("flaky proxy saw %d scans — bootstrap never hit it", scanFails.Load())
	}
	rts := httptest.NewServer(rep)
	t.Cleanup(rts.Close)
	compareAggregate(t, getAggregate(t, rts, sv.ID), referenceAggregate(t, local, sv))
	for _, sh := range rep.replicationInfo().Shards {
		if sh.LagRecords != 0 || sh.LastError != "" {
			t.Fatalf("shard %d after flaky bootstrap = %+v", sh.Shard, sh)
		}
	}
}

// TestAdminHealthRoles: the health endpoint answers without auth on
// every role with per-shard rows.
func TestAdminHealthRoles(t *testing.T) {
	// Standalone: one store, every shard an unfenced primary.
	st := store.NewMem()
	srv, err := New(Config{Store: st, Schedule: core.DefaultSchedule(), RequesterToken: testToken})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	info := getHealth(t, ts.URL)
	if info.Status != "ok" || len(info.Shards) == 0 {
		t.Fatalf("standalone health = %+v", info)
	}
	for _, sh := range info.Shards {
		if sh.Role != "primary" {
			t.Fatalf("standalone shard row = %+v", sh)
		}
	}

	// Node with a manifest applied: fenced shards are reported as such.
	nodes := newHANodes(t, 1, 2)
	m, err := placement.RoundRobin(2, []string{"http://elsewhere"})
	if err != nil {
		t.Fatal(err)
	}
	m.Shards[0].Primary = nodes[0].url // shard 0 ours, shard 1 fenced away
	nodes[0].node.ApplyManifest(m, nodes[0].url)
	ninfo := getHealth(t, nodes[0].url)
	roles := map[int]string{}
	for _, sh := range ninfo.Shards {
		roles[sh.Shard] = sh.Role
	}
	if roles[0] != "primary" || roles[1] != "fenced" {
		t.Fatalf("node roles = %v", roles)
	}
}
