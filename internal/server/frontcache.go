// The frontend partial cache: what closes the cluster read gap.
//
// Without it, every merged read fans one full PartialState snapshot RPC
// out per shard (~0.8ms against ~0.06ms for a standalone read — the
// 12x gap BENCH_cluster.json measured after PR 4). With it, a frontend
// keeps each survey's per-shard accumulators and the cursor vector they
// cover; a read within the TTL whose cursor vector satisfies every
// read-your-writes floor is served from the cached merge with zero
// RPCs, and a revalidation ships only conditional requests — the node
// answers not-modified (no state) or a delta fold of the responses past
// the frontend's cursor, which the frontend Merges into its cached copy
// instead of replacing it.
//
// Staleness contract: submits routed through THIS frontend are always
// visible to its reads (the submit ack carries the per-shard seq, which
// becomes the shard's expected-cursor floor and forces revalidation).
// Submits routed through other frontends become visible within the TTL.
// A cold cache (or a disabled one, FrontendCacheTTL < 0) degrades to
// the full fan-out path.
package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/aggregate"
	"loki/internal/shardrpc"
	"loki/internal/survey"
)

// DefaultFrontendCacheTTL is the revalidation bound a frontend uses
// when Config.FrontendCacheTTL is zero: long enough to collapse read
// storms on a hot survey into ~4 revalidations per second, short
// enough that cross-frontend staleness stays well under what a human
// requester can perceive.
const DefaultFrontendCacheTTL = 250 * time.Millisecond

// frontCache is a per-frontend cache of node partials, keyed by survey.
type frontCache struct {
	ttl time.Duration

	mu      sync.Mutex
	surveys map[string]*cachedSurvey
}

func newFrontCache(ttl time.Duration) *frontCache {
	return &frontCache{ttl: ttl, surveys: make(map[string]*cachedSurvey)}
}

// cachedSurvey is one survey's cached read state: the per-shard
// accumulators, the cursor vector they cover, and the finalized merge
// of exactly that state.
type cachedSurvey struct {
	surveyID string

	// mu is the entry's singleflight: the holder may revalidate (fan
	// conditional RPCs out to the nodes) and rebuild the merge.
	// Concurrent readers of a stale entry queue here and find it fresh
	// when their turn comes — one fan-out serves them all.
	mu sync.Mutex
	// fp is the definition fingerprint every cached accumulator is
	// folded under.
	fp string
	// parts[i] is shard i's cached accumulator, covering exactly seqs
	// [1, cursors[i]]. nil until the first successful fill.
	parts   []*aggregate.Accumulator
	cursors []uint64
	// est is the finalized merge of parts at cursors — what a cache hit
	// returns. Rebuilt (never mutated) on every revalidation, so a
	// previously returned estimate is immune to later refreshes.
	est *aggregate.SurveyEstimate
	// fetched is when the cursor vector was last validated against the
	// nodes; the TTL ages against it.
	fetched time.Time

	// expected[i] is shard i's read-your-writes floor: the highest
	// per-shard seq a submit through this frontend has been acked at.
	// A read whose cached cursors[i] is below it must revalidate, TTL
	// or not. Written by the submit path without the entry lock.
	expected []atomic.Uint64

	// degraded lists shards the last revalidation could not reach (nor
	// any of their replicas): cold ones contribute nothing to est, warm
	// ones contribute their last fetched state. Nil when the last
	// revalidation covered every shard.
	degraded []int

	// lastRead (unix nanos) marks the entry hot for the background
	// refresher.
	lastRead atomic.Int64

	// Counters for the admin surface.
	hits, misses, deltas, notModified, fulls atomic.Int64
}

// entry returns the survey's cache entry, creating it (or replacing a
// stale-fingerprint one) as needed. shards is the router's shard count.
func (c *frontCache) entry(sv *survey.Survey, shards int) *cachedSurvey {
	fp := sv.Fingerprint()
	c.mu.Lock()
	defer c.mu.Unlock()
	if cs, ok := c.surveys[sv.ID]; ok && cs.fp == fp {
		return cs
	}
	cs := &cachedSurvey{
		surveyID: sv.ID,
		fp:       fp,
		cursors:  make([]uint64, shards),
		expected: make([]atomic.Uint64, shards),
	}
	c.surveys[sv.ID] = cs
	return cs
}

// drop discards a survey's entry (republish, admin accumulator clear).
func (c *frontCache) drop(surveyID string) {
	c.mu.Lock()
	delete(c.surveys, surveyID)
	c.mu.Unlock()
}

// noteSubmit raises a shard's read-your-writes floor after a submit
// through this frontend was acked at per-shard seq. A survey with no
// cache entry needs nothing — its next read starts cold and fetches
// fresh state that necessarily includes the submit.
func (c *frontCache) noteSubmit(surveyID string, shard int, seq uint64) {
	c.mu.Lock()
	cs := c.surveys[surveyID]
	c.mu.Unlock()
	if cs == nil || shard < 0 || shard >= len(cs.expected) {
		return
	}
	for {
		cur := cs.expected[shard].Load()
		if seq <= cur || cs.expected[shard].CompareAndSwap(cur, seq) {
			return
		}
	}
}

// freshLocked reports whether the entry can answer a read without
// talking to any node: filled, within the TTL, and not behind any
// shard's read-your-writes floor. Caller holds cs.mu.
func (cs *cachedSurvey) freshLocked(ttl time.Duration) bool {
	if cs.est == nil || time.Since(cs.fetched) >= ttl {
		return false
	}
	for i := range cs.expected {
		if cs.cursors[i] < cs.expected[i].Load() {
			return false
		}
	}
	return true
}

// cachedRemoteEstimate is the cached frontend read path. A fresh entry
// returns the cached merge directly; a stale one revalidates under the
// entry's singleflight lock — concurrent readers of the same survey
// wait for one fan-out instead of issuing their own.
func (s *Server) cachedRemoteEstimate(sv *survey.Survey) (*aggregate.SurveyEstimate, []int, error) {
	cs := s.cache.entry(sv, s.router.Shards())
	cs.lastRead.Store(time.Now().UnixNano())
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.freshLocked(s.cache.ttl) {
		cs.hits.Add(1)
		return cs.est, append([]int(nil), cs.degraded...), nil
	}
	cs.misses.Add(1)
	if err := s.revalidateLocked(sv, cs); err != nil {
		return nil, nil, err
	}
	return cs.est, append([]int(nil), cs.degraded...), nil
}

// revalidateLocked brings the entry current: one conditional RPC per
// shard in parallel (carrying the cursor the cache already holds), the
// answers applied — nothing for not-modified, a Merge for a delta, a
// replacement for a full snapshot — and the finalized merge rebuilt.
// Caller holds cs.mu.
func (s *Server) revalidateLocked(sv *survey.Survey, cs *cachedSurvey) error {
	n := len(cs.cursors)
	fetched := make([]*shardrpc.Partial, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			have := uint64(0)
			if cs.parts != nil {
				have = cs.cursors[i]
			}
			fetched[i], errs[i] = s.partials.PartialSince(i, sv.ID, have)
		}(i)
	}
	wg.Wait()
	// A shard whose fetch failed in transport (node down, replicas too)
	// degrades instead of failing the read: a warm cached part keeps
	// serving its last state, a cold one is merged around and marked.
	// Errors the owner answered still fail whole — see
	// mergedRemoteEstimate.
	var degraded []int
	reached := 0
	for i, err := range errs {
		switch {
		case err == nil:
			reached++
		case shardrpc.IsTransportError(err):
			degraded = append(degraded, i)
		default:
			return fmt.Errorf("shard %d partial: %w", i, err)
		}
	}
	if reached == 0 {
		return fmt.Errorf("every shard unreachable (first: shard %d: %w)", degraded[0], errs[degraded[0]])
	}
	if len(degraded) > 0 {
		s.logf("cached read of %q degraded: shards %v unreachable", sv.ID, degraded)
	}
	if cs.parts == nil {
		cs.parts = make([]*aggregate.Accumulator, n)
	}
	for i, p := range fetched {
		if p == nil {
			continue // degraded; cs.parts[i] (possibly nil) stands in
		}
		if p.Fingerprint != cs.fp {
			// A republish is still propagating: the node folded under a
			// different definition than the frontend resolved. Drop the
			// entry — its state mixes epochs — and refuse, exactly like
			// the uncached path.
			s.cache.drop(sv.ID)
			return fmt.Errorf("shard %d partial folded under definition %s, frontend has %s (republish in flight?)",
				i, p.Fingerprint, cs.fp)
		}
		switch {
		case p.NotModified:
			cs.notModified.Add(1)
		case p.Delta:
			if p.From != cs.cursors[i] || cs.parts[i] == nil {
				// A delta over a base we do not hold cannot merge; the
				// node should never produce one, so treat it as a
				// protocol bug rather than guessing.
				return fmt.Errorf("shard %d: delta from %d against cached cursor %d", i, p.From, cs.cursors[i])
			}
			delta, err := aggregate.RestoreAccumulator(s.cfg.Schedule, sv, p.State)
			if err != nil {
				return fmt.Errorf("shard %d delta: %w", i, err)
			}
			if err := cs.parts[i].Merge(delta); err != nil {
				return fmt.Errorf("shard %d delta: %w", i, err)
			}
			cs.cursors[i] = p.Cursor
			cs.deltas.Add(1)
		default:
			full, err := aggregate.RestoreAccumulator(s.cfg.Schedule, sv, p.State)
			if err != nil {
				return fmt.Errorf("shard %d partial: %w", i, err)
			}
			cs.parts[i] = full
			cs.cursors[i] = p.Cursor
			cs.fulls.Add(1)
		}
	}
	merged, err := aggregate.NewAccumulator(s.cfg.Schedule, sv)
	if err != nil {
		return err
	}
	for i, part := range cs.parts {
		if part == nil {
			continue // cold degraded shard: nothing to contribute yet
		}
		if err := merged.Merge(part); err != nil {
			return fmt.Errorf("shard %d partial: %w", i, err)
		}
	}
	est, err := merged.Finalize()
	if err != nil {
		return err
	}
	cs.est = est
	cs.degraded = degraded
	cs.fetched = time.Now()
	return nil
}

// refreshLoop is the background refresher: every interval it
// revalidates the cache entries of surveys read recently, so a hot
// survey's steady-state reads are always cache hits and never block on
// node round-trips. Errors are logged and retried next tick — a node
// blip must not kill the refresher.
func (s *Server) refreshLoop(interval time.Duration) {
	defer close(s.refDone)
	// "Recently read" means within a few TTLs (at least a few ticks):
	// long enough that a survey polled at TTL pace stays hot, short
	// enough that idle surveys stop costing fan-outs.
	hotFor := 10 * s.cache.ttl
	if hotFor < 10*interval {
		hotFor = 10 * interval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.refreshHot(hotFor)
		case <-s.refStop:
			return
		}
	}
}

// refreshHot revalidates every hot cache entry that is at least half a
// TTL old (younger ones would revalidate again before expiry anyway).
func (s *Server) refreshHot(hotFor time.Duration) {
	s.cache.mu.Lock()
	entries := make([]*cachedSurvey, 0, len(s.cache.surveys))
	for _, cs := range s.cache.surveys {
		entries = append(entries, cs)
	}
	s.cache.mu.Unlock()
	now := time.Now()
	for _, cs := range entries {
		if now.Sub(time.Unix(0, cs.lastRead.Load())) > hotFor {
			continue
		}
		sv, err := s.router.Survey(cs.surveyID)
		if err != nil {
			s.logf("cache refresh %q: %v", cs.surveyID, err)
			continue
		}
		cs.mu.Lock()
		if now.Sub(cs.fetched) >= s.cache.ttl/2 {
			if err := s.revalidateLocked(sv, cs); err != nil {
				s.logf("cache refresh %q: %v", cs.surveyID, err)
			}
		}
		cs.mu.Unlock()
	}
}

// FrontendCacheSurveyInfo is one survey's cache state on the admin
// surface.
type FrontendCacheSurveyInfo struct {
	SurveyID string `json:"survey_id"`
	// Cursors is the per-shard cursor vector the cached state covers.
	Cursors []uint64 `json:"cursors"`
	// AgeMillis is how long ago the entry was last validated against
	// the nodes; -1 when never filled.
	AgeMillis float64 `json:"age_millis"`
	// Hits counts reads served from cache with zero RPCs; Misses counts
	// reads that had to revalidate (cold, TTL-expired, or behind a
	// read-your-writes floor).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Delta / NotModified / Full count per-shard conditional-fetch
	// answers by kind.
	Delta       int64 `json:"delta"`
	NotModified int64 `json:"not_modified"`
	Full        int64 `json:"full"`
}

// FrontendCacheInfo is the frontend partial cache's admin report.
type FrontendCacheInfo struct {
	TTLMillis float64 `json:"ttl_millis"`
	// Refresh reports whether the background refresher is running.
	Refresh bool                      `json:"refresh"`
	Surveys []FrontendCacheSurveyInfo `json:"surveys,omitempty"`
}

// frontendCacheInfo snapshots the cache for the admin surface; nil when
// caching is disabled (or this server is not a frontend).
func (s *Server) frontendCacheInfo() *FrontendCacheInfo {
	if s.cache == nil {
		return nil
	}
	info := &FrontendCacheInfo{
		TTLMillis: float64(s.cache.ttl) / 1e6,
		Refresh:   s.refStop != nil,
	}
	s.cache.mu.Lock()
	entries := make([]*cachedSurvey, 0, len(s.cache.surveys))
	for _, cs := range s.cache.surveys {
		entries = append(entries, cs)
	}
	s.cache.mu.Unlock()
	for _, cs := range entries {
		cs.mu.Lock()
		si := FrontendCacheSurveyInfo{
			SurveyID:    cs.surveyID,
			Cursors:     append([]uint64(nil), cs.cursors...),
			AgeMillis:   -1,
			Hits:        cs.hits.Load(),
			Misses:      cs.misses.Load(),
			Delta:       cs.deltas.Load(),
			NotModified: cs.notModified.Load(),
			Full:        cs.fulls.Load(),
		}
		if cs.est != nil {
			si.AgeMillis = float64(time.Since(cs.fetched)) / 1e6
		}
		cs.mu.Unlock()
		info.Surveys = append(info.Surveys, si)
	}
	sort.Slice(info.Surveys, func(i, j int) bool { return info.Surveys[i].SurveyID < info.Surveys[j].SurveyID })
	return info
}
