package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"loki/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumKahan(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %g", got)
	}
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Errorf("Sum = %g", got)
	}
	// Kahan keeps precision where naive summation loses it.
	xs := make([]float64, 0, 10_001)
	xs = append(xs, 1e16)
	for i := 0; i < 10_000; i++ {
		xs = append(xs, 1)
	}
	if got := Sum(xs); got != 1e16+10_000 {
		t.Errorf("Kahan sum = %g, want %g", got, 1e16+10_000)
	}
}

func TestMeanVariance(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Mean(nil) did not return ErrEmpty")
	}
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("Mean = %g, %v", m, err)
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Error("Variance of 1 element accepted")
	}
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !almost(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %g, %v", v, err)
	}
	sd, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !almost(sd, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %g, %v", sd, err)
	}
}

func TestMedianQuantile(t *testing.T) {
	if _, err := Median(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Median(nil) did not return ErrEmpty")
	}
	med, err := Median([]float64{3, 1, 2})
	if err != nil || med != 2 {
		t.Errorf("Median = %g, %v", med, err)
	}
	med, _ = Median([]float64{4, 1, 2, 3})
	if med != 2.5 {
		t.Errorf("even Median = %g", med)
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("q<0 accepted")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Error("q NaN accepted")
	}
	q, _ := Quantile([]float64{10, 20, 30, 40, 50}, 0.25)
	if q != 20 {
		t.Errorf("Q(0.25) = %g, want 20", q)
	}
	q, _ = Quantile([]float64{10, 20}, 0.5)
	if q != 15 {
		t.Errorf("interpolated Q(0.5) = %g, want 15", q)
	}
	lo, _ := Quantile([]float64{5, 1, 9}, 0)
	hi, _ := Quantile([]float64{5, 1, 9}, 1)
	if lo != 1 || hi != 9 {
		t.Errorf("extremes = %g, %g", lo, hi)
	}
	one, _ := Quantile([]float64{7}, 0.9)
	if one != 7 {
		t.Errorf("single-element quantile = %g", one)
	}
	// Quantile must not reorder the caller's slice.
	xs := []float64{3, 1, 2}
	_, _ = Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestErrorMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 4, 3}
	r, err := RMSE(pred, truth)
	if err != nil || !almost(r, 2/math.Sqrt(3), 1e-12) {
		t.Errorf("RMSE = %g, %v", r, err)
	}
	m, err := MAE(pred, truth)
	if err != nil || !almost(m, 2.0/3, 1e-12) {
		t.Errorf("MAE = %g, %v", m, err)
	}
	x, err := MaxAbsError(pred, truth)
	if err != nil || x != 2 {
		t.Errorf("MaxAbsError = %g, %v", x, err)
	}
	if _, err := RMSE(pred, truth[:2]); err == nil {
		t.Error("length mismatch accepted by RMSE")
	}
	if _, err := MAE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("MAE(nil) did not return ErrEmpty")
	}
	if _, err := MaxAbsError(pred, truth[:2]); err == nil {
		t.Error("length mismatch accepted by MaxAbsError")
	}
}

func TestMomentsMatchBatch(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := int(seed%100) + 2
		xs := make([]float64, n)
		var m Moments
		for i := range xs {
			xs[i] = r.Normal(5, 3)
			m.Add(xs[i])
		}
		bm, _ := Mean(xs)
		bv, _ := Variance(xs)
		return m.N() == n && almost(m.Mean(), bm, 1e-9) && almost(m.Variance(), bv, 1e-9)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMomentsMerge(t *testing.T) {
	r := rng.New(9)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Normal(0, 2)
	}
	var whole, left, right Moments
	whole.AddAll(xs)
	left.AddAll(xs[:200])
	right.AddAll(xs[200:])
	left.Merge(right)
	if !almost(left.Mean(), whole.Mean(), 1e-9) || !almost(left.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merge mismatch: mean %g vs %g, var %g vs %g",
			left.Mean(), whole.Mean(), left.Variance(), whole.Variance())
	}
	// Merging into/from empty.
	var empty Moments
	empty.Merge(whole)
	if empty.N() != whole.N() {
		t.Error("merge into empty lost data")
	}
	before := whole.N()
	whole.Merge(Moments{})
	if whole.N() != before {
		t.Error("merge from empty changed state")
	}
}

func TestMomentsStdErr(t *testing.T) {
	var m Moments
	if m.StdErr() != 0 {
		t.Error("empty StdErr nonzero")
	}
	m.AddAll([]float64{1, 2, 3, 4})
	want := m.StdDev() / 2
	if !almost(m.StdErr(), want, 1e-12) {
		t.Errorf("StdErr = %g, want %g", m.StdErr(), want)
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("max == min accepted")
	}
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-5, 0, 1.9, 2, 9.99, 10, 15} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	// Bins: [-5,0,1.9]→bin0; [2]→bin1; [9.99,10,15]→bin4.
	want := []int{3, 1, 0, 0, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("BinCenter(0) = %g", c)
	}
	fr := h.Fractions()
	if !almost(fr[0], 3.0/7, 1e-12) {
		t.Errorf("fraction[0] = %g", fr[0])
	}
	empty, _ := NewHistogram(0, 1, 2)
	for _, f := range empty.Fractions() {
		if f != 0 {
			t.Error("empty histogram fraction nonzero")
		}
	}
}

func TestNormalCDF(t *testing.T) {
	if !almost(NormalCDF(0), 0.5, 1e-12) {
		t.Errorf("Φ(0) = %g", NormalCDF(0))
	}
	if !almost(NormalCDF(1.959963985), 0.975, 1e-6) {
		t.Errorf("Φ(1.96) = %g", NormalCDF(1.959963985))
	}
	if !almost(NormalCDF(-1)+NormalCDF(1), 1, 1e-12) {
		t.Error("Φ not symmetric")
	}
}

func TestNormalQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NormalQuantile(p); err == nil {
			t.Errorf("NormalQuantile(%g) accepted", p)
		}
	}
	z, err := NormalQuantile(0.975)
	if err != nil || !almost(z, 1.959963985, 1e-6) {
		t.Errorf("Q(0.975) = %g, %v", z, err)
	}
	z, _ = NormalQuantile(0.5)
	if !almost(z, 0, 1e-9) {
		t.Errorf("Q(0.5) = %g", z)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		p := (float64(seed%9998) + 1) / 10_000 // 0.0001 .. 0.9999
		z, err := NormalQuantile(p)
		if err != nil {
			return false
		}
		return almost(NormalCDF(z), p, 1e-8)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI(t *testing.T) {
	if _, _, err := MeanCI(nil, 0.95); !errors.Is(err, ErrEmpty) {
		t.Error("empty accepted")
	}
	if _, _, err := MeanCI([]float64{1}, 0); err == nil {
		t.Error("level 0 accepted")
	}
	m, iv, err := MeanCI([]float64{5}, 0.95)
	if err != nil || m != 5 || iv.Lo != 5 || iv.Hi != 5 {
		t.Errorf("single element CI = %g %v %v", m, iv, err)
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	m, iv, err = MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(m) {
		t.Error("CI does not contain the mean")
	}
	if iv.Width() <= 0 {
		t.Error("CI has no width")
	}
	_, wide, _ := MeanCI(xs, 0.99)
	if wide.Width() <= iv.Width() {
		t.Error("99% CI not wider than 95%")
	}
}

func TestNoisyMeanCI(t *testing.T) {
	if _, err := NoisyMeanCI(0, 0, 1, 1, 0.95); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NoisyMeanCI(0, 5, -1, 1, 0.95); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := NoisyMeanCI(0, 5, 1, 1, 1); err == nil {
		t.Error("level 1 accepted")
	}
	quiet, err := NoisyMeanCI(3, 50, 0.5, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := NoisyMeanCI(3, 50, 0.5, 2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Width() <= quiet.Width() {
		t.Error("noise did not widen the CI")
	}
	big, _ := NoisyMeanCI(3, 500, 0.5, 2, 0.95)
	if big.Width() >= noisy.Width() {
		t.Error("larger n did not narrow the CI")
	}
}

func TestPoolInverseVariance(t *testing.T) {
	if _, _, err := PoolInverseVariance(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty accepted")
	}
	// Two estimates, one four times more precise.
	v, vv, err := PoolInverseVariance([]WeightedEstimate{
		{Value: 10, Variance: 1, N: 5},
		{Value: 20, Variance: 4, N: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// weights 1 and 0.25 → pooled = (10 + 5)/1.25 = 12.
	if !almost(v, 12, 1e-12) {
		t.Errorf("pooled = %g, want 12", v)
	}
	if !almost(vv, 0.8, 1e-12) {
		t.Errorf("pooled variance = %g, want 0.8", vv)
	}
	// All exact: N-weighted mean.
	v, vv, err = PoolInverseVariance([]WeightedEstimate{
		{Value: 1, Variance: 0, N: 1},
		{Value: 4, Variance: 0, N: 3},
	})
	if err != nil || vv != 0 {
		t.Fatalf("exact pool: %g, %g, %v", v, vv, err)
	}
	if !almost(v, 3.25, 1e-12) {
		t.Errorf("exact pooled = %g, want 3.25", v)
	}
	// Mixed: zero-variance entry gets the smallest positive variance.
	v, _, err = PoolInverseVariance([]WeightedEstimate{
		{Value: 0, Variance: 0, N: 10},
		{Value: 10, Variance: 2, N: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v, 5, 1e-12) {
		t.Errorf("mixed pooled = %g, want 5 (equal effective weights)", v)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	r := rng.New(33)
	if _, err := BootstrapMeanCI(nil, 100, 0.95, r); !errors.Is(err, ErrEmpty) {
		t.Error("empty accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 1, 0.95, r); err == nil {
		t.Error("1 resample accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 100, 0, r); err == nil {
		t.Error("level 0 accepted")
	}
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Normal(7, 2)
	}
	iv, err := BootstrapMeanCI(xs, 500, 0.95, r)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := Mean(xs)
	if !iv.Contains(m) {
		t.Errorf("bootstrap CI %v does not contain sample mean %g", iv, m)
	}
}
