package stats

import (
	"fmt"
	"math"
)

// TTestResult is the outcome of a two-sample Welch t-test.
type TTestResult struct {
	// T is the test statistic.
	T float64
	// DF is the Welch–Satterthwaite effective degrees of freedom.
	DF float64
	// P is the two-sided p-value.
	P float64
}

// Significant reports whether the difference is significant at the given
// level (e.g. 0.05).
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// WelchT performs a two-sample Welch t-test (unequal variances) on the
// hypothesis that xs and ys have the same mean. The Fig. 2 analysis uses
// it to confirm that privacy-bin deviations from the overall mean are
// sampling noise rather than systematic bias: at α = 0.05 roughly 5% of
// bins should flag, no more.
func WelchT(xs, ys []float64) (TTestResult, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return TTestResult{}, fmt.Errorf("stats: welch t-test needs >= 2 observations per sample, got %d and %d",
			len(xs), len(ys))
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	vx, _ := Variance(xs)
	vy, _ := Variance(ys)
	nx, ny := float64(len(xs)), float64(len(ys))
	sx, sy := vx/nx, vy/ny
	se := math.Sqrt(sx + sy)
	if se == 0 {
		// Identical constants: no evidence of difference if means equal,
		// certain difference otherwise.
		if mx == my {
			return TTestResult{T: 0, DF: nx + ny - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign2(mx - my)), DF: nx + ny - 2, P: 0}, nil
	}
	t := (mx - my) / se
	df := (sx + sy) * (sx + sy) / (sx*sx/(nx-1) + sy*sy/(ny-1))
	p := 2 * StudentTail(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

func sign2(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// StudentTail returns P(T > t) for a Student-t variable with ν degrees
// of freedom, t >= 0.
func StudentTail(t, nu float64) float64 {
	if t < 0 {
		return 1 - StudentTail(-t, nu)
	}
	if nu <= 0 || math.IsNaN(t) {
		return math.NaN()
	}
	// P(T > t) = I_{ν/(ν+t²)}(ν/2, 1/2) / 2.
	x := nu / (nu + t*t)
	return 0.5 * RegIncBeta(nu/2, 0.5, x)
}

// RegIncBeta computes the regularized incomplete beta function
// I_x(a, b) by the continued-fraction expansion (Numerical Recipes
// betacf), accurate to ~1e-12 for the parameter ranges used here.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case math.IsNaN(a) || math.IsNaN(b) || a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf is the Lentz continued fraction for the incomplete beta.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		mf := float64(m)
		m2 := 2 * mf
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
