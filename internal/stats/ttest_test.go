package stats

import (
	"math"
	"testing"

	"loki/internal/rng"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x float64
		want    float64
	}{
		{1, 1, 0.5, 0.5},     // uniform CDF
		{1, 1, 0.25, 0.25},   // uniform CDF
		{2, 1, 0.5, 0.25},    // x²
		{1, 2, 0.5, 0.75},    // 1-(1-x)²
		{0.5, 0.5, 0.5, 0.5}, // arcsine distribution, symmetric
		{5, 3, 1, 1},
		{5, 3, 0, 0},
	}
	for _, c := range cases {
		if got := RegIncBeta(c.a, c.b, c.x); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("I_%g(%g,%g) = %.12f, want %g", c.x, c.a, c.b, got, c.want)
		}
	}
	if !math.IsNaN(RegIncBeta(-1, 1, 0.5)) {
		t.Error("negative a accepted")
	}
}

func TestStudentTailKnownValues(t *testing.T) {
	cases := []struct {
		t, nu, want, tol float64
	}{
		// Classic t-table values: P(T > t) = 0.025.
		{12.706, 1, 0.025, 2e-4},
		{2.228, 10, 0.025, 2e-4},
		{2.086, 20, 0.025, 2e-4},
		// P(T > t) = 0.05.
		{1.812, 10, 0.05, 2e-4},
		{1.725, 20, 0.05, 2e-4},
		// Large ν approaches the normal distribution.
		{1.959964, 1e6, 0.025, 1e-4},
		{0, 10, 0.5, 1e-12},
	}
	for _, c := range cases {
		if got := StudentTail(c.t, c.nu); math.Abs(got-c.want) > c.tol {
			t.Errorf("StudentTail(%g, %g) = %.6f, want %.3f", c.t, c.nu, got, c.want)
		}
	}
	// Symmetry: P(T > -t) = 1 - P(T > t).
	if got := StudentTail(-2, 10) + StudentTail(2, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("tail symmetry broken: %g", got)
	}
}

func TestWelchTValidation(t *testing.T) {
	if _, err := WelchT([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("1-element sample accepted")
	}
	if _, err := WelchT(nil, nil); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestWelchTIdenticalMeans(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 200)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = r.Normal(5, 1)
	}
	for i := range ys {
		ys[i] = r.Normal(5, 2)
	}
	res, err := WelchT(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.001 {
		t.Errorf("same-mean samples flagged with p=%g", res.P)
	}
	if res.DF < 100 {
		t.Errorf("implausible df %g", res.DF)
	}
}

func TestWelchTDifferentMeans(t *testing.T) {
	r := rng.New(6)
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Normal(5, 1)
		ys[i] = r.Normal(6, 1)
	}
	res, err := WelchT(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.001) {
		t.Errorf("1-sigma mean shift not detected: p=%g", res.P)
	}
	if res.T > 0 {
		t.Errorf("t statistic sign wrong: %g", res.T)
	}
}

func TestWelchTConstantSamples(t *testing.T) {
	same, err := WelchT([]float64{2, 2, 2}, []float64{2, 2})
	if err != nil || same.P != 1 {
		t.Errorf("identical constants: %+v, %v", same, err)
	}
	diff, err := WelchT([]float64{2, 2, 2}, []float64{3, 3})
	if err != nil || diff.P != 0 {
		t.Errorf("different constants: %+v, %v", diff, err)
	}
}

// TestWelchTFalsePositiveRate: under the null, the 5% test flags ~5% of
// repetitions.
func TestWelchTFalsePositiveRate(t *testing.T) {
	r := rng.New(7)
	const reps = 2000
	flagged := 0
	for rep := 0; rep < reps; rep++ {
		xs := make([]float64, 30)
		ys := make([]float64, 40)
		for i := range xs {
			xs[i] = r.Normal(0, 1)
		}
		for i := range ys {
			ys[i] = r.Normal(0, 1.5)
		}
		res, err := WelchT(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			flagged++
		}
	}
	rate := float64(flagged) / reps
	if rate < 0.025 || rate > 0.085 {
		t.Errorf("false positive rate %.3f, want ≈ 0.05", rate)
	}
}
