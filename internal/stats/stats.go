// Package stats provides the statistical estimators used throughout the
// Loki reproduction: summary statistics, online moments, histograms,
// normal-distribution helpers, confidence intervals for noisy means, and
// inverse-variance pooling across privacy bins.
//
// All functions are pure and operate on float64 slices; they return errors
// rather than NaNs for degenerate inputs so callers can distinguish "empty
// bin" from "zero mean".
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"loki/internal/rng"
)

// ErrEmpty is returned by estimators that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	// Kahan summation: experiment sweeps sum thousands of noisy terms and
	// plain accumulation loses precision in the tails.
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It requires at least two observations.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: variance needs >= 2 observations, got %d", len(xs))
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Median returns the sample median.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics (type-7, the R/NumPy default).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile q=%g outside [0, 1]", q)
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	h := q * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s[lo], nil
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// RMSE returns the root-mean-square error between predictions and truth.
// The slices must be the same non-zero length.
func RMSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("stats: RMSE length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var ss float64
	for i := range pred {
		d := pred[i] - truth[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(pred))), nil
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("stats: MAE length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred)), nil
}

// MaxAbsError returns the largest absolute difference between the two
// series.
func MaxAbsError(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("stats: MaxAbsError length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var m float64
	for i := range pred {
		if d := math.Abs(pred[i] - truth[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Online moments

// Moments accumulates count, mean and variance in one pass using
// Welford's algorithm. The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// AddAll incorporates every observation in xs.
func (m *Moments) AddAll(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// Merge combines another accumulator into this one (Chan et al. parallel
// variance formula), enabling divide-and-conquer accumulation.
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	mean := m.mean + d*float64(o.n)/float64(n)
	m2 := m.m2 + o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.n, m.mean, m.m2 = n, mean, m2
}

// N returns the number of observations.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean (0 if empty).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance; it returns 0 until two
// observations have been added.
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// StdErr returns the standard error of the mean.
func (m *Moments) StdErr() float64 {
	if m.n == 0 {
		return 0
	}
	return m.StdDev() / math.Sqrt(float64(m.n))
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram counts observations into equal-width bins over [Min, Max).
// Observations outside the range are clamped into the first/last bin so
// totals are preserved (survey ratings obfuscated with unbounded Gaussian
// noise routinely land outside the nominal scale).
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram creates a histogram with the given number of bins over
// [min, max). It returns an error if bins < 1 or max <= min.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", bins)
	}
	if !(max > min) {
		return nil, fmt.Errorf("stats: histogram needs max > min, got [%g, %g)", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.Counts)) * (x - h.Min) / (h.Max - h.Min))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + w*(float64(i)+0.5)
}

// Fractions returns each bin's share of the total (all zeros if empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// ---------------------------------------------------------------------------
// Normal distribution helpers

// NormalCDF returns P(Z <= x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the standard normal quantile (inverse CDF) at
// probability p in (0, 1), using the Beasley-Springer-Moro refinement of
// the rational approximation (absolute error below 1e-9 over the full
// range after one Newton step).
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: normal quantile p=%g outside (0, 1)", p)
	}
	x := acklamQuantile(p)
	// One Newton-Raphson refinement using the exact CDF/PDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x, nil
}

// acklamQuantile is Peter Acklam's rational approximation to the normal
// quantile (relative error < 1.15e-9).
func acklamQuantile(p float64) float64 {
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// ---------------------------------------------------------------------------
// Confidence intervals and pooling

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies inside the interval (inclusive).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// MeanCI returns the normal-approximation confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95).
func MeanCI(xs []float64, level float64) (mean float64, iv Interval, err error) {
	if len(xs) == 0 {
		return 0, Interval{}, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return 0, Interval{}, fmt.Errorf("stats: confidence level %g outside (0, 1)", level)
	}
	mean, _ = Mean(xs)
	if len(xs) == 1 {
		return mean, Interval{Lo: mean, Hi: mean}, nil
	}
	sd, _ := StdDev(xs)
	z, err := NormalQuantile(0.5 + level/2)
	if err != nil {
		return 0, Interval{}, err
	}
	half := z * sd / math.Sqrt(float64(len(xs)))
	return mean, Interval{Lo: mean - half, Hi: mean + half}, nil
}

// NoisyMeanCI returns the confidence interval for the mean of n noisy
// observations whose added noise has known standard deviation noiseSigma
// and whose underlying answers have population standard deviation at most
// answerSigma. The two variance sources are independent, so they add.
func NoisyMeanCI(mean float64, n int, answerSigma, noiseSigma, level float64) (Interval, error) {
	if n <= 0 {
		return Interval{}, fmt.Errorf("stats: NoisyMeanCI needs n > 0, got %d", n)
	}
	if answerSigma < 0 || noiseSigma < 0 {
		return Interval{}, fmt.Errorf("stats: negative sigma (answer=%g, noise=%g)", answerSigma, noiseSigma)
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %g outside (0, 1)", level)
	}
	z, err := NormalQuantile(0.5 + level/2)
	if err != nil {
		return Interval{}, err
	}
	se := math.Sqrt((answerSigma*answerSigma + noiseSigma*noiseSigma) / float64(n))
	return Interval{Lo: mean - z*se, Hi: mean + z*se}, nil
}

// WeightedEstimate is one estimate with its variance, used for pooling.
type WeightedEstimate struct {
	Value    float64
	Variance float64
	N        int
}

// PoolInverseVariance combines independent estimates of the same quantity
// by inverse-variance weighting, the minimum-variance unbiased linear
// combination. Estimates with non-positive variance are treated as exact
// only if all estimates are exact; otherwise they get the smallest
// positive variance present (a zero-noise privacy bin must not wipe out
// the other bins' contributions to the pooled variance).
func PoolInverseVariance(ests []WeightedEstimate) (value, variance float64, err error) {
	if len(ests) == 0 {
		return 0, 0, ErrEmpty
	}
	minPos := math.Inf(1)
	for _, e := range ests {
		if e.Variance > 0 && e.Variance < minPos {
			minPos = e.Variance
		}
	}
	if math.IsInf(minPos, 1) {
		// All exact: plain N-weighted average.
		var num, den float64
		for _, e := range ests {
			n := float64(e.N)
			if n <= 0 {
				n = 1
			}
			num += e.Value * n
			den += n
		}
		return num / den, 0, nil
	}
	var wSum, wv float64
	for _, e := range ests {
		v := e.Variance
		if v <= 0 {
			v = minPos
		}
		w := 1 / v
		wSum += w
		wv += w * e.Value
	}
	return wv / wSum, 1 / wSum, nil
}

// ---------------------------------------------------------------------------
// Bootstrap

// BootstrapMeanCI returns a percentile bootstrap confidence interval for
// the mean of xs with the given number of resamples.
func BootstrapMeanCI(xs []float64, resamples int, level float64, r *rng.RNG) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, ErrEmpty
	}
	if resamples < 2 {
		return Interval{}, fmt.Errorf("stats: bootstrap needs >= 2 resamples, got %d", resamples)
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %g outside (0, 1)", level)
	}
	means := make([]float64, resamples)
	for b := 0; b < resamples; b++ {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[b] = sum / float64(len(xs))
	}
	alpha := (1 - level) / 2
	lo, err := Quantile(means, alpha)
	if err != nil {
		return Interval{}, err
	}
	hi, err := Quantile(means, 1-alpha)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Lo: lo, Hi: hi}, nil
}
