package blockio

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// Writer appends records to a blockio file. It buffers records into an
// open block and cuts the block — compress, checksum, frame, hand to
// the buffered file writer — when the block reaches DefaultBlockBytes
// or on Flush. Nothing reaches the OS before Flush, and nothing is
// durable before Sync, mirroring the bufio+fsync discipline of the
// JSON-lines logs it replaces. Writers are not safe for concurrent use;
// every adopting subsystem already serializes its appends.
type Writer struct {
	f  *os.File
	bw *bufio.Writer

	comp *flate.Writer
	cbuf bytes.Buffer // compressed-block scratch
	raw  []byte       // open block: record envelopes, uncompressed

	off      int64 // bytes handed to bw (header + sealed frames)
	firstSeq uint64
	count    int
	nextSeq  uint64
	index    []BlockMeta
	sealable bool
	sealed   bool
	err      error
}

// NewWriter starts a fresh blockio file on f (which must be empty and
// positioned at offset 0) with record seqs starting at firstSeq.
// Seqs are 1-based positions by convention: pass 1 for a new log.
func NewWriter(f *os.File, firstSeq uint64) (*Writer, error) {
	w := &Writer{
		f:        f,
		bw:       bufio.NewWriterSize(f, 1<<16),
		comp:     newFlateWriter(),
		nextSeq:  firstSeq,
		sealable: true,
	}
	if _, err := w.bw.Write(header()); err != nil {
		return nil, fmt.Errorf("blockio: write header: %w", err)
	}
	w.off = headerSize
	return w, nil
}

// NewWriterAt resumes appending to an unsealed blockio file: f must be
// positioned at off, the current end of fully written frames (the
// caller got both from a repairing Replay). nextSeq continues the
// file's record numbering. A resumed writer cannot Seal — it does not
// know the offsets of the blocks already on disk — which is fine for
// the logs that resume (file store, checkpoints): they are replayed
// whole and never seek. With off == 0 this is NewWriter on a fresh file.
func NewWriterAt(f *os.File, off int64, nextSeq uint64) (*Writer, error) {
	if off == 0 {
		return NewWriter(f, nextSeq)
	}
	if off < headerSize {
		return nil, fmt.Errorf("blockio: resume offset %d inside the header", off)
	}
	return &Writer{
		f:       f,
		bw:      bufio.NewWriterSize(f, 1<<16),
		comp:    newFlateWriter(),
		off:     off,
		nextSeq: nextSeq,
	}, nil
}

func newFlateWriter() *flate.Writer {
	// BestSpeed: the payloads are JSON, which deflates well even at the
	// fastest setting, and this sits on the group-commit hot path.
	fw, err := flate.NewWriter(nil, flate.BestSpeed)
	if err != nil {
		panic(err) // only fires on an invalid level constant
	}
	return fw
}

// Append buffers one record into the open block and returns its seq.
// The payload is copied; callers may reuse the slice.
func (w *Writer) Append(payload []byte) (uint64, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.sealed {
		return 0, errors.New("blockio: append after seal")
	}
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("blockio: record of %d bytes exceeds the %d limit", len(payload), maxRecordBytes)
	}
	if w.count == 0 {
		w.firstSeq = w.nextSeq
	}
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(payload)))
	w.raw = append(w.raw, scratch[:n]...)
	w.raw = binary.LittleEndian.AppendUint32(w.raw, checksum(payload))
	w.raw = append(w.raw, payload...)
	seq := w.nextSeq
	w.nextSeq++
	w.count++
	if len(w.raw) >= DefaultBlockBytes {
		if err := w.cutBlock(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// cutBlock compresses and frames the open block into the buffered file
// writer.
func (w *Writer) cutBlock() error {
	if w.count == 0 {
		return nil
	}
	fail := func(err error) error {
		w.err = err
		return err
	}
	w.cbuf.Reset()
	w.comp.Reset(&w.cbuf)
	if _, err := w.comp.Write(w.raw); err != nil {
		return fail(fmt.Errorf("blockio: compress block: %w", err))
	}
	if err := w.comp.Close(); err != nil {
		return fail(fmt.Errorf("blockio: compress block: %w", err))
	}
	comp := w.cbuf.Bytes()
	var hdr [4*binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], w.firstSeq)
	n += binary.PutUvarint(hdr[n:], uint64(w.count))
	n += binary.PutUvarint(hdr[n:], uint64(len(w.raw)))
	n += binary.PutUvarint(hdr[n:], uint64(len(comp)))
	binary.LittleEndian.PutUint32(hdr[n:], checksum(comp))
	n += 4
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		return fail(fmt.Errorf("blockio: write block frame: %w", err))
	}
	if _, err := w.bw.Write(comp); err != nil {
		return fail(fmt.Errorf("blockio: write block frame: %w", err))
	}
	w.index = append(w.index, BlockMeta{Offset: w.off, FirstSeq: w.firstSeq, Count: w.count})
	w.off += int64(n + len(comp))
	w.raw = w.raw[:0]
	w.count = 0
	return nil
}

// Flush cuts the open block and pushes every buffered byte to the OS —
// the group-commit boundary. Durability still needs Sync.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.cutBlock(); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("blockio: flush: %w", err)
		return w.err
	}
	return nil
}

// Sync fsyncs the underlying file.
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("blockio: sync: %w", err)
		return w.err
	}
	return nil
}

// Seal flushes, appends the block index and footer, and fsyncs: the
// file is immutable afterwards and indexed scans can seek into it.
func (w *Writer) Seal() error {
	if w.err != nil {
		return w.err
	}
	if w.sealed {
		return nil
	}
	if !w.sealable {
		return errors.New("blockio: a resumed writer cannot seal")
	}
	if err := w.cutBlock(); err != nil {
		return err
	}
	fail := func(err error) error {
		w.err = err
		return err
	}
	indexOff := w.off
	var idx []byte
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(w.index)))
	idx = append(idx, scratch[:n]...)
	for _, bm := range w.index {
		n = binary.PutUvarint(scratch[:], uint64(bm.Offset))
		idx = append(idx, scratch[:n]...)
		n = binary.PutUvarint(scratch[:], bm.FirstSeq)
		idx = append(idx, scratch[:n]...)
		n = binary.PutUvarint(scratch[:], uint64(bm.Count))
		idx = append(idx, scratch[:n]...)
	}
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(indexOff))
	binary.LittleEndian.PutUint32(foot[8:], uint32(len(idx)))
	binary.LittleEndian.PutUint32(foot[12:], checksum(idx))
	copy(foot[16:], footMagic)
	if _, err := w.bw.Write(idx); err != nil {
		return fail(fmt.Errorf("blockio: write index: %w", err))
	}
	if _, err := w.bw.Write(foot[:]); err != nil {
		return fail(fmt.Errorf("blockio: write footer: %w", err))
	}
	if err := w.bw.Flush(); err != nil {
		return fail(fmt.Errorf("blockio: flush seal: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return fail(fmt.Errorf("blockio: sync seal: %w", err))
	}
	w.off = indexOff + int64(len(idx)) + footerSize
	w.sealed = true
	return nil
}

// Close flushes buffered bytes and closes the file. It does not fsync
// (Sync or Seal first if durability is required) and does not seal.
func (w *Writer) Close() error {
	flushErr := w.Flush()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	if closeErr != nil {
		return fmt.Errorf("blockio: close: %w", closeErr)
	}
	return nil
}

// Offset returns the file size in fully framed bytes — after a Flush,
// exactly the bytes on disk (or in the OS cache).
func (w *Writer) Offset() int64 { return w.off }

// NextSeq returns the seq the next appended record will get.
func (w *Writer) NextSeq() uint64 { return w.nextSeq }
