package blockio

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzBlockRoundTrip writes fuzzer-chosen records through the Writer
// (with fuzzer-chosen flush/seal points), replays them back, and then
// replays a fuzzer-truncated copy to check the repair invariant: a
// damaged file yields a prefix of the original records, never garbage
// and never an error.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte("hello\x00world"), uint8(3), uint16(7), true)
	f.Add([]byte(`{"survey_id":"s","answers":[1,2,3]}`), uint8(50), uint16(1), false)
	f.Add([]byte{}, uint8(1), uint16(0), true)
	f.Fuzz(func(t *testing.T, seedRec []byte, nRecs uint8, cut uint16, seal bool) {
		if len(seedRec) > 1<<16 {
			t.Skip()
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.bin")
		fh, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWriter(fh, 1)
		if err != nil {
			t.Fatal(err)
		}
		n := int(nRecs)
		var want [][]byte
		for i := 0; i < n; i++ {
			// Derive a distinct record per seq from the seed.
			rec := append(binary.AppendUvarint(nil, uint64(i)), seedRec...)
			if _, err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
			want = append(want, rec)
			if i%7 == 3 {
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if seal {
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
		} else if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		// Full round trip.
		var got [][]byte
		if _, err := Replay(path, false, func(seq uint64, payload []byte) error {
			if seq != uint64(len(got)+1) {
				t.Fatalf("seq %d out of order (have %d records)", seq, len(got))
			}
			got = append(got, append([]byte(nil), payload...))
			return nil
		}); err != nil {
			t.Fatalf("replay: %v", err)
		}
		if len(got) != n {
			t.Fatalf("round trip: %d records, want %d", len(got), n)
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("record %d mismatch", i+1)
			}
		}

		// Truncate-at-arbitrary-point recovery: the repaired file must
		// replay to a prefix of the original stream.
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		cutAt := int64(cut) % (fi.Size() + 1)
		mut := filepath.Join(dir, "mut.bin")
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mut, b[:cutAt], 0o644); err != nil {
			t.Fatal(err)
		}
		var prefix int
		if _, err := Replay(mut, true, func(seq uint64, payload []byte) error {
			if seq != uint64(prefix+1) {
				t.Fatalf("repaired seq %d out of order", seq)
			}
			if int(seq) > n || !bytes.Equal(payload, want[seq-1]) {
				t.Fatalf("repaired record %d is not a prefix record", seq)
			}
			prefix++
			return nil
		}); err != nil {
			t.Fatalf("repaired replay: %v", err)
		}
	})
}
