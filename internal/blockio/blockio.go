// Package blockio is the chunked binary segment format shared by every
// persistence layer: ingest WAL segments and snapshots, the file store,
// checkpoint files, and the compressed cluster-RPC frames of the
// WAL-tail-shipping read path.
//
// A blockio file is
//
//	header | block frame ... | [index | footer]
//
// The 8-byte header carries a magic, the format version and the
// compression codec. Records are opaque payloads (the JSON encoding of
// whatever struct the subsystem logs — the disk schema is decoupled
// from Go structs) wrapped in a varint-length + CRC32C envelope and
// buffered into blocks of ~128 KiB uncompressed, each flate-compressed
// and framed as
//
//	uvarint firstSeq | uvarint count | uvarint rawLen | uvarint compLen |
//	crc32c(comp) | comp bytes
//
// Writer.Flush cuts the open block at a group-commit boundary, so the
// fsync-before-ack durability contract of the JSON-lines logs carries
// over unchanged: everything acknowledged is inside a fully framed,
// checksummed block.
//
// Seal appends a trailing block index (offset, first seq and record
// count per block) and a fixed-size footer, turning the file immutable:
// ScanFrom then seeks straight to the block containing a requested seq
// instead of replaying from byte 0. A file without a valid footer — the
// active segment, or a crash mid-seal — is scanned sequentially with
// the same torn-tail repair semantics as store.ReplayLines: a torn or
// corrupt tail is truncated back to the last fully verified block.
//
// Compression is stdlib compress/flate so the module keeps zero
// external dependencies and tier-1 builds offline.
package blockio

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

const (
	fileMagic = "LKB1" // file header magic
	footMagic = "LKX1" // footer magic (trailing, after the block index)

	formatVersion = 1

	// Compression codec ids (header byte 5).
	compFlate = 1

	headerSize = 8  // magic(4) + version(1) + compression(1) + reserved(2)
	footerSize = 20 // indexOff(8) + indexLen(4) + indexCRC(4) + magic(4)

	// DefaultBlockBytes is the uncompressed size at which an open block
	// is cut even without a Flush.
	DefaultBlockBytes = 128 << 10

	// maxRecordBytes bounds one record envelope; larger lengths in a
	// file mean corruption, not data.
	maxRecordBytes = 64 << 20
	// maxBlockBytes bounds a frame's raw and compressed lengths during
	// parsing, for the same reason.
	maxBlockBytes = 1 << 27
)

// Codec names shared by every subsystem's configuration surface.
const (
	// CodecBinary selects this package's compressed block format.
	CodecBinary = "binary"
	// CodecJSON selects the readable JSON-lines fallback.
	CodecJSON = "json"
)

// ValidCodec reports whether s names a known codec.
func ValidCodec(s string) bool { return s == CodecBinary || s == CodecJSON }

// castagnoli is the CRC32C table used for every checksum in the format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// header renders the 8-byte file header.
func header() []byte {
	h := make([]byte, headerSize)
	copy(h, fileMagic)
	h[4] = formatVersion
	h[5] = compFlate
	return h
}

// checkHeader validates the 8 header bytes.
func checkHeader(h []byte) error {
	if string(h[:4]) != fileMagic {
		return fmt.Errorf("blockio: bad magic %q", h[:4])
	}
	if h[4] != formatVersion {
		return fmt.Errorf("blockio: format version %d not supported", h[4])
	}
	if h[5] != compFlate {
		return fmt.Errorf("blockio: compression codec %d not supported", h[5])
	}
	return nil
}

// Sniff reports whether the file at path is a blockio file (starts with
// the format magic). An empty or shorter-than-header file is not: both
// codecs replay it as zero records, and the JSON path owns that case.
func Sniff(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var h [4]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return false, nil
		}
		return false, fmt.Errorf("blockio: sniff %s: %w", path, err)
	}
	return string(h[:]) == fileMagic, nil
}

// BlockMeta locates one block inside a file: its frame's byte offset,
// the seq of its first record and how many records it holds.
type BlockMeta struct {
	Offset   int64
	FirstSeq uint64
	Count    int
}
