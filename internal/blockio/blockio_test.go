package blockio

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeLog writes n records ("rec-<seq>" with some padding so blocks
// actually compress) and returns the file path. seal controls whether
// the file gets its index + footer.
func writeLog(t *testing.T, n int, seal bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "log.bin")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		seq, err := w.Append(testRecord(i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
		// Flush every few records: real adopters cut at group-commit
		// boundaries, so multi-block files arise even below the size cut.
		if i%100 == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if seal {
		if err := w.Seal(); err != nil {
			t.Fatal(err)
		}
	} else if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func testRecord(i int) []byte {
	return []byte(fmt.Sprintf(`{"seq":%d,"pad":"abcdefghijklmnopqrstuvwxyz-abcdefghijklmnopqrstuvwxyz"}`, i))
}

// collect replays every record into a map keyed by seq.
func collect(t *testing.T, path string, tornOK bool) (map[uint64][]byte, bool) {
	t.Helper()
	got := make(map[uint64][]byte)
	torn, err := Replay(path, tornOK, func(seq uint64, payload []byte) error {
		got[seq] = append([]byte(nil), payload...)
		return nil
	})
	if err != nil {
		t.Fatalf("replay %s: %v", path, err)
	}
	return got, torn
}

func TestRoundTripUnsealed(t *testing.T) {
	const n = 250
	path := writeLog(t, n, false)
	got, torn := collect(t, path, true)
	if torn {
		t.Fatal("clean file reported torn")
	}
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i := 1; i <= n; i++ {
		if !bytes.Equal(got[uint64(i)], testRecord(i)) {
			t.Fatalf("record %d mismatch: %s", i, got[uint64(i)])
		}
	}
}

func TestRoundTripSealed(t *testing.T) {
	const n = 500
	path := writeLog(t, n, true)
	got, _ := collect(t, path, false)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i := 1; i <= n; i++ {
		if !bytes.Equal(got[uint64(i)], testRecord(i)) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestSniff(t *testing.T) {
	bin := writeLog(t, 3, false)
	if ok, err := Sniff(bin); err != nil || !ok {
		t.Fatalf("sniff binary: %v %v", ok, err)
	}
	jsonPath := filepath.Join(t.TempDir(), "log.jsonl")
	if err := os.WriteFile(jsonPath, []byte(`{"a":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := Sniff(jsonPath); err != nil || ok {
		t.Fatalf("sniff json: %v %v", ok, err)
	}
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := Sniff(empty); err != nil || ok {
		t.Fatalf("sniff empty: %v %v", ok, err)
	}
}

// TestScanFromSealedSeeks: an indexed scan from a deep cursor must not
// read the whole file.
func TestScanFromSealedSeeks(t *testing.T) {
	const n = 2000
	path := writeLog(t, n, true)
	full, err := ScanFrom(path, 0, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !full.Indexed || full.Records != n {
		t.Fatalf("full scan: %+v", full)
	}
	tail, err := ScanFrom(path, n-5, func(seq uint64, payload []byte) error {
		if !bytes.Equal(payload, testRecord(int(seq))) {
			return fmt.Errorf("record %d mismatch", seq)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tail.Records != 5 {
		t.Fatalf("tail scan delivered %d records, want 5", tail.Records)
	}
	if !tail.Indexed {
		t.Fatal("tail scan did not use the index")
	}
	if tail.BlocksRead >= full.BlocksRead || tail.BytesRead*2 >= full.BytesRead {
		t.Fatalf("tail scan read %d blocks / %d bytes of a %d-block / %d-byte file — the index did not seek",
			tail.BlocksRead, tail.BytesRead, full.BlocksRead, full.BytesRead)
	}
}

// TestTornTailMidBlock: truncating the file mid-frame loses exactly the
// records of the torn block; repair truncates back to the last verified
// frame and the file replays cleanly afterwards.
func TestTornTailMidBlock(t *testing.T) {
	const n = 300 // flushed every 100 -> 3 blocks
	path := writeLog(t, n, false)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	got, torn := collect(t, path, true)
	if !torn {
		t.Fatal("mid-block truncation not reported as torn")
	}
	if len(got) != 200 {
		t.Fatalf("replayed %d records after torn tail, want 200 (two intact blocks)", len(got))
	}
	// The repair is physical: a second replay sees a clean file.
	got2, torn2 := collect(t, path, true)
	if torn2 || len(got2) != 200 {
		t.Fatalf("post-repair replay: torn=%v records=%d", torn2, len(got2))
	}
}

// TestCorruptCRCRecovered: flipping a byte inside the last block makes
// its checksum fail; repair truncates that block away and keeps every
// earlier record (truncate-and-recover, like the WAL torn-tail tests).
func TestCorruptCRCRecovered(t *testing.T) {
	const n = 300
	path := writeLog(t, n, false)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], fi.Size()-20); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{b[0] ^ 0xFF}, fi.Size()-20); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, torn := collect(t, path, true)
	if !torn {
		t.Fatal("corrupt CRC not reported as torn")
	}
	if len(got) != 200 {
		t.Fatalf("replayed %d records after CRC corruption, want 200", len(got))
	}
	for i := 1; i <= 200; i++ {
		if !bytes.Equal(got[uint64(i)], testRecord(i)) {
			t.Fatalf("surviving record %d mismatch", i)
		}
	}
}

// TestCorruptionRefusedWhenSealedSemantics: with tornOK=false a damaged
// tail is an error, not a repair.
func TestCorruptionRefusedWhenSealedSemantics(t *testing.T) {
	path := writeLog(t, 100, false)
	if err := os.Truncate(path, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path, false, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("torn frame accepted with tornOK=false")
	}
}

// TestGarbageAfterSealRepairs: bytes appended after a seal (a crashed
// writer reusing a sealed file, or hand mutilation) invalidate the
// footer; a repairing replay truncates the garbage and the index but
// keeps every record.
func TestGarbageAfterSealRepairs(t *testing.T) {
	const n = 150
	path := writeLog(t, n, true)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("{torn json garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, torn := collect(t, path, true)
	if !torn {
		t.Fatal("garbage after seal not repaired")
	}
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
}

// TestResumeAppend: a repairing replay hands back enough state to keep
// appending to an unsealed file (the file-store and checkpoint pattern).
func TestResumeAppend(t *testing.T) {
	path := writeLog(t, 120, false)
	var count uint64
	if _, err := Replay(path, true, func(seq uint64, _ []byte) error {
		count = seq
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriterAt(f, fi.Size(), count+1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 121; i <= 140; i++ {
		if _, err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, path, true)
	if len(got) != 140 {
		t.Fatalf("replayed %d records after resume, want 140", len(got))
	}
	if !bytes.Equal(got[140], testRecord(140)) {
		t.Fatal("resumed record mismatch")
	}
	if err := w.Seal(); err == nil {
		t.Fatal("resumed writer allowed Seal")
	}
}

func TestEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.bin")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(empty, true, func(uint64, []byte) error { return nil }); err != nil {
		t.Fatalf("empty file: %v", err)
	}
	// The wrapped not-exist must survive errors.Is: every adopter
	// branches on it for fresh logs.
	if _, err := Replay(filepath.Join(dir, "missing.bin"), true, func(uint64, []byte) error { return nil }); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
}

func TestWireFrameRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte(`{"seq":1,"resp":{"survey_id":"s","answers":[1,2,3]}}`), 64)
	frame, err := EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) >= len(payload) {
		t.Fatalf("frame (%d bytes) did not compress payload (%d bytes)", len(frame), len(payload))
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("frame round trip mismatch")
	}
	frame[len(frame)-1] ^= 0xFF
	if _, err := DecodeFrame(frame); err == nil {
		t.Fatal("corrupt frame decoded")
	}
}
