package blockio

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire frames: the single-block flavor of the segment format, used to
// compress cluster-RPC response bodies on the WAL-tail-shipping and
// replica-bootstrap read paths. A frame is
//
//	"LKF1" | uvarint rawLen | uvarint compLen | crc32c(comp) | comp
//
// — the same envelope discipline as an on-disk block, minus seqs (the
// JSON body inside carries its own cursor fields).

const frameMagic = "LKF1"

// FrameContentType is the HTTP content type of a wire frame; peers fall
// back to plain JSON when they see application/json instead, which is
// what a pre-blockio node answers.
const FrameContentType = "application/x-loki-frame"

// EncodeFrame compresses payload into a wire frame.
func EncodeFrame(payload []byte) ([]byte, error) {
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("blockio: frame compressor: %w", err)
	}
	if _, err := fw.Write(payload); err != nil {
		return nil, fmt.Errorf("blockio: compress frame: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("blockio: compress frame: %w", err)
	}
	out := make([]byte, 0, len(frameMagic)+2*binary.MaxVarintLen64+4+comp.Len())
	out = append(out, frameMagic...)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = binary.AppendUvarint(out, uint64(comp.Len()))
	out = binary.LittleEndian.AppendUint32(out, checksum(comp.Bytes()))
	return append(out, comp.Bytes()...), nil
}

// DecodeFrame verifies and decompresses a wire frame.
func DecodeFrame(frame []byte) ([]byte, error) {
	if len(frame) < len(frameMagic) || string(frame[:len(frameMagic)]) != frameMagic {
		return nil, errors.New("blockio: not a wire frame")
	}
	b := frame[len(frameMagic):]
	rawLen, n := binary.Uvarint(b)
	if n <= 0 || rawLen > maxBlockBytes {
		return nil, errors.New("blockio: corrupt frame length")
	}
	b = b[n:]
	compLen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)) != uint64(n)+4+compLen {
		return nil, errors.New("blockio: corrupt frame length")
	}
	b = b[n:]
	wantCRC := binary.LittleEndian.Uint32(b)
	comp := b[4:]
	if checksum(comp) != wantCRC {
		return nil, errors.New("blockio: frame checksum mismatch")
	}
	fr := flate.NewReader(bytes.NewReader(comp))
	defer fr.Close()
	raw := make([]byte, rawLen)
	if _, err := io.ReadFull(fr, raw); err != nil {
		return nil, fmt.Errorf("blockio: decompress frame: %w", err)
	}
	var one [1]byte
	if n, _ := fr.Read(one[:]); n != 0 {
		return nil, errors.New("blockio: frame longer than declared")
	}
	return raw, nil
}
