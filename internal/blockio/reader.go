package blockio

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// errTorn classifies a parse failure as "the file ends or rots here":
// an incomplete frame, a checksum mismatch, a decompression failure.
// Repairing scans truncate at the failing frame's start, exactly like
// store.ReplayLines truncates a torn trailing JSON line.
var errTorn = errors.New("blockio: torn or corrupt frame")

// Replay streams every record of the file at path to fn, in seq order —
// the blockio twin of store.ReplayLines and the crash-recovery
// primitive of every adopting log. A sealed file (valid footer) is
// scanned strictly: it was made immutable by Seal, so any damage is an
// error. An unsealed file is scanned sequentially; a torn or corrupt
// tail is truncated back to the last verified frame (and the truncation
// fsynced) when tornOK, or an error when the caller knows the file may
// not legally be torn. The returned bool reports whether a repair
// truncated anything. fn errors abort the replay and are returned
// as-is (wrapped), never treated as tears.
func Replay(path string, tornOK bool, fn func(seq uint64, payload []byte) error) (bool, error) {
	flag := os.O_RDONLY
	if tornOK {
		flag = os.O_RDWR
	}
	f, err := os.OpenFile(path, flag, 0)
	if err != nil {
		return false, fmt.Errorf("blockio: open %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return false, fmt.Errorf("blockio: stat %s: %w", path, err)
	}
	size := st.Size()
	if size == 0 {
		return false, nil
	}
	if size < headerSize {
		// The file died before its header flush; nothing was ever
		// acknowledged from it.
		if !tornOK {
			return false, fmt.Errorf("blockio: %s: torn header in sealed log", path)
		}
		return true, repairTo(f, path, 0)
	}
	var h [headerSize]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		return false, fmt.Errorf("blockio: read %s: %w", path, err)
	}
	if err := checkHeader(h[:]); err != nil {
		return false, fmt.Errorf("%w (%s)", err, path)
	}
	if index, dataEnd, ok := readIndex(f, size); ok {
		return false, scanSealed(f, path, index, dataEnd, 0, nil, fn)
	}
	return scanSequential(f, path, tornOK, fn)
}

// ScanStats describes what a ScanFrom physically did, so callers (and
// the bench) can verify that an indexed seek skipped the bulk of the
// file instead of decoding it whole.
type ScanStats struct {
	// Indexed is true when the file was sealed and the block index
	// drove the scan.
	Indexed bool
	// BlocksRead and BytesRead count the frames actually fetched and
	// decompressed.
	BlocksRead int
	BytesRead  int64
	// Records is how many records were delivered to fn.
	Records int
}

// ScanFrom streams the records with seq > fromSeq to fn. On a sealed
// file it binary-searches the block index and seeks straight to the
// block containing the cursor; on an unsealed file it falls back to a
// sequential scan, silently stopping at a torn tail (the tail was never
// acknowledged). The file is opened read-only and never repaired.
func ScanFrom(path string, fromSeq uint64, fn func(seq uint64, payload []byte) error) (ScanStats, error) {
	var stats ScanStats
	f, err := os.Open(path)
	if err != nil {
		return stats, fmt.Errorf("blockio: open %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return stats, fmt.Errorf("blockio: stat %s: %w", path, err)
	}
	size := st.Size()
	if size < headerSize {
		return stats, nil
	}
	var h [headerSize]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		return stats, fmt.Errorf("blockio: read %s: %w", path, err)
	}
	if err := checkHeader(h[:]); err != nil {
		return stats, fmt.Errorf("%w (%s)", err, path)
	}
	count := func(seq uint64, payload []byte) error {
		stats.Records++
		return fn(seq, payload)
	}
	if index, dataEnd, ok := readIndex(f, size); ok {
		stats.Indexed = true
		// Seek to the last block whose first seq is <= the first seq we
		// want (fromSeq+1); earlier blocks hold only records the cursor
		// already has.
		i := sort.Search(len(index), func(i int) bool { return index[i].FirstSeq > fromSeq+1 })
		if i > 0 {
			i--
		}
		index = index[i:]
		if len(index) > 0 {
			err = scanSealed(f, path, index, dataEnd, fromSeq, &stats, count)
		}
		return stats, err
	}
	fs, err := newFrameScanner(f, headerSize)
	if err != nil {
		return stats, err
	}
	for {
		bm, raw, frameBytes, err := fs.next()
		switch {
		case err == io.EOF:
			return stats, nil
		case errors.Is(err, errTorn):
			return stats, nil // unacknowledged tail; reads serve the committed prefix
		case err != nil:
			return stats, err
		}
		stats.BlocksRead++
		stats.BytesRead += frameBytes
		if err := walkBlock(raw, bm, fromSeq, count); err != nil {
			if errors.Is(err, errTorn) {
				return stats, nil
			}
			return stats, err
		}
	}
}

// repairTo truncates the file back to a verified prefix and fsyncs.
func repairTo(f *os.File, path string, off int64) error {
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("blockio: truncate torn tail of %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("blockio: sync truncated %s: %w", path, err)
	}
	return nil
}

// readIndex loads and validates the block index of a sealed file. Any
// inconsistency — missing footer magic, checksum mismatch, offsets out
// of range — reports the file as unsealed and leaves interpretation to
// the sequential scan (which is where repair lives).
func readIndex(f *os.File, size int64) ([]BlockMeta, int64, bool) {
	if size < headerSize+footerSize {
		return nil, 0, false
	}
	var foot [footerSize]byte
	if _, err := f.ReadAt(foot[:], size-footerSize); err != nil {
		return nil, 0, false
	}
	if string(foot[16:20]) != footMagic {
		return nil, 0, false
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	indexLen := int64(binary.LittleEndian.Uint32(foot[8:]))
	wantCRC := binary.LittleEndian.Uint32(foot[12:])
	if indexOff < headerSize || indexOff+indexLen+footerSize != size {
		return nil, 0, false
	}
	idx := make([]byte, indexLen)
	if _, err := f.ReadAt(idx, indexOff); err != nil {
		return nil, 0, false
	}
	if checksum(idx) != wantCRC {
		return nil, 0, false
	}
	br := bytes.NewReader(idx)
	n, err := binary.ReadUvarint(br)
	if err != nil || n > uint64(indexLen) {
		return nil, 0, false
	}
	index := make([]BlockMeta, 0, n)
	prevOff := int64(headerSize) - 1
	for i := uint64(0); i < n; i++ {
		off, err1 := binary.ReadUvarint(br)
		first, err2 := binary.ReadUvarint(br)
		cnt, err3 := binary.ReadUvarint(br)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, 0, false
		}
		if int64(off) <= prevOff || int64(off) >= indexOff || cnt == 0 {
			return nil, 0, false
		}
		prevOff = int64(off)
		index = append(index, BlockMeta{Offset: int64(off), FirstSeq: first, Count: int(cnt)})
	}
	if br.Len() != 0 {
		return nil, 0, false
	}
	return index, indexOff, true
}

// scanSealed streams the frames of a sealed file from the first indexed
// block to dataEnd. Sealed files are immutable, so every anomaly is a
// hard error, never a tear.
func scanSealed(f *os.File, path string, index []BlockMeta, dataEnd int64, fromSeq uint64, stats *ScanStats, fn func(uint64, []byte) error) error {
	if len(index) == 0 {
		return nil
	}
	fs, err := newFrameScanner(f, index[0].Offset)
	if err != nil {
		return err
	}
	for fs.off < dataEnd {
		bm, raw, frameBytes, err := fs.next()
		if err != nil {
			if err == io.EOF || errors.Is(err, errTorn) {
				return fmt.Errorf("blockio: %s: corrupt block at offset %d in sealed file", path, bm.Offset)
			}
			return err
		}
		if stats != nil {
			stats.BlocksRead++
			stats.BytesRead += frameBytes
		}
		if err := walkBlock(raw, bm, fromSeq, fn); err != nil {
			if errors.Is(err, errTorn) {
				return fmt.Errorf("blockio: %s: corrupt record in sealed block at offset %d", path, bm.Offset)
			}
			return err
		}
	}
	return nil
}

// scanSequential streams an unsealed file frame by frame, repairing (or
// refusing) a torn tail per tornOK.
func scanSequential(f *os.File, path string, tornOK bool, fn func(uint64, []byte) error) (bool, error) {
	fs, err := newFrameScanner(f, headerSize)
	if err != nil {
		return false, err
	}
	for {
		bm, raw, _, err := fs.next()
		if err == io.EOF {
			return false, nil
		}
		if err != nil {
			if !errors.Is(err, errTorn) {
				return false, err
			}
			if !tornOK {
				return false, fmt.Errorf("blockio: torn frame at offset %d in sealed log %s", bm.Offset, path)
			}
			return true, repairTo(f, path, bm.Offset)
		}
		if err := walkBlock(raw, bm, 0, fn); err != nil {
			if !errors.Is(err, errTorn) {
				return false, err
			}
			if !tornOK {
				return false, fmt.Errorf("blockio: corrupt block at offset %d in sealed log %s", bm.Offset, path)
			}
			return true, repairTo(f, path, bm.Offset)
		}
	}
}

// walkBlock iterates a decompressed block's record envelopes, calling
// fn for every record with seq > fromSeq. Envelope damage inside a
// checksum-valid block is still classified errTorn: the caller decides
// whether that means repair or refusal.
func walkBlock(raw []byte, bm BlockMeta, fromSeq uint64, fn func(uint64, []byte) error) error {
	seq := bm.FirstSeq
	for i := 0; i < bm.Count; i++ {
		l, n := binary.Uvarint(raw)
		if n <= 0 || l > maxRecordBytes || uint64(len(raw)) < uint64(n)+4+l {
			return errTorn
		}
		raw = raw[n:]
		wantCRC := binary.LittleEndian.Uint32(raw)
		payload := raw[4 : 4+l]
		if checksum(payload) != wantCRC {
			return errTorn
		}
		raw = raw[4+l:]
		if seq > fromSeq {
			if err := fn(seq, payload); err != nil {
				return fmt.Errorf("blockio: replay record seq %d: %w", seq, err)
			}
		}
		seq++
	}
	if len(raw) != 0 {
		return errTorn
	}
	return nil
}

// frameScanner streams block frames from a file offset, reusing its
// compression scratch across frames.
type frameScanner struct {
	br  *bufio.Reader
	off int64 // offset of the next unread byte
	dec io.ReadCloser
	cmp []byte
	raw []byte
}

func newFrameScanner(f *os.File, off int64) (*frameScanner, error) {
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("blockio: seek: %w", err)
	}
	return &frameScanner{br: bufio.NewReaderSize(f, 1<<16), off: off}, nil
}

// readByte reads one byte, tracking the offset.
func (fs *frameScanner) ReadByte() (byte, error) {
	b, err := fs.br.ReadByte()
	if err == nil {
		fs.off++
	}
	return b, err
}

// next parses one block frame. It returns io.EOF exactly at a frame
// boundary, errTorn for anything that ends or fails mid-frame, and the
// decompressed block otherwise. The returned BlockMeta carries the
// frame's start offset even on error (the repair point).
func (fs *frameScanner) next() (BlockMeta, []byte, int64, error) {
	bm := BlockMeta{Offset: fs.off}
	firstSeq, err := binary.ReadUvarint(fs)
	if err == io.EOF && fs.off == bm.Offset {
		return bm, nil, 0, io.EOF
	}
	if err != nil {
		return bm, nil, 0, errTorn
	}
	cnt, err := binary.ReadUvarint(fs)
	if err != nil || cnt == 0 || cnt > maxBlockBytes {
		return bm, nil, 0, errTorn
	}
	rawLen, err := binary.ReadUvarint(fs)
	if err != nil || rawLen > maxBlockBytes {
		return bm, nil, 0, errTorn
	}
	compLen, err := binary.ReadUvarint(fs)
	if err != nil || compLen > maxBlockBytes {
		return bm, nil, 0, errTorn
	}
	var crcb [4]byte
	if _, err := io.ReadFull(fs.br, crcb[:]); err != nil {
		return bm, nil, 0, errTorn
	}
	fs.off += 4
	if uint64(cap(fs.cmp)) < compLen {
		fs.cmp = make([]byte, compLen)
	}
	cmp := fs.cmp[:compLen]
	if _, err := io.ReadFull(fs.br, cmp); err != nil {
		return bm, nil, 0, errTorn
	}
	fs.off += int64(compLen)
	if checksum(cmp) != binary.LittleEndian.Uint32(crcb[:]) {
		return bm, nil, 0, errTorn
	}
	if fs.dec == nil {
		fs.dec = flate.NewReader(bytes.NewReader(cmp))
	} else if err := fs.dec.(flate.Resetter).Reset(bytes.NewReader(cmp), nil); err != nil {
		return bm, nil, 0, errTorn
	}
	if uint64(cap(fs.raw)) < rawLen {
		fs.raw = make([]byte, rawLen)
	}
	raw := fs.raw[:rawLen]
	if _, err := io.ReadFull(fs.dec, raw); err != nil {
		return bm, nil, 0, errTorn
	}
	// The stream must end exactly at rawLen.
	var one [1]byte
	if n, _ := fs.dec.Read(one[:]); n != 0 {
		return bm, nil, 0, errTorn
	}
	bm.FirstSeq = firstSeq
	bm.Count = int(cnt)
	return bm, raw, fs.off - bm.Offset, nil
}
