// Package placement is the cluster's shared placement manifest: a
// versioned JSON document mapping every global shard to the node that
// owns its writes (the primary), the replicas that tail it, and a
// per-shard fencing epoch. It replaces positional -peers as the
// placement source of truth — every role loads the same file (or
// fetches it from a peer's admin surface), frontends hot-reload it
// through a Watcher, and a failover is one atomic rewrite: bump the
// shard's epoch, swap the primary, bump the manifest version.
//
// The epoch is the write fence. A frontend stamps every submit with the
// epoch of the shard it is routing to; a node compares the stamp
// against the newest manifest it has applied and refuses stale writes
// (a frontend still routing to a demoted primary) with a fenced error,
// which is what makes promotion safe against the old primary coming
// back mid-failover.
package placement

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ShardPlacement is one shard's row in the manifest.
type ShardPlacement struct {
	// Shard is the global shard index.
	Shard int `json:"shard"`
	// Epoch is the shard's fencing epoch: bumped on every promotion.
	// Writes stamped with an older epoch are refused by the primary.
	Epoch uint64 `json:"epoch"`
	// Primary is the base URL of the node that accepts writes for the
	// shard and feeds its replicas.
	Primary string `json:"primary"`
	// Replicas are base URLs of read-only followers a frontend may fail
	// reads over to, in preference order.
	Replicas []string `json:"replicas,omitempty"`
}

// Manifest is the versioned placement document. Version must strictly
// grow on every change — watchers ignore anything older than what they
// already applied, so a torn half-rollout cannot move routing backwards.
type Manifest struct {
	Version int64            `json:"version"`
	Shards  []ShardPlacement `json:"shards"`
}

// RoundRobin builds the canonical first manifest: totalShards spread
// round-robin across the nodes (shard i on node i mod n, the same
// layout shardrpc.RoundRobinPlacement and -node-index ownership use),
// every epoch 1, version 1, no replicas. Callers attach replicas and
// Save.
func RoundRobin(totalShards int, nodes []string) (*Manifest, error) {
	if totalShards < 1 {
		return nil, fmt.Errorf("placement: total shards %d < 1", totalShards)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("placement: round-robin needs at least one node")
	}
	m := &Manifest{Version: 1, Shards: make([]ShardPlacement, totalShards)}
	for s := 0; s < totalShards; s++ {
		m.Shards[s] = ShardPlacement{Shard: s, Epoch: 1, Primary: nodes[s%len(nodes)]}
	}
	return m, nil
}

// Validate checks the manifest is well-formed: a positive version,
// every shard index 0..n-1 present exactly once, every primary
// non-empty, and no shard listing its primary as its own replica.
func (m *Manifest) Validate() error {
	if m.Version <= 0 {
		return fmt.Errorf("placement: manifest version %d must be positive", m.Version)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("placement: manifest has no shards")
	}
	seen := make(map[int]bool, len(m.Shards))
	for i := range m.Shards {
		sp := &m.Shards[i]
		if sp.Shard < 0 || sp.Shard >= len(m.Shards) {
			return fmt.Errorf("placement: shard index %d outside [0, %d)", sp.Shard, len(m.Shards))
		}
		if seen[sp.Shard] {
			return fmt.Errorf("placement: shard %d appears twice", sp.Shard)
		}
		seen[sp.Shard] = true
		if sp.Primary == "" {
			return fmt.Errorf("placement: shard %d has no primary", sp.Shard)
		}
		for _, rep := range sp.Replicas {
			if rep == sp.Primary {
				return fmt.Errorf("placement: shard %d lists its primary %q as a replica", sp.Shard, rep)
			}
		}
	}
	return nil
}

// Placement returns the shard's row, or nil for an unknown shard.
func (m *Manifest) Placement(shard int) *ShardPlacement {
	for i := range m.Shards {
		if m.Shards[i].Shard == shard {
			return &m.Shards[i]
		}
	}
	return nil
}

// Nodes returns every distinct primary base URL, in first-appearance
// order over ascending shard index — for a round-robin manifest that is
// node-index order, which keeps derived placements (budget shards)
// agreeing with the nodes' own ownership computation.
func (m *Manifest) Nodes() []string {
	rows := append([]ShardPlacement(nil), m.Shards...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Shard < rows[j].Shard })
	var out []string
	seen := make(map[string]bool)
	for i := range rows {
		if p := rows[i].Primary; !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Clone returns an independent deep copy.
func (m *Manifest) Clone() *Manifest {
	out := &Manifest{Version: m.Version, Shards: make([]ShardPlacement, len(m.Shards))}
	copy(out.Shards, m.Shards)
	for i := range out.Shards {
		out.Shards[i].Replicas = append([]string(nil), m.Shards[i].Replicas...)
	}
	return out
}

// Promote rewrites the manifest for one shard's failover: newPrimary
// takes the shard, the shard's epoch and the manifest version bump, and
// the new primary disappears from the replica list. The demoted primary
// is NOT added as a replica — it is presumed dead, and a returned node
// re-registers by being added back explicitly once it has re-synced.
// Returns the shard's new epoch.
func (m *Manifest) Promote(shard int, newPrimary string) (uint64, error) {
	sp := m.Placement(shard)
	if sp == nil {
		return 0, fmt.Errorf("placement: promote: unknown shard %d", shard)
	}
	if sp.Primary == newPrimary {
		return sp.Epoch, nil
	}
	sp.Epoch++
	sp.Primary = newPrimary
	reps := sp.Replicas[:0]
	for _, rep := range sp.Replicas {
		if rep != newPrimary {
			reps = append(reps, rep)
		}
	}
	sp.Replicas = reps
	m.Version++
	return sp.Epoch, nil
}

// Load reads and validates a manifest file.
func Load(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("placement: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("placement: parse manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("placement: manifest %s: %w", path, err)
	}
	return &m, nil
}

// Save writes the manifest atomically (temp file + rename in the target
// directory), so a watcher polling the path never reads a torn write.
func (m *Manifest) Save(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*.json")
	if err != nil {
		return fmt.Errorf("placement: write manifest: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("placement: write manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("placement: write manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("placement: write manifest: %w", err)
	}
	return nil
}

// Watcher polls a manifest file and delivers every version increase to
// a callback. Polling (rather than inotify) keeps it dependency-free
// and correct over every filesystem the manifest might live on; the
// interval bounds how stale a role's routing can be after a rewrite.
type Watcher struct {
	path     string
	interval time.Duration
	fn       func(*Manifest)

	mu      sync.Mutex
	version int64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Watch loads the manifest at path, delivers it to fn once, and starts
// polling: every interval the file is re-read and fn is called again
// whenever the version grew. Parse or validation errors on later reads
// are skipped (the previous manifest stays applied) — a half-written or
// briefly absent file must not tear routing down. Close stops the loop.
func Watch(path string, interval time.Duration, fn func(*Manifest)) (*Watcher, error) {
	if interval <= 0 {
		interval = time.Second
	}
	m, err := Load(path)
	if err != nil {
		return nil, err
	}
	w := &Watcher{path: path, interval: interval, fn: fn, version: m.Version,
		stop: make(chan struct{}), done: make(chan struct{})}
	fn(m)
	go w.loop()
	return w, nil
}

func (w *Watcher) loop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.Poll()
		case <-w.stop:
			return
		}
	}
}

// Poll re-reads the manifest immediately, delivering it if the version
// grew. Exported so a role that just observed a fencing error can
// refresh its routing without waiting out the interval.
func (w *Watcher) Poll() {
	m, err := Load(w.path)
	if err != nil {
		return
	}
	w.mu.Lock()
	if m.Version <= w.version {
		w.mu.Unlock()
		return
	}
	w.version = m.Version
	w.mu.Unlock()
	w.fn(m)
}

// Close stops the watcher.
func (w *Watcher) Close() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}
