package placement

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestRoundRobin(t *testing.T) {
	m, err := RoundRobin(5, []string{"http://a", "http://b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 || len(m.Shards) != 5 {
		t.Fatalf("manifest = v%d, %d shards", m.Version, len(m.Shards))
	}
	for s := 0; s < 5; s++ {
		sp := m.Placement(s)
		if sp == nil {
			t.Fatalf("shard %d missing", s)
		}
		want := "http://a"
		if s%2 == 1 {
			want = "http://b"
		}
		if sp.Primary != want || sp.Epoch != 1 {
			t.Fatalf("shard %d = %+v", s, sp)
		}
	}
	if got := m.Nodes(); !reflect.DeepEqual(got, []string{"http://a", "http://b"}) {
		t.Fatalf("nodes = %v", got)
	}
	if _, err := RoundRobin(0, []string{"http://a"}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := RoundRobin(2, nil); err == nil {
		t.Fatal("no nodes accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Manifest {
		m, _ := RoundRobin(3, []string{"http://a"})
		return m
	}
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"zero version", func(m *Manifest) { m.Version = 0 }},
		{"no shards", func(m *Manifest) { m.Shards = nil }},
		{"duplicate shard", func(m *Manifest) { m.Shards[1].Shard = 0 }},
		{"out of range shard", func(m *Manifest) { m.Shards[1].Shard = 9 }},
		{"empty primary", func(m *Manifest) { m.Shards[2].Primary = "" }},
		{"primary as replica", func(m *Manifest) { m.Shards[0].Replicas = []string{"http://a"} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base()
			tc.mutate(m)
			if err := m.Validate(); err == nil {
				t.Fatal("validated")
			}
		})
	}
}

func TestPromote(t *testing.T) {
	m, _ := RoundRobin(2, []string{"http://a", "http://b"})
	m.Shards[0].Replicas = []string{"http://r"}

	epoch, err := m.Promote(0, "http://r")
	if err != nil {
		t.Fatal(err)
	}
	sp := m.Placement(0)
	if epoch != 2 || sp.Epoch != 2 || sp.Primary != "http://r" {
		t.Fatalf("after promote: epoch %d, row %+v", epoch, sp)
	}
	if len(sp.Replicas) != 0 {
		t.Fatalf("new primary still a replica: %v", sp.Replicas)
	}
	if m.Version != 2 {
		t.Fatalf("version = %d, want 2", m.Version)
	}
	// Shard 1 untouched.
	if sp1 := m.Placement(1); sp1.Epoch != 1 || sp1.Primary != "http://b" {
		t.Fatalf("shard 1 disturbed: %+v", sp1)
	}

	// Idempotent: promoting the current primary changes nothing.
	epoch2, err := m.Promote(0, "http://r")
	if err != nil || epoch2 != 2 || m.Version != 2 {
		t.Fatalf("re-promote = epoch %d version %d err %v", epoch2, m.Version, err)
	}

	if _, err := m.Promote(9, "http://r"); err == nil {
		t.Fatal("unknown shard promoted")
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m, _ := RoundRobin(3, []string{"http://a", "http://b"})
	m.Shards[1].Replicas = []string{"http://r"}
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("roundtrip: got %+v want %+v", got, m)
	}

	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt file loaded")
	}
	// An invalid (but parseable) manifest refuses to Save.
	bad := &Manifest{Version: 0}
	if err := bad.Save(path); err == nil {
		t.Fatal("invalid manifest saved")
	}
}

func TestWatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m, _ := RoundRobin(2, []string{"http://a"})
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var seen []int64
	w, err := Watch(path, time.Hour, func(m *Manifest) {
		mu.Lock()
		seen = append(seen, m.Version)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// The initial manifest is delivered synchronously.
	mu.Lock()
	if len(seen) != 1 || seen[0] != 1 {
		mu.Unlock()
		t.Fatalf("initial delivery = %v", seen)
	}
	mu.Unlock()

	// A version bump delivers on the next poll; redelivery of the same
	// version does not.
	if _, err := m.Promote(0, "http://b"); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	w.Poll()
	mu.Lock()
	if len(seen) != 2 || seen[1] != 2 {
		mu.Unlock()
		t.Fatalf("after bump = %v", seen)
	}
	mu.Unlock()

	// A torn write is skipped; the applied manifest stands.
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	mu.Lock()
	if len(seen) != 2 {
		mu.Unlock()
		t.Fatalf("torn write delivered: %v", seen)
	}
	mu.Unlock()

	// An older version (rollback file) is ignored too.
	old, _ := RoundRobin(2, []string{"http://a"})
	if err := old.Save(path); err != nil {
		t.Fatal(err)
	}
	w.Poll()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("rollback delivered: %v", seen)
	}
}
