// Package platform simulates a crowdsourcing survey platform in the mould
// of Amazon Mechanical Turk as accessed through an aggregator: requesters
// post surveys (HITs) with a response quota and a per-response reward,
// workers with heterogeneous engagement take them over simulated days,
// and the platform reports completed responses back to the requester
// keyed by a worker ID.
//
// The privacy-critical design point the paper exposes is the worker-ID
// policy: AMT reports a unique ID that is constant across every survey a
// worker takes, which lets a requester join responses across surveys.
// The engine also implements the obvious countermeasure — a fresh
// pseudonym per survey — so the ablation experiments can show linkability
// collapsing when the stable ID goes away.
package platform

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"loki/internal/population"
	"loki/internal/rng"
	"loki/internal/store"
	"loki/internal/survey"
)

// IDPolicy selects how the platform derives the worker ID it reports to
// requesters.
type IDPolicy int

const (
	// StableIDs reports one constant ID per worker across all surveys —
	// AMT's behaviour, and the linkage enabler of the paper's attack.
	StableIDs IDPolicy = iota
	// PseudonymousIDs reports a fresh ID per (worker, survey) pair,
	// which defeats cross-survey joins by ID.
	PseudonymousIDs
)

// String names the policy.
func (p IDPolicy) String() string {
	switch p {
	case StableIDs:
		return "stable-ids"
	case PseudonymousIDs:
		return "pseudonymous-ids"
	default:
		return fmt.Sprintf("IDPolicy(%d)", int(p))
	}
}

// Transform is an optional hook applied to every response before it is
// uploaded to the platform — the "app layer". Loki's at-source
// obfuscation plugs in here. It receives the answering person (for
// privacy-preference lookup), the survey, and the raw answers; it returns
// the answers to upload, the privacy level name to record, and whether
// the answers were obfuscated.
type Transform func(p *population.Person, s *survey.Survey, answers []survey.Answer) (out []survey.Answer, privacyLevel string, obfuscated bool, err error)

// Config parameterizes the platform simulation.
type Config struct {
	// IDPolicy is the worker-ID reporting policy.
	IDPolicy IDPolicy
	// WorkerPoolSize is how many registry persons have platform accounts.
	WorkerPoolSize int
	// HeavyFraction is the share of workers who are highly engaged
	// ("professional turkers"); the rest are casual. Heavy workers take
	// most posted surveys, creating the cross-survey overlap the attack
	// exploits.
	HeavyFraction float64
	// HeavyActivityLo/Hi and CasualActivityLo/Hi bound the per-day
	// probability that a worker of each class takes an open survey.
	HeavyActivityLo, HeavyActivityHi   float64
	CasualActivityLo, CasualActivityHi float64
	// Transform, when non-nil, is applied to every response before
	// upload (Loki's at-source obfuscation).
	Transform Transform
	// Sink, when non-nil, receives every posted survey and accepted
	// response — the platform's durable ingestion backend. Point it at a
	// store.File or ingest.Sharded to persist a simulation's raw
	// response streams (losing those streams is itself a privacy-audit
	// failure: the obfuscated record is the only accountable trace of
	// what each worker disclosed). A sink failure fails the simulation
	// loudly rather than dropping data.
	Sink store.Store
}

// DefaultConfig returns the platform parameters used by the §2
// reproduction: a 1000-account pool whose engagement mix (a small cohort
// of highly active "professional" workers over a churning casual
// majority) yields roughly the paper's 400 unique respondents with ~72
// taking all three profiling surveys.
func DefaultConfig() Config {
	return Config{
		IDPolicy:         StableIDs,
		WorkerPoolSize:   1000,
		HeavyFraction:    0.09,
		HeavyActivityLo:  0.70,
		HeavyActivityHi:  0.95,
		CasualActivityLo: 0.02,
		CasualActivityHi: 0.12,
	}
}

// Validate reports whether the configuration is usable against the given
// population.
func (c *Config) Validate(pop *population.Population) error {
	if pop == nil || pop.Size() == 0 {
		return errors.New("platform: empty population")
	}
	if c.WorkerPoolSize < 1 || c.WorkerPoolSize > pop.Size() {
		return fmt.Errorf("platform: worker pool size %d outside [1, %d]", c.WorkerPoolSize, pop.Size())
	}
	if c.HeavyFraction < 0 || c.HeavyFraction > 1 {
		return fmt.Errorf("platform: heavy fraction %g outside [0, 1]", c.HeavyFraction)
	}
	for _, b := range [...][2]float64{
		{c.HeavyActivityLo, c.HeavyActivityHi},
		{c.CasualActivityLo, c.CasualActivityHi},
	} {
		if b[0] < 0 || b[1] > 1 || b[0] > b[1] {
			return fmt.Errorf("platform: activity bounds [%g, %g] invalid", b[0], b[1])
		}
	}
	return nil
}

// Worker is a platform account bound to a registry person.
type Worker struct {
	PersonID int
	// Activity is the per-day probability of taking an open survey.
	Activity float64
	stableID string
}

// HIT is a posted survey with its quota and bookkeeping.
type HIT struct {
	Survey    *survey.Survey
	Quota     int
	PostedDay int
	ClosedDay int // -1 while open
	// Appeal is the fraction of workers interested in this survey at
	// all. Interest is decided once per worker on first encounter; the
	// health survey's lower appeal is what bounds the paper's 18-of-72
	// overlap between de-anonymized workers and health respondents.
	Appeal     float64
	Responses  []survey.Response
	taken      map[int]bool // personID -> already responded
	interested map[int]bool // personID -> decided interest
}

// Open reports whether the HIT is still collecting responses.
func (h *HIT) Open() bool { return h.ClosedDay < 0 }

// Platform is the simulation engine. It is not safe for concurrent use;
// experiments drive it from a single goroutine.
type Platform struct {
	cfg     Config
	pop     *population.Population
	workers []Worker
	hits    map[string]*HIT
	order   []string // survey IDs in posting order
	day     int
	r       *rng.RNG
	// personOf maps reported worker IDs back to persons — ground truth
	// for scoring attacks, never exposed to the attack itself.
	personOf map[string]int
}

// New builds a platform over the population. Worker accounts are a
// uniform sample of the registry; engagement classes are assigned by
// HeavyFraction.
func New(pop *population.Population, cfg Config, r *rng.RNG) (*Platform, error) {
	if err := cfg.Validate(pop); err != nil {
		return nil, err
	}
	idx := r.Sample(pop.Size(), cfg.WorkerPoolSize)
	workers := make([]Worker, len(idx))
	for i, pi := range idx {
		w := Worker{PersonID: pop.Persons[pi].ID}
		if r.Bernoulli(cfg.HeavyFraction) {
			w.Activity = cfg.HeavyActivityLo + (cfg.HeavyActivityHi-cfg.HeavyActivityLo)*r.Float64()
		} else {
			w.Activity = cfg.CasualActivityLo + (cfg.CasualActivityHi-cfg.CasualActivityLo)*r.Float64()
		}
		w.stableID = workerTag(w.PersonID, "")
		workers[i] = w
	}
	return &Platform{
		cfg:      cfg,
		pop:      pop,
		workers:  workers,
		hits:     make(map[string]*HIT),
		r:        r,
		personOf: make(map[string]int),
	}, nil
}

// workerTag derives an opaque, deterministic worker ID. salt is empty for
// stable IDs and the survey ID for pseudonyms.
func workerTag(personID int, salt string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", personID, salt)
	return fmt.Sprintf("W%012X", h.Sum64()>>16)
}

// reportedID returns the worker ID the platform reports for a response by
// this person to this survey, per the ID policy.
func (pl *Platform) reportedID(personID int, surveyID string) string {
	if pl.cfg.IDPolicy == PseudonymousIDs {
		return workerTag(personID, surveyID)
	}
	return workerTag(personID, "")
}

// Day returns the current simulated day (0-based).
func (pl *Platform) Day() int { return pl.day }

// Workers returns the number of platform accounts.
func (pl *Platform) Workers() int { return len(pl.workers) }

// PostSurvey opens a HIT for the survey with the given response quota and
// full (1.0) appeal. It validates the survey and rejects duplicate IDs.
func (pl *Platform) PostSurvey(s *survey.Survey, quota int) error {
	return pl.PostSurveyAppeal(s, quota, 1)
}

// PostSurveyAppeal opens a HIT whose topic interests only the given
// fraction of workers.
func (pl *Platform) PostSurveyAppeal(s *survey.Survey, quota int, appeal float64) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if quota < 1 {
		return fmt.Errorf("platform: quota %d < 1 for survey %q", quota, s.ID)
	}
	if appeal <= 0 || appeal > 1 {
		return fmt.Errorf("platform: appeal %g outside (0, 1] for survey %q", appeal, s.ID)
	}
	if _, dup := pl.hits[s.ID]; dup {
		return fmt.Errorf("platform: survey %q already posted", s.ID)
	}
	if pl.cfg.Sink != nil {
		if err := pl.cfg.Sink.PutSurvey(s); err != nil {
			if !errors.Is(err, store.ErrExists) {
				return fmt.Errorf("platform: sink rejected survey %q: %w", s.ID, err)
			}
			// A replayed durable sink may already hold this survey — but
			// only the identical definition; responses validated against
			// a diverged definition would corrupt the persisted stream.
			prev, gerr := pl.cfg.Sink.Survey(s.ID)
			if gerr != nil {
				return fmt.Errorf("platform: sink holds survey %q but cannot serve it: %w", s.ID, gerr)
			}
			// Compare JSON forms, not Go values: a replayed survey has
			// been through marshal/unmarshal, which turns empty slices
			// into nil under omitempty.
			prevJSON, err1 := json.Marshal(prev)
			postJSON, err2 := json.Marshal(s)
			if err1 != nil || err2 != nil || !bytes.Equal(prevJSON, postJSON) {
				return fmt.Errorf("platform: sink already holds a different survey %q", s.ID)
			}
		}
	}
	pl.hits[s.ID] = &HIT{
		Survey:     s,
		Quota:      quota,
		PostedDay:  pl.day,
		ClosedDay:  -1,
		Appeal:     appeal,
		taken:      make(map[int]bool),
		interested: make(map[int]bool),
	}
	pl.order = append(pl.order, s.ID)
	return nil
}

// RunDay simulates one day: every worker considers each open HIT and
// takes it with probability Activity if they have not already. Workers
// arrive in jittered activity order — highly engaged workers snipe fresh
// HITs first, the documented behaviour of professional AMT workers — so
// when a quota binds it preferentially admits the heavy cohort. HITs
// close when their quota fills.
func (pl *Platform) RunDay() error {
	openHITs := pl.openHITs()
	if len(openHITs) > 0 {
		perm := pl.arrivalOrder()
		for _, wi := range perm {
			w := &pl.workers[wi]
			for _, h := range openHITs {
				if !h.Open() || h.taken[w.PersonID] {
					continue
				}
				interested, decided := h.interested[w.PersonID]
				if !decided {
					interested = pl.r.Bernoulli(h.Appeal)
					h.interested[w.PersonID] = interested
				}
				if !interested || !pl.r.Bernoulli(w.Activity) {
					continue
				}
				if err := pl.submit(w, h); err != nil {
					return err
				}
			}
		}
	}
	pl.day++
	return nil
}

// RunDays simulates n consecutive days.
func (pl *Platform) RunDays(n int) error {
	for i := 0; i < n; i++ {
		if err := pl.RunDay(); err != nil {
			return err
		}
	}
	return nil
}

// arrivalOrder returns worker indices sorted by jittered activity,
// highest first.
func (pl *Platform) arrivalOrder() []int {
	type scored struct {
		idx   int
		score float64
	}
	ss := make([]scored, len(pl.workers))
	for i := range pl.workers {
		jitter := 0.7 + 0.6*pl.r.Float64()
		ss[i] = scored{idx: i, score: pl.workers[i].Activity * jitter}
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].score > ss[j].score })
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.idx
	}
	return out
}

// openHITs returns currently open HITs in posting order.
func (pl *Platform) openHITs() []*HIT {
	var out []*HIT
	for _, id := range pl.order {
		if h := pl.hits[id]; h.Open() {
			out = append(out, h)
		}
	}
	return out
}

// submit generates the worker's answers, applies the app-layer transform
// if any, validates, and records the response.
func (pl *Platform) submit(w *Worker, h *HIT) error {
	person := &pl.pop.Persons[w.PersonID]
	answers, err := population.Answers(person, h.Survey, pl.r)
	if err != nil {
		return fmt.Errorf("platform: answering %q: %w", h.Survey.ID, err)
	}
	level := ""
	obfuscated := false
	if pl.cfg.Transform != nil {
		answers, level, obfuscated, err = pl.cfg.Transform(person, h.Survey, answers)
		if err != nil {
			return fmt.Errorf("platform: transform for %q: %w", h.Survey.ID, err)
		}
	}
	id := pl.reportedID(w.PersonID, h.Survey.ID)
	resp := survey.Response{
		SurveyID:     h.Survey.ID,
		WorkerID:     id,
		Answers:      answers,
		PrivacyLevel: level,
		Obfuscated:   obfuscated,
		Day:          pl.day,
	}
	if err := resp.Validate(h.Survey); err != nil {
		return fmt.Errorf("platform: invalid response to %q: %w", h.Survey.ID, err)
	}
	if pl.cfg.Sink != nil {
		if err := pl.cfg.Sink.AppendResponse(&resp); err != nil {
			return fmt.Errorf("platform: sink rejected response to %q: %w", h.Survey.ID, err)
		}
	}
	h.Responses = append(h.Responses, resp)
	h.taken[w.PersonID] = true
	pl.personOf[id] = w.PersonID
	if len(h.Responses) >= h.Quota {
		h.ClosedDay = pl.day
	}
	return nil
}

// Responses returns the collected responses for a survey (the requester's
// view). The returned slice is shared; callers must not mutate it.
func (pl *Platform) Responses(surveyID string) ([]survey.Response, error) {
	h, ok := pl.hits[surveyID]
	if !ok {
		return nil, fmt.Errorf("platform: unknown survey %q", surveyID)
	}
	return h.Responses, nil
}

// ScanResponses streams a survey's collected responses to fn in
// submission order — the non-materializing counterpart of Responses,
// mirroring store.Store's scan idiom. The *Response passed to fn aliases
// platform-internal state; fn must not modify or retain it. A non-nil
// error from fn aborts the scan and is returned verbatim.
func (pl *Platform) ScanResponses(surveyID string, fn func(r *survey.Response) error) error {
	h, ok := pl.hits[surveyID]
	if !ok {
		return fmt.Errorf("platform: unknown survey %q", surveyID)
	}
	for i := range h.Responses {
		if err := fn(&h.Responses[i]); err != nil {
			return err
		}
	}
	return nil
}

// ResponseCount returns how many responses a survey has collected (0 for
// unknown surveys).
func (pl *Platform) ResponseCount(surveyID string) int {
	h, ok := pl.hits[surveyID]
	if !ok {
		return 0
	}
	return len(h.Responses)
}

// Surveys returns the posted surveys in posting order.
func (pl *Platform) Surveys() []*survey.Survey {
	out := make([]*survey.Survey, 0, len(pl.order))
	for _, id := range pl.order {
		out = append(out, pl.hits[id].Survey)
	}
	return out
}

// UniqueWorkers returns the number of distinct worker IDs observed across
// all responses — the paper's "400 unique users who took our surveys".
// Under pseudonymous IDs the same person counts once per survey, which is
// exactly what the requester would (mis)observe.
func (pl *Platform) UniqueWorkers() int {
	seen := make(map[string]bool)
	for _, h := range pl.hits {
		for i := range h.Responses {
			seen[h.Responses[i].WorkerID] = true
		}
	}
	return len(seen)
}

// UniquePersons returns the true number of distinct persons who responded
// (ground truth, for scoring).
func (pl *Platform) UniquePersons() int {
	seen := make(map[int]bool)
	for _, h := range pl.hits {
		for pid := range h.taken {
			seen[pid] = true
		}
	}
	return len(seen)
}

// TotalResponses returns the number of collected responses across all
// surveys.
func (pl *Platform) TotalResponses() int {
	n := 0
	for _, h := range pl.hits {
		n += len(h.Responses)
	}
	return n
}

// CostCents returns the requester's total payout: responses × reward.
func (pl *Platform) CostCents() int {
	total := 0
	for _, h := range pl.hits {
		total += len(h.Responses) * h.Survey.RewardCents
	}
	return total
}

// TruePersonOf resolves a reported worker ID to the underlying person —
// evaluation-only ground truth for scoring attack accuracy.
func (pl *Platform) TruePersonOf(workerID string) (int, bool) {
	pid, ok := pl.personOf[workerID]
	return pid, ok
}

// HITStats summarises one HIT for reports.
type HITStats struct {
	SurveyID  string
	Responses int
	Quota     int
	PostedDay int
	ClosedDay int
	CostCents int
}

// Stats returns per-HIT summaries in posting order.
func (pl *Platform) Stats() []HITStats {
	out := make([]HITStats, 0, len(pl.order))
	for _, id := range pl.order {
		h := pl.hits[id]
		out = append(out, HITStats{
			SurveyID:  id,
			Responses: len(h.Responses),
			Quota:     h.Quota,
			PostedDay: h.PostedDay,
			ClosedDay: h.ClosedDay,
			CostCents: len(h.Responses) * h.Survey.RewardCents,
		})
	}
	return out
}

// WorkerActivityQuantiles returns the q-quantiles of worker activity for
// reporting (sorted ascending).
func (pl *Platform) WorkerActivityQuantiles(qs []float64) []float64 {
	acts := make([]float64, len(pl.workers))
	for i, w := range pl.workers {
		acts[i] = w.Activity
	}
	sort.Float64s(acts)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		idx := int(q * float64(len(acts)-1))
		out[i] = acts[idx]
	}
	return out
}
