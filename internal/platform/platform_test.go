package platform

import (
	"fmt"
	"strings"
	"testing"

	"loki/internal/population"
	"loki/internal/rng"
	"loki/internal/store"
	"loki/internal/survey"
)

func testPop(t *testing.T, seed uint64) *population.Population {
	t.Helper()
	cfg := population.DefaultConfig()
	cfg.RegistrySize = 2000
	cfg.NumZIPs = 10
	pop, err := population.Generate(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func testPlatform(t *testing.T, seed uint64, mut func(*Config)) (*Platform, *population.Population) {
	t.Helper()
	pop := testPop(t, seed)
	cfg := DefaultConfig()
	cfg.WorkerPoolSize = 300
	if mut != nil {
		mut(&cfg)
	}
	pl, err := New(pop, cfg, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return pl, pop
}

func TestConfigValidate(t *testing.T) {
	pop := testPop(t, 1)
	good := DefaultConfig()
	good.WorkerPoolSize = 100
	if err := good.Validate(pop); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if err := good.Validate(nil); err == nil {
		t.Error("nil population accepted")
	}
	muts := []func(*Config){
		func(c *Config) { c.WorkerPoolSize = 0 },
		func(c *Config) { c.WorkerPoolSize = pop.Size() + 1 },
		func(c *Config) { c.HeavyFraction = -0.1 },
		func(c *Config) { c.HeavyFraction = 1.1 },
		func(c *Config) { c.HeavyActivityLo = 0.9; c.HeavyActivityHi = 0.5 },
		func(c *Config) { c.CasualActivityLo = -0.1 },
		func(c *Config) { c.CasualActivityHi = 1.5 },
	}
	for i, mut := range muts {
		c := DefaultConfig()
		c.WorkerPoolSize = 100
		mut(&c)
		if err := c.Validate(pop); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPostSurveyValidation(t *testing.T) {
	pl, _ := testPlatform(t, 2, nil)
	sv := survey.Astrology()
	if err := pl.PostSurvey(sv, 0); err == nil {
		t.Error("quota 0 accepted")
	}
	if err := pl.PostSurveyAppeal(sv, 10, 0); err == nil {
		t.Error("appeal 0 accepted")
	}
	if err := pl.PostSurveyAppeal(sv, 10, 1.5); err == nil {
		t.Error("appeal > 1 accepted")
	}
	bad := &survey.Survey{ID: "bad"}
	if err := pl.PostSurvey(bad, 10); err == nil {
		t.Error("invalid survey accepted")
	}
	if err := pl.PostSurvey(sv, 10); err != nil {
		t.Fatal(err)
	}
	if err := pl.PostSurvey(sv, 10); err == nil {
		t.Error("duplicate survey accepted")
	}
	if got := len(pl.Surveys()); got != 1 {
		t.Errorf("surveys = %d", got)
	}
}

func TestQuotaRespectedAndClose(t *testing.T) {
	pl, _ := testPlatform(t, 3, nil)
	sv := survey.Astrology()
	const quota = 40
	if err := pl.PostSurvey(sv, quota); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunDays(10); err != nil {
		t.Fatal(err)
	}
	rs, err := pl.Responses(sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != quota {
		t.Fatalf("collected %d responses, quota %d", len(rs), quota)
	}
	stats := pl.Stats()
	if len(stats) != 1 || stats[0].ClosedDay < 0 {
		t.Fatalf("HIT did not close: %+v", stats)
	}
	if pl.Day() != 10 {
		t.Errorf("day = %d", pl.Day())
	}
}

func TestNoDuplicateResponsesPerWorker(t *testing.T) {
	pl, _ := testPlatform(t, 4, nil)
	sv := survey.Coverage()
	if err := pl.PostSurvey(sv, 250); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunDays(30); err != nil {
		t.Fatal(err)
	}
	rs, _ := pl.Responses(sv.ID)
	seen := map[string]bool{}
	for i := range rs {
		if seen[rs[i].WorkerID] {
			t.Fatalf("worker %s responded twice", rs[i].WorkerID)
		}
		seen[rs[i].WorkerID] = true
	}
}

func TestStableIDsLink(t *testing.T) {
	pl, _ := testPlatform(t, 5, nil)
	s1, s2 := survey.Astrology(), survey.Coverage()
	if err := pl.PostSurvey(s1, 200); err != nil {
		t.Fatal(err)
	}
	if err := pl.PostSurvey(s2, 200); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunDays(25); err != nil {
		t.Fatal(err)
	}
	r1, _ := pl.Responses(s1.ID)
	r2, _ := pl.Responses(s2.ID)
	ids1 := map[string]bool{}
	for i := range r1 {
		ids1[r1[i].WorkerID] = true
	}
	shared := 0
	for i := range r2 {
		if ids1[r2[i].WorkerID] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("stable IDs produced no cross-survey overlap")
	}
	// The requester's view matches ground truth under stable IDs.
	if pl.UniqueWorkers() != pl.UniquePersons() {
		t.Errorf("unique workers %d != unique persons %d", pl.UniqueWorkers(), pl.UniquePersons())
	}
}

func TestPseudonymousIDsUnlink(t *testing.T) {
	pl, _ := testPlatform(t, 6, func(c *Config) { c.IDPolicy = PseudonymousIDs })
	s1, s2 := survey.Astrology(), survey.Coverage()
	if err := pl.PostSurvey(s1, 200); err != nil {
		t.Fatal(err)
	}
	if err := pl.PostSurvey(s2, 200); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunDays(25); err != nil {
		t.Fatal(err)
	}
	r1, _ := pl.Responses(s1.ID)
	r2, _ := pl.Responses(s2.ID)
	ids1 := map[string]bool{}
	for i := range r1 {
		ids1[r1[i].WorkerID] = true
	}
	for i := range r2 {
		if ids1[r2[i].WorkerID] {
			t.Fatal("pseudonymous IDs overlapped across surveys")
		}
	}
	// The requester now over-counts unique workers.
	if pl.UniqueWorkers() <= pl.UniquePersons() {
		t.Errorf("pseudonyms should inflate observed workers: %d vs %d",
			pl.UniqueWorkers(), pl.UniquePersons())
	}
}

func TestCostAccounting(t *testing.T) {
	pl, _ := testPlatform(t, 7, nil)
	sv := survey.Astrology() // 4 cents
	if err := pl.PostSurvey(sv, 50); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunDays(10); err != nil {
		t.Fatal(err)
	}
	rs, _ := pl.Responses(sv.ID)
	if got := pl.CostCents(); got != len(rs)*4 {
		t.Errorf("cost = %d, want %d", got, len(rs)*4)
	}
	if pl.TotalResponses() != len(rs) {
		t.Error("TotalResponses mismatch")
	}
}

func TestTransformHook(t *testing.T) {
	tr := func(p *population.Person, s *survey.Survey, answers []survey.Answer) ([]survey.Answer, string, bool, error) {
		return answers, "medium", true, nil
	}
	pl, _ := testPlatform(t, 8, func(c *Config) { c.Transform = tr })
	sv := survey.Awareness()
	if err := pl.PostSurvey(sv, 30); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunDays(10); err != nil {
		t.Fatal(err)
	}
	rs, _ := pl.Responses(sv.ID)
	if len(rs) == 0 {
		t.Fatal("no responses")
	}
	for i := range rs {
		if rs[i].PrivacyLevel != "medium" || !rs[i].Obfuscated {
			t.Fatal("transform metadata not recorded")
		}
	}
}

func TestTransformErrorPropagates(t *testing.T) {
	tr := func(p *population.Person, s *survey.Survey, answers []survey.Answer) ([]survey.Answer, string, bool, error) {
		return nil, "", false, fmt.Errorf("device exploded")
	}
	pl, _ := testPlatform(t, 21, func(c *Config) { c.Transform = tr })
	if err := pl.PostSurvey(survey.Awareness(), 30); err != nil {
		t.Fatal(err)
	}
	err := pl.RunDays(5)
	if err == nil {
		t.Fatal("transform error swallowed")
	}
	if !strings.Contains(err.Error(), "device exploded") {
		t.Errorf("error lost context: %v", err)
	}
}

func TestTruePersonOf(t *testing.T) {
	pl, pop := testPlatform(t, 9, nil)
	sv := survey.Awareness()
	if err := pl.PostSurvey(sv, 30); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunDays(10); err != nil {
		t.Fatal(err)
	}
	rs, _ := pl.Responses(sv.ID)
	for i := range rs {
		pid, ok := pl.TruePersonOf(rs[i].WorkerID)
		if !ok {
			t.Fatalf("no ground truth for %s", rs[i].WorkerID)
		}
		if pid < 0 || pid >= pop.Size() {
			t.Fatalf("ground truth person %d out of range", pid)
		}
	}
	if _, ok := pl.TruePersonOf("W-nonexistent"); ok {
		t.Error("phantom worker resolved")
	}
}

func TestResponsesUnknownSurvey(t *testing.T) {
	pl, _ := testPlatform(t, 10, nil)
	if _, err := pl.Responses("nope"); err == nil {
		t.Error("unknown survey accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []HITStats {
		pl, _ := testPlatform(t, 11, nil)
		if err := pl.PostSurvey(survey.Astrology(), 80); err != nil {
			t.Fatal(err)
		}
		if err := pl.PostSurvey(survey.Health(), 40); err != nil {
			t.Fatal(err)
		}
		if err := pl.RunDays(12); err != nil {
			t.Fatal(err)
		}
		return pl.Stats()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestWorkerTagOpaque(t *testing.T) {
	a := workerTag(1, "")
	b := workerTag(2, "")
	c := workerTag(1, "s")
	if a == b || a == c {
		t.Error("worker tags collide")
	}
	if !strings.HasPrefix(a, "W") {
		t.Errorf("tag format: %s", a)
	}
}

func TestIDPolicyString(t *testing.T) {
	if StableIDs.String() != "stable-ids" || PseudonymousIDs.String() != "pseudonymous-ids" {
		t.Error("policy strings")
	}
	if IDPolicy(7).String() == "" {
		t.Error("unknown policy string empty")
	}
}

func TestActivityQuantiles(t *testing.T) {
	pl, _ := testPlatform(t, 12, nil)
	qs := pl.WorkerActivityQuantiles([]float64{-1, 0, 0.5, 1, 2})
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone: %v", qs)
		}
	}
}

func TestAppealLimitsParticipation(t *testing.T) {
	runWith := func(appeal float64) int {
		pl, _ := testPlatform(t, 13, nil)
		if err := pl.PostSurveyAppeal(survey.Awareness(), 300, appeal); err != nil {
			t.Fatal(err)
		}
		if err := pl.RunDays(40); err != nil {
			t.Fatal(err)
		}
		rs, _ := pl.Responses(survey.AwarenessID)
		return len(rs)
	}
	full := runWith(1)
	limited := runWith(0.2)
	if limited >= full {
		t.Errorf("appeal 0.2 collected %d responses, full appeal %d", limited, full)
	}
}

// TestSinkPersistsStreams: with a Sink configured, every posted survey
// and accepted response lands in the store, and the persisted stream
// matches the requester's view exactly.
func TestSinkPersistsStreams(t *testing.T) {
	sink := store.NewMem()
	defer sink.Close()
	pl, _ := testPlatform(t, 11, func(c *Config) { c.Sink = sink })
	sv := survey.Astrology()
	if err := pl.PostSurvey(sv, 30); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunDays(5); err != nil {
		t.Fatal(err)
	}
	got, err := pl.Responses(sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	persisted, err := sink.Responses(sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(persisted) != len(got) {
		t.Fatalf("sink holds %d responses, platform %d", len(persisted), len(got))
	}
	for i := range got {
		if persisted[i].WorkerID != got[i].WorkerID || persisted[i].Day != got[i].Day {
			t.Fatalf("sink stream diverges at %d: %+v vs %+v", i, persisted[i], got[i])
		}
	}
	// A survey already present in the sink (replayed durable store) is
	// not an error.
	pl2, _ := testPlatform(t, 12, func(c *Config) { c.Sink = sink })
	if err := pl2.PostSurvey(survey.Astrology(), 5); err != nil {
		t.Fatalf("re-posting into a pre-seeded sink: %v", err)
	}
}

// TestSinkFailureSurfaces: a closed sink must fail the simulation, not
// silently drop the stream.
func TestSinkFailureSurfaces(t *testing.T) {
	sink := store.NewMem()
	pl, _ := testPlatform(t, 13, func(c *Config) { c.Sink = sink })
	if err := pl.PostSurvey(survey.Astrology(), 30); err != nil {
		t.Fatal(err)
	}
	sink.Close()
	if err := pl.RunDays(5); err == nil {
		t.Fatal("closed sink did not surface")
	}
}
