package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/core"
	"loki/internal/rng"
	"loki/internal/server"
	"loki/internal/survey"
)

// Submitter is the client's batching async upload pipeline: callers
// hand it prepared (already obfuscated — see Client.Prepare) responses
// and it coalesces them into batches shipped to the server's batch
// submit endpoint. A batch flushes when it reaches MaxBatch records or
// when the oldest record has waited MaxWait, whichever comes first; at
// most MaxInflight batches are on the wire at once, and a full
// pipeline backpressures the enqueue rather than growing without
// bound.
//
// Durable-ack accounting is per record: a record the server acked is
// settled immediately and never re-sent, whatever happens to the rest
// of its batch. Records refused with the retryable vocabulary (429
// overloaded / rate_limited, 503) are retried — only the refused
// subset — with capped exponential backoff, jitter, and the server's
// Retry-After honored. Everything else fails the record permanently.
//
// A Submitter is safe for concurrent use. It shares only the owning
// Client's base URL and HTTP transport; obfuscation, the noise stream,
// and the ledger stay on the caller's side (Client.Prepare is not
// concurrency-safe, like the phone app it models).
type Submitter struct {
	c   *Client
	cfg SubmitterConfig

	in       chan *pendingUpload
	inflight chan struct{}
	runDone  chan struct{}
	wg       sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	jmu sync.Mutex
	jr  *rng.RNG

	stats submitterCounters
}

// SubmitterConfig tunes a Submitter. The zero value is usable: 64
// records per batch, 50ms linger, 4 in-flight batches, 5 attempts per
// record with 100ms..5s backoff.
type SubmitterConfig struct {
	// MaxBatch flushes a batch when it reaches this many records
	// (default 64, the server caps batches at 1024).
	MaxBatch int
	// MaxWait flushes a non-empty batch when its oldest record has
	// waited this long (default 50ms) — the latency bound under light
	// load.
	MaxWait time.Duration
	// MaxInflight bounds concurrently shipping batches (default 4); a
	// full pipeline backpressures the flush loop, which backpressures
	// Submit.
	MaxInflight int
	// MaxAttempts bounds upload attempts per record (default 5).
	MaxAttempts int
	// BaseBackoff / MaxBackoff shape the retry backoff before jitter
	// (defaults 100ms / 5s); the server's Retry-After overrides a
	// smaller computed delay.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the retry jitter.
	Seed uint64
}

// SubmitOutcome is one record's final verdict: durably stored (Stored
// carries the shard's count, the submit ack figure) or failed with the
// terminal error.
type SubmitOutcome struct {
	SurveyID string
	Stored   int
	Err      error
}

// SubmitterStats are cumulative pipeline counters.
type SubmitterStats struct {
	// Submitted counts records accepted into the pipeline, Acked the
	// durably stored, Failed the permanently refused.
	Submitted int64
	Acked     int64
	Failed    int64
	// Batches counts shipped HTTP requests (retries included);
	// Retries the backoff rounds, Throttled the per-record retryable
	// refusals observed.
	Batches   int64
	Retries   int64
	Throttled int64
}

type submitterCounters struct {
	submitted atomic.Int64
	acked     atomic.Int64
	failed    atomic.Int64
	batches   atomic.Int64
	retries   atomic.Int64
	throttled atomic.Int64
}

type pendingUpload struct {
	resp *survey.Response
	done chan SubmitOutcome
}

// ErrSubmitterClosed is returned by Submit once Close has begun; the
// records already enqueued still flush.
var ErrSubmitterClosed = errors.New("client: submitter is closed")

// NewSubmitter starts a batching submit pipeline over this client's
// server connection. Close it to flush and stop.
func (c *Client) NewSubmitter(cfg SubmitterConfig) *Submitter {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 50 * time.Millisecond
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	s := &Submitter{
		c:        c,
		cfg:      cfg,
		in:       make(chan *pendingUpload, 2*cfg.MaxBatch),
		inflight: make(chan struct{}, cfg.MaxInflight),
		runDone:  make(chan struct{}),
		jr:       rng.New(cfg.Seed),
	}
	go s.run()
	return s
}

// Submit enqueues one prepared response and returns the channel its
// outcome will be delivered on (buffered; the caller may read it
// whenever). It blocks only when the whole pipeline is backed up —
// batch buffer full and MaxInflight batches on the wire — and unblocks
// on context cancellation.
func (s *Submitter) Submit(ctx context.Context, resp *survey.Response) (<-chan SubmitOutcome, error) {
	if resp == nil {
		return nil, errors.New("client: nil response")
	}
	p := &pendingUpload{resp: resp, done: make(chan SubmitOutcome, 1)}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrSubmitterClosed
	}
	select {
	case s.in <- p:
		s.stats.submitted.Add(1)
		return p.done, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SubmitWait enqueues one prepared response and blocks for its
// outcome.
func (s *Submitter) SubmitWait(ctx context.Context, resp *survey.Response) (SubmitOutcome, error) {
	done, err := s.Submit(ctx, resp)
	if err != nil {
		return SubmitOutcome{}, err
	}
	select {
	case out := <-done:
		return out, nil
	case <-ctx.Done():
		return SubmitOutcome{}, ctx.Err()
	}
}

// Close flushes everything enqueued, waits for every in-flight batch
// (retries included) to settle, and stops the pipeline. Submit after
// Close errors.
func (s *Submitter) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.runDone
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.in)
	s.mu.Unlock()
	<-s.runDone
	s.wg.Wait()
}

// Stats reports the pipeline's cumulative counters.
func (s *Submitter) Stats() SubmitterStats {
	return SubmitterStats{
		Submitted: s.stats.submitted.Load(),
		Acked:     s.stats.acked.Load(),
		Failed:    s.stats.failed.Load(),
		Batches:   s.stats.batches.Load(),
		Retries:   s.stats.retries.Load(),
		Throttled: s.stats.throttled.Load(),
	}
}

// run is the coalescing loop: collect records into a batch, flush on
// MaxBatch or MaxWait, dispatch each batch to its own shipping
// goroutine gated by the inflight bound.
func (s *Submitter) run() {
	defer close(s.runDone)
	var batch []*pendingUpload
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	for {
		select {
		case p, ok := <-s.in:
			if !ok {
				stopTimer()
				if len(batch) > 0 {
					s.dispatch(batch)
				}
				return
			}
			if len(batch) == 0 {
				timer.Reset(s.cfg.MaxWait)
			}
			batch = append(batch, p)
			if len(batch) >= s.cfg.MaxBatch {
				stopTimer()
				s.dispatch(batch)
				batch = nil
			}
		case <-timer.C:
			if len(batch) > 0 {
				s.dispatch(batch)
				batch = nil
			}
		}
	}
}

// dispatch hands a batch to a shipping goroutine, blocking while
// MaxInflight batches are already on the wire (the backpressure that
// keeps the pipeline bounded).
func (s *Submitter) dispatch(batch []*pendingUpload) {
	s.inflight <- struct{}{}
	s.wg.Add(1)
	go func() {
		defer func() {
			<-s.inflight
			s.wg.Done()
		}()
		s.ship(batch)
	}()
}

// ship drives one batch to settlement: post the pending subset, settle
// acked records immediately (never re-sent), keep retryably refused
// records for the next attempt, fail the rest. Whole-request failures
// (transport, shed 429, 503) retry the entire pending subset.
func (s *Submitter) ship(batch []*pendingUpload) {
	pending := batch
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, err := s.post(pending)
		var retryAfter time.Duration
		if err == nil {
			var next []*pendingUpload
			for i, p := range pending {
				item := res.Results[i]
				switch {
				case item.Accepted:
					s.stats.acked.Add(1)
					p.done <- SubmitOutcome{SurveyID: item.SurveyID, Stored: item.Stored}
				case retryableItem(item):
					s.stats.throttled.Add(1)
					next = append(next, p)
					if ra := time.Duration(item.RetryAfterSeconds) * time.Second; ra > retryAfter {
						retryAfter = ra
					}
					lastErr = &ThrottleError{
						Code:       item.Error,
						StatusCode: item.Status,
						RetryAfter: time.Duration(item.RetryAfterSeconds) * time.Second,
					}
				default:
					s.stats.failed.Add(1)
					p.done <- SubmitOutcome{SurveyID: p.resp.SurveyID,
						Err: fmt.Errorf("client: server refused response: %s (HTTP %d)", item.Error, item.Status)}
				}
			}
			pending = next
			if len(pending) == 0 {
				return
			}
		} else {
			if !retryable(err) {
				s.settleAll(pending, err)
				return
			}
			lastErr = err
			retryAfter = errRetryAfter(err)
		}
		if attempt+1 >= s.cfg.MaxAttempts {
			s.settleAll(pending, fmt.Errorf("client: %d attempts exhausted: %w", s.cfg.MaxAttempts, lastErr))
			return
		}
		s.stats.retries.Add(1)
		time.Sleep(backoffDelay(attempt, s.cfg.BaseBackoff, s.cfg.MaxBackoff, retryAfter, s.jitter()))
	}
}

func (s *Submitter) settleAll(pending []*pendingUpload, err error) {
	for _, p := range pending {
		s.stats.failed.Add(1)
		p.done <- SubmitOutcome{SurveyID: p.resp.SurveyID, Err: err}
	}
}

// retryableItem reports whether a refused record may clear on its own:
// the retryable shed/throttle vocabulary, but never budget exhaustion
// (a privacy budget does not replenish on a clock).
func retryableItem(item server.BatchSubmitItem) bool {
	if item.Status == http.StatusServiceUnavailable {
		return true
	}
	return item.Status == http.StatusTooManyRequests && item.Error != "budget_exhausted"
}

// post ships one batch request and decodes the request-aligned reply.
func (s *Submitter) post(pending []*pendingUpload) (*server.BatchSubmitResult, error) {
	s.stats.batches.Add(1)
	reqBody := server.BatchSubmitRequest{Responses: make([]survey.Response, len(pending))}
	for i, p := range pending {
		reqBody.Responses[i] = *p.resp
	}
	b, err := json.Marshal(&reqBody)
	if err != nil {
		return nil, fmt.Errorf("client: marshal batch: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, s.c.baseURL+"/api/v1/responses", bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: POST /api/v1/responses: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		if be := parseBudgetError(resp, body); be != nil {
			return nil, be
		}
		if te := parseThrottleError(resp, body); te != nil {
			return nil, te
		}
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("client: batch submit: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("client: batch submit: HTTP %d", resp.StatusCode)
	}
	var out server.BatchSubmitResult
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("client: decode batch reply: %w", err)
	}
	if len(out.Results) != len(pending) {
		return nil, fmt.Errorf("client: batch reply has %d results for %d records", len(out.Results), len(pending))
	}
	return &out, nil
}

// TakeVia answers a survey like Client.Take but uploads through a
// batching Submitter: Prepare runs on the caller's side (obfuscation
// and the ledger charge), the noisy response rides the pipeline, and
// the call blocks for its durable ack.
func (c *Client) TakeVia(ctx context.Context, sub *Submitter, sv *survey.Survey, workerID string, raw []survey.Answer, level core.Level) (*TakeResult, error) {
	upload, err := c.Prepare(ctx, sv, workerID, raw, level)
	if err != nil {
		return nil, err
	}
	out, err := sub.SubmitWait(ctx, upload)
	if err != nil {
		return nil, err
	}
	if out.Err != nil {
		return nil, out.Err
	}
	if err := c.SaveLedger(); err != nil {
		return nil, err
	}
	return c.takeResult(raw, upload), nil
}

func (s *Submitter) jitter() float64 {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return s.jr.Float64()
}
