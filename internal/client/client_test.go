package client

import (
	"errors"
	"time"

	"context"
	"loki/internal/budget"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loki/internal/core"
	"loki/internal/server"
	"loki/internal/store"
	"loki/internal/survey"
)

const testToken = "sekrit"

func newBackend(t *testing.T, surveys ...*survey.Survey) (*httptest.Server, store.Store) {
	t.Helper()
	st := store.NewMem()
	for _, sv := range surveys {
		if err := st.PutSurvey(sv); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := server.New(server.Config{
		Store:          st,
		Schedule:       core.DefaultSchedule(),
		RequesterToken: testToken,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { st.Close() })
	return ts, st
}

func newClient(t *testing.T, baseURL string) *Client {
	t.Helper()
	c, err := New(Config{BaseURL: baseURL, Schedule: core.DefaultSchedule(), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty base URL accepted")
	}
	bad := core.DefaultSchedule()
	bad.Sigma[core.None] = 2
	if _, err := New(Config{BaseURL: "http://x", Schedule: bad}); err == nil {
		t.Error("bad schedule accepted")
	}
	opts := core.DefaultOptions()
	opts.Delta = 0
	if _, err := New(Config{BaseURL: "http://x", Schedule: core.DefaultSchedule(), Options: &opts}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestListAndGetSurveys(t *testing.T) {
	ts, _ := newBackend(t, survey.Awareness(), survey.Lecturers([]string{"A"}))
	c := newClient(t, ts.URL)
	ctx := context.Background()

	summaries, err := c.ListSurveys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 2 {
		t.Fatalf("summaries = %d", len(summaries))
	}
	sv, err := c.GetSurvey(ctx, survey.AwarenessID)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Validate(); err != nil {
		t.Fatalf("fetched survey invalid: %v", err)
	}
	if _, err := c.GetSurvey(ctx, "ghost"); err == nil {
		t.Error("missing survey fetched")
	}
}

func TestTakeObfuscatesBeforeUpload(t *testing.T) {
	sv := survey.Lecturers([]string{"A", "B"})
	ts, st := newBackend(t, sv)
	c := newClient(t, ts.URL)
	ctx := context.Background()

	raw := []survey.Answer{
		survey.RatingAnswer("lecturer-00", 4),
		survey.RatingAnswer("lecturer-01", 5),
	}
	res, err := c.Take(ctx, sv, "alice", raw, core.High)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != core.High || len(res.Uploaded) != 2 {
		t.Fatalf("result = %+v", res)
	}
	// The stored response is the noisy one, not the raw one.
	stored, err := st.Responses(sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 1 {
		t.Fatalf("stored = %d", len(stored))
	}
	if !stored[0].Obfuscated || stored[0].PrivacyLevel != "high" {
		t.Error("upload metadata wrong")
	}
	same := stored[0].Answers[0].Rating == 4 && stored[0].Answers[1].Rating == 5
	if same {
		t.Error("raw ratings reached the server at level high")
	}
	if res.Spent.Epsilon <= 0 {
		t.Error("ledger did not record the upload")
	}
}

func TestTakeNonePassthrough(t *testing.T) {
	sv := survey.Lecturers([]string{"A"})
	ts, st := newBackend(t, sv)
	c := newClient(t, ts.URL)
	raw := []survey.Answer{survey.RatingAnswer("lecturer-00", 3)}
	res, err := c.Take(context.Background(), sv, "bob", raw, core.None)
	if err != nil {
		t.Fatal(err)
	}
	if res.Uploaded[0].Rating != 3 {
		t.Error("level none altered the answer")
	}
	if res.Unprotected != 1 {
		t.Errorf("unprotected = %d", res.Unprotected)
	}
	stored, _ := st.Responses(sv.ID)
	if stored[0].Obfuscated {
		t.Error("level none marked obfuscated")
	}
}

func TestTakeValidatesRawLocally(t *testing.T) {
	sv := survey.Lecturers([]string{"A"})
	ts, st := newBackend(t, sv)
	c := newClient(t, ts.URL)
	bad := []survey.Answer{survey.RatingAnswer("lecturer-00", 42)}
	if _, err := c.Take(context.Background(), sv, "carol", bad, core.Medium); err == nil {
		t.Fatal("invalid raw answers accepted")
	}
	if n := st.ResponseCount(sv.ID); n != 0 {
		t.Fatalf("invalid answers reached the server: %d stored", n)
	}
	if _, err := c.Take(context.Background(), nil, "carol", bad, core.Medium); err == nil {
		t.Error("nil survey accepted")
	}
	good := []survey.Answer{survey.RatingAnswer("lecturer-00", 3)}
	if _, err := c.Take(context.Background(), sv, "carol", good, core.Level(9)); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestTakeCumulativeLedger(t *testing.T) {
	sv := survey.Lecturers([]string{"A"})
	ts, _ := newBackend(t, sv)
	c := newClient(t, ts.URL)
	raw := []survey.Answer{survey.RatingAnswer("lecturer-00", 3)}
	var prev float64
	for i := 0; i < 3; i++ {
		res, err := c.Take(context.Background(), sv, "dave", raw, core.Medium)
		if err != nil {
			t.Fatal(err)
		}
		if res.Spent.Epsilon <= prev {
			t.Fatalf("cumulative ε not growing: %g", res.Spent.Epsilon)
		}
		prev = res.Spent.Epsilon
	}
	if c.Ledger().Responses() != 3 {
		t.Errorf("ledger responses = %d", c.Ledger().Responses())
	}
}

func TestServerErrorSurfaces(t *testing.T) {
	ts, _ := newBackend(t) // no surveys
	c := newClient(t, ts.URL)
	sv := survey.Lecturers([]string{"A"})
	raw := []survey.Answer{survey.RatingAnswer("lecturer-00", 3)}
	_, err := c.Take(context.Background(), sv, "eve", raw, core.Low)
	if err == nil {
		t.Fatal("submission to unpublished survey accepted")
	}
	if !strings.Contains(err.Error(), "404") && !strings.Contains(err.Error(), "not found") {
		t.Errorf("error lacks server detail: %v", err)
	}
}

func TestScheduleFetch(t *testing.T) {
	ts, _ := newBackend(t)
	c := newClient(t, ts.URL)
	info, err := c.Schedule(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Sigma) != core.NumLevels || info.Sigma[3] != 2.0 {
		t.Errorf("schedule = %+v", info)
	}
}

func TestRenderScreens(t *testing.T) {
	sv := survey.Lecturers([]string{"Dr. Mysterious Longnamed Person", "B"})
	ts, _ := newBackend(t, sv)
	c := newClient(t, ts.URL)
	ctx := context.Background()

	summaries, err := c.ListSurveys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	list := RenderSurveyList(summaries)
	if !strings.Contains(list, "none | low | medium | high") {
		t.Errorf("survey list lacks privacy levels:\n%s", list)
	}
	empty := RenderSurveyList(nil)
	if !strings.Contains(empty, "no surveys") {
		t.Error("empty list rendering")
	}

	questions := RenderQuestions(sv)
	if !strings.Contains(questions, "★★★★★") {
		t.Errorf("questions screen lacks star scale:\n%s", questions)
	}

	raw := []survey.Answer{
		survey.RatingAnswer("lecturer-00", 4),
		survey.RatingAnswer("lecturer-01", 5),
	}
	res, err := c.Take(ctx, sv, "frank", raw, core.Medium)
	if err != nil {
		t.Fatal(err)
	}
	cmp := RenderComparison(sv, res)
	if !strings.Contains(cmp, "4.00 →") || !strings.Contains(cmp, "privacy level \"medium\"") {
		t.Errorf("comparison screen:\n%s", cmp)
	}
	if !strings.Contains(cmp, "cumulative privacy loss") {
		t.Error("comparison lacks ledger line")
	}

	picker := RenderLevelPicker(c.Obfuscator())
	for _, want := range []string{"none", "low", "medium", "high", "ε="} {
		if !strings.Contains(picker, want) {
			t.Errorf("level picker lacks %q:\n%s", want, picker)
		}
	}
}

func TestRenderComparisonChoices(t *testing.T) {
	sv := survey.Awareness()
	ts, _ := newBackend(t, sv)
	c := newClient(t, ts.URL)
	raw := []survey.Answer{
		survey.ChoiceAnswer("aware", 0),
		survey.ChoiceAnswer("participate", 1),
	}
	res, err := c.Take(context.Background(), sv, "gina", raw, core.Low)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderComparison(sv, res)
	if !strings.Contains(out, "Yes") && !strings.Contains(out, "No") {
		t.Errorf("choice rendering lacks option labels:\n%s", out)
	}
}

func TestBadServerURL(t *testing.T) {
	c := newClient(t, "http://127.0.0.1:1") // nothing listens there
	if _, err := c.ListSurveys(context.Background()); err == nil {
		t.Error("unreachable server succeeded")
	}
}

func TestTakeCancelledContext(t *testing.T) {
	sv := survey.Lecturers([]string{"A"})
	ts, st := newBackend(t, sv)
	c := newClient(t, ts.URL)
	// Verify the schedule first so cancellation hits the submission.
	if err := c.VerifySchedule(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	raw := []survey.Answer{survey.RatingAnswer("lecturer-00", 3)}
	if _, err := c.Take(ctx, sv, "w", raw, core.Medium); err == nil {
		t.Fatal("cancelled context accepted")
	}
	if st.ResponseCount(sv.ID) != 0 {
		t.Error("cancelled submission reached the store")
	}
}

func TestScheduleMismatchRefusesUpload(t *testing.T) {
	// Server publishes the linear schedule; the client was built with
	// the default doubling schedule — Take must refuse.
	st := store.NewMem()
	defer st.Close()
	sv := survey.Lecturers([]string{"A"})
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Store:          st,
		Schedule:       core.LinearSchedule(),
		RequesterToken: testToken,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := newClient(t, ts.URL) // default schedule
	raw := []survey.Answer{survey.RatingAnswer("lecturer-00", 3)}
	_, err = c.Take(context.Background(), sv, "w", raw, core.High)
	if err == nil {
		t.Fatal("mismatched schedule accepted")
	}
	if !strings.Contains(err.Error(), "differs from local") {
		t.Errorf("unexpected error: %v", err)
	}
	if st.ResponseCount(sv.ID) != 0 {
		t.Error("upload happened despite schedule mismatch")
	}
	// VerifySchedule is also callable directly.
	if err := c.VerifySchedule(context.Background()); err == nil {
		t.Error("direct verification passed on mismatch")
	}
}

func TestScheduleVerificationCached(t *testing.T) {
	sv := survey.Lecturers([]string{"A"})
	ts, _ := newBackend(t, sv)
	c := newClient(t, ts.URL)
	if err := c.VerifySchedule(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Second call is a no-op even if the server goes away.
	ts.Close()
	if err := c.VerifySchedule(context.Background()); err != nil {
		t.Errorf("cached verification re-fetched: %v", err)
	}
}

func TestDurableLedgerAcrossRestart(t *testing.T) {
	sv := survey.Lecturers([]string{"A"})
	ts, _ := newBackend(t, sv)
	path := filepath.Join(t.TempDir(), "ledger.json")
	mk := func(seed uint64) *Client {
		c, err := New(Config{
			BaseURL:    ts.URL,
			Schedule:   core.DefaultSchedule(),
			Seed:       seed,
			LedgerPath: path,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	raw := []survey.Answer{survey.RatingAnswer("lecturer-00", 3)}

	c1 := mk(1)
	res1, err := c1.Take(context.Background(), sv, "w", raw, core.Medium)
	if err != nil {
		t.Fatal(err)
	}
	// "Reinstall" the app: a new client restores the spent budget.
	c2 := mk(2)
	if got := c2.Ledger().Spent().Epsilon; got != res1.Spent.Epsilon {
		t.Fatalf("restart lost privacy history: %g vs %g", got, res1.Spent.Epsilon)
	}
	res2, err := c2.Take(context.Background(), sv, "w", raw, core.Medium)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Spent.Epsilon <= res1.Spent.Epsilon {
		t.Fatal("restored ledger did not keep accumulating")
	}
	// Corrupt ledger files must fail loudly, not silently reset.
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{BaseURL: ts.URL, Schedule: core.DefaultSchedule(), LedgerPath: path}); err == nil {
		t.Fatal("corrupt ledger silently reset")
	}
}

func TestBudgetExhaustedTypedError(t *testing.T) {
	sv := survey.Lecturers([]string{"A", "B"})
	st := store.NewMem()
	t.Cleanup(func() { st.Close() })
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	cap := budget.Config{CapEpsilon: 0.5, Delta: 1e-6}
	set, err := budget.NewSet(budget.SetOptions{Shards: 1, Config: cap})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	srv, err := server.New(server.Config{
		Store: st, Schedule: core.DefaultSchedule(), RequesterToken: testToken,
		Budget: set, BudgetEnforce: "enforce",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	c := newClient(t, ts.URL)
	ctx := context.Background()
	raw := []survey.Answer{
		survey.RatingAnswer("lecturer-00", 4),
		survey.RatingAnswer("lecturer-01", 5),
	}
	var be *BudgetError
	for i := 0; i < 100; i++ {
		_, err := c.Take(ctx, sv, "worker-exhaust", raw, core.Medium)
		if err == nil {
			continue
		}
		if !errors.As(err, &be) {
			t.Fatalf("submit failed with untyped error: %v", err)
		}
		break
	}
	if be == nil {
		t.Fatal("cap never rejected a submit")
	}
	if be.RetryAfter != time.Duration(server.BudgetRetryAfterSeconds)*time.Second {
		t.Fatalf("RetryAfter = %s", be.RetryAfter)
	}
	if be.RemainingDelta != cap.Delta {
		t.Fatalf("RemainingDelta = %g, want %g", be.RemainingDelta, cap.Delta)
	}
	if be.RemainingEpsilon < 0 || be.RemainingEpsilon > cap.CapEpsilon {
		t.Fatalf("RemainingEpsilon = %g outside [0, %g]", be.RemainingEpsilon, cap.CapEpsilon)
	}
	if !strings.Contains(be.Error(), "budget exhausted") {
		t.Fatalf("Error() = %q", be.Error())
	}
}
