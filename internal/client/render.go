package client

import (
	"fmt"
	"strings"

	"loki/internal/core"
	"loki/internal/server"
	"loki/internal/survey"
)

// RenderSurveyList renders the Fig. 1(a) screen: available surveys with
// the four privacy levels on offer.
func RenderSurveyList(summaries []server.SurveySummary) string {
	var b strings.Builder
	b.WriteString("━━ Loki — Surveys ━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━\n")
	if len(summaries) == 0 {
		b.WriteString("  (no surveys available)\n")
	}
	for _, s := range summaries {
		fmt.Fprintf(&b, "  ▸ %-28s %2d questions  %d¢\n", truncate(s.Title, 28), s.Questions, s.RewardCents)
		fmt.Fprintf(&b, "    privacy: %s\n", strings.Join(s.Levels, " | "))
	}
	b.WriteString("━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━\n")
	return b.String()
}

// RenderQuestions renders the Fig. 1(b) screen: the survey's questions
// with their answer scales.
func RenderQuestions(sv *survey.Survey) string {
	var b strings.Builder
	fmt.Fprintf(&b, "━━ %s ━━\n", sv.Title)
	for i := range sv.Questions {
		q := &sv.Questions[i]
		fmt.Fprintf(&b, "%2d. %s\n", i+1, q.Text)
		switch q.Kind {
		case survey.Rating:
			fmt.Fprintf(&b, "    [%g … %g]  %s\n", q.ScaleMin, q.ScaleMax, stars(int(q.ScaleMax)))
		case survey.Numeric:
			fmt.Fprintf(&b, "    number in [%g, %g]\n", q.ScaleMin, q.ScaleMax)
		case survey.MultipleChoice:
			fmt.Fprintf(&b, "    one of: %s\n", strings.Join(q.Options, " / "))
		case survey.FreeText:
			b.WriteString("    free text\n")
		}
	}
	return b.String()
}

// RenderComparison renders the Fig. 1(c) screen: the user's true answers
// next to what was actually uploaded after obfuscation, so users "see how
// the mechanism operated".
func RenderComparison(sv *survey.Survey, res *TakeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "━━ Uploaded at privacy level %q ━━\n", res.Level)
	for i := range res.Raw {
		raw, up := res.Raw[i], res.Uploaded[i]
		q := sv.Question(raw.QuestionID)
		label := raw.QuestionID
		if q != nil {
			label = truncate(q.Text, 34)
		}
		fmt.Fprintf(&b, "  %-34s  %s → %s\n", label, answerString(q, &raw), answerString(q, &up))
	}
	fmt.Fprintf(&b, "  cumulative privacy loss: %v", res.Spent)
	if res.Unprotected > 0 {
		fmt.Fprintf(&b, " (+%d unprotected answers)", res.Unprotected)
	}
	b.WriteString("\n")
	return b.String()
}

// answerString formats an answer for display.
func answerString(q *survey.Question, a *survey.Answer) string {
	switch a.Kind {
	case survey.Rating, survey.Numeric:
		return fmt.Sprintf("%.2f", a.Rating)
	case survey.MultipleChoice:
		if q != nil && a.Choice >= 0 && a.Choice < len(q.Options) {
			return q.Options[a.Choice]
		}
		return fmt.Sprintf("choice %d", a.Choice)
	default:
		return a.Text
	}
}

// RenderLevelPicker renders the level choice with the ε each level
// implies for one rating, the transparency the paper's participants
// valued.
func RenderLevelPicker(obf *core.Obfuscator) string {
	eps := obf.EpsilonPerRating()
	sched := obf.Schedule()
	var b strings.Builder
	b.WriteString("Choose your privacy level:\n")
	for _, l := range core.Levels() {
		epsStr := "∞ (answers uploaded as-is)"
		if l != core.None {
			epsStr = fmt.Sprintf("ε=%.2f per rating", eps[l])
		}
		fmt.Fprintf(&b, "  [%d] %-6s σ=%.1f  %s\n", int(l), l, sched.Sigma[l], epsStr)
	}
	return b.String()
}

func stars(n int) string {
	if n < 1 || n > 10 {
		return ""
	}
	return strings.Repeat("★", n)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}
