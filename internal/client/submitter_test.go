package client

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"loki/internal/core"
	"loki/internal/server"
	"loki/internal/survey"
)

// batchRecorder is a fake batch submit endpoint that scripts per-record
// verdicts and counts how many times each worker ID arrives, so tests
// can assert the exactly-once contract: an acked-durable record is
// never re-sent, and a throttled record is re-sent alone.
type batchRecorder struct {
	mu       sync.Mutex
	received map[string]int
	// verdict decides a record's reply given its worker ID and how many
	// times it has now been seen (1 on first receipt).
	verdict func(workerID string, seen int) server.BatchSubmitItem
}

func (br *batchRecorder) handler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/api/v1/responses" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
			http.NotFound(w, r)
			return
		}
		var req server.BatchSubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		br.mu.Lock()
		res := server.BatchSubmitResult{Results: make([]server.BatchSubmitItem, len(req.Responses))}
		for i, resp := range req.Responses {
			br.received[resp.WorkerID]++
			item := br.verdict(resp.WorkerID, br.received[resp.WorkerID])
			item.SurveyID = resp.SurveyID
			if item.Accepted {
				res.Accepted++
			}
			res.Results[i] = item
		}
		br.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res)
	})
}

func (br *batchRecorder) count(workerID string) int {
	br.mu.Lock()
	defer br.mu.Unlock()
	return br.received[workerID]
}

func newBatchClient(t *testing.T, url string) *Client {
	t.Helper()
	c, err := New(Config{BaseURL: url, Schedule: core.DefaultSchedule(), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func batchResponse(workerID string) *survey.Response {
	return &survey.Response{
		SurveyID: survey.AwarenessID,
		WorkerID: workerID,
		Answers: []survey.Answer{
			survey.ChoiceAnswer("aware", 0),
			survey.ChoiceAnswer("participate", 1),
		},
		PrivacyLevel: "none",
	}
}

// TestSubmitterRetriesOnlyUnacked: in a batch where one record is
// accepted and the other throttled, the retry carries only the
// throttled record — the durable ack is never re-sent.
func TestSubmitterRetriesOnlyUnacked(t *testing.T) {
	br := &batchRecorder{
		received: map[string]int{},
		verdict: func(workerID string, seen int) server.BatchSubmitItem {
			if workerID == "slow" && seen == 1 {
				return server.BatchSubmitItem{
					Status: http.StatusTooManyRequests,
					Error:  server.OverloadedCode,
				}
			}
			return server.BatchSubmitItem{Accepted: true, Stored: 1}
		},
	}
	ts := httptest.NewServer(br.handler(t))
	defer ts.Close()

	c := newBatchClient(t, ts.URL)
	sub := c.NewSubmitter(SubmitterConfig{
		MaxBatch:    2,
		MaxWait:     5 * time.Millisecond,
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        7,
	})
	defer sub.Close()

	ctx := t.Context()
	fastDone, err := sub.Submit(ctx, batchResponse("fast"))
	if err != nil {
		t.Fatal(err)
	}
	slowDone, err := sub.Submit(ctx, batchResponse("slow"))
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := <-fastDone, <-slowDone
	if fast.Err != nil || fast.Stored != 1 {
		t.Fatalf("fast outcome = %+v", fast)
	}
	if slow.Err != nil || slow.Stored != 1 {
		t.Fatalf("slow outcome = %+v", slow)
	}
	if got := br.count("fast"); got != 1 {
		t.Fatalf("acked record was sent %d times, want exactly 1", got)
	}
	if got := br.count("slow"); got != 2 {
		t.Fatalf("throttled record was sent %d times, want exactly 2", got)
	}
	st := sub.Stats()
	if st.Acked != 2 || st.Retries == 0 || st.Throttled == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSubmitterExhaustsAttempts: a record that is throttled on every
// attempt fails with a throttle error once MaxAttempts is spent, and
// the wire carries it exactly MaxAttempts times.
func TestSubmitterExhaustsAttempts(t *testing.T) {
	br := &batchRecorder{
		received: map[string]int{},
		verdict: func(string, int) server.BatchSubmitItem {
			return server.BatchSubmitItem{
				Status: http.StatusServiceUnavailable,
				Error:  "shard unavailable",
			}
		},
	}
	ts := httptest.NewServer(br.handler(t))
	defer ts.Close()

	c := newBatchClient(t, ts.URL)
	sub := c.NewSubmitter(SubmitterConfig{
		MaxBatch:    1,
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Seed:        7,
	})
	defer sub.Close()

	out, err := sub.SubmitWait(t.Context(), batchResponse("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == nil {
		t.Fatal("exhausted submit reported success")
	}
	if got := br.count("doomed"); got != 3 {
		t.Fatalf("record was sent %d times, want MaxAttempts = 3", got)
	}
	if st := sub.Stats(); st.Failed != 1 || st.Acked != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSubmitterPermanentRefusalDoesNotRetry: a 400-class per-record
// refusal settles immediately; no second attempt hits the wire.
func TestSubmitterPermanentRefusalDoesNotRetry(t *testing.T) {
	br := &batchRecorder{
		received: map[string]int{},
		verdict: func(string, int) server.BatchSubmitItem {
			return server.BatchSubmitItem{
				Status: http.StatusBadRequest,
				Error:  "malformed answer",
			}
		},
	}
	ts := httptest.NewServer(br.handler(t))
	defer ts.Close()

	c := newBatchClient(t, ts.URL)
	sub := c.NewSubmitter(SubmitterConfig{MaxBatch: 1, MaxAttempts: 5, Seed: 7})
	defer sub.Close()

	out, err := sub.SubmitWait(t.Context(), batchResponse("bad"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == nil {
		t.Fatal("refused submit reported success")
	}
	if got := br.count("bad"); got != 1 {
		t.Fatalf("permanently refused record was sent %d times, want 1", got)
	}
}

// TestSubmitterBudgetExhaustedNotRetried: budget_exhausted is a 429
// that never clears on a clock, so the submitter must not burn retries
// on it.
func TestSubmitterBudgetExhaustedNotRetried(t *testing.T) {
	br := &batchRecorder{
		received: map[string]int{},
		verdict: func(string, int) server.BatchSubmitItem {
			return server.BatchSubmitItem{
				Status:            http.StatusTooManyRequests,
				Error:             "budget_exhausted",
				RetryAfterSeconds: server.BudgetRetryAfterSeconds,
			}
		},
	}
	ts := httptest.NewServer(br.handler(t))
	defer ts.Close()

	c := newBatchClient(t, ts.URL)
	sub := c.NewSubmitter(SubmitterConfig{MaxBatch: 1, MaxAttempts: 5, Seed: 7})
	defer sub.Close()

	out, err := sub.SubmitWait(t.Context(), batchResponse("broke"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == nil {
		t.Fatal("budget-exhausted submit reported success")
	}
	if got := br.count("broke"); got != 1 {
		t.Fatalf("budget-exhausted record was sent %d times, want 1", got)
	}
}

// TestSubmitterCloseFlushes: records waiting for the linger timer are
// shipped, not dropped, when the submitter closes.
func TestSubmitterCloseFlushes(t *testing.T) {
	br := &batchRecorder{
		received: map[string]int{},
		verdict: func(string, int) server.BatchSubmitItem {
			return server.BatchSubmitItem{Accepted: true, Stored: 1}
		},
	}
	ts := httptest.NewServer(br.handler(t))
	defer ts.Close()

	c := newBatchClient(t, ts.URL)
	sub := c.NewSubmitter(SubmitterConfig{MaxBatch: 64, MaxWait: time.Hour, Seed: 7})
	done, err := sub.Submit(t.Context(), batchResponse("lingering"))
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	out := <-done
	if out.Err != nil {
		t.Fatalf("flush-on-close outcome: %v", out.Err)
	}
	if got := br.count("lingering"); got != 1 {
		t.Fatalf("lingering record was sent %d times, want 1", got)
	}
	if _, err := sub.Submit(t.Context(), batchResponse("late")); !errors.Is(err, ErrSubmitterClosed) {
		t.Fatalf("submit after close = %v, want ErrSubmitterClosed", err)
	}
}
