// Package client implements the Loki app: the piece of the system that
// runs on the user's device. It lists surveys, lets the user pick a
// privacy level per survey, obfuscates every answer locally, and uploads
// only the noisy answers — the raw answers never leave the process. A
// local ledger tracks the cumulative privacy loss of everything uploaded.
//
// The package also renders the three app screens of the paper's Fig. 1 as
// text: the survey list with privacy choices, the ratings questions, and
// the obfuscated responses shown back to the user.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"loki/internal/core"
	"loki/internal/dp"
	"loki/internal/rng"
	"loki/internal/server"
	"loki/internal/survey"
)

// Client is a Loki app instance for one user. It is not safe for
// concurrent use: like the phone app it models, one client serves one
// user taking one survey at a time (its noise stream and ledger writes
// are sequential).
type Client struct {
	baseURL    string
	http       *http.Client
	obf        *core.Obfuscator
	ledger     *core.Ledger
	ledgerPath string
	r          *rng.RNG
	verified   bool

	maxAttempts int
	baseBackoff time.Duration
	maxBackoff  time.Duration
}

// Config configures a client.
type Config struct {
	// BaseURL is the backend address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Schedule must match the server's published schedule.
	Schedule core.Schedule
	// Options tune obfuscation; zero value means core.DefaultOptions.
	Options *core.Options
	// Seed drives the client's noise generator.
	Seed uint64
	// HTTPClient overrides the default client (10 s timeout).
	HTTPClient *http.Client
	// LedgerPath, when set, makes the privacy-loss ledger durable: it is
	// loaded from this file on startup (if present) and saved after
	// every upload. A user's cumulative loss must survive app restarts,
	// otherwise a reinstall silently resets it to zero.
	LedgerPath string
	// MaxAttempts bounds the attempts per HTTP request. The default 1
	// preserves the original fail-fast behavior; higher values retry
	// transport errors and retryable statuses (429 overloaded /
	// rate_limited, 503) with capped exponential backoff plus jitter,
	// honoring the server's Retry-After hint. Budget rejections are
	// never retried — a privacy budget does not replenish on a clock.
	// Retries are safe for the upload path because the ledger is
	// charged at noise-generation time, before the first attempt.
	MaxAttempts int
	// RetryBaseBackoff is the first retry's backoff before jitter
	// (default 200ms); RetryMaxBackoff caps the exponential growth
	// (default 5s). The server's Retry-After overrides a smaller
	// computed delay.
	RetryBaseBackoff time.Duration
	RetryMaxBackoff  time.Duration
}

// New builds a client, restoring its ledger from Config.LedgerPath when
// the file exists.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: config needs a base URL")
	}
	opts := core.DefaultOptions()
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	obf, err := core.NewObfuscator(cfg.Schedule, opts)
	if err != nil {
		return nil, err
	}
	var ledger *core.Ledger
	if cfg.LedgerPath != "" {
		if _, statErr := os.Stat(cfg.LedgerPath); statErr == nil {
			ledger, err = core.LoadLedgerFile(cfg.LedgerPath)
			if err != nil {
				return nil, fmt.Errorf("client: restore ledger: %w", err)
			}
		}
	}
	if ledger == nil {
		ledger, err = core.NewLedger(opts.Delta)
		if err != nil {
			return nil, err
		}
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	baseBackoff := cfg.RetryBaseBackoff
	if baseBackoff <= 0 {
		baseBackoff = 200 * time.Millisecond
	}
	maxBackoff := cfg.RetryMaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	return &Client{
		baseURL:     strings.TrimRight(cfg.BaseURL, "/"),
		http:        hc,
		obf:         obf,
		ledger:      ledger,
		ledgerPath:  cfg.LedgerPath,
		r:           rng.New(cfg.Seed),
		maxAttempts: maxAttempts,
		baseBackoff: baseBackoff,
		maxBackoff:  maxBackoff,
	}, nil
}

// Ledger returns the client's privacy-loss ledger.
func (c *Client) Ledger() *core.Ledger { return c.ledger }

// Obfuscator returns the client's obfuscator.
func (c *Client) Obfuscator() *core.Obfuscator { return c.obf }

// ListSurveys fetches the survey list (the Fig. 1a screen's data).
func (c *Client) ListSurveys(ctx context.Context) ([]server.SurveySummary, error) {
	var out []server.SurveySummary
	if err := c.getJSON(ctx, "/api/v1/surveys", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetSurvey fetches a full survey definition.
func (c *Client) GetSurvey(ctx context.Context, id string) (*survey.Survey, error) {
	var sv survey.Survey
	if err := c.getJSON(ctx, "/api/v1/surveys/"+id, &sv); err != nil {
		return nil, err
	}
	return &sv, nil
}

// TakeResult reports what a survey submission disclosed.
type TakeResult struct {
	// Raw are the user's true answers (never uploaded at level > none).
	Raw []survey.Answer
	// Uploaded are the answers actually sent to the server.
	Uploaded []survey.Answer
	// Level is the privacy level used.
	Level core.Level
	// Spent is the ledger's cumulative privacy loss after this upload.
	Spent dp.Params
	// Unprotected is the cumulative count of un-noised answers uploaded.
	Unprotected int
}

// VerifySchedule checks that the server's published noise schedule
// matches this client's. A mismatch means the displayed privacy levels
// would not correspond to the noise actually added — the transparency
// the paper's participants valued — so Take refuses to upload until the
// schedules agree. The check runs once per client and is cached.
func (c *Client) VerifySchedule(ctx context.Context) error {
	if c.verified {
		return nil
	}
	info, err := c.Schedule(ctx)
	if err != nil {
		return fmt.Errorf("client: fetch server schedule: %w", err)
	}
	local := c.obf.Schedule()
	if len(info.Sigma) != core.NumLevels {
		return fmt.Errorf("client: server schedule has %d levels, expected %d", len(info.Sigma), core.NumLevels)
	}
	for l := 0; l < core.NumLevels; l++ {
		if diff := info.Sigma[l] - local.Sigma[l]; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("client: server σ[%v]=%g differs from local %g — refusing to upload",
				core.Level(l), info.Sigma[l], local.Sigma[l])
		}
		// The wire encodes unbounded ε as -1.
		serverRR := info.RREpsilon[l]
		localRR := local.RREpsilon[l]
		if serverRR == -1 {
			if !math.IsInf(localRR, 1) {
				return fmt.Errorf("client: server rr-ε[%v] unbounded, local %g", core.Level(l), localRR)
			}
			continue
		}
		if diff := serverRR - localRR; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("client: server rr-ε[%v]=%g differs from local %g — refusing to upload",
				core.Level(l), serverRR, localRR)
		}
	}
	c.verified = true
	return nil
}

// Prepare runs everything that must happen on the device before an
// upload: verify the published schedule, validate the raw answers
// strictly, obfuscate them at source, and charge the ledger. The
// returned response holds only noisy answers and is ready for upload —
// either by Take's inline post or through a batching Submitter.
//
// The ledger is charged here, at noise-generation time, before any
// upload attempt: if the upload is retried the same disclosure must
// not be charged twice, and a conservative ledger never understates
// the loss.
func (c *Client) Prepare(ctx context.Context, sv *survey.Survey, workerID string, raw []survey.Answer, level core.Level) (*survey.Response, error) {
	if sv == nil {
		return nil, fmt.Errorf("client: nil survey")
	}
	if !level.Valid() {
		return nil, fmt.Errorf("client: invalid privacy level %d", int(level))
	}
	if err := c.VerifySchedule(ctx); err != nil {
		return nil, err
	}
	// Strict validation before anything leaves the device.
	rawResp := survey.Response{SurveyID: sv.ID, WorkerID: workerID, Answers: raw}
	if err := rawResp.Validate(sv); err != nil {
		return nil, fmt.Errorf("client: raw answers invalid: %w", err)
	}
	noisy, err := c.obf.ObfuscateResponse(sv, raw, level, c.r, c.ledger)
	if err != nil {
		return nil, err
	}
	return &survey.Response{
		SurveyID:     sv.ID,
		WorkerID:     workerID,
		Answers:      noisy,
		PrivacyLevel: level.String(),
		Obfuscated:   level != core.None,
	}, nil
}

// Take answers a survey at the given privacy level: it validates the raw
// answers strictly, obfuscates them at source, uploads only the noisy
// versions, and records the privacy cost in the local ledger.
func (c *Client) Take(ctx context.Context, sv *survey.Survey, workerID string, raw []survey.Answer, level core.Level) (*TakeResult, error) {
	upload, err := c.Prepare(ctx, sv, workerID, raw, level)
	if err != nil {
		return nil, err
	}
	var ack server.SubmitResult
	if err := c.postJSON(ctx, "/api/v1/surveys/"+sv.ID+"/responses", upload, &ack); err != nil {
		return nil, err
	}
	if !ack.Accepted {
		return nil, fmt.Errorf("client: server did not accept response to %q", sv.ID)
	}
	if err := c.SaveLedger(); err != nil {
		return nil, err
	}
	return c.takeResult(raw, upload), nil
}

// SaveLedger persists the ledger when a ledger path is configured; the
// Submitter calls it after its own uploads succeed.
func (c *Client) SaveLedger() error {
	if c.ledgerPath == "" {
		return nil
	}
	if err := c.ledger.SaveFile(c.ledgerPath); err != nil {
		return fmt.Errorf("client: persist ledger: %w", err)
	}
	return nil
}

// takeResult reports the disclosure of one uploaded response.
func (c *Client) takeResult(raw []survey.Answer, upload *survey.Response) *TakeResult {
	lvl, _ := core.ParseLevel(upload.PrivacyLevel)
	return &TakeResult{
		Raw:         raw,
		Uploaded:    upload.Answers,
		Level:       lvl,
		Spent:       c.ledger.Spent(),
		Unprotected: c.ledger.Unprotected(),
	}
}

// Schedule fetches the server's published schedule info.
func (c *Client) Schedule(ctx context.Context) (*server.ScheduleInfo, error) {
	var info server.ScheduleInfo
	if err := c.getJSON(ctx, "/api/v1/schedule", &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// ---------------------------------------------------------------------------
// HTTP plumbing

// BudgetError is the typed form of a 429 budget_exhausted refusal: the
// server refused the upload because the worker's cumulative privacy
// spend would pass the deployment cap. It carries the server's
// Retry-After hint and the remaining (ε, δ) headroom so the app can
// tell the user whether a cheaper privacy level would still fit.
type BudgetError struct {
	// RetryAfter is the server's advisory back-off (zero when the
	// header was absent or malformed).
	RetryAfter time.Duration
	// RemainingEpsilon is the ε headroom left under the cap, measured
	// at RemainingDelta.
	RemainingEpsilon float64
	RemainingDelta   float64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("client: privacy budget exhausted (remaining ε %.4g at δ %.3g, retry after %s)",
		e.RemainingEpsilon, e.RemainingDelta, e.RetryAfter)
}

// parseBudgetError recognizes the enriched 429 budget_exhausted answer;
// nil for every other error response.
func parseBudgetError(resp *http.Response, body []byte) *BudgetError {
	if resp.StatusCode != http.StatusTooManyRequests {
		return nil
	}
	var e server.BudgetExhaustedError
	if json.Unmarshal(body, &e) != nil || e.Error != "budget_exhausted" {
		return nil
	}
	be := &BudgetError{
		RemainingEpsilon: e.RemainingEpsilon,
		RemainingDelta:   e.RemainingDelta,
	}
	// Prefer the header (the HTTP-standard location); the body copy is
	// the fallback for callers that routed the payload without headers.
	secs := e.RetryAfterSeconds
	if v := resp.Header.Get("Retry-After"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			secs = n
		}
	}
	be.RetryAfter = time.Duration(secs) * time.Second
	return be
}

// ThrottleError is the typed form of a retryable refusal that is not a
// budget rejection: the server shed the request at admission
// ("overloaded"), the per-requester rate limit refused it
// ("rate_limited"), or a dependency was unavailable (503). Unlike
// BudgetError these clear on their own, so the client's backoff
// retries them when Config.MaxAttempts allows.
type ThrottleError struct {
	// Code is the server's short error code ("overloaded",
	// "rate_limited", or the raw error string on a 503).
	Code string
	// StatusCode is the HTTP status (429 or 503).
	StatusCode int
	// RetryAfter is the server's advisory back-off (zero when the
	// header was absent or malformed).
	RetryAfter time.Duration
}

// Error implements error.
func (e *ThrottleError) Error() string {
	return fmt.Sprintf("client: server refused upload: %s (HTTP %d, retry after %s)",
		e.Code, e.StatusCode, e.RetryAfter)
}

// parseThrottleError recognizes retryable 429/503 refusals (run after
// parseBudgetError, which claims the 429 budget_exhausted shape); nil
// for every other error response.
func parseThrottleError(resp *http.Response, body []byte) *ThrottleError {
	if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
		return nil
	}
	var e struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	_ = json.Unmarshal(body, &e)
	if e.Error == "" {
		e.Error = resp.Status
	}
	te := &ThrottleError{Code: e.Error, StatusCode: resp.StatusCode}
	secs := e.RetryAfterSeconds
	if v := resp.Header.Get("Retry-After"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			secs = n
		}
	}
	te.RetryAfter = time.Duration(secs) * time.Second
	return te
}

// retryable reports whether an attempt's failure may clear on its own:
// a throttle refusal or a transport-level error. Budget rejections and
// every 4xx validation refusal are final.
func retryable(err error) bool {
	var te *ThrottleError
	if errors.As(err, &te) {
		return true
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// errRetryAfter extracts the server's back-off hint, zero when absent.
func errRetryAfter(err error) time.Duration {
	var te *ThrottleError
	if errors.As(err, &te) {
		return te.RetryAfter
	}
	return 0
}

// backoffDelay computes one retry's sleep: capped exponential growth
// from base with multiplicative jitter in [0.5, 1.0), floored by the
// server's Retry-After when one was given.
func backoffDelay(attempt int, base, maxBackoff, retryAfter time.Duration, u float64) time.Duration {
	d := base
	for i := 0; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	d = d/2 + time.Duration(u*float64(d/2))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// request runs one logical API call with the client's retry policy:
// MaxAttempts attempts, backoff between them, context-cancellable
// while sleeping. body is the marshaled JSON (nil for GET) — a fresh
// reader per attempt keeps retries well-formed.
func (c *Client) request(ctx context.Context, method, path string, body []byte, dst any) error {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
		if err != nil {
			return fmt.Errorf("client: build request: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		lastErr := c.do(req, dst)
		if lastErr == nil {
			return nil
		}
		if attempt+1 >= c.maxAttempts || !retryable(lastErr) {
			return lastErr
		}
		delay := backoffDelay(attempt, c.baseBackoff, c.maxBackoff, errRetryAfter(lastErr), c.r.Float64())
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("client: %s %s: %w (last error: %v)", method, path, ctx.Err(), lastErr)
		case <-t.C:
		}
	}
}

func (c *Client) getJSON(ctx context.Context, path string, dst any) error {
	return c.request(ctx, http.MethodGet, path, nil, dst)
}

func (c *Client) postJSON(ctx context.Context, path string, body, dst any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: marshal request: %w", err)
	}
	return c.request(ctx, http.MethodPost, path, b, dst)
}

func (c *Client) do(req *http.Request, dst any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode >= 300 {
		if be := parseBudgetError(resp, body); be != nil {
			return be
		}
		if te := parseThrottleError(resp, body); te != nil {
			return te
		}
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("client: %s %s: %s (HTTP %d)", req.Method, req.URL.Path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("client: %s %s: HTTP %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	if dst == nil {
		return nil
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}
