package experiments

import (
	"strings"
	"testing"

	"loki/internal/core"
	"loki/internal/population"
)

func TestLinkageGrowth(t *testing.T) {
	cfg := population.DefaultConfig()
	cfg.RegistrySize = 40_000
	res, err := RunLinkageGrowth(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 3 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	// Anonymity collapses monotonically as surveys add attributes.
	for i := 1; i < len(res.Stages); i++ {
		if res.Stages[i].MedianK > res.Stages[i-1].MedianK {
			t.Errorf("median k grew from stage %d to %d: %d -> %d",
				i-1, i, res.Stages[i-1].MedianK, res.Stages[i].MedianK)
		}
		if res.Stages[i].FractionUnique < res.Stages[i-1].FractionUnique {
			t.Errorf("uniqueness shrank from stage %d to %d", i-1, i)
		}
	}
	// After survey 1 (day/month only) nobody is identifiable; after all
	// three most people are.
	if res.Stages[0].FractionUnique > 0.01 {
		t.Errorf("day/month alone identifies %.1f%%", 100*res.Stages[0].FractionUnique)
	}
	if res.Stages[0].MedianK < 10 {
		t.Errorf("day/month median k = %d, expected large", res.Stages[0].MedianK)
	}
	if res.Stages[2].FractionUnique < 0.4 {
		t.Errorf("full QI identifies only %.1f%%", 100*res.Stages[2].FractionUnique)
	}
	out := res.Render()
	for _, want := range []string{"A6", "astrology", "zip", "median"} {
		if !strings.Contains(out, want) {
			t.Errorf("A6 render lacks %q", want)
		}
	}
}

func TestLinkageGrowthInvalidConfig(t *testing.T) {
	cfg := population.DefaultConfig()
	cfg.NumZIPs = 0
	if _, err := RunLinkageGrowth(1, cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestBalancedCollection(t *testing.T) {
	bad := DefaultBalanceConfig()
	bad.Users = 0
	if _, err := RunBalancedCollection(bad); err == nil {
		t.Error("0 users accepted")
	}
	bad = DefaultBalanceConfig()
	bad.Trials = 0
	if _, err := RunBalancedCollection(bad); err == nil {
		t.Error("0 trials accepted")
	}

	cfg := DefaultBalanceConfig()
	cfg.Trials = 150
	res, err := RunBalancedCollection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 4 {
		t.Fatalf("plans = %d", len(res.Plans))
	}
	balanced := res.Plans[0]
	if balanced.PredictedSE > cfg.TargetSE*1.001 {
		t.Errorf("balanced plan misses target: %.4f > %.2f", balanced.PredictedSE, cfg.TargetSE)
	}
	// Realised error tracks the prediction (Monte Carlo slack ×1.5).
	if balanced.RealisedRMSE > balanced.PredictedSE*1.5 {
		t.Errorf("realised RMSE %.3f far above predicted SE %.3f",
			balanced.RealisedRMSE, balanced.PredictedSE)
	}
	// Uniform-low spends more privacy for its extra accuracy.
	var uniLow, uniHigh BalancePlanStats
	for _, p := range res.Plans {
		switch p.Name {
		case "uniform low":
			uniLow = p
		case "uniform high":
			uniHigh = p
		}
	}
	if balanced.TotalRho >= uniLow.TotalRho {
		t.Errorf("balanced ρ %g not below uniform-low %g", balanced.TotalRho, uniLow.TotalRho)
	}
	if uniHigh.PredictedSE <= cfg.TargetSE {
		t.Errorf("uniform high unexpectedly meets the target (%.3f)", uniHigh.PredictedSE)
	}
	if !strings.Contains(res.Render(), "A8") {
		t.Error("A8 render incomplete")
	}
}

func TestNoiseComparison(t *testing.T) {
	bad := DefaultNoiseComparisonConfig()
	bad.Delta = 0
	if _, err := RunNoiseComparison(bad); err == nil {
		t.Error("delta 0 accepted")
	}
	bad = DefaultNoiseComparisonConfig()
	bad.N = 0
	if _, err := RunNoiseComparison(bad); err == nil {
		t.Error("n=0 accepted")
	}
	bad = DefaultNoiseComparisonConfig()
	bad.Schedule.Sigma[core.None] = 1
	if _, err := RunNoiseComparison(bad); err == nil {
		t.Error("bad schedule accepted")
	}

	cfg := DefaultNoiseComparisonConfig()
	cfg.Trials = 200
	res, err := RunNoiseComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Variance-matched Laplace has (about) the same utility.
		if row.RMSELaplaceMatched > row.RMSEGaussian*1.6 || row.RMSEGaussian > row.RMSELaplaceMatched*1.6 {
			t.Errorf("level %v: variance-matched RMSEs diverge: %.3f vs %.3f",
				row.Level, row.RMSEGaussian, row.RMSELaplaceMatched)
		}
		// Its pure ε per release is smaller than the Gaussian's
		// δ-converted ε.
		if row.EpsilonLaplace >= row.EpsilonGaussian {
			t.Errorf("level %v: laplace ε %.1f not below gaussian ε %.1f",
				row.Level, row.EpsilonLaplace, row.EpsilonGaussian)
		}
		// ε-matched Laplace therefore needs less noise.
		if row.EpsilonMatchedSigma >= row.SigmaGaussian {
			t.Errorf("level %v: ε-matched laplace σ %.3f not below gaussian σ %.2f",
				row.Level, row.EpsilonMatchedSigma, row.SigmaGaussian)
		}
	}
	// Higher levels mean more noise and (weakly) more error.
	if res.Rows[2].RMSEGaussian <= res.Rows[0].RMSEGaussian {
		t.Error("RMSE not growing with level")
	}
	if !strings.Contains(res.Render(), "A7") {
		t.Error("A7 render incomplete")
	}
}
