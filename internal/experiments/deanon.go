package experiments

import (
	"fmt"
	"strings"

	"loki/internal/attack"
	"loki/internal/platform"
	"loki/internal/population"
	"loki/internal/rng"
	"loki/internal/survey"
)

// Paper §2 headline numbers, kept in one place for every report.
const (
	PaperUniqueWorkers  = 400 // unique users across the surveys
	PaperLinkable       = 72  // took all three profiling surveys
	PaperHealthExposed  = 18  // respiratory health inferred
	PaperCostDollars    = 30  // "cost less than $30"
	PaperAwarenessN     = 100 // follow-up survey size
	PaperUnawareRefuse  = 73  // did not know / would not participate
	PaperVictimsUnaware = 15  // of the 18 exposed, among the 73
)

// DeanonConfig parameterizes the §2 reproduction.
type DeanonConfig struct {
	Seed       uint64
	Population population.Config
	Platform   platform.Config
	// Quotas are the response targets for the astrology, matchmaking,
	// coverage, health and awareness surveys, in that order.
	Quotas [5]int
	// Appeals are the per-survey worker-interest fractions, same order.
	// The health survey's lower appeal reproduces the paper's limited
	// overlap between de-anonymized workers and health respondents
	// (18 of 72).
	Appeals [5]float64
	// PostGapDays is the delay between consecutive survey postings
	// ("posted independently over several days").
	PostGapDays int
	// ExtraDays keeps the platform running after the last posting so
	// late quotas can fill.
	ExtraDays int
	Attack    attack.Config
}

// DefaultDeanonConfig returns the configuration that reproduces the
// paper's §2 shape.
func DefaultDeanonConfig() DeanonConfig {
	return DeanonConfig{
		Seed:        1,
		Population:  population.DefaultConfig(),
		Platform:    platform.DefaultConfig(),
		Quotas:      [5]int{200, 200, 200, 60, 100},
		Appeals:     [5]float64{1, 1, 1, 0.30, 1},
		PostGapDays: 1,
		ExtraDays:   2,
		Attack:      attack.DefaultConfig(),
	}
}

// DeanonResult is the outcome of the §2 reproduction: the attack
// pipeline counts (E1) and the awareness survey counts (E2), with
// platform economics.
type DeanonResult struct {
	// Attack is the pipeline outcome over the four §2 surveys.
	Attack *attack.Result
	// RegistryUniqueFraction is the population-level quasi-identifier
	// uniqueness (Sweeney/Golle check).
	RegistryUniqueFraction float64
	// CostCents and Days are the requester's spend and elapsed time.
	CostCents int
	Days      int
	// Awareness (E2): of AwarenessRespondents, UnawareRefuse answered
	// "did not know" and "would not participate"; VictimsUnaware is how
	// many health-exposed victims are among them.
	AwarenessRespondents int
	UnawareRefuse        int
	VictimsUnaware       int
	// Stats carries per-survey platform bookkeeping.
	Stats []platform.HITStats
	// HealthResponses is the requester's collected health-survey data,
	// kept so downstream analyses (the E7 utility check) can aggregate
	// it without re-running the platform.
	HealthResponses []survey.Response
}

// RunDeanonymization executes the full §2 reproduction: generate the
// region, open the platform, post the three profiling surveys plus the
// health and awareness surveys over several simulated days, then run the
// linkage→re-identification→inference attack on the requester's view.
func RunDeanonymization(cfg DeanonConfig) (*DeanonResult, error) {
	r := rng.New(cfg.Seed)
	pop, err := population.Generate(cfg.Population, r.Split())
	if err != nil {
		return nil, fmt.Errorf("deanon: %w", err)
	}
	reg := population.NewRegistry(pop)
	pl, err := platform.New(pop, cfg.Platform, r.Split())
	if err != nil {
		return nil, fmt.Errorf("deanon: %w", err)
	}

	surveys := []*survey.Survey{
		survey.Astrology(), survey.Matchmaking(), survey.Coverage(),
		survey.Health(), survey.Awareness(),
	}
	gap := cfg.PostGapDays
	if gap < 1 {
		gap = 1
	}
	for i, sv := range surveys {
		appeal := cfg.Appeals[i]
		if appeal == 0 {
			appeal = 1
		}
		if err := pl.PostSurveyAppeal(sv, cfg.Quotas[i], appeal); err != nil {
			return nil, fmt.Errorf("deanon: %w", err)
		}
		if err := pl.RunDays(gap); err != nil {
			return nil, fmt.Errorf("deanon: %w", err)
		}
	}
	if err := pl.RunDays(cfg.ExtraDays); err != nil {
		return nil, fmt.Errorf("deanon: %w", err)
	}

	// The requester's view: responses to the four attack surveys (the
	// awareness survey is analysed separately, not joined). Streamed
	// into one pre-sized slice — the attack pipeline wants a flat join —
	// rather than materializing a per-survey copy first.
	attackSurveys := map[string]*survey.Survey{}
	total := 0
	for _, sv := range surveys[:4] {
		attackSurveys[sv.ID] = sv
		total += pl.ResponseCount(sv.ID)
	}
	responses := make([]survey.Response, 0, total)
	for _, sv := range surveys[:4] {
		err := pl.ScanResponses(sv.ID, func(r *survey.Response) error {
			responses = append(responses, *r)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("deanon: %w", err)
		}
	}
	pipe, err := attack.New(reg, cfg.Attack)
	if err != nil {
		return nil, fmt.Errorf("deanon: %w", err)
	}
	atk, err := pipe.Run(attackSurveys, responses, pl.TruePersonOf)
	if err != nil {
		return nil, fmt.Errorf("deanon: %w", err)
	}

	healthResponses := make([]survey.Response, 0, pl.ResponseCount(survey.HealthID))
	err = pl.ScanResponses(survey.HealthID, func(r *survey.Response) error {
		healthResponses = append(healthResponses, *r)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("deanon: %w", err)
	}
	res := &DeanonResult{
		Attack:                 atk,
		RegistryUniqueFraction: reg.FractionUnique(),
		CostCents:              pl.CostCents(),
		Days:                   pl.Day(),
		Stats:                  pl.Stats(),
		HealthResponses:        healthResponses,
	}

	// E2: tally the awareness survey, streamed — the tally never needs
	// the responses materialized.
	aw := surveys[4]
	unawareRefuseIDs := make(map[string]bool)
	err = pl.ScanResponses(aw.ID, func(resp *survey.Response) error {
		res.AwarenessRespondents++
		aware := resp.Answer("aware")
		part := resp.Answer("participate")
		if aware == nil || part == nil {
			return nil
		}
		// Option order is YesNo: index 1 = "No".
		if aware.Choice == 1 && part.Choice == 1 {
			res.UnawareRefuse++
			unawareRefuseIDs[resp.WorkerID] = true
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("deanon: %w", err)
	}
	for _, v := range atk.Victims {
		if unawareRefuseIDs[v.WorkerID] {
			res.VictimsUnaware++
		}
	}
	return res, nil
}

// Render produces the E1/E2 report with paper-vs-measured columns.
func (res *DeanonResult) Render() string {
	var b strings.Builder

	t := NewTable("E1 — §2 de-anonymization pipeline (paper vs reproduction)",
		"stage", "paper", "measured")
	t.AddVals("unique workers across surveys", PaperUniqueWorkers, res.Attack.UniqueWorkers)
	t.AddVals("dropped by redundancy filter", "—", res.Attack.FilteredInconsistent)
	t.AddVals("took all 3 profiling surveys (linkable)", PaperLinkable, res.Attack.Linkable)
	t.AddVals("re-identified (unique registry match)", "\"de-anonymized\"", res.Attack.Reidentified)
	t.AddVals("  of which confirmed correct", "—", res.Attack.ReidentifiedCorrect)
	t.AddVals("  ambiguous (k ≥ 2)", "—", res.Attack.Ambiguous)
	t.AddVals("  no registry match", "—", res.Attack.Unmatched)
	t.AddVals("respiratory health inferred", PaperHealthExposed, res.Attack.HealthExposed)
	t.AddVals("requester cost", fmt.Sprintf("< $%d", PaperCostDollars),
		fmt.Sprintf("$%.2f", float64(res.CostCents)/100))
	t.AddVals("elapsed time", "a few days", fmt.Sprintf("%d days", res.Days))
	b.WriteString(t.String())

	fmt.Fprintf(&b, "\nregistry quasi-identifier uniqueness: %s (literature: 63%%–87%%)\n",
		fmtPct(res.RegistryUniqueFraction))

	ks := res.Attack.KValues()
	if len(ks) > 0 {
		labels := make([]string, len(ks))
		vals := make([]float64, len(ks))
		for i, k := range ks {
			labels[i] = fmt.Sprintf("k=%d", k)
			vals[i] = float64(res.Attack.KHistogram[k])
		}
		b.WriteString("\nanonymity-set sizes of linkable workers:\n")
		b.WriteString(BarChart(labels, vals, 40))
	}

	t2 := NewTable("\nE2 — awareness follow-up survey", "quantity", "paper", "measured")
	t2.AddVals("respondents", PaperAwarenessN, res.AwarenessRespondents)
	t2.AddVals("did not know & would not participate", PaperUnawareRefuse, res.UnawareRefuse)
	t2.AddVals("health-exposed victims among them",
		fmt.Sprintf("%d of %d", PaperVictimsUnaware, PaperHealthExposed),
		fmt.Sprintf("%d of %d", res.VictimsUnaware, res.Attack.HealthExposed))
	b.WriteString(t2.String())

	t3 := NewTable("\nplatform bookkeeping", "survey", "responses", "quota", "posted day", "closed day", "cost")
	for _, st := range res.Stats {
		closed := "open"
		if st.ClosedDay >= 0 {
			closed = fmt.Sprint(st.ClosedDay)
		}
		t3.AddVals(st.SurveyID, st.Responses, st.Quota, st.PostedDay, closed,
			fmt.Sprintf("$%.2f", float64(st.CostCents)/100))
	}
	b.WriteString(t3.String())
	return b.String()
}

// RunAwareness is the E2 entry point: it runs the §2 pipeline and
// returns the same result (the awareness tallies are part of it).
func RunAwareness(cfg DeanonConfig) (*DeanonResult, error) {
	return RunDeanonymization(cfg)
}

// RunIDPolicyAblation (A2) runs the §2 pipeline under both worker-ID
// policies and reports how linkability collapses without stable IDs.
func RunIDPolicyAblation(cfg DeanonConfig) (stable, pseudonymous *DeanonResult, err error) {
	cfg.Platform.IDPolicy = platform.StableIDs
	stable, err = RunDeanonymization(cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.Platform.IDPolicy = platform.PseudonymousIDs
	pseudonymous, err = RunDeanonymization(cfg)
	if err != nil {
		return nil, nil, err
	}
	return stable, pseudonymous, nil
}

// RenderIDPolicyAblation reports A2.
func RenderIDPolicyAblation(stable, pseudonymous *DeanonResult) string {
	t := NewTable("A2 — worker-ID policy ablation", "quantity", "stable IDs (AMT)", "per-survey pseudonyms")
	t.AddVals("unique worker IDs observed", stable.Attack.UniqueWorkers, pseudonymous.Attack.UniqueWorkers)
	t.AddVals("linkable workers", stable.Attack.Linkable, pseudonymous.Attack.Linkable)
	t.AddVals("re-identified", stable.Attack.Reidentified, pseudonymous.Attack.Reidentified)
	t.AddVals("health exposed", stable.Attack.HealthExposed, pseudonymous.Attack.HealthExposed)
	return t.String()
}

// RunFilterAblation (A3) runs the §2 pipeline with and without the
// redundancy filter and reports attack precision under both.
func RunFilterAblation(cfg DeanonConfig) (filtered, unfiltered *DeanonResult, err error) {
	cfg.Attack.FilterInconsistent = true
	filtered, err = RunDeanonymization(cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.Attack.FilterInconsistent = false
	unfiltered, err = RunDeanonymization(cfg)
	if err != nil {
		return nil, nil, err
	}
	return filtered, unfiltered, nil
}

// RenderFilterAblation reports A3.
func RenderFilterAblation(filtered, unfiltered *DeanonResult) string {
	t := NewTable("A3 — redundancy-filter ablation", "quantity", "filter on", "filter off")
	t.AddVals("workers dropped by filter", filtered.Attack.FilteredInconsistent, unfiltered.Attack.FilteredInconsistent)
	t.AddVals("linkable workers", filtered.Attack.Linkable, unfiltered.Attack.Linkable)
	t.AddVals("re-identified", filtered.Attack.Reidentified, unfiltered.Attack.Reidentified)
	t.AddVals("  confirmed correct", filtered.Attack.ReidentifiedCorrect, unfiltered.Attack.ReidentifiedCorrect)
	t.AddVals("precision", fmtPct(filtered.Attack.Precision()), fmtPct(unfiltered.Attack.Precision()))
	t.AddVals("no registry match", filtered.Attack.Unmatched, unfiltered.Attack.Unmatched)
	return t.String()
}
