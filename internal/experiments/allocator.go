package experiments

import (
	"fmt"
	"math"

	"loki/internal/core"
	"loki/internal/rng"
	"loki/internal/survey"
)

// ---------------------------------------------------------------------------
// A8 — balancing privacy loss across the user base

// BalanceConfig parameterizes the allocator ablation.
type BalanceConfig struct {
	Seed uint64
	// Users is the cohort size.
	Users int
	// PriorSurveysMax: each user has already answered Uniform(0..max)
	// surveys at medium, giving a heterogeneous spent-budget profile.
	PriorSurveysMax int
	// BudgetEpsilon is every user's lifetime ε allowance.
	BudgetEpsilon float64
	// TargetSE is the accuracy the requester asks for.
	TargetSE float64
	// Trials is the Monte Carlo repetition count for the realised-error
	// columns.
	Trials    int
	Schedule  core.Schedule
	Options   core.Options
	AnswerStd float64
	TrueMean  float64
}

// DefaultBalanceConfig returns the A8 setup: 131 users (the trial's
// cohort size) with heterogeneous histories.
func DefaultBalanceConfig() BalanceConfig {
	return BalanceConfig{
		Seed:            23,
		Users:           131,
		PriorSurveysMax: 12,
		BudgetEpsilon:   900,
		TargetSE:        0.08,
		Trials:          400,
		Schedule:        core.DefaultSchedule(),
		Options:         core.DefaultOptions(),
		AnswerStd:       0.6,
		TrueMean:        4.2,
	}
}

// BalancePlanStats summarises one plan.
type BalancePlanStats struct {
	Name           string
	Participants   int
	PerLevel       [core.NumLevels]int
	PredictedSE    float64
	RealisedRMSE   float64
	TotalRho       float64
	MaxUserEpsilon float64
}

// BalanceResult compares the balanced plan with uniform baselines.
type BalanceResult struct {
	Config BalanceConfig
	Plans  []BalancePlanStats
}

// RunBalancedCollection (A8) exercises the paper's claim that cumulative
// privacy loss "can be tracked and balanced across the user base, while
// ensuring sufficient accuracy": users carry heterogeneous spent
// budgets; the allocator assigns levels so the aggregate hits a target
// standard error without pushing anyone over budget, and is compared to
// answering uniformly at each fixed level.
func RunBalancedCollection(cfg BalanceConfig) (*BalanceResult, error) {
	if cfg.Users < 1 {
		return nil, fmt.Errorf("balance: users %d < 1", cfg.Users)
	}
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("balance: trials %d < 1", cfg.Trials)
	}
	obf, err := core.NewObfuscator(cfg.Schedule, cfg.Options)
	if err != nil {
		return nil, err
	}
	al, err := core.NewAllocator(obf, cfg.AnswerStd)
	if err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)

	// One-question rating survey (a lecturer question).
	sv := survey.Lecturers([]string{"X"})
	q := &sv.Questions[0]

	// Heterogeneous histories: k prior medium surveys of the same shape.
	perSurveyRho := 0.0
	{
		probe, err := core.NewLedger(cfg.Options.Delta)
		if err != nil {
			return nil, err
		}
		if err := probe.RecordResponse(obf, sv, core.Medium); err != nil {
			return nil, err
		}
		perSurveyRho = probe.Rho()
	}
	users := make([]core.UserBudget, cfg.Users)
	for i := range users {
		k := r.Intn(cfg.PriorSurveysMax + 1)
		users[i] = core.UserBudget{
			ID:            fmt.Sprintf("user-%03d", i),
			SpentRho:      float64(k) * perSurveyRho,
			BudgetEpsilon: cfg.BudgetEpsilon,
		}
	}

	res := &BalanceResult{Config: cfg}
	evaluate := func(name string, plan *core.AllocationResult) error {
		st := BalancePlanStats{
			Name:           name,
			Participants:   plan.Participants,
			PerLevel:       plan.PerLevel,
			PredictedSE:    plan.PredictedSE,
			TotalRho:       plan.TotalRho,
			MaxUserEpsilon: plan.MaxUserEpsilon,
		}
		// Monte Carlo realised error of the plan.
		var sse float64
		for t := 0; t < cfg.Trials; t++ {
			var sum float64
			n := 0
			for _, a := range plan.Assignments {
				if !a.Participate {
					continue
				}
				raw := drawRating(r, cfg.TrueMean, cfg.AnswerStd)
				noisy, err := obf.ObfuscateAnswer(q, survey.RatingAnswer(q.ID, raw), a.Level, r)
				if err != nil {
					return err
				}
				sum += noisy.Rating
				n++
			}
			if n == 0 {
				st.RealisedRMSE = math.Inf(1)
				break
			}
			err := sum/float64(n) - cfg.TrueMean
			sse += err * err
		}
		if !math.IsInf(st.RealisedRMSE, 1) {
			st.RealisedRMSE = math.Sqrt(sse / float64(cfg.Trials))
		}
		res.Plans = append(res.Plans, st)
		return nil
	}

	balanced, err := al.Plan(sv, users, cfg.TargetSE)
	if err != nil {
		return nil, err
	}
	if err := evaluate("balanced (target SE)", balanced); err != nil {
		return nil, err
	}
	for _, lvl := range []core.Level{core.Low, core.Medium, core.High} {
		uni, err := al.UniformPlan(sv, users, lvl)
		if err != nil {
			return nil, err
		}
		if err := evaluate("uniform "+lvl.String(), uni); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render reports A8.
func (res *BalanceResult) Render() string {
	t := NewTable(fmt.Sprintf("A8 — balancing privacy across the user base (%d users, target SE %.2f)",
		res.Config.Users, res.Config.TargetSE),
		"plan", "participants", "none/low/med/high", "predicted SE", "realised RMSE", "total ρ", "max user ε")
	for _, p := range res.Plans {
		t.AddVals(p.Name, p.Participants,
			fmt.Sprintf("%d/%d/%d/%d", p.PerLevel[0], p.PerLevel[1], p.PerLevel[2], p.PerLevel[3]),
			fmtF(p.PredictedSE, 3), fmtF(p.RealisedRMSE, 3), fmtF(p.TotalRho, 1), fmtF(p.MaxUserEpsilon, 0))
	}
	return t.String() +
		"the balanced plan meets the accuracy target while upgrading only users with\n" +
		"budget headroom; uniform low burns everyone's budget, uniform high misses the target\n"
}
