package experiments

import (
	"testing"

	"loki/internal/core"
)

// TestDeanonStableAcrossSeeds: the §2 pipeline's shape must not be a
// one-seed artifact — across several seeds the pipeline stays in the
// qualitative bands the paper reports.
func TestDeanonStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed stability skipped in -short")
	}
	for seed := uint64(2); seed <= 6; seed++ {
		cfg := fastDeanonConfig()
		cfg.Seed = seed
		res, err := RunDeanonymization(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a := res.Attack
		if a.Linkable == 0 {
			t.Errorf("seed %d: no linkable workers", seed)
		}
		if a.Reidentified == 0 {
			t.Errorf("seed %d: no re-identifications", seed)
		}
		if a.ReidentifiedCorrect != a.Reidentified {
			t.Errorf("seed %d: wrong identities recovered (%d/%d)",
				seed, a.ReidentifiedCorrect, a.Reidentified)
		}
		// The majority of linkable quasi-identifiers resolve uniquely
		// (the registry is calibrated to 60–90% uniqueness).
		if frac := float64(a.Reidentified) / float64(a.Linkable); frac < 0.4 {
			t.Errorf("seed %d: only %.0f%% of linkable workers unique", seed, 100*frac)
		}
		if a.HealthExposed > a.Reidentified {
			t.Errorf("seed %d: exposure exceeds re-identification", seed)
		}
	}
}

// TestTrialStableAcrossSeeds: Fig. 2's envelope ordering (high-privacy
// bins deviate more) is a statement about expectation — a single cohort
// with an 18-student none bin can wobble — so the ordering is asserted
// on the average over seeds, while per-seed checks guard the error
// magnitude and unbiasedness.
func TestTrialStableAcrossSeeds(t *testing.T) {
	var meanNone, meanHigh float64
	const seeds = 5
	for seed := uint64(1); seed <= seeds; seed++ {
		cfg := DefaultTrialConfig()
		cfg.Seed = seed
		res, err := RunLecturerTrial(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		meanNone += res.MeanAbsDeviation[core.None] / seeds
		meanHigh += res.MeanAbsDeviation[core.High] / seeds
		if res.NaiveRMSE > 0.35 {
			t.Errorf("seed %d: naive RMSE %.3f too large", seed, res.NaiveRMSE)
		}
		// Unbiasedness holds for every seed: few significant bins.
		if res.TestedBins > 0 {
			if frac := float64(res.SignificantBins) / float64(res.TestedBins); frac > 0.25 {
				t.Errorf("seed %d: %.0f%% of bins flag as biased", seed, 100*frac)
			}
		}
	}
	if meanHigh <= meanNone {
		t.Errorf("across %d seeds the high bin (%.3f) does not deviate more than the none bin (%.3f)",
			seeds, meanHigh, meanNone)
	}
}

// TestDefenseStableAcrossSeeds: at-source obfuscation beats the attack
// for every seed.
func TestDefenseStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed stability skipped in -short")
	}
	for seed := uint64(3); seed <= 5; seed++ {
		cfg := DefaultDefenseConfig()
		cfg.Deanon = fastDeanonConfig()
		cfg.Deanon.Seed = seed
		res, err := RunDefense(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Loki.Attack.HealthExposed >= res.Raw.Attack.HealthExposed &&
			res.Raw.Attack.HealthExposed > 0 {
			t.Errorf("seed %d: defense failed (%d vs %d exposed)",
				seed, res.Loki.Attack.HealthExposed, res.Raw.Attack.HealthExposed)
		}
	}
}
