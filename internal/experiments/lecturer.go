package experiments

import (
	"fmt"
	"math"
	"strings"

	"loki/internal/aggregate"
	"loki/internal/core"
	"loki/internal/population"
	"loki/internal/rng"
	"loki/internal/stats"
	"loki/internal/survey"
)

// Paper §3.2 trial numbers.
var (
	// PaperBinCounts is the observed privacy take-up: none/low/medium/high.
	PaperBinCounts = [core.NumLevels]int{18, 32, 51, 30}
)

// Paper §3.2 anecdote: the author's true (university) rating and the
// noisy Loki estimate.
const (
	PaperTrialStudents  = 131
	PaperTrialLecturers = 13
	PaperAnecdoteTrue   = 4.61
	PaperAnecdoteNoisy  = 4.72
)

// TrialConfig parameterizes the Loki lecturer-rating trial (Fig. 2).
type TrialConfig struct {
	Seed      uint64
	Students  int
	Lecturers int
	// BinCounts pins the exact number of students per privacy level;
	// the counts must sum to Students. Zero-value uses PaperBinCounts.
	BinCounts [core.NumLevels]int
	Schedule  core.Schedule
	Options   core.Options
	// ParticipationLo/Hi bound the per-lecturer probability that a
	// student rates that lecturer (not every student took every course),
	// which produces the per-lecturer histogram of Fig. 2.
	ParticipationLo, ParticipationHi float64
}

// DefaultTrialConfig reproduces the paper's trial: 131 students, 13
// lecturers, bins 18/32/51/30, doubling σ schedule.
func DefaultTrialConfig() TrialConfig {
	return TrialConfig{
		Seed:            7,
		Students:        PaperTrialStudents,
		Lecturers:       PaperTrialLecturers,
		BinCounts:       PaperBinCounts,
		Schedule:        core.DefaultSchedule(),
		Options:         core.DefaultOptions(),
		ParticipationLo: 0.55,
		ParticipationHi: 0.95,
	}
}

// LecturerBin is one privacy bin's outcome for one lecturer (a Fig. 2
// point: deviation of the bin mean from the overall mean, plus the
// histogram count).
type LecturerBin struct {
	Level     core.Level
	N         int
	Mean      float64
	Deviation float64
}

// LecturerResult is one lecturer's column in Fig. 2.
type LecturerResult struct {
	Name string
	// TruthMean is the noiseless mean of the raw ratings actually given
	// (what the trusted third party would have computed on this sample).
	TruthMean float64
	// Quality is the lecturer's long-run ground-truth quality (the
	// university's multi-year rating in the paper's anecdote).
	Quality float64
	// OverallMean is the mean over all noisy ratings; PooledMean is the
	// inverse-variance combination of bin means.
	OverallMean float64
	PooledMean  float64
	Raters      int
	Bins        [core.NumLevels]LecturerBin
}

// TrialResult is the full Fig. 2 dataset plus summary error metrics.
type TrialResult struct {
	Config    TrialConfig
	Lecturers []LecturerResult
	// BinTotals counts students per privacy level (E6's observed
	// take-up for this cohort).
	BinTotals [core.NumLevels]int
	// MaxAbsDeviation[l] is the largest |bin mean − overall mean| across
	// lecturers for level l — the envelope of the Fig. 2 curves.
	MaxAbsDeviation [core.NumLevels]float64
	// MeanAbsDeviation[l] averages |deviation| across lecturers.
	MeanAbsDeviation [core.NumLevels]float64
	// NaiveRMSE and PooledRMSE measure both estimators against the
	// noiseless sample means, across lecturers (ablation A4).
	NaiveRMSE  float64
	PooledRMSE float64
	// TestedBins and SignificantBins report the Welch t-test of every
	// populated bin against the other bins of the same lecturer at
	// α=0.05. Because at-source noise is zero-mean, only ≈5% of bins
	// should flag — the statistical confirmation that Fig. 2's bin
	// deviations are sampling noise, not bias.
	TestedBins      int
	SignificantBins int
}

// RunLecturerTrial reproduces the §3.2 trial: a cohort of students with
// pinned privacy-level take-up rates lecturers through at-source
// obfuscation; the requester-side estimator then recovers per-bin and
// overall means.
func RunLecturerTrial(cfg TrialConfig) (*TrialResult, error) {
	if cfg.Students < 1 {
		return nil, fmt.Errorf("trial: students %d < 1", cfg.Students)
	}
	if cfg.Lecturers < 1 {
		return nil, fmt.Errorf("trial: lecturers %d < 1", cfg.Lecturers)
	}
	sum := 0
	for _, n := range cfg.BinCounts {
		if n < 0 {
			return nil, fmt.Errorf("trial: negative bin count %d", n)
		}
		sum += n
	}
	if sum != cfg.Students {
		return nil, fmt.Errorf("trial: bin counts sum to %d, want %d students", sum, cfg.Students)
	}
	if cfg.ParticipationLo <= 0 || cfg.ParticipationHi > 1 || cfg.ParticipationLo > cfg.ParticipationHi {
		return nil, fmt.Errorf("trial: participation bounds [%g, %g] invalid", cfg.ParticipationLo, cfg.ParticipationHi)
	}

	r := rng.New(cfg.Seed)
	obf, err := core.NewObfuscator(cfg.Schedule, cfg.Options)
	if err != nil {
		return nil, err
	}
	est, err := aggregate.NewEstimator(cfg.Schedule)
	if err != nil {
		return nil, err
	}

	// Cohort: volunteers, no random responders.
	popCfg := population.DefaultConfig()
	popCfg.RegistrySize = cfg.Students
	popCfg.RandomResponderRate = 0
	pop, err := population.Generate(popCfg, r.Split())
	if err != nil {
		return nil, err
	}
	panel, err := population.NewLecturerPanel(cfg.Lecturers, r.Split())
	if err != nil {
		return nil, err
	}
	sv := panel.Survey()

	// Pin the privacy-level take-up exactly (the paper reports counts,
	// not propensities) by shuffling a level multiset over the cohort.
	levels := make([]core.Level, 0, cfg.Students)
	for l, n := range cfg.BinCounts {
		for i := 0; i < n; i++ {
			levels = append(levels, core.Level(l))
		}
	}
	r.Shuffle(len(levels), func(i, j int) { levels[i], levels[j] = levels[j], levels[i] })

	// Per-lecturer participation probability.
	part := make([]float64, cfg.Lecturers)
	for j := range part {
		part[j] = cfg.ParticipationLo + (cfg.ParticipationHi-cfg.ParticipationLo)*r.Float64()
	}

	// Generate ratings: raw for the truth baseline, noisy for upload.
	rawByLecturer := make([][]float64, cfg.Lecturers)
	noisyByBin := make([][core.NumLevels][]float64, cfg.Lecturers)
	var responses []survey.Response
	noiseRNG := r.Split()
	for i := 0; i < cfg.Students; i++ {
		person := &pop.Persons[i]
		lvl := levels[i]
		resp := survey.Response{
			SurveyID:     sv.ID,
			WorkerID:     fmt.Sprintf("student-%03d", i),
			PrivacyLevel: lvl.String(),
			Obfuscated:   lvl != core.None,
		}
		for j := 0; j < cfg.Lecturers; j++ {
			if !r.Bernoulli(part[j]) {
				continue
			}
			truth, err := panel.TrueRating(person, j, r)
			if err != nil {
				return nil, err
			}
			rawByLecturer[j] = append(rawByLecturer[j], truth)
			q := sv.Question(survey.LecturerQuestionID(j))
			noisy, err := obf.ObfuscateAnswer(q, survey.RatingAnswer(q.ID, truth), lvl, noiseRNG)
			if err != nil {
				return nil, err
			}
			noisyByBin[j][lvl] = append(noisyByBin[j][lvl], noisy.Rating)
			resp.Answers = append(resp.Answers, noisy)
		}
		if len(resp.Answers) > 0 {
			responses = append(responses, resp)
		}
	}

	res := &TrialResult{Config: cfg}
	for _, lvl := range levels {
		res.BinTotals[lvl]++
	}

	var naive, pooled, truths []float64
	for j := 0; j < cfg.Lecturers; j++ {
		q := sv.Question(survey.LecturerQuestionID(j))
		qe, err := est.EstimateQuestion(sv, q, responses)
		if err != nil {
			return nil, err
		}
		lr := LecturerResult{
			Name:        panel.Names[j],
			Quality:     panel.Qualities[j],
			OverallMean: qe.OverallMean,
			PooledMean:  qe.PooledMean,
			Raters:      qe.OverallN,
		}
		if len(rawByLecturer[j]) > 0 {
			lr.TruthMean, _ = stats.Mean(rawByLecturer[j])
		}
		for l := 0; l < core.NumLevels; l++ {
			b := qe.Bins[l]
			lr.Bins[l] = LecturerBin{Level: b.Level, N: b.N, Mean: b.Mean, Deviation: b.Deviation}
			if b.N > 0 {
				ad := math.Abs(b.Deviation)
				if ad > res.MaxAbsDeviation[l] {
					res.MaxAbsDeviation[l] = ad
				}
				res.MeanAbsDeviation[l] += ad / float64(cfg.Lecturers)
			}
		}
		res.Lecturers = append(res.Lecturers, lr)
		naive = append(naive, lr.OverallMean)
		pooled = append(pooled, lr.PooledMean)
		truths = append(truths, lr.TruthMean)
	}
	res.NaiveRMSE, _ = stats.RMSE(naive, truths)
	res.PooledRMSE, _ = stats.RMSE(pooled, truths)

	// Significance check: each populated bin against the lecturer's
	// other bins. Zero-mean noise means ≈5% of bins flag at α=0.05.
	for j := 0; j < cfg.Lecturers; j++ {
		for l := 0; l < core.NumLevels; l++ {
			bin := noisyByBin[j][l]
			var rest []float64
			for o := 0; o < core.NumLevels; o++ {
				if o != l {
					rest = append(rest, noisyByBin[j][o]...)
				}
			}
			if len(bin) < 2 || len(rest) < 2 {
				continue
			}
			tt, err := stats.WelchT(bin, rest)
			if err != nil {
				return nil, err
			}
			res.TestedBins++
			if tt.Significant(0.05) {
				res.SignificantBins++
			}
		}
	}
	return res, nil
}

// Render produces the E3 (deviation curves) and E4 (per-bin histogram)
// report.
func (res *TrialResult) Render() string {
	var b strings.Builder

	t := NewTable("E3 — Fig. 2: deviation of privacy-bin mean from overall mean, per lecturer",
		"lecturer", "truth", "overall", "none", "low", "medium", "high")
	for _, lr := range res.Lecturers {
		cells := []string{lr.Name, fmtF(lr.TruthMean, 2), fmtF(lr.OverallMean, 2)}
		for l := 0; l < core.NumLevels; l++ {
			if lr.Bins[l].N == 0 {
				cells = append(cells, "—")
			} else {
				cells = append(cells, fmt.Sprintf("%+.2f", lr.Bins[l].Deviation))
			}
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())

	b.WriteString("\ndeviation curves across lecturers (one sparkline per bin):\n")
	for l := 0; l < core.NumLevels; l++ {
		vals := make([]float64, len(res.Lecturers))
		for j, lr := range res.Lecturers {
			if lr.Bins[l].N == 0 {
				vals[j] = math.NaN()
			} else {
				vals[j] = lr.Bins[l].Deviation
			}
		}
		fmt.Fprintf(&b, "  %-6s %s  max|dev|=%.2f mean|dev|=%.2f (σ=%.1f)\n",
			core.Level(l), Sparkline(vals), res.MaxAbsDeviation[l], res.MeanAbsDeviation[l],
			res.Config.Schedule.Sigma[l])
	}

	t2 := NewTable("\nE4 — Fig. 2 histogram: students rating each lecturer, per privacy bin",
		"lecturer", "none", "low", "medium", "high", "total")
	for _, lr := range res.Lecturers {
		t2.AddVals(lr.Name, lr.Bins[0].N, lr.Bins[1].N, lr.Bins[2].N, lr.Bins[3].N, lr.Raters)
	}
	b.WriteString(t2.String())

	t3 := NewTable("\ncohort privacy take-up (E6 inputs)", "level", "paper", "this cohort")
	for l := 0; l < core.NumLevels; l++ {
		t3.AddVals(core.Level(l), PaperBinCounts[l], res.BinTotals[l])
	}
	b.WriteString(t3.String())
	if res.TestedBins > 0 {
		fmt.Fprintf(&b, "\nWelch t-test, each bin vs its lecturer's other bins: %d of %d significant at α=0.05\n"+
			"(≈5%% expected under zero-mean noise — deviations are sampling noise, not bias)\n",
			res.SignificantBins, res.TestedBins)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E5 — trusted-third-party comparison

// TrustedComparison is the §3.2 anecdote: the pinned-quality lecturer's
// noisy estimate versus the trusted reference.
type TrustedComparison struct {
	PaperTrue     float64
	PaperNoisy    float64
	MeasuredTrue  float64 // noiseless sample mean of the anecdote lecturer
	MeasuredNoisy float64 // noisy overall mean
	Quality       float64 // the pinned long-run rating (4.61)
	AbsError      float64
}

// RunTrustedComparison (E5) runs the trial and extracts the anecdote
// lecturer's comparison.
func RunTrustedComparison(cfg TrialConfig) (*TrustedComparison, error) {
	res, err := RunLecturerTrial(cfg)
	if err != nil {
		return nil, err
	}
	idx := population.AnecdoteLecturer % len(res.Lecturers)
	lr := res.Lecturers[idx]
	return &TrustedComparison{
		PaperTrue:     PaperAnecdoteTrue,
		PaperNoisy:    PaperAnecdoteNoisy,
		MeasuredTrue:  lr.TruthMean,
		MeasuredNoisy: lr.OverallMean,
		Quality:       lr.Quality,
		AbsError:      math.Abs(lr.OverallMean - lr.TruthMean),
	}, nil
}

// Render reports E5.
func (tc *TrustedComparison) Render() string {
	t := NewTable("E5 — noisy estimate vs trusted third-party rating (§3.2 anecdote)",
		"quantity", "paper", "measured")
	t.AddVals("trusted rating", fmtF(tc.PaperTrue, 2), fmtF(tc.MeasuredTrue, 2))
	t.AddVals("noisy Loki estimate", fmtF(tc.PaperNoisy, 2), fmtF(tc.MeasuredNoisy, 2))
	t.AddVals("absolute error", fmtF(math.Abs(tc.PaperNoisy-tc.PaperTrue), 2), fmtF(tc.AbsError, 2))
	return t.String()
}

// ---------------------------------------------------------------------------
// E6 — privacy-level take-up

// TakeupResult compares sampled level choices against the paper's
// observed 18/32/51/30 split.
type TakeupResult struct {
	Cohorts    int
	MeanCounts [core.NumLevels]float64
	// ModalMediumShare is the fraction of cohorts in which medium was
	// the most popular level (the paper conjectures medium reads as the
	// "safer" middle option).
	ModalMediumShare float64
}

// RunLevelTakeup (E6) samples many cohorts from the preference model and
// reports the mean per-level counts.
func RunLevelTakeup(seed uint64, cohorts, cohortSize int) (*TakeupResult, error) {
	if cohorts < 1 || cohortSize < 1 {
		return nil, fmt.Errorf("takeup: cohorts %d and cohort size %d must be positive", cohorts, cohortSize)
	}
	r := rng.New(seed)
	cfg := population.DefaultConfig()
	weights := cfg.PrivacyPrefWeights[:]
	res := &TakeupResult{Cohorts: cohorts}
	for c := 0; c < cohorts; c++ {
		var counts [core.NumLevels]int
		for i := 0; i < cohortSize; i++ {
			counts[r.MustCategorical(weights)]++
		}
		modal := 0
		for l := 0; l < core.NumLevels; l++ {
			res.MeanCounts[l] += float64(counts[l]) / float64(cohorts)
			if counts[l] > counts[modal] {
				modal = l
			}
		}
		if core.Level(modal) == core.Medium {
			res.ModalMediumShare += 1 / float64(cohorts)
		}
	}
	return res, nil
}

// Render reports E6.
func (tr *TakeupResult) Render() string {
	t := NewTable("E6 — privacy-level take-up (sampled cohorts of 131)",
		"level", "paper count", "mean sampled count")
	for l := 0; l < core.NumLevels; l++ {
		t.AddVals(core.Level(l), PaperBinCounts[l], fmtF(tr.MeanCounts[l], 1))
	}
	return t.String() + fmt.Sprintf("medium is the modal level in %s of cohorts\n", fmtPct(tr.ModalMediumShare))
}

// ---------------------------------------------------------------------------
// A4 — estimator ablation

// EstimatorAblation compares the naive overall mean against the
// inverse-variance pooled estimator on the trial data.
type EstimatorAblation struct {
	NaiveRMSE   float64
	PooledRMSE  float64
	PerLecturer []aggregate.NaiveVsPooled
}

// RunEstimatorAblation (A4) reports both estimators' errors per lecturer.
func RunEstimatorAblation(cfg TrialConfig) (*EstimatorAblation, error) {
	res, err := RunLecturerTrial(cfg)
	if err != nil {
		return nil, err
	}
	out := &EstimatorAblation{NaiveRMSE: res.NaiveRMSE, PooledRMSE: res.PooledRMSE}
	for _, lr := range res.Lecturers {
		out.PerLecturer = append(out.PerLecturer, aggregate.NaiveVsPooled{
			QuestionID:  lr.Name,
			Truth:       lr.TruthMean,
			Naive:       lr.OverallMean,
			NaiveError:  math.Abs(lr.OverallMean - lr.TruthMean),
			Pooled:      lr.PooledMean,
			PooledError: math.Abs(lr.PooledMean - lr.TruthMean),
		})
	}
	return out, nil
}

// Render reports A4.
func (ea *EstimatorAblation) Render() string {
	t := NewTable("A4 — estimator ablation: naive mean vs inverse-variance pooling",
		"lecturer", "truth", "naive", "|err|", "pooled", "|err|")
	for _, pl := range ea.PerLecturer {
		t.AddVals(pl.QuestionID, fmtF(pl.Truth, 2), fmtF(pl.Naive, 2), fmtF(pl.NaiveError, 3),
			fmtF(pl.Pooled, 2), fmtF(pl.PooledError, 3))
	}
	return t.String() + fmt.Sprintf("RMSE across lecturers: naive=%.3f pooled=%.3f\n",
		ea.NaiveRMSE, ea.PooledRMSE)
}
