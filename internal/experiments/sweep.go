package experiments

import (
	"fmt"
	"math"
	"strings"

	"loki/internal/core"
	"loki/internal/dp"
	"loki/internal/rng"
)

// ---------------------------------------------------------------------------
// A1 — accuracy–privacy sweep

// SweepConfig parameterizes the accuracy sweep: how estimation error
// scales with noise magnitude and bin size, with and without clamping.
type SweepConfig struct {
	Seed   uint64
	Sigmas []float64
	Ns     []int
	// Trials is the number of Monte Carlo repetitions per cell.
	Trials int
	// TrueMean and AnswerStd describe the underlying rating population
	// on the 1..5 scale.
	TrueMean  float64
	AnswerStd float64
}

// DefaultSweepConfig covers the schedule's σ range and the paper's bin
// sizes.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		Seed:      11,
		Sigmas:    []float64{0, 0.5, 1.0, 2.0, 3.0},
		Ns:        []int{5, 10, 18, 30, 51, 100, 200},
		Trials:    400,
		TrueMean:  4.2,
		AnswerStd: 0.6,
	}
}

// SweepCell is one (σ, n) grid point.
type SweepCell struct {
	Sigma float64
	N     int
	// RMSE is the root-mean-square error of the unclamped noisy mean
	// against the population mean; RMSEClamped clamps each noisy answer
	// into [1, 5] first.
	RMSE        float64
	RMSEClamped float64
	// BiasClamped is the mean signed error of the clamped estimator —
	// systematically negative for means near the top of the scale.
	BiasClamped float64
}

// SweepResult is the full grid.
type SweepResult struct {
	Config SweepConfig
	Cells  []SweepCell
	// PopulationMean is the true mean of the discretized rating
	// population (differs slightly from Config.TrueMean because ratings
	// are rounded and clamped to the 1..5 scale).
	PopulationMean float64
}

// RunAccuracySweep (A1) measures estimator error across noise levels and
// bin sizes: the quantitative version of the paper's "accuracy of the
// estimated mean is lower when fewer users are assigned to the bin,
// particularly for higher privacy bins".
func RunAccuracySweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("sweep: trials %d < 1", cfg.Trials)
	}
	if len(cfg.Sigmas) == 0 || len(cfg.Ns) == 0 {
		return nil, fmt.Errorf("sweep: empty sigma or n axis")
	}
	r := rng.New(cfg.Seed)

	// Empirical mean of the discrete rating distribution.
	const probe = 200_000
	var acc float64
	for i := 0; i < probe; i++ {
		acc += drawRating(r, cfg.TrueMean, cfg.AnswerStd)
	}
	popMean := acc / probe

	res := &SweepResult{Config: cfg, PopulationMean: popMean}
	for _, sigma := range cfg.Sigmas {
		if sigma < 0 {
			return nil, fmt.Errorf("sweep: negative sigma %g", sigma)
		}
		for _, n := range cfg.Ns {
			if n < 1 {
				return nil, fmt.Errorf("sweep: bin size %d < 1", n)
			}
			var sse, sseCl, biasCl float64
			for t := 0; t < cfg.Trials; t++ {
				var sum, sumCl float64
				for i := 0; i < n; i++ {
					raw := drawRating(r, cfg.TrueMean, cfg.AnswerStd)
					noisy := r.Normal(raw, sigma)
					sum += noisy
					sumCl += math.Min(math.Max(noisy, 1), 5)
				}
				err := sum/float64(n) - popMean
				errCl := sumCl/float64(n) - popMean
				sse += err * err
				sseCl += errCl * errCl
				biasCl += errCl
			}
			res.Cells = append(res.Cells, SweepCell{
				Sigma:       sigma,
				N:           n,
				RMSE:        math.Sqrt(sse / float64(cfg.Trials)),
				RMSEClamped: math.Sqrt(sseCl / float64(cfg.Trials)),
				BiasClamped: biasCl / float64(cfg.Trials),
			})
		}
	}
	return res, nil
}

// drawRating samples a discrete 1..5 rating around mean with the given
// spread.
func drawRating(r *rng.RNG, mean, std float64) float64 {
	v := math.Round(r.Normal(mean, std))
	if v < 1 {
		v = 1
	}
	if v > 5 {
		v = 5
	}
	return v
}

// Cell returns the grid point for (sigma, n), if present.
func (res *SweepResult) Cell(sigma float64, n int) (SweepCell, bool) {
	for _, c := range res.Cells {
		if c.Sigma == sigma && c.N == n {
			return c, true
		}
	}
	return SweepCell{}, false
}

// Render reports A1 as an RMSE grid plus the clamping-bias column.
func (res *SweepResult) Render() string {
	var b strings.Builder
	header := []string{"σ \\ n"}
	for _, n := range res.Config.Ns {
		header = append(header, fmt.Sprint(n))
	}
	t := NewTable("A1 — RMSE of the noisy mean vs bin size (unclamped)", header...)
	for _, sigma := range res.Config.Sigmas {
		cells := []string{fmtF(sigma, 2)}
		for _, n := range res.Config.Ns {
			c, _ := res.Cell(sigma, n)
			cells = append(cells, fmtF(c.RMSE, 3))
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())

	t2 := NewTable("\nclamping ablation at n=51 (the medium bin)", "σ", "RMSE unclamped", "RMSE clamped", "bias clamped")
	for _, sigma := range res.Config.Sigmas {
		c, ok := res.Cell(sigma, 51)
		if !ok {
			continue
		}
		t2.AddVals(fmtF(sigma, 2), fmtF(c.RMSE, 3), fmtF(c.RMSEClamped, 3), fmt.Sprintf("%+.3f", c.BiasClamped))
	}
	b.WriteString(t2.String())
	fmt.Fprintf(&b, "population mean: %.3f (clamped estimator drags high means down)\n", res.PopulationMean)
	return b.String()
}

// ---------------------------------------------------------------------------
// A5 — cumulative privacy-loss growth

// LedgerGrowthConfig parameterizes the composition comparison.
type LedgerGrowthConfig struct {
	// Ks are the survey counts to report.
	Ks []int
	// QuestionsPerSurvey is how many ratings each survey releases.
	QuestionsPerSurvey int
	// Delta is the reporting δ.
	Delta float64
	// Schedule supplies the per-level σ.
	Schedule core.Schedule
}

// DefaultLedgerGrowthConfig reports k ∈ {1..50} for 5-question surveys.
func DefaultLedgerGrowthConfig() LedgerGrowthConfig {
	return LedgerGrowthConfig{
		Ks:                 []int{1, 2, 5, 10, 20, 50},
		QuestionsPerSurvey: 5,
		Delta:              1e-6,
		Schedule:           core.DefaultSchedule(),
	}
}

// LedgerGrowthPoint is one (level, k) entry: the cumulative ε after k
// surveys under each composition rule.
type LedgerGrowthPoint struct {
	Level    core.Level
	K        int
	Basic    float64
	Advanced float64
	ZCDP     float64
}

// LedgerGrowthResult is the A5 dataset.
type LedgerGrowthResult struct {
	Config LedgerGrowthConfig
	Points []LedgerGrowthPoint
}

// RunLedgerGrowth (A5) computes cumulative ε after k surveys at each
// privacy level under basic, advanced and zCDP composition. It shows why
// the ledger accounts in zCDP: basic composition grows linearly in k,
// advanced as ~√k with constants, zCDP tracks the tight √k rate.
func RunLedgerGrowth(cfg LedgerGrowthConfig) (*LedgerGrowthResult, error) {
	if cfg.QuestionsPerSurvey < 1 {
		return nil, fmt.Errorf("ledger growth: questions per survey %d < 1", cfg.QuestionsPerSurvey)
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("ledger growth: delta %g outside (0, 1)", cfg.Delta)
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	const sensitivity = core.ReferenceScaleWidth // 1..5 rating
	res := &LedgerGrowthResult{Config: cfg}
	for _, lvl := range []core.Level{core.Low, core.Medium, core.High} {
		sigma := cfg.Schedule.Sigma[lvl]
		rhoPerAnswer := dp.RhoFromSigma(sigma, sensitivity)
		for _, k := range cfg.Ks {
			if k < 1 {
				return nil, fmt.Errorf("ledger growth: k %d < 1", k)
			}
			releases := k * cfg.QuestionsPerSurvey
			// Basic: each release converted at δ/releases, epsilons add.
			deltaI := cfg.Delta / float64(releases)
			epsI := dp.EpsilonFromRho(rhoPerAnswer, deltaI)
			basic := epsI * float64(releases)
			// Advanced composition over per-release (ε₀, δ₀) with half
			// the δ budget as slack.
			delta0 := cfg.Delta / (2 * float64(releases))
			eps0, err := dp.EpsilonForSigma(sigma, delta0, sensitivity)
			if err != nil {
				return nil, err
			}
			adv, err := dp.ComposeAdvanced(eps0, delta0, releases, cfg.Delta/2)
			if err != nil {
				return nil, err
			}
			// Advanced composition's k·ε·(e^ε−1) term is vacuous for the
			// large per-release ε that Loki's modest noise implies; the
			// valid bound is the minimum of the basic and advanced totals.
			if adv.Epsilon > basic {
				adv.Epsilon = basic
			}
			// zCDP: additive in ρ, converted once.
			zcdp := dp.EpsilonFromRho(rhoPerAnswer*float64(releases), cfg.Delta)
			res.Points = append(res.Points, LedgerGrowthPoint{
				Level:    lvl,
				K:        k,
				Basic:    basic,
				Advanced: adv.Epsilon,
				ZCDP:     zcdp,
			})
		}
	}
	return res, nil
}

// Render reports A5.
func (res *LedgerGrowthResult) Render() string {
	t := NewTable("A5 — cumulative ε after k surveys (5 ratings each), by composition rule",
		"level", "k", "basic", "advanced (min w/ basic)", "zCDP (ledger)")
	for _, p := range res.Points {
		t.AddVals(p.Level, p.K, fmtF(p.Basic, 1), fmtF(p.Advanced, 1), fmtF(p.ZCDP, 1))
	}
	return t.String() + "basic grows linearly in k; the ledger's zCDP total tracks the tight √k rate\n" +
		"(advanced composition is vacuous at these per-release ε, so its valid bound equals basic)\n"
}
