package experiments

import (
	"fmt"
	"math"

	"loki/internal/core"
	"loki/internal/dp"
	"loki/internal/population"
	"loki/internal/rng"
)

// ---------------------------------------------------------------------------
// A6 — anonymity collapse, survey by survey

// LinkageGrowthResult shows how the population's anonymity collapses as
// each §2 profiling survey adds attributes to the attacker's
// quasi-identifier.
type LinkageGrowthResult struct {
	RegistrySize int
	Stages       []population.AnonymityStats
}

// RunLinkageGrowth (A6) computes the k-anonymity profile of the default
// registry after each profiling survey. It quantifies the paper's core
// observation: no single survey identifies anyone, but three cheap
// surveys together collapse median anonymity from hundreds to one.
func RunLinkageGrowth(seed uint64, cfg population.Config) (*LinkageGrowthResult, error) {
	pop, err := population.Generate(cfg, rng.New(seed))
	if err != nil {
		return nil, err
	}
	res := &LinkageGrowthResult{RegistrySize: pop.Size()}
	for _, mask := range []population.AttrMask{
		population.MaskAfterAstrology,
		population.MaskAfterMatchmaking,
		population.MaskAfterCoverage,
	} {
		res.Stages = append(res.Stages, pop.AnonymityStats(mask))
	}
	return res, nil
}

// Render reports A6.
func (res *LinkageGrowthResult) Render() string {
	t := NewTable(fmt.Sprintf("A6 — anonymity collapse across the §2 surveys (registry of %d)", res.RegistrySize),
		"after survey", "attacker knows", "median k", "mean k", "unique")
	names := []string{"1 (astrology)", "2 (match-making)", "3 (coverage)"}
	for i, st := range res.Stages {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		t.AddVals(name, st.Mask, st.MedianK, fmtF(st.MeanK, 1), fmtPct(st.FractionUnique))
	}
	return t.String() + "each cheap survey looks harmless alone; their join is what de-anonymizes\n"
}

// ---------------------------------------------------------------------------
// A7 — Gaussian vs Laplace noise

// NoiseComparisonConfig parameterizes the mechanism ablation.
type NoiseComparisonConfig struct {
	Seed     uint64
	Schedule core.Schedule
	// Delta converts Gaussian noise to an (ε, δ) cost.
	Delta float64
	// N is the bin size and Trials the Monte Carlo repetitions for the
	// RMSE columns.
	N, Trials int
	// TrueMean and AnswerStd describe the rating population.
	TrueMean, AnswerStd float64
}

// DefaultNoiseComparisonConfig compares the mechanisms at the paper's
// medium-bin size.
func DefaultNoiseComparisonConfig() NoiseComparisonConfig {
	return NoiseComparisonConfig{
		Seed:      17,
		Schedule:  core.DefaultSchedule(),
		Delta:     1e-6,
		N:         51,
		Trials:    600,
		TrueMean:  4.2,
		AnswerStd: 0.6,
	}
}

// NoiseComparisonRow is one privacy level's comparison.
type NoiseComparisonRow struct {
	Level core.Level
	// Gaussian mechanism: the schedule's σ and its (ε, δ) cost.
	SigmaGaussian   float64
	EpsilonGaussian float64
	// Variance-matched Laplace: same noise variance, pure-ε cost.
	LaplaceScale   float64
	EpsilonLaplace float64
	// EpsilonMatchedSigma is the (equivalent) noise standard deviation a
	// Laplace mechanism needs to offer ε = EpsilonGaussian as pure DP.
	EpsilonMatchedSigma float64
	// Monte Carlo RMSE of the bin mean under each mechanism.
	RMSEGaussian        float64
	RMSELaplaceMatched  float64
	RMSELaplaceEpsMatch float64
}

// NoiseComparisonResult is the A7 dataset.
type NoiseComparisonResult struct {
	Config NoiseComparisonConfig
	Rows   []NoiseComparisonRow
}

// RunNoiseComparison (A7) compares the paper's Gaussian mechanism with
// Laplace noise two ways: variance-matched (identical utility — what
// pure-ε guarantee does that buy?) and ε-matched (identical single-release
// guarantee — how much less noise does Laplace need?). Gaussian's
// per-release cost carries a δ-conversion premium; its advantage is
// composition (see A5), which is why Loki's ledger accounts in zCDP.
func RunNoiseComparison(cfg NoiseComparisonConfig) (*NoiseComparisonResult, error) {
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("noise comparison: delta %g outside (0, 1)", cfg.Delta)
	}
	if cfg.N < 1 || cfg.Trials < 1 {
		return nil, fmt.Errorf("noise comparison: n=%d trials=%d must be positive", cfg.N, cfg.Trials)
	}
	const sensitivity = core.ReferenceScaleWidth
	r := rng.New(cfg.Seed)
	res := &NoiseComparisonResult{Config: cfg}
	for _, lvl := range []core.Level{core.Low, core.Medium, core.High} {
		sigma := cfg.Schedule.Sigma[lvl]
		epsG, err := dp.EpsilonForSigma(sigma, cfg.Delta, sensitivity)
		if err != nil {
			return nil, err
		}
		b := sigma / math.Sqrt2
		epsL := sensitivity / b
		bEps := sensitivity / epsG
		row := NoiseComparisonRow{
			Level:               lvl,
			SigmaGaussian:       sigma,
			EpsilonGaussian:     epsG,
			LaplaceScale:        b,
			EpsilonLaplace:      epsL,
			EpsilonMatchedSigma: bEps * math.Sqrt2,
		}
		row.RMSEGaussian = mcRMSE(cfg, r, func(raw float64) float64 { return r.Normal(raw, sigma) })
		row.RMSELaplaceMatched = mcRMSE(cfg, r, func(raw float64) float64 { return r.Laplace(raw, b) })
		row.RMSELaplaceEpsMatch = mcRMSE(cfg, r, func(raw float64) float64 { return r.Laplace(raw, bEps) })
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// mcRMSE estimates the RMSE of the mean of cfg.N noisy ratings.
func mcRMSE(cfg NoiseComparisonConfig, r *rng.RNG, noise func(float64) float64) float64 {
	var sse float64
	for t := 0; t < cfg.Trials; t++ {
		var sum float64
		for i := 0; i < cfg.N; i++ {
			raw := drawRating(r, cfg.TrueMean, cfg.AnswerStd)
			sum += noise(raw)
		}
		err := sum/float64(cfg.N) - cfg.TrueMean
		sse += err * err
	}
	return math.Sqrt(sse / float64(cfg.Trials))
}

// Render reports A7.
func (res *NoiseComparisonResult) Render() string {
	t := NewTable(fmt.Sprintf("A7 — Gaussian vs Laplace noise (n=%d per bin, δ=%.0e)", res.Config.N, res.Config.Delta),
		"level", "σ gauss", "ε gauss", "ε laplace (var-matched)", "RMSE gauss", "RMSE laplace", "σ laplace @ ε-match")
	for _, row := range res.Rows {
		t.AddVals(row.Level, fmtF(row.SigmaGaussian, 2), fmtF(row.EpsilonGaussian, 1),
			fmtF(row.EpsilonLaplace, 1), fmtF(row.RMSEGaussian, 3), fmtF(row.RMSELaplaceMatched, 3),
			fmtF(row.EpsilonMatchedSigma, 3))
	}
	return t.String() +
		"variance-matched Laplace gives the same utility at a smaller pure ε per release;\n" +
		"Gaussian pays a per-release δ-conversion premium but composes as √k via zCDP (A5)\n"
}
